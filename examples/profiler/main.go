// Profiler: a walkthrough of CoServe's offline phase (§4.4–§4.5).
//
// It profiles both devices (performance matrix: K, B, max batch,
// footprints, load latencies), then runs the decay-window memory-
// allocation search and the executor-count sweep for Circuit Board A on
// the NUMA device, printing each probe the way Figures 17 and 18 do.
//
// Run with: go run ./examples/profiler
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	coserve "repro"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/profiler"
	"repro/internal/workload"
)

func main() {
	// 1. Performance matrix for each device (microbenchmarks, §4.5).
	for _, dev := range []*coserve.Device{coserve.NUMADevice(), coserve.UMADevice()} {
		perf, err := coserve.Profile(dev, coserve.EvalArchitectures())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s performance matrix ==\n", dev.Name)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "architecture\tproc\tK\tB\tmax batch\tload(ssd)")
		for _, arch := range coserve.EvalArchitectures() {
			for _, kind := range []hw.ProcKind{hw.GPU, hw.CPU} {
				p, _ := perf.Lookup(arch.Name, kind)
				fmt.Fprintf(w, "%s\t%v\t%v\t%v\t%d\t%v\n", arch.Name, kind,
					p.K.Round(10*time.Microsecond), p.B.Round(time.Millisecond),
					p.MaxBatch, p.LoadSSD.Round(time.Millisecond))
			}
		}
		w.Flush()
		fmt.Println()
	}

	// 2. Offline configuration search on the NUMA device for Board A.
	dev := coserve.NUMADevice()
	perf, err := coserve.Profile(dev, coserve.EvalArchitectures())
	if err != nil {
		log.Fatal(err)
	}
	board, err := coserve.BoardA().Build()
	if err != nil {
		log.Fatal(err)
	}
	sample := coserve.Task{
		Name: "sample", Board: board, N: 600,
		ArrivalPeriod: workload.DefaultArrivalPeriod, Seed: 777,
	}
	runWith := func(g, c int, alloc coserve.Allocation) (float64, error) {
		cfg := coserve.Config{
			Device: dev, Variant: coserve.CoServe,
			GPUExecutors: g, CPUExecutors: c, Alloc: alloc, Perf: perf,
		}
		srv, err := coserve.NewServer(cfg, board.Model)
		if err != nil {
			return 0, err
		}
		rep, err := srv.RunTask(sample)
		if err != nil {
			return 0, err
		}
		return rep.Throughput, nil
	}

	fmt.Println("== executor-count sweep (Figure 17) ==")
	configs := [][2]int{{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}}
	points, best, err := profiler.TopologySweep(configs, func(g, c int) (float64, error) {
		return runWith(g, c, coserve.CasualAllocation(dev, perf, g, c))
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		marker := ""
		if p == points[best] {
			marker = "  <- best"
		}
		fmt.Printf("  %dG+%dC: %.1f img/s%s\n", p.GPUs, p.CPUs, p.Throughput, marker)
	}
	g, c := points[best].GPUs, points[best].CPUs

	fmt.Println("\n== decay-window memory search (§4.4, Figure 18) ==")
	maxExperts := core.MaxGPUExperts(dev, perf, g, c, coserve.EvalArchitectures())
	res, err := profiler.DecayWindow(profiler.DefaultSearchParams(maxExperts), func(n int) (float64, error) {
		if n < 3*g {
			n = 3 * g
		}
		return runWith(g, c, coserve.AllocationForExperts(dev, perf, n, g, c))
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Points {
		fmt.Printf("  load %3d experts -> %.1f img/s\n", p.Experts, p.Throughput)
	}
	fmt.Printf("selected window [%d,%d], loading %d experts (deviation %.1f%%)\n",
		res.WindowLo, res.WindowHi, res.Selected, res.Deviation*100)
}
