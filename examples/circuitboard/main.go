// Circuitboard: the paper's motivating workload end to end.
//
// It builds Circuit Board A (352 component types, 30 shared detection
// experts, ~68 GB of experts — §5.1), runs Task A1 under Samba-CoE and
// under CoServe on both devices, and prints the head-to-head comparison
// the paper's Figure 13 reports.
//
// Run with: go run ./examples/circuitboard
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	coserve "repro"
)

func main() {
	board, err := coserve.BoardA().Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Circuit Board A: %d component types, %d experts, %.1f GB of weights\n",
		len(board.TypeProbs), board.Model.NumExperts(),
		float64(board.Model.TotalWeightBytes())/1e9)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "device\tsystem\tthroughput\tswitches\tmakespan\tp95 latency")
	for _, dev := range []*coserve.Device{coserve.NUMADevice(), coserve.UMADevice()} {
		perf, err := coserve.Profile(dev, coserve.EvalArchitectures())
		if err != nil {
			log.Fatal(err)
		}
		gpus, cpus := coserve.DefaultExecutors(dev)
		for _, sys := range []struct {
			name    string
			variant coserve.Variant
		}{
			{"Samba-CoE", coserve.Samba},
			{"CoServe", coserve.CoServe},
		} {
			cfg := coserve.Config{
				Device: dev, Variant: sys.variant,
				GPUExecutors: gpus, CPUExecutors: cpus, Perf: perf,
			}
			if sys.variant == coserve.Samba {
				cfg.Alloc = coserve.SambaAllocation(dev, perf)
			} else {
				cfg.Alloc = coserve.CasualAllocation(dev, perf, gpus, cpus)
			}
			srv, err := coserve.NewServer(cfg, board.Model)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := srv.RunTask(coserve.TaskA1(board))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s\t%s\t%.1f img/s\t%d\t%.0fs\t%.1fs\n",
				dev.Name, sys.name, rep.Throughput, rep.Switches,
				rep.Makespan.Seconds(), rep.Latency.P95)
		}
	}
	w.Flush()
	fmt.Println("\nCoServe's dependency-aware scheduling groups same-expert requests and")
	fmt.Println("evicts by pre-assessed usage probability, cutting expert switches by an")
	fmt.Println("order of magnitude — the paper's headline result (Figures 13 and 14).")
}
