// Quickstart: the minimal end-to-end CoServe session.
//
// It builds a small custom CoE model (three classification experts
// sharing one detection expert), profiles the NUMA device offline,
// serves a burst of requests with CoServe, and prints the report.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	coserve "repro"
)

func main() {
	// 1. Build a CoE model: experts + dependencies + routing rules
	//    (paper §2.1, Figure 2).
	b := coserve.NewModelBuilder("quickstart")
	clsA := b.AddExpert("cls-bolt", coserve.ResNet101, coserve.Preliminary)
	clsB := b.AddExpert("cls-washer", coserve.ResNet101, coserve.Preliminary)
	clsC := b.AddExpert("cls-spring", coserve.ResNet101, coserve.Preliminary)
	det := b.AddExpert("det-align", coserve.YOLOv5m, coserve.Subsequent)
	b.Link(clsA, det) // bolts and washers verify alignment after passing
	b.Link(clsB, det)
	b.AddRule(0, coserve.Rule{Classifier: clsA, Detector: det, PassProb: 0.9})
	b.AddRule(1, coserve.Rule{Classifier: clsB, Detector: det, PassProb: 0.8})
	b.AddRule(2, coserve.Rule{Classifier: clsC})
	model, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	// Usage probabilities come straight from the known class mix (§4.5).
	if err := coserve.ComputeUsage(model, map[int]float64{0: 0.5, 1: 0.3, 2: 0.2}); err != nil {
		log.Fatal(err)
	}

	// 2. Offline phase: profile the device once (§4.4–4.5).
	dev := coserve.NUMADevice()
	perf, err := coserve.Profile(dev, coserve.EvalArchitectures())
	if err != nil {
		log.Fatal(err)
	}

	// 3. System initialization: executors, memory allocation, preload.
	gpus, cpus := coserve.DefaultExecutors(dev)
	cfg := coserve.Config{
		Device: dev, Variant: coserve.CoServe,
		GPUExecutors: gpus, CPUExecutors: cpus,
		Alloc: coserve.CasualAllocation(dev, perf, gpus, cpus),
		Perf:  perf,
	}
	srv, err := coserve.NewServer(cfg, model)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Online phase: a synthetic stream of 400 component images. The
	//    quickstart reuses a board-like task by wrapping our model in a
	//    trivial workload: requests sampled from the class mix.
	board, err := coserve.NewBoard(model, []float64{0.5, 0.3, 0.2})
	if err != nil {
		log.Fatal(err)
	}
	task := coserve.Task{
		Name: "quickstart", Board: board,
		N: 400, ArrivalPeriod: 4 * time.Millisecond, Seed: 1,
	}
	report, err := srv.RunTask(task)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("served %d requests at %.1f img/s (virtual)\n", report.Completions, report.Throughput)
	fmt.Printf("expert switches: %d (%d SSD, %d host)\n", report.Switches, report.SSDLoads, report.HostHits)
	fmt.Printf("p50 latency: %.0f ms, scheduling cost: %v per decision\n",
		report.Latency.P50*1000, report.SchedPerOp)
}
