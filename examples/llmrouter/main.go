// Llmrouter: a Qihoo-360-style CoE (§2.1) that routes requests across
// domain experts — and, unlike the scheduling simulation, puts *real*
// model computation behind each expert using the repository's pure-Go
// neural-network engine.
//
// Three tiny domain experts (code / math / prose) are trained on
// synthetic token-statistics features. A rule router dispatches each
// request to its domain expert; the CoServe serving layer schedules the
// same expert set on the simulated UMA device to show the serving-side
// behavior with a domain-skewed request mix.
//
// Run with: go run ./examples/llmrouter
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	coserve "repro"
	"repro/internal/nn"
)

// domain feature generators: each domain has a distinct signature over
// 4 features (symbol density, digit density, avg word length, line length).
func sample(rng *rand.Rand, domain int) []float32 {
	jitter := func(c float64) float32 { return float32(c + rng.NormFloat64()*0.08) }
	switch domain {
	case 0: // code: symbol-heavy, short lines
		return []float32{jitter(0.8), jitter(0.3), jitter(0.4), jitter(0.3)}
	case 1: // math: digit-heavy
		return []float32{jitter(0.4), jitter(0.9), jitter(0.3), jitter(0.5)}
	default: // prose: long words, long lines
		return []float32{jitter(0.1), jitter(0.1), jitter(0.8), jitter(0.9)}
	}
}

func main() {
	// --- Part 1: real experts with real compute -----------------------
	rng := rand.New(rand.NewSource(42))
	names := []string{"code-expert", "math-expert", "prose-expert"}
	experts := make([]*nn.Network, 3)
	for d := range experts {
		net, err := nn.NewMLP(names[d], int64(100+d), 4, 16, 2)
		if err != nil {
			log.Fatal(err)
		}
		experts[d] = net
	}
	// Train each expert on its own domain's binary task: "is this input
	// in-domain?" — a stand-in for a fine-tuned domain model.
	for d, net := range experts {
		x := nn.NewTensor(240, 4)
		labels := make([]int, 240)
		for i := 0; i < 240; i++ {
			dom := i % 3
			v := sample(rng, dom)
			for j, f := range v {
				x.Set(i, j, f)
			}
			if dom == d {
				labels[i] = 1
			}
		}
		for epoch := 0; epoch < 150; epoch++ {
			if _, err := net.TrainStep(x, labels, 0.15); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Route 300 mixed requests by a rule router and let the selected
	// expert classify: accuracy shows the CoE beats any single expert.
	correct, total := 0, 0
	for i := 0; i < 300; i++ {
		dom := rng.Intn(3)
		v := sample(rng, dom)
		x, err := nn.FromSlice(1, 4, v)
		if err != nil {
			log.Fatal(err)
		}
		// Rule router: pick the expert whose signature feature is
		// strongest (symbol -> code, digit -> math, else prose).
		pick := 2
		if v[0] > 0.55 {
			pick = 0
		} else if v[1] > 0.6 {
			pick = 1
		}
		preds, err := experts[pick].Predict(x)
		if err != nil {
			log.Fatal(err)
		}
		if (preds[0] == 1) == (pick == dom) {
			correct++
		}
		total++
	}
	fmt.Printf("real-compute CoE: routed %d requests, expert verdicts correct %.1f%%\n",
		total, 100*float64(correct)/float64(total))
	fmt.Printf("each expert: %d parameters of actual Go-computed MLP\n\n", experts[0].Params())

	// --- Part 2: serve the same CoE shape at scale --------------------
	// Domain experts in production are large (§2.1: code, math, law
	// models); model them with the built-in architectures and serve a
	// skewed request mix through CoServe on the UMA device.
	b := coserve.NewModelBuilder("llm-router")
	var probs []float64
	mix := []float64{0.5, 0.3, 0.2} // code-heavy request mix
	for d, name := range names {
		// Production domain experts: many per domain (versions, sizes).
		for v := 0; v < 40; v++ {
			id := b.AddExpert(fmt.Sprintf("%s-v%d", name, v), coserve.ResNet101, coserve.Preliminary)
			b.AddRule(d*40+v, coserve.Rule{Classifier: id})
			probs = append(probs, mix[d]/40)
		}
	}
	model, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	classProbs := make(map[int]float64, len(probs))
	for c, p := range probs {
		classProbs[c] = p
	}
	if err := coserve.ComputeUsage(model, classProbs); err != nil {
		log.Fatal(err)
	}

	dev := coserve.UMADevice()
	perf, err := coserve.Profile(dev, coserve.EvalArchitectures())
	if err != nil {
		log.Fatal(err)
	}
	gpus, cpus := coserve.DefaultExecutors(dev)
	cfg := coserve.Config{
		Device: dev, Variant: coserve.CoServe,
		GPUExecutors: gpus, CPUExecutors: cpus,
		Alloc: coserve.CasualAllocation(dev, perf, gpus, cpus), Perf: perf,
	}
	srv, err := coserve.NewServer(cfg, model)
	if err != nil {
		log.Fatal(err)
	}
	board, err := coserve.NewBoard(model, probs)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := srv.RunTask(coserve.Task{
		Name: "llm-mix", Board: board, N: 1000,
		ArrivalPeriod: 4 * time.Millisecond, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d domain requests over %d experts on %s\n",
		rep.Completions, model.NumExperts(), dev.Name)
	fmt.Printf("throughput %.1f req/s, %d expert switches, p95 latency %.1fs\n",
		rep.Throughput, rep.Switches, rep.Latency.P95)
}
