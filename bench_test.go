package coserve_test

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	coserve "repro"
	"repro/internal/cluster"
	"repro/internal/coe"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchCtx memoizes boards, perf matrices, and the evaluation grid, so
// every benchmark iteration after the first measures the (cached)
// regeneration path rather than re-simulating the world.
var benchCtx = coserve.NewExperimentContext()

// benchExperiment is the shared driver: one benchmark per paper table
// and figure, regenerating it through the public API.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = coserve.RunExperiment(benchCtx, id)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(out) == 0 {
		b.Fatal("empty experiment output")
	}
}

// One benchmark per evaluation artifact of the paper.
func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "tab1") }
func BenchmarkFigure1(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkFigure5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFigure14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFigure15(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFigure16(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFigure17(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkFigure18(b *testing.B) { benchExperiment(b, "fig18") }
func BenchmarkFigure19(b *testing.B) { benchExperiment(b, "fig19") }

// Extension experiments (design-choice ablation and sensitivity sweeps).
func BenchmarkExtEviction(b *testing.B)     { benchExperiment(b, "ext-evict") }
func BenchmarkExtSSDSweep(b *testing.B)     { benchExperiment(b, "ext-ssd") }
func BenchmarkExtArrivalSweep(b *testing.B) { benchExperiment(b, "ext-arrival") }

// BenchmarkAllExperiments measures the full reproduction — every
// registered experiment (paper figures, extensions, serve-*) on a fresh,
// uncached context per iteration — sequentially and fanned out across
// all cores through the parallel run engine. The wall-clock ratio of
// the two sub-benchmarks is the speedup recorded in
// BENCH_experiments.json; the outputs are byte-identical (asserted by
// TestParallelOutputByteIdentical in internal/experiments).
func BenchmarkAllExperiments(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := coserve.NewExperimentContext()
				ctx.SetParallel(workers)
				outs, err := coserve.RunExperiments(ctx, nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(outs) != len(coserve.Experiments()) {
					b.Fatalf("regenerated %d of %d experiments", len(outs), len(coserve.Experiments()))
				}
			}
		})
	}
}

// BenchmarkTaskA1 measures one full, uncached Task A1 simulation per
// system variant on the NUMA device and reports the achieved virtual
// throughput — the end-to-end cost of the headline experiment.
func BenchmarkTaskA1(b *testing.B) {
	dev := hw.NUMADevice()
	board, err := workload.BoardA().Build()
	if err != nil {
		b.Fatal(err)
	}
	perf, err := coserve.Profile(dev, coserve.EvalArchitectures())
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []core.Variant{core.Samba, core.CoServe} {
		variant := variant
		b.Run(variant.String(), func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				g, c := core.DefaultExecutors(dev)
				cfg := core.Config{Device: dev, Variant: variant, GPUExecutors: g, CPUExecutors: c, Perf: perf}
				if variant == core.Samba {
					cfg.Alloc = core.SambaAllocation(dev, perf)
				} else {
					cfg.Alloc = core.CasualAllocation(dev, perf, g, c)
				}
				sys, err := core.NewSystem(cfg, board.Model)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := sys.RunTask(workload.TaskA1(board))
				if err != nil {
					b.Fatal(err)
				}
				tp = rep.Throughput
			}
			b.ReportMetric(tp, "img/s(virtual)")
		})
	}
}

// BenchmarkPoissonServe measures the open-loop serving path end to end:
// one System per iteration serving a Poisson stream through the
// controller, with SLO accounting on — the serving-layer overhead
// future PRs must not regress.
func BenchmarkPoissonServe(b *testing.B) {
	dev := hw.NUMADevice()
	board, err := workload.BoardA().Build()
	if err != nil {
		b.Fatal(err)
	}
	perf, err := coserve.Profile(dev, coserve.EvalArchitectures())
	if err != nil {
		b.Fatal(err)
	}
	g, c := core.DefaultExecutors(dev)
	cfg := core.Config{
		Device: dev, Variant: core.CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: core.CasualAllocation(dev, perf, g, c), Perf: perf,
		SLO: 500 * time.Millisecond,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(cfg, board.Model)
		if err != nil {
			b.Fatal(err)
		}
		src, err := workload.Poisson{
			Name: "bench-poisson", Board: board, Rate: 40, N: 500, Seed: 99,
		}.NewSource()
		if err != nil {
			b.Fatal(err)
		}
		rep, err := sys.Serve(src)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completions != 500 {
			b.Fatalf("completions = %d", rep.Completions)
		}
	}
}

// BenchmarkClusterServe measures the multi-node serving path end to
// end: one cluster per iteration (node construction, placement
// planning, shared-env simulation) serving a Poisson stream through the
// router. The 1-node case prices the cluster layer's overhead over a
// bare System; the 4-node case is the fleet path the serve-cluster
// experiment sweeps. Baseline in BENCH_cluster.json (`make
// bench-cluster` regenerates the measurement).
func BenchmarkClusterServe(b *testing.B) {
	dev := hw.NUMADevice()
	board, err := workload.BoardA().Build()
	if err != nil {
		b.Fatal(err)
	}
	perf, err := coserve.Profile(dev, coserve.EvalArchitectures())
	if err != nil {
		b.Fatal(err)
	}
	g, c := core.DefaultExecutors(dev)
	node := core.Config{
		Device: dev, Variant: core.CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: core.CasualAllocation(dev, perf, g, c), Perf: perf,
		SLO: 500 * time.Millisecond,
	}
	for _, nodes := range []int{1, 4} {
		nodes := nodes
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cl, err := coserve.NewCluster(coserve.ClusterConfig{
					Nodes:     coserve.UniformNodes(nodes, node),
					Router:    cluster.Affinity{},
					Placement: cluster.UsageProportional{},
					SLO:       node.SLO,
				}, board.Model)
				if err != nil {
					b.Fatal(err)
				}
				src, err := workload.Poisson{
					Name: "bench-cluster", Board: board, Rate: 40, N: 500, Seed: 99,
				}.NewSource()
				if err != nil {
					b.Fatal(err)
				}
				rep, err := cl.Serve(src)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Completions != 500 {
					b.Fatalf("completions = %d", rep.Completions)
				}
			}
		})
	}
}

// BenchmarkWarmRestartServe measures the warm path: the first stream
// pays system construction and pool initialization, then b.N
// consecutive streams reuse the loaded pools.
func BenchmarkWarmRestartServe(b *testing.B) {
	dev := hw.NUMADevice()
	board, err := workload.BoardA().Build()
	if err != nil {
		b.Fatal(err)
	}
	perf, err := coserve.Profile(dev, coserve.EvalArchitectures())
	if err != nil {
		b.Fatal(err)
	}
	g, c := core.DefaultExecutors(dev)
	cfg := core.Config{
		Device: dev, Variant: core.CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: core.CasualAllocation(dev, perf, g, c), Perf: perf,
	}
	sys, err := core.NewSystem(cfg, board.Model)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.RunTask(workload.Task{
		Name: "warmup", Board: board, N: 200,
		ArrivalPeriod: workload.DefaultArrivalPeriod, Seed: 1,
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sys.RunTask(workload.Task{
			Name: "warm", Board: board, N: 200,
			ArrivalPeriod: workload.DefaultArrivalPeriod, Seed: int64(i + 2),
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completions != 200 {
			b.Fatalf("completions = %d", rep.Completions)
		}
	}
}

// BenchmarkSimKernel measures raw event throughput of the discrete-event
// kernel: pairs of processes ping-ponging through sleeps.
func BenchmarkSimKernel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		for p := 0; p < 4; p++ {
			env.Go("p", func(pr *sim.Proc) {
				for t := 0; t < 250; t++ {
					pr.Sleep(time.Millisecond)
				}
			})
		}
		env.Run()
	}
}

// BenchmarkMinMaxAssign measures one dependency-aware assignment
// decision across 7 queues with realistic backlogs — the per-request
// scheduling cost of Figure 19.
func BenchmarkMinMaxAssign(b *testing.B) {
	env := sim.NewEnv()
	costs := sched.Costs{
		K:           func(*coe.Expert) time.Duration { return 2 * time.Millisecond },
		B:           func(*coe.Expert) time.Duration { return 5 * time.Millisecond },
		PredictLoad: func(*coe.Expert) time.Duration { return time.Second },
		IsLoaded:    func(coe.ExpertID) bool { return false },
	}
	qs := make([]*sched.Queue, 7)
	for i := range qs {
		qs[i] = sched.NewQueue(env, fmt.Sprintf("q%d", i), sched.ModeGrouped, costs)
		for j := 0; j < 40; j++ {
			e := &coe.Expert{ID: coe.ExpertID(i*100 + j%11), Arch: model.ResNet101}
			qs[i].Enqueue(e, coe.NewRequest(int64(j), 0, []coe.ExpertID{e.ID}))
		}
	}
	assigner := sched.MinMax{}
	e := &coe.Expert{ID: 999, Arch: model.ResNet101}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assigner.Pick(0, qs, e)
	}
}

// BenchmarkGroupedEnqueue measures the queue arranging hot path: one
// merge into an existing group plus the gate notify, the per-request
// cost Enqueue pays after assignment.
func BenchmarkGroupedEnqueue(b *testing.B) {
	env := sim.NewEnv()
	costs := sched.Costs{
		K:           func(*coe.Expert) time.Duration { return 2 * time.Millisecond },
		B:           func(*coe.Expert) time.Duration { return 5 * time.Millisecond },
		PredictLoad: func(*coe.Expert) time.Duration { return time.Second },
		IsLoaded:    func(coe.ExpertID) bool { return false },
	}
	q := sched.NewQueue(env, "q", sched.ModeGrouped, costs)
	e := &coe.Expert{ID: 1, Arch: model.ResNet101}
	r := coe.NewRequest(0, 0, []coe.ExpertID{e.ID})
	q.Enqueue(e, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(e, r)
		// Drain periodically so the group's item slice stays at a
		// steady-state size instead of growing with b.N.
		if q.Len() >= 1024 {
			for q.Len() > 0 {
				q.TakeFromHead(512)
			}
		}
	}
}

// BenchmarkSummarize measures the single-sort latency summary over a
// 10k-sample stream — the per-report cost of every serving experiment.
func BenchmarkSummarize(b *testing.B) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64((i * 7919) % 10000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Summarize(xs)
	}
}

// BenchmarkDepAwareEviction measures a two-stage victim selection over a
// pool holding ~60 experts.
func BenchmarkDepAwareEviction(b *testing.B) {
	env := sim.NewEnv()
	store := pool.NewStore(env, hw.NUMADevice(), 0)
	mb := coe.NewBuilder("bench")
	var ids []coe.ExpertID
	for i := 0; i < 60; i++ {
		role := coe.Preliminary
		if i%5 == 4 {
			role = coe.Subsequent
		}
		id := mb.AddExpert("e", model.ResNet101, role)
		ids = append(ids, id)
		if role == coe.Preliminary {
			mb.AddRule(i, coe.Rule{Classifier: id})
		}
	}
	m, err := mb.Build()
	if err != nil {
		b.Fatal(err)
	}
	for i, e := range m.Experts() {
		e.UsageProb = float64(i%17) / 17
	}
	p := pool.New("bench", 61*model.ResNet101.WeightBytes(), store, 0, pool.DepAware{}, env.Now)
	for _, id := range ids {
		p.Preload(m.Expert(id))
	}
	policy := pool.DepAware{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victims := policy.Victims(p, model.ResNet101.WeightBytes())
		if len(victims) == 0 {
			b.Fatal("no victims")
		}
	}
}

// BenchmarkWorkloadGeneration measures deterministic request-stream
// generation for Task A2 (3,500 requests).
func BenchmarkWorkloadGeneration(b *testing.B) {
	board, err := workload.BoardA().Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs, err := workload.TaskA2(board).Generate()
		if err != nil || len(reqs) != 3500 {
			b.Fatalf("generation failed: %v (%d)", err, len(reqs))
		}
	}
}

// BenchmarkProfiledMatrix measures the whole offline microbenchmark
// phase for one device.
func BenchmarkProfiledMatrix(b *testing.B) {
	dev := hw.UMADevice()
	for i := 0; i < b.N; i++ {
		if _, err := coserve.Profile(dev, coserve.EvalArchitectures()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetServe measures the fleet-scale hot path: a 100-node
// CoServe cluster in sketch-percentile mode serving an arena-backed
// Steady stream, picks recording off — every O(stream-length) data
// structure replaced by its O(1) counterpart. The two sub-benchmarks
// differ only in stream length (100k vs 1M requests at the same
// offered rate); because completions recycle their requests, drained
// scheduler groups recycle, and the sketch is fixed-size, memory grows
// far sublinearly across the 10× (construction dominates; what scales
// is per-expert-switch eviction bookkeeping, ~4 B/request). Those
// absolute numbers are the regression gate pinned in BENCH_fleet.json
// (`make bench-fleet` regenerates and checks it).
func BenchmarkFleetServe(b *testing.B) {
	const (
		fleetNodes = 100
		fleetRate  = 600.0 // ~72% of the fleet's measured capacity: loaded, not backlogged
	)
	dev := hw.NUMADevice()
	board, err := workload.BoardA().Build()
	if err != nil {
		b.Fatal(err)
	}
	perf, err := coserve.Profile(dev, coserve.EvalArchitectures())
	if err != nil {
		b.Fatal(err)
	}
	g, c := core.DefaultExecutors(dev)
	node := core.Config{
		Device: dev, Variant: core.CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: core.CasualAllocation(dev, perf, g, c), Perf: perf,
		SLO:          500 * time.Millisecond,
		Percentiles:  core.PercentilesSketch,
		DisablePicks: true,
	}
	run := func(b *testing.B, requests int, ic coserve.Interconnect, shards int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl, err := coserve.NewCluster(coserve.ClusterConfig{
				Nodes:        coserve.UniformNodes(fleetNodes, node),
				Router:       cluster.Affinity{},
				Placement:    cluster.UsageProportional{},
				SLO:          node.SLO,
				Percentiles:  core.PercentilesSketch,
				Interconnect: ic,
				Shards:       shards,
			}, board.Model)
			if err != nil {
				b.Fatal(err)
			}
			arena := coe.NewArena()
			src, err := workload.Steady{
				Name: "bench-fleet", Board: board,
				Rate: fleetRate, Seed: 20260807, Arena: arena,
			}.NewSource()
			if err != nil {
				b.Fatal(err)
			}
			horizon := time.Duration(float64(requests) / fleetRate * float64(time.Second))
			rep, err := cl.Serve(workload.Horizon(src, horizon))
			if err != nil {
				b.Fatal(err)
			}
			if rep.Completions < int64(requests) {
				b.Fatalf("completions = %d, want >= %d", rep.Completions, requests)
			}
			if rep.LatencySketch == nil || rep.LatencySketch.Count() != rep.Completions {
				b.Fatal("fleet sketch missing or miscounted")
			}
			if free := arena.Free(); int64(free) >= rep.Completions/10 {
				b.Fatalf("arena free list %d not bounded by in-flight peak", free)
			}
		}
	}
	for _, requests := range []int{100_000, 1_000_000} {
		requests := requests
		b.Run(fmt.Sprintf("nodes=%d/requests=%d", fleetNodes, requests), func(b *testing.B) {
			run(b, requests, coserve.Interconnect{}, 0)
		})
	}
	// Sharded rows: the same fleet served over a minimal interconnect
	// (100µs dispatch, 50µs intra-board for the first 16 nodes, 300µs
	// beyond — small against the 500ms SLO), which moves the cluster
	// onto the sharded kernel: 101 partitions advanced in parallel
	// under conservative lookahead. shards=1 prices the partitioned
	// kernel sequentially (the barrier and offer/fold protocol with no
	// parallelism to pay for them); shards=4 is the wall-clock scaling
	// row — compare its ns/op against shards=1 on a multi-core machine.
	// Every offer and completion ack crossing the wire is a pooled typed
	// message recycling through per-partition free lists, so the rows
	// land within a few percent of the classic kernel's allocations —
	// what remains above it is the lease ledger and the extra timed
	// events, the modeled cost of distribution.
	ic := coserve.Interconnect{
		Dispatch:   100 * time.Microsecond,
		IntraBoard: 50 * time.Microsecond,
		InterNode:  300 * time.Microsecond,
		BoardSize:  16,
	}
	for _, shards := range []int{1, 4} {
		shards := shards
		b.Run(fmt.Sprintf("nodes=%d/requests=%d/shards=%d", fleetNodes, 100_000, shards), func(b *testing.B) {
			run(b, 100_000, ic, shards)
		})
	}
}

// echoHarness is BenchmarkShardedKernel's workload: pooled messages
// ping-ponging between worker partitions, exercising exactly the
// kernel hot path — frontier-indexed round scheduling, coordinator
// batch stepping, outbox merges, and per-partition message free lists —
// with no cluster, routing, or node model on top.
type echoHarness struct {
	s     *sim.Sharded
	la    time.Duration
	free  []*echoMsg
	count []int // per-partition deliveries; summed only after Run
}

type echoMsg struct {
	h    *echoHarness
	from int // posting partition: the pong target
	part int // delivery partition
	hops int // remaining round trips
	next *echoMsg
}

func (h *echoHarness) newMsg(part int) *echoMsg {
	m := h.free[part]
	if m == nil {
		return &echoMsg{h: h}
	}
	h.free[part] = m.next
	m.next = nil
	return m
}

// Deliver implements sim.Message: count the hop, recycle the carrier,
// and pong back with a deterministic per-hop delay spread so rounds
// overlap different partition subsets.
func (m *echoMsg) Deliver(at sim.Time) {
	h := m.h
	from, part, hops := m.from, m.part, m.hops
	env := h.s.Part(part)
	src := h.s.PosterPartition(env)
	m.next = h.free[src]
	h.free[src] = m
	h.count[part]++
	if hops == 0 {
		return
	}
	nm := h.newMsg(src)
	nm.from, nm.part, nm.hops = part, from, hops-1
	jitter := time.Duration((hops*31+part*17)%97) * time.Microsecond
	h.s.PostMsg(env, from, at.Add(h.la+jitter), nm)
}

// BenchmarkShardedKernel prices the sharded kernel alone: parts-1
// worker partitions exchanging pooled echo messages under conservative
// lookahead. workers=1 runs rounds inline (pure kernel overhead);
// workers=4 adds the crew barrier. Allocations are the regression gate
// (BENCH_kernel.json via `make bench-shard`): the message pool and the
// persistent crew hold the whole run to a near-constant alloc count
// regardless of hop volume.
func BenchmarkShardedKernel(b *testing.B) {
	const (
		parts  = 9
		chains = 32
		hops   = 512
		la     = 500 * time.Microsecond
	)
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("parts=%d/workers=%d", parts, workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h := &echoHarness{
					s:     sim.NewSharded(parts, workers, la),
					la:    la,
					free:  make([]*echoMsg, parts),
					count: make([]int, parts),
				}
				coord := h.s.Part(0)
				for c := 0; c < chains; c++ {
					m := h.newMsg(0)
					m.from = 1 + c%(parts-1)
					m.part = 1 + (c*5+3)%(parts-1)
					m.hops = hops
					h.s.PostMsg(coord, m.part, sim.Time(0).Add(time.Duration(c)*137*time.Microsecond), m)
				}
				h.s.Run()
				total := 0
				for _, n := range h.count {
					total += n
				}
				if want := chains * (hops + 1); total != want {
					b.Fatalf("delivered %d messages, want %d", total, want)
				}
			}
		})
	}
}

// BenchmarkChaosServe measures the fault-injected serving path: a
// 4-node cluster per iteration serving a Poisson stream with the fault
// plan, lease ledger, and (in the gray case) health scoring, breaker,
// and hedging all active. The failstop sub-benchmark prices the
// crash/redeliver machinery; the gray one prices the full mitigation
// stack against a fail-slow straggler. Absolute allocs/op and bytes/op
// are the regression gate pinned in BENCH_chaos.json (`make
// bench-chaos` regenerates and checks it) — the chaos layer must stay
// cheap enough that arming it is never a serving-path tax.
func BenchmarkChaosServe(b *testing.B) {
	dev := hw.NUMADevice()
	board, err := workload.BoardA().Build()
	if err != nil {
		b.Fatal(err)
	}
	perf, err := coserve.Profile(dev, coserve.EvalArchitectures())
	if err != nil {
		b.Fatal(err)
	}
	g, c := core.DefaultExecutors(dev)
	node := core.Config{
		Device: dev, Variant: core.CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: core.CasualAllocation(dev, perf, g, c), Perf: perf,
		SLO: 3 * time.Second,
	}
	cases := []struct {
		name   string
		plan   *coserve.FaultPlan
		health coserve.HealthConfig
		hedge  coserve.HedgeConfig
	}{
		{
			name: "faults=failstop",
			plan: &coserve.FaultPlan{Events: []coserve.FaultEvent{
				{At: 2 * time.Second, Node: 1, Kind: coserve.FaultCrash},
				{At: 4 * time.Second, Node: 1, Kind: coserve.FaultRecover},
				{At: 6 * time.Second, Node: 2, Kind: coserve.FaultDrain},
				{At: 9 * time.Second, Node: 2, Kind: coserve.FaultRecover},
			}},
		},
		{
			name: "faults=gray",
			plan: &coserve.FaultPlan{Events: []coserve.FaultEvent{
				{At: 2 * time.Second, Node: 1, Kind: coserve.FaultSlow, Factor: 150},
				{At: 20 * time.Second, Node: 1, Kind: coserve.FaultRecover},
			}},
			health: coserve.HealthConfig{Window: 500 * time.Millisecond, Breaker: true, Cooldown: 8, Probes: 3},
			hedge:  coserve.HedgeConfig{After: time.Second},
		},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cl, err := coserve.NewCluster(coserve.ClusterConfig{
					Nodes:     coserve.UniformNodes(4, node),
					Router:    cluster.Affinity{},
					Placement: cluster.Partition{},
					SLO:       node.SLO,
					Faults:    tc.plan,
					Health:    tc.health,
					Hedge:     tc.hedge,
				}, board.Model)
				if err != nil {
					b.Fatal(err)
				}
				src, err := workload.Poisson{
					Name: "bench-chaos", Board: board, Rate: 8, N: 240, Seed: 20260730,
				}.NewSource()
				if err != nil {
					b.Fatal(err)
				}
				rep, err := cl.Serve(src)
				if err != nil {
					b.Fatal(err)
				}
				// Exactly-once at the end of every iteration: arrivals either
				// completed once or were terminally rejected on redelivery.
				if rep.Completions+rep.RedeliveredRejected != rep.N {
					b.Fatalf("%d completions + %d terminal rejections != %d arrivals",
						rep.Completions, rep.RedeliveredRejected, rep.N)
				}
			}
		})
	}
}

// TestBenchSanity keeps the bench harness honest under plain `go test`:
// the headline figure regenerates and contains every expected system.
func TestBenchSanity(t *testing.T) {
	out, err := coserve.RunExperiment(benchCtx, "fig13")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"NUMA", "UMA", "A1", "B2"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig13 output missing %q", want)
		}
	}
	// The rendered ratios must parse as multi-x wins.
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) > 2 && (fields[0] == "NUMA" || fields[0] == "UMA") {
			r := strings.TrimSuffix(fields[len(fields)-3], "×")
			ratio, err := strconv.ParseFloat(r, 64)
			if err != nil {
				t.Fatalf("unparseable ratio in %q", line)
			}
			if ratio < 2 {
				t.Errorf("ratio %v too small in %q", ratio, line)
			}
		}
	}
}
