// Package nn is a small, dependency-free neural-network engine: dense
// feed-forward networks with deterministic initialization, forward
// inference, and gradient-descent training.
//
// The serving system proper schedules experts through calibrated cost
// models (internal/model) — it never needs real tensors. This package
// exists so the runnable examples can put genuine model computation
// behind the CoE expert abstraction: the llmrouter example trains and
// serves real (tiny) domain experts through the same public API.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major matrix of float32 values. A vector is a
// 1×n tensor.
type Tensor struct {
	Rows, Cols int
	Data       []float32
}

// NewTensor allocates a zero tensor.
func NewTensor(rows, cols int) *Tensor {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("nn: invalid tensor shape %dx%d", rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows×cols tensor, copying it.
func FromSlice(rows, cols int, data []float32) (*Tensor, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("nn: %d values cannot fill %dx%d", len(data), rows, cols)
	}
	t := NewTensor(rows, cols)
	copy(t.Data, data)
	return t, nil
}

// At returns element (r, c).
func (t *Tensor) At(r, c int) float32 { return t.Data[r*t.Cols+c] }

// Set assigns element (r, c).
func (t *Tensor) Set(r, c int, v float32) { t.Data[r*t.Cols+c] = v }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := NewTensor(t.Rows, t.Cols)
	copy(out.Data, t.Data)
	return out
}

// MatMul computes a @ b.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("nn: matmul shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := NewTensor(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			if av == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += av * b.At(k, j)
			}
		}
	}
	return out, nil
}

// Layer is one differentiable network stage.
type Layer interface {
	// Forward maps the input batch to the output batch, caching what
	// Backward needs.
	Forward(x *Tensor) (*Tensor, error)
	// Backward maps the output gradient to the input gradient and
	// accumulates parameter gradients.
	Backward(grad *Tensor) (*Tensor, error)
	// Step applies and clears accumulated gradients with learning rate lr.
	Step(lr float32)
	// Params reports the parameter count.
	Params() int64
}

// Dense is a fully connected layer: y = x@W + b.
type Dense struct {
	W, B   *Tensor
	gradW  *Tensor
	gradB  *Tensor
	lastIn *Tensor
}

// NewDense builds a Dense layer with deterministic Xavier-style
// initialization from the seed.
func NewDense(in, out int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	d := &Dense{
		W:     NewTensor(in, out),
		B:     NewTensor(1, out),
		gradW: NewTensor(in, out),
		gradB: NewTensor(1, out),
	}
	scale := float32(math.Sqrt(2.0 / float64(in+out)))
	for i := range d.W.Data {
		d.W.Data[i] = (rng.Float32()*2 - 1) * scale
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *Tensor) (*Tensor, error) {
	d.lastIn = x
	y, err := MatMul(x, d.W)
	if err != nil {
		return nil, err
	}
	for i := 0; i < y.Rows; i++ {
		for j := 0; j < y.Cols; j++ {
			y.Data[i*y.Cols+j] += d.B.Data[j]
		}
	}
	return y, nil
}

// Backward implements Layer.
func (d *Dense) Backward(grad *Tensor) (*Tensor, error) {
	if d.lastIn == nil {
		return nil, errors.New("nn: Backward before Forward")
	}
	// gradW += lastIn^T @ grad; gradB += col sums; gradIn = grad @ W^T.
	for i := 0; i < d.lastIn.Cols; i++ {
		for j := 0; j < grad.Cols; j++ {
			var sum float32
			for r := 0; r < grad.Rows; r++ {
				sum += d.lastIn.At(r, i) * grad.At(r, j)
			}
			d.gradW.Data[i*d.gradW.Cols+j] += sum
		}
	}
	for j := 0; j < grad.Cols; j++ {
		var sum float32
		for r := 0; r < grad.Rows; r++ {
			sum += grad.At(r, j)
		}
		d.gradB.Data[j] += sum
	}
	gradIn := NewTensor(grad.Rows, d.W.Rows)
	for r := 0; r < grad.Rows; r++ {
		for i := 0; i < d.W.Rows; i++ {
			var sum float32
			for j := 0; j < d.W.Cols; j++ {
				sum += grad.At(r, j) * d.W.At(i, j)
			}
			gradIn.Set(r, i, sum)
		}
	}
	return gradIn, nil
}

// Step implements Layer.
func (d *Dense) Step(lr float32) {
	for i := range d.W.Data {
		d.W.Data[i] -= lr * d.gradW.Data[i]
		d.gradW.Data[i] = 0
	}
	for i := range d.B.Data {
		d.B.Data[i] -= lr * d.gradB.Data[i]
		d.gradB.Data[i] = 0
	}
}

// Params implements Layer.
func (d *Dense) Params() int64 { return int64(len(d.W.Data) + len(d.B.Data)) }

// ReLU is the rectified-linear activation.
type ReLU struct {
	mask []bool
}

// Forward implements Layer.
func (r *ReLU) Forward(x *Tensor) (*Tensor, error) {
	out := x.Clone()
	r.mask = make([]bool, len(out.Data))
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		} else {
			r.mask[i] = true
		}
	}
	return out, nil
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *Tensor) (*Tensor, error) {
	if r.mask == nil {
		return nil, errors.New("nn: Backward before Forward")
	}
	if len(grad.Data) != len(r.mask) {
		return nil, errors.New("nn: ReLU gradient shape mismatch")
	}
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out, nil
}

// Step implements Layer.
func (r *ReLU) Step(float32) {}

// Params implements Layer.
func (r *ReLU) Params() int64 { return 0 }

// Network is a sequential stack of layers.
type Network struct {
	Name   string
	Layers []Layer
}

// NewMLP builds Dense+ReLU stacks from the layer widths, ending with a
// linear output layer (softmax is applied by the loss / Predict).
func NewMLP(name string, seed int64, widths ...int) (*Network, error) {
	if len(widths) < 2 {
		return nil, errors.New("nn: an MLP needs at least input and output widths")
	}
	n := &Network{Name: name}
	for i := 0; i+1 < len(widths); i++ {
		n.Layers = append(n.Layers, NewDense(widths[i], widths[i+1], seed+int64(i)))
		if i+2 < len(widths) {
			n.Layers = append(n.Layers, &ReLU{})
		}
	}
	return n, nil
}

// Forward runs the batch through every layer.
func (n *Network) Forward(x *Tensor) (*Tensor, error) {
	var err error
	for _, l := range n.Layers {
		x, err = l.Forward(x)
		if err != nil {
			return nil, err
		}
	}
	return x, nil
}

// Params reports the total parameter count.
func (n *Network) Params() int64 {
	var sum int64
	for _, l := range n.Layers {
		sum += l.Params()
	}
	return sum
}

// Softmax converts logits to row-wise probabilities.
func Softmax(logits *Tensor) *Tensor {
	out := logits.Clone()
	for r := 0; r < out.Rows; r++ {
		row := out.Data[r*out.Cols : (r+1)*out.Cols]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float32
		for i, v := range row {
			e := float32(math.Exp(float64(v - maxV)))
			row[i] = e
			sum += e
		}
		for i := range row {
			row[i] /= sum
		}
	}
	return out
}

// Predict returns the argmax class of each row.
func (n *Network) Predict(x *Tensor) ([]int, error) {
	logits, err := n.Forward(x)
	if err != nil {
		return nil, err
	}
	out := make([]int, logits.Rows)
	for r := 0; r < logits.Rows; r++ {
		best, bestV := 0, logits.At(r, 0)
		for c := 1; c < logits.Cols; c++ {
			if v := logits.At(r, c); v > bestV {
				best, bestV = c, v
			}
		}
		out[r] = best
	}
	return out, nil
}

// TrainStep runs one cross-entropy gradient step on a labelled batch and
// returns the batch loss.
func (n *Network) TrainStep(x *Tensor, labels []int, lr float32) (float64, error) {
	if len(labels) != x.Rows {
		return 0, fmt.Errorf("nn: %d labels for %d rows", len(labels), x.Rows)
	}
	logits, err := n.Forward(x)
	if err != nil {
		return 0, err
	}
	probs := Softmax(logits)
	var loss float64
	grad := probs.Clone()
	for r, label := range labels {
		if label < 0 || label >= probs.Cols {
			return 0, fmt.Errorf("nn: label %d out of range", label)
		}
		p := float64(probs.At(r, label))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		grad.Data[r*grad.Cols+label] -= 1
	}
	scale := 1 / float32(x.Rows)
	for i := range grad.Data {
		grad.Data[i] *= scale
	}
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad, err = n.Layers[i].Backward(grad)
		if err != nil {
			return 0, err
		}
	}
	for _, l := range n.Layers {
		l.Step(lr)
	}
	return loss / float64(x.Rows), nil
}

// Accuracy scores predictions against labels.
func Accuracy(preds, labels []int) float64 {
	if len(preds) == 0 || len(preds) != len(labels) {
		return 0
	}
	hits := 0
	for i := range preds {
		if preds[i] == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(preds))
}
