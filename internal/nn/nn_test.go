package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3)
	x.Set(1, 2, 5)
	if x.At(1, 2) != 5 {
		t.Error("Set/At roundtrip failed")
	}
	c := x.Clone()
	c.Set(0, 0, 9)
	if x.At(0, 0) == 9 {
		t.Error("Clone aliases data")
	}
	if _, err := FromSlice(2, 2, []float32{1, 2, 3}); err == nil {
		t.Error("FromSlice accepted wrong length")
	}
}

func TestTensorShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero-dimension tensor")
		}
	}()
	NewTensor(0, 3)
}

func TestMatMul(t *testing.T) {
	a, _ := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b, _ := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Errorf("matmul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
	if _, err := MatMul(a, a); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestDenseForwardLinear(t *testing.T) {
	d := NewDense(2, 1, 1)
	d.W.Data = []float32{2, 3}
	d.B.Data = []float32{1}
	x, _ := FromSlice(1, 2, []float32{4, 5})
	y, err := d.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(0, 0) != 2*4+3*5+1 {
		t.Errorf("dense forward = %v, want 24", y.At(0, 0))
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	x, _ := FromSlice(1, 4, []float32{-1, 0, 2, -3})
	y, _ := r.Forward(x)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Errorf("relu[%d] = %v, want %v", i, y.Data[i], want[i])
		}
	}
	g, _ := FromSlice(1, 4, []float32{5, 5, 5, 5})
	gi, err := r.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	wantG := []float32{0, 5, 5, 0} // gradient passes where input >= 0
	for i := range wantG {
		if gi.Data[i] != wantG[i] {
			t.Errorf("relu grad[%d] = %v, want %v", i, gi.Data[i], wantG[i])
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	x, _ := FromSlice(2, 3, []float32{1, 2, 3, -5, 0, 5})
	p := Softmax(x)
	for r := 0; r < 2; r++ {
		var sum float64
		for c := 0; c < 3; c++ {
			v := float64(p.At(r, c))
			if v < 0 || v > 1 {
				t.Fatalf("probability %v outside [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %v", r, sum)
		}
	}
}

// Property: softmax is invariant to a constant shift of the logits.
func TestSoftmaxShiftInvariantProperty(t *testing.T) {
	prop := func(a, b, c int8, shift int8) bool {
		x, _ := FromSlice(1, 3, []float32{float32(a), float32(b), float32(c)})
		y, _ := FromSlice(1, 3, []float32{
			float32(a) + float32(shift), float32(b) + float32(shift), float32(c) + float32(shift),
		})
		px, py := Softmax(x), Softmax(y)
		for i := range px.Data {
			if math.Abs(float64(px.Data[i]-py.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMLPConstruction(t *testing.T) {
	n, err := NewMLP("m", 1, 4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Dense(4->8), ReLU, Dense(8->3).
	if len(n.Layers) != 3 {
		t.Fatalf("layers = %d, want 3", len(n.Layers))
	}
	if n.Params() != (4*8+8)+(8*3+3) {
		t.Errorf("params = %d", n.Params())
	}
	if _, err := NewMLP("bad", 1, 4); err == nil {
		t.Error("single-width MLP accepted")
	}
}

func TestDeterministicInit(t *testing.T) {
	a, _ := NewMLP("a", 42, 4, 8, 2)
	b, _ := NewMLP("b", 42, 4, 8, 2)
	da, db := a.Layers[0].(*Dense), b.Layers[0].(*Dense)
	for i := range da.W.Data {
		if da.W.Data[i] != db.W.Data[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

// TestTrainingLearnsBlobs trains a small classifier on two separable
// Gaussian blobs and expects near-perfect accuracy.
func TestTrainingLearnsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 200
	x := NewTensor(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		cx := float32(-1.5)
		if cls == 1 {
			cx = 1.5
		}
		x.Set(i, 0, cx+float32(rng.NormFloat64())*0.4)
		x.Set(i, 1, float32(rng.NormFloat64())*0.4)
		labels[i] = cls
	}
	net, err := NewMLP("blobs", 7, 2, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	var loss float64
	for epoch := 0; epoch < 200; epoch++ {
		loss, err = net.TrainStep(x, labels, 0.1)
		if err != nil {
			t.Fatal(err)
		}
	}
	preds, err := net.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(preds, labels); acc < 0.97 {
		t.Errorf("accuracy = %.3f (loss %.4f), want >= 0.97", acc, loss)
	}
}

func TestTrainStepValidation(t *testing.T) {
	net, _ := NewMLP("v", 1, 2, 2)
	x := NewTensor(2, 2)
	if _, err := net.TrainStep(x, []int{0}, 0.1); err == nil {
		t.Error("label-count mismatch accepted")
	}
	if _, err := net.TrainStep(x, []int{0, 99}, 0.1); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestBackwardBeforeForwardErrors(t *testing.T) {
	d := NewDense(2, 2, 1)
	if _, err := d.Backward(NewTensor(1, 2)); err == nil {
		t.Error("Dense.Backward before Forward accepted")
	}
	r := &ReLU{}
	if _, err := r.Backward(NewTensor(1, 2)); err == nil {
		t.Error("ReLU.Backward before Forward accepted")
	}
}

func TestAccuracy(t *testing.T) {
	if Accuracy([]int{1, 2, 3}, []int{1, 0, 3}) != 2.0/3.0 {
		t.Error("accuracy wrong")
	}
	if Accuracy(nil, nil) != 0 || Accuracy([]int{1}, []int{1, 2}) != 0 {
		t.Error("degenerate accuracy should be 0")
	}
}
