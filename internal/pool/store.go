package pool

import (
	"time"

	"repro/internal/coe"
	"repro/internal/hw"
	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/xfer"
)

// source tags where a fetch was served from.
type source int

const (
	srcSSD source = iota
	srcHost
)

// Store is the device-level expert storage hierarchy. Every expert
// permanently resides on SSD; on NUMA devices a host-memory cache holds
// experts recently evicted from GPU pools (Samba-CoE's DDR tier, §2.2).
// The cache is exclusive: fetching an expert moves it out, and demotion
// moves it back in.
type Store struct {
	dev    *hw.Device
	engine *xfer.Engine
	cache  *hostCache
}

// NewStore returns a store for the device. cacheBytes sets the host
// cache capacity; pass 0 for no cache (UMA devices load experts straight
// from SSD, §5.1).
func NewStore(env *sim.Env, dev *hw.Device, cacheBytes int64) *Store {
	s := &Store{dev: dev, engine: xfer.NewEngine(env, dev)}
	if cacheBytes > 0 {
		s.cache = newHostCache(cacheBytes)
	}
	return s
}

// Device returns the store's device profile.
func (s *Store) Device() *hw.Device { return s.dev }

// Engine returns the transfer engine (for utilization introspection).
func (s *Store) Engine() *xfer.Engine { return s.engine }

// CacheBytes reports the host cache capacity (0 when absent).
func (s *Store) CacheBytes() int64 {
	if s.cache == nil {
		return 0
	}
	return s.cache.arena.Capacity()
}

// Cached reports whether the expert currently sits in the host cache.
func (s *Store) Cached(id coe.ExpertID) bool {
	return s.cache != nil && s.cache.contains(id)
}

// CacheLen reports the number of cached experts.
func (s *Store) CacheLen() int {
	if s.cache == nil {
		return 0
	}
	return len(s.cache.entries)
}

// Fetch brings the expert's weights into the destination tier on behalf
// of the executor process, blocking on the physical transfer resources.
// It serves from the host cache when possible (removing the cached copy
// — the tiers swap, they do not replicate) and from SSD otherwise.
func (s *Store) Fetch(proc *sim.Proc, e *coe.Expert, dst memory.Tier) (src source, elapsed time.Duration) {
	bytes := e.WeightBytes()
	if s.cache != nil && s.cache.take(e.ID) {
		return srcHost, s.engine.Load(proc, xfer.FromHost, dst, bytes)
	}
	return srcSSD, s.engine.Load(proc, xfer.FromSSD, dst, bytes)
}

// PredictLoad reports the expected uncontended switch latency for the
// expert into dst, given current cache contents — the scheduler's
// expert-switching-latency estimate (§4.2).
func (s *Store) PredictLoad(e *coe.Expert, dst memory.Tier) time.Duration {
	bytes := e.WeightBytes()
	if s.Cached(e.ID) {
		return xfer.LoadLatency(s.dev, xfer.FromHost, dst, bytes)
	}
	return xfer.LoadLatency(s.dev, xfer.FromSSD, dst, bytes)
}

// demote records an expert evicted from a pool in the given tier. GPU
// evictions enter the host cache (when present); the in-memory copy is
// otherwise dropped. The copy-out itself is DMA overlapped with compute
// and costs no modeled time.
func (s *Store) demote(e *coe.Expert, from memory.Tier) {
	if s.cache == nil || from != memory.TierGPU {
		return
	}
	s.cache.insert(e)
}

// hostCache is an LRU cache of deserialized experts in CPU memory.
type hostCache struct {
	arena   *memory.Arena
	entries map[coe.ExpertID]*cacheEntry
	seq     int64
}

type cacheEntry struct {
	bytes int64
	used  int64
}

func newHostCache(capacity int64) *hostCache {
	return &hostCache{
		arena:   memory.NewArena("hostcache", capacity),
		entries: make(map[coe.ExpertID]*cacheEntry),
	}
}

func (c *hostCache) contains(id coe.ExpertID) bool {
	_, ok := c.entries[id]
	return ok
}

// take removes the expert from the cache, reporting whether it was there.
func (c *hostCache) take(id coe.ExpertID) bool {
	entry, ok := c.entries[id]
	if !ok {
		return false
	}
	delete(c.entries, id)
	c.arena.Release(entry.bytes)
	return true
}

// insert adds the expert, evicting least-recently-used entries to make
// room. Experts larger than the whole cache are not cached.
func (c *hostCache) insert(e *coe.Expert) {
	bytes := e.WeightBytes()
	if bytes > c.arena.Capacity() {
		return
	}
	if c.contains(e.ID) {
		c.touch(e.ID)
		return
	}
	for c.arena.Free() < bytes {
		c.evictLRU()
	}
	if err := c.arena.Reserve(bytes); err != nil {
		panic("pool: host cache accounting broken: " + err.Error())
	}
	c.seq++
	c.entries[e.ID] = &cacheEntry{bytes: bytes, used: c.seq}
}

func (c *hostCache) touch(id coe.ExpertID) {
	if entry, ok := c.entries[id]; ok {
		c.seq++
		entry.used = c.seq
	}
}

func (c *hostCache) evictLRU() {
	var victim coe.ExpertID = -1
	var oldest int64 = 1<<63 - 1
	//detlint:allow min-fold with a total tie-break on id: the victim is order-independent
	for id, entry := range c.entries {
		if entry.used < oldest || (entry.used == oldest && id < victim) {
			victim, oldest = id, entry.used
		}
	}
	if victim < 0 {
		panic("pool: host cache eviction with no entries")
	}
	entry := c.entries[victim]
	delete(c.entries, victim)
	c.arena.Release(entry.bytes)
}
