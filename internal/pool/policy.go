package pool

import (
	"cmp"
	"slices"

	"repro/internal/coe"
)

// Policy selects eviction victims when a pool must free memory.
// Implementations receive the pool and the number of bytes that must be
// freed, and return loaded, unpinned experts whose combined size covers
// the need (or every candidate, if the need cannot be covered — the
// caller detects the shortfall).
type Policy interface {
	Name() string
	Victims(p *Pool, need int64) []coe.ExpertID
}

// takeUntil collects entries in order until their sizes cover need.
func takeUntil(entries []*Entry, need int64) []coe.ExpertID {
	var out []coe.ExpertID
	var freed int64
	for _, e := range entries {
		if freed >= need {
			break
		}
		out = append(out, e.Expert.ID)
		freed += e.Bytes
	}
	return out
}

// LRU evicts the least recently used experts first — Samba-CoE's
// strategy (§2.2). Ties break on load order, then expert ID, keeping
// runs deterministic.
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "lru" }

// Victims implements Policy.
func (LRU) Victims(p *Pool, need int64) []coe.ExpertID {
	entries := p.LoadedUnpinned()
	slices.SortStableFunc(entries, func(a, b *Entry) int {
		if a.LastUse != b.LastUse {
			return cmp.Compare(a.LastUse, b.LastUse)
		}
		return cmp.Compare(a.LoadSeq, b.LoadSeq)
	})
	return takeUntil(entries, need)
}

// FIFO evicts the earliest loaded experts first — the Samba-CoE FIFO
// baseline (§5.1).
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Victims implements Policy.
func (FIFO) Victims(p *Pool, need int64) []coe.ExpertID {
	entries := p.LoadedUnpinned()
	slices.SortStableFunc(entries, func(a, b *Entry) int {
		return cmp.Compare(a.LoadSeq, b.LoadSeq)
	})
	return takeUntil(entries, need)
}

// DepAware is CoServe's two-stage dependency-aware eviction (§4.3):
//
// Stage 1 evicts subsequent experts none of whose preliminary experts
// are resident in this pool — they cannot run until a preliminary expert
// is switched in, so they only waste memory. Candidates are taken in
// descending memory footprint, minimizing the number of evictions.
//
// Stage 2, if stage 1 freed too little, evicts remaining experts in
// ascending pre-assessed usage probability, keeping the experts most
// likely to be needed (Figure 10).
type DepAware struct{}

// Name implements Policy.
func (DepAware) Name() string { return "dep-aware" }

// Victims implements Policy.
func (DepAware) Victims(p *Pool, need int64) []coe.ExpertID {
	entries := p.LoadedUnpinned()
	var orphans, rest []*Entry
	for _, e := range entries {
		if orphaned(p, e.Expert) {
			orphans = append(orphans, e)
		} else {
			rest = append(rest, e)
		}
	}
	slices.SortStableFunc(orphans, func(a, b *Entry) int {
		return cmp.Compare(b.Bytes, a.Bytes)
	})
	out := takeUntil(orphans, need)
	var freed int64
	for _, id := range out {
		freed += p.entries[id].Bytes
	}
	if freed >= need {
		return out
	}
	slices.SortStableFunc(rest, func(a, b *Entry) int {
		return cmp.Compare(a.Expert.UsageProb, b.Expert.UsageProb)
	})
	return append(out, takeUntil(rest, need-freed)...)
}

// orphaned reports whether the expert is a subsequent expert with none
// of its preliminary experts resident in the pool.
func orphaned(p *Pool, e *coe.Expert) bool {
	if e.Role != coe.Subsequent {
		return false
	}
	for _, dep := range e.DependsOn {
		if p.IsLoaded(dep) {
			return false
		}
	}
	return true
}

// ProbOnly evicts purely by ascending usage probability — DepAware with
// stage 1 removed. It exists for the design-choice ablation: comparing
// it against DepAware isolates the contribution of evicting orphaned
// subsequent experts first.
type ProbOnly struct{}

// Name implements Policy.
func (ProbOnly) Name() string { return "prob-only" }

// Victims implements Policy.
func (ProbOnly) Victims(p *Pool, need int64) []coe.ExpertID {
	entries := p.LoadedUnpinned()
	slices.SortStableFunc(entries, func(a, b *Entry) int {
		return cmp.Compare(a.Expert.UsageProb, b.Expert.UsageProb)
	})
	return takeUntil(entries, need)
}

// PolicyByName returns a policy implementation by its Name.
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "lru":
		return LRU{}, true
	case "fifo":
		return FIFO{}, true
	case "dep-aware":
		return DepAware{}, true
	case "prob-only":
		return ProbOnly{}, true
	default:
		return nil, false
	}
}
