package pool

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/coe"
	"repro/internal/hw"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/xfer"
)

// testWorld builds a sim env, a NUMA store (with optional cache), and a
// CoE model with nCls classifiers and one shared detector linked to
// classifiers 0 and 1.
func testWorld(t *testing.T, cacheBytes int64, nCls int) (*sim.Env, *Store, *coe.Model) {
	t.Helper()
	env := sim.NewEnv()
	store := NewStore(env, hw.NUMADevice(), cacheBytes)
	b := coe.NewBuilder("t")
	var cls []coe.ExpertID
	for i := 0; i < nCls; i++ {
		cls = append(cls, b.AddExpert("c", model.ResNet101, coe.Preliminary))
	}
	det := b.AddExpert("d", model.YOLOv5m, coe.Subsequent)
	b.Link(cls[0], det)
	b.Link(cls[1], det)
	for i, c := range cls {
		b.AddRule(i, coe.Rule{Classifier: c, Detector: det, PassProb: 0.5})
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Distinct usage probabilities: expert i gets (i+1)/total.
	for i, e := range m.Experts() {
		e.UsageProb = float64(i+1) / float64(m.NumExperts())
	}
	return env, store, m
}

func newPool(env *sim.Env, store *Store, capacity int64, pol Policy) *Pool {
	return New("gpu0", capacity, store, memory.TierGPU, pol, env.Now)
}

const rn101 = 178_196_640 // ResNet101 weight bytes

func TestPreload(t *testing.T) {
	env, store, m := testWorld(t, 0, 3)
	p := newPool(env, store, 2*rn101+rn101/2, LRU{})
	if !p.Preload(m.Expert(0)) || !p.Preload(m.Expert(1)) {
		t.Fatal("preload of two experts failed")
	}
	if p.Preload(m.Expert(2)) {
		t.Error("third expert should not fit")
	}
	if !p.Preload(m.Expert(0)) {
		t.Error("re-preload of resident expert should succeed")
	}
	if p.Loaded() != 2 {
		t.Errorf("loaded = %d, want 2", p.Loaded())
	}
}

func TestAcquireHitNoSwitch(t *testing.T) {
	env, store, m := testWorld(t, 0, 2)
	p := newPool(env, store, 4*rn101, LRU{})
	p.Preload(m.Expert(0))
	var switched bool
	env.Go("x", func(proc *sim.Proc) {
		switched = p.Acquire(proc, m.Expert(0))
		p.Release(0)
	})
	end := env.Run()
	if switched {
		t.Error("hit reported as switch")
	}
	if end != 0 {
		t.Errorf("hit consumed %v of virtual time", end)
	}
	if p.Switches() != 0 {
		t.Errorf("switches = %d, want 0", p.Switches())
	}
}

func TestAcquireMissLoadsFromSSD(t *testing.T) {
	env, store, m := testWorld(t, 0, 2)
	p := newPool(env, store, 4*rn101, LRU{})
	var switched bool
	env.Go("x", func(proc *sim.Proc) {
		switched = p.Acquire(proc, m.Expert(0))
		p.Release(0)
	})
	end := env.Run()
	if !switched {
		t.Error("miss not reported as switch")
	}
	want := xfer.LoadLatency(store.Device(), xfer.FromSSD, memory.TierGPU, m.Expert(0).WeightBytes())
	if end != sim.Time(want) {
		t.Errorf("load took %v, want %v", end, want)
	}
	if p.Switches() != 1 || p.SSDLoads() != 1 || p.HostHits() != 0 {
		t.Errorf("stats: switches=%d ssd=%d host=%d", p.Switches(), p.SSDLoads(), p.HostHits())
	}
	if !p.IsLoaded(0) {
		t.Error("expert not resident after load")
	}
}

func TestAcquireEvictsWhenFull(t *testing.T) {
	env, store, m := testWorld(t, 0, 3)
	p := newPool(env, store, 2*rn101, LRU{})
	p.Preload(m.Expert(0))
	p.Preload(m.Expert(1))
	env.Go("x", func(proc *sim.Proc) {
		p.Acquire(proc, m.Expert(2))
		p.Release(2)
	})
	env.Run()
	if p.Loaded() != 2 {
		t.Errorf("loaded = %d, want 2", p.Loaded())
	}
	if !p.IsLoaded(2) {
		t.Error("new expert not resident")
	}
	if p.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", p.Evictions())
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	env, store, m := testWorld(t, 0, 3)
	p := newPool(env, store, 2*rn101, LRU{})
	p.Preload(m.Expert(0))
	p.Preload(m.Expert(1))
	env.Go("x", func(proc *sim.Proc) {
		// Touch 0 later than 1: 1 becomes the LRU victim.
		p.Acquire(proc, m.Expert(1))
		p.Release(1)
		proc.Sleep(time.Second)
		p.Acquire(proc, m.Expert(0))
		p.Release(0)
		proc.Sleep(time.Second)
		p.Acquire(proc, m.Expert(2))
		p.Release(2)
	})
	env.Run()
	if p.IsLoaded(1) {
		t.Error("LRU kept the least recently used expert")
	}
	if !p.IsLoaded(0) || !p.IsLoaded(2) {
		t.Error("LRU evicted the wrong expert")
	}
}

func TestFIFOEvictsOldestLoad(t *testing.T) {
	env, store, m := testWorld(t, 0, 3)
	p := newPool(env, store, 2*rn101, FIFO{})
	p.Preload(m.Expert(0)) // loaded first
	p.Preload(m.Expert(1))
	env.Go("x", func(proc *sim.Proc) {
		// Recent touch must NOT save expert 0 under FIFO.
		p.Acquire(proc, m.Expert(0))
		p.Release(0)
		p.Acquire(proc, m.Expert(2))
		p.Release(2)
	})
	env.Run()
	if p.IsLoaded(0) {
		t.Error("FIFO kept the first-loaded expert")
	}
	if !p.IsLoaded(1) || !p.IsLoaded(2) {
		t.Error("FIFO evicted the wrong expert")
	}
}

func TestDepAwareStage1EvictsOrphanedSubsequent(t *testing.T) {
	// Figure 10 stage 1: the detector (subsequent) whose preliminary
	// experts are absent is evicted before any classifier, even though
	// its usage probability is the highest.
	env, store, m := testWorld(t, 0, 4)
	det := m.Expert(4)
	det.UsageProb = 0.99
	cls2, cls3 := m.Expert(2), m.Expert(3) // not linked to det
	cls2.UsageProb = 0.01
	cls3.UsageProb = 0.02
	// Capacity chosen so that evicting the detector alone frees enough
	// room for the incoming ResNet101 classifier.
	p := newPool(env, store, 3*rn101+1024, DepAware{})
	p.Preload(cls2)
	p.Preload(cls3)
	p.Preload(det) // orphaned: cls0/cls1 not resident
	env.Go("x", func(proc *sim.Proc) {
		p.Acquire(proc, m.Expert(0))
		p.Release(0)
	})
	env.Run()
	if p.IsLoaded(det.ID) {
		t.Error("orphaned subsequent expert survived stage 1")
	}
	if !p.IsLoaded(cls2.ID) || !p.IsLoaded(cls3.ID) {
		t.Error("stage 1 evicted classifiers despite orphaned detector")
	}
}

func TestDepAwareDetectorWithResidentPreliminarySurvives(t *testing.T) {
	// When a preliminary expert of the detector is resident, the
	// detector is not orphaned; stage 2 evicts by usage probability.
	env, store, m := testWorld(t, 0, 4)
	det := m.Expert(4)
	det.UsageProb = 0.99
	cls0 := m.Expert(0) // linked to det
	cls0.UsageProb = 0.5
	cls2 := m.Expert(2)
	cls2.UsageProb = 0.01 // lowest usage -> stage-2 victim
	p := newPool(env, store, cls0.WeightBytes()+cls2.WeightBytes()+det.WeightBytes()+rn101/2, DepAware{})
	p.Preload(cls0)
	p.Preload(cls2)
	p.Preload(det)
	env.Go("x", func(proc *sim.Proc) {
		p.Acquire(proc, m.Expert(3))
		p.Release(3)
	})
	env.Run()
	if !p.IsLoaded(det.ID) {
		t.Error("non-orphaned detector evicted")
	}
	if p.IsLoaded(cls2.ID) {
		t.Error("lowest-usage classifier survived stage 2")
	} else if !p.IsLoaded(cls0.ID) {
		t.Error("higher-usage classifier evicted before lower")
	}
}

func TestPinnedExpertsNeverEvicted(t *testing.T) {
	env, store, m := testWorld(t, 0, 3)
	p := newPool(env, store, 2*rn101, LRU{})
	p.Preload(m.Expert(0))
	p.Preload(m.Expert(1))
	env.Go("x", func(proc *sim.Proc) {
		p.Acquire(proc, m.Expert(0)) // pin 0; LRU would otherwise pick it
		p.Acquire(proc, m.Expert(2)) // must evict 1, not pinned 0
		p.Release(2)
		p.Release(0)
	})
	env.Run()
	if !p.IsLoaded(0) {
		t.Error("pinned expert was evicted")
	}
	if p.IsLoaded(1) {
		t.Error("unpinned expert survived over pinned")
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	env, store, _ := testWorld(t, 0, 2)
	p := newPool(env, store, 2*rn101, LRU{})
	defer func() {
		if recover() == nil {
			t.Error("no panic for unpaired release")
		}
	}()
	p.Release(0)
}

func TestResetStats(t *testing.T) {
	env, store, m := testWorld(t, 0, 2)
	p := newPool(env, store, 4*rn101, LRU{})
	env.Go("x", func(proc *sim.Proc) {
		p.Acquire(proc, m.Expert(0))
		p.Release(0)
	})
	env.Run()
	if p.Switches() != 1 {
		t.Fatal("setup: expected one switch")
	}
	p.ResetStats()
	if p.Switches() != 0 || p.Evictions() != 0 || p.LoadTime() != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestStoreCacheHitIsFastAndExclusive(t *testing.T) {
	env, store, m := testWorld(t, 4*rn101, 2)
	e := m.Expert(0)
	// Simulate a prior eviction into the cache.
	store.demote(e, memory.TierGPU)
	if !store.Cached(e.ID) {
		t.Fatal("demoted expert not cached")
	}
	p := newPool(env, store, 4*rn101, LRU{})
	env.Go("x", func(proc *sim.Proc) {
		p.Acquire(proc, e)
		p.Release(e.ID)
	})
	end := env.Run()
	want := xfer.LoadLatency(store.Device(), xfer.FromHost, memory.TierGPU, e.WeightBytes())
	if end != sim.Time(want) {
		t.Errorf("cache-hit load took %v, want %v", end, want)
	}
	if p.HostHits() != 1 || p.SSDLoads() != 0 {
		t.Errorf("host=%d ssd=%d, want 1/0", p.HostHits(), p.SSDLoads())
	}
	if store.Cached(e.ID) {
		t.Error("cache not exclusive: expert still cached after fetch")
	}
}

func TestStoreDemotionFillsCacheWithLRUEviction(t *testing.T) {
	_, store, m := testWorld(t, 2*rn101, 3)
	store.demote(m.Expert(0), memory.TierGPU)
	store.demote(m.Expert(1), memory.TierGPU)
	store.demote(m.Expert(2), memory.TierGPU) // evicts 0 (LRU)
	if store.Cached(0) {
		t.Error("cache did not evict its LRU entry")
	}
	if !store.Cached(1) || !store.Cached(2) {
		t.Error("cache holds wrong entries")
	}
	if store.CacheLen() != 2 {
		t.Errorf("cache len = %d, want 2", store.CacheLen())
	}
}

func TestStoreWithoutCache(t *testing.T) {
	_, store, m := testWorld(t, 0, 2)
	store.demote(m.Expert(0), memory.TierGPU) // must be a no-op
	if store.Cached(0) || store.CacheLen() != 0 || store.CacheBytes() != 0 {
		t.Error("cache-less store is caching")
	}
}

func TestCPUEvictionsDoNotEnterCache(t *testing.T) {
	_, store, m := testWorld(t, 4*rn101, 2)
	store.demote(m.Expert(0), memory.TierCPU)
	if store.Cached(0) {
		t.Error("CPU-tier eviction entered the GPU demotion cache")
	}
}

func TestPredictLoad(t *testing.T) {
	_, store, m := testWorld(t, 4*rn101, 2)
	e := m.Expert(0)
	ssd := store.PredictLoad(e, memory.TierGPU)
	wantSSD := xfer.LoadLatency(store.Device(), xfer.FromSSD, memory.TierGPU, e.WeightBytes())
	if ssd != wantSSD {
		t.Errorf("PredictLoad uncached = %v, want %v", ssd, wantSSD)
	}
	store.demote(e, memory.TierGPU)
	cached := store.PredictLoad(e, memory.TierGPU)
	wantHost := xfer.LoadLatency(store.Device(), xfer.FromHost, memory.TierGPU, e.WeightBytes())
	if cached != wantHost {
		t.Errorf("PredictLoad cached = %v, want %v", cached, wantHost)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"lru", "fifo", "dep-aware"} {
		pol, ok := PolicyByName(name)
		if !ok || pol.Name() != name {
			t.Errorf("PolicyByName(%q) = %v, %v", name, pol, ok)
		}
	}
	if _, ok := PolicyByName("magic"); ok {
		t.Error("unknown policy resolved")
	}
}

func TestStatusStrings(t *testing.T) {
	if Absent.String() != "absent" || Loading.String() != "loading" || Loaded.String() != "loaded" {
		t.Error("status strings wrong")
	}
	if Status(9).String() == "" {
		t.Error("unknown status string empty")
	}
}

// TestRandomAcquireReleaseInvariants drives random acquire/release
// sequences under every policy and checks the pool bookkeeping
// invariants the design document promises.
func TestRandomAcquireReleaseInvariants(t *testing.T) {
	policies := []Policy{LRU{}, FIFO{}, DepAware{}}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			env, store, m := testWorld(t, 3*rn101, 8)
			p := newPool(env, store, 3*rn101, pol)
			env.Go("driver", func(proc *sim.Proc) {
				for i := 0; i < 200; i++ {
					e := m.Expert(coe.ExpertID(rng.Intn(m.NumExperts())))
					p.Acquire(proc, e)
					if p.FreeBytes() < 0 {
						t.Error("negative free bytes")
					}
					proc.Sleep(time.Duration(rng.Intn(50)) * time.Millisecond)
					p.Release(e.ID)
					if got := p.Loaded(); got < 1 {
						t.Errorf("loaded = %d after acquire", got)
					}
				}
			})
			env.Run()
			// Conservation: switches - evictions = resident delta.
			if int64(p.Loaded()) != p.Switches()-p.Evictions() {
				t.Errorf("loaded=%d switches=%d evictions=%d: conservation broken",
					p.Loaded(), p.Switches(), p.Evictions())
			}
		})
	}
}
