// Package pool implements the model pool and dependency-aware expert
// management of §4.3: per-executor pools of loaded experts with pluggable
// eviction policies (LRU and FIFO baselines, and CoServe's two-stage
// dependency-aware strategy), plus the device-level tiered store that
// decides where an expert is fetched from and tracks the host-memory
// cache on NUMA devices.
package pool

import (
	"fmt"
	"time"

	"repro/internal/coe"
	"repro/internal/memory"
	"repro/internal/sim"
)

// Status describes an expert's state within one pool.
type Status int

const (
	// Absent: the expert is not in this pool.
	Absent Status = iota
	// Loading: a switch-in is in flight.
	Loading
	// Loaded: the expert is resident and usable.
	Loaded
)

func (s Status) String() string {
	switch s {
	case Absent:
		return "absent"
	case Loading:
		return "loading"
	case Loaded:
		return "loaded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Entry is one expert's residency record in a pool.
type Entry struct {
	Expert *coe.Expert
	Bytes  int64
	Status Status
	// Pins counts active users (an executor pins the expert for the
	// duration of a batch group). Pinned entries are never evicted.
	Pins int
	// LastUse is the virtual time of the most recent pin or unpin —
	// the LRU key.
	LastUse sim.Time
	// LoadSeq is the monotonically increasing load sequence number —
	// the FIFO key.
	LoadSeq int64
	// ready fires when an in-flight load completes; concurrent
	// acquirers of a shared pool wait on it.
	ready *sim.Event
}

// Pool is the set of experts resident in one executor's memory. Pools
// are single-owner: exactly one executor process mutates a pool, so no
// locking is needed inside the simulation.
type Pool struct {
	name   string
	arena  *memory.Arena
	store  *Store
	tier   memory.Tier
	policy Policy
	now    func() sim.Time

	// Observer, when set, is invoked after every expert switch with the
	// loaded expert, the source tier name, and the elapsed load time.
	Observer func(e *coe.Expert, source string, elapsed time.Duration)

	entries map[coe.ExpertID]*Entry
	seq     int64

	// scratch backs LoadedUnpinned so every eviction decision reuses one
	// candidate buffer instead of allocating a fresh slice.
	scratch []*Entry

	// stats
	switches  int64
	evictions int64
	loadTime  time.Duration
	hostHits  int64
	ssdLoads  int64
}

// New returns an empty pool with the given expert-memory capacity,
// backed by the device store, holding experts in the given tier.
func New(name string, capacity int64, store *Store, tier memory.Tier, policy Policy, now func() sim.Time) *Pool {
	if policy == nil {
		panic("pool: nil policy")
	}
	return &Pool{
		name:    name,
		arena:   memory.NewArena(name+"/experts", capacity),
		store:   store,
		tier:    tier,
		policy:  policy,
		now:     now,
		entries: make(map[coe.ExpertID]*Entry),
	}
}

// Name reports the pool name.
func (p *Pool) Name() string { return p.name }

// Capacity reports the pool's expert-memory capacity in bytes.
func (p *Pool) Capacity() int64 { return p.arena.Capacity() }

// FreeBytes reports unreserved pool capacity.
func (p *Pool) FreeBytes() int64 { return p.arena.Free() }

// Policy returns the pool's eviction policy.
func (p *Pool) Policy() Policy { return p.policy }

// IsLoaded reports whether the expert is resident (status Loaded).
func (p *Pool) IsLoaded(id coe.ExpertID) bool {
	e, ok := p.entries[id]
	return ok && e.Status == Loaded
}

// Resident reports whether the expert occupies the pool at all — Loaded,
// or Loading with the switch-in still in flight. Cluster routers use it
// for expert affinity: a request routed to a pool whose expert is
// already loading pays the remaining wait, not a fresh switch.
func (p *Pool) Resident(id coe.ExpertID) bool {
	_, ok := p.entries[id]
	return ok
}

// Status reports the expert's residency state in the pool.
func (p *Pool) Status(id coe.ExpertID) Status {
	e, ok := p.entries[id]
	if !ok {
		return Absent
	}
	return e.Status
}

// Loaded returns the number of resident experts.
func (p *Pool) Loaded() int {
	n := 0
	//detlint:allow commutative count
	for _, e := range p.entries {
		if e.Status == Loaded {
			n++
		}
	}
	return n
}

// Switches reports the number of expert switch-ins (loads) since the
// last ResetStats — the quantity of Figure 14.
func (p *Pool) Switches() int64 { return p.switches }

// Evictions reports the number of expert evictions since ResetStats.
func (p *Pool) Evictions() int64 { return p.evictions }

// LoadTime reports cumulative virtual time spent loading experts.
func (p *Pool) LoadTime() time.Duration { return p.loadTime }

// HostHits and SSDLoads break switches down by source tier.
func (p *Pool) HostHits() int64 { return p.hostHits }
func (p *Pool) SSDLoads() int64 { return p.ssdLoads }

// ResetStats zeroes the switch/eviction counters. The system calls it
// after initialization so preloading does not count as switching.
func (p *Pool) ResetStats() {
	p.switches, p.evictions, p.hostHits, p.ssdLoads = 0, 0, 0, 0
	p.loadTime = 0
}

// Preload inserts an expert without cost, for the expert initializer
// (§4.1). It reports false when the expert does not fit.
func (p *Pool) Preload(e *coe.Expert) bool {
	if p.IsLoaded(e.ID) {
		return true
	}
	bytes := e.WeightBytes()
	if !p.arena.TryReserve(bytes) {
		return false
	}
	p.seq++
	p.entries[e.ID] = &Entry{
		Expert:  e,
		Bytes:   bytes,
		Status:  Loaded,
		LoadSeq: p.seq,
	}
	return true
}

// Acquire makes the expert resident and pins it, evicting and loading as
// needed on behalf of the executor process. It reports whether this call
// performed an expert switch. A pool may be shared by several executors
// (the Samba-CoE Parallel arrangement): a concurrent acquirer of an
// expert whose load is in flight waits for that load instead of starting
// another. Acquire panics if eviction cannot free enough memory (the
// configuration validator guarantees pool capacity exceeds the largest
// expert plus one pinned expert per sharer).
func (p *Pool) Acquire(proc *sim.Proc, e *coe.Expert) bool {
	for {
		entry, ok := p.entries[e.ID]
		if !ok {
			break // absent: load it below
		}
		if entry.Status == Loaded {
			entry.Pins++
			entry.LastUse = p.now()
			return false
		}
		// A sharer is loading it: wait, then re-check (the entry may
		// have been evicted again before we got a pin on it).
		entry.ready.Wait(proc)
	}

	bytes := e.WeightBytes()
	if need := bytes - p.arena.Free(); need > 0 {
		p.evict(need)
	}
	if err := p.arena.Reserve(bytes); err != nil {
		panic(fmt.Sprintf("pool %s: %v after eviction", p.name, err))
	}
	p.seq++
	entry := &Entry{
		Expert:  e,
		Bytes:   bytes,
		Status:  Loading,
		LoadSeq: p.seq,
		Pins:    1,
		ready:   sim.NewEvent(proc.Env()),
	}
	p.entries[e.ID] = entry

	src, d := p.store.Fetch(proc, e, p.tier)
	p.loadTime += d
	srcName := "ssd"
	if src == srcHost {
		p.hostHits++
		srcName = "host"
	} else {
		p.ssdLoads++
	}
	p.switches++
	if p.Observer != nil {
		p.Observer(e, srcName, d)
	}

	entry.Status = Loaded
	entry.LastUse = p.now()
	entry.ready.Fire()
	return true
}

// Release unpins the expert after a batch group finishes.
func (p *Pool) Release(id coe.ExpertID) {
	entry, ok := p.entries[id]
	if !ok || entry.Pins <= 0 {
		panic(fmt.Sprintf("pool %s: release of unpinned expert %d", p.name, id))
	}
	entry.Pins--
	entry.LastUse = p.now()
}

// evict frees at least need bytes using the policy, demoting victims to
// the host cache when the store has one.
func (p *Pool) evict(need int64) {
	victims := p.policy.Victims(p, need)
	var freed int64
	for _, id := range victims {
		entry, ok := p.entries[id]
		if !ok || entry.Status != Loaded || entry.Pins > 0 {
			panic(fmt.Sprintf("pool %s: policy chose invalid victim %d", p.name, id))
		}
		delete(p.entries, id)
		p.arena.Release(entry.Bytes)
		p.store.demote(entry.Expert, p.tier)
		p.evictions++
		freed += entry.Bytes
	}
	if freed < need {
		panic(fmt.Sprintf("pool %s: policy freed %d of %d needed bytes", p.name, freed, need))
	}
}

// LoadedUnpinned returns resident, unpinned entries in ascending
// ExpertID order — the stable candidate list handed to policies. The
// returned slice is only valid until the next call: it is a reused
// scratch buffer that policies may reorder but must not retain.
func (p *Pool) LoadedUnpinned() []*Entry {
	out := p.scratch[:0]
	//detlint:allow collected entries are sorted by ExpertID below before any policy sees them
	for _, e := range p.entries {
		if e.Status == Loaded && e.Pins == 0 {
			out = append(out, e)
		}
	}
	sortEntriesByID(out)
	p.scratch = out
	return out
}

func sortEntriesByID(entries []*Entry) {
	// Insertion sort: candidate lists are small and this avoids pulling
	// in sort with a closure allocation on the hot eviction path.
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].Expert.ID < entries[j-1].Expert.ID; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
}
