package executor

import (
	"testing"
	"time"

	"repro/internal/coe"
	"repro/internal/hw"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
)

// rig wires a single executor against a NUMA GPU with the given pool and
// activation capacities.
type rig struct {
	env      *sim.Env
	dev      *hw.Device
	store    *pool.Store
	queue    *sched.Queue
	pool     *pool.Pool
	acts     *memory.Arena
	ex       *Executor
	done     bool
	finished []*coe.Request
	model    *coe.Model
}

func newRig(t *testing.T, poolCap, actCap int64, maxBatch int) *rig {
	t.Helper()
	env := sim.NewEnv()
	dev := hw.NUMADevice()
	store := pool.NewStore(env, dev, 0)

	b := coe.NewBuilder("rig")
	for i := 0; i < 8; i++ {
		id := b.AddExpert("c", model.ResNet101, coe.Preliminary)
		b.AddRule(i, coe.Rule{Classifier: id})
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	pl := pool.New("gpu0", poolCap, store, memory.TierGPU, pool.LRU{}, env.Now)
	perf := func(e *coe.Expert) model.Perf {
		return model.Perf{
			Arch:        e.Arch,
			K:           model.KCoeff(e.Arch, dev.GPU),
			B:           dev.GPU.LaunchOverhead,
			MaxBatch:    maxBatch,
			ActPerImage: model.ActBytesPerImage(e.Arch, dev.GPU),
		}
	}
	r := &rig{env: env, dev: dev, store: store, pool: pl, model: m}
	r.acts = memory.NewArena("acts", actCap)
	r.queue = sched.NewQueue(env, "q0", sched.ModeGrouped, sched.Costs{
		K:           func(e *coe.Expert) time.Duration { return perf(e).K },
		B:           func(e *coe.Expert) time.Duration { return perf(e).B },
		PredictLoad: func(e *coe.Expert) time.Duration { return store.PredictLoad(e, memory.TierGPU) },
		IsLoaded:    pl.IsLoaded,
	})
	r.ex = &Executor{
		Name:    "gpu0",
		Proc:    ProcProfile{Exec: func(a model.Architecture, n int) time.Duration { return model.ExecLatency(a, dev.GPU, n) }, ActPerImage: func(a model.Architecture) int64 { return model.ActBytesPerImage(a, dev.GPU) }},
		Queue:   r.queue,
		Pool:    pl,
		Compute: sim.NewResource(env, "gpu", 1),
		Acts:    r.acts,
		Perf:    perf,
		Done:    func() bool { return r.done },
		OnBatch: func(p *sim.Proc, req *coe.Request) { r.finished = append(r.finished, req) },
	}
	return r
}

func (r *rig) enqueue(reqs ...*coe.Request) {
	for _, rq := range reqs {
		r.queue.Enqueue(r.model.Expert(rq.Expert()), rq)
	}
}

func (r *rig) finish() {
	r.done = true
	r.queue.Gate().Notify()
}

func mkReq(id int64, e coe.ExpertID) *coe.Request {
	return coe.NewRequest(id, int(e), []coe.ExpertID{e})
}

const rn101Bytes = 178_196_640

func TestExecutorProcessesAllRequests(t *testing.T) {
	r := newRig(t, 4*rn101Bytes, 8<<30, 16)
	for i := 0; i < 10; i++ {
		r.enqueue(mkReq(int64(i), coe.ExpertID(i%2)))
	}
	r.finish()
	r.env.Go("gpu0", r.ex.Run)
	r.env.Run()
	if len(r.finished) != 10 {
		t.Fatalf("finished %d of 10", len(r.finished))
	}
	if r.ex.Processed() != 10 {
		t.Errorf("processed = %d", r.ex.Processed())
	}
	if r.pool.Switches() != 2 {
		t.Errorf("switches = %d, want 2 (one per expert)", r.pool.Switches())
	}
}

func TestExecutorBatchesWithinProfiledMax(t *testing.T) {
	r := newRig(t, 4*rn101Bytes, 64<<30, 4)
	for i := 0; i < 10; i++ {
		r.enqueue(mkReq(int64(i), 0))
	}
	r.finish()
	r.env.Go("gpu0", r.ex.Run)
	r.env.Run()
	// 10 requests at max batch 4 -> batches of 4,4,2.
	if r.ex.Batches() != 3 {
		t.Errorf("batches = %d, want 3", r.ex.Batches())
	}
}

func TestExecutorRespectsMemoryBound(t *testing.T) {
	// Activation arena fits only 2 images -> batches of <= 2 even though
	// the profile allows 16.
	per := model.ActBytesPerImage(model.ResNet101, hw.NUMADevice().GPU)
	r := newRig(t, 4*rn101Bytes, 2*per+per/2, 16)
	for i := 0; i < 6; i++ {
		r.enqueue(mkReq(int64(i), 0))
	}
	r.finish()
	r.env.Go("gpu0", r.ex.Run)
	r.env.Run()
	if r.ex.Batches() != 3 {
		t.Errorf("batches = %d, want 3 (memory-bound batches of 2)", r.ex.Batches())
	}
	if len(r.finished) != 6 {
		t.Errorf("finished = %d of 6", len(r.finished))
	}
	if r.acts.Reserved() != 0 {
		t.Errorf("activation bytes leaked: %d", r.acts.Reserved())
	}
}

func TestExecutorBatchTimingMatchesModel(t *testing.T) {
	r := newRig(t, 4*rn101Bytes, 8<<30, 16)
	r.pool.Preload(r.model.Expert(0))
	for i := 0; i < 8; i++ {
		r.enqueue(mkReq(int64(i), 0))
	}
	r.finish()
	r.env.Go("gpu0", r.ex.Run)
	end := r.env.Run()
	want := model.ExecLatency(model.ResNet101, r.dev.GPU, 8)
	if end != sim.Time(want) {
		t.Errorf("run took %v, want one batch = %v", end, want)
	}
	if r.ex.BusyTime() != want {
		t.Errorf("busy = %v, want %v", r.ex.BusyTime(), want)
	}
}

func TestExecutorSwitchThenExecute(t *testing.T) {
	r := newRig(t, 4*rn101Bytes, 8<<30, 16)
	r.enqueue(mkReq(0, 0))
	r.finish()
	r.env.Go("gpu0", r.ex.Run)
	end := r.env.Run()
	load := r.store.PredictLoad(r.model.Expert(0), memory.TierGPU)
	exec := model.ExecLatency(model.ResNet101, r.dev.GPU, 1)
	if end != sim.Time(load+exec) {
		t.Errorf("run took %v, want load+exec = %v", end, load+exec)
	}
}

func TestExecutorWaitsForWorkThenExits(t *testing.T) {
	r := newRig(t, 4*rn101Bytes, 8<<30, 16)
	r.env.Go("gpu0", r.ex.Run)
	r.env.Go("ctrl", func(p *sim.Proc) {
		p.Sleep(time.Second)
		r.enqueue(mkReq(0, 0))
		p.Sleep(5 * time.Second)
		r.finish()
	})
	r.env.Run()
	if len(r.finished) != 1 {
		t.Fatalf("finished = %d, want 1", len(r.finished))
	}
	if r.env.Procs() != 0 {
		t.Errorf("%d processes still alive (executor did not exit)", r.env.Procs())
	}
}

func TestTwoExecutorsShareComputeSerially(t *testing.T) {
	// Two executors on one GPU: loads overlap with execution, but
	// execution itself serializes on the compute resource.
	env := sim.NewEnv()
	dev := hw.NUMADevice()
	store := pool.NewStore(env, dev, 0)
	b := coe.NewBuilder("m")
	e0 := b.AddExpert("a", model.ResNet101, coe.Preliminary)
	e1 := b.AddExpert("b", model.ResNet101, coe.Preliminary)
	b.AddRule(0, coe.Rule{Classifier: e0})
	b.AddRule(1, coe.Rule{Classifier: e1})
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	compute := sim.NewResource(env, "gpu", 1)
	acts := memory.NewArena("acts", 8<<30)
	done := false
	var finished int
	mk := func(name string, preload coe.ExpertID) *Executor {
		pl := pool.New(name, 4*rn101Bytes, store, memory.TierGPU, pool.LRU{}, env.Now)
		pl.Preload(m.Expert(preload))
		q := sched.NewQueue(env, name, sched.ModeGrouped, sched.Costs{
			K:           func(e *coe.Expert) time.Duration { return model.KCoeff(e.Arch, dev.GPU) },
			B:           func(e *coe.Expert) time.Duration { return dev.GPU.LaunchOverhead },
			PredictLoad: func(e *coe.Expert) time.Duration { return store.PredictLoad(e, memory.TierGPU) },
			IsLoaded:    pl.IsLoaded,
		})
		return &Executor{
			Name:    name,
			Proc:    ProcProfile{Exec: func(a model.Architecture, n int) time.Duration { return model.ExecLatency(a, dev.GPU, n) }, ActPerImage: func(a model.Architecture) int64 { return model.ActBytesPerImage(a, dev.GPU) }},
			Queue:   q,
			Pool:    pl,
			Compute: compute,
			Acts:    acts,
			Perf: func(e *coe.Expert) model.Perf {
				return model.Perf{Arch: e.Arch, K: model.KCoeff(e.Arch, dev.GPU), B: dev.GPU.LaunchOverhead, MaxBatch: 16, ActPerImage: model.ActBytesPerImage(e.Arch, dev.GPU)}
			},
			Done:    func() bool { return done },
			OnBatch: func(p *sim.Proc, r *coe.Request) { finished++ },
		}
	}
	ex0, ex1 := mk("g0", e0), mk("g1", e1)
	ex0.Queue.Enqueue(m.Expert(e0), mkReq(0, e0))
	ex1.Queue.Enqueue(m.Expert(e1), mkReq(1, e1))
	done = true
	env.Go("g0", ex0.Run)
	env.Go("g1", ex1.Run)
	end := env.Run()
	exec1 := model.ExecLatency(model.ResNet101, dev.GPU, 1)
	if end != sim.Time(2*exec1) {
		t.Errorf("two preloaded single-request groups took %v, want serialized 2x%v", end, exec1)
	}
	if finished != 2 {
		t.Errorf("finished = %d, want 2", finished)
	}
}
