// Package executor implements inference executors: simulation processes
// that drain a request queue, ensure the required expert is resident
// (triggering managed expert switches), split work into batches bounded
// by profiled maximum batch size and free activation memory, and execute
// on the shared compute resource of their processor (§4.1 steps 4–8).
package executor

import (
	"fmt"
	"time"

	"repro/internal/coe"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Executor drives one inference pipeline on a GPU or CPU.
type Executor struct {
	// Name identifies the executor ("gpu0", "cpu1", ...).
	Name string
	// Proc is the processor profile the executor runs on.
	Proc ProcProfile
	// Queue is the executor's request queue, fed by the controller.
	Queue *sched.Queue
	// Pool holds the executor's resident experts.
	Pool *pool.Pool
	// Compute serializes execution with the other executors sharing the
	// physical processor.
	Compute *sim.Resource
	// Acts is the activation-memory arena shared by the executors of
	// this processor (the §3.3 intermediate-results budget).
	Acts *memory.Arena
	// Perf returns the profiled performance entry for an expert.
	Perf func(e *coe.Expert) model.Perf
	// Done reports whether the task has fully completed; the executor
	// exits when its queue is empty and Done is true.
	Done func() bool
	// OnBatch is called after a batch finishes, once per request, in
	// queue order. The controller advances multi-stage requests and
	// records completions here.
	OnBatch func(p *sim.Proc, r *coe.Request)
	// Observer, when set, is invoked once per executed batch.
	Observer func(e *coe.Expert, n int, lat time.Duration)
	// Epoch, when set, reports the data plane's crash epoch. serveGroup
	// snapshots it before taking a batch; if it changed across the
	// execution sleep — the node crashed mid-batch — the batch's results
	// are discarded and its requests handed to OnVoid instead of
	// OnBatch, so a since-restarted node never acks work the crash
	// voided. Nil on fault-free systems (the zero-cost default).
	Epoch func() int
	// OnVoid receives the requests of a batch voided by a mid-execution
	// crash, once per request, in queue order. Required when Epoch is
	// set.
	OnVoid func(p *sim.Proc, r *coe.Request)
	// Degrade, when set, maps a batch's profiled execution latency to the
	// latency actually served — the gray-failure seam. It is consulted
	// once per batch, after the busy-until estimate is published but
	// before the sleep: the executor's own prediction stays at the
	// healthy profile number because a gray-degraded node does not know
	// it is sick. That gap — real completions stretching while the
	// node's self-model keeps promising fast — is what makes fail-slow
	// invisible to model-driven routing and is the whole reason health
	// must be measured from completions. A healthy node returns lat
	// unchanged.
	Degrade func(p *sim.Proc, lat time.Duration) time.Duration

	processed int64
	batches   int64
	busy      time.Duration
}

// ProcProfile is the subset of the hardware profile executors need.
type ProcProfile struct {
	// Exec returns ground-truth execution latency for a batch.
	Exec func(arch model.Architecture, batch int) time.Duration
	// ActPerImage returns ground-truth activation bytes per image.
	ActPerImage func(arch model.Architecture) int64
}

// Processed reports the number of requests executed.
func (ex *Executor) Processed() int64 { return ex.processed }

// Batches reports the number of batches executed.
func (ex *Executor) Batches() int64 { return ex.batches }

// BusyTime reports cumulative virtual execution time (excluding loads).
func (ex *Executor) BusyTime() time.Duration { return ex.busy }

// ResetStats zeroes the per-run counters. The serving layer calls it
// between consecutive streams so each report covers one stream.
func (ex *Executor) ResetStats() {
	ex.processed, ex.batches, ex.busy = 0, 0, 0
}

// Run is the executor process body. Start it with env.Go(ex.Name, ex.Run).
func (ex *Executor) Run(p *sim.Proc) {
	if ex.OnBatch == nil || ex.Done == nil || (ex.Epoch != nil && ex.OnVoid == nil) {
		panic(fmt.Sprintf("executor %s: incomplete wiring", ex.Name))
	}
	epoch := 0
	if ex.Epoch != nil {
		epoch = ex.Epoch()
	}
	gate := ex.Queue.Gate()
	for {
		if ex.Epoch != nil && ex.Epoch() != epoch {
			// This process belongs to a crashed epoch: the node restarted
			// and launched replacements. Exit so the executor is never
			// served by two processes at once.
			return
		}
		g := ex.Queue.Head()
		if g == nil {
			if ex.Done() {
				return
			}
			gate.Wait(p)
			continue
		}
		ex.serveGroup(p, g)
	}
}

// serveGroup drains the head group: one expert switch at most, then as
// many batches as the split bound allows.
func (ex *Executor) serveGroup(p *sim.Proc, g *sched.Group) {
	e := g.Expert
	perf := ex.Perf(e)
	ex.Pool.Acquire(p, e)
	defer ex.Pool.Release(e.ID)

	// The head group may keep growing while we execute (same-expert
	// arrivals slot in behind it as fresh groups; see sched). We drain
	// only this group; the loop in Run picks up successors.
	for ex.Queue.Head() == g && g.Len() > 0 {
		epoch := 0
		if ex.Epoch != nil {
			epoch = ex.Epoch()
		}
		bound := sched.SplitBound(perf.MaxBatch, ex.Acts.Free(), perf.ActPerImage)
		batch := ex.Queue.TakeFromHead(bound)
		if len(batch) == 0 {
			return
		}
		actBytes := perf.ActPerImage * int64(len(batch))
		ex.Acts.WaitReserve(p, actBytes)

		lat := ex.Proc.Exec(e.Arch, len(batch))
		ex.Queue.SetBusyUntil(p.Now().Add(lat + g.PredictedRemaining()))
		if ex.Degrade != nil {
			lat = ex.Degrade(p, lat)
		}
		ex.Compute.Acquire(p)
		p.Sleep(lat)
		ex.Compute.Release(p)
		ex.Acts.Release(actBytes)

		if ex.Epoch != nil && ex.Epoch() != epoch {
			// The node crashed while this batch was in flight (waiting for
			// memory, compute, or mid-execution). Its results are void: the
			// crash already purged the queue and the dispatcher is
			// redelivering the node's leases, so handing these to OnBatch
			// would double-serve them. Resources were released above; the
			// batch just produces nothing.
			for _, r := range batch {
				ex.OnVoid(p, r)
			}
			return
		}

		ex.busy += lat
		ex.batches++
		ex.processed += int64(len(batch))
		if ex.Observer != nil {
			ex.Observer(e, len(batch), lat)
		}
		for _, r := range batch {
			ex.OnBatch(p, r)
		}
	}
}
