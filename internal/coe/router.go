package coe

import (
	"fmt"
	"maps"
	"slices"
)

// Rule is a user-defined routing rule for one input class (§4.5,
// "Routing rules, provided by the user, are part of the CoE model").
// Every request of the class first runs the Classifier; if the
// classification passes (probability PassProb) and the class has a
// Detector, the detector runs as the subsequent stage (§2.1's circuit
// board pipeline).
type Rule struct {
	Classifier ExpertID
	Detector   ExpertID // NoExpert when the class has no detection stage
	PassProb   float64
}

// RuleRouter routes requests by predefined per-class rules. Because the
// rules are explicit, expert usage probabilities can be computed exactly
// rather than estimated from history — the property that separates CoE
// from MoE expert management (§2.1, §3.2).
type RuleRouter struct {
	rules map[int]Rule
}

// Rule returns the routing rule for an input class.
func (r *RuleRouter) Rule(class int) (Rule, bool) {
	rule, ok := r.rules[class]
	return rule, ok
}

// Classes returns all classes with rules, in ascending order.
func (r *RuleRouter) Classes() []int {
	return slices.Sorted(maps.Keys(r.rules))
}

// Route returns the expert chain for one request of the given class.
// The pass outcome of the classification stage is decided by the sample
// u ∈ [0,1), which the caller draws from its seeded stream so that
// workloads are reproducible.
func (r *RuleRouter) Route(class int, u float64) ([]ExpertID, error) {
	rule, ok := r.rules[class]
	if !ok {
		return nil, fmt.Errorf("coe: no routing rule for class %d", class)
	}
	if rule.Detector == NoExpert || u >= rule.PassProb {
		return []ExpertID{rule.Classifier}, nil
	}
	return []ExpertID{rule.Classifier, rule.Detector}, nil
}

// AppendRoute is Route without the allocation: it appends the chain
// for one request of the given class to dst and returns the extended
// slice. With a dst that retains capacity (an arena-recycled request's
// chain), routing is allocation-free. The pass decision is identical
// to Route for the same u.
func (r *RuleRouter) AppendRoute(dst []ExpertID, class int, u float64) ([]ExpertID, error) {
	rule, ok := r.rules[class]
	if !ok {
		return dst, fmt.Errorf("coe: no routing rule for class %d", class)
	}
	dst = append(dst, rule.Classifier)
	if rule.Detector != NoExpert && u < rule.PassProb {
		dst = append(dst, rule.Detector)
	}
	return dst, nil
}

// ComputeUsage sets every expert's UsageProb from the class distribution
// classProbs (which must sum to ~1) and the model's routing rules:
// a classifier's probability is the total probability of its classes; a
// detector's is the pass-weighted probability of the classes it serves
// (§4.5, "if the routing rules are predefined, expert usage
// probabilities can be calculated directly").
func ComputeUsage(m *Model, classProbs map[int]float64) error {
	for _, e := range m.experts {
		e.UsageProb = 0
	}
	// Accumulate in sorted class order: float addition is not
	// associative, and map order would make probabilities (and thus
	// eviction tie-breaks) vary across runs.
	classes := make([]int, 0, len(classProbs))
	//detlint:allow key collection only; sorted immediately below before any fold
	for class := range classProbs {
		classes = append(classes, class)
	}
	slices.Sort(classes)
	for _, class := range classes {
		p := classProbs[class]
		if p < 0 {
			return fmt.Errorf("coe: class %d has negative probability", class)
		}
		rule, ok := m.router.rules[class]
		if !ok {
			return fmt.Errorf("coe: class %d has no routing rule", class)
		}
		m.experts[rule.Classifier].UsageProb += p
		if rule.Detector != NoExpert {
			m.experts[rule.Detector].UsageProb += p * rule.PassProb
		}
	}
	return nil
}

// EstimateUsage sets usage probabilities by replaying a sample of
// request chains — the paper's fallback when routing is too ambiguous to
// compute probabilities directly (for example, a trained router). Each
// chain contributes one use to every expert it contains; probabilities
// are normalized by the number of chains.
func EstimateUsage(m *Model, chains [][]ExpertID) {
	for _, e := range m.experts {
		e.UsageProb = 0
	}
	if len(chains) == 0 {
		return
	}
	for _, chain := range chains {
		for _, id := range chain {
			m.experts[id].UsageProb += 1
		}
	}
	n := float64(len(chains))
	for _, e := range m.experts {
		e.UsageProb /= n
	}
}
