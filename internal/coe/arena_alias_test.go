package coe

import "testing"

// TestRecycledThenRedeliveredDoesNotAliasLease pins the invariant the
// cluster's durable-delivery ledger depends on: a lease's private chain
// copy must stay immune to the arena recycling the request it was
// copied from, and a redelivered request rebuilt from the lease must
// not alias the lease's copy in return. Both directions matter — the
// original object can be re-leased to a new arrival the moment the node
// recycles it, and the redelivered object is mutated by routing and
// dispatch.
func TestRecycledThenRedeliveredDoesNotAliasLease(t *testing.T) {
	a := NewArena()

	// Admission: a request leases from the arena and is offered to a
	// node; the ledger copies its chain (exactly as chaosState.open does).
	r1 := a.Lease()
	r1.ID = 7
	r1.Chain = append(r1.Chain, 1, 2, 3)
	ledgerChain := append(make([]ExpertID, 0, len(r1.Chain)), r1.Chain...)

	// Crash: the node recycles the voided object, and a new arrival
	// immediately re-leases it with a different chain.
	Recycle(r1)
	r2 := a.Lease()
	if r2 != r1 {
		t.Fatal("arena did not reuse the recycled object (test premise)")
	}
	r2.ID = 8
	r2.Chain = append(r2.Chain, 9, 9, 9)
	if ledgerChain[0] != 1 || ledgerChain[1] != 2 || ledgerChain[2] != 3 {
		t.Fatalf("re-leasing the recycled object mutated the ledger's chain copy: %v", ledgerChain)
	}

	// Redelivery: the lease materializes a fresh request from its copy
	// (exactly as chaosState.leaseRequest does) while r2 is live.
	r3 := a.Lease()
	r3.ID = 7
	r3.Chain = append(r3.Chain[:0], ledgerChain...)
	r3.Chain[0] = 5 // dispatch-side mutation
	r3.Chain = append(r3.Chain, 6)
	if ledgerChain[0] != 1 || len(ledgerChain) != 3 {
		t.Fatalf("mutating the redelivered request reached the ledger copy: %v", ledgerChain)
	}
	if r2.Chain[0] != 9 || len(r2.Chain) != 3 {
		t.Fatalf("redelivery corrupted the live re-leased request: %v", r2.Chain)
	}
}
