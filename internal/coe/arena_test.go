package coe

import (
	"testing"

	"repro/internal/model"
)

func TestArenaLeaseRecycleReuse(t *testing.T) {
	a := NewArena()
	r := a.Lease()
	if r == nil || a.Leases() != 1 || a.Reuses() != 0 {
		t.Fatalf("first lease: %v leases=%d reuses=%d", r, a.Leases(), a.Reuses())
	}
	r.ID, r.Class = 42, 7
	r.Chain = append(r.Chain, 1, 2)
	r.stage = 1
	r.Arrival, r.Done = 10, 20
	Recycle(r)
	if a.Free() != 1 {
		t.Fatalf("free list = %d, want 1", a.Free())
	}
	r2 := a.Lease()
	if r2 != r {
		t.Fatal("lease after recycle must reuse the object")
	}
	if a.Reuses() != 1 {
		t.Fatalf("reuses = %d, want 1", a.Reuses())
	}
	if r2.ID != 0 || r2.Class != 0 || r2.stage != 0 || r2.Arrival != 0 || r2.Done != 0 {
		t.Fatalf("reused request not zeroed: %+v", r2)
	}
	if len(r2.Chain) != 0 || cap(r2.Chain) < 2 {
		t.Fatalf("chain len/cap = %d/%d, want 0/>=2 (capacity retained)", len(r2.Chain), cap(r2.Chain))
	}
}

func TestRecycleSafeOnForeignAndDouble(t *testing.T) {
	Recycle(nil) // must not panic
	plain := NewRequest(1, 0, []ExpertID{3})
	Recycle(plain) // non-arena request: no-op
	a := NewArena()
	r := a.Lease()
	Recycle(r)
	Recycle(r) // double recycle: idempotent
	if a.Free() != 1 {
		t.Fatalf("double recycle grew free list to %d", a.Free())
	}
	// The recycled request must not re-enter a different arena either.
	b := NewArena()
	_ = b
	Recycle(r)
	if a.Free() != 1 || b.Free() != 0 {
		t.Fatalf("recycle after clear: a=%d b=%d", a.Free(), b.Free())
	}
}

// TestAppendRouteMatchesRoute: the alloc-free router entry point must
// produce exactly the chains Route does, for both the pass and fail
// outcome of every class.
func TestAppendRouteMatchesRoute(t *testing.T) {
	b := NewBuilder("m")
	cls := b.AddExpert("cls", model.ResNet101, Preliminary)
	det := b.AddExpert("det", model.YOLOv5m, Subsequent)
	b.Link(cls, det)
	b.AddRule(0, Rule{Classifier: cls, Detector: det, PassProb: 0.5})
	b.AddRule(1, Rule{Classifier: cls})
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	router := m.Router()
	buf := make([]ExpertID, 0, 2)
	for class := 0; class <= 1; class++ {
		for _, u := range []float64{0, 0.25, 0.5, 0.75, 0.99} {
			want, err := router.Route(class, u)
			if err != nil {
				t.Fatal(err)
			}
			got, err := router.AppendRoute(buf[:0], class, u)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("class %d u=%v: AppendRoute len %d, Route len %d", class, u, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("class %d u=%v: chain %v, want %v", class, u, got, want)
				}
			}
		}
	}
	if _, err := router.AppendRoute(buf[:0], 99, 0); err == nil {
		t.Fatal("AppendRoute must error on unknown class")
	}
}

// TestArenaWarmLeaseDoesNotAllocate pins the hot path: once the free
// list is primed, a lease/route/recycle cycle is allocation-free.
func TestArenaWarmLeaseDoesNotAllocate(t *testing.T) {
	b := NewBuilder("m")
	cls := b.AddExpert("cls", model.ResNet101, Preliminary)
	det := b.AddExpert("det", model.YOLOv5m, Subsequent)
	b.Link(cls, det)
	b.AddRule(0, Rule{Classifier: cls, Detector: det, PassProb: 1})
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	router := m.Router()
	a := NewArena()
	prime := a.Lease()
	prime.Chain, _ = router.AppendRoute(prime.Chain[:0], 0, 0)
	Recycle(prime)
	if allocs := testing.AllocsPerRun(1000, func() {
		r := a.Lease()
		r.Chain, _ = router.AppendRoute(r.Chain[:0], 0, 0)
		Recycle(r)
	}); allocs > 0 {
		t.Errorf("warm lease cycle allocated %.1f objects/op, want 0", allocs)
	}
}
