package coe

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// buildTestModel creates a small CoE: 3 classifiers, 1 shared detector.
func buildTestModel(t *testing.T) (*Model, []ExpertID, ExpertID) {
	t.Helper()
	b := NewBuilder("test")
	var cls []ExpertID
	for i := 0; i < 3; i++ {
		cls = append(cls, b.AddExpert("cls", model.ResNet101, Preliminary))
	}
	det := b.AddExpert("det", model.YOLOv5m, Subsequent)
	b.Link(cls[0], det)
	b.Link(cls[1], det)
	b.AddRule(0, Rule{Classifier: cls[0], Detector: det, PassProb: 0.9})
	b.AddRule(1, Rule{Classifier: cls[1], Detector: det, PassProb: 0.5})
	b.AddRule(2, Rule{Classifier: cls[2], Detector: NoExpert})
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m, cls, det
}

func TestBuilderLinksDependencies(t *testing.T) {
	m, cls, det := buildTestModel(t)
	d := m.Expert(det)
	if len(d.DependsOn) != 2 {
		t.Fatalf("detector depends on %d experts, want 2", len(d.DependsOn))
	}
	if len(m.Expert(cls[0]).Dependents) != 1 || m.Expert(cls[0]).Dependents[0] != det {
		t.Error("classifier 0 should list detector as dependent")
	}
	if len(m.Expert(cls[2]).Dependents) != 0 {
		t.Error("classifier 2 should have no dependents")
	}
}

func TestBuilderDuplicateLinkIgnored(t *testing.T) {
	b := NewBuilder("dup")
	c := b.AddExpert("c", model.ResNet101, Preliminary)
	d := b.AddExpert("d", model.YOLOv5m, Subsequent)
	b.Link(c, d)
	b.Link(c, d)
	b.AddRule(0, Rule{Classifier: c, Detector: d, PassProb: 1})
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Expert(d).DependsOn) != 1 {
		t.Error("duplicate link created duplicate dependency")
	}
}

func TestBuilderRejectsBadLinks(t *testing.T) {
	b := NewBuilder("bad")
	c := b.AddExpert("c", model.ResNet101, Preliminary)
	d := b.AddExpert("d", model.YOLOv5m, Subsequent)
	b.Link(d, c) // reversed roles
	b.AddRule(0, Rule{Classifier: c})
	if _, err := b.Build(); err == nil {
		t.Error("reversed link not rejected")
	}
}

func TestBuilderRejectsBadRules(t *testing.T) {
	cases := map[string]func(*Builder, ExpertID, ExpertID){
		"classifier out of range": func(b *Builder, c, d ExpertID) {
			b.AddRule(0, Rule{Classifier: 99})
		},
		"non-preliminary classifier": func(b *Builder, c, d ExpertID) {
			b.AddRule(0, Rule{Classifier: d})
		},
		"non-subsequent detector": func(b *Builder, c, d ExpertID) {
			b.AddRule(0, Rule{Classifier: c, Detector: c, PassProb: 0.5})
		},
		"pass prob out of range": func(b *Builder, c, d ExpertID) {
			b.AddRule(0, Rule{Classifier: c, Detector: d, PassProb: 1.5})
		},
	}
	for name, corrupt := range cases {
		b := NewBuilder("bad")
		c := b.AddExpert("c", model.ResNet101, Preliminary)
		d := b.AddExpert("d", model.YOLOv5m, Subsequent)
		corrupt(b, c, d)
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: not rejected", name)
		}
	}
}

func TestBuilderRejectsEmptyModelAndDuplicateRule(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Error("empty model not rejected")
	}
	b := NewBuilder("dup")
	c := b.AddExpert("c", model.ResNet101, Preliminary)
	b.AddRule(0, Rule{Classifier: c})
	b.AddRule(0, Rule{Classifier: c})
	if _, err := b.Build(); err == nil {
		t.Error("duplicate rule not rejected")
	}
}

func TestRouteChains(t *testing.T) {
	m, cls, det := buildTestModel(t)
	r := m.Router()
	// u below pass prob -> classification passed -> detector stage.
	chain, err := r.Route(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[0] != cls[0] || chain[1] != det {
		t.Errorf("chain = %v, want [%d %d]", chain, cls[0], det)
	}
	// u above pass prob -> failed -> classifier only.
	chain, err = r.Route(0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 {
		t.Errorf("failed classification chain = %v, want 1 stage", chain)
	}
	// class without detector.
	chain, err = r.Route(2, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0] != cls[2] {
		t.Errorf("detector-less chain = %v", chain)
	}
	if _, err := r.Route(42, 0.5); err == nil {
		t.Error("unknown class not rejected")
	}
}

func TestComputeUsage(t *testing.T) {
	m, cls, det := buildTestModel(t)
	probs := map[int]float64{0: 0.5, 1: 0.3, 2: 0.2}
	if err := ComputeUsage(m, probs); err != nil {
		t.Fatal(err)
	}
	if got := m.Expert(cls[0]).UsageProb; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("cls0 usage = %v, want 0.5", got)
	}
	// Detector: 0.5*0.9 + 0.3*0.5 = 0.6.
	if got := m.Expert(det).UsageProb; math.Abs(got-0.6) > 1e-12 {
		t.Errorf("det usage = %v, want 0.6", got)
	}
	if err := ComputeUsage(m, map[int]float64{9: 1}); err == nil {
		t.Error("unroutable class not rejected")
	}
	if err := ComputeUsage(m, map[int]float64{0: -1}); err == nil {
		t.Error("negative probability not rejected")
	}
}

func TestEstimateUsage(t *testing.T) {
	m, cls, det := buildTestModel(t)
	chains := [][]ExpertID{
		{cls[0], det},
		{cls[0]},
		{cls[1], det},
		{cls[2]},
	}
	EstimateUsage(m, chains)
	if got := m.Expert(cls[0]).UsageProb; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("cls0 estimated usage = %v, want 0.5", got)
	}
	if got := m.Expert(det).UsageProb; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("det estimated usage = %v, want 0.5", got)
	}
	EstimateUsage(m, nil) // must not panic
}

func TestExpertsByUsageOrdering(t *testing.T) {
	m, _, _ := buildTestModel(t)
	if err := ComputeUsage(m, map[int]float64{0: 0.5, 1: 0.3, 2: 0.2}); err != nil {
		t.Fatal(err)
	}
	sorted := m.ExpertsByUsage()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].UsageProb > sorted[i-1].UsageProb {
			t.Fatalf("not sorted by descending usage: %v then %v",
				sorted[i-1].UsageProb, sorted[i].UsageProb)
		}
	}
}

func TestUsageCDFShape(t *testing.T) {
	m, _, _ := buildTestModel(t)
	if err := ComputeUsage(m, map[int]float64{0: 0.5, 1: 0.3, 2: 0.2}); err != nil {
		t.Fatal(err)
	}
	cdf := m.UsageCDF()
	if len(cdf) != m.NumExperts() {
		t.Fatalf("CDF length = %d, want %d", len(cdf), m.NumExperts())
	}
	if !sort.Float64sAreSorted(cdf) {
		t.Error("CDF not monotone")
	}
	if math.Abs(cdf[len(cdf)-1]-1) > 1e-12 {
		t.Errorf("CDF final value = %v, want 1", cdf[len(cdf)-1])
	}
}

// Property: for any probability assignment, the usage CDF is monotone,
// bounded by [0,1], and ends at 1.
func TestUsageCDFProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		b := NewBuilder("prop")
		var any bool
		for i, v := range raw {
			id := b.AddExpert("e", model.ResNet101, Preliminary)
			b.AddRule(i, Rule{Classifier: id})
			if v > 0 {
				any = true
			}
		}
		m, err := b.Build()
		if err != nil {
			return false
		}
		for i, v := range raw {
			m.Expert(ExpertID(i)).UsageProb = float64(v)
		}
		cdf := m.UsageCDF()
		if !any {
			return cdf == nil
		}
		prev := 0.0
		for _, c := range cdf {
			if c < prev-1e-12 || c < 0 || c > 1+1e-12 {
				return false
			}
			prev = c
		}
		return math.Abs(cdf[len(cdf)-1]-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRequestLifecycle(t *testing.T) {
	r := NewRequest(7, 3, []ExpertID{2, 5})
	if r.Expert() != 2 || r.Stage() != 0 || r.Stages() != 2 || r.Final() {
		t.Errorf("initial state wrong: %v", r)
	}
	if !r.Advance() {
		t.Fatal("Advance to stage 2 failed")
	}
	if r.Expert() != 5 || !r.Final() {
		t.Errorf("stage 2 state wrong: %v", r)
	}
	if r.Advance() {
		t.Error("Advance past final stage should report false")
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestRequestEmptyChainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for empty chain")
		}
	}()
	NewRequest(1, 0, nil)
}

func TestModelAccessors(t *testing.T) {
	m, _, _ := buildTestModel(t)
	if m.Name() != "test" || m.NumExperts() != 4 {
		t.Error("accessors wrong")
	}
	want := 3*model.ResNet101.WeightBytes() + model.YOLOv5m.WeightBytes()
	if m.TotalWeightBytes() != want {
		t.Errorf("TotalWeightBytes = %d, want %d", m.TotalWeightBytes(), want)
	}
	classes := m.Router().Classes()
	if len(classes) != 3 || classes[0] != 0 || classes[2] != 2 {
		t.Errorf("Classes = %v", classes)
	}
	if Preliminary.String() != "preliminary" || Subsequent.String() != "subsequent" {
		t.Error("role strings wrong")
	}
}

func TestExpertOutOfRangePanics(t *testing.T) {
	m, _, _ := buildTestModel(t)
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range expert")
		}
	}()
	m.Expert(99)
}
