package coe

import (
	"fmt"

	"repro/internal/sim"
)

// Request is one inference request traveling through a CoE pipeline. A
// request carries its full expert chain (decided by the router) and a
// cursor over it; the serving system schedules one stage at a time and
// advances the cursor when a stage completes.
type Request struct {
	ID    int64
	Class int
	Chain []ExpertID
	stage int

	// Arrival is stamped by the serving system when the request enters.
	Arrival sim.Time
	// Done is stamped when the final stage completes.
	Done sim.Time

	// arena, when non-nil, marks the request as leased from an Arena;
	// Recycle returns it there. Plain NewRequest objects leave it nil.
	arena *Arena
}

// NewRequest returns a request at stage 0 of the given chain.
func NewRequest(id int64, class int, chain []ExpertID) *Request {
	if len(chain) == 0 {
		panic("coe: request with empty chain")
	}
	return &Request{ID: id, Class: class, Chain: chain}
}

// Expert reports the expert required by the request's current stage.
func (r *Request) Expert() ExpertID { return r.Chain[r.stage] }

// Stage reports the zero-based index of the current stage.
func (r *Request) Stage() int { return r.stage }

// Stages reports the total number of stages in the chain.
func (r *Request) Stages() int { return len(r.Chain) }

// Advance moves the request to its next stage. It reports false when the
// request has completed its final stage.
func (r *Request) Advance() bool {
	if r.stage+1 >= len(r.Chain) {
		return false
	}
	r.stage++
	return true
}

// Final reports whether the request is on its last stage.
func (r *Request) Final() bool { return r.stage == len(r.Chain)-1 }

func (r *Request) String() string {
	return fmt.Sprintf("req%d(class=%d stage=%d/%d expert=%d)",
		r.ID, r.Class, r.stage+1, len(r.Chain), r.Expert())
}
