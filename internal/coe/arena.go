package coe

// Arena is a free-list of Request objects for high-volume serving
// streams. Unbounded open-loop sources allocate one Request (plus its
// chain) per arrival; at fleet scale that dominates the allocation
// profile of the whole data plane. An arena caps it at the in-flight
// high-water mark: the serving layer recycles a request when it
// completes or is rejected, and the next arrival reuses the object and
// its chain capacity.
//
// Ownership protocol: Lease hands out a request owned by the caller;
// Recycle (a package function, safe on non-arena requests) returns it.
// A request must not be recycled while anything still references it —
// the serving layer guarantees this by recycling only after the
// completion/rejection is fully recorded (trace events and window
// samples copy values, never retain the pointer). An Arena is owned by
// the workload source's caller and persists across streams and
// Env.Reopen warm restarts, so consecutive streams share one pool.
//
// An Arena is not safe for concurrent use. One simulation runs one
// goroutine at a time, so a single arena may serve every node of a
// cluster within one sim.Env, but distinct parallel experiment runs
// need distinct arenas.
type Arena struct {
	free   []*Request
	leases int64
	reuses int64
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Lease returns a zeroed request owned by the caller, reusing a
// recycled one when available. The request's chain is length zero but
// keeps its previous capacity — fill it with AppendRoute (or append)
// rather than assigning a fresh slice, or the recycling is pointless.
func (a *Arena) Lease() *Request {
	a.leases++
	var r *Request
	if n := len(a.free); n > 0 {
		r = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		a.reuses++
		r.ID, r.Class, r.stage = 0, 0, 0
		r.Arrival, r.Done = 0, 0
		r.Chain = r.Chain[:0]
	} else {
		r = &Request{}
	}
	r.arena = a
	return r
}

// Recycle returns a leased request to its arena's free list. It is a
// no-op for nil requests and requests that did not come from an arena
// (plain NewRequest objects flow through unchanged), and it is
// idempotent: the lease marker clears on the first call, so a double
// recycle cannot put the same object in the free list twice.
func Recycle(r *Request) {
	if r == nil || r.arena == nil {
		return
	}
	a := r.arena
	r.arena = nil
	a.free = append(a.free, r)
}

// Leases reports how many requests the arena has handed out.
func (a *Arena) Leases() int64 { return a.leases }

// Reuses reports how many leases were satisfied from the free list
// rather than a fresh allocation.
func (a *Arena) Reuses() int64 { return a.reuses }

// Free reports the current free-list length — at most the in-flight
// high-water mark of the streams the arena has served.
func (a *Arena) Free() int { return len(a.free) }
