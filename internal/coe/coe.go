// Package coe models Collaboration-of-Experts (CoE) models: independent
// expert models joined by a routing module and an explicit dependency
// graph (§2.1, Figure 2).
//
// Unlike MoE, a CoE's routing is known ahead of time — user-defined rules
// or an independently trained router — which lets a serving system
// pre-assess each expert's usage probability and the preliminary →
// subsequent dependencies between experts. Those two properties are
// exactly what CoServe's scheduler and expert manager consume.
package coe

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/model"
)

// ExpertID identifies an expert within one CoE model. IDs are dense
// indices assigned by the builder.
type ExpertID int32

// NoExpert is the absent-expert sentinel (for example, a component type
// with no detection stage).
const NoExpert ExpertID = -1

// Role classifies an expert's position in inference pipelines.
type Role int

const (
	// Preliminary experts take raw inputs (Figure 2's first stage).
	Preliminary Role = iota
	// Subsequent experts consume the output of preliminary experts.
	Subsequent
)

func (r Role) String() string {
	switch r {
	case Preliminary:
		return "preliminary"
	case Subsequent:
		return "subsequent"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Expert is one expert model of a CoE.
type Expert struct {
	ID   ExpertID
	Name string
	Arch model.Architecture
	Role Role
	// DependsOn lists the preliminary experts whose output this
	// (subsequent) expert consumes. Empty for preliminary experts.
	DependsOn []ExpertID
	// Dependents lists subsequent experts fed by this expert.
	Dependents []ExpertID
	// UsageProb is the pre-assessed probability that a random request
	// uses this expert (§4.5); the expert manager's stage-2 eviction key.
	UsageProb float64
}

// WeightBytes reports the expert's loaded size.
func (e *Expert) WeightBytes() int64 { return e.Arch.WeightBytes() }

// Model is an immutable CoE model: the expert pool plus routing rules.
type Model struct {
	name    string
	experts []*Expert
	router  *RuleRouter
}

// Name reports the model name.
func (m *Model) Name() string { return m.name }

// NumExperts reports the expert count.
func (m *Model) NumExperts() int { return len(m.experts) }

// Expert returns the expert with the given ID.
func (m *Model) Expert(id ExpertID) *Expert {
	if id < 0 || int(id) >= len(m.experts) {
		panic(fmt.Sprintf("coe: expert %d out of range [0,%d)", id, len(m.experts)))
	}
	return m.experts[id]
}

// Experts returns all experts in ID order. Callers must not mutate the
// returned slice.
func (m *Model) Experts() []*Expert { return m.experts }

// Router returns the model's routing module.
func (m *Model) Router() *RuleRouter { return m.router }

// TotalWeightBytes reports the summed size of all experts.
func (m *Model) TotalWeightBytes() int64 {
	var sum int64
	for _, e := range m.experts {
		sum += e.WeightBytes()
	}
	return sum
}

// ExpertsByUsage returns the experts sorted by descending usage
// probability (ties broken by ascending ID), the order used for expert
// initialization (§4.1) and the usage CDF (§4.4).
func (m *Model) ExpertsByUsage() []*Expert {
	out := append([]*Expert(nil), m.experts...)
	slices.SortStableFunc(out, func(a, b *Expert) int {
		return cmp.Or(
			cmp.Compare(b.UsageProb, a.UsageProb),
			cmp.Compare(a.ID, b.ID),
		)
	})
	return out
}

// UsageCDF returns the cumulative distribution of expert usage over the
// experts sorted by descending usage probability — the curve of
// Figure 11. Point i is the fraction of expert invocations covered by
// the i+1 most-used experts; the final point is 1 (or the slice is nil
// when all probabilities are zero).
func (m *Model) UsageCDF() []float64 {
	sorted := m.ExpertsByUsage()
	var total float64
	for _, e := range sorted {
		total += e.UsageProb
	}
	if total <= 0 {
		return nil
	}
	cdf := make([]float64, len(sorted))
	var cum float64
	for i, e := range sorted {
		cum += e.UsageProb
		cdf[i] = cum / total
	}
	return cdf
}

// Builder assembles a Model. Add experts, link dependencies, attach
// routing rules, then call Build.
type Builder struct {
	name    string
	experts []*Expert
	rules   map[int]Rule
	err     error
}

// NewBuilder returns an empty builder for a model with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, rules: make(map[int]Rule)}
}

// AddExpert appends an expert and returns its ID.
func (b *Builder) AddExpert(name string, arch model.Architecture, role Role) ExpertID {
	id := ExpertID(len(b.experts))
	b.experts = append(b.experts, &Expert{
		ID:   id,
		Name: name,
		Arch: arch,
		Role: role,
	})
	return id
}

// Link records that subsequent expert sub consumes the output of
// preliminary expert pre.
func (b *Builder) Link(pre, sub ExpertID) {
	if b.err != nil {
		return
	}
	if err := b.checkID(pre); err != nil {
		b.err = err
		return
	}
	if err := b.checkID(sub); err != nil {
		b.err = err
		return
	}
	pe, se := b.experts[pre], b.experts[sub]
	if pe.Role != Preliminary {
		b.err = fmt.Errorf("coe: link source %s is not preliminary", pe.Name)
		return
	}
	if se.Role != Subsequent {
		b.err = fmt.Errorf("coe: link target %s is not subsequent", se.Name)
		return
	}
	for _, d := range se.DependsOn {
		if d == pre {
			return // already linked
		}
	}
	se.DependsOn = append(se.DependsOn, pre)
	pe.Dependents = append(pe.Dependents, sub)
}

// AddRule attaches the routing rule for an input class. A rule whose
// PassProb is zero can never route to its detector, so it is normalized
// to a classifier-only rule; this makes Rule{Classifier: id} safe to
// write without mentioning NoExpert.
func (b *Builder) AddRule(class int, rule Rule) {
	if b.err != nil {
		return
	}
	if _, dup := b.rules[class]; dup {
		b.err = fmt.Errorf("coe: duplicate rule for class %d", class)
		return
	}
	if rule.PassProb <= 0 {
		rule.Detector = NoExpert
		rule.PassProb = 0
	}
	b.rules[class] = rule
}

func (b *Builder) checkID(id ExpertID) error {
	if id < 0 || int(id) >= len(b.experts) {
		return fmt.Errorf("coe: expert id %d out of range", id)
	}
	return nil
}

// Build validates the model and returns it.
func (b *Builder) Build() (*Model, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.experts) == 0 {
		return nil, fmt.Errorf("coe: model %q has no experts", b.name)
	}
	//detlint:allow validation only: every rule is checked and any error aborts the build; which of several errors surfaces first is not output
	for class, rule := range b.rules {
		if err := b.checkID(rule.Classifier); err != nil {
			return nil, fmt.Errorf("coe: rule for class %d: %w", class, err)
		}
		if b.experts[rule.Classifier].Role != Preliminary {
			return nil, fmt.Errorf("coe: rule for class %d routes to non-preliminary classifier", class)
		}
		if rule.Detector != NoExpert {
			if err := b.checkID(rule.Detector); err != nil {
				return nil, fmt.Errorf("coe: rule for class %d: %w", class, err)
			}
			if b.experts[rule.Detector].Role != Subsequent {
				return nil, fmt.Errorf("coe: rule for class %d routes to non-subsequent detector", class)
			}
			if rule.PassProb < 0 || rule.PassProb > 1 {
				return nil, fmt.Errorf("coe: rule for class %d has pass probability %f outside [0,1]", class, rule.PassProb)
			}
		}
	}
	return &Model{
		name:    b.name,
		experts: b.experts,
		router:  &RuleRouter{rules: b.rules},
	}, nil
}
