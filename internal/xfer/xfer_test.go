package xfer

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/sim"
)

func TestLoadLatencySSDDominatedByDeserialization(t *testing.T) {
	d := hw.NUMADevice()
	bytes := model.ResNet101.WeightBytes()
	lat := LoadLatency(d, FromSSD, memory.TierGPU, bytes)
	// ~178 MB: 530 MB/s read + 250 MB/s deserialize + host→GPU ≈ 1.45 s.
	if lat < 1200*time.Millisecond || lat > 1700*time.Millisecond {
		t.Errorf("NUMA SSD→GPU ResNet101 load = %v, want ~1.45s", lat)
	}
}

func TestLoadLatencyHostMuchCheaperThanSSD(t *testing.T) {
	for _, d := range []*hw.Device{hw.NUMADevice(), hw.UMADevice()} {
		bytes := model.ResNet101.WeightBytes()
		ssd := LoadLatency(d, FromSSD, memory.TierGPU, bytes)
		host := LoadLatency(d, FromHost, memory.TierGPU, bytes)
		if host*2 > ssd {
			t.Errorf("%s: host load %v not well below SSD load %v", d.Name, host, ssd)
		}
	}
}

func TestLoadLatencyHostToCPUOnlyFixed(t *testing.T) {
	d := hw.NUMADevice()
	lat := LoadLatency(d, FromHost, memory.TierCPU, model.ResNet101.WeightBytes())
	if lat != d.LoadFixed {
		t.Errorf("host→CPU load = %v, want fixed %v", lat, d.LoadFixed)
	}
}

func TestFigure1SwitchingShares(t *testing.T) {
	// Figure 1: switching latency share of (switch + execution) for one
	// inference batch at the processor's saturation batch size. SSD→GPU
	// must exceed 90% on both devices; CPU→GPU must land in the paper's
	// 60–93% band.
	for _, d := range []*hw.Device{hw.NUMADevice(), hw.UMADevice()} {
		for _, a := range []model.Architecture{model.ResNet101, model.YOLOv5m, model.YOLOv5l} {
			exec := model.ExecLatency(a, d.GPU, d.GPU.SatBatch)
			ssd := LoadLatency(d, FromSSD, memory.TierGPU, a.WeightBytes())
			share := float64(ssd) / float64(ssd+exec)
			if share < 0.90 {
				t.Errorf("%s/%s SSD share = %.1f%%, want > 90%%", d.Name, a.Name, share*100)
			}
			host := LoadLatency(d, FromHost, memory.TierGPU, a.WeightBytes())
			hshare := float64(host) / float64(host+exec)
			if hshare < 0.60 || hshare > 0.93 {
				t.Errorf("%s/%s CPU→GPU share = %.1f%%, want 60–93%%", d.Name, a.Name, hshare*100)
			}
		}
	}
}

func TestEngineMatchesModelWithoutContention(t *testing.T) {
	env := sim.NewEnv()
	d := hw.NUMADevice()
	eng := NewEngine(env, d)
	bytes := model.YOLOv5m.WeightBytes()
	var got time.Duration
	env.Go("loader", func(p *sim.Proc) {
		got = eng.Load(p, FromSSD, memory.TierGPU, bytes)
	})
	env.Run()
	want := LoadLatency(d, FromSSD, memory.TierGPU, bytes)
	if got != want {
		t.Errorf("engine load = %v, model = %v", got, want)
	}
	if eng.Loads() != 1 || eng.LoadBytes() != bytes {
		t.Errorf("counters = %d loads / %d bytes", eng.Loads(), eng.LoadBytes())
	}
}

func TestEngineLimitsConcurrentSSDLoads(t *testing.T) {
	env := sim.NewEnv()
	d := hw.NUMADevice()
	eng := NewEngine(env, d)
	streams := d.LoadConcurrency()
	n := streams + 1 // one more load than the device can overlap
	bytes := model.ResNet101.WeightBytes()
	single := LoadLatency(d, FromSSD, memory.TierCPU, bytes)
	var finish []sim.Time
	for i := 0; i < n; i++ {
		env.Go("loader", func(p *sim.Proc) {
			eng.Load(p, FromSSD, memory.TierCPU, bytes)
			finish = append(finish, p.Now())
		})
	}
	end := env.Run()
	// streams loads overlap; the extra one queues behind them.
	want := sim.Time(2 * single)
	if end != want {
		t.Errorf("%d concurrent loads finished at %v, want %v", n, end, want)
	}
	if len(finish) != n {
		t.Fatalf("finished %d loads", len(finish))
	}
	if eng.LoaderBusy() != time.Duration(n)*single {
		t.Errorf("loader busy = %v, want %v", eng.LoaderBusy(), time.Duration(n)*single)
	}
}

func TestEngineHostLoadsUseSeparateLink(t *testing.T) {
	// A host→GPU copy must not wait for an in-flight SSD read+deser
	// stage (only for the shared host link).
	env := sim.NewEnv()
	d := hw.NUMADevice()
	eng := NewEngine(env, d)
	bytes := model.ResNet101.WeightBytes()
	var hostDone sim.Time
	env.Go("ssd", func(p *sim.Proc) {
		eng.Load(p, FromSSD, memory.TierCPU, bytes) // loader stage only
	})
	env.Go("host", func(p *sim.Proc) {
		eng.Load(p, FromHost, memory.TierGPU, bytes)
		hostDone = p.Now()
	})
	env.Run()
	hostOnly := LoadLatency(d, FromHost, memory.TierGPU, bytes)
	if hostDone != sim.Time(hostOnly) {
		t.Errorf("host load finished at %v, want %v (no loader contention)", hostDone, hostOnly)
	}
}

func TestSourceStrings(t *testing.T) {
	if FromSSD.String() != "ssd" || FromHost.String() != "host" {
		t.Error("source strings wrong")
	}
	if Source(9).String() == "" {
		t.Error("unknown source string empty")
	}
}
