// Package xfer models expert transfers between memory tiers: the SSD
// read + framework deserialization path and the host-to-GPU copy (PCIe
// on NUMA, data reorganization on UMA). Transfers contend on per-device
// simulation resources, so concurrent loads serialize on the physical
// units exactly as they do on the real machine — which is what makes
// expert switching the system bottleneck (Figure 1).
package xfer

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/memory"
	"repro/internal/sim"
)

// Source describes where an expert is loaded from.
type Source int

const (
	// FromSSD loads a serialized expert from storage (read + deserialize).
	FromSSD Source = iota
	// FromHost copies an already-deserialized expert from CPU memory to
	// the GPU (PCIe copy on NUMA, reorganization on UMA).
	FromHost
)

func (s Source) String() string {
	switch s {
	case FromSSD:
		return "ssd"
	case FromHost:
		return "host"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// hostLinkBW returns the CPU→GPU copy bandwidth for the device.
func hostLinkBW(d *hw.Device) float64 {
	if d.Mem == hw.UMA {
		return d.ReorgBW
	}
	return d.PCIeBW
}

// bwDuration converts bytes at bw bytes/s into a duration.
func bwDuration(bytes int64, bw float64) time.Duration {
	return time.Duration(float64(bytes) / bw * float64(time.Second))
}

// LoadLatency reports the modeled time to bring bytes of expert weights
// to the destination tier from the given source, without contention.
//
//   - FromSSD to CPU: SSD read + deserialization + fixed overhead.
//   - FromSSD to GPU: the CPU path plus the host→GPU copy.
//   - FromHost to GPU: host→GPU copy + fixed overhead.
//   - FromHost to CPU: fixed overhead only (weights already usable).
func LoadLatency(d *hw.Device, src Source, dst memory.Tier, bytes int64) time.Duration {
	lat := d.LoadFixed
	switch src {
	case FromSSD:
		lat += bwDuration(bytes, d.SSDReadBW) + bwDuration(bytes, d.DeserBW)
		if dst == memory.TierGPU {
			lat += bwDuration(bytes, hostLinkBW(d))
		}
	case FromHost:
		if dst == memory.TierGPU {
			lat += bwDuration(bytes, hostLinkBW(d))
		}
	default:
		panic(fmt.Sprintf("xfer: unknown source %v", src))
	}
	return lat
}

// Engine executes transfers under contention. The loader resource covers
// the SSD-read-plus-deserialization stage (limited to the device's
// concurrent load streams); the host link covers CPU→GPU copies.
type Engine struct {
	dev      *hw.Device
	loader   *sim.Resource
	hostLink *sim.Resource

	loads     int64
	loadBytes int64
}

// NewEngine returns an engine for the device bound to env. The host
// link serializes on NUMA devices (one PCIe copy at a time); on UMA the
// "link" is data reorganization by CPU cores, which parallelizes like
// the load streams.
func NewEngine(env *sim.Env, dev *hw.Device) *Engine {
	hostCap := 1
	if dev.Mem == hw.UMA {
		hostCap = dev.LoadConcurrency()
	}
	return &Engine{
		dev:      dev,
		loader:   sim.NewResource(env, dev.Name+"/loader", dev.LoadConcurrency()),
		hostLink: sim.NewResource(env, dev.Name+"/hostlink", hostCap),
	}
}

// Device returns the engine's device profile.
func (e *Engine) Device() *hw.Device { return e.dev }

// Load performs a transfer of bytes from src to dst on behalf of the
// simulation process, blocking on the physical resources involved. It
// returns the total elapsed virtual time including queueing.
func (e *Engine) Load(p *sim.Proc, src Source, dst memory.Tier, bytes int64) time.Duration {
	start := p.Now()
	switch src {
	case FromSSD:
		stage := e.dev.LoadFixed + bwDuration(bytes, e.dev.SSDReadBW) + bwDuration(bytes, e.dev.DeserBW)
		e.loader.Use(p, stage)
		if dst == memory.TierGPU {
			e.hostLink.Use(p, bwDuration(bytes, hostLinkBW(e.dev)))
		}
	case FromHost:
		stage := e.dev.LoadFixed
		if dst == memory.TierGPU {
			stage += bwDuration(bytes, hostLinkBW(e.dev))
		}
		e.hostLink.Use(p, stage)
	default:
		panic(fmt.Sprintf("xfer: unknown source %v", src))
	}
	e.loads++
	e.loadBytes += bytes
	return p.Now().Sub(start)
}

// Loads reports the number of transfers executed.
func (e *Engine) Loads() int64 { return e.loads }

// LoadBytes reports the total bytes transferred.
func (e *Engine) LoadBytes() int64 { return e.loadBytes }

// LoaderBusy reports cumulative busy time of the load stage, for
// utilization analysis.
func (e *Engine) LoaderBusy() time.Duration { return e.loader.BusyTime() }
