// Package memory provides byte-accounted memory arenas for the simulated
// device. An Arena tracks reservations against a fixed capacity and lets
// simulation processes block until space frees up — the mechanism behind
// the paper's tradeoff between expert storage and batch intermediate
// results (§3.3, §4.4).
package memory

import (
	"fmt"

	"repro/internal/sim"
)

// Tier identifies a memory or storage tier of the device.
type Tier int

const (
	// TierGPU is GPU-visible memory (discrete VRAM or the unified pool).
	TierGPU Tier = iota
	// TierCPU is CPU DRAM (the host cache tier on NUMA devices).
	TierCPU
	// TierSSD is persistent storage; every expert always resides there.
	TierSSD
)

func (t Tier) String() string {
	switch t {
	case TierGPU:
		return "gpu"
	case TierCPU:
		return "cpu"
	case TierSSD:
		return "ssd"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Arena is a fixed-capacity memory account. Reservations either succeed
// immediately, fail, or (for simulation processes) block until capacity
// frees. The zero value is unusable; create arenas with NewArena.
type Arena struct {
	name     string
	capacity int64
	reserved int64
	waiters  []waiter

	// peak tracks the high-water mark for reporting.
	peak int64
}

type waiter struct {
	proc  *sim.Proc
	bytes int64
}

// NewArena returns an arena with the given capacity in bytes.
func NewArena(name string, capacity int64) *Arena {
	if capacity < 0 {
		panic("memory: negative capacity")
	}
	return &Arena{name: name, capacity: capacity}
}

// Name reports the arena name.
func (a *Arena) Name() string { return a.name }

// Capacity reports the total capacity in bytes.
func (a *Arena) Capacity() int64 { return a.capacity }

// Reserved reports the bytes currently reserved.
func (a *Arena) Reserved() int64 { return a.reserved }

// Free reports the bytes currently available.
func (a *Arena) Free() int64 { return a.capacity - a.reserved }

// Peak reports the reservation high-water mark.
func (a *Arena) Peak() int64 { return a.peak }

// Reserve takes bytes from the arena, or reports an error if they do not
// fit. Reserving zero bytes always succeeds.
func (a *Arena) Reserve(bytes int64) error {
	if bytes < 0 {
		panic("memory: negative reservation")
	}
	if a.reserved+bytes > a.capacity {
		return fmt.Errorf("memory: arena %s cannot reserve %d bytes (%d free of %d)",
			a.name, bytes, a.Free(), a.capacity)
	}
	a.reserved += bytes
	if a.reserved > a.peak {
		a.peak = a.reserved
	}
	return nil
}

// TryReserve reserves bytes and reports whether it succeeded.
func (a *Arena) TryReserve(bytes int64) bool { return a.Reserve(bytes) == nil }

// Release returns bytes to the arena and wakes any waiter whose request
// now fits (in FIFO order, stopping at the first that still does not).
func (a *Arena) Release(bytes int64) {
	if bytes < 0 {
		panic("memory: negative release")
	}
	if bytes > a.reserved {
		panic(fmt.Sprintf("memory: arena %s released %d bytes with only %d reserved",
			a.name, bytes, a.reserved))
	}
	a.reserved -= bytes
	a.wakeFitting()
}

// wakeFitting resumes queued waiters, head-of-line, while their requests
// fit. The reservation is made on behalf of the waiter before it
// resumes, so capacity cannot be stolen in between.
func (a *Arena) wakeFitting() {
	for len(a.waiters) > 0 {
		w := a.waiters[0]
		if a.reserved+w.bytes > a.capacity {
			return
		}
		a.waiters = a.waiters[1:]
		a.reserved += w.bytes
		if a.reserved > a.peak {
			a.peak = a.reserved
		}
		w.proc.Unpark()
	}
}

// WaitReserve blocks the simulation process until bytes can be reserved,
// then reserves them. Requests queue FIFO, so a large request is not
// starved by a stream of small ones. Panics if bytes exceeds capacity
// outright (it could never succeed).
func (a *Arena) WaitReserve(p *sim.Proc, bytes int64) {
	if bytes < 0 {
		panic("memory: negative reservation")
	}
	if bytes > a.capacity {
		panic(fmt.Sprintf("memory: arena %s can never satisfy %d bytes (capacity %d)",
			a.name, bytes, a.capacity))
	}
	if len(a.waiters) == 0 && a.reserved+bytes <= a.capacity {
		a.reserved += bytes
		if a.reserved > a.peak {
			a.peak = a.reserved
		}
		return
	}
	a.waiters = append(a.waiters, waiter{proc: p, bytes: bytes})
	p.Park()
}

// Waiting reports how many processes are queued for capacity.
func (a *Arena) Waiting() int { return len(a.waiters) }
