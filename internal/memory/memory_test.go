package memory

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestReserveRelease(t *testing.T) {
	a := NewArena("gpu", 100)
	if err := a.Reserve(60); err != nil {
		t.Fatal(err)
	}
	if a.Free() != 40 || a.Reserved() != 60 {
		t.Errorf("free/reserved = %d/%d, want 40/60", a.Free(), a.Reserved())
	}
	if err := a.Reserve(50); err == nil {
		t.Error("over-reservation should fail")
	}
	a.Release(60)
	if a.Free() != 100 {
		t.Errorf("free after release = %d, want 100", a.Free())
	}
	if a.Peak() != 60 {
		t.Errorf("peak = %d, want 60", a.Peak())
	}
}

func TestTryReserve(t *testing.T) {
	a := NewArena("x", 10)
	if !a.TryReserve(10) {
		t.Error("exact-fit TryReserve failed")
	}
	if a.TryReserve(1) {
		t.Error("TryReserve on full arena succeeded")
	}
}

func TestZeroReserveAlwaysSucceeds(t *testing.T) {
	a := NewArena("x", 0)
	if err := a.Reserve(0); err != nil {
		t.Error(err)
	}
}

func TestReleaseTooMuchPanics(t *testing.T) {
	a := NewArena("x", 10)
	_ = a.Reserve(5)
	defer func() {
		if recover() == nil {
			t.Error("no panic on excess release")
		}
	}()
	a.Release(6)
}

func TestWaitReserveBlocksUntilFree(t *testing.T) {
	env := sim.NewEnv()
	a := NewArena("gpu", 100)
	if err := a.Reserve(80); err != nil {
		t.Fatal(err)
	}
	var acquiredAt sim.Time
	env.Go("waiter", func(p *sim.Proc) {
		a.WaitReserve(p, 50)
		acquiredAt = p.Now()
		a.Release(50)
	})
	env.Go("releaser", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		a.Release(80)
	})
	env.Run()
	if acquiredAt != sim.Time(2*time.Second) {
		t.Errorf("waiter acquired at %v, want 2s", acquiredAt)
	}
	if a.Reserved() != 0 {
		t.Errorf("reserved = %d at end, want 0", a.Reserved())
	}
}

func TestWaitReserveFIFONoStarvation(t *testing.T) {
	// A large request queued first must be served before later small
	// requests, even though the small ones would fit immediately.
	env := sim.NewEnv()
	a := NewArena("gpu", 100)
	if err := a.Reserve(90); err != nil {
		t.Fatal(err)
	}
	var order []string
	env.Go("big", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		a.WaitReserve(p, 80)
		order = append(order, "big")
		a.Release(80)
	})
	env.Go("small", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		a.WaitReserve(p, 5)
		order = append(order, "small")
		a.Release(5)
	})
	env.Go("releaser", func(p *sim.Proc) {
		p.Sleep(time.Second)
		a.Release(90)
	})
	env.Run()
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Errorf("service order = %v, want [big small]", order)
	}
}

func TestWaitReserveImmediateWhenFits(t *testing.T) {
	env := sim.NewEnv()
	a := NewArena("gpu", 100)
	var at sim.Time
	env.Go("p", func(p *sim.Proc) {
		a.WaitReserve(p, 100)
		at = p.Now()
		a.Release(100)
	})
	env.Run()
	if at != 0 {
		t.Errorf("immediate WaitReserve resumed at %v, want 0", at)
	}
}

func TestWaitReserveImpossiblePanics(t *testing.T) {
	env := sim.NewEnv()
	a := NewArena("gpu", 10)
	var recovered bool
	env.Go("p", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		a.WaitReserve(p, 11)
	})
	env.Run()
	if !recovered {
		t.Error("no panic for impossible reservation")
	}
}

func TestTierStrings(t *testing.T) {
	if TierGPU.String() != "gpu" || TierCPU.String() != "cpu" || TierSSD.String() != "ssd" {
		t.Error("tier strings wrong")
	}
	if Tier(9).String() == "" {
		t.Error("unknown tier string empty")
	}
}

// Property: any sequence of successful reserves and matching releases
// leaves the arena empty and never exceeds capacity.
func TestArenaConservationProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		const capacity = 1 << 20
		a := NewArena("p", capacity)
		var held []int64
		for _, s := range sizes {
			b := int64(s)
			if a.Reserve(b) == nil {
				held = append(held, b)
			}
			if a.Reserved() > a.Capacity() {
				return false
			}
			if a.Free()+a.Reserved() != a.Capacity() {
				return false
			}
		}
		for _, b := range held {
			a.Release(b)
		}
		return a.Reserved() == 0 && a.Free() == capacity
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
