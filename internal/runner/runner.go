// Package runner is the parallel run engine for independent simulation
// jobs: a bounded worker pool (Pool) with deterministic, submission-order
// result collection (Map, Sweep) and per-key once-only memoization of
// shared expensive state (Memo).
//
// The engine is built for fan-outs whose jobs are independent,
// deterministic functions of their inputs — sweep points of an
// experiment grid, each owning its own simulation environment. Because
// results are collected by submission index, output is byte-identical no
// matter how many workers execute the jobs or in which order they
// finish; Workers(1) degenerates to a plain sequential loop.
//
// Nesting is safe: the goroutine that calls Map always executes jobs
// itself and helper goroutines are only spawned when a pool token is
// available (a non-blocking acquire), so a job that fans out again can
// never deadlock the pool — worst case it just runs its sub-jobs
// inline.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool bounds the number of goroutines a set of (possibly nested) Map
// and Sweep calls may occupy. The zero worker count (or any n <= 0)
// resolves to runtime.GOMAXPROCS(0). A Pool is safe for concurrent use.
type Pool struct {
	workers int
	tokens  atomic.Int64 // helper-goroutine tokens still available
}

// New returns a pool of n workers; n <= 0 means runtime.GOMAXPROCS(0).
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: n}
	// The calling goroutine of every Map is itself a worker, so only
	// n-1 helpers are ever needed at once.
	p.tokens.Store(int64(n - 1))
	return p
}

// Workers reports the pool's worker bound.
func (p *Pool) Workers() int { return p.workers }

// tryAcquire takes one helper token without blocking.
func (p *Pool) tryAcquire() bool {
	for {
		n := p.tokens.Load()
		if n <= 0 {
			return false
		}
		if p.tokens.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

func (p *Pool) release() { p.tokens.Add(1) }

// PanicError is a captured job panic, carried as an error so one
// panicking sweep point fails its sweep instead of the whole process.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // stack of the panicking goroutine
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job panicked: %v\n%s", e.Value, e.Stack)
}

// Map runs fn(0..n-1) on up to p.Workers() goroutines and returns the
// results in index order. Jobs execute in any order; collection order is
// fixed, so callers observe identical output at every worker count. A
// job that panics contributes a *PanicError. All jobs run regardless of
// individual failures; the returned error joins every job error in
// index order (nil when all jobs succeed). A nil pool runs sequentially.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	runJob := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		out[i], errs[i] = fn(i)
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			runJob(i)
		}
		return out, errors.Join(errs...)
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			runJob(i)
		}
	}
	var wg sync.WaitGroup
	for spawned := 0; spawned < n-1 && p.tryAcquire(); spawned++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer p.release()
			work()
		}()
	}
	work() // the caller is always a worker: nested Maps make progress even with zero tokens
	wg.Wait()
	return out, errors.Join(errs...)
}

// Sweep is Map over a slice of inputs: it runs fn over every item and
// collects the outputs in item order.
func Sweep[In, Out any](p *Pool, items []In, fn func(i int, item In) (Out, error)) ([]Out, error) {
	return Map(p, len(items), func(i int) (Out, error) { return fn(i, items[i]) })
}

// Crew is a persistent worker team for repeated parallel rounds over
// one fixed body: where Map builds a closure, a results slice, and a
// WaitGroup per call, a Crew is constructed once, its helper goroutines
// live across rounds (Start/Stop), and each Run reuses the same barrier
// — zero allocations per round in steady state. The body receives the
// item index and must communicate through the caller's own structures;
// any round state it needs (a window bound, an active set) lives in
// fields the caller updates before Run and the body reads.
//
// The caller's goroutine always participates as a worker, helpers are
// signalled only when the round has items for them, and a panicking
// body never tears the barrier: every panic is captured, the barrier
// completes, and the first captured panic (by worker slot) re-panics on
// the calling goroutine wrapped in *PanicError.
//
// A Crew is for one caller: Run must not be invoked concurrently with
// itself, Start, or Stop.
type Crew struct {
	body   func(i int)
	n      int
	next   atomic.Int64
	wg     sync.WaitGroup
	starts []chan struct{} // one buffered start signal per helper; nil while stopped
	panics []any           // captured *PanicError per worker slot (0 = caller)
}

// NewCrew builds a crew of the given worker bound (>= 2; a single
// worker needs no barrier — callers run the loop inline) around a fixed
// round body. No goroutines exist until Start.
func NewCrew(workers int, body func(i int)) *Crew {
	if workers < 2 {
		panic("runner: NewCrew needs at least two workers")
	}
	if body == nil {
		panic("runner: NewCrew needs a body")
	}
	return &Crew{
		body:   body,
		starts: make([]chan struct{}, workers-1),
		panics: make([]any, workers),
	}
}

// Workers reports the crew's worker bound, caller included.
func (c *Crew) Workers() int { return len(c.starts) + 1 }

// Start spawns the helper goroutines. It must be paired with Stop —
// typically Start at the top of a driver loop and a deferred Stop — so
// a crew owned by a long-lived structure leaves no goroutines behind
// between drives. Starting an already started crew panics.
func (c *Crew) Start() {
	for j := range c.starts {
		if c.starts[j] != nil {
			panic("runner: Crew.Start while started")
		}
		ch := make(chan struct{}, 1)
		c.starts[j] = ch
		slot := j + 1
		go func() {
			for range ch {
				c.work(slot)
				c.wg.Done()
			}
		}()
	}
}

// Stop terminates the helper goroutines. Idempotent; must not overlap a
// Run. The crew can be started again afterwards.
func (c *Crew) Stop() {
	for j, ch := range c.starts {
		if ch != nil {
			close(ch)
			c.starts[j] = nil
		}
	}
}

// Run executes body(0..n-1) across the caller and up to min(n-1,
// workers-1) helpers and returns only when every item has finished —
// the reusable barrier. Items execute in any order. If any body
// panicked, the first capture (by worker slot) re-panics here after the
// barrier completes.
func (c *Crew) Run(n int) {
	if n <= 0 {
		return
	}
	c.n = n
	c.next.Store(0)
	k := len(c.starts)
	if k > n-1 {
		k = n - 1
	}
	c.wg.Add(k)
	for j := 0; j < k; j++ {
		if c.starts[j] == nil {
			panic("runner: Crew.Run before Start")
		}
		c.starts[j] <- struct{}{}
	}
	c.work(0)
	c.wg.Wait()
	var first any
	for slot, p := range c.panics {
		if p != nil && first == nil {
			first = p
		}
		c.panics[slot] = nil
	}
	if first != nil {
		panic(first)
	}
}

// work drains the round's item counter from one worker slot, capturing
// a body panic instead of unwinding past the barrier.
func (c *Crew) work(slot int) {
	defer func() {
		if r := recover(); r != nil {
			c.panics[slot] = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	for {
		i := int(c.next.Add(1)) - 1
		if i >= c.n {
			return
		}
		c.body(i)
	}
}

// Memo is a per-key once-only memoization table: concurrent Do calls
// for the same key block until the single builder finishes, then share
// its result — the pattern that lets parallel sweep points share one
// offline phase instead of recomputing or racing on it. The zero Memo
// is ready to use.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// errBuildPanicked is what waiters of a memoized build observe when the
// builder panicked: the panic itself propagates on the builder's
// goroutine (and is captured by Map), while other keys' users see a
// plain error instead of a zero value masquerading as a result.
var errBuildPanicked = errors.New("runner: memoized build panicked")

// Do returns the memoized value for key, running build at most once per
// key across all goroutines. Errors are memoized alongside values: a
// failed build is not retried.
func (m *Memo[K, V]) Do(key K, build func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[K]*memoEntry[V])
	}
	e := m.m[key]
	if e == nil {
		e = &memoEntry[V]{}
		m.m[key] = e
	}
	m.mu.Unlock()
	e.once.Do(func() {
		e.err = errBuildPanicked // overwritten on normal return
		v, err := build()
		e.val, e.err = v, err
	})
	return e.val, e.err
}

// Len reports the number of memoized keys (including failed builds).
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
