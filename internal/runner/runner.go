// Package runner is the parallel run engine for independent simulation
// jobs: a bounded worker pool (Pool) with deterministic, submission-order
// result collection (Map, Sweep) and per-key once-only memoization of
// shared expensive state (Memo).
//
// The engine is built for fan-outs whose jobs are independent,
// deterministic functions of their inputs — sweep points of an
// experiment grid, each owning its own simulation environment. Because
// results are collected by submission index, output is byte-identical no
// matter how many workers execute the jobs or in which order they
// finish; Workers(1) degenerates to a plain sequential loop.
//
// Nesting is safe: the goroutine that calls Map always executes jobs
// itself and helper goroutines are only spawned when a pool token is
// available (a non-blocking acquire), so a job that fans out again can
// never deadlock the pool — worst case it just runs its sub-jobs
// inline.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool bounds the number of goroutines a set of (possibly nested) Map
// and Sweep calls may occupy. The zero worker count (or any n <= 0)
// resolves to runtime.GOMAXPROCS(0). A Pool is safe for concurrent use.
type Pool struct {
	workers int
	tokens  atomic.Int64 // helper-goroutine tokens still available
}

// New returns a pool of n workers; n <= 0 means runtime.GOMAXPROCS(0).
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: n}
	// The calling goroutine of every Map is itself a worker, so only
	// n-1 helpers are ever needed at once.
	p.tokens.Store(int64(n - 1))
	return p
}

// Workers reports the pool's worker bound.
func (p *Pool) Workers() int { return p.workers }

// tryAcquire takes one helper token without blocking.
func (p *Pool) tryAcquire() bool {
	for {
		n := p.tokens.Load()
		if n <= 0 {
			return false
		}
		if p.tokens.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

func (p *Pool) release() { p.tokens.Add(1) }

// PanicError is a captured job panic, carried as an error so one
// panicking sweep point fails its sweep instead of the whole process.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // stack of the panicking goroutine
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job panicked: %v\n%s", e.Value, e.Stack)
}

// Map runs fn(0..n-1) on up to p.Workers() goroutines and returns the
// results in index order. Jobs execute in any order; collection order is
// fixed, so callers observe identical output at every worker count. A
// job that panics contributes a *PanicError. All jobs run regardless of
// individual failures; the returned error joins every job error in
// index order (nil when all jobs succeed). A nil pool runs sequentially.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	runJob := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		out[i], errs[i] = fn(i)
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			runJob(i)
		}
		return out, errors.Join(errs...)
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			runJob(i)
		}
	}
	var wg sync.WaitGroup
	for spawned := 0; spawned < n-1 && p.tryAcquire(); spawned++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer p.release()
			work()
		}()
	}
	work() // the caller is always a worker: nested Maps make progress even with zero tokens
	wg.Wait()
	return out, errors.Join(errs...)
}

// Sweep is Map over a slice of inputs: it runs fn over every item and
// collects the outputs in item order.
func Sweep[In, Out any](p *Pool, items []In, fn func(i int, item In) (Out, error)) ([]Out, error) {
	return Map(p, len(items), func(i int) (Out, error) { return fn(i, items[i]) })
}

// Memo is a per-key once-only memoization table: concurrent Do calls
// for the same key block until the single builder finishes, then share
// its result — the pattern that lets parallel sweep points share one
// offline phase instead of recomputing or racing on it. The zero Memo
// is ready to use.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// errBuildPanicked is what waiters of a memoized build observe when the
// builder panicked: the panic itself propagates on the builder's
// goroutine (and is captured by Map), while other keys' users see a
// plain error instead of a zero value masquerading as a result.
var errBuildPanicked = errors.New("runner: memoized build panicked")

// Do returns the memoized value for key, running build at most once per
// key across all goroutines. Errors are memoized alongside values: a
// failed build is not retried.
func (m *Memo[K, V]) Do(key K, build func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[K]*memoEntry[V])
	}
	e := m.m[key]
	if e == nil {
		e = &memoEntry[V]{}
		m.m[key] = e
	}
	m.mu.Unlock()
	e.once.Do(func() {
		e.err = errBuildPanicked // overwritten on normal return
		v, err := build()
		e.val, e.err = v, err
	})
	return e.val, e.err
}

// Len reports the number of memoized keys (including failed builds).
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
