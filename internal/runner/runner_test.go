package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Error("New(0) produced a pool with no workers")
	}
	if got := New(7).Workers(); got != 7 {
		t.Errorf("Workers() = %d, want 7", got)
	}
}

func TestMapCollectsInSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := New(workers)
		out, err := Map(p, 100, func(i int) (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Millisecond) // jitter completion order
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapNilPoolAndEmptyInput(t *testing.T) {
	out, err := Map(nil, 3, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 3 || out[2] != 2 {
		t.Errorf("nil pool: out=%v err=%v", out, err)
	}
	if out, err := Map(New(4), 0, func(i int) (int, error) { return i, nil }); out != nil || err != nil {
		t.Errorf("empty map: out=%v err=%v", out, err)
	}
}

func TestMapAggregatesErrorsInIndexOrder(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(New(4), 10, func(i int) (int, error) {
		ran.Add(1)
		if i == 3 || i == 7 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	if ran.Load() != 10 {
		t.Errorf("only %d of 10 jobs ran; failures must not cancel siblings", ran.Load())
	}
	text := err.Error()
	if !strings.Contains(text, "job 3 failed") || !strings.Contains(text, "job 7 failed") {
		t.Errorf("error %q missing a job failure", text)
	}
	if strings.Index(text, "job 3") > strings.Index(text, "job 7") {
		t.Errorf("errors not in index order: %q", text)
	}
}

func TestMapCapturesPanics(t *testing.T) {
	out, err := Map(New(4), 4, func(i int) (string, error) {
		if i == 2 {
			panic("boom")
		}
		return "ok", nil
	})
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T does not unwrap to *PanicError", err)
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Errorf("panic payload not captured: %+v", pe)
	}
	if out[0] != "ok" || out[3] != "ok" {
		t.Error("healthy jobs' results lost")
	}
}

// TestNestedMapDoesNotDeadlock exercises the caller-participates design:
// outer jobs holding every pool token fan out again and must still
// complete (inline if necessary).
func TestNestedMapDoesNotDeadlock(t *testing.T) {
	p := New(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		out, err := Map(p, 8, func(i int) (int, error) {
			inner, err := Map(p, 8, func(j int) (int, error) { return i*10 + j, nil })
			if err != nil {
				return 0, err
			}
			sum := 0
			for _, v := range inner {
				sum += v
			}
			return sum, nil
		})
		if err != nil {
			t.Error(err)
		}
		for i, v := range out {
			want := i*80 + 28
			if v != want {
				t.Errorf("out[%d] = %d, want %d", i, v, want)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested Map deadlocked")
	}
}

func TestSweep(t *testing.T) {
	items := []string{"a", "bb", "ccc"}
	out, err := Sweep(New(4), items, func(i int, s string) (int, error) { return i * len(s), nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 2 || out[2] != 6 {
		t.Errorf("sweep results %v", out)
	}
}

func TestMemoBuildsOncePerKey(t *testing.T) {
	var m Memo[string, int]
	var builds atomic.Int64
	_, err := Map(New(8), 64, func(i int) (int, error) {
		return m.Do(fmt.Sprintf("key-%d", i%4), func() (int, error) {
			builds.Add(1)
			time.Sleep(time.Millisecond) // widen the race window
			return i % 4, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 4 {
		t.Errorf("built %d times, want 4 (one per key)", builds.Load())
	}
	if m.Len() != 4 {
		t.Errorf("memo holds %d keys, want 4", m.Len())
	}
}

func TestMemoMemoizesErrors(t *testing.T) {
	var m Memo[int, int]
	var builds int
	build := func() (int, error) { builds++; return 0, errors.New("offline phase failed") }
	if _, err := m.Do(1, build); err == nil {
		t.Fatal("error not returned")
	}
	if _, err := m.Do(1, build); err == nil {
		t.Fatal("error not memoized")
	}
	if builds != 1 {
		t.Errorf("failed build retried %d times", builds)
	}
}

func TestMemoPanickedBuildLeavesError(t *testing.T) {
	var m Memo[int, int]
	func() {
		defer func() { recover() }()
		m.Do(1, func() (int, error) { panic("mid-build") })
	}()
	if _, err := m.Do(1, func() (int, error) { return 42, nil }); err == nil {
		t.Error("waiters of a panicked build must see an error, not a zero value")
	}
}

func TestCrewRunsEveryItemExactlyOnce(t *testing.T) {
	var counts [100]atomic.Int64
	c := NewCrew(4, func(i int) { counts[i].Add(1) })
	c.Start()
	defer c.Stop()
	for round := 0; round < 50; round++ {
		c.Run(len(counts))
	}
	for i := range counts {
		if got := counts[i].Load(); got != 50 {
			t.Fatalf("item %d ran %d times, want 50", i, got)
		}
	}
}

func TestCrewSmallRoundsAndZero(t *testing.T) {
	var total atomic.Int64
	c := NewCrew(8, func(i int) { total.Add(int64(i) + 1) })
	c.Start()
	defer c.Stop()
	c.Run(0) // no items: no helpers signalled, no barrier wait
	c.Run(1) // caller-only
	c.Run(3)
	if got := total.Load(); got != 1+(1+2+3) {
		t.Fatalf("total = %d, want 7", got)
	}
}

func TestCrewRestartableAfterStop(t *testing.T) {
	var n atomic.Int64
	c := NewCrew(3, func(int) { n.Add(1) })
	for cycle := 0; cycle < 3; cycle++ {
		c.Start()
		c.Run(10)
		c.Stop()
	}
	c.Stop() // idempotent
	if got := n.Load(); got != 30 {
		t.Fatalf("ran %d items across cycles, want 30", got)
	}
}

func TestCrewPanicCompletesBarrierThenRepanics(t *testing.T) {
	var ran atomic.Int64
	c := NewCrew(4, func(i int) {
		if i == 2 {
			panic("boom")
		}
		ran.Add(1)
	})
	c.Start()
	defer c.Stop()
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicError", r, r)
		}
		if pe.Value != "boom" {
			t.Errorf("PanicError.Value = %v, want boom", pe.Value)
		}
		// Every non-panicking item still ran: the barrier completed
		// before the re-panic.
		if got := ran.Load(); got != 7 {
			t.Errorf("%d items completed, want 7", got)
		}
		// The crew stays usable after a captured panic.
		ran.Store(0)
		func() {
			defer func() { recover() }()
			c.Run(8)
		}()
		if got := ran.Load(); got != 7 {
			t.Errorf("second round completed %d items, want 7", got)
		}
	}()
	c.Run(8)
}

func TestCrewValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"one worker", func() { NewCrew(1, func(int) {}) }},
		{"nil body", func() { NewCrew(2, nil) }},
		{"double start", func() {
			c := NewCrew(2, func(int) {})
			c.Start()
			defer c.Stop()
			c.Start()
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}
