package workload

import (
	"math"
	"testing"
	"time"
)

// drainTwice builds the source twice from the same constructor and
// returns both materialized streams.
func drainTwice(t *testing.T, build func() (Source, error)) (a, b []TimedRequest) {
	t.Helper()
	s1, err := build()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := build()
	if err != nil {
		t.Fatal(err)
	}
	return Drain(s1), Drain(s2)
}

// assertSameStream checks two streams are identical in IDs, classes,
// chains, and arrival offsets.
func assertSameStream(t *testing.T, a, b []TimedRequest) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ra, rb := a[i].Req, b[i].Req
		if a[i].At != b[i].At || ra.ID != rb.ID || ra.Class != rb.Class || len(ra.Chain) != len(rb.Chain) {
			t.Fatalf("request %d differs: %v@%v vs %v@%v", i, ra, a[i].At, rb, b[i].At)
		}
		for j := range ra.Chain {
			if ra.Chain[j] != rb.Chain[j] {
				t.Fatalf("request %d chain differs at stage %d", i, j)
			}
		}
	}
}

// TestTaskStreamMatchesGenerate: the closed-loop source is bit-for-bit
// the stream Generate always produced, with offsets i*period — the
// paper-shape preservation contract.
func TestTaskStreamMatchesGenerate(t *testing.T) {
	board := buildA(t)
	task := TaskA1(board)
	task.N = 500
	reqs, err := task.Generate()
	if err != nil {
		t.Fatal(err)
	}
	src, err := task.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != task.Name {
		t.Errorf("source name %q, want %q", src.Name(), task.Name)
	}
	stream := Drain(src)
	if len(stream) != len(reqs) {
		t.Fatalf("stream has %d requests, Generate %d", len(stream), len(reqs))
	}
	for i := range stream {
		if want := time.Duration(i) * task.ArrivalPeriod; stream[i].At != want {
			t.Fatalf("request %d at %v, want %v", i, stream[i].At, want)
		}
		got, ref := stream[i].Req, reqs[i]
		if got.ID != ref.ID || got.Class != ref.Class || len(got.Chain) != len(ref.Chain) {
			t.Fatalf("request %d differs from Generate: %v vs %v", i, got, ref)
		}
		for j := range got.Chain {
			if got.Chain[j] != ref.Chain[j] {
				t.Fatalf("request %d chain differs at stage %d", i, j)
			}
		}
	}
}

func TestPoissonSameSeedDeterministic(t *testing.T) {
	board := buildA(t)
	a, b := drainTwice(t, func() (Source, error) {
		return Poisson{Name: "p", Board: board, Rate: 250, N: 800, Seed: 42}.NewSource()
	})
	assertSameStream(t, a, b)
	// A different seed must produce a different stream.
	other, err := Poisson{Name: "p", Board: board, Rate: 250, N: 800, Seed: 43}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i, tr := range Drain(other) {
		if tr.At != a[i].At || tr.Req.Class != a[i].Req.Class {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical streams")
	}
}

// TestPoissonEmpiricalRate: the realized arrival rate over a long
// stream must sit within a few percent of the target.
func TestPoissonEmpiricalRate(t *testing.T) {
	board := buildA(t)
	const rate, n = 500.0, 20000
	src, err := Poisson{Name: "p", Board: board, Rate: rate, N: n, Seed: 7}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	stream := Drain(src)
	if len(stream) != n {
		t.Fatalf("stream length %d, want %d", len(stream), n)
	}
	span := stream[len(stream)-1].At.Seconds()
	got := float64(n) / span
	if math.Abs(got-rate)/rate > 0.05 {
		t.Errorf("empirical rate %.1f req/s, want %.1f ±5%%", got, rate)
	}
	// Offsets must be non-decreasing.
	for i := 1; i < len(stream); i++ {
		if stream[i].At < stream[i-1].At {
			t.Fatalf("arrival %d goes backwards", i)
		}
	}
}

func TestBurstyWindowsAndDeterminism(t *testing.T) {
	board := buildA(t)
	spec := Bursty{
		Name: "b", Board: board,
		Period: time.Millisecond, On: 10 * time.Millisecond, Off: 90 * time.Millisecond,
		N: 300, Seed: 9,
	}
	a, b := drainTwice(t, func() (Source, error) { return spec.NewSource() })
	assertSameStream(t, a, b)
	// Every arrival must fall inside an ON window of the 100 ms cycle.
	cycle := spec.On + spec.Off
	for i, tr := range a {
		phase := tr.At % cycle
		if phase >= spec.On {
			t.Fatalf("arrival %d at %v (phase %v) falls in the OFF window", i, tr.At, phase)
		}
		if i > 0 && tr.At < a[i-1].At {
			t.Fatalf("arrival %d goes backwards", i)
		}
	}
	// The stream must actually span several bursts.
	if bursts := a[len(a)-1].At / cycle; bursts < 10 {
		t.Errorf("stream spans %d cycles, want several", bursts)
	}
}

// TestMixPreservesPerTenantCounts: merging tenant streams keeps every
// tenant's request count, tags each request, renumbers IDs uniquely,
// and emits arrivals in time order.
func TestMixPreservesPerTenantCounts(t *testing.T) {
	board := buildA(t)
	build := func() (Source, error) {
		t1, err := Poisson{Name: "fast", Board: board, Rate: 400, N: 300, Seed: 1}.NewSource()
		if err != nil {
			return nil, err
		}
		t2, err := Poisson{Name: "slow", Board: board, Rate: 100, N: 120, Seed: 2}.NewSource()
		if err != nil {
			return nil, err
		}
		t3, err := Bursty{Name: "bursts", Board: board, Period: time.Millisecond,
			On: 5 * time.Millisecond, Off: 20 * time.Millisecond, N: 80, Seed: 3}.NewSource()
		if err != nil {
			return nil, err
		}
		return Mix{Name: "m", Tenants: []Source{t1, t2, t3}}.NewSource()
	}
	a, b := drainTwice(t, build)
	assertSameStream(t, a, b)
	if len(a) != 300+120+80 {
		t.Fatalf("mixed stream has %d requests, want %d", len(a), 300+120+80)
	}
	counts := map[string]int{}
	seen := map[int64]bool{}
	for i, tr := range a {
		counts[tr.Tenant]++
		if seen[tr.Req.ID] {
			t.Fatalf("duplicate request ID %d", tr.Req.ID)
		}
		seen[tr.Req.ID] = true
		if i > 0 && tr.At < a[i-1].At {
			t.Fatalf("mixed arrival %d goes backwards", i)
		}
	}
	want := map[string]int{"fast": 300, "slow": 120, "bursts": 80}
	for tenant, n := range want {
		if counts[tenant] != n {
			t.Errorf("tenant %s: %d requests, want %d", tenant, counts[tenant], n)
		}
	}
}

func TestMergeBoardsStructure(t *testing.T) {
	a := buildA(t)
	b, err := BoardB().Build()
	if err != nil {
		t.Fatal(err)
	}
	merged, views, err := MergeBoards("a+b", []float64{3, 1}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.Model.NumExperts(), a.Model.NumExperts()+b.Model.NumExperts(); got != want {
		t.Errorf("merged experts = %d, want %d", got, want)
	}
	if got, want := len(merged.TypeProbs), len(a.TypeProbs)+len(b.TypeProbs); got != want {
		t.Errorf("merged classes = %d, want %d", got, want)
	}
	var sum float64
	for _, p := range merged.TypeProbs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("merged distribution sums to %v", sum)
	}
	// Board A carries 3/4 of the merged mass.
	var aShare float64
	for _, p := range merged.TypeProbs[:len(a.TypeProbs)] {
		aShare += p
	}
	if math.Abs(aShare-0.75) > 1e-9 {
		t.Errorf("board A share = %v, want 0.75", aShare)
	}
	if len(views) != 2 {
		t.Fatalf("views = %d, want 2", len(views))
	}
	// Each view samples only inside its class range, over the merged
	// model.
	for u := 0.0; u < 1.0; u += 0.001 {
		if c := views[0].SampleType(u); c >= len(a.TypeProbs) {
			t.Fatalf("view A sampled class %d outside its range", c)
		}
		if c := views[1].SampleType(u); c < len(a.TypeProbs) {
			t.Fatalf("view B sampled class %d outside its range", c)
		}
	}
	if views[0].Model != merged.Model || views[1].Model != merged.Model {
		t.Error("views do not share the merged model")
	}
}

func TestSourceSpecValidation(t *testing.T) {
	board := buildA(t)
	bad := []func() (Source, error){
		func() (Source, error) { return Poisson{Name: "p", Rate: 10, N: 5}.NewSource() },
		func() (Source, error) { return Poisson{Name: "p", Board: board, Rate: 0, N: 5}.NewSource() },
		func() (Source, error) { return Poisson{Name: "p", Board: board, Rate: 10, N: 0}.NewSource() },
		func() (Source, error) {
			return Bursty{Name: "b", Board: board, Period: 0, On: time.Second, N: 5}.NewSource()
		},
		func() (Source, error) {
			return Bursty{Name: "b", Board: board, Period: time.Millisecond, On: 0, N: 5}.NewSource()
		},
		func() (Source, error) { return Mix{Name: "m"}.NewSource() },
		// Tenants over different CoE models cannot be mixed; their
		// expert IDs only mean something within one model.
		func() (Source, error) {
			other, err := BoardB().Build()
			if err != nil {
				return nil, err
			}
			t1, err := Poisson{Name: "a", Board: board, Rate: 10, N: 5, Seed: 1}.NewSource()
			if err != nil {
				return nil, err
			}
			t2, err := Poisson{Name: "b", Board: other, Rate: 10, N: 5, Seed: 2}.NewSource()
			if err != nil {
				return nil, err
			}
			return Mix{Name: "m", Tenants: []Source{t1, t2}}.NewSource()
		},
		// Duplicate tenant names would merge two streams into one
		// per-tenant report row.
		func() (Source, error) {
			t1, err := Poisson{Name: "same", Board: board, Rate: 10, N: 5, Seed: 1}.NewSource()
			if err != nil {
				return nil, err
			}
			t2, err := Poisson{Name: "same", Board: board, Rate: 10, N: 5, Seed: 2}.NewSource()
			if err != nil {
				return nil, err
			}
			return Mix{Name: "m", Tenants: []Source{t1, t2}}.NewSource()
		},
	}
	for i, build := range bad {
		if _, err := build(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}
