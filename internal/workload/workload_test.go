package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/coe"
)

func buildA(t *testing.T) *Board {
	t.Helper()
	b, err := BoardA().Build()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBoardSizesMatchPaper(t *testing.T) {
	a := buildA(t)
	if got := len(a.TypeProbs); got != 352 {
		t.Errorf("board A types = %d, want 352", got)
	}
	if a.Model.NumExperts() != 352+30 {
		t.Errorf("board A experts = %d, want 382", a.Model.NumExperts())
	}
	b, err := BoardB().Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.TypeProbs); got != 342 {
		t.Errorf("board B types = %d, want 342", got)
	}
}

func TestBoardMemoryScale(t *testing.T) {
	// §1: the inspection application needs > 60 GB of experts.
	a := buildA(t)
	gb := float64(a.Model.TotalWeightBytes()) / 1e9
	if gb < 55 {
		t.Errorf("board A expert bytes = %.1f GB, want > 55 GB", gb)
	}
}

func TestTypeProbsNormalized(t *testing.T) {
	a := buildA(t)
	var sum float64
	for _, p := range a.TypeProbs {
		if p <= 0 {
			t.Fatal("non-positive type probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("type probabilities sum to %v, want 1", sum)
	}
}

func TestBoardDeterministic(t *testing.T) {
	a1, a2 := buildA(t), buildA(t)
	for c := range a1.TypeProbs {
		if a1.TypeProbs[c] != a2.TypeProbs[c] {
			t.Fatal("board generation not deterministic")
		}
	}
	for i, e := range a1.Model.Experts() {
		if e.UsageProb != a2.Model.Experts()[i].UsageProb {
			t.Fatal("usage probabilities not deterministic")
		}
	}
}

func TestSampleTypeBoundsAndBias(t *testing.T) {
	a := buildA(t)
	if a.SampleType(0) < 0 || a.SampleType(0.999999) >= len(a.TypeProbs) {
		t.Fatal("SampleType out of range")
	}
	// The most probable type must be sampled more often than a tail type.
	counts := make(map[int]int)
	for i := 0; i < 10000; i++ {
		u := float64(i) / 10000
		counts[a.SampleType(u)]++
	}
	best, bestN := -1, 0
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	var bestProb float64
	for _, p := range a.TypeProbs {
		if p > bestProb {
			bestProb = p
		}
	}
	if a.TypeProbs[best] != bestProb {
		t.Error("most-sampled type is not the most probable")
	}
}

func TestTaskGenerationDeterministic(t *testing.T) {
	a := buildA(t)
	r1, err := TaskA1(a).Generate()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := TaskA1(a).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != 2500 || len(r2) != 2500 {
		t.Fatalf("task A1 sizes = %d/%d, want 2500", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Class != r2[i].Class || len(r1[i].Chain) != len(r2[i].Chain) {
			t.Fatal("task generation not deterministic")
		}
	}
}

func TestTaskSizes(t *testing.T) {
	a := buildA(t)
	b, err := BoardB().Build()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		task Task
		n    int
	}{
		{TaskA1(a), 2500}, {TaskA2(a), 3500}, {TaskB1(b), 2500}, {TaskB2(b), 3500},
	}
	for _, c := range cases {
		reqs, err := c.task.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) != c.n {
			t.Errorf("task %s size = %d, want %d", c.task.Name, len(reqs), c.n)
		}
	}
}

func TestWorkingSetInCalibratedBand(t *testing.T) {
	// DESIGN.md §4: a 2,500-request task should touch roughly 120–220
	// distinct experts so that a well-managed ~80–140-expert pool incurs
	// tens of switches while FCFS+LRU incurs hundreds.
	a := buildA(t)
	reqs, err := TaskA1(a).Generate()
	if err != nil {
		t.Fatal(err)
	}
	ws := DistinctExperts(reqs)
	if ws < 100 || ws > 260 {
		t.Errorf("task A1 working set = %d experts, want 100–260", ws)
	}
	reqs2, err := TaskA2(a).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if ws2 := DistinctExperts(reqs2); ws2 < ws {
		t.Errorf("task A2 working set %d smaller than A1's %d", ws2, ws)
	}
}

func TestSomeRequestsHaveDetectionStage(t *testing.T) {
	a := buildA(t)
	reqs, err := TaskA1(a).Generate()
	if err != nil {
		t.Fatal(err)
	}
	var twoStage int
	for _, r := range reqs {
		if r.Stages() == 2 {
			twoStage++
		}
	}
	frac := float64(twoStage) / float64(len(reqs))
	// ~60% of types carry a detector and ~95% of classifications pass.
	if frac < 0.3 || frac > 0.8 {
		t.Errorf("two-stage fraction = %.2f, want 0.3–0.8", frac)
	}
}

func TestUsageCDFBetweenLinearAndStep(t *testing.T) {
	// Figure 11: the real CDF lies between the uniform (linear) CDF and
	// the degenerate step CDF.
	a := buildA(t)
	cdf := a.Model.UsageCDF()
	n := len(cdf)
	// At 10% of experts, coverage must exceed the uniform 10% but stay
	// below the step function's 100%.
	i := n / 10
	if cdf[i] <= float64(i+1)/float64(n) {
		t.Errorf("CDF at %d = %v not above linear %v", i, cdf[i], float64(i+1)/float64(n))
	}
	if cdf[i] >= 0.999 {
		t.Errorf("CDF at %d = %v is step-like", i, cdf[i])
	}
}

func TestDetectorsAreSharedAndLinked(t *testing.T) {
	a := buildA(t)
	shared := 0
	for _, e := range a.Model.Experts() {
		if e.Role == coe.Subsequent {
			if len(e.DependsOn) > 1 {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Error("no detector is shared by multiple classifiers")
	}
}

func TestBadSpecsRejected(t *testing.T) {
	s := BoardA()
	s.Types = 0
	if _, err := s.Build(); err == nil {
		t.Error("zero types not rejected")
	}
	s2 := BoardA()
	s2.Detectors = 0
	if _, err := s2.Build(); err == nil {
		t.Error("detector share without detectors not rejected")
	}
	bad := Task{Name: "x", N: 0}
	if _, err := bad.Generate(); err == nil {
		t.Error("empty task not rejected")
	}
}

func TestNewBoardValidation(t *testing.T) {
	a := buildA(t)
	if _, err := NewBoard(nil, []float64{1}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewBoard(a.Model, nil); err == nil {
		t.Error("empty distribution accepted")
	}
	if _, err := NewBoard(a.Model, []float64{0.5, 0.6}); err == nil {
		t.Error("non-normalized distribution accepted")
	}
	if _, err := NewBoard(a.Model, []float64{1.0, -0.0}); err == nil {
		t.Error("non-positive probability accepted")
	}
	// Valid: wrap board A's own distribution.
	b, err := NewBoard(a.Model, a.TypeProbs)
	if err != nil {
		t.Fatal(err)
	}
	if b.SampleType(0.5) < 0 || b.SampleType(0.5) >= len(a.TypeProbs) {
		t.Error("wrapped board cannot sample")
	}
}

// Property: SampleType(u) returns the unique class whose cumulative
// interval contains u.
func TestSampleTypeConsistentProperty(t *testing.T) {
	a := buildA(t)
	prop := func(raw uint32) bool {
		u := float64(raw) / float64(1<<32)
		c := a.SampleType(u)
		if c < 0 || c >= len(a.TypeProbs) {
			return false
		}
		lo := 0.0
		for i := 0; i < c; i++ {
			lo += a.TypeProbs[i]
		}
		hi := lo + a.TypeProbs[c]
		const eps = 1e-9
		return u >= lo-eps && u < hi+eps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
