package workload

import (
	"strings"
	"testing"
	"time"

	"repro/internal/coe"
)

// TestSteadyMatchesPoissonPrefix pins the rng-consumption contract: a
// Steady stream is the infinite extension of Poisson — same seed, same
// rate, identical requests and arrival instants for any finite prefix.
func TestSteadyMatchesPoissonPrefix(t *testing.T) {
	board := buildA(t)
	finite, err := Poisson{Name: "p", Board: board, Rate: 25, N: 200, Seed: 42}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	infinite, err := Steady{Name: "s", Board: board, Rate: 25, Seed: 42}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	want := Drain(finite)
	for i, w := range want {
		got, ok := infinite.Next()
		if !ok {
			t.Fatalf("steady stream ended at %d", i)
		}
		if got.At != w.At || got.Req.ID != w.Req.ID || got.Req.Class != w.Req.Class {
			t.Fatalf("request %d: steady (%v, id %d, class %d) != poisson (%v, id %d, class %d)",
				i, got.At, got.Req.ID, got.Req.Class, w.At, w.Req.ID, w.Req.Class)
		}
	}
	// And it keeps going where the finite stream stopped.
	if _, ok := infinite.Next(); !ok {
		t.Error("steady stream closed after the poisson prefix")
	}
}

func TestSteadyValidation(t *testing.T) {
	board := buildA(t)
	if _, err := (Steady{Name: "x", Rate: 1}).NewSource(); err == nil {
		t.Error("steady without a board accepted")
	}
	if _, err := (Steady{Name: "x", Board: board, Rate: 0}).NewSource(); err == nil {
		t.Error("steady with zero rate accepted")
	}
}

func TestHorizonBoundsSteady(t *testing.T) {
	board := buildA(t)
	src, err := Steady{Name: "s", Board: board, Rate: 100, Seed: 7}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	if !IsUnbounded(src) {
		t.Fatal("steady source not reported unbounded")
	}
	bounded := Horizon(src, 2*time.Second)
	if IsUnbounded(bounded) {
		t.Error("horizon-wrapped source still reported unbounded")
	}
	if bounded.Name() != "s" {
		t.Errorf("horizon renamed the stream: %q", bounded.Name())
	}
	items := Drain(bounded)
	// ~100 req/s for 2s: the count is seed-dependent but must be near 200
	// and every arrival within the horizon.
	if len(items) < 120 || len(items) > 300 {
		t.Errorf("drained %d requests over a 2s horizon at 100/s", len(items))
	}
	for i, tr := range items {
		if tr.At > 2*time.Second {
			t.Fatalf("request %d arrives at %v, past the 2s horizon", i, tr.At)
		}
	}
	// Closed for good: Next keeps returning false.
	if _, ok := bounded.Next(); ok {
		t.Error("horizon source reopened after closing")
	}
}

// TestHorizonForwardsModel: the serving layer's model check must see
// through the wrapper.
func TestHorizonForwardsModel(t *testing.T) {
	board := buildA(t)
	src, err := Steady{Name: "s", Board: board, Rate: 10, Seed: 1}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	h := Horizon(src, time.Second)
	m, ok := h.(interface{ Model() *coe.Model })
	if !ok {
		t.Fatal("horizon source does not expose Model()")
	}
	if m.Model() != board.Model {
		t.Error("horizon forwards the wrong model")
	}
}

func TestHorizonTruncatesFiniteSource(t *testing.T) {
	board := buildA(t)
	task := Task{Name: "t", Board: board, N: 100, ArrivalPeriod: 10 * time.Millisecond, Seed: 3}
	src, err := task.Stream()
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals are at 0, 10ms, ..., 990ms; a 95ms horizon keeps 10.
	items := Drain(Horizon(src, 95*time.Millisecond))
	if len(items) != 10 {
		t.Errorf("drained %d requests, want 10", len(items))
	}
}

// TestMixPropagatesUnboundedness: a mix with one infinite tenant is
// itself infinite and must not slip past the serving layer's
// unbounded-source guard.
func TestMixPropagatesUnboundedness(t *testing.T) {
	board := buildA(t)
	steady, err := Steady{Name: "infinite", Board: board, Rate: 10, Seed: 1}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	finite, err := Poisson{Name: "finite", Board: board, Rate: 10, N: 10, Seed: 2}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := Mix{Name: "m", Tenants: []Source{finite, steady}}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	if !IsUnbounded(mixed) {
		t.Error("mix with an unbounded tenant not reported unbounded")
	}
	// A horizon over the mix bounds it again.
	if IsUnbounded(Horizon(mixed, time.Second)) {
		t.Error("horizon-wrapped mix still reported unbounded")
	}
	// An all-finite mix stays bounded.
	f1, _ := Poisson{Name: "f1", Board: board, Rate: 10, N: 5, Seed: 3}.NewSource()
	f2, _ := Poisson{Name: "f2", Board: board, Rate: 10, N: 5, Seed: 4}.NewSource()
	allFinite, err := Mix{Name: "m2", Tenants: []Source{f1, f2}}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	if IsUnbounded(allFinite) {
		t.Error("all-finite mix reported unbounded")
	}
}

func TestDrainRefusesUnboundedSource(t *testing.T) {
	board := buildA(t)
	src, err := Steady{Name: "s", Board: board, Rate: 10, Seed: 1}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Drain on an unbounded source did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "Horizon") {
			t.Errorf("panic message %v does not point at workload.Horizon", r)
		}
	}()
	Drain(src)
}
