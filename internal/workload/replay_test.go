package workload

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/coe"
)

// drainTimed materializes a source as comparable tuples.
type timedTuple struct {
	ID     int64
	Class  int
	At     time.Duration
	Tenant string
	Chain  []coe.ExpertID
}

func drainTuples(t *testing.T, src Source) []timedTuple {
	t.Helper()
	var out []timedTuple
	for {
		tr, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, timedTuple{
			ID: tr.Req.ID, Class: tr.Req.Class, At: tr.At, Tenant: tr.Tenant,
			Chain: append([]coe.ExpertID(nil), tr.Req.Chain...),
		})
	}
}

// TestRecordReplayBitForBit: recording a Poisson stream and replaying
// the trace yields the identical stream — IDs, classes, offsets, and
// chains.
func TestRecordReplayBitForBit(t *testing.T) {
	board, err := BoardA().Build()
	if err != nil {
		t.Fatal(err)
	}
	spec := Poisson{Name: "p", Board: board, Rate: 25, N: 400, Seed: 42}
	src, err := spec.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	rec := Record(src)
	want := drainTuples(t, rec)

	replay, err := rec.Trace().Replay(board.Model)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Name() != "replay(p)" {
		t.Errorf("replay name = %q", replay.Name())
	}
	got := drainTuples(t, replay)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed stream differs from recorded one (%d vs %d entries)", len(got), len(want))
	}
}

// TestRecordReplayMixTenants: tenant tags survive the round trip
// through a multi-tenant mix.
func TestRecordReplayMixTenants(t *testing.T) {
	board, err := BoardA().Build()
	if err != nil {
		t.Fatal(err)
	}
	t1, err := Poisson{Name: "t1", Board: board, Rate: 10, N: 50, Seed: 1}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Poisson{Name: "t2", Board: board, Rate: 10, N: 50, Seed: 2}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	mix, err := Mix{Name: "m", Tenants: []Source{t1, t2}}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	rec := Record(mix)
	want := drainTuples(t, rec)
	replay, err := rec.Trace().Replay(board.Model)
	if err != nil {
		t.Fatal(err)
	}
	got := drainTuples(t, replay)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("replayed mix differs from recorded one")
	}
	tenants := map[string]bool{}
	for _, tu := range got {
		tenants[tu.Tenant] = true
	}
	if !tenants["t1"] || !tenants["t2"] {
		t.Errorf("replay lost tenant tags: %v", tenants)
	}
}

// TestTraceFileRoundTrip: Write then ReadTrace reproduces the trace
// exactly, and the format is compact.
func TestTraceFileRoundTrip(t *testing.T) {
	board, err := BoardA().Build()
	if err != nil {
		t.Fatal(err)
	}
	src, err := Poisson{Name: "file", Board: board, Rate: 50, N: 1000, Seed: 7}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	rec := Record(src)
	drainTuples(t, rec)
	want := rec.Trace()

	var buf bytes.Buffer
	if err := want.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if per := buf.Len() / len(want.Entries); per > 16 {
		t.Errorf("trace encodes at %d bytes/entry, want compact (<=16)", per)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("trace file round trip differs")
	}

	// And the decoded trace replays identically to the in-memory one.
	a, err := want.Replay(board.Model)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Replay(board.Model)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(drainTuples(t, a), drainTuples(t, b)) {
		t.Fatal("decoded trace replays differently")
	}
}

// TestReadTraceRejectsGarbage: bad magic and truncated bodies fail
// cleanly.
func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Error("ReadTrace accepted garbage magic")
	}
	board, err := BoardA().Build()
	if err != nil {
		t.Fatal(err)
	}
	src, err := Poisson{Name: "x", Board: board, Rate: 10, N: 20, Seed: 1}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	rec := Record(src)
	drainTuples(t, rec)
	var buf bytes.Buffer
	if err := rec.Trace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("ReadTrace accepted a truncated trace")
	}
}

// TestReplayValidatesModel: a trace routed over board A must not replay
// against a model lacking its experts.
func TestReplayValidatesModel(t *testing.T) {
	board, err := BoardA().Build()
	if err != nil {
		t.Fatal(err)
	}
	trace := &ArrivalTrace{Name: "bad", Entries: []ArrivalEntry{
		{At: 0, Class: 0, Chain: []coe.ExpertID{coe.ExpertID(board.Model.NumExperts())}},
	}}
	if _, err := trace.Replay(board.Model); err == nil {
		t.Error("Replay accepted an out-of-range expert")
	}
	if _, err := (&ArrivalTrace{Name: "e", Entries: []ArrivalEntry{{}}}).Replay(board.Model); err == nil {
		t.Error("Replay accepted an empty chain")
	}
}

// TestRecordIsTransparent: a recorded unbounded source still reports
// unbounded, and forwards its model.
func TestRecordIsTransparent(t *testing.T) {
	board, err := BoardA().Build()
	if err != nil {
		t.Fatal(err)
	}
	steady, err := Steady{Name: "s", Board: board, Rate: 5, Seed: 3}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	rec := Record(steady)
	if !IsUnbounded(rec) {
		t.Error("recorded steady source lost its unboundedness")
	}
	if rec.Model() != board.Model {
		t.Error("recorded source lost its model")
	}
	// Recording through a horizon bounds it again.
	if IsUnbounded(Record(Horizon(steady, time.Second))) {
		t.Error("recorded horizon source claims unbounded")
	}
}
