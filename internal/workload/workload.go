// Package workload generates the paper's evaluation workload (§5.1):
// circuit-board quality inspection with one dedicated classification
// expert per component type and shared object-detection experts.
//
// Circuit Board A has 352 component types; Board B has 342. Component
// quantities follow a skewed (Zipf-like) distribution — a board carries
// far more of its common passives than of its specialty parts — which is
// what gives expert usage its non-uniform CDF (Figure 11). Component
// images arrive at a fixed 4 ms period, and a task is a fixed count of
// continuously arriving requests (Tasks A1/A2/B1/B2).
//
// Beyond the paper's closed loop, the package defines the Source
// abstraction (source.go): arrival processes that yield timed requests —
// fixed-period task streams, open-loop Poisson, bursty on/off traffic,
// and multi-tenant mixes over merged boards — which the serving layer
// (core.System.Serve) consumes uniformly.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/coe"
	"repro/internal/model"
)

// DefaultArrivalPeriod is the paper's image arrival period ("a component
// image is input every 4 ms").
const DefaultArrivalPeriod = 4 * time.Millisecond

// BoardSpec parameterizes a synthetic circuit board.
type BoardSpec struct {
	Name string
	// Types is the number of component types (each gets a dedicated
	// ResNet101 classification expert).
	Types int
	// Detectors is the number of shared object-detection experts.
	Detectors int
	// DetectorShare is the fraction of component types whose pipeline
	// includes a detection stage after a passing classification.
	DetectorShare float64
	// PassProb is the probability a classification passes (routes on to
	// the detector).
	PassProb float64
	// HeadTypes is the number of "head" component types that carry
	// nearly all of the board's quantity mass: the common passives
	// (resistors, capacitors) every production run inspects. The
	// remaining tail types are specialty parts with near-zero share.
	HeadTypes int
	// HeadSkew is the Zipf exponent of the quantity distribution over
	// the head types.
	HeadSkew float64
	// TailWeight scales the tail types' share relative to a head type
	// of the same rank (a small value, so each tail type contributes a
	// handful of images at most).
	TailWeight float64
	// Seed drives the deterministic assignment of detectors to types.
	Seed int64
}

// BoardA returns the spec of the paper's Circuit Board A (352 types).
func BoardA() BoardSpec {
	return BoardSpec{
		Name:          "board-a",
		Types:         352,
		Detectors:     30,
		DetectorShare: 0.6,
		PassProb:      0.95,
		HeadTypes:     150,
		HeadSkew:      1.0,
		TailWeight:    0.01,
		Seed:          1001,
	}
}

// BoardB returns the spec of the paper's Circuit Board B (342 types).
func BoardB() BoardSpec {
	return BoardSpec{
		Name:          "board-b",
		Types:         342,
		Detectors:     28,
		DetectorShare: 0.6,
		PassProb:      0.95,
		HeadTypes:     160,
		HeadSkew:      1.05,
		TailWeight:    0.01,
		Seed:          2002,
	}
}

// Board is a generated circuit board: its CoE model, routing rules, and
// component-type request distribution.
type Board struct {
	Spec  BoardSpec
	Model *coe.Model
	// TypeProbs[c] is the probability a random component image belongs
	// to type c (quantity share of the board).
	TypeProbs []float64
	// cumProbs is the prefix-sum of TypeProbs for sampling.
	cumProbs []float64
}

// Build generates the board deterministically from its spec.
func (s BoardSpec) Build() (*Board, error) {
	if s.Types < 1 {
		return nil, fmt.Errorf("workload: board %q needs at least one type", s.Name)
	}
	if s.Detectors < 0 || (s.DetectorShare > 0 && s.Detectors == 0) {
		return nil, fmt.Errorf("workload: board %q has detector share but no detectors", s.Name)
	}
	if s.HeadTypes < 1 || s.HeadTypes > s.Types {
		return nil, fmt.Errorf("workload: board %q head types %d outside [1,%d]", s.Name, s.HeadTypes, s.Types)
	}
	if s.TailWeight < 0 || s.TailWeight > 1 {
		return nil, fmt.Errorf("workload: board %q tail weight %f outside [0,1]", s.Name, s.TailWeight)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	b := coe.NewBuilder(s.Name)

	// One dedicated classification expert per component type.
	classifiers := make([]coe.ExpertID, s.Types)
	for c := 0; c < s.Types; c++ {
		classifiers[c] = b.AddExpert(fmt.Sprintf("%s/cls-%03d", s.Name, c), model.ResNet101, coe.Preliminary)
	}
	// Shared detection experts: two thirds YOLOv5m, one third YOLOv5l
	// (§5.1: "The object detection experts utilize two architectures").
	detectors := make([]coe.ExpertID, s.Detectors)
	for d := 0; d < s.Detectors; d++ {
		arch := model.YOLOv5m
		if d%3 == 2 {
			arch = model.YOLOv5l
		}
		detectors[d] = b.AddExpert(fmt.Sprintf("%s/det-%02d", s.Name, d), arch, coe.Subsequent)
	}

	// Quantity distribution: Zipf over a deterministic permutation of
	// types (so type ID does not encode popularity), with the mass
	// concentrated on the head types; tail types keep a tiny share.
	perm := rng.Perm(s.Types)
	probs := make([]float64, s.Types)
	var total float64
	for rank, c := range perm {
		w := 1 / math.Pow(float64(rank+1), s.HeadSkew)
		if rank >= s.HeadTypes {
			w *= s.TailWeight
		}
		probs[c] = w
		total += w
	}
	for c := range probs {
		probs[c] /= total
	}

	// Routing rules: a share of types verify alignment with a shared
	// detector after a passing classification ("Multiple classification
	// experts may share the same object detection expert", §2.1).
	for c := 0; c < s.Types; c++ {
		rule := coe.Rule{Classifier: classifiers[c]}
		if s.Detectors > 0 && rng.Float64() < s.DetectorShare {
			rule.Detector = detectors[rng.Intn(s.Detectors)]
			rule.PassProb = s.PassProb
			b.Link(classifiers[c], rule.Detector)
		}
		b.AddRule(c, rule)
	}

	m, err := b.Build()
	if err != nil {
		return nil, err
	}
	classProbs := make(map[int]float64, s.Types)
	for c, p := range probs {
		classProbs[c] = p
	}
	if err := coe.ComputeUsage(m, classProbs); err != nil {
		return nil, err
	}

	cum := make([]float64, len(probs))
	var run float64
	for i, p := range probs {
		run += p
		cum[i] = run
	}
	return &Board{Spec: s, Model: m, TypeProbs: probs, cumProbs: cum}, nil
}

// NewBoard wraps an arbitrary CoE model and class distribution as a
// Board, for custom workloads that do not come from a BoardSpec. The
// model must have a routing rule for every class index in typeProbs,
// whose values must be positive and sum to ~1.
func NewBoard(m *coe.Model, typeProbs []float64) (*Board, error) {
	if m == nil || len(typeProbs) == 0 {
		return nil, fmt.Errorf("workload: NewBoard needs a model and a class distribution")
	}
	var total float64
	cum := make([]float64, len(typeProbs))
	for c, p := range typeProbs {
		if p <= 0 {
			return nil, fmt.Errorf("workload: class %d has non-positive probability", c)
		}
		if _, ok := m.Router().Rule(c); !ok {
			return nil, fmt.Errorf("workload: class %d has no routing rule", c)
		}
		total += p
		cum[c] = total
	}
	if math.Abs(total-1) > 1e-6 {
		return nil, fmt.Errorf("workload: class probabilities sum to %f, want 1", total)
	}
	return &Board{
		Spec:      BoardSpec{Name: m.Name(), Types: len(typeProbs)},
		Model:     m,
		TypeProbs: append([]float64(nil), typeProbs...),
		cumProbs:  cum,
	}, nil
}

// SampleType draws a component type from the board's quantity
// distribution using u ∈ [0,1).
func (b *Board) SampleType(u float64) int {
	lo, hi := 0, len(b.cumProbs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if b.cumProbs[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Task is a fixed-length closed-loop request stream against one board:
// the paper's arrival shape, and a thin wrapper over the Source
// abstraction (see Task.Stream).
type Task struct {
	Name          string
	Board         *Board
	N             int
	ArrivalPeriod time.Duration
	Seed          int64
}

// TaskA1, TaskA2, TaskB1, TaskB2 construct the paper's four evaluation
// tasks (§5.1) against pre-built boards.
func TaskA1(b *Board) Task {
	return Task{Name: "A1", Board: b, N: 2500, ArrivalPeriod: DefaultArrivalPeriod, Seed: 11}
}
func TaskA2(b *Board) Task {
	return Task{Name: "A2", Board: b, N: 3500, ArrivalPeriod: DefaultArrivalPeriod, Seed: 12}
}
func TaskB1(b *Board) Task {
	return Task{Name: "B1", Board: b, N: 2500, ArrivalPeriod: DefaultArrivalPeriod, Seed: 21}
}
func TaskB2(b *Board) Task {
	return Task{Name: "B2", Board: b, N: 3500, ArrivalPeriod: DefaultArrivalPeriod, Seed: 22}
}

// Generate materializes the task's request stream: N requests, types
// drawn from the board's quantity distribution, chains decided by the
// routing rules with seeded pass outcomes. The same task always
// generates the same stream.
func (t Task) Generate() ([]*coe.Request, error) {
	if t.N < 1 {
		return nil, fmt.Errorf("workload: task %q has no requests", t.Name)
	}
	rng := rand.New(rand.NewSource(t.Seed))
	router := t.Board.Model.Router()
	reqs := make([]*coe.Request, 0, t.N)
	for i := 0; i < t.N; i++ {
		class := t.Board.SampleType(rng.Float64())
		chain, err := router.Route(class, rng.Float64())
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, coe.NewRequest(int64(i), class, chain))
	}
	return reqs, nil
}

// DistinctExperts reports how many distinct experts a request stream
// touches — the task's working set, the quantity that determines the
// floor on expert switches.
func DistinctExperts(reqs []*coe.Request) int {
	seen := make(map[coe.ExpertID]struct{})
	for _, r := range reqs {
		for _, id := range r.Chain {
			seen[id] = struct{}{}
		}
	}
	return len(seen)
}
