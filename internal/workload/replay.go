package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/coe"
)

// ArrivalTrace is a recorded arrival log: everything needed to replay a
// served stream bit-for-bit — each request's arrival offset, class,
// tenant tag, and routed expert chain (the chain is recorded because it
// encodes the router's seeded pass/fail draws, which a (time, class)
// pair alone cannot reproduce). Traces persist to a compact varint
// binary format via Write/ReadTrace, so production arrival logs can be
// captured once and replayed against any build or configuration.
type ArrivalTrace struct {
	// Name is the recorded stream's name; the replay source reports
	// "replay(<name>)".
	Name    string
	Entries []ArrivalEntry
}

// ArrivalEntry is one recorded arrival.
type ArrivalEntry struct {
	// At is the arrival offset from the start of the stream.
	At time.Duration
	// Class is the request's component class.
	Class int
	// Tenant is the multi-tenant tag (empty for single-tenant streams).
	Tenant string
	// Chain is the request's routed expert chain.
	Chain []coe.ExpertID
}

// Record wraps a source so that every arrival it yields is also copied
// into an arrival trace: serve the wrapped source as usual, then
// collect the trace with Trace. The wrapper is transparent — it
// forwards Name, Model, and unboundedness — so recording changes
// nothing about the served stream.
func Record(src Source) *RecordingSource {
	return &RecordingSource{src: src, trace: &ArrivalTrace{Name: src.Name()}}
}

// RecordingSource tees a source into an ArrivalTrace; see Record.
type RecordingSource struct {
	src   Source
	trace *ArrivalTrace
}

// Name forwards the wrapped source's name.
func (r *RecordingSource) Name() string { return r.src.Name() }

// Model forwards the wrapped source's model, if it exposes one.
func (r *RecordingSource) Model() *coe.Model {
	if m, ok := r.src.(interface{ Model() *coe.Model }); ok {
		return m.Model()
	}
	return nil
}

// Unbounded forwards the wrapped source's unboundedness.
func (r *RecordingSource) Unbounded() bool { return IsUnbounded(r.src) }

// Next forwards the wrapped source, recording what it yields.
func (r *RecordingSource) Next() (TimedRequest, bool) {
	tr, ok := r.src.Next()
	if !ok {
		return tr, false
	}
	r.trace.Entries = append(r.trace.Entries, ArrivalEntry{
		At:     tr.At,
		Class:  tr.Req.Class,
		Tenant: tr.Tenant,
		Chain:  append([]coe.ExpertID(nil), tr.Req.Chain...),
	})
	return tr, true
}

// Trace returns the arrivals recorded so far. It is complete once the
// wrapped source is exhausted (after the serving layer drained it).
func (r *RecordingSource) Trace() *ArrivalTrace { return r.trace }

// Replay returns a source that re-yields the trace bit-for-bit against
// the model: the same arrival offsets, classes, tenants, and expert
// chains, with request IDs renumbered sequentially from zero — exactly
// the IDs the recorded stream carried, since every arrival process
// numbers sequentially. It fails if the trace names an expert the model
// does not have (a trace only replays against the model that produced
// it, or one extending it).
func (t *ArrivalTrace) Replay(m *coe.Model) (Source, error) {
	if m == nil {
		return nil, fmt.Errorf("workload: replay of %q needs a model", t.Name)
	}
	for i, e := range t.Entries {
		if len(e.Chain) == 0 {
			return nil, fmt.Errorf("workload: trace %q entry %d has an empty chain", t.Name, i)
		}
		for _, id := range e.Chain {
			if id < 0 || int(id) >= m.NumExperts() {
				return nil, fmt.Errorf("workload: trace %q entry %d routes to expert %d outside model %q (%d experts)",
					t.Name, i, id, m.Name(), m.NumExperts())
			}
		}
	}
	return &replaySource{trace: t, model: m}, nil
}

type replaySource struct {
	trace *ArrivalTrace
	model *coe.Model
	pos   int
}

func (s *replaySource) Name() string { return "replay(" + s.trace.Name + ")" }

// Model reports the model the trace replays against.
func (s *replaySource) Model() *coe.Model { return s.model }

func (s *replaySource) Next() (TimedRequest, bool) {
	if s.pos >= len(s.trace.Entries) {
		return TimedRequest{}, false
	}
	e := s.trace.Entries[s.pos]
	r := coe.NewRequest(int64(s.pos), e.Class, e.Chain)
	s.pos++
	return TimedRequest{Req: r, At: e.At, Tenant: e.Tenant}, true
}

// traceMagic heads the binary trace format; the trailing digit is the
// format version.
const traceMagic = "COSVTR1\n"

// Write persists the trace in the compact binary format: the magic
// header, then the stream name and entries as uvarint-framed records.
// A 10k-request Poisson trace lands around 60 KB.
func (t *ArrivalTrace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	writeUvarint := func(v uint64) {
		var buf [binary.MaxVarintLen64]byte
		bw.Write(buf[:binary.PutUvarint(buf[:], v)])
	}
	writeString := func(s string) {
		writeUvarint(uint64(len(s)))
		bw.WriteString(s)
	}
	writeString(t.Name)
	writeUvarint(uint64(len(t.Entries)))
	for i, e := range t.Entries {
		if e.At < 0 {
			return fmt.Errorf("workload: trace %q entry %d has negative arrival offset %v", t.Name, i, e.At)
		}
		writeUvarint(uint64(e.At))
		writeUvarint(uint64(e.Class))
		writeString(e.Tenant)
		writeUvarint(uint64(len(e.Chain)))
		for _, id := range e.Chain {
			writeUvarint(uint64(id))
		}
	}
	return bw.Flush()
}

// Sanity bounds for ReadTrace: a corrupt length prefix must not turn
// into an absurd allocation.
const (
	maxTraceString = 1 << 12 // stream / tenant name bytes
	maxTraceChain  = 1 << 10 // stages per request
)

// ReadTrace reads a trace in the format Write produces.
func ReadTrace(r io.Reader) (*ArrivalTrace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("workload: not an arrival trace (bad magic %q)", magic)
	}
	readUvarint := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("workload: reading trace %s: %w", what, err)
		}
		return v, nil
	}
	readString := func(what string) (string, error) {
		n, err := readUvarint(what + " length")
		if err != nil {
			return "", err
		}
		if n > maxTraceString {
			return "", fmt.Errorf("workload: trace %s length %d exceeds %d", what, n, maxTraceString)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", fmt.Errorf("workload: reading trace %s: %w", what, err)
		}
		return string(buf), nil
	}

	t := &ArrivalTrace{}
	var err error
	if t.Name, err = readString("name"); err != nil {
		return nil, err
	}
	count, err := readUvarint("entry count")
	if err != nil {
		return nil, err
	}
	if count > DrainCap {
		return nil, fmt.Errorf("workload: trace claims %d entries, above the %d cap", count, DrainCap)
	}
	t.Entries = make([]ArrivalEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		var e ArrivalEntry
		at, err := readUvarint("arrival offset")
		if err != nil {
			return nil, err
		}
		e.At = time.Duration(at)
		class, err := readUvarint("class")
		if err != nil {
			return nil, err
		}
		e.Class = int(class)
		if e.Tenant, err = readString("tenant"); err != nil {
			return nil, err
		}
		stages, err := readUvarint("chain length")
		if err != nil {
			return nil, err
		}
		if stages == 0 || stages > maxTraceChain {
			return nil, fmt.Errorf("workload: trace entry %d chain length %d outside [1,%d]", i, stages, maxTraceChain)
		}
		e.Chain = make([]coe.ExpertID, stages)
		for j := range e.Chain {
			id, err := readUvarint("chain expert")
			if err != nil {
				return nil, err
			}
			e.Chain[j] = coe.ExpertID(id)
		}
		t.Entries = append(t.Entries, e)
	}
	return t, nil
}
