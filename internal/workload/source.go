package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/coe"
)

// TimedRequest is one request paired with its arrival offset from the
// start of its stream. Offsets are non-decreasing within a source.
type TimedRequest struct {
	Req *coe.Request
	// At is the arrival time relative to the first instant of the stream.
	At time.Duration
	// Tenant names the originating stream in multi-tenant mixes; empty
	// for single-tenant sources.
	Tenant string
}

// Source yields a finite stream of timed requests: the arrival-process
// abstraction the serving layer consumes. A Source is single-use — Next
// walks the stream once — and deterministic: the same construction
// parameters always yield the same stream.
type Source interface {
	// Name identifies the stream in reports and traces.
	Name() string
	// Next returns the next request, or ok=false when the stream is
	// exhausted.
	Next() (tr TimedRequest, ok bool)
}

// sampler draws request chains from a board's distribution. All arrival
// processes share it so that class sampling and routing consume the rng
// identically regardless of arrival shape. With an arena, requests are
// leased from its free list and routed in place (alloc-free once the
// pool is warm); the rng consumption — and therefore the stream — is
// identical either way.
type sampler struct {
	board *Board
	rng   *rand.Rand
	next  int64
	arena *coe.Arena
}

// draw produces the next request: one uniform draw for the class, one
// for the routing pass outcome — the same consumption order as
// Task.Generate.
func (s *sampler) draw() (*coe.Request, error) {
	class := s.board.SampleType(s.rng.Float64())
	u := s.rng.Float64()
	router := s.board.Model.Router()
	if s.arena != nil {
		r := s.arena.Lease()
		chain, err := router.AppendRoute(r.Chain[:0], class, u)
		if err != nil {
			coe.Recycle(r)
			return nil, err
		}
		r.Chain, r.ID, r.Class = chain, s.next, class
		s.next++
		return r, nil
	}
	chain, err := router.Route(class, u)
	if err != nil {
		return nil, err
	}
	r := coe.NewRequest(s.next, class, chain)
	s.next++
	return r, nil
}

// sliceSource replays a pre-materialized stream.
type sliceSource struct {
	name  string
	model *coe.Model
	items []TimedRequest
	pos   int
}

func (s *sliceSource) Name() string { return s.name }

// Model reports the CoE model the stream's chains route over; the
// serving layer checks it against the System's model.
func (s *sliceSource) Model() *coe.Model { return s.model }

func (s *sliceSource) Next() (TimedRequest, bool) {
	if s.pos >= len(s.items) {
		return TimedRequest{}, false
	}
	tr := s.items[s.pos]
	s.pos++
	return tr, true
}

// Stream materializes the task as a closed-loop fixed-period source: the
// paper's arrival process (§5.1, one image every ArrivalPeriod). The
// request sequence is exactly Task.Generate — same seeds, same IDs, same
// chains — with arrival offsets i*ArrivalPeriod, so serving a task
// through Stream is bit-for-bit the stream RunTask always fed.
func (t Task) Stream() (Source, error) {
	reqs, err := t.Generate()
	if err != nil {
		return nil, err
	}
	if t.ArrivalPeriod < 0 {
		return nil, fmt.Errorf("workload: task %q has negative arrival period", t.Name)
	}
	items := make([]TimedRequest, len(reqs))
	for i, r := range reqs {
		items[i] = TimedRequest{Req: r, At: time.Duration(i) * t.ArrivalPeriod}
	}
	return &sliceSource{name: t.Name, model: t.Board.Model, items: items}, nil
}

// Poisson is an open-loop arrival process: N requests against a board
// with exponentially distributed interarrival gaps at the target Rate
// (requests per second). The same spec always yields the same stream.
type Poisson struct {
	Name string
	// Board supplies the class distribution and routing rules.
	Board *Board
	// Rate is the offered load in requests per second.
	Rate float64
	// N is the stream length.
	N int
	// Seed drives both the arrival gaps and the request contents.
	Seed int64
	// Arena, when non-nil, leases request objects from a free list the
	// serving layer recycles into, making steady-state request
	// allocation O(in-flight) instead of O(stream length). The stream
	// contents are identical with or without it.
	Arena *coe.Arena
}

type poissonSource struct {
	spec    Poisson
	sampler sampler
	emitted int
	at      time.Duration
}

// NewSource validates the spec and returns the stream.
func (p Poisson) NewSource() (Source, error) {
	if p.Board == nil {
		return nil, fmt.Errorf("workload: poisson %q needs a board", p.Name)
	}
	if p.Rate <= 0 {
		return nil, fmt.Errorf("workload: poisson %q rate %f must be positive", p.Name, p.Rate)
	}
	if p.N < 1 {
		return nil, fmt.Errorf("workload: poisson %q has no requests", p.Name)
	}
	return &poissonSource{
		spec:    p,
		sampler: sampler{board: p.Board, rng: rand.New(rand.NewSource(p.Seed)), arena: p.Arena},
	}, nil
}

func (s *poissonSource) Name() string { return s.spec.Name }

// Model reports the CoE model the stream's chains route over.
func (s *poissonSource) Model() *coe.Model { return s.spec.Board.Model }

func (s *poissonSource) Next() (TimedRequest, bool) {
	if s.emitted >= s.spec.N {
		return TimedRequest{}, false
	}
	r, err := s.sampler.draw()
	if err != nil {
		// Routing over a validated board cannot fail; a custom board
		// with missing rules is a construction bug.
		panic("workload: poisson stream routing failed: " + err.Error())
	}
	// Gap first, then the request: every arrival (including the first)
	// sits one exponential gap after its predecessor.
	gap := s.sampler.rng.ExpFloat64() / s.spec.Rate
	s.at += time.Duration(gap * float64(time.Second))
	s.emitted++
	return TimedRequest{Req: r, At: s.at}, true
}

// Bursty is an on/off arrival process: fixed-period arrivals at Period
// during ON windows of duration On, separated by idle OFF windows of
// duration Off. It models the shift-change and batch-release traffic a
// production line sees between steady closed-loop phases.
type Bursty struct {
	Name  string
	Board *Board
	// Period is the interarrival gap inside an ON window.
	Period time.Duration
	// On and Off are the window durations.
	On, Off time.Duration
	// N is the stream length.
	N int
	// Seed drives the request contents.
	Seed int64
	// Arena, when non-nil, leases request objects from a recycled free
	// list (see Poisson.Arena).
	Arena *coe.Arena
}

type burstySource struct {
	spec    Bursty
	sampler sampler
	emitted int
	at      time.Duration // next arrival instant
	onEnd   time.Duration // end of the current ON window
}

// NewSource validates the spec and returns the stream.
func (b Bursty) NewSource() (Source, error) {
	if b.Board == nil {
		return nil, fmt.Errorf("workload: bursty %q needs a board", b.Name)
	}
	if b.Period <= 0 || b.On <= 0 || b.Off < 0 {
		return nil, fmt.Errorf("workload: bursty %q needs positive period and on-window", b.Name)
	}
	if b.N < 1 {
		return nil, fmt.Errorf("workload: bursty %q has no requests", b.Name)
	}
	return &burstySource{
		spec:    b,
		sampler: sampler{board: b.Board, rng: rand.New(rand.NewSource(b.Seed)), arena: b.Arena},
		onEnd:   b.On,
	}, nil
}

func (s *burstySource) Name() string { return s.spec.Name }

// Model reports the CoE model the stream's chains route over.
func (s *burstySource) Model() *coe.Model { return s.spec.Board.Model }

func (s *burstySource) Next() (TimedRequest, bool) {
	if s.emitted >= s.spec.N {
		return TimedRequest{}, false
	}
	r, err := s.sampler.draw()
	if err != nil {
		panic("workload: bursty stream routing failed: " + err.Error())
	}
	if s.at >= s.onEnd {
		// The window closed before this arrival: idle through OFF and
		// restart arrivals at the top of the next ON window.
		s.at = s.onEnd + s.spec.Off
		s.onEnd = s.at + s.spec.On
	}
	tr := TimedRequest{Req: r, At: s.at}
	s.at += s.spec.Period
	s.emitted++
	return tr, true
}

// Steady is an infinite open-loop Poisson arrival process: the
// steady-state counterpart of Poisson, for serving runs that measure
// windowed long-run behavior instead of a fixed request count. A Steady
// stream never closes on its own — it must be bounded by a Horizon
// before the serving layer will accept it, and Drain refuses it.
type Steady struct {
	Name string
	// Board supplies the class distribution and routing rules.
	Board *Board
	// Rate is the offered load in requests per second.
	Rate float64
	// Seed drives both the arrival gaps and the request contents.
	Seed int64
	// Arena, when non-nil, leases request objects from a recycled free
	// list — the piece that makes an unbounded stream's allocation
	// footprint O(in-flight) (see Poisson.Arena).
	Arena *coe.Arena
}

type steadySource struct {
	spec    Steady
	sampler sampler
	at      time.Duration
}

// NewSource validates the spec and returns the (unbounded) stream.
func (s Steady) NewSource() (Source, error) {
	if s.Board == nil {
		return nil, fmt.Errorf("workload: steady %q needs a board", s.Name)
	}
	if s.Rate <= 0 {
		return nil, fmt.Errorf("workload: steady %q rate %f must be positive", s.Name, s.Rate)
	}
	return &steadySource{
		spec:    s,
		sampler: sampler{board: s.Board, rng: rand.New(rand.NewSource(s.Seed)), arena: s.Arena},
	}, nil
}

func (s *steadySource) Name() string { return s.spec.Name }

// Model reports the CoE model the stream's chains route over.
func (s *steadySource) Model() *coe.Model { return s.spec.Board.Model }

// Unbounded marks the stream as infinite: it must be wrapped in a
// Horizon before serving or draining.
func (s *steadySource) Unbounded() bool { return true }

func (s *steadySource) Next() (TimedRequest, bool) {
	r, err := s.sampler.draw()
	if err != nil {
		panic("workload: steady stream routing failed: " + err.Error())
	}
	gap := s.sampler.rng.ExpFloat64() / s.spec.Rate
	s.at += time.Duration(gap * float64(time.Second))
	return TimedRequest{Req: r, At: s.at}, true
}

// Horizon bounds a source at a virtual-time horizon: the wrapped stream
// ends with the last request arriving at or before d. It is how an
// infinite steady-state source (Steady) terminates — the serving layer
// then drains the admitted backlog and reports as usual. Wrapping a
// finite source simply truncates it.
func Horizon(src Source, d time.Duration) Source {
	if d < 0 {
		panic("workload: negative horizon")
	}
	return &horizonSource{src: src, limit: d}
}

type horizonSource struct {
	src    Source
	limit  time.Duration
	closed bool
}

func (h *horizonSource) Name() string { return h.src.Name() }

// Model forwards the wrapped source's model, if it exposes one.
func (h *horizonSource) Model() *coe.Model {
	if m, ok := h.src.(interface{ Model() *coe.Model }); ok {
		return m.Model()
	}
	return nil
}

func (h *horizonSource) Next() (TimedRequest, bool) {
	if h.closed {
		return TimedRequest{}, false
	}
	tr, ok := h.src.Next()
	if !ok || tr.At > h.limit {
		h.closed = true
		return TimedRequest{}, false
	}
	return tr, true
}

// IsUnbounded reports whether the source yields an infinite stream (it
// implements `Unbounded() bool` and reports true). Unbounded sources
// must be wrapped in a Horizon before they are served or drained.
func IsUnbounded(src Source) bool {
	u, ok := src.(interface{ Unbounded() bool })
	return ok && u.Unbounded()
}

// Mix interleaves several tenants' streams into one multi-tenant stream
// ordered by arrival time, with ties broken by tenant order. Request IDs
// are renumbered to be unique across the mix; each request is tagged
// with its tenant's name. All tenant sources must draw their chains from
// the same CoE model — the model the serving System is built over.
type Mix struct {
	Name    string
	Tenants []Source
}

type mixSource struct {
	name  string
	model *coe.Model
	// heads[i] holds tenant i's next pending request; ok[i] marks it
	// valid.
	tenants []Source
	heads   []TimedRequest
	ok      []bool
	next    int64
}

// NewSource validates the mix and returns the merged stream.
func (m Mix) NewSource() (Source, error) {
	if len(m.Tenants) == 0 {
		return nil, fmt.Errorf("workload: mix %q has no tenants", m.Name)
	}
	// Tenant names key the per-tenant report slices; duplicates would
	// silently merge two streams into one row. Tenants must also draw
	// their chains from one CoE model — expert IDs are only meaningful
	// within the model the serving System hosts (merge boards with
	// MergeBoards first).
	names := make(map[string]struct{}, len(m.Tenants))
	var model *coe.Model
	for _, t := range m.Tenants {
		if _, dup := names[t.Name()]; dup {
			return nil, fmt.Errorf("workload: mix %q has two tenants named %q", m.Name, t.Name())
		}
		names[t.Name()] = struct{}{}
		if tm, ok := t.(interface{ Model() *coe.Model }); ok {
			switch {
			case model == nil:
				model = tm.Model()
			case model != tm.Model():
				return nil, fmt.Errorf("workload: mix %q tenants draw from different models (%q vs %q); merge boards first",
					m.Name, model.Name(), tm.Model().Name())
			}
		}
	}
	s := &mixSource{
		name:    m.Name,
		model:   model,
		tenants: m.Tenants,
		heads:   make([]TimedRequest, len(m.Tenants)),
		ok:      make([]bool, len(m.Tenants)),
	}
	for i, t := range m.Tenants {
		s.heads[i], s.ok[i] = t.Next()
	}
	return s, nil
}

func (s *mixSource) Name() string { return s.name }

// Model reports the tenants' shared CoE model (nil when no tenant
// exposes one).
func (s *mixSource) Model() *coe.Model { return s.model }

// Unbounded reports whether any tenant's stream is infinite: a mix
// containing one unbounded tenant never closes, so it needs a Horizon
// just like the tenant itself would.
func (s *mixSource) Unbounded() bool {
	for _, t := range s.tenants {
		if IsUnbounded(t) {
			return true
		}
	}
	return false
}

func (s *mixSource) Next() (TimedRequest, bool) {
	best := -1
	for i := range s.tenants {
		if !s.ok[i] {
			continue
		}
		if best < 0 || s.heads[i].At < s.heads[best].At {
			best = i
		}
	}
	if best < 0 {
		return TimedRequest{}, false
	}
	tr := s.heads[best]
	s.heads[best], s.ok[best] = s.tenants[best].Next()
	if tr.Tenant == "" {
		tr.Tenant = s.tenants[best].Name()
	}
	tr.Req.ID = s.next
	s.next++
	return tr, true
}

// DrainCap is Drain's defensive bound: a source still yielding past
// this many requests is treated as unbounded.
const DrainCap = 1 << 22

// Drain materializes a source into a slice — handy for tests and for
// callers that need the stream length upfront. It refuses unbounded
// sources (IsUnbounded): draining an infinite stream would never
// return, so it panics immediately with instructions to wrap the source
// in a Horizon, and panics likewise if a source that did not declare
// itself unbounded still yields past DrainCap requests.
func Drain(src Source) []TimedRequest {
	if IsUnbounded(src) {
		panic(fmt.Sprintf("workload: Drain on unbounded source %q would never return; wrap it in workload.Horizon first", src.Name()))
	}
	var out []TimedRequest
	for {
		tr, ok := src.Next()
		if !ok {
			return out
		}
		if len(out) >= DrainCap {
			panic(fmt.Sprintf("workload: Drain exceeded %d requests on source %q; an unbounded source must be wrapped in workload.Horizon", DrainCap, src.Name()))
		}
		out = append(out, tr)
	}
}

// MergeBoards fuses several boards into one CoE model so a single
// serving System can host a multi-tenant mix of their streams. Every
// board's experts and routing rules are re-added with the class space
// offset per board; shares[i] weights board i's contribution to the
// merged quantity distribution (shares need not be normalized).
//
// It returns the merged board plus one view per input board: a Board
// whose Model is the merged model but whose distribution covers only
// that tenant's classes, for building the tenant's arrival process.
func MergeBoards(name string, shares []float64, boards ...*Board) (*Board, []*Board, error) {
	if len(boards) < 1 {
		return nil, nil, fmt.Errorf("workload: merge %q needs at least one board", name)
	}
	if len(shares) != len(boards) {
		return nil, nil, fmt.Errorf("workload: merge %q has %d shares for %d boards", name, len(shares), len(boards))
	}
	var shareTotal float64
	for i, sh := range shares {
		if sh <= 0 {
			return nil, nil, fmt.Errorf("workload: merge %q share %d is non-positive", name, i)
		}
		shareTotal += sh
	}

	b := coe.NewBuilder(name)
	classOff := 0
	var mergedProbs []float64
	type view struct{ base, types int }
	views := make([]view, len(boards))
	for bi, board := range boards {
		// Re-add the board's experts, tracking old→new expert IDs.
		idMap := make(map[coe.ExpertID]coe.ExpertID)
		for _, e := range board.Model.Experts() {
			idMap[e.ID] = b.AddExpert(e.Name, e.Arch, e.Role)
		}
		// Re-add the routing rules with offset classes; Link restores the
		// classifier→detector dependency edges.
		// Classes() already returns ascending order.
		router := board.Model.Router()
		classes := router.Classes()
		for _, class := range classes {
			rule, _ := router.Rule(class)
			nr := coe.Rule{Classifier: idMap[rule.Classifier], PassProb: rule.PassProb}
			if rule.Detector != coe.NoExpert {
				nr.Detector = idMap[rule.Detector]
				b.Link(nr.Classifier, nr.Detector)
			}
			b.AddRule(classOff+class, nr)
		}
		views[bi] = view{base: classOff, types: len(board.TypeProbs)}
		w := shares[bi] / shareTotal
		for _, p := range board.TypeProbs {
			mergedProbs = append(mergedProbs, p*w)
		}
		classOff += len(board.TypeProbs)
	}

	m, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	classProbs := make(map[int]float64, len(mergedProbs))
	for c, p := range mergedProbs {
		classProbs[c] = p
	}
	if err := coe.ComputeUsage(m, classProbs); err != nil {
		return nil, nil, err
	}
	merged := newBoardUnchecked(name, m, mergedProbs)

	// Per-tenant views: the merged model with the tenant's original
	// distribution mapped into its class range (zero elsewhere — the
	// zero-width entries are never sampled).
	tenantViews := make([]*Board, len(boards))
	for bi, board := range boards {
		probs := make([]float64, len(mergedProbs))
		copy(probs[views[bi].base:], board.TypeProbs)
		tenantViews[bi] = newBoardUnchecked(board.Spec.Name, m, probs)
	}
	return merged, tenantViews, nil
}

// newBoardUnchecked builds a Board directly from a model and a (possibly
// sparse) class distribution, bypassing NewBoard's positivity check —
// tenant views legitimately carry zero probability outside their class
// range.
func newBoardUnchecked(name string, m *coe.Model, probs []float64) *Board {
	cum := make([]float64, len(probs))
	var run float64
	last := -1
	for i, p := range probs {
		run += p
		cum[i] = run
		if p > 0 {
			last = i
		}
	}
	// Absorb floating-point drift into the last positive class so a draw
	// of u→1 can never land on a zero-probability tail entry.
	for j := last; j >= 0 && j < len(cum); j++ {
		cum[j] = 1
	}
	return &Board{
		Spec:      BoardSpec{Name: name, Types: len(probs)},
		Model:     m,
		TypeProbs: probs,
		cumProbs:  cum,
	}
}
