// Package profiler implements CoServe's offline phase (§4.4–§4.5): it
// measures each architecture's performance matrix on each processor via
// microbenchmarks (execution latency K/B, maximum batch size, memory
// footprint, load latency), searches for the memory allocation with the
// decay-window method, and sweeps executor counts.
//
// The profiler treats the device as a black box: microbenchmarks run
// real (simulated) executions and the fits are performed on the
// observations, exactly as they would be on hardware.
package profiler

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xfer"
)

// probeMaxBatch is the largest batch size microbenchmarks try.
const probeMaxBatch = 64

// plateauEps is the relative average-latency improvement below which the
// processor counts as saturated ("the average latency plateaus", §4.5).
const plateauEps = 0.005

// BatchPoint is one microbenchmark observation (the raw data behind
// Figures 5, 6, and 12).
type BatchPoint struct {
	Batch     int
	Exec      time.Duration // execution latency of the whole batch
	Avg       time.Duration // Exec / Batch
	Footprint int64         // activation bytes of the batch
}

// BatchSweep runs the batch-size microbenchmark for an architecture on a
// processor kind, executing each batch in a fresh simulation and
// recording elapsed virtual time and memory footprint.
func BatchSweep(dev *hw.Device, arch model.Architecture, kind hw.ProcKind, maxBatch int) []BatchPoint {
	proc := dev.Proc(kind)
	points := make([]BatchPoint, 0, maxBatch)
	for n := 1; n <= maxBatch; n++ {
		n := n
		env := sim.NewEnv()
		var elapsed time.Duration
		env.Go("bench", func(p *sim.Proc) {
			start := p.Now()
			p.Sleep(model.ExecLatency(arch, proc, n))
			elapsed = p.Now().Sub(start)
		})
		env.Run()
		points = append(points, BatchPoint{
			Batch:     n,
			Exec:      elapsed,
			Avg:       elapsed / time.Duration(n),
			Footprint: model.ActBytes(arch, proc, n),
		})
	}
	return points
}

// maxBatchOf finds the batch size where average latency plateaus: the
// last batch whose successor improves the average by less than
// plateauEps (or worsens it).
func maxBatchOf(points []BatchPoint) int {
	for i := 0; i+1 < len(points); i++ {
		cur, next := float64(points[i].Avg), float64(points[i+1].Avg)
		if next >= cur*(1-plateauEps) {
			return points[i].Batch
		}
	}
	return points[len(points)-1].Batch
}

// Measure profiles one architecture on one processor kind: the linear
// execution coefficients K and B (fit over the pre-plateau region), the
// maximum batch size, per-image footprint, and load latencies from SSD
// and host memory.
func Measure(dev *hw.Device, arch model.Architecture, kind hw.ProcKind) (model.Perf, error) {
	points := BatchSweep(dev, arch, kind, probeMaxBatch)
	maxBatch := maxBatchOf(points)

	xs := make([]float64, 0, maxBatch)
	ys := make([]float64, 0, maxBatch)
	for _, pt := range points[:maxBatch] {
		xs = append(xs, float64(pt.Batch))
		ys = append(ys, float64(pt.Exec))
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return model.Perf{}, fmt.Errorf("profiler: fitting %s on %s: %w", arch.Name, kind, err)
	}

	tier := memory.TierGPU
	if kind == hw.CPU {
		tier = memory.TierCPU
	}
	return model.Perf{
		Arch:        arch,
		Proc:        dev.Proc(kind),
		K:           time.Duration(fit.K),
		B:           time.Duration(fit.B),
		MaxBatch:    maxBatch,
		ActPerImage: model.ActBytesPerImage(arch, dev.Proc(kind)),
		LoadSSD:     xfer.LoadLatency(dev, xfer.FromSSD, tier, arch.WeightBytes()),
		LoadHost:    xfer.LoadLatency(dev, xfer.FromHost, tier, arch.WeightBytes()),
	}, nil
}

// Matrix profiles every architecture on both processor kinds. Experts
// sharing an architecture are profiled once (§4.5).
func Matrix(dev *hw.Device, archs []model.Architecture) (model.PerfMatrix, error) {
	pm := make(model.PerfMatrix, 2*len(archs))
	for _, arch := range archs {
		for _, kind := range []hw.ProcKind{hw.GPU, hw.CPU} {
			p, err := Measure(dev, arch, kind)
			if err != nil {
				return nil, err
			}
			pm.Put(arch, kind, p)
		}
	}
	return pm, nil
}
