package profiler

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/model"
)

func TestBatchSweepMatchesModel(t *testing.T) {
	dev := hw.NUMADevice()
	points := BatchSweep(dev, model.ResNet101, hw.GPU, 8)
	if len(points) != 8 {
		t.Fatalf("points = %d, want 8", len(points))
	}
	for _, pt := range points {
		want := model.ExecLatency(model.ResNet101, dev.GPU, pt.Batch)
		if pt.Exec != want {
			t.Errorf("batch %d: exec = %v, want %v", pt.Batch, pt.Exec, want)
		}
		if pt.Footprint != model.ActBytes(model.ResNet101, dev.GPU, pt.Batch) {
			t.Errorf("batch %d: footprint mismatch", pt.Batch)
		}
	}
}

func TestMeasureRecoversLatencyModel(t *testing.T) {
	dev := hw.NUMADevice()
	perf, err := Measure(dev, model.ResNet101, hw.GPU)
	if err != nil {
		t.Fatal(err)
	}
	trueK := model.KCoeff(model.ResNet101, dev.GPU)
	if relErr(float64(perf.K), float64(trueK)) > 0.05 {
		t.Errorf("fitted K = %v, true %v", perf.K, trueK)
	}
	if relErr(float64(perf.B), float64(dev.GPU.LaunchOverhead)) > 0.10 {
		t.Errorf("fitted B = %v, true %v", perf.B, dev.GPU.LaunchOverhead)
	}
	if perf.MaxBatch < 8 || perf.MaxBatch > 48 {
		t.Errorf("GPU max batch = %d, want a generous batching regime", perf.MaxBatch)
	}
	if perf.LoadSSD < 900*time.Millisecond {
		t.Errorf("LoadSSD = %v, want ~1s", perf.LoadSSD)
	}
	if perf.LoadHost >= perf.LoadSSD {
		t.Error("host load should beat SSD load")
	}
}

func TestMeasureCPUSmallMaxBatch(t *testing.T) {
	// §3.3: the CPU's optimal batch size is small.
	for _, dev := range []*hw.Device{hw.NUMADevice(), hw.UMADevice()} {
		perf, err := Measure(dev, model.ResNet101, hw.CPU)
		if err != nil {
			t.Fatal(err)
		}
		if perf.MaxBatch < 2 || perf.MaxBatch > 16 {
			t.Errorf("%s CPU max batch = %d, want small (2–16)", dev.Name, perf.MaxBatch)
		}
	}
}

func TestMatrixCoversAllPairs(t *testing.T) {
	archs := []model.Architecture{model.ResNet101, model.YOLOv5m, model.YOLOv5l}
	pm, err := Matrix(hw.UMADevice(), archs)
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.Covers(archs); err != nil {
		t.Error(err)
	}
	if len(pm) != 6 {
		t.Errorf("matrix entries = %d, want 6", len(pm))
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// riseFallRunner yields throughput rising to a peak then falling — the
// §4.4 memory-contention shape.
func riseFallRunner(peak int) func(int) (float64, error) {
	return func(n int) (float64, error) {
		d := float64(n - peak)
		return 100 - d*d/float64(peak), nil
	}
}

func TestDecayWindowStopsAroundPeak(t *testing.T) {
	params := DefaultSearchParams(200)
	res, err := DecayWindow(params, riseFallRunner(40))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < params.FitPoints+1 {
		t.Fatalf("too few points: %d", len(res.Points))
	}
	if res.Deviation <= params.ErrorMargin {
		t.Errorf("search did not stop on deviation (%.3f)", res.Deviation)
	}
	// The peak (40) should sit at or before the selected window's upper
	// bound, and the window must not extend absurdly far.
	if res.WindowHi < 40-15 || res.WindowLo > 75 {
		t.Errorf("selected window [%d,%d] far from peak 40", res.WindowLo, res.WindowHi)
	}
	if res.Selected < res.WindowLo || res.Selected > res.WindowHi {
		t.Errorf("selected %d outside window [%d,%d]", res.Selected, res.WindowLo, res.WindowHi)
	}
}

func TestDecayWindowSlidesShrink(t *testing.T) {
	calls := 0
	res, err := DecayWindow(DefaultSearchParams(100), func(n int) (float64, error) {
		calls++
		return float64(calls), nil // linear per index: never deviates below trend
	})
	if err != nil {
		t.Fatal(err)
	}
	// Monotone throughput: sweep must run to MaxExperts and clamp.
	last := res.Points[len(res.Points)-1]
	if last.Experts != 100 {
		t.Errorf("sweep ended at %d, want clamp at 100", last.Experts)
	}
	// Window sizes must shrink (decay factor 0.85).
	for i := 2; i < len(res.Points); i++ {
		prev := res.Points[i-1].Experts - res.Points[i-2].Experts
		cur := res.Points[i].Experts - res.Points[i-1].Experts
		if cur > prev {
			t.Errorf("window grew: %d then %d", prev, cur)
		}
	}
}

func TestDecayWindowParamValidation(t *testing.T) {
	if _, err := DecayWindow(SearchParams{InitialWindow: 0, FitPoints: 3, MaxExperts: 10}, nil); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := DecayWindow(SearchParams{InitialWindow: 10, FitPoints: 1, MaxExperts: 50}, nil); err == nil {
		t.Error("single fit point accepted")
	}
	if _, err := DecayWindow(SearchParams{InitialWindow: 10, FitPoints: 3, MaxExperts: 5}, nil); err == nil {
		t.Error("max below window accepted")
	}
	wantErr := fmt.Errorf("boom")
	_, err := DecayWindow(DefaultSearchParams(100), func(int) (float64, error) { return 0, wantErr })
	if err == nil {
		t.Error("runner error swallowed")
	}
}

func TestTopologySweepPicksBest(t *testing.T) {
	points, best, err := TopologySweep(DefaultTopologies(3), func(g, c int) (float64, error) {
		// Peak at 3 GPUs, 1 CPU.
		return 10 - math.Abs(float64(g)-3) - 2*math.Abs(float64(c)-1), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d, want 6", len(points))
	}
	if points[best].GPUs != 3 || points[best].CPUs != 1 {
		t.Errorf("best = %dG+%dC, want 3G+1C", points[best].GPUs, points[best].CPUs)
	}
	if _, _, err := TopologySweep(nil, nil); err == nil {
		t.Error("empty sweep accepted")
	}
}
