package profiler

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// SearchParams configures the §4.4 decay-window memory-allocation
// search. The defaults mirror the paper's evaluation (initial window 15,
// 5 % linear error margin, Figure 18).
type SearchParams struct {
	// InitialWindow is the first window's size, in experts.
	InitialWindow int
	// ErrorMargin is Eq. 3's deviation threshold.
	ErrorMargin float64
	// FitPoints is N of Eq. 2: the number of leading throughput samples
	// the upward trend is fit on.
	FitPoints int
	// MaxExperts bounds the sweep (the device cannot load more).
	MaxExperts int
}

// DefaultSearchParams returns the paper's settings for a device able to
// hold at most maxExperts reference experts.
func DefaultSearchParams(maxExperts int) SearchParams {
	return SearchParams{
		InitialWindow: 15,
		ErrorMargin:   0.05,
		FitPoints:     3,
		MaxExperts:    maxExperts,
	}
}

// SearchPoint is one sample-inference measurement at a window boundary.
type SearchPoint struct {
	Experts    int
	Throughput float64
}

// SearchResult is the outcome of the decay-window search.
type SearchResult struct {
	// Points are the measurements at the upper bound of each window, in
	// sweep order (Figure 18's window points).
	Points []SearchPoint
	// WindowLo and WindowHi delimit the selected window.
	WindowLo, WindowHi int
	// Selected is the chosen expert-loading number. The paper selects
	// randomly within the window because "differences between values
	// within the window become negligible"; this implementation takes
	// the midpoint so runs are reproducible.
	Selected int
	// TrendK and TrendB are the Eq. 2 fit of the upward trend.
	TrendK, TrendB float64
	// Deviation is the Eq. 3 relative deviation that stopped the slide
	// (0 when the sweep exhausted MaxExperts without deviating).
	Deviation float64
}

// DecayWindow runs the sliding decay-window search (§4.4). The runner
// loads n experts, performs sample inference requests, and returns the
// measured throughput.
//
// The window starts at [0, InitialWindow]; each slide moves the lower
// bound to the previous upper bound and shrinks the size by the decay
// factor of Eq. 1 (1 - InitialWindow/100). Throughput is measured at
// each upper bound. After FitPoints measurements, the upward trend is
// fit linearly (Eq. 2); the slide stops at the first measurement whose
// shortfall from the trend exceeds ErrorMargin (Eq. 3).
func DecayWindow(params SearchParams, runner func(nExperts int) (float64, error)) (SearchResult, error) {
	if params.InitialWindow < 1 || params.InitialWindow >= 100 {
		return SearchResult{}, fmt.Errorf("profiler: initial window %d outside [1,100)", params.InitialWindow)
	}
	if params.FitPoints < 2 {
		return SearchResult{}, fmt.Errorf("profiler: need at least 2 fit points")
	}
	if params.MaxExperts <= params.InitialWindow {
		return SearchResult{}, fmt.Errorf("profiler: max experts %d not above initial window %d",
			params.MaxExperts, params.InitialWindow)
	}
	decay := 1 - float64(params.InitialWindow)/100

	var res SearchResult
	lower := 0
	size := float64(params.InitialWindow)
	for {
		upper := lower + int(math.Round(size))
		if upper <= lower {
			upper = lower + 1
		}
		clamped := false
		if upper >= params.MaxExperts {
			upper = params.MaxExperts
			clamped = true
		}
		tp, err := runner(upper)
		if err != nil {
			return res, fmt.Errorf("profiler: sample run at %d experts: %w", upper, err)
		}
		res.Points = append(res.Points, SearchPoint{Experts: upper, Throughput: tp})
		res.WindowLo, res.WindowHi = lower, upper

		if len(res.Points) > params.FitPoints {
			xs := make([]float64, params.FitPoints)
			ys := make([]float64, params.FitPoints)
			for i := 0; i < params.FitPoints; i++ {
				xs[i] = float64(i + 1)
				ys[i] = res.Points[i].Throughput
			}
			fit, err := stats.FitLine(xs, ys)
			if err != nil {
				return res, err
			}
			res.TrendK, res.TrendB = fit.K, fit.B
			predicted := fit.Predict(float64(len(res.Points)))
			if predicted > 0 {
				dev := (predicted - tp) / predicted
				if dev > params.ErrorMargin {
					res.Deviation = dev
					break
				}
			}
		}
		if clamped {
			break
		}
		lower = upper
		size *= decay
	}
	res.Selected = (res.WindowLo + res.WindowHi + 1) / 2
	if res.Selected < 1 {
		res.Selected = 1
	}
	return res, nil
}

// TopologyPoint is one executor-count measurement (Figure 17).
type TopologyPoint struct {
	GPUs, CPUs int
	Throughput float64
}

// TopologySweep measures throughput across executor topologies and
// returns the measurements plus the best configuration. Configs are
// evaluated in the given order; ties keep the earlier (smaller) config.
func TopologySweep(configs [][2]int, runner func(gpus, cpus int) (float64, error)) ([]TopologyPoint, int, error) {
	if len(configs) == 0 {
		return nil, 0, fmt.Errorf("profiler: no topologies to sweep")
	}
	points := make([]TopologyPoint, 0, len(configs))
	best := 0
	for i, cfg := range configs {
		tp, err := runner(cfg[0], cfg[1])
		if err != nil {
			return points, best, fmt.Errorf("profiler: topology %dG+%dC: %w", cfg[0], cfg[1], err)
		}
		points = append(points, TopologyPoint{GPUs: cfg[0], CPUs: cfg[1], Throughput: tp})
		if tp > points[best].Throughput {
			best = i
		}
	}
	return points, best, nil
}

// DefaultTopologies returns the paper's Figure 17 sweep: 1–5 GPU
// executors with one CPU executor, then the best GPU count with two.
func DefaultTopologies(bestGPUsSoFar int) [][2]int {
	return [][2]int{{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}, {bestGPUsSoFar, 2}}
}
