package control

import (
	"testing"
	"time"

	"repro/internal/coe"
	"repro/internal/sim"
)

// fakeView is a scripted data-plane view for policy tests.
type fakeView struct {
	queued  int
	predict time.Duration
}

func (v fakeView) Queued() int                               { return v.queued }
func (v fakeView) PredictLatency(*coe.Request) time.Duration { return v.predict }

var testReq = coe.NewRequest(0, 0, []coe.ExpertID{0})

func TestAcceptAllAdmitsEverything(t *testing.T) {
	var p AcceptAll
	for i := 0; i < 5; i++ {
		if !p.Admit(sim.Time(i), fakeView{queued: 1 << 20}, testReq) {
			t.Fatal("AcceptAll rejected a request")
		}
	}
}

func TestBoundedQueueRejectsAtBound(t *testing.T) {
	p, err := NewBoundedQueue(3)
	if err != nil {
		t.Fatal(err)
	}
	for queued, want := range map[int]bool{0: true, 2: true, 3: false, 10: false} {
		if got := p.Admit(0, fakeView{queued: queued}, testReq); got != want {
			t.Errorf("bound 3, queued %d: admit = %v, want %v", queued, got, want)
		}
	}
	if _, err := NewBoundedQueue(0); err == nil {
		t.Error("bound 0 accepted")
	}
}

func TestTokenBucketRateLimits(t *testing.T) {
	p, err := NewTokenBucket(10, 2) // 10 tokens/s, burst 2
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	p.Reset(now)
	// The burst admits two back-to-back requests, then the bucket is dry.
	if !p.Admit(now, fakeView{}, testReq) || !p.Admit(now, fakeView{}, testReq) {
		t.Fatal("burst not admitted")
	}
	if p.Admit(now, fakeView{}, testReq) {
		t.Fatal("third simultaneous request admitted past the burst")
	}
	// 100ms refills exactly one token at 10/s.
	now = now.Add(100 * time.Millisecond)
	if !p.Admit(now, fakeView{}, testReq) {
		t.Fatal("refilled token not admitted")
	}
	if p.Admit(now, fakeView{}, testReq) {
		t.Fatal("second request on one refilled token admitted")
	}
	// A long idle period refills only to the burst cap.
	now = now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if p.Admit(now, fakeView{}, testReq) {
			admitted++
		}
	}
	if admitted != 2 {
		t.Errorf("after long idle, %d admitted, want burst cap 2", admitted)
	}
}

func TestTokenBucketResetRefills(t *testing.T) {
	p, err := NewTokenBucket(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Reset(0)
	if !p.Admit(0, fakeView{}, testReq) || p.Admit(0, fakeView{}, testReq) {
		t.Fatal("bucket not drained")
	}
	p.Reset(0)
	if !p.Admit(0, fakeView{}, testReq) {
		t.Error("Reset did not refill the bucket")
	}
	if _, err := NewTokenBucket(0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewTokenBucket(1, 0); err == nil {
		t.Error("zero burst accepted")
	}
}

func TestDeadlineShedUsesPrediction(t *testing.T) {
	p, err := NewDeadlineShed(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Admit(0, fakeView{predict: 50 * time.Millisecond}, testReq) {
		t.Error("request predicted within deadline rejected")
	}
	if p.Admit(0, fakeView{predict: 150 * time.Millisecond}, testReq) {
		t.Error("request predicted past deadline admitted")
	}
	if _, err := NewDeadlineShed(0); err == nil {
		t.Error("zero objective accepted")
	}
}

func TestPolicyByName(t *testing.T) {
	opts := PolicyOptions{QueueBound: 8, Rate: 5, Burst: 2, Objective: time.Second}
	for name, want := range map[string]string{
		"":        "accept-all",
		"accept":  "accept-all",
		"bounded": "bounded-8",
		"token":   "token-5",
		"shed":    "shed-1s",
	} {
		p, err := PolicyByName(name, opts)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("%q: policy %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := PolicyByName("nope", opts); err == nil {
		t.Error("unknown policy name accepted")
	}
	if _, err := PolicyByName("bounded", PolicyOptions{}); err == nil {
		t.Error("bounded with zero bound accepted")
	}
}

func TestHysteresisScalerSteps(t *testing.T) {
	h, err := NewHysteresisScaler(0.3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		u        Utilization
		gpu, cpu int
		wantG    int
		wantC    int
		desc     string
	}{
		{Utilization{GPUBusy: 0.95, CPUBusy: 0.5}, 2, 1, 3, 1, "hot GPU grows"},
		{Utilization{GPUBusy: 0.1, CPUBusy: 0.1}, 3, 1, 2, 0, "idle both shrink"},
		{Utilization{GPUBusy: 0.5, CPUBusy: 0.5}, 2, 1, 2, 1, "dead band holds"},
		{Utilization{GPUBusy: 0.5, CPUBusy: 0.5, Queued: 7}, 2, 1, 3, 2, "backlog forces growth"},
		{Utilization{GPUBusy: 0.1, CPUBusy: 0.1, Queued: 7}, 2, 1, 2, 1, "backlog blocks shrink"},
		// A kind at zero reads busy 0 forever; a standing backlog must
		// revive it or its capacity is lost for the System's lifetime.
		{Utilization{GPUBusy: 0.5, CPUBusy: 0, Queued: 7}, 2, 0, 3, 1, "backlog revives parked kind"},
		{Utilization{GPUBusy: 0.1, CPUBusy: 0, Queued: 0}, 1, 0, 0, -1, "idle zero kind stays parked"},
	} {
		g, c := h.Scale(0, tc.u, tc.gpu, tc.cpu)
		if g != tc.wantG || c != tc.wantC {
			t.Errorf("%s: got %dG+%dC, want %dG+%dC", tc.desc, g, c, tc.wantG, tc.wantC)
		}
	}
	if _, err := NewHysteresisScaler(0.8, 0.3); err == nil {
		t.Error("inverted thresholds accepted")
	}
}
