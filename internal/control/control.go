// Package control is the serving layer's control plane: the admission
// decisions made as requests arrive (load shedding under overload) and
// the autoscaling decisions made between utilization windows. The data
// plane — dispatch, queueing, execution — lives in internal/core and
// internal/executor; this package only decides what the data plane may
// accept and how many executors it should keep active.
//
// Past the saturation knee an open-loop arrival process offers more
// work than the executors can drain: queues grow without bound and
// every request's latency — not just the marginal one's — collapses.
// Admission control converts that failure mode into an explicit
// decision: reject some requests early (cheaply, before they touch a
// queue) so the admitted ones still meet their objective. The policies
// here trade goodput against attainment in different ways: a bounded
// queue caps the backlog, a token bucket caps the admitted rate, and
// deadline shedding drops exactly the requests predicted to miss.
package control

import (
	"fmt"
	"time"

	"repro/internal/coe"
	"repro/internal/sim"
)

// View is the slice of data-plane state admission policies may consult.
// It is implemented by core.System; policies must treat it as read-only.
type View interface {
	// Queued reports the number of requests currently waiting in the
	// active executors' queues (excluding in-flight batches).
	Queued() int
	// PredictLatency predicts the end-to-end latency a request admitted
	// now would observe: the best queue's predicted finish time plus the
	// predicted cost of the request's current stage (sched.Queue.Predict),
	// plus optimistic predictions for its remaining stages.
	PredictLatency(r *coe.Request) time.Duration
}

// AdmissionPolicy decides, per arriving request, whether the data plane
// accepts it. Policies may keep state (a token bucket's fill level);
// Reset re-arms that state at the start of each served stream, so one
// policy instance follows a System across warm restarts. Policies are
// consulted from the simulation's arrival process and must be
// deterministic in virtual time.
type AdmissionPolicy interface {
	// Name identifies the policy in reports and tables.
	Name() string
	// Admit reports whether the request arriving at virtual time now is
	// accepted.
	Admit(now sim.Time, v View, r *coe.Request) bool
	// Reset re-arms per-stream state at stream start.
	Reset(now sim.Time)
}

// AcceptAll admits every request — the open-loop default, and the
// bit-compatibility baseline: a System configured with AcceptAll behaves
// byte-identically to one with no admission policy at all.
type AcceptAll struct{}

// Name implements AdmissionPolicy.
func (AcceptAll) Name() string { return "accept-all" }

// Admit implements AdmissionPolicy.
func (AcceptAll) Admit(sim.Time, View, *coe.Request) bool { return true }

// Reset implements AdmissionPolicy.
func (AcceptAll) Reset(sim.Time) {}

// BoundedQueue rejects arrivals while the system backlog is at its
// bound: the classic bounded-buffer admission rule. It caps queue memory
// and queueing delay at the cost of rejecting bursts the system could
// eventually have drained.
type BoundedQueue struct {
	// Max is the largest backlog (queued requests across active
	// executors) at which arrivals are still admitted.
	Max int
}

// NewBoundedQueue returns a bounded-queue policy rejecting arrivals once
// max requests are queued.
func NewBoundedQueue(max int) (*BoundedQueue, error) {
	if max < 1 {
		return nil, fmt.Errorf("control: queue bound %d must be at least 1", max)
	}
	return &BoundedQueue{Max: max}, nil
}

// Name implements AdmissionPolicy.
func (b *BoundedQueue) Name() string { return fmt.Sprintf("bounded-%d", b.Max) }

// Admit implements AdmissionPolicy.
func (b *BoundedQueue) Admit(_ sim.Time, v View, _ *coe.Request) bool {
	return v.Queued() < b.Max
}

// Reset implements AdmissionPolicy.
func (b *BoundedQueue) Reset(sim.Time) {}

// TokenBucket rate-limits admission to Rate requests per second of
// virtual time with bursts up to Burst: each admission spends one token,
// tokens refill continuously. Unlike BoundedQueue it is blind to queue
// state — it shapes the admitted arrival process itself, which keeps the
// backlog bounded whenever Rate is below the service capacity.
type TokenBucket struct {
	// Rate is the sustained admission rate in requests per second.
	Rate float64
	// Burst is the bucket capacity in tokens.
	Burst float64

	tokens float64
	last   sim.Time
	primed bool
}

// NewTokenBucket returns a token-bucket policy admitting rate requests
// per second with bursts up to burst.
func NewTokenBucket(rate, burst float64) (*TokenBucket, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("control: token rate %f must be positive", rate)
	}
	if burst < 1 {
		return nil, fmt.Errorf("control: token burst %f must be at least 1", burst)
	}
	return &TokenBucket{Rate: rate, Burst: burst}, nil
}

// Name implements AdmissionPolicy.
func (t *TokenBucket) Name() string { return fmt.Sprintf("token-%g", t.Rate) }

// Admit implements AdmissionPolicy.
func (t *TokenBucket) Admit(now sim.Time, _ View, _ *coe.Request) bool {
	if !t.primed {
		t.Reset(now)
	}
	t.tokens += now.Sub(t.last).Seconds() * t.Rate
	if t.tokens > t.Burst {
		t.tokens = t.Burst
	}
	t.last = now
	if t.tokens < 1 {
		return false
	}
	t.tokens--
	return true
}

// Reset implements AdmissionPolicy: the bucket starts a stream full.
func (t *TokenBucket) Reset(now sim.Time) {
	t.tokens, t.last, t.primed = t.Burst, now, true
}

// DeadlineShed drops requests predicted to miss their latency objective:
// using the scheduler's own latency prediction (sched.Queue.Predict via
// View.PredictLatency), a request whose best-case predicted completion
// already exceeds the objective is shed at admission instead of wasting
// executor time on a guaranteed SLO miss. Admitted requests therefore
// keep high attainment while goodput tracks capacity.
type DeadlineShed struct {
	// Objective is the per-request end-to-end latency deadline.
	Objective time.Duration
}

// NewDeadlineShed returns an SLO-aware shedding policy for the given
// latency objective.
func NewDeadlineShed(objective time.Duration) (*DeadlineShed, error) {
	if objective <= 0 {
		return nil, fmt.Errorf("control: shed objective %v must be positive", objective)
	}
	return &DeadlineShed{Objective: objective}, nil
}

// Name implements AdmissionPolicy.
func (d *DeadlineShed) Name() string { return fmt.Sprintf("shed-%v", d.Objective) }

// Admit implements AdmissionPolicy.
func (d *DeadlineShed) Admit(_ sim.Time, v View, r *coe.Request) bool {
	return v.PredictLatency(r) <= d.Objective
}

// Reset implements AdmissionPolicy.
func (d *DeadlineShed) Reset(sim.Time) {}

// PolicyOptions carries the knobs PolicyByName needs to build a policy.
type PolicyOptions struct {
	// QueueBound is the BoundedQueue backlog limit ("bounded").
	QueueBound int
	// Rate and Burst parameterize the TokenBucket ("token").
	Rate, Burst float64
	// Objective is the DeadlineShed latency deadline ("shed").
	Objective time.Duration
	// TenantRate and TenantBurst parameterize the per-tenant token
	// buckets of TenantQuota ("tenant-quota").
	TenantRate, TenantBurst float64
}

// PolicyByName builds an admission policy from its CLI name: "accept"
// (or ""), "bounded", "token", "shed", or "tenant-quota" (per-tenant
// token buckets over accept-all; wrap other inner policies with
// NewTenantQuota directly).
func PolicyByName(name string, opts PolicyOptions) (AdmissionPolicy, error) {
	switch name {
	case "", "accept", "accept-all":
		return AcceptAll{}, nil
	case "bounded":
		return NewBoundedQueue(opts.QueueBound)
	case "token":
		return NewTokenBucket(opts.Rate, opts.Burst)
	case "shed":
		return NewDeadlineShed(opts.Objective)
	case "tenant-quota":
		return NewTenantQuota(AcceptAll{}, opts.TenantRate, opts.TenantBurst)
	default:
		return nil, fmt.Errorf("control: unknown admission policy %q (want accept, bounded, token, shed, tenant-quota)", name)
	}
}
