package control

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Utilization summarizes one control window of data-plane activity: the
// input to autoscaling decisions. The serving layer samples it at every
// window boundary within a stream; between streams no extra sample is
// taken — the active counts simply persist into the next stream.
type Utilization struct {
	// Window is the interval the sample covers.
	Window time.Duration
	// GPUBusy and CPUBusy are the mean busy fractions of the active
	// executors of each kind over the window (0 when the kind has no
	// active executors).
	GPUBusy, CPUBusy float64
	// Queued is the backlog (queued requests across active executors) at
	// the window boundary.
	Queued int
}

// Autoscaler decides, per utilization window, how many executors of each
// kind the data plane should keep active. The serving layer clamps the
// returned counts to the built topology (at least one GPU executor, at
// most the configured counts); deactivated executors keep their expert
// pools warm, so scaling back up reuses loaded experts instead of
// cold-starting. Decisions run in virtual time and must be
// deterministic.
type Autoscaler interface {
	// Name identifies the autoscaler in reports.
	Name() string
	// Scale returns the desired active executor counts given the
	// window's utilization and the current active counts.
	Scale(now sim.Time, u Utilization, activeGPU, activeCPU int) (gpu, cpu int)
}

// HysteresisScaler grows the active set one executor at a time while
// utilization is above High (or a backlog has formed) and shrinks it
// while utilization is below Low with no backlog. The dead band between
// the thresholds prevents oscillation at steady load; bursty on/off
// traffic walks the active set up during ON windows and back down
// through OFF windows.
type HysteresisScaler struct {
	// Low and High are the busy-fraction thresholds (0 < Low < High <= 1).
	Low, High float64
}

// NewHysteresisScaler returns a hysteresis autoscaler with the given
// busy-fraction thresholds.
func NewHysteresisScaler(low, high float64) (*HysteresisScaler, error) {
	if low <= 0 || high <= low || high > 1 {
		return nil, fmt.Errorf("control: hysteresis thresholds (%f, %f) need 0 < low < high <= 1", low, high)
	}
	return &HysteresisScaler{Low: low, High: high}, nil
}

// Name implements Autoscaler.
func (h *HysteresisScaler) Name() string { return fmt.Sprintf("hysteresis-%g-%g", h.Low, h.High) }

// Scale implements Autoscaler: each kind steps independently on its own
// busy fraction; a standing backlog forces growth even when the busy
// sample straddles the dead band. A kind scaled to zero reads a busy
// fraction of zero forever, so a backlog alone revives it — otherwise
// capacity shed on a trickle would be lost for the System's lifetime.
func (h *HysteresisScaler) Scale(_ sim.Time, u Utilization, activeGPU, activeCPU int) (int, int) {
	step := func(active int, busy float64) int {
		switch {
		case busy > h.High || (u.Queued > 0 && (busy > h.Low || active == 0)):
			return active + 1
		case busy < h.Low && u.Queued == 0:
			return active - 1
		default:
			return active
		}
	}
	return step(activeGPU, u.GPUBusy), step(activeCPU, u.CPUBusy)
}
