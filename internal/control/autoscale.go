package control

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Utilization summarizes one control window of data-plane activity: the
// input to autoscaling decisions. The serving layer samples it at every
// window boundary within a stream; between streams no extra sample is
// taken — the active counts simply persist into the next stream.
type Utilization struct {
	// Window is the interval the sample covers.
	Window time.Duration
	// GPUBusy and CPUBusy are the mean busy fractions of the active
	// executors of each kind over the window (0 when the kind has no
	// active executors).
	GPUBusy, CPUBusy float64
	// Queued is the backlog (queued requests across active executors) at
	// the window boundary.
	Queued int
	// WorkingSet is the number of distinct experts dispatched during the
	// window — the width of the stream's current working set. Zero when
	// the serving layer does not track it.
	WorkingSet int
	// GPUPoolSlots and CPUPoolSlots estimate how many model-average
	// experts one executor's pool of each kind holds: the unit a
	// reachability-aware scaler prices surviving capacity in.
	GPUPoolSlots, CPUPoolSlots int
}

// HoldableExperts reports how many model-average experts the pools of
// gpu active GPU and cpu active CPU executors hold.
func (u Utilization) HoldableExperts(gpu, cpu int) int {
	return gpu*u.GPUPoolSlots + cpu*u.CPUPoolSlots
}

// Autoscaler decides, per utilization window, how many executors of each
// kind the data plane should keep active. The serving layer clamps the
// returned counts to the built topology (at least one GPU executor, at
// most the configured counts); deactivated executors keep their expert
// pools warm, so scaling back up reuses loaded experts instead of
// cold-starting. Decisions run in virtual time and must be
// deterministic.
type Autoscaler interface {
	// Name identifies the autoscaler in reports.
	Name() string
	// Scale returns the desired active executor counts given the
	// window's utilization and the current active counts.
	Scale(now sim.Time, u Utilization, activeGPU, activeCPU int) (gpu, cpu int)
}

// HysteresisScaler grows the active set one executor at a time while
// utilization is above High (or a backlog has formed) and shrinks it
// while utilization is below Low with no backlog. The dead band between
// the thresholds prevents oscillation at steady load; bursty on/off
// traffic walks the active set up during ON windows and back down
// through OFF windows.
type HysteresisScaler struct {
	// Low and High are the busy-fraction thresholds (0 < Low < High <= 1).
	Low, High float64
	// GuardReachability, when set, refuses a scale-down step whose
	// surviving pools could not hold the window's working set
	// (Utilization.WorkingSet vs HoldableExperts): shrinking below the
	// working set does not save capacity, it converts every saved
	// executor into a stream of expert switches on the survivors
	// (thrashing). No-op when the serving layer reports no working set.
	GuardReachability bool
}

// NewHysteresisScaler returns a hysteresis autoscaler with the given
// busy-fraction thresholds.
func NewHysteresisScaler(low, high float64) (*HysteresisScaler, error) {
	if low <= 0 || high <= low || high > 1 {
		return nil, fmt.Errorf("control: hysteresis thresholds (%f, %f) need 0 < low < high <= 1", low, high)
	}
	return &HysteresisScaler{Low: low, High: high}, nil
}

// NewReachableHysteresisScaler returns a hysteresis autoscaler with the
// reachability guard on: scale-down steps that would leave the
// surviving pools unable to hold the current working set are refused.
func NewReachableHysteresisScaler(low, high float64) (*HysteresisScaler, error) {
	h, err := NewHysteresisScaler(low, high)
	if err != nil {
		return nil, err
	}
	h.GuardReachability = true
	return h, nil
}

// Name implements Autoscaler.
func (h *HysteresisScaler) Name() string {
	name := fmt.Sprintf("hysteresis-%g-%g", h.Low, h.High)
	if h.GuardReachability {
		name += "+reach"
	}
	return name
}

// Scale implements Autoscaler: each kind steps independently on its own
// busy fraction; a standing backlog forces growth even when the busy
// sample straddles the dead band. A kind scaled to zero reads a busy
// fraction of zero forever, so a backlog alone revives it — otherwise
// capacity shed on a trickle would be lost for the System's lifetime.
// With GuardReachability set, a downward step is then vetoed if the
// surviving pools cannot hold the window's working set.
func (h *HysteresisScaler) Scale(_ sim.Time, u Utilization, activeGPU, activeCPU int) (int, int) {
	step := func(active int, busy float64) int {
		switch {
		case busy > h.High || (u.Queued > 0 && (busy > h.Low || active == 0)):
			return active + 1
		case busy < h.Low && u.Queued == 0:
			return active - 1
		default:
			return active
		}
	}
	g, c := step(activeGPU, u.GPUBusy), step(activeCPU, u.CPUBusy)
	if h.GuardReachability && u.WorkingSet > 0 {
		// Veto the GPU step against the tentative CPU count, then the CPU
		// step against the settled GPU count, so the pair that survives is
		// jointly reachable.
		if g < activeGPU && u.HoldableExperts(g, c) < u.WorkingSet {
			g = activeGPU
		}
		if c < activeCPU && u.HoldableExperts(g, c) < u.WorkingSet {
			c = activeCPU
		}
	}
	return g, c
}
