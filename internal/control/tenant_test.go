package control

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func sec(n int) sim.Time { return sim.Time(n) * sim.Time(time.Second) }

// TestTenantQuotaIndependentBuckets: one tenant exhausting its quota
// must not consume another tenant's tokens.
func TestTenantQuotaIndependentBuckets(t *testing.T) {
	q, err := NewTenantQuota(nil, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	q.Reset(0)
	v := fakeView{}
	// Tenant a burns its burst of 2 at t=0; the third is rejected.
	for i := 0; i < 2; i++ {
		if !q.AdmitTenant(0, v, testReq, "a") {
			t.Fatalf("tenant a admission %d rejected within burst", i)
		}
	}
	if q.AdmitTenant(0, v, testReq, "a") {
		t.Error("tenant a admitted past its burst")
	}
	// Tenant b still has a full bucket at the same instant.
	for i := 0; i < 2; i++ {
		if !q.AdmitTenant(0, v, testReq, "b") {
			t.Fatalf("tenant b admission %d rejected — bucket not independent", i)
		}
	}
	if q.AdmitTenant(0, v, testReq, "b") {
		t.Error("tenant b admitted past its burst")
	}
	// One virtual second refills one token for each tenant.
	if !q.AdmitTenant(sec(1), v, testReq, "a") || !q.AdmitTenant(sec(1), v, testReq, "b") {
		t.Error("refilled token not granted")
	}
	if q.AdmitTenant(sec(1), v, testReq, "a") {
		t.Error("tenant a got more than the refilled token")
	}
}

// TestTenantQuotaWrapsInner: the inner policy applies to quota-passed
// requests, and — the isolation guarantee — a tenant's over-quota flood
// never reaches or mutates shared inner state.
func TestTenantQuotaWrapsInner(t *testing.T) {
	inner, err := NewBoundedQueue(4)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewTenantQuota(inner, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	q.Reset(0)
	if q.AdmitTenant(0, fakeView{queued: 10}, testReq, "a") {
		t.Error("admitted through a full inner bounded queue")
	}
	if !strings.Contains(q.Name(), "bounded-4") {
		t.Errorf("Name %q does not surface the inner policy", q.Name())
	}

	// Isolation against a *stateful* inner policy: tenant a's flood must
	// be absorbed by a's bucket before it can drain the shared inner
	// token bucket, leaving tenant b's within-quota admission intact.
	shared, err := NewTokenBucket(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := NewTenantQuota(shared, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	q2.Reset(0)
	admitted := 0
	for i := 0; i < 100; i++ { // tenant a floods at one instant
		if q2.AdmitTenant(0, fakeView{}, testReq, "a") {
			admitted++
		}
	}
	if admitted != 1 {
		t.Errorf("flooding tenant admitted %d, want its quota of 1", admitted)
	}
	if !q2.AdmitTenant(0, fakeView{}, testReq, "b") {
		t.Error("tenant a's rejected flood drained the shared inner policy's state")
	}
}

// TestTenantQuotaUntaggedSharedBucket: untagged requests (Admit) share
// one bucket.
func TestTenantQuotaUntaggedSharedBucket(t *testing.T) {
	q, err := NewTenantQuota(nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	q.Reset(0)
	if !q.Admit(0, fakeView{}, testReq) {
		t.Fatal("first untagged request rejected")
	}
	if q.Admit(0, fakeView{}, testReq) {
		t.Error("untagged requests did not share a bucket")
	}
}

// TestTenantQuotaReset: Reset refills every tenant's bucket for the
// next stream.
func TestTenantQuotaReset(t *testing.T) {
	q, err := NewTenantQuota(nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	q.Reset(0)
	v := fakeView{}
	q.AdmitTenant(0, v, testReq, "a")
	q.AdmitTenant(0, v, testReq, "b")
	if q.AdmitTenant(0, v, testReq, "a") {
		t.Fatal("bucket not empty before reset")
	}
	q.Reset(sec(10))
	if !q.AdmitTenant(sec(10), v, testReq, "a") || !q.AdmitTenant(sec(10), v, testReq, "b") {
		t.Error("Reset did not refill tenant buckets")
	}
}

// TestTenantQuotaValidation mirrors the token bucket's constructor
// checks, and PolicyByName builds it.
func TestTenantQuotaValidation(t *testing.T) {
	if _, err := NewTenantQuota(nil, 0, 5); err == nil {
		t.Error("accepted zero rate")
	}
	if _, err := NewTenantQuota(nil, 1, 0.5); err == nil {
		t.Error("accepted burst below one")
	}
	p, err := PolicyByName("tenant-quota", PolicyOptions{TenantRate: 3, TenantBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*TenantQuota); !ok {
		t.Errorf("PolicyByName built %T", p)
	}
	if _, ok := p.(TenantAdmitter); !ok {
		t.Error("TenantQuota does not implement TenantAdmitter")
	}
}

// TestReachabilityGuardVetoesScaleDown: with the guard on, a downward
// step that leaves the surviving pools unable to hold the working set
// is refused; an affordable one proceeds.
func TestReachabilityGuardVetoesScaleDown(t *testing.T) {
	h, err := NewReachableHysteresisScaler(0.3, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(h.Name(), "+reach") {
		t.Errorf("Name %q does not mark the guard", h.Name())
	}
	// Idle fleet (busy below Low, no backlog) wants to shed one GPU and
	// one CPU executor. Working set of 50 experts; each GPU pool holds
	// 20, each CPU pool 10. The unguarded step to 2G+0C would leave 40
	// slots < 50; the guard keeps the GPU (3G+0C = 60 slots still holds
	// the set, so the CPU may go).
	u := Utilization{GPUBusy: 0.1, CPUBusy: 0.1, WorkingSet: 50, GPUPoolSlots: 20, CPUPoolSlots: 10}
	g, c := h.Scale(0, u, 3, 1)
	if g != 3 || c != 0 {
		t.Errorf("guarded scale-down to %dG+%dC, want 3G+0C", g, c)
	}
	if u.HoldableExperts(g, c) < u.WorkingSet {
		t.Errorf("guard let capacity fall below the working set: %d < %d", u.HoldableExperts(g, c), u.WorkingSet)
	}
	// When even the surviving GPU pools alone cannot absorb the CPU
	// side's share, both steps are refused.
	tight := Utilization{GPUBusy: 0.1, CPUBusy: 0.1, WorkingSet: 65, GPUPoolSlots: 20, CPUPoolSlots: 10}
	g, c = h.Scale(0, tight, 3, 1)
	if g != 3 || c != 1 {
		t.Errorf("tight working set scaled to %dG+%dC, want hold at 3G+1C", g, c)
	}
	// A narrow working set lets the same step through.
	u.WorkingSet = 30
	g, c = h.Scale(0, u, 3, 1)
	if g != 2 || c != 0 {
		t.Errorf("affordable scale-down gave %dG+%dC, want 2G+0C", g, c)
	}
	// The unguarded scaler sheds regardless.
	plain, err := NewHysteresisScaler(0.3, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	u.WorkingSet = 50
	g, c = plain.Scale(0, u, 3, 1)
	if g != 2 || c != 0 {
		t.Errorf("unguarded scale-down gave %dG+%dC, want 2G+0C", g, c)
	}
	// No working-set signal → the guard stands down.
	u.WorkingSet = 0
	g, c = h.Scale(0, u, 3, 1)
	if g != 2 || c != 0 {
		t.Errorf("guard without signal gave %dG+%dC, want 2G+0C", g, c)
	}
	// Scale-up is never vetoed.
	up := Utilization{GPUBusy: 0.95, CPUBusy: 0.95, WorkingSet: 1000, GPUPoolSlots: 1, CPUPoolSlots: 1}
	g, c = h.Scale(0, up, 2, 1)
	if g != 3 || c != 2 {
		t.Errorf("guard blocked scale-up: %dG+%dC", g, c)
	}
}
