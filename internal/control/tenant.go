package control

import (
	"fmt"

	"repro/internal/coe"
	"repro/internal/sim"
)

// TenantAdmitter is the tenant-aware extension of AdmissionPolicy: the
// serving layer prefers AdmitTenant over Admit when a policy implements
// it, passing the arriving request's tenant tag (empty for
// single-tenant streams). Plain policies are unaffected — the
// controller resolves the interface once per stream.
type TenantAdmitter interface {
	AdmissionPolicy
	// AdmitTenant reports whether the request arriving at virtual time
	// now under the given tenant is accepted.
	AdmitTenant(now sim.Time, v View, r *coe.Request, tenant string) bool
}

// TenantQuota wraps any admission policy with per-tenant token buckets:
// each tenant of a multi-tenant Mix is rate-limited to Rate requests
// per second (bursts up to Burst) independently, so one tenant's
// overload cannot starve the others' admission — over-quota floods are
// absorbed by the offender's own bucket before they can touch (or, for
// stateful policies like TokenBucket, drain) the shared inner policy,
// which applies only to what the quotas pass. Untagged requests
// (single-tenant streams) share one unnamed bucket, making the policy
// a plain per-stream rate limit there.
type TenantQuota struct {
	// Inner is the policy consulted after the tenant's quota admits the
	// request; AcceptAll for a pure quota.
	Inner AdmissionPolicy
	// Rate is each tenant's sustained admission rate in requests per
	// second; Burst is each tenant's bucket capacity in tokens.
	Rate, Burst float64

	innerTenant TenantAdmitter // Inner's tenant-aware interface, if any
	buckets     map[string]*TokenBucket
	order       []string // bucket creation order, for deterministic Reset
}

// NewTenantQuota returns a per-tenant quota policy wrapping inner
// (AcceptAll when nil).
func NewTenantQuota(inner AdmissionPolicy, rate, burst float64) (*TenantQuota, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("control: tenant quota rate %f must be positive", rate)
	}
	if burst < 1 {
		return nil, fmt.Errorf("control: tenant quota burst %f must be at least 1", burst)
	}
	if inner == nil {
		inner = AcceptAll{}
	}
	q := &TenantQuota{Inner: inner, Rate: rate, Burst: burst}
	q.innerTenant, _ = inner.(TenantAdmitter)
	return q, nil
}

// Name implements AdmissionPolicy.
func (q *TenantQuota) Name() string {
	return fmt.Sprintf("tenant-quota-%g/%s", q.Rate, q.Inner.Name())
}

// Admit implements AdmissionPolicy: untagged arrivals draw from the
// shared unnamed bucket.
func (q *TenantQuota) Admit(now sim.Time, v View, r *coe.Request) bool {
	return q.AdmitTenant(now, v, r, "")
}

// AdmitTenant implements TenantAdmitter: the tenant's bucket is
// consulted first, so a tenant's over-quota flood is absorbed by its
// own bucket and never reaches — or mutates — the shared inner policy.
// Only quota-admitted requests consult the inner policy; a request the
// inner policy then rejects has spent its token (the token is the
// tenant's right to offer a request to the shared policy at all).
func (q *TenantQuota) AdmitTenant(now sim.Time, v View, r *coe.Request, tenant string) bool {
	if !q.bucketFor(now, tenant).Admit(now, v, r) {
		return false
	}
	if q.innerTenant != nil {
		return q.innerTenant.AdmitTenant(now, v, r, tenant)
	}
	return q.Inner.Admit(now, v, r)
}

// bucketFor returns (creating and priming if needed) a tenant's bucket.
// A tenant first seen mid-stream starts with a full bucket, as if reset
// at stream start and left to refill — full either way, since refilling
// caps at Burst.
func (q *TenantQuota) bucketFor(now sim.Time, tenant string) *TokenBucket {
	b, ok := q.buckets[tenant]
	if !ok {
		if q.buckets == nil {
			q.buckets = make(map[string]*TokenBucket)
		}
		b = &TokenBucket{Rate: q.Rate, Burst: q.Burst}
		b.Reset(now)
		q.buckets[tenant] = b
		q.order = append(q.order, tenant)
	}
	return b
}

// Reset implements AdmissionPolicy: the inner policy and every known
// tenant bucket re-arm at stream start. Buckets are iterated in
// creation order so the reset is deterministic.
func (q *TenantQuota) Reset(now sim.Time) {
	q.Inner.Reset(now)
	for _, tenant := range q.order {
		q.buckets[tenant].Reset(now)
	}
}
