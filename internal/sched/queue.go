// Package sched implements CoServe's dependency-aware request scheduling
// (§4.2): per-executor request queues that group requests sharing an
// expert, prediction of the additional inference latency a request adds
// to a queue, assignment policies (round-robin and Samba-style FCFS
// baselines, and CoServe's minimize-max-finish-time assigner), and the
// batch-splitting bound.
package sched

import (
	"fmt"
	"time"

	"repro/internal/coe"
	"repro/internal/sim"
)

// Mode selects how a queue arranges incoming requests.
type Mode int

const (
	// ModeFIFO appends requests in arrival order; only requests that
	// happen to arrive back-to-back for the same expert batch together
	// (Samba-CoE behavior, Figure 3).
	ModeFIFO Mode = iota
	// ModeGrouped arranges each request behind the last queued request
	// using the same expert (§4.2 "request arranging", Figure 9).
	ModeGrouped
)

func (m Mode) String() string {
	switch m {
	case ModeFIFO:
		return "fifo"
	case ModeGrouped:
		return "grouped"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Costs supplies the profiled quantities predictions need: the linear
// execution coefficients of the queue's processor, the predicted expert
// switch latency, and pool residency.
type Costs struct {
	// K and B return the §4.2 execution-latency coefficients for the
	// expert's architecture on this queue's processor.
	K func(e *coe.Expert) time.Duration
	B func(e *coe.Expert) time.Duration
	// PredictLoad returns the expected switch latency if the expert had
	// to be loaded now (0 is never returned here; residency is the
	// IsLoaded short-circuit).
	PredictLoad func(e *coe.Expert) time.Duration
	// IsLoaded reports residency in this queue's executor pool.
	IsLoaded func(id coe.ExpertID) bool
}

// Group is a run of queued requests that use the same expert. Once an
// executor starts draining a group it is marked started; later arrivals
// for the same expert form a fresh group right behind it.
type Group struct {
	Expert *coe.Expert
	items  []*coe.Request
	// off is the drained prefix of items: TakeFromHead advances it
	// instead of re-slicing, so a recycled group keeps its full item
	// capacity (see Queue.retire).
	off     int
	base    time.Duration // predicted one-time cost: B + switch
	perItem time.Duration // predicted per-request cost: K
	started bool
}

// Len reports the number of requests still in the group.
func (g *Group) Len() int { return len(g.items) - g.off }

// Started reports whether an executor has begun draining the group.
func (g *Group) Started() bool { return g.started }

// PredictedRemaining reports the predicted time to finish the group's
// remaining items, including the one-time cost if not started.
func (g *Group) PredictedRemaining() time.Duration {
	d := g.perItem * time.Duration(g.Len())
	if !g.started {
		d += g.base
	}
	return d
}

// expertIndex tracks one expert's standing in a queue so the per-arrival
// questions — "is there a group to merge into?" (mergeTarget) and "does
// any group use this expert?" (hasExpert) — are O(1) instead of a scan
// over all groups. MinMax assignment asks them once per queue per
// arrival, so at high arrival rates this is the per-request scheduling
// cost.
type expertIndex struct {
	// groups counts queued groups (started or not) using the expert.
	groups int
	// open is the expert's unstarted group accepting merges, if any.
	// In grouped mode at most one exists and it is the latest group for
	// the expert; FIFO mode does not use it (only the tail group merges).
	open *Group
}

// Queue is one executor's request queue.
type Queue struct {
	name  string
	mode  Mode
	costs Costs
	gate  *sim.Gate

	groups  []*Group
	items   int
	pending time.Duration // predicted cost of all unstarted groups

	// index maps expert -> standing in this queue. Entries are zeroed
	// rather than deleted when an expert drains: the expert set of a
	// model is small and fixed, so keeping them avoids re-allocating map
	// entries across warm-restarted streams.
	index map[coe.ExpertID]*expertIndex

	// Drained groups are recycled so a long stream enqueues into a
	// steady-state set of Group objects instead of allocating one per
	// fresh group. retired is the most recently drained group; it moves
	// to free (and is wiped) only when the NEXT group drains, because the
	// executor that drained it may still hold its pointer — and batch
	// slices aliasing its item array — until its next TakeFromHead.
	retired *Group
	free    []*Group

	busyUntil sim.Time
}

// NewQueue returns an empty queue.
func NewQueue(env *sim.Env, name string, mode Mode, costs Costs) *Queue {
	if costs.K == nil || costs.B == nil || costs.PredictLoad == nil || costs.IsLoaded == nil {
		panic("sched: queue costs incomplete")
	}
	return &Queue{
		name: name, mode: mode, costs: costs,
		gate:  sim.NewGate(env),
		index: make(map[coe.ExpertID]*expertIndex),
	}
}

// Name reports the queue name.
func (q *Queue) Name() string { return q.name }

// Mode reports the queue's arranging mode.
func (q *Queue) Mode() Mode { return q.mode }

// Gate returns the gate the owning executor sleeps on; Enqueue notifies
// it.
func (q *Queue) Gate() *sim.Gate { return q.gate }

// Len reports the number of queued requests.
func (q *Queue) Len() int { return q.items }

// Empty reports whether no requests are queued.
func (q *Queue) Empty() bool { return q.items == 0 }

// Groups reports the number of queued groups.
func (q *Queue) Groups() int { return len(q.groups) }

// Pending reports the predicted time to drain all unstarted groups.
func (q *Queue) Pending() time.Duration { return q.pending }

// SetBusyUntil records the executor's predicted completion time of
// in-flight work (the started head group).
func (q *Queue) SetBusyUntil(t sim.Time) { q.busyUntil = t }

// FinishTime predicts when the queue's executor goes idle: in-flight
// work plus all unstarted groups (the queue "length" of Figure 8).
func (q *Queue) FinishTime(now sim.Time) sim.Time {
	base := now
	if q.busyUntil > base {
		base = q.busyUntil
	}
	return base.Add(q.pending)
}

// indexFor returns (creating if needed) the expert's index entry.
func (q *Queue) indexFor(e coe.ExpertID) *expertIndex {
	ix := q.index[e]
	if ix == nil {
		ix = &expertIndex{}
		q.index[e] = ix
	}
	return ix
}

// mergeTarget finds the group a new request for expert e would join, or
// nil if it needs a fresh group. Only unstarted groups accept merges.
// O(1): grouped mode consults the expert index, FIFO mode the tail.
func (q *Queue) mergeTarget(e coe.ExpertID) *Group {
	switch q.mode {
	case ModeGrouped:
		if ix := q.index[e]; ix != nil && ix.open != nil {
			return ix.open
		}
	case ModeFIFO:
		if n := len(q.groups); n > 0 {
			tail := q.groups[n-1]
			if tail.Expert.ID == e && !tail.started {
				return tail
			}
		}
	}
	return nil
}

// hasExpert reports whether any group (started or not) uses the expert.
func (q *Queue) hasExpert(e coe.ExpertID) bool {
	ix := q.index[e]
	return ix != nil && ix.groups > 0
}

// Predict computes the additional inference latency the request would
// add to this queue (§4.2): K when it joins an existing group of the
// same expert; K + B for a fresh group; plus the expert switching
// latency, which is zero when the expert is resident or the queue
// already contains requests for it, and the predicted load latency
// otherwise.
func (q *Queue) Predict(e *coe.Expert) time.Duration {
	cost := q.costs.K(e)
	if q.mergeTarget(e.ID) != nil {
		return cost
	}
	cost += q.costs.B(e)
	if !q.costs.IsLoaded(e.ID) && !q.hasExpert(e.ID) {
		cost += q.costs.PredictLoad(e)
	}
	return cost
}

// Enqueue adds the request, arranging per the queue mode, updates the
// pending prediction, and wakes the executor.
func (q *Queue) Enqueue(e *coe.Expert, r *coe.Request) {
	k := q.costs.K(e)
	if g := q.mergeTarget(e.ID); g != nil {
		g.items = append(g.items, r)
		q.pending += k
	} else {
		g := q.newGroup()
		g.Expert, g.perItem, g.base = e, k, q.costs.B(e)
		if !q.costs.IsLoaded(e.ID) && !q.hasExpert(e.ID) {
			g.base += q.costs.PredictLoad(e)
		}
		g.items = append(g.items, r)
		q.insertGroup(g)
		ix := q.indexFor(e.ID)
		ix.groups++
		if q.mode == ModeGrouped {
			ix.open = g
		}
		q.pending += g.base + k
	}
	q.items++
	q.gate.Notify()
}

// newGroup pops a recycled group or allocates a fresh one. Recycled
// groups were wiped in retire and keep their item capacity.
func (q *Queue) newGroup() *Group {
	if n := len(q.free); n > 0 {
		g := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return g
	}
	return &Group{}
}

// retire recycles a drained group one drain late: g itself parks in
// retired, and the previously retired group — whose last consumer has
// by now moved past it — is wiped and pushed on the free list. The lag
// guarantees a group is never handed back to Enqueue while the executor
// that drained it can still observe its pointer or a batch slice
// aliasing its item array.
func (q *Queue) retire(g *Group) {
	if p := q.retired; p != nil {
		clear(p.items)
		p.items = p.items[:0]
		p.off = 0
		p.Expert = nil
		p.base, p.perItem = 0, 0
		p.started = false
		q.free = append(q.free, p)
	}
	q.retired = g
}

// insertGroup places a fresh group: normally at the tail, but a group
// whose expert matches the started head group slots in right behind it,
// so the already-loaded expert keeps serving ("arranged to follow
// existing requests utilizing the same expert").
func (q *Queue) insertGroup(g *Group) {
	if len(q.groups) > 0 && q.groups[0].started && q.groups[0].Expert.ID == g.Expert.ID {
		q.groups = append(q.groups, nil)
		copy(q.groups[2:], q.groups[1:])
		q.groups[1] = g
		return
	}
	q.groups = append(q.groups, g)
}

// Head returns the head group without removing it, or nil when empty.
func (q *Queue) Head() *Group {
	if len(q.groups) == 0 {
		return nil
	}
	return q.groups[0]
}

// TakeFromHead marks the head group started (removing its prediction
// from pending — the executor now accounts for it via SetBusyUntil) and
// removes up to n of its requests, dropping the group once drained.
func (q *Queue) TakeFromHead(n int) []*coe.Request {
	if len(q.groups) == 0 || n < 1 {
		return nil
	}
	g := q.groups[0]
	if !g.started {
		g.started = true
		if ix := q.index[g.Expert.ID]; ix != nil && ix.open == g {
			ix.open = nil
		}
		q.pending -= g.base + g.perItem*time.Duration(g.Len())
	}
	if n > g.Len() {
		n = g.Len()
	}
	batch := g.items[g.off : g.off+n : g.off+n]
	g.off += n
	q.items -= n
	if g.Len() == 0 {
		q.index[g.Expert.ID].groups--
		copy(q.groups, q.groups[1:])
		q.groups[len(q.groups)-1] = nil
		q.groups = q.groups[:len(q.groups)-1]
		q.retire(g)
	}
	return batch
}

// Purge removes every queued request — the started head group's
// undrained tail included — and returns them in queue order: the crash
// path, which voids a dead node's backlog so the dispatcher can
// redeliver it elsewhere. The purged Group objects are dropped on the
// floor rather than recycled: an executor may still hold the head
// group's pointer and a batch slice aliasing its item array mid-
// execution, so wiping them here would corrupt an in-flight batch (the
// leak is bounded by the crash count, and crashes are rare). The free
// list and the retired slot are untouched — their groups were wiped
// under the normal one-drain-late protocol and stay safe to reuse.
func (q *Queue) Purge() []*coe.Request {
	if len(q.groups) == 0 {
		return nil
	}
	out := make([]*coe.Request, 0, q.items)
	for i, g := range q.groups {
		out = append(out, g.items[g.off:]...)
		q.groups[i] = nil
	}
	q.groups = q.groups[:0]
	q.items = 0
	q.pending = 0
	//detlint:allow field reset only: every entry is zeroed identically, nothing observes the order
	for _, ix := range q.index {
		ix.groups = 0
		ix.open = nil
	}
	return out
}

// SplitBound computes the current maximum executable batch size (§4.2
// "request splitting"): the smaller of the profiled maximum batch size
// and the largest batch the free activation memory accommodates, never
// below 1 (the executor blocks on memory for a single image if needed).
func SplitBound(profiledMax int, freeBytes, perImageBytes int64) int {
	if profiledMax < 1 {
		profiledMax = 1
	}
	if perImageBytes <= 0 {
		return profiledMax
	}
	memMax := int(freeBytes / perImageBytes)
	if memMax < 1 {
		memMax = 1
	}
	if memMax < profiledMax {
		return memMax
	}
	return profiledMax
}
