package sched

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/coe"
	"repro/internal/model"
	"repro/internal/sim"
)

const (
	testK    = 2 * time.Millisecond
	testB    = 5 * time.Millisecond
	testLoad = 1 * time.Second
)

// testQueue builds a queue with constant costs; loaded experts are
// listed in resident.
func testQueue(t *testing.T, env *sim.Env, mode Mode, resident ...coe.ExpertID) *Queue {
	t.Helper()
	set := make(map[coe.ExpertID]bool)
	for _, id := range resident {
		set[id] = true
	}
	return NewQueue(env, "q", mode, Costs{
		K:           func(*coe.Expert) time.Duration { return testK },
		B:           func(*coe.Expert) time.Duration { return testB },
		PredictLoad: func(*coe.Expert) time.Duration { return testLoad },
		IsLoaded:    func(id coe.ExpertID) bool { return set[id] },
	})
}

func expert(id coe.ExpertID) *coe.Expert {
	return &coe.Expert{ID: id, Name: "e", Arch: model.ResNet101}
}

func req(id int64, e coe.ExpertID) *coe.Request {
	return coe.NewRequest(id, 0, []coe.ExpertID{e})
}

func TestPredictCostsPerPaper(t *testing.T) {
	env := sim.NewEnv()
	q := testQueue(t, env, ModeGrouped, 7)
	// Fresh expert, not loaded: K + B + load.
	if got := q.Predict(expert(1)); got != testK+testB+testLoad {
		t.Errorf("unloaded fresh = %v, want %v", got, testK+testB+testLoad)
	}
	// Fresh group for a loaded expert: K + B, no switch.
	if got := q.Predict(expert(7)); got != testK+testB {
		t.Errorf("loaded fresh = %v, want %v", got, testK+testB)
	}
	// After enqueueing expert 1, another request for it merges: just K.
	q.Enqueue(expert(1), req(0, 1))
	if got := q.Predict(expert(1)); got != testK {
		t.Errorf("merge = %v, want %v", got, testK)
	}
	// A different unloaded expert whose requests are queued avoids only
	// the switch (second zero-switch condition of §4.2).
	q.Enqueue(expert(2), req(1, 2))
	q.Enqueue(expert(1), req(2, 1)) // head grows; expert 2 group not last
	if got := q.Predict(expert(2)); got != testK {
		t.Errorf("grouped merge across groups = %v, want K=%v", got, testK)
	}
}

func TestEnqueuePendingMatchesPredict(t *testing.T) {
	env := sim.NewEnv()
	q := testQueue(t, env, ModeGrouped)
	var want time.Duration
	for i := 0; i < 10; i++ {
		e := expert(coe.ExpertID(i % 3))
		want += q.Predict(e)
		q.Enqueue(e, req(int64(i), e.ID))
	}
	if q.Pending() != want {
		t.Errorf("pending = %v, want sum of predictions %v", q.Pending(), want)
	}
	if q.Len() != 10 {
		t.Errorf("len = %d, want 10", q.Len())
	}
}

func TestGroupedArrangingGroupsSameExpert(t *testing.T) {
	env := sim.NewEnv()
	q := testQueue(t, env, ModeGrouped)
	// Interleaved arrivals: 1,2,1,2,1 -> two groups.
	for i, e := range []coe.ExpertID{1, 2, 1, 2, 1} {
		q.Enqueue(expert(e), req(int64(i), e))
	}
	if q.Groups() != 2 {
		t.Fatalf("groups = %d, want 2", q.Groups())
	}
	if q.Head().Expert.ID != 1 || q.Head().Len() != 3 {
		t.Errorf("head group = expert %d x%d, want expert 1 x3", q.Head().Expert.ID, q.Head().Len())
	}
}

func TestFIFOArrangingOnlyMergesTail(t *testing.T) {
	env := sim.NewEnv()
	q := testQueue(t, env, ModeFIFO)
	for i, e := range []coe.ExpertID{1, 1, 2, 1, 1} {
		q.Enqueue(expert(e), req(int64(i), e))
	}
	// FIFO: [1 1] [2] [1 1] -> 3 groups, preserving arrival order.
	if q.Groups() != 3 {
		t.Fatalf("groups = %d, want 3", q.Groups())
	}
	if q.Head().Len() != 2 {
		t.Errorf("head len = %d, want 2", q.Head().Len())
	}
}

func TestArrangingPreservesMultiset(t *testing.T) {
	env := sim.NewEnv()
	for _, mode := range []Mode{ModeFIFO, ModeGrouped} {
		q := testQueue(t, env, mode)
		want := map[int64]bool{}
		seq := []coe.ExpertID{3, 1, 3, 2, 2, 3, 1}
		for i, e := range seq {
			q.Enqueue(expert(e), req(int64(i), e))
			want[int64(i)] = true
		}
		got := map[int64]bool{}
		for !q.Empty() {
			for _, r := range q.TakeFromHead(100) {
				if got[r.ID] {
					t.Fatalf("%v: request %d dequeued twice", mode, r.ID)
				}
				got[r.ID] = true
			}
		}
		if len(got) != len(want) {
			t.Errorf("%v: dequeued %d of %d requests", mode, len(got), len(want))
		}
	}
}

func TestTakeFromHeadDrainsPending(t *testing.T) {
	env := sim.NewEnv()
	q := testQueue(t, env, ModeGrouped)
	for i := 0; i < 6; i++ {
		e := expert(coe.ExpertID(i % 2))
		q.Enqueue(e, req(int64(i), e.ID))
	}
	for !q.Empty() {
		q.TakeFromHead(2)
	}
	if q.Pending() != 0 {
		t.Errorf("pending = %v after drain, want 0", q.Pending())
	}
	if q.Groups() != 0 || q.Len() != 0 {
		t.Errorf("groups/len = %d/%d after drain", q.Groups(), q.Len())
	}
}

func TestStartedGroupNotMerged(t *testing.T) {
	env := sim.NewEnv()
	q := testQueue(t, env, ModeGrouped)
	q.Enqueue(expert(1), req(0, 1))
	q.Enqueue(expert(1), req(1, 1))
	got := q.TakeFromHead(1) // starts the group, takes req 0
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("TakeFromHead = %v", got)
	}
	q.Enqueue(expert(1), req(2, 1))
	// The started head group must not have absorbed request 2...
	if q.Head().Len() != 1 {
		t.Errorf("started head has %d items, want 1", q.Head().Len())
	}
	// ...but the fresh group slots right behind the head.
	if q.Groups() != 2 {
		t.Errorf("groups = %d, want 2", q.Groups())
	}
}

func TestFreshGroupBehindStartedHeadOfSameExpert(t *testing.T) {
	env := sim.NewEnv()
	q := testQueue(t, env, ModeGrouped)
	q.Enqueue(expert(1), req(0, 1))
	q.Enqueue(expert(2), req(1, 2))
	q.TakeFromHead(1) // drains group 1 entirely? No: group had 1 item -> removed.
	// Head is now expert 2. Start it.
	if q.Head().Expert.ID != 2 {
		t.Fatalf("head = %d, want 2", q.Head().Expert.ID)
	}
	q.Enqueue(expert(3), req(2, 3))
	q.TakeFromHead(0) // no-op
	taken := q.TakeFromHead(1)
	if len(taken) != 1 || taken[0].ID != 1 {
		t.Fatalf("taken = %v", taken)
	}
	// Queue: [3]. Nothing started. Enqueue 3 merges.
	q.Enqueue(expert(3), req(3, 3))
	if q.Groups() != 1 || q.Head().Len() != 2 {
		t.Errorf("groups=%d headLen=%d, want 1/2", q.Groups(), q.Head().Len())
	}
}

func TestInsertBehindStartedHead(t *testing.T) {
	env := sim.NewEnv()
	q := testQueue(t, env, ModeGrouped)
	q.Enqueue(expert(1), req(0, 1))
	q.Enqueue(expert(1), req(1, 1))
	q.Enqueue(expert(2), req(2, 2))
	q.TakeFromHead(1) // head (expert 1) started, 1 item left
	q.Enqueue(expert(1), req(3, 1))
	// Expected order: started head [1], fresh [1], then [2].
	if q.Groups() != 3 {
		t.Fatalf("groups = %d, want 3", q.Groups())
	}
	q.TakeFromHead(10) // drain started head
	if q.Head().Expert.ID != 1 {
		t.Errorf("second group expert = %d, want 1 (inserted behind head)", q.Head().Expert.ID)
	}
}

func TestFinishTime(t *testing.T) {
	env := sim.NewEnv()
	q := testQueue(t, env, ModeGrouped)
	now := sim.Time(10 * time.Second)
	if q.FinishTime(now) != now {
		t.Error("empty queue finish != now")
	}
	q.Enqueue(expert(1), req(0, 1))
	want := now.Add(testK + testB + testLoad)
	if q.FinishTime(now) != want {
		t.Errorf("finish = %v, want %v", q.FinishTime(now), want)
	}
	q.SetBusyUntil(now.Add(time.Minute))
	if q.FinishTime(now) != now.Add(time.Minute+testK+testB+testLoad) {
		t.Errorf("finish with busy executor = %v", q.FinishTime(now))
	}
	// busyUntil in the past is clamped to now.
	if q.FinishTime(now.Add(2*time.Minute)) != now.Add(2*time.Minute+testK+testB+testLoad) {
		t.Error("past busyUntil not clamped")
	}
}

func TestSingleAndRoundRobinAssigners(t *testing.T) {
	env := sim.NewEnv()
	qs := []*Queue{testQueue(t, env, ModeFIFO), testQueue(t, env, ModeFIFO), testQueue(t, env, ModeFIFO)}
	s := Single{}
	for i := 0; i < 5; i++ {
		if s.Pick(0, qs, expert(1)) != 0 {
			t.Fatal("Single picked non-zero queue")
		}
	}
	rr := &RoundRobin{}
	var picks []int
	for i := 0; i < 6; i++ {
		picks = append(picks, rr.Pick(0, qs, expert(1)))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("round robin picks = %v", picks)
		}
	}
}

func TestMinMaxPrefersShortQueue(t *testing.T) {
	env := sim.NewEnv()
	q0 := testQueue(t, env, ModeGrouped)
	q1 := testQueue(t, env, ModeGrouped)
	// Load q0 with a long backlog.
	for i := 0; i < 50; i++ {
		q0.Enqueue(expert(coe.ExpertID(i)), req(int64(i), coe.ExpertID(i)))
	}
	mm := MinMax{}
	if got := mm.Pick(0, []*Queue{q0, q1}, expert(100)); got != 1 {
		t.Errorf("MinMax picked queue %d, want 1", got)
	}
}

func TestMinMaxTieBreaksBySmallestAddition(t *testing.T) {
	// Figure 8: when several assignments yield the same total time, the
	// queue with the smallest added latency wins. Queue 2 holds the
	// maximum; queues 0 and 1 are shorter. Queue 1 already groups the
	// expert (cheap merge), so it must win over queue 0.
	env := sim.NewEnv()
	q0 := testQueue(t, env, ModeGrouped)
	q1 := testQueue(t, env, ModeGrouped)
	q2 := testQueue(t, env, ModeGrouped)
	q1.Enqueue(expert(5), req(0, 5))
	for i := 0; i < 80; i++ {
		q2.Enqueue(expert(coe.ExpertID(10+i)), req(int64(1+i), coe.ExpertID(10+i)))
	}
	mm := MinMax{}
	if got := mm.Pick(0, []*Queue{q0, q1, q2}, expert(5)); got != 1 {
		t.Errorf("MinMax picked queue %d, want 1 (smallest addition)", got)
	}
}

// Property: MinMax minimizes the resulting max finish time over all
// queues, compared against brute force.
func TestMinMaxOptimalProperty(t *testing.T) {
	prop := func(backlogs [4]uint8, eRaw uint8) bool {
		env := sim.NewEnv()
		qs := make([]*Queue, 4)
		id := int64(0)
		for i := range qs {
			qs[i] = testQueue(t, env, ModeGrouped)
			for j := 0; j < int(backlogs[i]%16); j++ {
				e := coe.ExpertID(i*100 + j%5)
				qs[i].Enqueue(expert(e), req(id, e))
				id++
			}
		}
		e := expert(coe.ExpertID(eRaw % 8))
		pick := MinMax{}.Pick(0, qs, e)

		// Brute force the optimal total.
		bestTotal := sim.Time(1<<62 - 1)
		for i := range qs {
			total := qs[i].FinishTime(0).Add(qs[i].Predict(e))
			for j := range qs {
				if j != i && qs[j].FinishTime(0) > total {
					total = qs[j].FinishTime(0)
				}
			}
			if total < bestTotal {
				bestTotal = total
			}
		}
		total := qs[pick].FinishTime(0).Add(qs[pick].Predict(e))
		for j := range qs {
			if j != pick && qs[j].FinishTime(0) > total {
				total = qs[j].FinishTime(0)
			}
		}
		return total == bestTotal
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReplayAssigner(t *testing.T) {
	r := NewReplay([]int{2, 0, 1})
	env := sim.NewEnv()
	qs := []*Queue{testQueue(t, env, ModeFIFO), testQueue(t, env, ModeFIFO), testQueue(t, env, ModeFIFO)}
	for _, want := range []int{2, 0, 1} {
		if got := r.Pick(0, qs, expert(1)); got != want {
			t.Fatalf("replay pick = %d, want %d", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on exhausted replay")
		}
	}()
	r.Pick(0, qs, expert(1))
}

func TestSplitBound(t *testing.T) {
	cases := []struct {
		profiled  int
		free, per int64
		want      int
	}{
		{16, 1 << 30, 100 << 20, 10}, // memory-bound: 1 GiB / 100 MiB
		{8, 1 << 30, 100 << 20, 8},   // profile-bound
		{16, 0, 100 << 20, 1},        // no memory: still 1 (executor blocks)
		{0, 1 << 30, 100 << 20, 1},   // degenerate profile clamps to 1
		{16, 1 << 30, 0, 16},         // no per-image cost: profile rules
	}
	for i, c := range cases {
		if got := SplitBound(c.profiled, c.free, c.per); got != c.want {
			t.Errorf("case %d: SplitBound = %d, want %d", i, got, c.want)
		}
	}
}

func TestGatesNotifyOnEnqueue(t *testing.T) {
	env := sim.NewEnv()
	q := testQueue(t, env, ModeGrouped)
	var woke bool
	env.Go("exec", func(p *sim.Proc) {
		q.Gate().Wait(p)
		woke = true
	})
	env.Go("ctrl", func(p *sim.Proc) {
		p.Sleep(time.Second)
		q.Enqueue(expert(1), req(0, 1))
	})
	env.Run()
	if !woke {
		t.Error("executor not woken by enqueue")
	}
}

func TestModeStrings(t *testing.T) {
	if ModeFIFO.String() != "fifo" || ModeGrouped.String() != "grouped" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestByExpertPartitions(t *testing.T) {
	env := sim.NewEnv()
	qs := []*Queue{testQueue(t, env, ModeFIFO), testQueue(t, env, ModeFIFO), testQueue(t, env, ModeFIFO)}
	a := ByExpert{}
	// Same expert always lands on the same queue; distinct experts spread.
	seen := map[coe.ExpertID]int{}
	for trial := 0; trial < 3; trial++ {
		for id := coe.ExpertID(0); id < 9; id++ {
			pick := a.Pick(0, qs, expert(id))
			if prev, ok := seen[id]; ok && prev != pick {
				t.Fatalf("expert %d moved from queue %d to %d", id, prev, pick)
			}
			seen[id] = pick
		}
	}
	used := map[int]bool{}
	for _, q := range seen {
		used[q] = true
	}
	if len(used) != 3 {
		t.Errorf("partition used %d of 3 queues", len(used))
	}
	if a.Name() != "by-expert" {
		t.Error("name wrong")
	}
}

// TestExpertIndexConsistency drives a randomized enqueue/take workload
// and checks the expert index agrees with a linear scan of the groups —
// the invariant that lets mergeTarget, hasExpert, and Predict skip the
// scan.
func TestExpertIndexConsistency(t *testing.T) {
	for _, mode := range []Mode{ModeGrouped, ModeFIFO} {
		env := sim.NewEnv()
		q := testQueue(t, env, mode)
		seq := int64(0)
		for step := 0; step < 2000; step++ {
			id := coe.ExpertID(step * 7919 % 13)
			if step%5 == 4 {
				q.TakeFromHead(1 + step%3)
			} else {
				q.Enqueue(expert(id), req(seq, id))
				seq++
			}
			for e := coe.ExpertID(0); e < 13; e++ {
				count := 0
				var latest *Group
				for _, g := range q.groups {
					if g.Expert.ID == e {
						count++
						latest = g
					}
				}
				if got := q.hasExpert(e); got != (count > 0) {
					t.Fatalf("%v step %d: hasExpert(%d) = %v, scan count %d", mode, step, e, got, count)
				}
				var wantMerge *Group
				switch mode {
				case ModeGrouped:
					if latest != nil && !latest.started {
						wantMerge = latest
					}
				case ModeFIFO:
					if n := len(q.groups); n > 0 && q.groups[n-1].Expert.ID == e && !q.groups[n-1].started {
						wantMerge = q.groups[n-1]
					}
				}
				if got := q.mergeTarget(e); got != wantMerge {
					t.Fatalf("%v step %d: mergeTarget(%d) = %p, want %p", mode, step, e, got, wantMerge)
				}
			}
		}
	}
}

// TestPredictEnqueueScaleIndependence is the acceptance test for the
// O(1) expert index: on a queue already holding 10,000 groups, Predict
// must not allocate, and both Predict and Enqueue-merge must run in
// time that a linear scan over 10k groups could not meet.
func TestPredictEnqueueScaleIndependence(t *testing.T) {
	env := sim.NewEnv()
	q := testQueue(t, env, ModeGrouped)
	const groups = 10000
	for i := 0; i < groups; i++ {
		id := coe.ExpertID(i)
		q.Enqueue(expert(id), req(int64(i), id))
	}
	if q.Groups() != groups {
		t.Fatalf("groups = %d, want %d", q.Groups(), groups)
	}
	probe := expert(groups - 1) // hottest case for a tail-first scan is the miss path; use a hit
	if allocs := testing.AllocsPerRun(100, func() { q.Predict(probe) }); allocs > 0 {
		t.Errorf("Predict on a 10k-group queue allocated %.1f objects/op, want 0", allocs)
	}
	miss := expert(groups + 5)
	if allocs := testing.AllocsPerRun(100, func() { q.Predict(miss) }); allocs > 0 {
		t.Errorf("Predict miss on a 10k-group queue allocated %.1f objects/op, want 0", allocs)
	}
	// Time bound: 200k predictions against 10k groups. A linear scan
	// would be ~2e9 group visits; the index keeps this well under a
	// second even on slow CI hardware.
	start := time.Now()
	for i := 0; i < 200000; i++ {
		q.Predict(probe)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("200k predictions on a 10k-group queue took %v; expert index not consulted?", elapsed)
	}

	// Enqueue must be scale-independent too: pre-grow the merge target's
	// item capacity, then bound allocations and time for merges into the
	// 10k-group queue.
	const iters = 300
	target := q.mergeTarget(probe.ID)
	if target == nil {
		t.Fatal("no merge target for probe expert")
	}
	seq := int64(groups)
	for cap(target.items)-len(target.items) < iters+10 {
		q.Enqueue(probe, req(seq, probe.ID))
		seq++
	}
	r := req(seq, probe.ID)
	if allocs := testing.AllocsPerRun(iters, func() { q.Enqueue(probe, r) }); allocs > 0 {
		t.Errorf("Enqueue merge on a 10k-group queue allocated %.2f objects/op, want 0", allocs)
	}
	start = time.Now()
	for i := 0; i < 100000; i++ {
		q.Enqueue(probe, r)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("100k enqueues on a 10k-group queue took %v; groups scanned linearly?", elapsed)
	}
}

// TestEnqueueMergeZeroAllocs pins the merge fast path: enqueueing into
// an existing group with spare item capacity must not allocate.
func TestEnqueueMergeZeroAllocs(t *testing.T) {
	env := sim.NewEnv()
	q := testQueue(t, env, ModeGrouped)
	const iters = 200
	id := coe.ExpertID(1)
	q.Enqueue(expert(id), req(0, id))
	// Grow the group's item capacity past what the measured runs append,
	// so the measurement sees the steady-state path, not slice growth.
	seq := int64(1)
	for cap(q.groups[0].items)-q.groups[0].Len() < iters+10 {
		q.Enqueue(expert(id), req(seq, id))
		seq++
	}
	r := req(seq, id)
	e := expert(id)
	if allocs := testing.AllocsPerRun(iters, func() { q.Enqueue(e, r) }); allocs > 0 {
		t.Errorf("Enqueue into an existing group allocated %.2f objects/op, want 0", allocs)
	}
}
