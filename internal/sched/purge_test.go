package sched

import (
	"testing"

	"repro/internal/coe"
	"repro/internal/sim"
)

// TestPurgeReturnsBacklogInOrder pins the crash path: Purge hands back
// every queued request — the started head group's undrained tail
// included — in queue order, and leaves the queue truly empty (indexes
// reset, pending zero) so a restarted node starts from scratch.
func TestPurgeReturnsBacklogInOrder(t *testing.T) {
	env := sim.NewEnv()
	q := testQueue(t, env, ModeGrouped)
	for i, e := range []coe.ExpertID{1, 1, 2, 2, 1} {
		q.Enqueue(expert(e), req(int64(i), e))
	}
	// Start the head group (expert 1: requests 0,1,4) and drain one item,
	// as a crashed-mid-batch executor would have.
	if batch := q.TakeFromHead(1); len(batch) != 1 || batch[0].ID != 0 {
		t.Fatalf("TakeFromHead = %v", batch)
	}
	got := q.Purge()
	want := []int64{1, 4, 2, 3} // head tail first, then the expert-2 group
	if len(got) != len(want) {
		t.Fatalf("purged %d requests, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.ID != want[i] {
			t.Errorf("purge[%d] = request %d, want %d", i, r.ID, want[i])
		}
	}
	if q.Len() != 0 || q.Groups() != 0 || q.Pending() != 0 {
		t.Errorf("after purge: len=%d groups=%d pending=%v, want all zero", q.Len(), q.Groups(), q.Pending())
	}
	if q.Purge() != nil {
		t.Error("purging an empty queue returned requests")
	}

	// The expert index was reset: a post-purge enqueue opens a fresh
	// group instead of merging into a purged one, and drains normally.
	q.Enqueue(expert(1), req(10, 1))
	if q.Len() != 1 || q.Groups() != 1 {
		t.Fatalf("post-purge enqueue: len=%d groups=%d", q.Len(), q.Groups())
	}
	if batch := q.TakeFromHead(4); len(batch) != 1 || batch[0].ID != 10 {
		t.Fatalf("post-purge drain = %v", batch)
	}
}
