package sched

import (
	"time"

	"repro/internal/coe"
	"repro/internal/sim"
)

// Assigner picks the executor queue a new request joins.
type Assigner interface {
	Name() string
	Pick(now sim.Time, qs []*Queue, e *coe.Expert) int
}

// Single always assigns to queue 0 — the Samba-CoE single-executor FCFS
// arrangement.
type Single struct{}

// Name implements Assigner.
func (Single) Name() string { return "single" }

// Pick implements Assigner.
func (Single) Pick(now sim.Time, qs []*Queue, e *coe.Expert) int { return 0 }

// RoundRobin distributes requests evenly across queues in arrival order
// — Samba-CoE Parallel's strategy (§5.1).
type RoundRobin struct{ next int }

// Name implements Assigner.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Assigner.
func (rr *RoundRobin) Pick(now sim.Time, qs []*Queue, e *coe.Expert) int {
	i := rr.next % len(qs)
	rr.next++
	return i
}

// ByExpert statically partitions experts across queues (expert ID modulo
// queue count) — the "distributing requests evenly across executors"
// baseline of the §5.3 ablation, which spreads load without any
// knowledge of queue state. Requests for one expert always land on the
// same executor, the natural arrangement for per-executor model pools.
type ByExpert struct{}

// Name implements Assigner.
func (ByExpert) Name() string { return "by-expert" }

// Pick implements Assigner.
func (ByExpert) Pick(now sim.Time, qs []*Queue, e *coe.Expert) int {
	return int(e.ID) % len(qs)
}

// MinMax is CoServe's dependency-aware request assigning (§4.2,
// Figure 8): choose the queue that minimizes the total inference time —
// the maximum finish time across all executor queues — and break ties by
// the smallest additional latency for the new request, preserving
// assignment capacity for future requests. Remaining ties go to the
// lowest queue index, keeping runs deterministic.
type MinMax struct{}

// Name implements Assigner.
func (MinMax) Name() string { return "min-max" }

// Pick implements Assigner. Rather than materializing a per-queue finish
// slice, it tracks the largest and second-largest current finish times:
// the maximum over the queues other than i is max1, unless i itself is
// the arg-max, in which case it is max2. FinishTime is O(1), so one
// decision is O(queues) with zero allocations.
func (MinMax) Pick(now sim.Time, qs []*Queue, e *coe.Expert) int {
	const minTime = sim.Time(-1 << 62)
	max1, max2 := minTime, minTime
	argmax := -1
	for i, q := range qs {
		f := q.FinishTime(now)
		if f > max1 {
			max2, max1, argmax = max1, f, i
		} else if f > max2 {
			max2 = f
		}
	}
	best := -1
	var bestTotal sim.Time
	var bestAdd time.Duration
	for i, q := range qs {
		add := q.Predict(e)
		total := q.FinishTime(now).Add(add)
		other := max1
		if i == argmax {
			other = max2
		}
		if other > total {
			total = other
		}
		if best < 0 || total < bestTotal || (total == bestTotal && add < bestAdd) {
			best, bestTotal, bestAdd = i, total, add
		}
	}
	return best
}

// Replay reissues a recorded assignment sequence — the pre-scheduled
// control of the paper's overhead analysis (Figure 19), which executes
// the same request order with zero online scheduling work.
type Replay struct {
	picks []int
	next  int
}

// NewReplay returns an assigner that replays picks in order.
func NewReplay(picks []int) *Replay { return &Replay{picks: picks} }

// Name implements Assigner.
func (*Replay) Name() string { return "replay" }

// Pick implements Assigner.
func (r *Replay) Pick(now sim.Time, qs []*Queue, e *coe.Expert) int {
	if r.next >= len(r.picks) {
		panic("sched: replay exhausted")
	}
	i := r.picks[r.next]
	r.next++
	return i
}
