package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleLog() *Log {
	l := New()
	l.Add(Event{At: time.Second, Kind: KindArrival, Request: 1})
	l.Add(Event{At: 2 * time.Second, Kind: KindAssign, Actor: "gpu0", Request: 1, Expert: 7})
	l.Add(Event{At: 3 * time.Second, Kind: KindSwitch, Actor: "gpu0", Expert: 7, Dur: time.Second, Detail: "ssd"})
	l.Add(Event{At: 4 * time.Second, Kind: KindBatch, Actor: "gpu0", Expert: 7, N: 4, Dur: 20 * time.Millisecond})
	l.Add(Event{At: 5 * time.Second, Kind: KindComplete, Request: 1, Dur: 4 * time.Second})
	return l
}

func TestAddAndFilter(t *testing.T) {
	l := sampleLog()
	if l.Len() != 5 {
		t.Fatalf("len = %d, want 5", l.Len())
	}
	if got := l.Count(KindSwitch); got != 1 {
		t.Errorf("switch count = %d, want 1", got)
	}
	sw := l.Filter(KindSwitch)
	if len(sw) != 1 || sw[0].Expert != 7 || sw[0].Detail != "ssd" {
		t.Errorf("filtered switch event wrong: %+v", sw)
	}
	if l.Filter(Kind("nope")) != nil {
		t.Error("unknown kind should filter to nil")
	}
}

func TestBoundedLogDropsOldest(t *testing.T) {
	l := NewBounded(3)
	for i := 0; i < 5; i++ {
		l.Add(Event{At: time.Duration(i), Kind: KindArrival, Request: int64(i)})
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	if l.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", l.Dropped())
	}
	if l.Events()[0].Request != 2 {
		t.Errorf("oldest retained = %d, want 2", l.Events()[0].Request)
	}
}

func TestNewBoundedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero bound")
		}
	}()
	NewBounded(0)
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLog().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 6 { // header + 5 events
		t.Fatalf("csv rows = %d, want 6", len(records))
	}
	if records[0][0] != "at_us" || records[3][1] != "switch" || records[3][7] != "ssd" {
		t.Errorf("csv content wrong: %v", records[3])
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLog().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 || events[2].Kind != KindSwitch || events[2].Dur != time.Second {
		t.Errorf("json roundtrip wrong: %+v", events)
	}
}

func TestSummary(t *testing.T) {
	s := sampleLog().Summary()
	for _, want := range []string{"5 events", "1 assigns", "1 switches", "1 batches", "1 completions"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}
