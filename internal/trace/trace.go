// Package trace records structured serving events — request assignment,
// expert switches, batch executions, completions — with export to CSV
// and JSON for offline analysis of a run.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Kind classifies an event.
type Kind string

const (
	// KindArrival: a request entered the system.
	KindArrival Kind = "arrival"
	// KindAssign: a request (stage) was assigned to a queue.
	KindAssign Kind = "assign"
	// KindSwitch: a pool loaded an expert (an expert switch).
	KindSwitch Kind = "switch"
	// KindBatch: an executor finished a batch.
	KindBatch Kind = "batch"
	// KindComplete: a request finished its final stage.
	KindComplete Kind = "complete"
	// KindRejected: admission control rejected an arriving request. The
	// request never touches a queue; this is its only trace of existence.
	KindRejected Kind = "rejected"
	// KindDropped: a node crash voided an in-flight request; its lease
	// holder (the cluster front end) redelivers it elsewhere.
	KindDropped Kind = "dropped"
	// KindStream: a new stream began serving (warm restarts append
	// consecutive streams to one log; request IDs restart per stream,
	// so consumers must pair arrivals to completions within stream
	// segments). Detail carries the stream name.
	KindStream Kind = "stream"
)

// Event is one recorded occurrence. At is virtual time from simulation
// start.
type Event struct {
	At      time.Duration `json:"at"`
	Kind    Kind          `json:"kind"`
	Actor   string        `json:"actor,omitempty"`   // queue/pool/executor name
	Request int64         `json:"request,omitempty"` // request id
	Expert  int32         `json:"expert,omitempty"`  // expert id
	N       int           `json:"n,omitempty"`       // batch size
	Dur     time.Duration `json:"dur,omitempty"`     // operation duration
	Detail  string        `json:"detail,omitempty"`  // e.g. load source
}

// Log is an append-only event recorder. The zero value records
// unboundedly; NewBounded caps retention (oldest events are dropped).
// Log is not safe for concurrent use — the simulation is single-threaded.
type Log struct {
	events  []Event
	limit   int
	dropped int64
}

// New returns an unbounded log.
func New() *Log { return &Log{} }

// NewBounded returns a log that retains at most limit events.
func NewBounded(limit int) *Log {
	if limit < 1 {
		panic("trace: bound must be >= 1")
	}
	return &Log{limit: limit}
}

// Add appends an event.
func (l *Log) Add(ev Event) {
	if l.limit > 0 && len(l.events) >= l.limit {
		copy(l.events, l.events[1:])
		l.events = l.events[:len(l.events)-1]
		l.dropped++
	}
	l.events = append(l.events, ev)
}

// Len reports the number of retained events.
func (l *Log) Len() int { return len(l.events) }

// Dropped reports how many events a bounded log discarded.
func (l *Log) Dropped() int64 { return l.dropped }

// Events returns the retained events in order. Callers must not modify
// the returned slice.
func (l *Log) Events() []Event { return l.events }

// Filter returns the retained events of one kind.
func (l *Log) Filter(kind Kind) []Event {
	var out []Event
	for _, ev := range l.events {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// Count reports the number of retained events of one kind.
func (l *Log) Count(kind Kind) int {
	n := 0
	for _, ev := range l.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// WriteCSV exports the log as CSV with a header row.
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_us", "kind", "actor", "request", "expert", "n", "dur_us", "detail"}); err != nil {
		return err
	}
	for _, ev := range l.events {
		rec := []string{
			strconv.FormatInt(ev.At.Microseconds(), 10),
			string(ev.Kind),
			ev.Actor,
			strconv.FormatInt(ev.Request, 10),
			strconv.FormatInt(int64(ev.Expert), 10),
			strconv.Itoa(ev.N),
			strconv.FormatInt(ev.Dur.Microseconds(), 10),
			ev.Detail,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON exports the log as a JSON array.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(l.events)
}

// Summary renders a one-line digest of the log.
func (l *Log) Summary() string {
	return fmt.Sprintf("trace: %d events (%d assigns, %d switches, %d batches, %d completions)",
		len(l.events), l.Count(KindAssign), l.Count(KindSwitch), l.Count(KindBatch), l.Count(KindComplete))
}
