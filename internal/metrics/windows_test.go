package metrics

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestWindowedSeriesBuckets(t *testing.T) {
	r := NewRecorder()
	r.SetWindow(time.Second)
	// Stream starts at virtual t=10s (a warm restart); the origin is the
	// first event, so windows still start at offset 0.
	base := sim.Time(10 * time.Second)
	r.Arrival(base)
	r.Rejection(base.Add(200 * time.Millisecond))
	r.Arrival(base.Add(500 * time.Millisecond))
	r.Completion(base, base.Add(800*time.Millisecond)) // 0.8s latency, window 0
	// Window 2 (2s..3s): one late completion; window 1 stays empty.
	r.Arrival(base.Add(2100 * time.Millisecond))
	r.Completion(base.Add(2100*time.Millisecond), base.Add(2600*time.Millisecond))

	ws := r.Windows()
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3", len(ws))
	}
	w0, w1, w2 := ws[0], ws[1], ws[2]
	if w0.Arrivals != 2 || w0.Rejections != 1 || w0.Completions != 1 {
		t.Errorf("window 0 = %+v, want 2 arrivals, 1 rejection, 1 completion", w0)
	}
	if got := w0.MeanLatency(); got < 0.79 || got > 0.81 {
		t.Errorf("window 0 mean latency = %v, want ~0.8", got)
	}
	if w1.Arrivals != 0 || w1.Completions != 0 || w1.Rejections != 0 {
		t.Errorf("interior window 1 = %+v, want empty", w1)
	}
	if w1.Start != time.Second || w2.Start != 2*time.Second {
		t.Errorf("window starts = %v, %v; want 1s, 2s", w1.Start, w2.Start)
	}
	if w2.Completions != 1 || w2.Arrivals != 1 {
		t.Errorf("window 2 = %+v, want 1 arrival, 1 completion", w2)
	}
	if r.Rejections() != 1 {
		t.Errorf("rejections = %d, want 1", r.Rejections())
	}
}

func TestWindowedSeriesDisabledByDefault(t *testing.T) {
	r := NewRecorder()
	r.Arrival(0)
	r.Rejection(0)
	r.Completion(0, sim.Time(time.Second))
	if len(r.Windows()) != 0 {
		t.Errorf("windowed series recorded without SetWindow: %d windows", len(r.Windows()))
	}
	if r.Window() != 0 {
		t.Errorf("default window = %v, want 0", r.Window())
	}
	if r.Rejections() != 1 {
		t.Errorf("rejections = %d, want 1 (counter works without windows)", r.Rejections())
	}
}

// TestWindowedSeriesResetSurvives pins the warm-restart contract: Reset
// clears the series and re-anchors the origin but keeps the window
// setting and the slice capacity.
func TestWindowedSeriesResetSurvives(t *testing.T) {
	r := NewRecorder()
	r.SetWindow(500 * time.Millisecond)
	for i := 0; i < 10; i++ {
		r.Arrival(sim.Time(i) * sim.Time(time.Second))
	}
	grown := cap(r.windows)
	r.Reset()
	if len(r.Windows()) != 0 || r.Rejections() != 0 {
		t.Fatalf("Reset left windows/rejections: %d/%d", len(r.Windows()), r.Rejections())
	}
	if r.Window() != 500*time.Millisecond {
		t.Errorf("Reset dropped the window setting: %v", r.Window())
	}
	if cap(r.windows) != grown {
		t.Errorf("Reset dropped window capacity: %d -> %d", grown, cap(r.windows))
	}
	// A second stream starting at a later virtual time re-anchors at 0.
	r.Arrival(sim.Time(100 * time.Second))
	ws := r.Windows()
	if len(ws) != 1 || ws[0].Start != 0 {
		t.Errorf("second stream windows = %+v, want a single window at 0", ws)
	}
	// Rejection as the first event also anchors the origin.
	r.Reset()
	r.Rejection(sim.Time(200 * time.Second))
	if ws := r.Windows(); len(ws) != 1 || ws[0].Rejections != 1 {
		t.Errorf("rejection-first stream windows = %+v", ws)
	}
	r.SetWindow(0)
	if r.Window() != 0 {
		t.Errorf("SetWindow(0) did not disable: %v", r.Window())
	}
}
