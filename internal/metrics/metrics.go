// Package metrics collects the measurements the paper's evaluation
// reports: throughput (images per second, the primary metric of §5.1),
// expert switch counts (Figure 14), per-request latency, and the
// real-wall-clock scheduling overhead of Figure 19.
package metrics

import (
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Recorder accumulates the metrics of one task run.
type Recorder struct {
	arrivals    int64
	completions int64
	stages      int64

	firstArrival   sim.Time
	lastCompletion sim.Time
	haveArrival    bool

	// latencies holds per-request end-to-end latency in seconds.
	latencies []float64

	// schedWall is real wall-clock time spent inside scheduling code;
	// schedOps counts scheduling decisions. The simulation clock never
	// advances during scheduling — the paper measures its cost on the
	// real CPU (Figure 19) and so do we.
	schedWall time.Duration
	schedOps  int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Reset zeroes the recorder for another stream while keeping the sample
// buffer's capacity, so warm-restarted serving streams stop reallocating
// their latency samples. It invalidates any slice previously returned by
// Latencies.
func (r *Recorder) Reset() {
	r.arrivals, r.completions, r.stages = 0, 0, 0
	r.firstArrival, r.lastCompletion = 0, 0
	r.haveArrival = false
	r.latencies = r.latencies[:0]
	r.schedWall, r.schedOps = 0, 0
}

// Arrival records a request entering the system at virtual time t.
func (r *Recorder) Arrival(t sim.Time) {
	if !r.haveArrival || t < r.firstArrival {
		r.firstArrival = t
		r.haveArrival = true
	}
	r.arrivals++
}

// StageDone records the completion of one pipeline stage.
func (r *Recorder) StageDone() { r.stages++ }

// Completion records a request finishing its final stage at virtual time
// t, having arrived at the given time.
func (r *Recorder) Completion(arrival, t sim.Time) {
	r.completions++
	if t > r.lastCompletion {
		r.lastCompletion = t
	}
	r.latencies = append(r.latencies, t.Sub(arrival).Seconds())
}

// SchedOp records one scheduling decision that took wall-clock duration d.
func (r *Recorder) SchedOp(d time.Duration) {
	r.schedWall += d
	r.schedOps++
}

// Arrivals reports the number of requests that entered.
func (r *Recorder) Arrivals() int64 { return r.arrivals }

// Completions reports the number of requests that fully completed.
func (r *Recorder) Completions() int64 { return r.completions }

// Stages reports the number of completed pipeline stages.
func (r *Recorder) Stages() int64 { return r.stages }

// Makespan reports the virtual time from first arrival to last
// completion.
func (r *Recorder) Makespan() time.Duration {
	if r.completions == 0 {
		return 0
	}
	return r.lastCompletion.Sub(r.firstArrival)
}

// Throughput reports completed requests per second of virtual time —
// the paper's primary performance metric.
func (r *Recorder) Throughput() float64 {
	mk := r.Makespan().Seconds()
	if mk <= 0 {
		return 0
	}
	return float64(r.completions) / mk
}

// Latencies returns per-request latencies in seconds. Callers must not
// modify the returned slice, and must not hold it across a Reset.
func (r *Recorder) Latencies() []float64 { return r.latencies }

// LatencySummary summarizes per-request end-to-end latency in seconds,
// including the p50/p95/p99 tail percentiles serving reports quote.
func (r *Recorder) LatencySummary() stats.Summary {
	return stats.Summarize(r.latencies)
}

// SLOAttainment reports the fraction of completed requests whose
// end-to-end latency met the objective. It returns 0 when nothing
// completed and 1 under a non-positive (disabled) objective — an
// unconstrained run trivially attains its SLO.
func (r *Recorder) SLOAttainment(slo time.Duration) float64 {
	return stats.Attainment(r.latencies, slo.Seconds())
}

// SchedPerOp reports the mean wall-clock cost of one scheduling decision.
func (r *Recorder) SchedPerOp() time.Duration {
	if r.schedOps == 0 {
		return 0
	}
	return r.schedWall / time.Duration(r.schedOps)
}

// SchedWall reports the total wall-clock time spent scheduling.
func (r *Recorder) SchedWall() time.Duration { return r.schedWall }

// SchedOps reports the number of scheduling decisions.
func (r *Recorder) SchedOps() int64 { return r.schedOps }
