// Package metrics collects the measurements the paper's evaluation
// reports: throughput (images per second, the primary metric of §5.1),
// expert switch counts (Figure 14), per-request latency, and the
// real-wall-clock scheduling overhead of Figure 19.
package metrics

import (
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Window is one fixed-width interval of a stream's windowed series:
// arrivals, completions, rejections, and summed completion latency that
// fell inside it. Start is the window's left edge as an offset from the
// stream's first recorded event, so consecutive warm-restarted streams
// each produce a series starting near zero.
type Window struct {
	Start       time.Duration
	Arrivals    int64
	Completions int64
	Rejections  int64
	// LatencySum is the summed end-to-end latency (seconds) of the
	// window's completions.
	LatencySum float64
}

// MeanLatency reports the window's mean completion latency in seconds
// (0 when nothing completed).
func (w Window) MeanLatency() float64 {
	if w.Completions == 0 {
		return 0
	}
	return w.LatencySum / float64(w.Completions)
}

// Recorder accumulates the metrics of one task run.
type Recorder struct {
	arrivals    int64
	completions int64
	rejections  int64
	stages      int64

	firstArrival   sim.Time
	lastCompletion sim.Time
	haveArrival    bool

	// window, when positive, enables the sliding-interval series: every
	// arrival, completion, and rejection is also bucketed into
	// fixed-width windows offset from the stream's first event.
	window     time.Duration
	origin     sim.Time
	haveOrigin bool
	windows    []Window

	// latencies holds per-request end-to-end latency in seconds —
	// every sample, so percentiles are exact. In sketch mode (see
	// UseSketch) it stays empty and samples stream into sketch
	// instead, making recorder memory O(1) in completions.
	latencies []float64
	sketch    *stats.Sketch

	// schedWall is real wall-clock time spent inside scheduling code;
	// schedOps counts scheduling decisions. The simulation clock never
	// advances during scheduling — the paper measures its cost on the
	// real CPU (Figure 19) and so do we.
	schedWall time.Duration
	schedOps  int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Reset zeroes the recorder for another stream while keeping the sample
// buffer's capacity, so warm-restarted serving streams stop reallocating
// their latency samples. It invalidates any slice previously returned by
// Latencies.
func (r *Recorder) Reset() {
	r.arrivals, r.completions, r.rejections, r.stages = 0, 0, 0, 0
	r.firstArrival, r.lastCompletion = 0, 0
	r.haveArrival = false
	r.haveOrigin = false
	r.windows = r.windows[:0]
	r.latencies = r.latencies[:0]
	if r.sketch != nil {
		r.sketch.Reset()
	}
	r.schedWall, r.schedOps = 0, 0
}

// UseSketch switches the recorder to streaming-quantile mode: latency
// samples feed a fixed-size mergeable stats.Sketch instead of the
// store-every-sample buffer, so memory is O(1) in completions and
// LatencySummary/SLOAttainment carry the sketch's documented accuracy
// bound. Latencies returns nil in this mode. The switch is one-way and
// survives Reset; enable it before the first sample.
func (r *Recorder) UseSketch() {
	if r.sketch == nil {
		r.sketch = stats.NewSketch()
	}
}

// Sketch returns the recorder's latency sketch (nil unless UseSketch
// was called). Callers must not modify it; clone before mutating.
func (r *Recorder) Sketch() *stats.Sketch { return r.sketch }

// SetWindow enables (d > 0) or disables (d <= 0) the windowed series.
// The setting survives Reset, so warm-restarted streams keep their
// windows; changing it mid-stream is not supported.
func (r *Recorder) SetWindow(d time.Duration) {
	if d <= 0 {
		d = 0
	}
	r.window = d
}

// Window reports the configured window width (0 when disabled).
func (r *Recorder) Window() time.Duration { return r.window }

// Windows returns the stream's windowed series in time order, including
// interior windows with no events. Callers must not modify the returned
// slice, and must not hold it across a Reset.
func (r *Recorder) Windows() []Window { return r.windows }

// bucket returns the window covering virtual time t, growing the series
// as needed; nil when the windowed series is disabled. The first
// recorded event anchors the series origin.
func (r *Recorder) bucket(t sim.Time) *Window {
	if r.window <= 0 {
		return nil
	}
	if !r.haveOrigin {
		r.origin, r.haveOrigin = t, true
	}
	idx := int(t.Sub(r.origin) / r.window)
	for len(r.windows) <= idx {
		r.windows = append(r.windows, Window{Start: time.Duration(len(r.windows)) * r.window})
	}
	return &r.windows[idx]
}

// Arrival records a request entering the system at virtual time t.
func (r *Recorder) Arrival(t sim.Time) {
	if !r.haveArrival || t < r.firstArrival {
		r.firstArrival = t
		r.haveArrival = true
	}
	r.arrivals++
	if w := r.bucket(t); w != nil {
		w.Arrivals++
	}
}

// Rejection records admission control rejecting a request at virtual
// time t. Rejected requests touch nothing else in the recorder: they
// are not arrivals, do not complete, and carry no latency sample.
func (r *Recorder) Rejection(t sim.Time) {
	r.rejections++
	if w := r.bucket(t); w != nil {
		w.Rejections++
	}
}

// Rejections reports the number of requests admission control rejected.
func (r *Recorder) Rejections() int64 { return r.rejections }

// StageDone records the completion of one pipeline stage.
func (r *Recorder) StageDone() { r.stages++ }

// Completion records a request finishing its final stage at virtual time
// t, having arrived at the given time.
func (r *Recorder) Completion(arrival, t sim.Time) {
	r.completions++
	if t > r.lastCompletion {
		r.lastCompletion = t
	}
	lat := t.Sub(arrival).Seconds()
	if r.sketch != nil {
		r.sketch.Add(lat)
	} else {
		r.latencies = append(r.latencies, lat)
	}
	if w := r.bucket(t); w != nil {
		w.Completions++
		w.LatencySum += lat
	}
}

// SchedOp records one scheduling decision that took wall-clock duration d.
func (r *Recorder) SchedOp(d time.Duration) {
	r.schedWall += d
	r.schedOps++
}

// Arrivals reports the number of requests that entered.
func (r *Recorder) Arrivals() int64 { return r.arrivals }

// Completions reports the number of requests that fully completed.
func (r *Recorder) Completions() int64 { return r.completions }

// Stages reports the number of completed pipeline stages.
func (r *Recorder) Stages() int64 { return r.stages }

// Makespan reports the virtual time from first arrival to last
// completion.
func (r *Recorder) Makespan() time.Duration {
	if r.completions == 0 {
		return 0
	}
	return r.lastCompletion.Sub(r.firstArrival)
}

// Throughput reports completed requests per second of virtual time —
// the paper's primary performance metric.
func (r *Recorder) Throughput() float64 {
	mk := r.Makespan().Seconds()
	if mk <= 0 {
		return 0
	}
	return float64(r.completions) / mk
}

// Latencies returns per-request latencies in seconds, or nil in sketch
// mode (individual samples are not retained there). Callers must not
// modify the returned slice, and must not hold it across a Reset.
func (r *Recorder) Latencies() []float64 {
	if r.sketch != nil {
		return nil
	}
	return r.latencies
}

// LatencySummary summarizes per-request end-to-end latency in seconds,
// including the p50/p95/p99 tail percentiles serving reports quote.
// Exact in the default mode; within the sketch's accuracy bound in
// sketch mode (N, Mean, Std, Min, Max stay exact either way).
func (r *Recorder) LatencySummary() stats.Summary {
	if r.sketch != nil {
		return r.sketch.Summary()
	}
	return stats.Summarize(r.latencies)
}

// SLOAttainment reports the fraction of completed requests whose
// end-to-end latency met the objective. It returns 0 when nothing
// completed and 1 under a non-positive (disabled) objective — an
// unconstrained run trivially attains its SLO.
func (r *Recorder) SLOAttainment(slo time.Duration) float64 {
	if r.sketch != nil {
		return r.sketch.Attainment(slo.Seconds())
	}
	return stats.Attainment(r.latencies, slo.Seconds())
}

// SchedPerOp reports the mean wall-clock cost of one scheduling decision.
func (r *Recorder) SchedPerOp() time.Duration {
	if r.schedOps == 0 {
		return 0
	}
	return r.schedWall / time.Duration(r.schedOps)
}

// SchedWall reports the total wall-clock time spent scheduling.
func (r *Recorder) SchedWall() time.Duration { return r.schedWall }

// SchedOps reports the number of scheduling decisions.
func (r *Recorder) SchedOps() int64 { return r.schedOps }
