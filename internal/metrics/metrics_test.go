package metrics

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestThroughputAndMakespan(t *testing.T) {
	r := NewRecorder()
	r.Arrival(sim.Time(time.Second))
	r.Arrival(sim.Time(2 * time.Second))
	r.Completion(sim.Time(time.Second), sim.Time(3*time.Second))
	r.Completion(sim.Time(2*time.Second), sim.Time(5*time.Second))
	if r.Arrivals() != 2 || r.Completions() != 2 {
		t.Fatalf("arrivals/completions = %d/%d", r.Arrivals(), r.Completions())
	}
	if r.Makespan() != 4*time.Second {
		t.Errorf("makespan = %v, want 4s", r.Makespan())
	}
	if got := r.Throughput(); got != 0.5 {
		t.Errorf("throughput = %v, want 0.5", got)
	}
	lats := r.Latencies()
	if len(lats) != 2 || lats[0] != 2 || lats[1] != 3 {
		t.Errorf("latencies = %v, want [2 3]", lats)
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewRecorder()
	if r.Throughput() != 0 || r.Makespan() != 0 || r.SchedPerOp() != 0 {
		t.Error("empty recorder should report zeros")
	}
}

func TestFirstArrivalTracksMinimum(t *testing.T) {
	r := NewRecorder()
	r.Arrival(sim.Time(5 * time.Second))
	r.Arrival(sim.Time(2 * time.Second))
	r.Completion(sim.Time(2*time.Second), sim.Time(6*time.Second))
	if r.Makespan() != 4*time.Second {
		t.Errorf("makespan = %v, want 4s (from earliest arrival)", r.Makespan())
	}
}

func TestSchedOps(t *testing.T) {
	r := NewRecorder()
	r.SchedOp(2 * time.Microsecond)
	r.SchedOp(4 * time.Microsecond)
	if r.SchedOps() != 2 || r.SchedWall() != 6*time.Microsecond {
		t.Errorf("ops/wall = %d/%v", r.SchedOps(), r.SchedWall())
	}
	if r.SchedPerOp() != 3*time.Microsecond {
		t.Errorf("per-op = %v, want 3µs", r.SchedPerOp())
	}
}

func TestStageCounter(t *testing.T) {
	r := NewRecorder()
	r.StageDone()
	r.StageDone()
	if r.Stages() != 2 {
		t.Errorf("stages = %d, want 2", r.Stages())
	}
}
