package metrics

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestThroughputAndMakespan(t *testing.T) {
	r := NewRecorder()
	r.Arrival(sim.Time(time.Second))
	r.Arrival(sim.Time(2 * time.Second))
	r.Completion(sim.Time(time.Second), sim.Time(3*time.Second))
	r.Completion(sim.Time(2*time.Second), sim.Time(5*time.Second))
	if r.Arrivals() != 2 || r.Completions() != 2 {
		t.Fatalf("arrivals/completions = %d/%d", r.Arrivals(), r.Completions())
	}
	if r.Makespan() != 4*time.Second {
		t.Errorf("makespan = %v, want 4s", r.Makespan())
	}
	if got := r.Throughput(); got != 0.5 {
		t.Errorf("throughput = %v, want 0.5", got)
	}
	lats := r.Latencies()
	if len(lats) != 2 || lats[0] != 2 || lats[1] != 3 {
		t.Errorf("latencies = %v, want [2 3]", lats)
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewRecorder()
	if r.Throughput() != 0 || r.Makespan() != 0 || r.SchedPerOp() != 0 {
		t.Error("empty recorder should report zeros")
	}
}

func TestFirstArrivalTracksMinimum(t *testing.T) {
	r := NewRecorder()
	r.Arrival(sim.Time(5 * time.Second))
	r.Arrival(sim.Time(2 * time.Second))
	r.Completion(sim.Time(2*time.Second), sim.Time(6*time.Second))
	if r.Makespan() != 4*time.Second {
		t.Errorf("makespan = %v, want 4s (from earliest arrival)", r.Makespan())
	}
}

func TestSchedOps(t *testing.T) {
	r := NewRecorder()
	r.SchedOp(2 * time.Microsecond)
	r.SchedOp(4 * time.Microsecond)
	if r.SchedOps() != 2 || r.SchedWall() != 6*time.Microsecond {
		t.Errorf("ops/wall = %d/%v", r.SchedOps(), r.SchedWall())
	}
	if r.SchedPerOp() != 3*time.Microsecond {
		t.Errorf("per-op = %v, want 3µs", r.SchedPerOp())
	}
}

func TestStageCounter(t *testing.T) {
	r := NewRecorder()
	r.StageDone()
	r.StageDone()
	if r.Stages() != 2 {
		t.Errorf("stages = %d, want 2", r.Stages())
	}
}

func TestLatencySummaryPercentiles(t *testing.T) {
	r := NewRecorder()
	// 100 completions at 10ms, 20ms, ..., 1000ms.
	for i := 1; i <= 100; i++ {
		arr := sim.Time(0)
		r.Arrival(arr)
		r.Completion(arr, arr.Add(time.Duration(i)*10*time.Millisecond))
	}
	s := r.LatencySummary()
	if s.N != 100 {
		t.Fatalf("N = %d, want 100", s.N)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("percentiles not monotone: %v %v %v", s.P50, s.P95, s.P99)
	}
	if s.P50 < 0.49 || s.P50 > 0.52 {
		t.Errorf("p50 = %v, want ~0.5", s.P50)
	}
	if s.P99 < 0.98 || s.P99 > 1.0 {
		t.Errorf("p99 = %v, want ~0.99", s.P99)
	}
}

func TestSLOAttainment(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 10; i++ {
		arr := sim.Time(0)
		r.Arrival(arr)
		r.Completion(arr, arr.Add(time.Duration(i)*100*time.Millisecond))
	}
	// Latencies are 0.1s..1.0s; an SLO of 0.5s admits exactly half.
	if got := r.SLOAttainment(500 * time.Millisecond); got != 0.5 {
		t.Errorf("attainment = %v, want 0.5", got)
	}
	if got := r.SLOAttainment(time.Hour); got != 1 {
		t.Errorf("lax attainment = %v, want 1", got)
	}
	if got := r.SLOAttainment(time.Millisecond); got != 0 {
		t.Errorf("strict attainment = %v, want 0", got)
	}
	// Disabled objective: trivially attained.
	if got := r.SLOAttainment(0); got != 1 {
		t.Errorf("disabled attainment = %v, want 1", got)
	}
	// No completions under a real objective: nothing attained.
	if got := NewRecorder().SLOAttainment(time.Second); got != 0 {
		t.Errorf("empty attainment = %v, want 0", got)
	}
}

// TestResetKeepsSampleCapacity pins the warm-restart path: Reset must
// zero every statistic but keep the latency buffer's capacity so
// consecutive streams stop reallocating samples.
func TestResetKeepsSampleCapacity(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * sim.Time(time.Millisecond)
		r.Arrival(at)
		r.StageDone()
		r.Completion(at, at.Add(50*time.Millisecond))
	}
	r.SchedOp(3 * time.Microsecond)
	grown := cap(r.latencies)
	if grown < 100 {
		t.Fatalf("latency buffer cap = %d, want >= 100", grown)
	}
	r.Reset()
	if r.Arrivals() != 0 || r.Completions() != 0 || r.Stages() != 0 ||
		r.SchedOps() != 0 || r.SchedWall() != 0 || r.Makespan() != 0 {
		t.Errorf("Reset left counters: %+v", r)
	}
	if len(r.Latencies()) != 0 {
		t.Errorf("Reset left %d latency samples", len(r.Latencies()))
	}
	if cap(r.latencies) != grown {
		t.Errorf("Reset dropped sample capacity: %d -> %d", grown, cap(r.latencies))
	}
	// A second identical stream must not allocate new sample storage.
	if allocs := testing.AllocsPerRun(5, func() {
		for i := 0; i < 100; i++ {
			at := sim.Time(i) * sim.Time(time.Millisecond)
			r.Arrival(at)
			r.Completion(at, at.Add(50*time.Millisecond))
		}
		r.Reset()
	}); allocs > 0 {
		t.Errorf("warm stream recording allocated %.1f objects/op, want 0", allocs)
	}
	// And the recorder still records correctly after Reset.
	r.Arrival(0)
	r.Completion(0, sim.Time(time.Second))
	if got := r.LatencySummary(); got.N != 1 || got.Mean != 1 {
		t.Errorf("post-Reset summary = %+v", got)
	}
}

// TestResetKeepsWindowCapacity pins the windowed-series analogue: a
// warm restart with windows enabled must reuse the window buffer, so
// re-recording an identical windowed stream performs zero allocations.
func TestResetKeepsWindowCapacity(t *testing.T) {
	r := NewRecorder()
	r.SetWindow(10 * time.Millisecond)
	record := func() {
		for i := 0; i < 200; i++ {
			at := sim.Time(i) * sim.Time(time.Millisecond)
			r.Arrival(at)
			r.Completion(at, at.Add(5*time.Millisecond))
		}
	}
	record()
	if len(r.Windows()) < 20 {
		t.Fatalf("windowed series has %d windows, want >= 20", len(r.Windows()))
	}
	grown := cap(r.windows)
	r.Reset()
	if len(r.Windows()) != 0 {
		t.Fatalf("Reset left %d windows", len(r.Windows()))
	}
	if cap(r.windows) != grown {
		t.Fatalf("Reset dropped window capacity: %d -> %d", grown, cap(r.windows))
	}
	if r.Window() != 10*time.Millisecond {
		t.Fatalf("Reset dropped window setting: %v", r.Window())
	}
	if allocs := testing.AllocsPerRun(5, func() {
		record()
		r.Reset()
	}); allocs > 0 {
		t.Errorf("warm windowed stream allocated %.1f objects/op, want 0", allocs)
	}
}

// TestRecorderSketchMode: with UseSketch enabled the recorder keeps no
// per-sample storage, reports summaries and attainment through the
// sketch, and records allocation-free no matter how many completions
// stream through — the O(1)-in-completions property.
func TestRecorderSketchMode(t *testing.T) {
	exact, sk := NewRecorder(), NewRecorder()
	sk.UseSketch()
	if sk.Sketch() == nil {
		t.Fatal("UseSketch did not install a sketch")
	}
	for i := 1; i <= 1000; i++ {
		at := sim.Time(i) * sim.Time(time.Millisecond)
		done := at.Add(time.Duration(i) * time.Millisecond)
		exact.Arrival(at)
		exact.Completion(at, done)
		sk.Arrival(at)
		sk.Completion(at, done)
	}
	if got := sk.Latencies(); got != nil {
		t.Fatalf("sketch mode retained %d samples, want nil", len(got))
	}
	es, ss := exact.LatencySummary(), sk.LatencySummary()
	if ss.N != es.N || ss.Min != es.Min || ss.Max != es.Max {
		t.Fatalf("sketch N/Min/Max = %d/%v/%v, want exact %d/%v/%v",
			ss.N, ss.Min, ss.Max, es.N, es.Min, es.Max)
	}
	alpha := sk.Sketch().RelativeAccuracy()
	for _, pair := range [][2]float64{{ss.P50, es.P50}, {ss.P95, es.P95}, {ss.P99, es.P99}} {
		if pair[0] < pair[1]*(1-2*alpha) || pair[0] > pair[1]*(1+2*alpha) {
			t.Errorf("sketch percentile %v outside bound of exact %v", pair[0], pair[1])
		}
	}
	if got, want := sk.SLOAttainment(time.Hour), 1.0; got != want {
		t.Errorf("lax attainment = %v, want %v", got, want)
	}
	// The sketch survives Reset and stays allocation-free while warm.
	sk.Reset()
	if sk.Sketch() == nil || sk.Sketch().Count() != 0 {
		t.Fatal("Reset must empty but keep the sketch")
	}
	if allocs := testing.AllocsPerRun(5, func() {
		for i := 1; i <= 1000; i++ {
			at := sim.Time(i) * sim.Time(time.Millisecond)
			sk.Arrival(at)
			sk.Completion(at, at.Add(time.Duration(i)*time.Millisecond))
		}
		sk.Reset()
	}); allocs > 0 {
		t.Errorf("warm sketch stream allocated %.1f objects/op, want 0", allocs)
	}
}
