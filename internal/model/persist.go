package model

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/hw"
)

// The offline profiler runs once per device (§4.4); its performance
// matrix is worth persisting so later serving sessions skip the
// microbenchmarks. perfJSON is the stable wire form of one Perf entry.
type perfJSON struct {
	Arch        string        `json:"arch"`
	Proc        string        `json:"proc"`
	K           time.Duration `json:"k_ns"`
	B           time.Duration `json:"b_ns"`
	MaxBatch    int           `json:"max_batch"`
	ActPerImage int64         `json:"act_per_image"`
	LoadSSD     time.Duration `json:"load_ssd_ns"`
	LoadHost    time.Duration `json:"load_host_ns"`
}

// WriteJSON persists the matrix. Only profiled quantities are stored;
// the architecture definitions must be supplied again on load.
func (pm PerfMatrix) WriteJSON(w io.Writer) error {
	out := make([]perfJSON, 0, len(pm))
	known := make(map[PerfKey]bool, len(pm))
	// Iterate deterministically: architectures x kinds.
	for _, arch := range []Architecture{ResNet101, YOLOv5m, YOLOv5l} {
		for _, kind := range []hw.ProcKind{hw.GPU, hw.CPU} {
			known[PerfKey{Arch: arch.Name, Kind: kind}] = true
			if p, ok := pm.Lookup(arch.Name, kind); ok {
				out = append(out, perfJSON{
					Arch: arch.Name, Proc: kind.String(),
					K: p.K, B: p.B, MaxBatch: p.MaxBatch,
					ActPerImage: p.ActPerImage,
					LoadSSD:     p.LoadSSD, LoadHost: p.LoadHost,
				})
			}
		}
	}
	// Entries for custom architectures follow in map order; re-read via
	// ReadPerfMatrix keys them by name, so order does not matter.
	//detlint:allow file entry order varies run to run but ReadPerfMatrix keys by name, so the decoded matrix is identical
	for key, p := range pm {
		if known[key] {
			continue
		}
		out = append(out, perfJSON{
			Arch: p.Arch.Name, Proc: key.Kind.String(),
			K: p.K, B: p.B, MaxBatch: p.MaxBatch,
			ActPerImage: p.ActPerImage,
			LoadSSD:     p.LoadSSD, LoadHost: p.LoadHost,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadPerfMatrix loads a persisted matrix. archs supplies the
// architecture definitions referenced by name in the file.
func ReadPerfMatrix(r io.Reader, archs []Architecture) (PerfMatrix, error) {
	byName := make(map[string]Architecture, len(archs))
	for _, a := range archs {
		byName[a.Name] = a
	}
	var in []perfJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("model: decoding perf matrix: %w", err)
	}
	pm := make(PerfMatrix, len(in))
	for _, e := range in {
		arch, ok := byName[e.Arch]
		if !ok {
			return nil, fmt.Errorf("model: perf entry for unknown architecture %q", e.Arch)
		}
		var kind hw.ProcKind
		switch e.Proc {
		case "GPU":
			kind = hw.GPU
		case "CPU":
			kind = hw.CPU
		default:
			return nil, fmt.Errorf("model: perf entry for unknown processor %q", e.Proc)
		}
		if e.MaxBatch < 1 || e.K < 0 || e.LoadSSD <= 0 {
			return nil, fmt.Errorf("model: implausible perf entry for %s/%s", e.Arch, e.Proc)
		}
		pm.Put(arch, kind, Perf{
			Arch: arch, K: e.K, B: e.B, MaxBatch: e.MaxBatch,
			ActPerImage: e.ActPerImage,
			LoadSSD:     e.LoadSSD, LoadHost: e.LoadHost,
		})
	}
	return pm, nil
}
