// Package model defines expert model architectures and the analytic cost
// models that stand in for real PyTorch inference: execution latency,
// activation memory footprint, and serialized weight size.
//
// The paper's serving system never inspects model internals — it consumes
// only the profiled performance matrix of each architecture on each
// processor (§4.5): the linear latency coefficients K and B, the maximum
// useful batch size, per-batch memory footprint, and load latency. This
// package is the ground truth those profiles are measured from.
package model

import (
	"fmt"
	"time"

	"repro/internal/hw"
)

// Architecture describes a neural-network architecture. All experts of
// the same architecture share compute cost and size ("experts of the same
// model architecture are profiled only once", §4.5); they differ only in
// weights.
type Architecture struct {
	Name string
	// Params is the parameter count.
	Params int64
	// BytesPerParam is the serialized size of one parameter (4 = FP32).
	BytesPerParam int64
	// GFLOPsPerImage is the compute cost of one forward pass.
	GFLOPsPerImage float64
	// ActBytesPerImage is the baseline activation (intermediate result)
	// memory per batch element, before the processor's ActFactor.
	ActBytesPerImage int64
}

// WeightBytes reports the serialized/loaded size of one expert.
func (a Architecture) WeightBytes() int64 { return a.Params * a.BytesPerParam }

func (a Architecture) String() string { return a.Name }

// Built-in architectures used by the paper's workload (§5.1):
// classification experts are ResNet101; object-detection experts are
// YOLOv5m and YOLOv5l.
var (
	ResNet101 = Architecture{
		Name:             "resnet101",
		Params:           44_549_160,
		BytesPerParam:    4,
		GFLOPsPerImage:   7.8,
		ActBytesPerImage: 89 * hw.MiB,
	}
	YOLOv5m = Architecture{
		Name:             "yolov5m",
		Params:           21_190_557,
		BytesPerParam:    4,
		GFLOPsPerImage:   12.0,
		ActBytesPerImage: 96 * hw.MiB,
	}
	YOLOv5l = Architecture{
		Name:             "yolov5l",
		Params:           46_533_693,
		BytesPerParam:    4,
		GFLOPsPerImage:   27.5,
		ActBytesPerImage: 118 * hw.MiB,
	}
)

// Architectures returns the built-in architectures keyed by name.
func Architectures() map[string]Architecture {
	return map[string]Architecture{
		ResNet101.Name: ResNet101,
		YOLOv5m.Name:   YOLOv5m,
		YOLOv5l.Name:   YOLOv5l,
	}
}

// ArchByName looks up a built-in architecture.
func ArchByName(name string) (Architecture, error) {
	if a, ok := Architectures()[name]; ok {
		return a, nil
	}
	return Architecture{}, fmt.Errorf("model: unknown architecture %q", name)
}

// KCoeff reports the marginal per-image execution latency K of the
// architecture on the processor (§4.2: latency = K·n + B).
func KCoeff(a Architecture, p hw.Processor) time.Duration {
	sec := a.GFLOPsPerImage * 1e9 / p.EffFLOPS
	return time.Duration(sec * float64(time.Second))
}

// ExecLatency reports the ground-truth execution latency of a batch of
// the given size:
//
//	K·batch + B + SatPenalty·max(0, batch-SatBatch)²
//
// The quadratic saturation term reproduces the interior average-latency
// optimum of Figure 5.
func ExecLatency(a Architecture, p hw.Processor, batch int) time.Duration {
	if batch < 1 {
		panic(fmt.Sprintf("model: batch %d < 1", batch))
	}
	lat := KCoeff(a, p)*time.Duration(batch) + p.LaunchOverhead
	if excess := batch - p.SatBatch; excess > 0 {
		lat += p.SatPenalty * time.Duration(excess*excess)
	}
	return lat
}

// AvgLatency reports ExecLatency divided by the batch size — the metric
// whose plateau defines the maximum batch size (§4.5, Figure 5).
func AvgLatency(a Architecture, p hw.Processor, batch int) time.Duration {
	return ExecLatency(a, p, batch) / time.Duration(batch)
}

// ActBytes reports the intermediate-result memory a batch occupies on
// the processor (Figure 6).
func ActBytes(a Architecture, p hw.Processor, batch int) int64 {
	if batch < 0 {
		panic(fmt.Sprintf("model: batch %d < 0", batch))
	}
	per := float64(a.ActBytesPerImage) * p.ActFactor
	return int64(per) * int64(batch)
}

// ActBytesPerImage reports the per-image activation footprint on the
// processor.
func ActBytesPerImage(a Architecture, p hw.Processor) int64 {
	return ActBytes(a, p, 1)
}

// Perf is one row of the performance matrix the offline profiler
// produces for an (architecture, processor) pair (§4.5).
type Perf struct {
	Arch Architecture
	Proc hw.Processor
	// K and B are the fitted linear execution-latency coefficients.
	K, B time.Duration
	// MaxBatch is the batch size where average latency plateaus.
	MaxBatch int
	// ActPerImage is the measured per-image activation footprint.
	ActPerImage int64
	// LoadSSD and LoadHost are measured expert load latencies from
	// storage and from host memory.
	LoadSSD, LoadHost time.Duration
}

// PredictExec applies the paper's §4.2 latency prediction: the first
// request in a batch costs K+B, each subsequent request costs K.
func (pf Perf) PredictExec(batch int) time.Duration {
	if batch < 1 {
		return 0
	}
	return pf.K*time.Duration(batch) + pf.B
}
