package model

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/hw"
)

func TestWeightBytesMatchPaperScale(t *testing.T) {
	// 352 ResNet101 classification experts should land near the paper's
	// "300+ experts ... 60 GB" (§1).
	total := 352 * ResNet101.WeightBytes()
	gb := float64(total) / 1e9
	if gb < 55 || gb > 70 {
		t.Errorf("352 ResNet101 experts = %.1f GB, want ~60 GB", gb)
	}
}

func TestExecLatencyLinearRegion(t *testing.T) {
	p := hw.NUMADevice().GPU
	k := KCoeff(ResNet101, p)
	for n := 1; n <= p.SatBatch; n++ {
		want := k*time.Duration(n) + p.LaunchOverhead
		if got := ExecLatency(ResNet101, p, n); got != want {
			t.Fatalf("ExecLatency(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestExecLatencySaturationPenalty(t *testing.T) {
	p := hw.NUMADevice().GPU
	atSat := ExecLatency(ResNet101, p, p.SatBatch)
	k := KCoeff(ResNet101, p)
	beyond := ExecLatency(ResNet101, p, p.SatBatch+4)
	linear := atSat + 4*k
	if beyond <= linear {
		t.Errorf("no saturation penalty: lat(%d) = %v <= linear %v", p.SatBatch+4, beyond, linear)
	}
}

func TestAvgLatencyHasInteriorOptimumOnCPU(t *testing.T) {
	// Figure 5 / §3.3: UMA CPU average latency is minimized at a small
	// batch size and worsens beyond it.
	p := hw.UMADevice().CPU
	best, bestN := time.Duration(1<<62), 0
	for n := 1; n <= 32; n++ {
		if avg := AvgLatency(ResNet101, p, n); avg < best {
			best, bestN = avg, n
		}
	}
	if bestN < 3 || bestN > 10 {
		t.Errorf("UMA CPU optimal batch = %d, want small interior optimum", bestN)
	}
	if AvgLatency(ResNet101, p, 32) <= best {
		t.Error("average latency at batch 32 should exceed the optimum")
	}
}

func TestAvgLatencyDecreasesInitially(t *testing.T) {
	for _, proc := range []hw.Processor{hw.NUMADevice().GPU, hw.NUMADevice().CPU, hw.UMADevice().GPU} {
		if AvgLatency(ResNet101, proc, 2) >= AvgLatency(ResNet101, proc, 1) {
			t.Errorf("%s: batching 2 should beat batch 1", proc.Name)
		}
	}
}

func TestCPUSlowerThanGPU(t *testing.T) {
	d := hw.NUMADevice()
	for _, a := range []Architecture{ResNet101, YOLOv5m, YOLOv5l} {
		if ExecLatency(a, d.CPU, 4) <= ExecLatency(a, d.GPU, 4) {
			t.Errorf("%s: CPU should be slower than GPU", a.Name)
		}
	}
}

func TestActBytesLinearInBatch(t *testing.T) {
	p := hw.NUMADevice().GPU
	per := ActBytesPerImage(ResNet101, p)
	if got := ActBytes(ResNet101, p, 7); got != 7*per {
		t.Errorf("ActBytes(7) = %d, want %d", got, 7*per)
	}
	if ActBytes(ResNet101, p, 0) != 0 {
		t.Error("ActBytes(0) should be 0")
	}
}

func TestActBytesMatchesSection33Ratio(t *testing.T) {
	// §3.3: increasing ResNet101's batch size by one consumes as much
	// memory as loading ~1.5 experts on the NUMA GPU.
	p := hw.NUMADevice().GPU
	ratio := float64(ActBytesPerImage(ResNet101, p)) / float64(ResNet101.WeightBytes())
	if ratio < 1.2 || ratio > 1.8 {
		t.Errorf("activation/weight ratio = %.2f, want ~1.5", ratio)
	}
}

func TestPerfPredictExec(t *testing.T) {
	pf := Perf{K: 2 * time.Millisecond, B: 5 * time.Millisecond}
	if got := pf.PredictExec(1); got != 7*time.Millisecond {
		t.Errorf("PredictExec(1) = %v, want 7ms", got)
	}
	if got := pf.PredictExec(10); got != 25*time.Millisecond {
		t.Errorf("PredictExec(10) = %v, want 25ms", got)
	}
	if pf.PredictExec(0) != 0 {
		t.Error("PredictExec(0) should be 0")
	}
}

func TestArchByName(t *testing.T) {
	for _, name := range []string{"resnet101", "yolov5m", "yolov5l"} {
		a, err := ArchByName(name)
		if err != nil || a.Name != name {
			t.Errorf("ArchByName(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := ArchByName("vgg"); err == nil {
		t.Error("unknown architecture should fail")
	}
}

func TestExecLatencyPanicsOnBadBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for batch 0")
		}
	}()
	ExecLatency(ResNet101, hw.NUMADevice().GPU, 0)
}

// Property: execution latency is strictly increasing in batch size for
// every built-in architecture and processor.
func TestExecLatencyMonotoneProperty(t *testing.T) {
	procs := []hw.Processor{
		hw.NUMADevice().GPU, hw.NUMADevice().CPU,
		hw.UMADevice().GPU, hw.UMADevice().CPU,
	}
	prop := func(archIdx, procIdx uint8, rawBatch uint8) bool {
		archs := []Architecture{ResNet101, YOLOv5m, YOLOv5l}
		a := archs[int(archIdx)%len(archs)]
		p := procs[int(procIdx)%len(procs)]
		n := 1 + int(rawBatch%63)
		return ExecLatency(a, p, n+1) > ExecLatency(a, p, n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
