package model

import (
	"fmt"

	"repro/internal/hw"
)

// PerfMatrix is the offline profiler's output (§4.5): one Perf entry per
// (architecture, processor kind). Experts sharing an architecture share
// an entry, because their computational complexity is identical.
type PerfMatrix map[string]Perf

// perfKey builds the matrix key.
func perfKey(arch string, kind hw.ProcKind) string {
	return arch + "/" + kind.String()
}

// Put stores the entry for an architecture on a processor kind.
func (pm PerfMatrix) Put(arch Architecture, kind hw.ProcKind, p Perf) {
	pm[perfKey(arch.Name, kind)] = p
}

// Lookup returns the entry for an architecture name on a processor kind.
func (pm PerfMatrix) Lookup(arch string, kind hw.ProcKind) (Perf, bool) {
	p, ok := pm[perfKey(arch, kind)]
	return p, ok
}

// MustLookup is Lookup that panics on a missing entry — used on paths
// where system validation has already guaranteed coverage.
func (pm PerfMatrix) MustLookup(arch string, kind hw.ProcKind) Perf {
	p, ok := pm.Lookup(arch, kind)
	if !ok {
		panic(fmt.Sprintf("model: no perf entry for %s on %s", arch, kind))
	}
	return p
}

// Covers reports whether the matrix has entries for every architecture
// in archs on both processor kinds.
func (pm PerfMatrix) Covers(archs []Architecture) error {
	for _, a := range archs {
		for _, kind := range []hw.ProcKind{hw.GPU, hw.CPU} {
			if _, ok := pm.Lookup(a.Name, kind); !ok {
				return fmt.Errorf("model: perf matrix missing %s on %s", a.Name, kind)
			}
		}
	}
	return nil
}
