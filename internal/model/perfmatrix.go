package model

import (
	"fmt"

	"repro/internal/hw"
)

// PerfKey identifies one matrix cell: an architecture name on a
// processor kind. A composite struct key instead of a concatenated
// string keeps Lookup allocation-free — executors and queue predictors
// consult the matrix on every request, so a per-lookup string build was
// the single largest allocation source of a serving run.
type PerfKey struct {
	Arch string
	Kind hw.ProcKind
}

// PerfMatrix is the offline profiler's output (§4.5): one Perf entry per
// (architecture, processor kind). Experts sharing an architecture share
// an entry, because their computational complexity is identical.
type PerfMatrix map[PerfKey]Perf

// Put stores the entry for an architecture on a processor kind.
func (pm PerfMatrix) Put(arch Architecture, kind hw.ProcKind, p Perf) {
	pm[PerfKey{Arch: arch.Name, Kind: kind}] = p
}

// Lookup returns the entry for an architecture name on a processor kind.
func (pm PerfMatrix) Lookup(arch string, kind hw.ProcKind) (Perf, bool) {
	p, ok := pm[PerfKey{Arch: arch, Kind: kind}]
	return p, ok
}

// MustLookup is Lookup that panics on a missing entry — used on paths
// where system validation has already guaranteed coverage.
func (pm PerfMatrix) MustLookup(arch string, kind hw.ProcKind) Perf {
	p, ok := pm.Lookup(arch, kind)
	if !ok {
		panic(fmt.Sprintf("model: no perf entry for %s on %s", arch, kind))
	}
	return p
}

// Covers reports whether the matrix has entries for every architecture
// in archs on both processor kinds.
func (pm PerfMatrix) Covers(archs []Architecture) error {
	for _, a := range archs {
		for _, kind := range []hw.ProcKind{hw.GPU, hw.CPU} {
			if _, ok := pm.Lookup(a.Name, kind); !ok {
				return fmt.Errorf("model: perf matrix missing %s on %s", a.Name, kind)
			}
		}
	}
	return nil
}
