package model

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/hw"
)

func samplePerfMatrix() PerfMatrix {
	pm := make(PerfMatrix)
	for _, arch := range []Architecture{ResNet101, YOLOv5m} {
		for _, kind := range []hw.ProcKind{hw.GPU, hw.CPU} {
			pm.Put(arch, kind, Perf{
				Arch: arch, Proc: hw.NUMADevice().Proc(kind),
				K: 2 * time.Millisecond, B: 5 * time.Millisecond,
				MaxBatch: 12, ActPerImage: 100 << 20,
				LoadSSD: time.Second, LoadHost: 300 * time.Millisecond,
			})
		}
	}
	return pm
}

func TestPerfMatrixRoundTrip(t *testing.T) {
	pm := samplePerfMatrix()
	var buf bytes.Buffer
	if err := pm.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerfMatrix(&buf, []Architecture{ResNet101, YOLOv5m})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pm) {
		t.Fatalf("entries = %d, want %d", len(got), len(pm))
	}
	for _, arch := range []Architecture{ResNet101, YOLOv5m} {
		for _, kind := range []hw.ProcKind{hw.GPU, hw.CPU} {
			want := pm.MustLookup(arch.Name, kind)
			have := got.MustLookup(arch.Name, kind)
			if have.K != want.K || have.B != want.B || have.MaxBatch != want.MaxBatch ||
				have.ActPerImage != want.ActPerImage || have.LoadSSD != want.LoadSSD ||
				have.LoadHost != want.LoadHost {
				t.Errorf("%s/%s: roundtrip mismatch: %+v vs %+v", arch.Name, kind, have, want)
			}
		}
	}
}

func TestReadPerfMatrixRejectsBadInput(t *testing.T) {
	if _, err := ReadPerfMatrix(strings.NewReader("not json"), nil); err == nil {
		t.Error("garbage accepted")
	}
	// Unknown architecture name.
	pm := samplePerfMatrix()
	var buf bytes.Buffer
	if err := pm.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPerfMatrix(bytes.NewReader(buf.Bytes()), []Architecture{YOLOv5l}); err == nil {
		t.Error("unknown architecture accepted")
	}
	// Implausible entries.
	bad := `[{"arch":"resnet101","proc":"GPU","k_ns":1,"b_ns":1,"max_batch":0,"act_per_image":1,"load_ssd_ns":1,"load_host_ns":1}]`
	if _, err := ReadPerfMatrix(strings.NewReader(bad), []Architecture{ResNet101}); err == nil {
		t.Error("zero max batch accepted")
	}
	badProc := `[{"arch":"resnet101","proc":"TPU","k_ns":1,"b_ns":1,"max_batch":4,"act_per_image":1,"load_ssd_ns":1,"load_host_ns":1}]`
	if _, err := ReadPerfMatrix(strings.NewReader(badProc), []Architecture{ResNet101}); err == nil {
		t.Error("unknown processor accepted")
	}
}

func TestPersistedMatrixDrivesProfiledWorkflow(t *testing.T) {
	// Simulates the intended workflow: profile once, persist, reload,
	// and verify coverage for the evaluation architectures.
	pm := samplePerfMatrix()
	var buf bytes.Buffer
	if err := pm.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerfMatrix(&buf, []Architecture{ResNet101, YOLOv5m, YOLOv5l})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Covers([]Architecture{ResNet101, YOLOv5m}); err != nil {
		t.Errorf("reloaded matrix lost coverage: %v", err)
	}
	if err := got.Covers([]Architecture{YOLOv5l}); err == nil {
		t.Error("coverage check passed for unprofiled architecture")
	}
}
