package core

import (
	"repro/internal/sim"
)

// NodeState is a joined system's lifecycle state on the cluster seam.
// A standalone system (NewSystem + Serve) is always NodeUp; the cluster
// layer's fault injection drives the transitions.
type NodeState int

const (
	// NodeUp: the node accepts offered work and serves normally.
	NodeUp NodeState = iota
	// NodeDraining: the node accepts no new work but finishes what it
	// already holds — the graceful removal path.
	NodeDraining
	// NodeDown: the node crashed. Queued work was voided (handed back to
	// the lease holder for redelivery), executors have exited, and Offer
	// refuses arrivals until Restart.
	NodeDown
)

func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "up"
	case NodeDraining:
		return "draining"
	case NodeDown:
		return "down"
	}
	return "unknown"
}

// Lease is the receipt Offer returns for an admitted request: the node
// holds the request until it acks completion through the stream
// delegate's RequestDone, and a crash voids every outstanding lease so
// the dispatcher can redeliver the requests elsewhere. The receipt
// identifies the request and the node that holds it; the dispatcher
// keys its ledger on Request (request identity survives redelivery, so
// completions can be counted exactly once).
type Lease struct {
	// Request is the leased request's identity (coe.Request.ID).
	Request int64
	// Node is the holding node's Config.ID.
	Node string
	// Issued is the virtual instant the node admitted the request.
	Issued sim.Time
}

// State reports the node's lifecycle state.
func (s *System) State() NodeState { return s.state }

// Serving reports whether the system currently has a stream open (Serve
// in progress, or JoinStream without its StreamReport yet).
func (s *System) Serving() bool { return s.serving }

// Outstanding reports the number of admitted requests not yet completed
// or dropped — the node's in-flight count, the drain-completion signal.
func (s *System) Outstanding() int64 {
	if s.ctrl == nil {
		return 0
	}
	return s.ctrl.admitted - s.ctrl.completed - s.ctrl.dropped
}

// Dropped reports the number of admitted requests voided by crashes so
// far in the current stream.
func (s *System) Dropped() int64 {
	if s.ctrl == nil {
		return 0
	}
	return s.ctrl.dropped
}

// Drain takes an Up node out of routing gracefully: the cluster stops
// offering it work and the node finishes what it holds. A no-op in any
// other state.
func (s *System) Drain() {
	if s.state == NodeUp {
		s.state = NodeDraining
	}
}

// Resume returns a Draining node to service. A no-op in any other state
// (a crashed node needs Restart).
func (s *System) Resume() {
	if s.state == NodeDraining {
		s.state = NodeUp
	}
}

// Crash kills the node abruptly: the state goes Down, the crash epoch
// advances (so executors mid-batch discard their results through the
// OnVoid path instead of acking voided work), every queued request is
// purged and dropped — recorded, recycled, and struck from the node's
// accounting so the stream can still finish exactly — and the executors
// are woken to observe the down state and exit. The requests a crash
// voids are the dispatcher's to redeliver: it held the leases. Returns
// the number of requests dropped from the queues (in-flight batches
// surface as drops later, when their virtual execution unwinds).
func (s *System) Crash(p *sim.Proc) int {
	return s.CrashAt(p.Now())
}

// CrashAt is Crash from event-callback context, naming the current
// virtual time explicitly — the entry point for crash verbs delivered
// into a node's partition as timed events by the sharded cluster
// kernel.
func (s *System) CrashAt(now sim.Time) int {
	if s.state == NodeDown {
		return 0
	}
	s.state = NodeDown
	s.epoch++
	// A crash wipes gray degradation with everything else: the restart
	// comes back at full speed (a persistent fault is scripted as a
	// fresh gray event after the recover).
	s.gray = nil
	if s.ctrl == nil || s.ctrl.finished {
		return 0
	}
	n := 0
	for _, q := range s.queues {
		for _, r := range q.Purge() {
			s.ctrl.drop(now, r)
			n++
		}
	}
	for _, q := range s.queues {
		q.Gate().Notify()
	}
	return n
}

// Restart returns a crashed node to service: the state goes Up and — if
// a stream is still open — a fresh set of executor processes is
// launched (the crashed epoch's processes exited, or will exit the
// moment they observe the epoch change). The node rejoins routing with
// empty queues; its pools keep whatever the crash left resident, the
// warm-restart analogue of a machine coming back with its disk intact.
func (s *System) Restart() {
	if s.state != NodeDown {
		return
	}
	s.state = NodeUp
	if s.serving && s.ctrl != nil && !s.ctrl.finished {
		for _, ex := range s.executors {
			ex := ex
			s.env.Go(ex.Name, ex.Run)
		}
	}
}
