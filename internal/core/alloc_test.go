package core

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/workload"
)

func TestCasualAllocationSplitsNUMA(t *testing.T) {
	dev := hw.NUMADevice()
	pm := perfFor(t, dev)
	a := CasualAllocation(dev, pm, 3, 1)
	// 75%/25% GPU split of usable memory (§5.2).
	usable := a.GPUExpertBytes + a.GPUActBytes
	if ratio := float64(a.GPUExpertBytes) / float64(usable); ratio < 0.74 || ratio > 0.76 {
		t.Errorf("GPU expert share = %.3f, want 0.75", ratio)
	}
	// GPU side must fit under the physical memory with 3 workspaces.
	total := usable + 3*dev.GPU.WorkspaceBytes
	if total > dev.GPUMemBytes {
		t.Errorf("GPU allocation %d exceeds capacity %d", total, dev.GPUMemBytes)
	}
	// CPU side: pool + cache + acts + workspace fits DRAM.
	cpuTotal := a.CPUExpertBytes + a.HostCacheBytes + a.CPUActBytes + dev.CPU.WorkspaceBytes
	if cpuTotal > dev.CPUMemBytes {
		t.Errorf("CPU allocation %d exceeds capacity %d", cpuTotal, dev.CPUMemBytes)
	}
	if a.HostCacheBytes <= 0 || a.CPUExpertBytes <= 0 || a.CPUActBytes <= 0 {
		t.Error("NUMA casual allocation left a CPU-side budget empty")
	}
}

func TestCasualAllocationUMAHasNoCache(t *testing.T) {
	dev := hw.UMADevice()
	pm := perfFor(t, dev)
	a := CasualAllocation(dev, pm, 2, 1)
	if a.HostCacheBytes != 0 {
		t.Error("UMA allocation should not have a host cache (§5.1)")
	}
	total := a.GPUExpertBytes + a.GPUActBytes + a.CPUExpertBytes + a.CPUActBytes +
		dev.OSReserveBytes + 2*dev.GPU.WorkspaceBytes + dev.CPU.WorkspaceBytes
	if total > dev.UnifiedMemBytes {
		t.Errorf("unified allocation %d exceeds %d", total, dev.UnifiedMemBytes)
	}
}

func TestCasualAllocationWithoutCPUExecutors(t *testing.T) {
	dev := hw.NUMADevice()
	pm := perfFor(t, dev)
	a := CasualAllocation(dev, pm, 3, 0)
	if a.CPUExpertBytes != 0 || a.CPUActBytes != 0 {
		t.Error("no CPU executors should mean no CPU pools or activations")
	}
	if a.HostCacheBytes <= 0 {
		t.Error("all spare CPU memory should become cache")
	}
}

func TestAllocationForExpertsSizesGPUPool(t *testing.T) {
	dev := hw.NUMADevice()
	pm := perfFor(t, dev)
	for _, n := range []int{10, 25, 40} {
		a := AllocationForExperts(dev, pm, n, 3, 1)
		want := int64(n) * model.ResNet101.WeightBytes()
		if a.GPUExpertBytes != want {
			t.Errorf("n=%d: expert bytes = %d, want %d", n, a.GPUExpertBytes, want)
		}
	}
	// More experts -> less activation memory.
	small := AllocationForExperts(dev, pm, 10, 3, 1)
	big := AllocationForExperts(dev, pm, 40, 3, 1)
	if big.GPUActBytes >= small.GPUActBytes {
		t.Error("activation budget should shrink as experts grow")
	}
}

func TestMaxGPUExpertsLeavesRoomForOneImage(t *testing.T) {
	for _, dev := range []*hw.Device{hw.NUMADevice(), hw.UMADevice()} {
		pm := perfFor(t, dev)
		n := MaxGPUExperts(dev, pm, 3, 1, testArchs)
		if n < 5 {
			t.Fatalf("%s: max experts = %d, implausibly small", dev.Name, n)
		}
		a := AllocationForExperts(dev, pm, n, 3, 1)
		var largestAct int64
		for _, arch := range testArchs {
			if act := pm.MustLookup(arch.Name, hw.GPU).ActPerImage; act > largestAct {
				largestAct = act
			}
		}
		if a.GPUActBytes < largestAct {
			t.Errorf("%s: at max experts, act budget %d below one image %d", dev.Name, a.GPUActBytes, largestAct)
		}
	}
}

func TestSambaAllocationUsesWholeGPU(t *testing.T) {
	dev := hw.NUMADevice()
	pm := perfFor(t, dev)
	a := SambaAllocation(dev, pm)
	// Samba reserves exactly a maximum batch of activations; everything
	// else of the single executor's usable GPU memory holds experts.
	p := pm.MustLookup(model.ResNet101.Name, hw.GPU)
	if want := int64(p.MaxBatch) * p.ActPerImage; a.GPUActBytes != want {
		t.Errorf("Samba act reserve = %d, want maxBatch x act = %d", a.GPUActBytes, want)
	}
	usable := dev.GPUMemBytes - dev.GPU.WorkspaceBytes
	if a.GPUExpertBytes != usable-a.GPUActBytes {
		t.Errorf("Samba pool = %d, want usable-act = %d", a.GPUExpertBytes, usable-a.GPUActBytes)
	}
	if a.HostCacheBytes <= 0 {
		t.Error("NUMA Samba uses CPU memory as its cache")
	}
	uma := SambaAllocation(hw.UMADevice(), perfFor(t, hw.UMADevice()))
	if uma.HostCacheBytes != 0 {
		t.Error("UMA Samba loads directly from SSD (§5.1): no cache")
	}
}

func TestDefaultExecutors(t *testing.T) {
	if g, c := DefaultExecutors(hw.NUMADevice()); g != 3 || c != 1 {
		t.Errorf("NUMA default = %dG+%dC, want 3G+1C", g, c)
	}
	if g, c := DefaultExecutors(hw.UMADevice()); g != 2 || c != 1 {
		t.Errorf("UMA default = %dG+%dC, want 2G+1C", g, c)
	}
}

func TestVariantProperties(t *testing.T) {
	if !Samba.singleExecutor() || !SambaFIFO.singleExecutor() || CoServe.singleExecutor() {
		t.Error("singleExecutor wrong")
	}
	if !SambaParallel.sharedPools() || CoServe.sharedPools() {
		t.Error("sharedPools wrong")
	}
	for _, v := range []Variant{Samba, SambaFIFO, SambaParallel} {
		if !v.coldStart() {
			t.Errorf("%v should cold start", v)
		}
	}
	for _, v := range []Variant{CoServeNone, CoServeEM, CoServeEMRA, CoServe} {
		if v.coldStart() {
			t.Errorf("%v should preload", v)
		}
	}
	// Policy mapping per §5.1/§5.3.
	if Samba.policy().Name() != "lru" || SambaFIFO.policy().Name() != "fifo" {
		t.Error("Samba policies wrong")
	}
	if CoServeNone.policy().Name() != "fifo" || CoServe.policy().Name() != "dep-aware" {
		t.Error("CoServe policies wrong")
	}
	if CoServe.assigner().Name() != "min-max" || Samba.assigner().Name() != "single" {
		t.Error("assigners wrong")
	}
	if CoServeEMRA.queueMode().String() != "grouped" || CoServeEM.queueMode().String() != "fifo" {
		t.Error("queue modes wrong")
	}
}

func TestSystemPreloadCoverage(t *testing.T) {
	// CoServe preloads pools to (near) capacity; Samba starts cold.
	board := boardFor(t, workload.BoardA())
	warm := buildSystem(t, hw.NUMADevice(), CoServe, board)
	if warm.LoadedExperts() < 50 {
		t.Errorf("CoServe preloaded only %d experts", warm.LoadedExperts())
	}
	cold := buildSystem(t, hw.NUMADevice(), Samba, board)
	if cold.LoadedExperts() != 0 {
		t.Errorf("Samba preloaded %d experts, want 0", cold.LoadedExperts())
	}
}
