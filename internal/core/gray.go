package core

import (
	"math/rand"
	"time"

	"repro/internal/sim"
)

// grayState is a node's active performance degradation — the gray-failure
// counterpart of the fail-stop lifecycle in lifecycle.go. A nil grayState
// is the healthy fast path: the executor Degrade hook returns immediately
// and timings are bit-identical to a build without the gray layer.
//
// Slow and jitter compose multiplicatively with each other and additively
// with a pending stall window; all three are pure functions of the
// virtual clock and a seeded RNG, so degraded runs stay byte-identical.
type grayState struct {
	// slow multiplies every batch's service time (1 = off).
	slow float64
	// jitter inflates each batch by an independent uniform factor in
	// [1, jitter] drawn from rng (1 = off).
	jitter float64
	rng    *rand.Rand
	// stallUntil freezes the node: batches starting before it do not
	// finish before it. Zero = off; it clears itself as the clock passes.
	stallUntil sim.Time
}

// SetSlow marks the node fail-slow: every batch runs factor× its
// profiled latency until ClearGray (or a crash) resets it.
func (s *System) SetSlow(factor float64) {
	s.grayFor().slow = factor
}

// SetJitter marks the node jittery: each batch's latency is multiplied
// by an independent uniform draw from [1, maxFactor]. The RNG is seeded
// here, so the draw sequence is a pure function of (seed, batch order)
// and runs stay byte-identical.
func (s *System) SetJitter(maxFactor float64, seed int64) {
	g := s.grayFor()
	g.jitter = maxFactor
	g.rng = rand.New(rand.NewSource(seed))
}

// Stall freezes the node for d from now: any batch starting inside the
// window has the remainder of the window added to its service time, so
// nothing started during the stall finishes before it ends. Queued and
// in-flight state is kept — the node resumes by itself.
func (s *System) Stall(now sim.Time, d time.Duration) {
	g := s.grayFor()
	if until := now.Add(d); until > g.stallUntil {
		g.stallUntil = until
	}
}

// ClearGray removes any active degradation — the gray recover.
func (s *System) ClearGray() { s.gray = nil }

// GrayDegraded reports whether a slow or jitter degradation is active.
// A pending stall does not count: it clears itself without a recover.
func (s *System) GrayDegraded() bool {
	return s.gray != nil && (s.gray.slow > 1 || s.gray.jitter > 1)
}

// grayFor returns the node's gray state, creating it on first use.
func (s *System) grayFor() *grayState {
	if s.gray == nil {
		s.gray = &grayState{slow: 1, jitter: 1}
	}
	return s.gray
}

// degrade is the executor Degrade hook: it maps a batch's profiled
// latency to the latency the degraded node actually serves. Wired on
// every executor; the nil check is the healthy node's entire cost.
func (s *System) degrade(p *sim.Proc, lat time.Duration) time.Duration {
	g := s.gray
	if g == nil {
		return lat
	}
	if g.slow > 1 {
		lat = time.Duration(float64(lat) * g.slow)
	}
	if g.jitter > 1 {
		lat = time.Duration(float64(lat) * (1 + (g.jitter-1)*g.rng.Float64()))
	}
	if g.stallUntil != 0 {
		now := p.Now()
		if remain := g.stallUntil.Sub(now); remain > 0 {
			lat += remain
		} else {
			g.stallUntil = 0
		}
	}
	return lat
}
