package core

import (
	"repro/internal/hw"
	"repro/internal/model"
)

// referenceArch is the architecture allocations are denominated in: the
// paper sizes GPU expert memory in "number of experts loaded", and its
// classification experts are ResNet101.
var referenceArch = model.ResNet101

// gpuUsable reports GPU-visible memory after the OS reserve and the
// per-executor framework workspaces. On UMA the CPU executors' runtime
// comes out of the same unified pool.
func gpuUsable(dev *hw.Device, gpuExecutors, cpuExecutors int) int64 {
	usable := dev.GPUCapacity() - dev.OSReserveBytes - int64(gpuExecutors)*dev.GPU.WorkspaceBytes
	if dev.Mem == hw.UMA {
		usable -= int64(cpuExecutors) * dev.CPU.WorkspaceBytes
	}
	return usable
}

// cpuUsable reports CPU DRAM left after executor workspaces on NUMA
// devices. Even with no CPU executors, one runtime instance (the
// controller and loader) occupies a workspace.
func cpuUsable(dev *hw.Device, cpuExecutors int) int64 {
	n := cpuExecutors
	if n < 1 {
		n = 1
	}
	return dev.CPUMemBytes - int64(n)*dev.CPU.WorkspaceBytes
}

// cpuActReserve applies the §4.4 rule for limited-compute processors:
// reserve exactly the activation memory the maximum batch size needs,
// leaving everything else for experts.
func cpuActReserve(dev *hw.Device, perf model.PerfMatrix, cpuExecutors int) int64 {
	if cpuExecutors == 0 {
		return 0
	}
	p := perf.MustLookup(referenceArch.Name, hw.CPU)
	return int64(cpuExecutors) * int64(p.MaxBatch) * p.ActPerImage
}

// DefaultAllocation resolves the memory layout a variant runs under by
// default: the Samba layout for the single-executor Samba arrangements,
// the casual split otherwise. The CLI and the experiments share it so a
// new variant's allocation rule has one home.
func DefaultAllocation(v Variant, dev *hw.Device, perf model.PerfMatrix, gpuExecutors, cpuExecutors int) Allocation {
	if v == Samba || v == SambaFIFO {
		return SambaAllocation(dev, perf)
	}
	return CasualAllocation(dev, perf, gpuExecutors, cpuExecutors)
}

// CasualAllocation is the intuitive configuration of §5.2 ("CoServe
// Casual"): 75 % of GPU memory for expert loading, 25 % for batch
// inference, CPU memory split between executor pools and the host cache.
func CasualAllocation(dev *hw.Device, perf model.PerfMatrix, gpuExecutors, cpuExecutors int) Allocation {
	var a Allocation
	switch dev.Mem {
	case hw.NUMA:
		usable := gpuUsable(dev, gpuExecutors, cpuExecutors)
		a.GPUExpertBytes = usable * 3 / 4
		a.GPUActBytes = usable - a.GPUExpertBytes
		remain := cpuUsable(dev, cpuExecutors)
		a.CPUActBytes = cpuActReserve(dev, perf, cpuExecutors)
		remain -= a.CPUActBytes
		if cpuExecutors > 0 {
			a.CPUExpertBytes = remain * 7 / 10
			a.HostCacheBytes = remain - a.CPUExpertBytes
		} else {
			a.HostCacheBytes = remain
		}
	case hw.UMA:
		usable := gpuUsable(dev, gpuExecutors, cpuExecutors)
		a.CPUActBytes = cpuActReserve(dev, perf, cpuExecutors)
		remain := usable - a.CPUActBytes
		if cpuExecutors > 0 {
			a.CPUExpertBytes = remain * 3 / 20
			remain -= a.CPUExpertBytes
		}
		a.GPUExpertBytes = remain * 3 / 4
		a.GPUActBytes = remain - a.GPUExpertBytes
	}
	return a
}

// AllocationForExperts sizes the GPU expert budget to hold exactly n
// reference experts (the quantity swept by the §4.4 decay-window search
// and Figure 18's x axis), leaving the rest of GPU memory to batch
// inference. CPU-side budgets follow the casual split.
func AllocationForExperts(dev *hw.Device, perf model.PerfMatrix, n int, gpuExecutors, cpuExecutors int) Allocation {
	a := CasualAllocation(dev, perf, gpuExecutors, cpuExecutors)
	usable := gpuUsable(dev, gpuExecutors, cpuExecutors)
	if dev.Mem == hw.UMA {
		usable -= a.CPUExpertBytes + a.CPUActBytes
	}
	a.GPUExpertBytes = int64(n) * referenceArch.WeightBytes()
	a.GPUActBytes = usable - a.GPUExpertBytes
	return a
}

// MaxGPUExperts reports the largest n for which AllocationForExperts
// still leaves every GPU executor able to run a one-image batch of the
// largest architecture — the upper end of the decay-window sweep.
func MaxGPUExperts(dev *hw.Device, perf model.PerfMatrix, gpuExecutors, cpuExecutors int, archs []model.Architecture) int {
	var largestAct int64
	for _, arch := range archs {
		p := perf.MustLookup(arch.Name, hw.GPU)
		if p.ActPerImage > largestAct {
			largestAct = p.ActPerImage
		}
	}
	usable := gpuUsable(dev, gpuExecutors, cpuExecutors)
	if dev.Mem == hw.UMA {
		a := CasualAllocation(dev, perf, gpuExecutors, cpuExecutors)
		usable -= a.CPUExpertBytes + a.CPUActBytes
	}
	n := int((usable - largestAct) / referenceArch.WeightBytes())
	if n < 0 {
		n = 0
	}
	return n
}

// SambaAllocation mirrors the Samba-CoE deployment of §5.1: one
// executor, with the whole GPU (minus a maximum-batch inference
// reservation) holding experts; on NUMA, all remaining CPU memory serves
// as the expert cache.
func SambaAllocation(dev *hw.Device, perf model.PerfMatrix) Allocation {
	var a Allocation
	p := perf.MustLookup(referenceArch.Name, hw.GPU)
	usable := gpuUsable(dev, 1, 0)
	a.GPUActBytes = int64(p.MaxBatch) * p.ActPerImage
	a.GPUExpertBytes = usable - a.GPUActBytes
	if dev.Mem == hw.NUMA {
		a.HostCacheBytes = cpuUsable(dev, 0)
	}
	return a
}

// DefaultExecutors returns the paper's casual executor topology: three
// GPU executors plus one CPU executor on NUMA devices, two plus one on
// UMA (§5.2).
func DefaultExecutors(dev *hw.Device) (gpus, cpus int) {
	if dev.Mem == hw.UMA {
		return 2, 1
	}
	return 3, 1
}
