package core

import (
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/hw"
	"repro/internal/trace"
	"repro/internal/workload"
)

// controlConfig assembles a CoServe casual config with control-plane
// knobs applied by the caller.
func controlConfig(t *testing.T, mutate func(*Config)) Config {
	t.Helper()
	dev := hw.NUMADevice()
	pm := perfFor(t, dev)
	g, c := DefaultExecutors(dev)
	cfg := Config{
		Device: dev, Variant: CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: CasualAllocation(dev, pm, g, c), Perf: pm,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

// overloadSource offers far more load than CoServe casual can serve on
// the NUMA device — the regime admission control exists for.
func overloadSource(t *testing.T, board *workload.Board, n int, seed int64) workload.Source {
	t.Helper()
	return poissonFor(t, "overload", board, 400, n, seed)
}

// TestAcceptAllBitCompatible is the refactor's core guarantee: a System
// with the explicit accept-all policy behaves identically to one with
// no admission policy at all.
func TestAcceptAllBitCompatible(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	run := func(mutate func(*Config)) *Report {
		s, err := NewSystem(controlConfig(t, mutate), board.Model)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Serve(poissonFor(t, "p", board, 100, 300, 17))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	bare := run(nil)
	accept := run(func(c *Config) { c.Admission = control.AcceptAll{} })
	if bare.Throughput != accept.Throughput || bare.Makespan != accept.Makespan ||
		bare.Switches != accept.Switches || bare.Completions != accept.Completions {
		t.Errorf("accept-all diverged from nil policy: %v/%v/%d vs %v/%v/%d",
			bare.Throughput, bare.Makespan, bare.Switches,
			accept.Throughput, accept.Makespan, accept.Switches)
	}
	if len(bare.Picks) != len(accept.Picks) {
		t.Fatalf("pick counts differ: %d vs %d", len(bare.Picks), len(accept.Picks))
	}
	for i := range bare.Picks {
		if bare.Picks[i] != accept.Picks[i] {
			t.Fatalf("pick %d differs under accept-all", i)
		}
	}
	if accept.Rejected != 0 || accept.RejectionRate != 0 {
		t.Errorf("accept-all rejected %d requests", accept.Rejected)
	}
	if accept.Offered != accept.N {
		t.Errorf("accept-all offered %d != admitted %d", accept.Offered, accept.N)
	}
}

// TestBoundedQueueBoundsBacklog: under heavy overload the bounded-queue
// policy must reject and the observed backlog must respect the bound.
func TestBoundedQueueBoundsBacklog(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	policy, err := control.NewBoundedQueue(32)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(controlConfig(t, func(c *Config) { c.Admission = policy }), board.Model)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Serve(overloadSource(t, board, 400, 23))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected == 0 {
		t.Fatal("no rejections under 10x overload with a 32-request bound")
	}
	if rep.Offered != 400 || rep.N+rep.Rejected != 400 {
		t.Errorf("conservation: offered %d, admitted %d, rejected %d", rep.Offered, rep.N, rep.Rejected)
	}
	if rep.Completions != rep.N {
		t.Errorf("admitted %d but completed %d", rep.N, rep.Completions)
	}
	// The bound gates admissions only: stage re-dispatches of in-flight
	// multi-stage requests can push the instantaneous backlog somewhat
	// past it (peak is sampled on every dispatch, re-dispatches
	// included), but it must stay O(bound), not O(offered).
	if rep.PeakQueued > 2*32 {
		t.Errorf("peak backlog %d not within 2x the bound 32", rep.PeakQueued)
	}
	if rep.RejectionRate <= 0 || rep.RejectionRate >= 1 {
		t.Errorf("rejection rate %v outside (0,1)", rep.RejectionRate)
	}
}

// TestRejectionPathTouchesNothing is the end-to-end isolation contract:
// a rejected request's only side effects are the rejection counters and
// one KindRejected trace event — no arrival, no assignment, no
// completion, no latency sample, no tenant latency aggregate.
func TestRejectionPathTouchesNothing(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	log := trace.New()
	policy, err := control.NewBoundedQueue(16)
	if err != nil {
		t.Fatal(err)
	}
	fast := poissonFor(t, "tenant-fast", board, 300, 300, 41)
	slow := poissonFor(t, "tenant-slow", board, 60, 60, 42)
	src, err := workload.Mix{Name: "mix", Tenants: []workload.Source{fast, slow}}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(controlConfig(t, func(c *Config) {
		c.Admission = policy
		c.Trace = log
		c.SLO = time.Second
	}), board.Model)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Serve(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected == 0 {
		t.Fatal("overloaded mix saw no rejections; the test exercises nothing")
	}

	// Trace: one KindRejected per rejection, and rejected IDs appear in
	// no other event kind.
	rejected := map[int64]bool{}
	for _, ev := range log.Filter(trace.KindRejected) {
		rejected[ev.Request] = true
	}
	if int64(len(rejected)) != rep.Rejected {
		t.Errorf("%d distinct rejected IDs in trace, want %d", len(rejected), rep.Rejected)
	}
	for _, ev := range log.Events() {
		if ev.Kind != trace.KindRejected && rejected[ev.Request] &&
			(ev.Kind == trace.KindArrival || ev.Kind == trace.KindAssign || ev.Kind == trace.KindComplete) {
			t.Fatalf("rejected request %d appears in a %s event", ev.Request, ev.Kind)
		}
	}
	if got := log.Count(trace.KindArrival); int64(got) != rep.N {
		t.Errorf("%d arrival events for %d admitted requests", got, rep.N)
	}
	if got := log.Count(trace.KindComplete); int64(got) != rep.Completions {
		t.Errorf("%d completion events for %d completions", got, rep.Completions)
	}

	// Recorder: completions and latency samples count admitted requests
	// only.
	if rep.Completions != rep.N {
		t.Errorf("completions %d != admitted %d", rep.Completions, rep.N)
	}
	if rep.Latency.N != int(rep.Completions) {
		t.Errorf("%d latency samples for %d completions", rep.Latency.N, rep.Completions)
	}

	// Tenants: admitted + rejected accounts for every offered request;
	// latency slices only cover completions.
	var admitted, rejectedN, completed int64
	for _, ts := range rep.PerTenant {
		admitted += ts.Admitted
		rejectedN += ts.Rejected
		completed += ts.Completions
		if ts.Completions != ts.Admitted {
			t.Errorf("tenant %s: admitted %d != completed %d", ts.Name, ts.Admitted, ts.Completions)
		}
		if ts.Latency.N != int(ts.Completions) {
			t.Errorf("tenant %s: %d latency samples for %d completions", ts.Name, ts.Latency.N, ts.Completions)
		}
	}
	if admitted != rep.N || rejectedN != rep.Rejected || completed != rep.Completions {
		t.Errorf("tenant totals %d/%d/%d, want %d/%d/%d",
			admitted, rejectedN, completed, rep.N, rep.Rejected, rep.Completions)
	}
}

// TestTenantMapCleanedOnCompletion is the leak regression: the
// controller's in-flight tenant map must be empty once a stream
// completes — entries are deleted as requests finish, and rejected
// requests never enter it.
func TestTenantMapCleanedOnCompletion(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	policy, err := control.NewBoundedQueue(16)
	if err != nil {
		t.Fatal(err)
	}
	a := poissonFor(t, "tenant-a", board, 250, 250, 51)
	b := poissonFor(t, "tenant-b", board, 50, 50, 52)
	src, err := workload.Mix{Name: "mix", Tenants: []workload.Source{a, b}}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(controlConfig(t, func(c *Config) { c.Admission = policy }), board.Model)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Serve(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected == 0 {
		t.Fatal("expected rejections to exercise the reject-then-never-complete path")
	}
	if n := len(s.ctrl.tenantOf); n != 0 {
		t.Errorf("tenantOf holds %d entries after the stream drained; completed and rejected requests must not linger", n)
	}
}

// TestTokenBucketShapesAdmission: the token bucket admits at most
// rate*duration + burst requests regardless of the offered load.
func TestTokenBucketShapesAdmission(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	policy, err := control.NewTokenBucket(20, 10)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(controlConfig(t, func(c *Config) { c.Admission = policy }), board.Model)
	if err != nil {
		t.Fatal(err)
	}
	// 400 requests at ~400/s: the stream spans about one second, so the
	// bucket admits roughly 20*1s + 10 ≈ 30 of the 400.
	rep, err := s.Serve(overloadSource(t, board, 400, 61))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected == 0 {
		t.Fatal("token bucket rejected nothing under overload")
	}
	if rep.N < 10 || rep.N > 80 {
		t.Errorf("token bucket admitted %d of 400 at 20/s over ~1s; want a few dozen", rep.N)
	}
	if rep.Completions != rep.N {
		t.Errorf("admitted %d but completed %d", rep.N, rep.Completions)
	}
}

// TestDeadlineShedProtectsAttainment: under overload, shedding requests
// predicted to miss keeps the admitted requests' SLO attainment far
// above the accept-all collapse.
func TestDeadlineShedProtectsAttainment(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	const slo = 500 * time.Millisecond
	run := func(mutate func(*Config)) *Report {
		s, err := NewSystem(controlConfig(t, func(c *Config) {
			c.SLO = slo
			if mutate != nil {
				mutate(c)
			}
		}), board.Model)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Serve(overloadSource(t, board, 400, 71))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	open := run(nil)
	policy, err := control.NewDeadlineShed(slo)
	if err != nil {
		t.Fatal(err)
	}
	shed := run(func(c *Config) { c.Admission = policy })
	if shed.Rejected == 0 {
		t.Fatal("deadline shedding rejected nothing under overload")
	}
	// The prediction is optimistic (later arrivals may merge into groups
	// ahead of an admitted request), so attainment does not reach 1 — but
	// it must sit far above the accept-all collapse (~0.005 here).
	if shed.SLOAttainment < 10*open.SLOAttainment {
		t.Errorf("shedding attainment %.3f not >= 10x accept-all %.3f",
			shed.SLOAttainment, open.SLOAttainment)
	}
	if shed.SLOAttainment < 0.2 {
		t.Errorf("shedding attainment %.3f below 0.2", shed.SLOAttainment)
	}
}

// TestServeRejectsUnboundedSource: an infinite steady-state source must
// be refused without a horizon and served normally with one.
func TestServeRejectsUnboundedSource(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	s := buildSystem(t, hw.NUMADevice(), CoServe, board)
	infinite, err := workload.Steady{Name: "steady", Board: board, Rate: 50, Seed: 81}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Serve(infinite); err == nil {
		t.Fatal("unbounded source accepted without a horizon")
	}
	// A mix hiding an infinite tenant is just as unbounded.
	tenant, err := workload.Steady{Name: "steady", Board: board, Rate: 50, Seed: 82}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := workload.Mix{Name: "mix", Tenants: []workload.Source{tenant}}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Serve(mixed); err == nil {
		t.Fatal("mix with an unbounded tenant accepted without a horizon")
	}
	// The refusal happens before any state changes: the system still
	// serves a bounded stream.
	bounded, err := workload.Steady{Name: "steady", Board: board, Rate: 50, Seed: 81}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Serve(workload.Horizon(bounded, 2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions == 0 || rep.Completions != rep.N {
		t.Errorf("horizon stream: admitted %d, completed %d", rep.N, rep.Completions)
	}
}

// TestWindowedReportSeries: with a window configured, the report's
// series conserves every counter.
func TestWindowedReportSeries(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	policy, err := control.NewBoundedQueue(24)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(controlConfig(t, func(c *Config) {
		c.Admission = policy
		c.Window = 100 * time.Millisecond
	}), board.Model)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Serve(overloadSource(t, board, 300, 91))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Windows) == 0 {
		t.Fatal("no windowed series despite Config.Window")
	}
	var arr, comp, rej int64
	for _, w := range rep.Windows {
		arr += w.Arrivals
		comp += w.Completions
		rej += w.Rejections
	}
	if arr != rep.N || comp != rep.Completions || rej != rep.Rejected {
		t.Errorf("window sums %d/%d/%d, want %d/%d/%d",
			arr, comp, rej, rep.N, rep.Completions, rep.Rejected)
	}
}

// TestAutoscalerScalesWithLoad: a hysteresis autoscaler shrinks the
// active set on a trickle stream and grows it back under overload —
// deterministically.
func TestAutoscalerScalesWithLoad(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	scaler, err := control.NewHysteresisScaler(0.3, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	cfg := controlConfig(t, func(c *Config) { c.Autoscaler = scaler })
	s, err := NewSystem(cfg, board.Model)
	if err != nil {
		t.Fatal(err)
	}
	g0, c0 := s.Active()
	if g0 != cfg.GPUExecutors || c0 != cfg.CPUExecutors {
		t.Fatalf("initial active set %dG+%dC, want full %dG+%dC", g0, c0, cfg.GPUExecutors, cfg.CPUExecutors)
	}
	// A long trickle: far below capacity, the scaler should shed
	// executors.
	trickle, err := s.Serve(poissonFor(t, "trickle", board, 2, 40, 101))
	if err != nil {
		t.Fatal(err)
	}
	if trickle.ActiveGPU >= cfg.GPUExecutors && trickle.ActiveCPU >= cfg.CPUExecutors {
		t.Errorf("trickle stream left the full topology active (%dG+%dC)", trickle.ActiveGPU, trickle.ActiveCPU)
	}
	if trickle.ActiveGPU < 1 {
		t.Errorf("active GPUs fell below the floor: %d", trickle.ActiveGPU)
	}
	if trickle.Completions != trickle.N {
		t.Errorf("scaled-down stream dropped work: %d of %d", trickle.Completions, trickle.N)
	}
	// The scaled-down topology persists into the next stream (the
	// between-streams decision), then overload grows it back.
	burst, err := s.Serve(overloadSource(t, board, 400, 102))
	if err != nil {
		t.Fatal(err)
	}
	if burst.ActiveGPU <= trickle.ActiveGPU && burst.ActiveCPU <= trickle.ActiveCPU {
		t.Errorf("overload did not grow the active set: %dG+%dC -> %dG+%dC",
			trickle.ActiveGPU, trickle.ActiveCPU, burst.ActiveGPU, burst.ActiveCPU)
	}
	if burst.Completions != burst.N {
		t.Errorf("scaled-up stream dropped work: %d of %d", burst.Completions, burst.N)
	}
}

func TestAutoscalerDeterministic(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	run := func() *Report {
		scaler, err := control.NewHysteresisScaler(0.3, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSystem(controlConfig(t, func(c *Config) { c.Autoscaler = scaler }), board.Model)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Serve(poissonFor(t, "p", board, 30, 200, 111))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Throughput != b.Throughput || a.Makespan != b.Makespan ||
		a.ActiveGPU != b.ActiveGPU || a.ActiveCPU != b.ActiveCPU {
		t.Errorf("autoscaled serve nondeterministic: %v/%v/%d/%d vs %v/%v/%d/%d",
			a.Throughput, a.Makespan, a.ActiveGPU, a.ActiveCPU,
			b.Throughput, b.Makespan, b.ActiveGPU, b.ActiveCPU)
	}
}

func TestAutoscalerRejectsReplayConfig(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	scaler, err := control.NewHysteresisScaler(0.3, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	cfg := controlConfig(t, func(c *Config) {
		c.Autoscaler = scaler
		c.PreschedPicks = []int{0, 1}
	})
	if _, err := NewSystem(cfg, board.Model); err == nil {
		t.Error("autoscaler + pre-scheduled picks accepted")
	}
}
