package core

import (
	"repro/internal/coe"
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/profiler"
	"repro/internal/workload"
)

var testArchs = []model.Architecture{model.ResNet101, model.YOLOv5m, model.YOLOv5l}

// perfCache memoizes the profiled matrices per device.
var perfCache = map[string]model.PerfMatrix{}

func perfFor(t testing.TB, dev *hw.Device) model.PerfMatrix {
	t.Helper()
	if pm, ok := perfCache[dev.Name]; ok {
		return pm
	}
	pm, err := profiler.Matrix(dev, testArchs)
	if err != nil {
		t.Fatal(err)
	}
	perfCache[dev.Name] = pm
	return pm
}

var boardCache = map[string]*workload.Board{}

func boardFor(t testing.TB, spec workload.BoardSpec) *workload.Board {
	t.Helper()
	if b, ok := boardCache[spec.Name]; ok {
		return b
	}
	b, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	boardCache[spec.Name] = b
	return b
}

// buildSystem assembles a variant with casual allocation on the device.
func buildSystem(t testing.TB, dev *hw.Device, v Variant, board *workload.Board) *System {
	t.Helper()
	pm := perfFor(t, dev)
	g, c := DefaultExecutors(dev)
	cfg := Config{Device: dev, Variant: v, GPUExecutors: g, CPUExecutors: c, Perf: pm}
	if v.singleExecutor() {
		cfg.Alloc = SambaAllocation(dev, pm)
	} else {
		cfg.Alloc = CasualAllocation(dev, pm, g, c)
	}
	s, err := NewSystem(cfg, board.Model)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func smallTask(board *workload.Board, n int) workload.Task {
	return workload.Task{Name: "small", Board: board, N: n, ArrivalPeriod: workload.DefaultArrivalPeriod, Seed: 99}
}

func TestSystemCompletesSmallTask(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	for _, v := range Variants() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			s := buildSystem(t, hw.NUMADevice(), v, board)
			rep, err := s.RunTask(smallTask(board, 200))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Completions != 200 {
				t.Errorf("completions = %d, want 200", rep.Completions)
			}
			if rep.Throughput <= 0 {
				t.Error("throughput not positive")
			}
			// Conservation: per-executor processed stages must cover all
			// requests (first stages) plus second stages.
			var processed int64
			for _, ex := range rep.PerExecutor {
				processed += ex.Processed
			}
			if processed < rep.Completions {
				t.Errorf("stages processed %d < completions %d", processed, rep.Completions)
			}
		})
	}
}

func TestSystemRunsOnBothDevices(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	for _, dev := range []*hw.Device{hw.NUMADevice(), hw.UMADevice()} {
		s := buildSystem(t, dev, CoServe, board)
		rep, err := s.RunTask(smallTask(board, 150))
		if err != nil {
			t.Fatalf("%s: %v", dev.Name, err)
		}
		if rep.Completions != 150 {
			t.Errorf("%s: completions = %d", dev.Name, rep.Completions)
		}
	}
}

func TestSystemDeterministic(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	run := func() *Report {
		s := buildSystem(t, hw.NUMADevice(), CoServe, board)
		rep, err := s.RunTask(smallTask(board, 200))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Throughput != b.Throughput || a.Switches != b.Switches || a.Makespan != b.Makespan {
		t.Errorf("nondeterministic: %v/%v vs %v/%v", a.Throughput, a.Switches, b.Throughput, b.Switches)
	}
	for i := range a.Picks {
		if a.Picks[i] != b.Picks[i] {
			t.Fatalf("pick %d differs", i)
		}
	}
}

func TestCoServeBeatsSambaOnThroughput(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	task := smallTask(board, 400)
	samba := buildSystem(t, hw.NUMADevice(), Samba, board)
	sambaRep, err := samba.RunTask(task)
	if err != nil {
		t.Fatal(err)
	}
	cosrv := buildSystem(t, hw.NUMADevice(), CoServe, board)
	cosrvRep, err := cosrv.RunTask(task)
	if err != nil {
		t.Fatal(err)
	}
	if cosrvRep.Throughput <= sambaRep.Throughput {
		t.Errorf("CoServe %.2f img/s not above Samba %.2f img/s",
			cosrvRep.Throughput, sambaRep.Throughput)
	}
	if cosrvRep.Switches >= sambaRep.Switches {
		t.Errorf("CoServe switches %d not below Samba %d",
			cosrvRep.Switches, sambaRep.Switches)
	}
}

func TestPreschedReplayServesOnlyOneStream(t *testing.T) {
	// A replay system reissues one recorded pick sequence; a second
	// stream must be rejected cleanly, not run the replay off its end.
	board := boardFor(t, workload.BoardA())
	online := buildSystem(t, hw.NUMADevice(), CoServe, board)
	onlineRep, err := online.RunTask(smallTask(board, 100))
	if err != nil {
		t.Fatal(err)
	}
	pm := perfFor(t, hw.NUMADevice())
	g, c := DefaultExecutors(hw.NUMADevice())
	cfg := Config{
		Device: hw.NUMADevice(), Variant: CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: CasualAllocation(hw.NUMADevice(), pm, g, c),
		Perf:  pm, PreschedPicks: onlineRep.Picks,
	}
	replay, err := NewSystem(cfg, board.Model)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replay.RunTask(smallTask(board, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := replay.RunTask(smallTask(board, 100)); err == nil {
		t.Error("second stream on a replay system accepted")
	}
}

func TestPreschedReplayMatchesOnlineOrder(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	online := buildSystem(t, hw.NUMADevice(), CoServe, board)
	onlineRep, err := online.RunTask(smallTask(board, 200))
	if err != nil {
		t.Fatal(err)
	}
	pm := perfFor(t, hw.NUMADevice())
	g, c := DefaultExecutors(hw.NUMADevice())
	cfg := Config{
		Device: hw.NUMADevice(), Variant: CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: CasualAllocation(hw.NUMADevice(), pm, g, c),
		Perf:  pm, PreschedPicks: onlineRep.Picks,
	}
	replay, err := NewSystem(cfg, board.Model)
	if err != nil {
		t.Fatal(err)
	}
	replayRep, err := replay.RunTask(smallTask(board, 200))
	if err != nil {
		t.Fatal(err)
	}
	if replayRep.SchedOps != 0 {
		t.Errorf("replay recorded %d sched ops, want 0", replayRep.SchedOps)
	}
	// Zero-overhead scheduling in virtual time: identical makespan.
	if replayRep.Makespan != onlineRep.Makespan {
		t.Errorf("replay makespan %v != online %v", replayRep.Makespan, onlineRep.Makespan)
	}
	if replayRep.Switches != onlineRep.Switches {
		t.Errorf("replay switches %d != online %d", replayRep.Switches, onlineRep.Switches)
	}
}

func TestSystemRejectsBadConfigs(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	pm := perfFor(t, hw.NUMADevice())
	bad := []Config{
		{},
		{Device: hw.NUMADevice()},
		{Device: hw.NUMADevice(), GPUExecutors: 1, Perf: pm},
		{Device: hw.NUMADevice(), GPUExecutors: 1, Perf: pm,
			Alloc: Allocation{GPUExpertBytes: 1, GPUActBytes: 1 << 30}},
		// Over-committed GPU memory.
		{Device: hw.NUMADevice(), GPUExecutors: 1, Perf: pm,
			Alloc: Allocation{GPUExpertBytes: 11 << 30, GPUActBytes: 11 << 30}},
	}
	for i, cfg := range bad {
		if _, err := NewSystem(cfg, board.Model); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunTaskRepeatable(t *testing.T) {
	// The serving lifecycle allows consecutive tasks on one System; both
	// runs must fully complete and report independently.
	board := boardFor(t, workload.BoardA())
	s := buildSystem(t, hw.NUMADevice(), CoServe, board)
	r1, err := s.RunTask(smallTask(board, 50))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.RunTask(smallTask(board, 50))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Completions != 50 || r2.Completions != 50 {
		t.Errorf("completions = %d, %d; want 50, 50", r1.Completions, r2.Completions)
	}
	if s.Runs() != 2 {
		t.Errorf("Runs() = %d, want 2", s.Runs())
	}
}

func TestVariantStrings(t *testing.T) {
	for _, v := range Variants() {
		if v.String() == "" {
			t.Errorf("variant %d has empty name", int(v))
		}
	}
	if Variant(99).String() == "" {
		t.Error("unknown variant string empty")
	}
}

// TestPreloadPlanOverridesUsageOrder: a Config.Preload list replaces
// the §4.1 descending-usage initialization with exactly the planned
// experts, and an empty non-nil plan preloads nothing.
func TestPreloadPlanOverridesUsageOrder(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	pm := perfFor(t, hw.NUMADevice())
	g, c := DefaultExecutors(hw.NUMADevice())
	base := Config{
		Device: hw.NUMADevice(), Variant: CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: CasualAllocation(hw.NUMADevice(), pm, g, c), Perf: pm,
	}

	plan := base
	plan.Preload = []coe.ExpertID{5, 9, 13}
	s, err := NewSystem(plan, board.Model)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.LoadedExperts(); got != 3 {
		t.Errorf("planned preload loaded %d experts, want 3", got)
	}
	for _, id := range plan.Preload {
		if !s.ExpertResident(id) {
			t.Errorf("planned expert %d not resident", id)
		}
	}

	empty := base
	empty.Preload = []coe.ExpertID{}
	s2, err := NewSystem(empty, board.Model)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.LoadedExperts(); got != 0 {
		t.Errorf("empty plan preloaded %d experts, want 0", got)
	}

	bad := base
	bad.Preload = []coe.ExpertID{coe.ExpertID(board.Model.NumExperts())}
	if _, err := NewSystem(bad, board.Model); err == nil {
		t.Error("NewSystem accepted an out-of-range preload plan")
	}

	// Default (nil) stays the usage-order initialization: the hottest
	// expert must be resident.
	s3, err := NewSystem(base, board.Model)
	if err != nil {
		t.Fatal(err)
	}
	hottest := board.Model.ExpertsByUsage()[0]
	if !s3.ExpertResident(hottest.ID) {
		t.Error("default initialization left the hottest expert out")
	}
}

// TestConfigIDPrefixesNames: a node ID namespaces executor and pool
// names; an empty ID leaves them untouched.
func TestConfigIDPrefixesNames(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	s := buildSystem(t, hw.NUMADevice(), CoServe, board)
	if got := s.Queues()[0].Name(); got != "gpu0" {
		t.Errorf("unprefixed queue named %q, want gpu0", got)
	}
	pm := perfFor(t, hw.NUMADevice())
	g, c := DefaultExecutors(hw.NUMADevice())
	cfg := Config{
		Device: hw.NUMADevice(), Variant: CoServe, ID: "node7",
		GPUExecutors: g, CPUExecutors: c,
		Alloc: CasualAllocation(hw.NUMADevice(), pm, g, c), Perf: pm,
	}
	s2, err := NewSystem(cfg, board.Model)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Queues()[0].Name(); got != "node7/gpu0" {
		t.Errorf("prefixed queue named %q, want node7/gpu0", got)
	}
	if got := s2.Pools()[0].Name(); got != "node7/gpu0" {
		t.Errorf("prefixed pool named %q, want node7/gpu0", got)
	}
}
