// Package core assembles CoServe and its baselines: the inference
// controller, executor creation, expert initialization (§4.1), and the
// system variants evaluated in §5 — Samba-CoE, Samba-CoE FIFO, Samba-CoE
// Parallel, and the CoServe ablations (None / EM / EM+RA / full).
package core

import (
	"fmt"
	"time"

	"repro/internal/coe"
	"repro/internal/control"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/trace"
)

// DefaultControlWindow is the control-plane interval used when an
// Autoscaler is configured without an explicit Window: the width of the
// windowed metrics series and the autoscaler's decision cadence.
const DefaultControlWindow = 250 * time.Millisecond

// Variant selects a serving system design.
type Variant int

const (
	// Samba is the Samba-CoE baseline: one GPU executor, FCFS request
	// handling, LRU expert replacement, tiered CPU cache on NUMA (§5.1).
	Samba Variant = iota
	// SambaFIFO is Samba with FIFO expert replacement.
	SambaFIFO
	// SambaParallel is Samba with CoServe's executor count and
	// round-robin request distribution.
	SambaParallel
	// CoServeNone is CoServe with all optimizations off: FIFO eviction,
	// FIFO arrival-order queues, round-robin distribution (§5.3).
	CoServeNone
	// CoServeEM adds dependency-aware expert management.
	CoServeEM
	// CoServeEMRA adds request arranging on top of CoServeEM.
	CoServeEMRA
	// CoServe is the full system: expert management, request arranging,
	// and dependency-aware request assigning.
	CoServe
)

var variantNames = map[Variant]string{
	Samba:         "samba-coe",
	SambaFIFO:     "samba-coe-fifo",
	SambaParallel: "samba-coe-parallel",
	CoServeNone:   "coserve-none",
	CoServeEM:     "coserve-em",
	CoServeEMRA:   "coserve-em-ra",
	CoServe:       "coserve",
}

func (v Variant) String() string {
	if s, ok := variantNames[v]; ok {
		return s
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Variants lists all variants in evaluation order.
func Variants() []Variant {
	return []Variant{Samba, SambaFIFO, SambaParallel, CoServeNone, CoServeEM, CoServeEMRA, CoServe}
}

// policy returns the variant's eviction policy.
func (v Variant) policy() pool.Policy {
	switch v {
	case Samba, SambaParallel:
		return pool.LRU{}
	case SambaFIFO, CoServeNone:
		return pool.FIFO{}
	default:
		return pool.DepAware{}
	}
}

// queueMode returns the variant's request-arranging mode.
func (v Variant) queueMode() sched.Mode {
	switch v {
	case CoServeEMRA, CoServe:
		return sched.ModeGrouped
	default:
		return sched.ModeFIFO
	}
}

// assigner returns a fresh assigner for the variant.
func (v Variant) assigner() sched.Assigner {
	switch v {
	case Samba, SambaFIFO:
		return sched.Single{}
	case CoServe:
		return sched.MinMax{}
	default:
		// Samba-CoE Parallel and the ablation baselines distribute
		// requests evenly across executors in arrival order (§5.1,
		// §5.3).
		return &sched.RoundRobin{}
	}
}

// singleExecutor reports whether the variant pins the topology to one
// GPU executor (the Samba-CoE serving arrangement).
func (v Variant) singleExecutor() bool { return v == Samba || v == SambaFIFO }

// sharedPools reports whether executors of the same processor share one
// model pool. Samba-CoE Parallel adds executors to Samba's design, whose
// expert store is a single HBM pool; CoServe gives every executor its
// own pool (Figure 7).
func (v Variant) sharedPools() bool { return v == SambaParallel }

// coldStart reports whether the system starts with empty pools. The
// Samba-CoE baselines manage experts by historical statistics only —
// they have no pre-assessed usage probabilities to preload by (§2.2,
// §3.2) — so their tiers warm organically under LRU/FIFO. CoServe's
// expert initializer (§4.1) is one of its contributions and applies to
// all CoServe variants, including the ablations.
func (v Variant) coldStart() bool {
	return v == Samba || v == SambaFIFO || v == SambaParallel
}

// Allocation divides device memory between expert storage, the host
// cache, and batch intermediate results (§3.3, §4.4). All byte counts
// are totals: per-pool capacities are derived by dividing across
// executors.
type Allocation struct {
	// GPUExpertBytes is the expert-storage budget across all GPU pools.
	GPUExpertBytes int64
	// CPUExpertBytes is the expert-storage budget across all CPU pools.
	CPUExpertBytes int64
	// HostCacheBytes is the NUMA host cache for GPU-evicted experts.
	HostCacheBytes int64
	// GPUActBytes and CPUActBytes budget batch intermediate results.
	GPUActBytes int64
	CPUActBytes int64
}

// Config describes one serving system instance.
type Config struct {
	Device  *hw.Device
	Variant Variant
	// ID, when non-empty, namespaces the system's executor, queue, and
	// pool names ("node0/gpu1") — set by the cluster layer so per-node
	// report rows stay distinguishable. Empty for single systems: names
	// stay exactly "gpu0", "cpu0", ….
	ID string
	// Preload, when non-nil, replaces the §4.1 descending-usage preload
	// order with an explicit expert list — the cluster placement hook.
	// Experts are preloaded round-robin across the system's pools in
	// list order until the pools fill; an empty non-nil slice preloads
	// nothing. Ignored by the cold-start (Samba) variants, which never
	// preload.
	Preload []coe.ExpertID
	// GPUExecutors and CPUExecutors set the topology. Samba and
	// SambaFIFO override to 1 GPU / 0 CPU.
	GPUExecutors int
	CPUExecutors int
	Alloc        Allocation
	// Perf is the offline profiler's performance matrix.
	Perf model.PerfMatrix
	// SLO is the per-request end-to-end latency objective reports score
	// attainment against. Zero disables SLO accounting (attainment
	// reports as 1).
	SLO time.Duration
	// PreschedPicks, when non-nil, replays a recorded assignment
	// sequence instead of scheduling online (Figure 19's pre-scheduled
	// control).
	PreschedPicks []int
	// Trace, when non-nil, records assignment, switch, batch, and
	// completion events of the run.
	Trace *trace.Log
	// EvictPolicy, when non-nil, overrides the variant's eviction policy
	// (for design-choice ablations such as prob-only vs two-stage).
	EvictPolicy pool.Policy
	// Admission, when non-nil, is the control plane's admission policy:
	// it is consulted once per arriving request and may reject it before
	// it touches a queue. Nil (and control.AcceptAll) admit everything —
	// both are byte-identical to the pre-control-plane behavior.
	Admission control.AdmissionPolicy
	// Autoscaler, when non-nil, resizes the active executor set once per
	// Window based on measured utilization. Deactivated executors keep
	// their pools warm (scaling back up reuses loaded experts); the
	// active counts persist across consecutive streams, so between-stream
	// scaling falls out of the same loop. Incompatible with
	// PreschedPicks, whose recorded indices assume a fixed queue set.
	Autoscaler control.Autoscaler
	// Window is the width of the recorder's windowed
	// throughput/latency/rejection series and the autoscaler's control
	// interval. Zero disables windowed metrics, unless an Autoscaler is
	// set, in which case it defaults to DefaultControlWindow.
	Window time.Duration
	// Percentiles selects how latency percentiles are computed. The
	// zero value (PercentilesExact) stores every sample and reports
	// exact percentiles — the mode golden experiments run in, byte-
	// identical to the pre-sketch behavior. PercentilesSketch streams
	// samples into a fixed-size mergeable quantile sketch instead, so
	// recorder memory is O(1) in completions; percentiles then carry
	// the sketch's documented relative-accuracy bound (1%).
	Percentiles PercentileMode
	// DisablePicks stops the per-dispatch assignment recording that
	// feeds Report.Picks and PreschedPicks replay. The picks slice
	// grows with the total stage count of the stream — fine for the
	// paper's bounded tasks, unwanted for fleet-scale streams of
	// millions of requests. Off by default.
	DisablePicks bool
	// ExternalRecycle hands request-object ownership to the stream
	// delegate: the controller stops recycling requests on rejection,
	// completion, and crash-void (drops route through the delegate's
	// DropDelegate hook instead), and the env owner recycles each
	// request after its own accounting. The sharded cluster kernel sets
	// this on every node so arena recycling stays on the single
	// coordinator partition; meaningless without a StreamDelegate.
	ExternalRecycle bool
}

// PercentileMode selects exact (store-every-sample) or sketch
// (fixed-size streaming) latency percentile accounting.
type PercentileMode int

const (
	// PercentilesExact stores every latency sample; percentiles are
	// exact. The default.
	PercentilesExact PercentileMode = iota
	// PercentilesSketch streams samples into a mergeable quantile
	// sketch (stats.Sketch); memory is O(1) in completions and
	// percentiles are accurate to the sketch's documented bound.
	PercentilesSketch
)

func (m PercentileMode) String() string {
	switch m {
	case PercentilesExact:
		return "exact"
	case PercentilesSketch:
		return "sketch"
	}
	return fmt.Sprintf("PercentileMode(%d)", int(m))
}

// evictPolicy resolves the effective eviction policy.
func (c Config) evictPolicy() pool.Policy {
	if c.EvictPolicy != nil {
		return c.EvictPolicy
	}
	return c.Variant.policy()
}

// normalized returns the config with variant-dependent topology and
// control-plane defaults applied.
func (c Config) normalized() Config {
	if c.Variant.singleExecutor() {
		c.GPUExecutors, c.CPUExecutors = 1, 0
	}
	if c.Autoscaler != nil && c.Window <= 0 {
		c.Window = DefaultControlWindow
	}
	return c
}

// validate checks the configuration against the device profile and the
// deadlock-freedom requirements of the executors.
func (c Config) validate(largestWeight, largestGPUAct, largestCPUAct int64) error {
	if c.Device == nil {
		return fmt.Errorf("core: config needs a device")
	}
	if err := c.Device.Validate(); err != nil {
		return err
	}
	if c.GPUExecutors < 1 {
		return fmt.Errorf("core: at least one GPU executor required")
	}
	if c.CPUExecutors < 0 {
		return fmt.Errorf("core: negative CPU executor count")
	}
	if c.Perf == nil {
		return fmt.Errorf("core: config needs a performance matrix")
	}
	if c.Autoscaler != nil && c.PreschedPicks != nil {
		// Replayed picks index a fixed queue set; scaling the active set
		// mid-replay would re-route the recorded assignments.
		return fmt.Errorf("core: autoscaling cannot be combined with pre-scheduled picks")
	}
	a := c.Alloc
	if a.GPUExpertBytes <= 0 {
		return fmt.Errorf("core: GPU expert budget must be positive")
	}
	// Every pool must hold one pinned expert per sharing executor plus
	// the incoming expert, or Acquire could be unable to evict.
	perGPUPool, gpuSharers := a.GPUExpertBytes/int64(c.GPUExecutors), 1
	if c.Variant.sharedPools() {
		perGPUPool, gpuSharers = a.GPUExpertBytes, c.GPUExecutors
	}
	if perGPUPool < int64(gpuSharers+1)*largestWeight {
		return fmt.Errorf("core: GPU pool capacity %d cannot hold %d of the largest expert (%d bytes)",
			perGPUPool, gpuSharers+1, largestWeight)
	}
	if c.CPUExecutors > 0 {
		perCPUPool, cpuSharers := a.CPUExpertBytes/int64(c.CPUExecutors), 1
		if c.Variant.sharedPools() {
			perCPUPool, cpuSharers = a.CPUExpertBytes, c.CPUExecutors
		}
		if perCPUPool < int64(cpuSharers+1)*largestWeight {
			return fmt.Errorf("core: CPU pool capacity %d cannot hold %d of the largest expert (%d bytes)",
				perCPUPool, cpuSharers+1, largestWeight)
		}
		if a.CPUActBytes < largestCPUAct {
			return fmt.Errorf("core: CPU activation budget %d below one image (%d bytes)",
				a.CPUActBytes, largestCPUAct)
		}
	}
	// The activation arena must fit at least one image or executors
	// deadlock waiting for memory.
	if a.GPUActBytes < largestGPUAct {
		return fmt.Errorf("core: GPU activation budget %d below one image (%d bytes)",
			a.GPUActBytes, largestGPUAct)
	}
	// Totals must fit the physical memories (workspaces are per
	// executor; the OS reserve never becomes available).
	gpuWS := int64(c.GPUExecutors) * c.Device.GPU.WorkspaceBytes
	cpuWS := int64(c.CPUExecutors) * c.Device.CPU.WorkspaceBytes
	switch c.Device.Mem {
	case hw.NUMA:
		gpuTotal := gpuWS + a.GPUExpertBytes + a.GPUActBytes
		if gpuTotal > c.Device.GPUMemBytes {
			return fmt.Errorf("core: GPU allocation %d exceeds %d", gpuTotal, c.Device.GPUMemBytes)
		}
		if cpuWS == 0 {
			cpuWS = c.Device.CPU.WorkspaceBytes // host runtime
		}
		cpuTotal := cpuWS + a.CPUExpertBytes + a.CPUActBytes + a.HostCacheBytes
		if cpuTotal > c.Device.CPUMemBytes {
			return fmt.Errorf("core: CPU allocation %d exceeds %d", cpuTotal, c.Device.CPUMemBytes)
		}
	case hw.UMA:
		total := c.Device.OSReserveBytes + gpuWS + cpuWS +
			a.GPUExpertBytes + a.GPUActBytes +
			a.CPUExpertBytes + a.CPUActBytes + a.HostCacheBytes
		if total > c.Device.UnifiedMemBytes {
			return fmt.Errorf("core: unified allocation %d exceeds %d", total, c.Device.UnifiedMemBytes)
		}
	}
	return nil
}
