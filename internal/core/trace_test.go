package core

import (
	"bytes"
	"testing"

	"repro/internal/hw"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestTracedRunRecordsConsistentEvents runs a small task with tracing on
// and cross-checks the trace against the report.
func TestTracedRunRecordsConsistentEvents(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	pm := perfFor(t, hw.NUMADevice())
	g, c := DefaultExecutors(hw.NUMADevice())
	log := trace.New()
	cfg := Config{
		Device: hw.NUMADevice(), Variant: CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: CasualAllocation(hw.NUMADevice(), pm, g, c),
		Perf:  pm, Trace: log,
	}
	sys, err := NewSystem(cfg, board.Model)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunTask(smallTask(board, 250))
	if err != nil {
		t.Fatal(err)
	}

	if got := log.Count(trace.KindArrival); int64(got) != rep.N {
		t.Errorf("arrival events = %d, want %d", got, rep.N)
	}
	if got := log.Count(trace.KindComplete); int64(got) != rep.Completions {
		t.Errorf("complete events = %d, want %d", got, rep.Completions)
	}
	if got := log.Count(trace.KindSwitch); int64(got) != rep.Switches {
		t.Errorf("switch events = %d, want report switches %d", got, rep.Switches)
	}
	// Assignments = stages dispatched >= requests.
	if got := log.Count(trace.KindAssign); int64(got) < rep.N {
		t.Errorf("assign events = %d, want >= %d", got, rep.N)
	}
	// Batches must cover all stages.
	var batchedItems int
	for _, ev := range log.Filter(trace.KindBatch) {
		batchedItems += ev.N
	}
	if int64(batchedItems) != int64(log.Count(trace.KindAssign)) {
		t.Errorf("batched items %d != assigned stages %d", batchedItems, log.Count(trace.KindAssign))
	}
	// Events are time-ordered.
	prev := log.Events()[0].At
	for _, ev := range log.Events() {
		if ev.At < prev {
			t.Fatal("trace events out of order")
		}
		prev = ev.At
	}
	// Exports succeed on real data.
	var csvBuf, jsonBuf bytes.Buffer
	if err := log.WriteCSV(&csvBuf); err != nil {
		t.Error(err)
	}
	if err := log.WriteJSON(&jsonBuf); err != nil {
		t.Error(err)
	}
	if csvBuf.Len() == 0 || jsonBuf.Len() == 0 {
		t.Error("empty export")
	}
}
