package core

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// ExecutorStats is the per-executor slice of a report.
type ExecutorStats struct {
	Name      string
	Processed int64
	Batches   int64
	Busy      time.Duration
}

// PoolStats is the per-model-pool slice of a report. With shared pools
// (Samba-CoE Parallel) there are fewer pools than executors.
type PoolStats struct {
	Name      string
	Loaded    int
	Switches  int64
	SSDLoads  int64
	HostHits  int64
	Evictions int64
	LoadTime  time.Duration
}

// TenantStats is one tenant's slice of a multi-tenant stream report.
type TenantStats struct {
	Name     string
	Admitted int64
	// Rejected counts the tenant's requests dropped by admission control.
	Rejected    int64
	Completions int64
	// Latency summarizes the tenant's end-to-end latency in seconds.
	Latency stats.Summary
	// SLOAttainment is the fraction of the tenant's completions meeting
	// the configured objective (1 when no SLO is configured).
	SLOAttainment float64
}

// Report summarizes one served stream.
type Report struct {
	System string
	Device string
	// Task names the served stream (the task name for closed-loop runs,
	// the source name otherwise).
	Task string

	// N counts admitted requests; Offered additionally counts the
	// requests admission control rejected, so Offered = N + Rejected.
	N        int64
	Offered  int64
	Rejected int64
	// RejectionRate is Rejected / Offered (0 when nothing was offered).
	RejectionRate float64
	// PeakQueued is the largest backlog observed at any dispatch instant
	// (0 when no admission policy was configured — the data plane does
	// not pay for the sampling unless the control plane is on).
	PeakQueued  int
	Completions int64
	// Dropped counts admitted requests a node crash voided before they
	// completed: their leases were handed back to the dispatcher for
	// redelivery elsewhere. Always 0 on fault-free streams, and
	// N = Completions + Dropped once the stream drains.
	Dropped  int64
	Makespan time.Duration
	// Throughput is completed images per second — the paper's primary
	// metric (§5.1).
	Throughput float64
	// Switches is the total number of expert switch-ins across pools
	// (Figure 14).
	Switches  int64
	SSDLoads  int64
	HostHits  int64
	Evictions int64

	// Latency summarizes per-request end-to-end latency in seconds,
	// including the p50/p95/p99 percentiles serving SLOs are scored on.
	// Exact in the default mode; sketch-accurate (1% relative) when
	// Config.Percentiles is PercentilesSketch.
	Latency stats.Summary
	// LatencySketch is the stream's mergeable latency sketch — an
	// independent clone, safe to hold across warm restarts. Nil in the
	// default exact mode; the cluster layer merges per-node sketches
	// from here into its fleet report.
	LatencySketch *stats.Sketch

	// SLO echoes the configured per-request latency objective (0 when
	// none was set).
	SLO time.Duration
	// SLOAttainment is the fraction of completed requests whose latency
	// met the objective (1 when no SLO is configured).
	SLOAttainment float64

	// PerTenant breaks a multi-tenant stream down by tenant, in first-
	// arrival order. Nil for single-tenant streams.
	PerTenant []TenantStats

	// Windows is the stream's sliding-interval series (arrivals,
	// completions, rejections, mean latency per window); nil unless
	// Config.Window enabled windowed metrics.
	Windows []metrics.Window
	// ActiveGPU and ActiveCPU are the active executor counts at stream
	// end — where the autoscaler (if any) left the topology.
	ActiveGPU, ActiveCPU int

	// SchedPerOp is the mean wall-clock cost of one scheduling decision;
	// InferPerStage is the mean virtual processing time (execution plus
	// loading) per pipeline stage (Figure 19).
	SchedPerOp    time.Duration
	SchedOps      int64
	InferPerStage time.Duration

	PerExecutor []ExecutorStats
	PerPool     []PoolStats

	// Picks is the recorded assignment sequence, replayable via
	// Config.PreschedPicks.
	Picks []int
}

// report assembles the Report after a completed stream.
func (s *System) report(stream string) *Report {
	r := &Report{
		System:        s.cfg.Variant.String(),
		Device:        s.cfg.Device.Name,
		Task:          stream,
		N:             s.recorder.Arrivals(),
		Offered:       s.recorder.Arrivals() + s.recorder.Rejections(),
		Rejected:      s.recorder.Rejections(),
		PeakQueued:    s.ctrl.peakQueued,
		ActiveGPU:     s.activeGPU,
		ActiveCPU:     s.activeCPU,
		Completions:   s.recorder.Completions(),
		Dropped:       s.ctrl.dropped,
		Makespan:      s.recorder.Makespan(),
		Throughput:    s.recorder.Throughput(),
		Latency:       s.recorder.LatencySummary(),
		SLO:           s.cfg.SLO,
		SLOAttainment: s.recorder.SLOAttainment(s.cfg.SLO),
		PerTenant:     s.ctrl.tenantStats(s.cfg.SLO.Seconds()),
		SchedPerOp:    s.recorder.SchedPerOp(),
		SchedOps:      s.recorder.SchedOps(),
		Picks:         append([]int(nil), s.picks...),
	}
	if r.Offered > 0 {
		r.RejectionRate = float64(r.Rejected) / float64(r.Offered)
	}
	if sk := s.recorder.Sketch(); sk != nil {
		r.LatencySketch = sk.Clone()
	}
	if ws := s.recorder.Windows(); len(ws) > 0 {
		// Copy: the recorder reuses its window buffer across warm
		// restarts, and reports must outlive the next stream.
		r.Windows = append([]metrics.Window(nil), ws...)
	}
	var busy, load time.Duration
	for _, ex := range s.executors {
		busy += ex.BusyTime()
		r.PerExecutor = append(r.PerExecutor, ExecutorStats{
			Name:      ex.Name,
			Processed: ex.Processed(),
			Batches:   ex.Batches(),
			Busy:      ex.BusyTime(),
		})
	}
	for _, pl := range s.pools {
		r.Switches += pl.Switches()
		r.SSDLoads += pl.SSDLoads()
		r.HostHits += pl.HostHits()
		r.Evictions += pl.Evictions()
		load += pl.LoadTime()
		r.PerPool = append(r.PerPool, PoolStats{
			Name:      pl.Name(),
			Loaded:    pl.Loaded(),
			Switches:  pl.Switches(),
			SSDLoads:  pl.SSDLoads(),
			HostHits:  pl.HostHits(),
			Evictions: pl.Evictions(),
			LoadTime:  pl.LoadTime(),
		})
	}
	if stages := s.recorder.Stages(); stages > 0 {
		r.InferPerStage = (busy + load) / time.Duration(stages)
	}
	return r
}
