package core

import (
	"fmt"
	"maps"
	"slices"
	"time"

	"repro/internal/coe"
	"repro/internal/control"
	"repro/internal/executor"
	"repro/internal/hw"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// System is one assembled serving system: executors, pools, queues, and
// the inference controller, bound to a simulation environment. A System
// is long-lived: Serve runs one request stream to completion, and
// consecutive Serve calls warm-restart the system, reusing the expert
// pools (and host cache) exactly as the previous stream left them
// instead of rebuilding the world per run.
//
// The System is the data plane; the control plane (internal/control)
// plugs in through two seams: Config.Admission decides per arrival
// whether dispatch sees the request at all, and Config.Autoscaler
// resizes the active executor set — the prefix of each kind's executors
// that dispatch assigns to — once per utilization window. Deactivated
// executors keep draining already-assigned work and keep their expert
// pools warm, so scaling back up reuses loaded experts.
type System struct {
	cfg      Config
	m        *coe.Model
	env      *sim.Env
	store    *pool.Store
	recorder *metrics.Recorder

	queues    []*sched.Queue
	executors []*executor.Executor
	pools     []*pool.Pool
	assigner  sched.Assigner

	gpuActs, cpuActs *memory.Arena

	// activeGPU/activeCPU count the executors dispatch may assign to;
	// activeQueues is their queue set (aliasing queues when everything is
	// active) and activeIdx maps its positions back to global queue
	// indices (nil when the sets coincide). The counts persist across
	// consecutive streams — the autoscaler's between-stream resizing.
	activeGPU, activeCPU int
	activeQueues         []*sched.Queue
	activeIdx            []int

	ctrl    *controller
	picks   []int
	measure bool
	runs    int
	serving bool
	broken  error

	// state is the node's lifecycle state on the cluster seam; epoch
	// advances on every crash so executors mid-batch at the crash
	// instant can tell their results are void (see executor.Epoch).
	// Standalone systems stay NodeUp at epoch 0 forever.
	state NodeState
	epoch int

	// gray is the node's active performance degradation (see gray.go).
	// Nil — the healthy fast path — on every node a fault plan has not
	// touched.
	gray *grayState

	// ownsEnv records whether this System created (and therefore drives)
	// its simulation environment. A joined system (NewSystemInEnv) shares
	// an external env — the cluster layer's arrangement — and is served
	// through JoinStream/Offer/CloseStream instead of Serve.
	ownsEnv bool

	// windowExperts collects the distinct experts dispatched since the
	// last autoscaler window boundary — the working-set width a
	// reachability-aware autoscaler compares against surviving pool
	// capacity. Nil (and unmaintained) unless an autoscaler is configured.
	windowExperts map[coe.ExpertID]struct{}
	// gpuPoolSlots/cpuPoolSlots estimate how many model-average experts
	// one executor's pool holds — the autoscaler's reachability unit.
	gpuPoolSlots, cpuPoolSlots int
}

// NewSystem builds a system for the CoE model under the configuration.
// The system creates and owns its simulation environment; use
// NewSystemInEnv to build a node that joins a shared environment.
func NewSystem(cfg Config, m *coe.Model) (*System, error) {
	return newSystem(cfg, m, sim.NewEnv(), true)
}

// NewSystemInEnv builds a system bound to an externally owned simulation
// environment: the cluster layer's node constructor. The caller owns the
// env lifecycle — it runs the event loop and re-arms it between streams
// — so a joined system refuses Serve/RunTask and is driven through
// JoinStream, Offer, CloseStream, and StreamReport instead. A system
// built by NewSystem is byte-identical to one built here on a fresh env
// and driven through the same stream.
func NewSystemInEnv(cfg Config, m *coe.Model, env *sim.Env) (*System, error) {
	if env == nil {
		return nil, fmt.Errorf("core: NewSystemInEnv needs an environment")
	}
	return newSystem(cfg, m, env, false)
}

func newSystem(cfg Config, m *coe.Model, env *sim.Env, ownsEnv bool) (*System, error) {
	cfg = cfg.normalized()

	var largestWeight, largestGPUAct, largestCPUAct int64
	archSet := map[string]model.Architecture{}
	for _, e := range m.Experts() {
		archSet[e.Arch.Name] = e.Arch
	}
	// Sort by name: map iteration order must not leak into validation
	// errors or Perf.Covers behavior. (AppendSeq into a presized slice
	// rather than slices.Sorted: NewSystem is on the serve benchmarks'
	// allocation budget.)
	archNames := slices.AppendSeq(make([]string, 0, len(archSet)), maps.Keys(archSet))
	slices.Sort(archNames)
	archs := make([]model.Architecture, len(archNames))
	for i, name := range archNames {
		archs[i] = archSet[name]
	}
	if cfg.Perf != nil {
		if err := cfg.Perf.Covers(archs); err != nil {
			return nil, err
		}
		for _, a := range archs {
			if w := a.WeightBytes(); w > largestWeight {
				largestWeight = w
			}
			if act := cfg.Perf.MustLookup(a.Name, hw.GPU).ActPerImage; act > largestGPUAct {
				largestGPUAct = act
			}
			if act := cfg.Perf.MustLookup(a.Name, hw.CPU).ActPerImage; act > largestCPUAct {
				largestCPUAct = act
			}
		}
	}
	if err := cfg.validate(largestWeight, largestGPUAct, largestCPUAct); err != nil {
		return nil, err
	}
	for _, id := range cfg.Preload {
		if id < 0 || int(id) >= m.NumExperts() {
			return nil, fmt.Errorf("core: preload plan names expert %d outside model %q (%d experts)",
				id, m.Name(), m.NumExperts())
		}
	}

	s := &System{
		cfg:      cfg,
		m:        m,
		env:      env,
		recorder: metrics.NewRecorder(),
		measure:  cfg.PreschedPicks == nil,
		ownsEnv:  ownsEnv,
	}
	s.store = pool.NewStore(s.env, cfg.Device, cfg.Alloc.HostCacheBytes)
	if cfg.PreschedPicks != nil {
		s.assigner = sched.NewReplay(cfg.PreschedPicks)
	} else {
		s.assigner = cfg.Variant.assigner()
	}

	s.gpuActs = memory.NewArena("gpu/acts", cfg.Alloc.GPUActBytes)
	s.cpuActs = memory.NewArena("cpu/acts", cfg.Alloc.CPUActBytes)
	gpuCompute := sim.NewResource(s.env, "gpu/compute", 1)
	cpuCompute := sim.NewResource(s.env, "cpu/compute", 1)

	// prefix namespaces executor, queue, and pool names per node when the
	// system is one of several sharing an env ("node0/gpu1"); empty — and
	// absent from every name — in the single-node arrangement.
	prefix := ""
	if cfg.ID != "" {
		prefix = cfg.ID + "/"
	}

	// Shared-pool variants use one pool per processor; otherwise each
	// executor owns a pool.
	var sharedGPU, sharedCPU *pool.Pool
	if cfg.Variant.sharedPools() {
		sharedGPU = pool.New(prefix+"gpu-shared", cfg.Alloc.GPUExpertBytes, s.store, memory.TierGPU, cfg.evictPolicy(), s.env.Now)
		s.pools = append(s.pools, sharedGPU)
		if cfg.CPUExecutors > 0 {
			sharedCPU = pool.New(prefix+"cpu-shared", cfg.Alloc.CPUExpertBytes, s.store, memory.TierCPU, cfg.evictPolicy(), s.env.Now)
			s.pools = append(s.pools, sharedCPU)
		}
	}

	build := func(i int, kind hw.ProcKind) {
		var (
			name    string
			tier    memory.Tier
			poolCap int64
			acts    *memory.Arena
			compute *sim.Resource
			pl      *pool.Pool
		)
		proc := cfg.Device.Proc(kind)
		if kind == hw.GPU {
			name = fmt.Sprintf("%sgpu%d", prefix, i)
			tier = memory.TierGPU
			poolCap = cfg.Alloc.GPUExpertBytes / int64(cfg.GPUExecutors)
			acts = s.gpuActs
			compute = gpuCompute
			pl = sharedGPU
		} else {
			name = fmt.Sprintf("%scpu%d", prefix, i)
			tier = memory.TierCPU
			poolCap = cfg.Alloc.CPUExpertBytes / int64(cfg.CPUExecutors)
			acts = s.cpuActs
			compute = cpuCompute
			pl = sharedCPU
		}
		if pl == nil {
			pl = pool.New(name, poolCap, s.store, tier, cfg.evictPolicy(), s.env.Now)
			s.pools = append(s.pools, pl)
		}
		perfFor := func(e *coe.Expert) model.Perf {
			return cfg.Perf.MustLookup(e.Arch.Name, kind)
		}
		q := sched.NewQueue(s.env, name, cfg.Variant.queueMode(), sched.Costs{
			K:           func(e *coe.Expert) time.Duration { return perfFor(e).K },
			B:           func(e *coe.Expert) time.Duration { return perfFor(e).B },
			PredictLoad: func(e *coe.Expert) time.Duration { return s.store.PredictLoad(e, tier) },
			IsLoaded:    pl.IsLoaded,
		})
		ex := &executor.Executor{
			Name: name,
			Proc: executor.ProcProfile{
				Exec:        func(a model.Architecture, n int) time.Duration { return model.ExecLatency(a, proc, n) },
				ActPerImage: func(a model.Architecture) int64 { return model.ActBytesPerImage(a, proc) },
			},
			Queue:   q,
			Pool:    pl,
			Compute: compute,
			Acts:    acts,
			Perf:    perfFor,
			Done:    s.streamDone,
			OnBatch: s.onBatch,
			Epoch:   s.crashEpoch,
			OnVoid:  s.onVoid,
			Degrade: s.degrade,
		}
		s.queues = append(s.queues, q)
		s.executors = append(s.executors, ex)
	}
	for i := 0; i < cfg.GPUExecutors; i++ {
		build(i, hw.GPU)
	}
	for i := 0; i < cfg.CPUExecutors; i++ {
		build(i, hw.CPU)
	}
	if cfg.Trace != nil {
		for _, pl := range s.pools {
			pl := pl
			pl.Observer = func(e *coe.Expert, source string, elapsed time.Duration) {
				cfg.Trace.Add(trace.Event{
					At: s.env.Now().Duration(), Kind: trace.KindSwitch,
					Actor: pl.Name(), Expert: int32(e.ID), Dur: elapsed, Detail: source,
				})
			}
		}
		for _, ex := range s.executors {
			ex := ex
			ex.Observer = func(e *coe.Expert, n int, lat time.Duration) {
				cfg.Trace.Add(trace.Event{
					At: s.env.Now().Duration(), Kind: trace.KindBatch,
					Actor: ex.Name, Expert: int32(e.ID), N: n, Dur: lat,
				})
			}
		}
	}

	if cfg.Autoscaler != nil && !cfg.Variant.sharedPools() {
		// Reachability inputs for the autoscaler: the working-set tracker
		// and the per-executor expert-slot estimate (pool capacity over
		// the model's mean expert size). Only maintained when a control
		// plane is on — the bare data path stays untouched. Shared-pool
		// variants are excluded: their one pool keeps its full capacity
		// at any active count, so scale-down never loses reachability and
		// the guard correctly stands down on a zero working set.
		s.windowExperts = make(map[coe.ExpertID]struct{})
		if n := m.NumExperts(); n > 0 {
			if mean := m.TotalWeightBytes() / int64(n); mean > 0 {
				s.gpuPoolSlots = int(cfg.Alloc.GPUExpertBytes / int64(cfg.GPUExecutors) / mean)
				if cfg.CPUExecutors > 0 {
					s.cpuPoolSlots = int(cfg.Alloc.CPUExpertBytes / int64(cfg.CPUExecutors) / mean)
				}
			}
		}
	}

	s.recorder.SetWindow(cfg.Window)
	if cfg.Percentiles == PercentilesSketch {
		s.recorder.UseSketch()
	}
	s.setActive(cfg.GPUExecutors, cfg.CPUExecutors)
	s.initializeExperts()
	return s, nil
}

// Env returns the simulation environment the system is bound to.
func (s *System) Env() *sim.Env { return s.env }

// OwnsEnv reports whether the system created its environment (NewSystem)
// or joined an external one (NewSystemInEnv).
func (s *System) OwnsEnv() bool { return s.ownsEnv }

// setActive resizes the active executor set to the first gpu GPU and
// first cpu CPU executors, clamped to the built topology (at least one
// GPU executor stays active). Queues outside the active set stop
// receiving assignments but their executors keep draining queued work,
// and their pools keep loaded experts resident for later reactivation.
func (s *System) setActive(gpu, cpu int) {
	gpu = min(max(gpu, 1), s.cfg.GPUExecutors)
	cpu = min(max(cpu, 0), s.cfg.CPUExecutors)
	s.activeGPU, s.activeCPU = gpu, cpu
	if gpu == s.cfg.GPUExecutors && cpu == s.cfg.CPUExecutors {
		s.activeQueues, s.activeIdx = s.queues, nil
		return
	}
	if s.activeIdx == nil {
		s.activeQueues = nil // was aliasing s.queues; start a private set
	}
	s.activeQueues, s.activeIdx = s.activeQueues[:0], s.activeIdx[:0]
	for i := 0; i < gpu; i++ {
		s.activeQueues = append(s.activeQueues, s.queues[i])
		s.activeIdx = append(s.activeIdx, i)
	}
	for i := 0; i < cpu; i++ {
		gi := s.cfg.GPUExecutors + i
		s.activeQueues = append(s.activeQueues, s.queues[gi])
		s.activeIdx = append(s.activeIdx, gi)
	}
}

// Active reports the active executor counts per kind — the topology the
// autoscaler has currently selected.
func (s *System) Active() (gpu, cpu int) { return s.activeGPU, s.activeCPU }

// Queued implements control.View: the backlog across active queues.
func (s *System) Queued() int {
	n := 0
	for _, q := range s.activeQueues {
		n += q.Len()
	}
	return n
}

// PredictLatency implements control.View: the predicted end-to-end
// latency of a request admitted now. Its current stage is priced as the
// best queue's predicted finish time plus the stage's predicted added
// cost (sched.Queue.Predict); remaining stages add their best-queue
// predicted cost alone — optimistic, which is the right bias for
// shedding: a request rejected under an optimistic prediction was
// certain to miss.
func (s *System) PredictLatency(r *coe.Request) time.Duration {
	now := s.env.Now()
	var total time.Duration
	for stage := r.Stage(); stage < r.Stages(); stage++ {
		e := s.m.Expert(r.Chain[stage])
		best := time.Duration(-1)
		for _, q := range s.activeQueues {
			d := q.Predict(e)
			if stage == r.Stage() {
				d += q.FinishTime(now).Sub(now)
			}
			if best < 0 || d < best {
				best = d
			}
		}
		total += best
	}
	return total
}

// initializeExperts preloads experts into pools round-robin in
// descending usage-probability order until every pool is full (§4.1,
// "Experts are distributed into each executor in a round-robin manner,
// prioritized by descending usage probabilities"). A non-nil
// Config.Preload replaces the usage order with an explicit plan — the
// cluster placement hook — preloaded round-robin in plan order.
func (s *System) initializeExperts() {
	if s.cfg.Variant.coldStart() {
		return
	}
	order := s.m.ExpertsByUsage()
	if s.cfg.Preload != nil {
		order = make([]*coe.Expert, len(s.cfg.Preload))
		for i, id := range s.cfg.Preload {
			order[i] = s.m.Expert(id)
		}
	}
	full := make([]bool, len(s.pools))
	next := 0
	for _, e := range order {
		placed := false
		for try := 0; try < len(s.pools); try++ {
			i := (next + try) % len(s.pools)
			if full[i] {
				continue
			}
			if s.pools[i].Preload(e) {
				next = (i + 1) % len(s.pools)
				placed = true
				break
			}
			full[i] = true
		}
		if !placed {
			allFull := true
			for _, f := range full {
				if !f {
					allFull = false
					break
				}
			}
			if allFull {
				break
			}
		}
	}
	for _, pl := range s.pools {
		pl.ResetStats()
	}
}

// Queues exposes the executor queues (read-only use).
func (s *System) Queues() []*sched.Queue { return s.queues }

// Pools exposes the executor pools (read-only use).
func (s *System) Pools() []*pool.Pool { return s.pools }

// LoadedExperts reports the number of preloaded experts across pools.
func (s *System) LoadedExperts() int {
	n := 0
	for _, pl := range s.pools {
		n += pl.Loaded()
	}
	return n
}

// ExpertResident reports whether the expert is resident — Loaded or with
// a load in flight — in any of the system's pools. Cluster routers use
// it for expert-affinity placement of arriving requests.
func (s *System) ExpertResident(id coe.ExpertID) bool {
	for _, pl := range s.pools {
		if pl.Resident(id) {
			return true
		}
	}
	return false
}

// dispatch assigns a request's current stage to a queue (§4.2). The
// assigner only sees the active queue set — the autoscaler's scaling
// hook — and picks are recorded as global queue indices. The wall-clock
// cost of the decision is the Figure 19 scheduling overhead.
func (s *System) dispatch(r *coe.Request) {
	e := s.m.Expert(r.Expert())
	var start time.Time
	if s.measure {
		//detlint:allow deliberate wall-clock probe: the Figure 19 sched-cost measurement, gated by s.measure and never part of table output
		start = time.Now()
	}
	idx := s.assigner.Pick(s.env.Now(), s.activeQueues, e)
	if s.activeIdx != nil {
		idx = s.activeIdx[idx]
	}
	s.queues[idx].Enqueue(e, r)
	if s.measure {
		//detlint:allow deliberate wall-clock probe: closes the sched-cost measurement opened above
		s.recorder.SchedOp(time.Since(start))
	}
	if s.windowExperts != nil {
		s.windowExperts[e.ID] = struct{}{}
	}
	if s.cfg.Admission != nil {
		// The backlog bound the control plane enforced, observable as the
		// report's peak queue depth. Sampled on every dispatch — arrivals
		// and stage re-dispatches — only when the control plane is on, so
		// the bare data path does not pay for it.
		if q := s.Queued(); q > s.ctrl.peakQueued {
			s.ctrl.peakQueued = q
		}
	}
	if !s.cfg.DisablePicks {
		s.picks = append(s.picks, idx)
	}
	if s.cfg.Trace != nil {
		s.cfg.Trace.Add(trace.Event{
			At: s.env.Now().Duration(), Kind: trace.KindAssign,
			Actor: s.queues[idx].Name(), Request: r.ID, Expert: int32(e.ID),
		})
	}
}

// streamDone reports whether the current stream has fully completed —
// the executors' exit condition. A crashed node's executors also stand
// down: its queues were purged and its in-flight work voided.
func (s *System) streamDone() bool {
	return s.state == NodeDown || (s.ctrl != nil && s.ctrl.finished)
}

// crashEpoch is the executors' Epoch hook: it advances on every Crash,
// letting an executor mid-batch at the crash instant discard the
// batch's results instead of acking voided work.
func (s *System) crashEpoch() int { return s.epoch }

// onBatch forwards stage completions to the active stream's controller.
func (s *System) onBatch(p *sim.Proc, r *coe.Request) {
	s.ctrl.onBatch(p, r)
}

// onVoid forwards crash-voided batch requests to the controller's drop
// path: accounted, recycled, never acked.
func (s *System) onVoid(p *sim.Proc, r *coe.Request) {
	s.ctrl.drop(p.Now(), r)
}

// Serve runs one request stream to completion and returns its report.
// The first Serve runs against the freshly initialized pools (§4.1);
// consecutive Serve calls warm-restart the system — the virtual clock
// continues and the pools keep whatever experts the previous stream
// left resident, so a follow-up stream with a similar working set pays
// far fewer expert switches than a cold rebuild. Per-stream statistics
// (recorder, executor and pool counters, assignment picks) are reset at
// each restart; a stream that ends with requests still in flight
// poisons the System and fails all further calls.
func (s *System) Serve(src workload.Source) (*Report, error) {
	if !s.ownsEnv {
		return nil, fmt.Errorf("core: Serve on a system joined to an external env; the env owner drives it through JoinStream")
	}
	if err := s.checkStream(); err != nil {
		return nil, err
	}
	if workload.IsUnbounded(src) {
		// An infinite source would keep the arrival process alive forever;
		// the admission loop has no way to stop it.
		return nil, fmt.Errorf("core: stream %q is unbounded; wrap it in workload.Horizon to give it a terminating horizon",
			src.Name())
	}
	if m, ok := src.(interface{ Model() *coe.Model }); ok && m.Model() != nil && m.Model() != s.m {
		return nil, fmt.Errorf("core: stream %q draws from model %q, system serves %q",
			src.Name(), m.Model().Name(), s.m.Name())
	}
	s.serving = true
	defer func() { s.serving = false }()

	if s.runs > 0 {
		// Warm restart: re-arm the drained environment and zero the
		// per-stream statistics, keeping the recorder's sample buffers.
		// Pool contents — the warm state — are deliberately kept.
		s.env.Reopen()
		s.resetStream()
	}
	s.runs++
	s.beginStream(src, nil)
	s.env.Go("arrivals", s.ctrl.admit)
	s.env.Run()

	if !s.ctrl.finished {
		s.broken = fmt.Errorf("core: stream %q ended with %d of %d requests incomplete",
			src.Name(), s.ctrl.admitted-s.ctrl.completed, s.ctrl.admitted)
		return nil, s.broken
	}
	return s.report(src.Name()), nil
}

// checkStream rejects stream starts on a system that cannot take one.
func (s *System) checkStream() error {
	if s.broken != nil {
		return s.broken
	}
	if s.serving {
		return fmt.Errorf("core: stream started re-entrantly")
	}
	if s.runs > 0 && s.cfg.PreschedPicks != nil {
		// A replay system reissues one recorded assignment sequence; a
		// second stream would run past it.
		return fmt.Errorf("core: a pre-scheduled (replay) system serves exactly one stream")
	}
	return nil
}

// resetStream zeroes the per-stream statistics for a warm restart,
// keeping the recorder's sample buffers and — deliberately — the pool
// contents, the warm state.
func (s *System) resetStream() {
	s.recorder.Reset()
	s.picks = s.picks[:0]
	// Experts dispatched after the previous stream's last window
	// boundary must not inflate the next stream's first working-set
	// sample (clear is a no-op on a nil map).
	clear(s.windowExperts)
	for _, ex := range s.executors {
		ex.ResetStats()
	}
	for _, pl := range s.pools {
		pl.ResetStats()
	}
}

// beginStream arms one stream: a fresh controller (with the delegate for
// externally fed streams), admission reset, the stream trace marker, and
// the executor and autoscaler processes. The caller then starts the
// arrival process — the controller's own admit loop for Serve, the
// cluster's router loop for joined systems — and runs the env.
func (s *System) beginStream(src workload.Source, d StreamDelegate) {
	// A node left Down, Draining, or gray-degraded by a previous
	// stream's faults starts the next stream healthy — the operator
	// reset between streams.
	s.state = NodeUp
	s.gray = nil
	s.ctrl = newController(s, src)
	s.ctrl.delegate = d
	if s.cfg.Admission != nil {
		s.cfg.Admission.Reset(s.env.Now())
	}
	if s.cfg.Trace != nil {
		// Delimit consecutive streams: request IDs restart per stream.
		s.cfg.Trace.Add(trace.Event{
			At: s.env.Now().Duration(), Kind: trace.KindStream, Detail: s.ctrl.stream,
		})
	}
	for _, ex := range s.executors {
		ex := ex
		s.env.Go(ex.Name, ex.Run)
	}
	if s.cfg.Autoscaler != nil {
		s.env.Go("autoscale", s.autoscale)
	}
}

// StreamDelegate observes a joined system's stream from the outside —
// the cluster layer's completion hook. RequestDone fires once per
// request, at the virtual instant its final stage completes, after the
// node's own accounting.
type StreamDelegate interface {
	RequestDone(p *sim.Proc, r *coe.Request)
}

// DropDelegate is the optional companion of StreamDelegate under
// Config.ExternalRecycle: when a crash voids an admitted request, the
// node's accounting strikes it as usual and then hands the request
// object back through RequestDropped instead of recycling it, so the
// owning layer can return it to its arena after its own lease
// bookkeeping.
type DropDelegate interface {
	RequestDropped(now sim.Time, r *coe.Request)
}

// JoinStream arms a joined system (NewSystemInEnv) for one externally
// fed stream named stream: per-stream statistics are reset (the env
// owner re-arms the shared env itself), the executors are launched into
// the shared env, and subsequent Offer calls feed arrivals in. The env
// owner closes the stream with CloseStream once the arrival process is
// exhausted and collects the node's slice of the run with StreamReport
// after the env drains.
func (s *System) JoinStream(stream string, d StreamDelegate) error {
	if s.ownsEnv {
		return fmt.Errorf("core: JoinStream on a system that owns its env; use Serve")
	}
	if err := s.checkStream(); err != nil {
		return err
	}
	s.serving = true
	if s.runs > 0 {
		s.resetStream()
	}
	s.runs++
	s.beginStream(namedStream(stream), d)
	return nil
}

// namedStream is the placeholder source of a joined stream: it only
// carries the stream name (requests arrive through Offer, not Next).
type namedStream string

func (n namedStream) Name() string                      { return string(n) }
func (namedStream) Next() (workload.TimedRequest, bool) { return workload.TimedRequest{}, false }

// Offer feeds one externally routed arrival into the node's admission
// and dispatch path at the current virtual time, exactly as the node's
// own arrival process would. On admission it returns a lease receipt —
// the node now holds the request and will ack its completion through
// the stream delegate's RequestDone, unless a crash voids the lease
// first — with ok true. A rejected request leaves only a rejection
// mark; a node that is not Up refuses the offer outright, leaving no
// mark at all (the dispatcher should not have routed here). Offer must
// only be called between JoinStream and CloseStream, from a process of
// the shared env.
func (s *System) Offer(p *sim.Proc, tr workload.TimedRequest) (Lease, bool) {
	return s.OfferAt(p.Now(), tr)
}

// OfferAt is Offer from event-callback context: the caller names the
// current virtual time explicitly instead of passing a process. The
// sharded cluster kernel delivers offers into a node's partition as
// timed events, which run on the kernel rather than in a process.
func (s *System) OfferAt(now sim.Time, tr workload.TimedRequest) (Lease, bool) {
	if s.state != NodeUp {
		return Lease{}, false
	}
	if !s.ctrl.offer(now, tr) {
		return Lease{}, false
	}
	return Lease{Request: tr.Req.ID, Node: s.cfg.ID, Issued: now}, true
}

// CloseStream marks a joined stream's arrival process exhausted: once
// the node's admitted requests drain, its executors shut down. Called by
// the env owner when the cluster-wide source closes.
func (s *System) CloseStream() {
	c := s.ctrl
	c.closed = true
	if c.completed+c.dropped == c.admitted {
		c.finish()
	}
}

// StreamReport ends a joined stream after the shared env has drained and
// returns the node's slice of the run. A stream that ended with requests
// still in flight poisons the system, like a broken Serve.
func (s *System) StreamReport() (*Report, error) {
	if !s.serving {
		return nil, fmt.Errorf("core: StreamReport without a joined stream")
	}
	s.serving = false
	if !s.ctrl.finished {
		s.broken = fmt.Errorf("core: stream %q ended with %d of %d requests incomplete on %s",
			s.ctrl.stream, s.ctrl.admitted-s.ctrl.completed-s.ctrl.dropped, s.ctrl.admitted, s.cfg.ID)
		return nil, s.broken
	}
	return s.report(s.ctrl.stream), nil
}

// autoscale is the control-plane process: once per window it samples
// each kind's busy fraction over the window and the standing backlog,
// asks the autoscaler for the desired active counts, and applies them.
// The active counts persist across consecutive streams, so a follow-up
// stream starts on the topology the previous one converged to — with
// the deactivated executors' pools still warm.
func (s *System) autoscale(p *sim.Proc) {
	window := s.cfg.Window
	lastBusy := make([]time.Duration, len(s.executors))
	for i, ex := range s.executors {
		lastBusy[i] = ex.BusyTime()
	}
	for {
		p.Sleep(window)
		if s.ctrl.finished {
			return
		}
		// Busy fraction per kind over the window's active executors.
		// Inactive executors may still be draining leftover work; their
		// snapshots advance but do not count toward utilization.
		busyOver := func(from, count int) float64 {
			var busy time.Duration
			for i := from; i < from+count; i++ {
				busy += s.executors[i].BusyTime() - lastBusy[i]
			}
			if count == 0 {
				return 0
			}
			return busy.Seconds() / (window.Seconds() * float64(count))
		}
		u := control.Utilization{
			Window:       window,
			GPUBusy:      busyOver(0, s.activeGPU),
			CPUBusy:      busyOver(s.cfg.GPUExecutors, s.activeCPU),
			Queued:       s.Queued(),
			WorkingSet:   len(s.windowExperts),
			GPUPoolSlots: s.gpuPoolSlots,
			CPUPoolSlots: s.cpuPoolSlots,
		}
		clear(s.windowExperts)
		for i, ex := range s.executors {
			lastBusy[i] = ex.BusyTime()
		}
		g, c := s.cfg.Autoscaler.Scale(p.Now(), u, s.activeGPU, s.activeCPU)
		s.setActive(g, c)
	}
}

// Runs reports how many streams the system has served.
func (s *System) Runs() int { return s.runs }

// RunTask serves the task's closed-loop fixed-period stream — the
// paper's arrival shape — and returns the report. It is Serve over
// Task.Stream; like Serve, it may be called repeatedly for consecutive
// tasks on warm pools.
func (s *System) RunTask(task workload.Task) (*Report, error) {
	src, err := task.Stream()
	if err != nil {
		return nil, err
	}
	return s.Serve(src)
}
