package core

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/workload"
)

// TestServeConsecutiveTasksWarmPools is the warm-restart contract: one
// System serves two consecutive streams, and the second — replaying the
// same working set against pools the first run left warm — pays fewer
// expert switches than the first.
func TestServeConsecutiveTasksWarmPools(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	s := buildSystem(t, hw.NUMADevice(), CoServe, board)
	task := smallTask(board, 400)
	r1, err := s.RunTask(task)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.RunTask(task)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Completions != 400 || r2.Completions != 400 {
		t.Fatalf("completions = %d, %d; want 400, 400", r1.Completions, r2.Completions)
	}
	if r2.Switches >= r1.Switches {
		t.Errorf("warm second run switched %d experts, not fewer than the first run's %d",
			r2.Switches, r1.Switches)
	}
	if s.LoadedExperts() == 0 {
		t.Error("no experts resident after two runs — pools were not kept warm")
	}
}

// TestServeWarmBeatsColdRamp: a cold-start variant (Samba) served twice
// must ramp faster the second time — the warm pools absorb the initial
// load storm, lifting throughput.
func TestServeWarmBeatsColdRamp(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	s := buildSystem(t, hw.NUMADevice(), Samba, board)
	task := smallTask(board, 400)
	r1, err := s.RunTask(task)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.RunTask(task)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Throughput <= r1.Throughput {
		t.Errorf("warm Samba run throughput %.2f not above cold %.2f", r2.Throughput, r1.Throughput)
	}
}

// poissonFor builds a small open-loop stream against the board.
func poissonFor(t *testing.T, name string, board *workload.Board, rate float64, n int, seed int64) workload.Source {
	t.Helper()
	src, err := workload.Poisson{
		Name: name, Board: board, Rate: rate, N: n, Seed: seed,
	}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestServePoissonStream(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	pm := perfFor(t, hw.NUMADevice())
	g, c := DefaultExecutors(hw.NUMADevice())
	cfg := Config{
		Device: hw.NUMADevice(), Variant: CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: CasualAllocation(hw.NUMADevice(), pm, g, c), Perf: pm,
		SLO: 2 * time.Second,
	}
	s, err := NewSystem(cfg, board.Model)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Serve(poissonFor(t, "poisson-test", board, 50, 300, 7))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions != 300 {
		t.Fatalf("completions = %d, want 300", rep.Completions)
	}
	if rep.Throughput <= 0 {
		t.Error("throughput not positive")
	}
	if rep.Latency.P50 > rep.Latency.P95 || rep.Latency.P95 > rep.Latency.P99 {
		t.Errorf("latency percentiles not monotone: p50=%v p95=%v p99=%v",
			rep.Latency.P50, rep.Latency.P95, rep.Latency.P99)
	}
	if rep.SLO != 2*time.Second {
		t.Errorf("report SLO = %v, want 2s", rep.SLO)
	}
	if rep.SLOAttainment < 0 || rep.SLOAttainment > 1 {
		t.Errorf("SLO attainment %v outside [0,1]", rep.SLOAttainment)
	}
}

func TestServePoissonDeterministic(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	run := func() *Report {
		s := buildSystem(t, hw.NUMADevice(), CoServe, board)
		rep, err := s.Serve(poissonFor(t, "poisson-test", board, 100, 200, 11))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Throughput != b.Throughput || a.Switches != b.Switches || a.Makespan != b.Makespan {
		t.Errorf("nondeterministic poisson serve: %v/%v/%v vs %v/%v/%v",
			a.Throughput, a.Switches, a.Makespan, b.Throughput, b.Switches, b.Makespan)
	}
}

func TestServeBurstyStream(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	src, err := workload.Bursty{
		Name: "bursty-test", Board: board,
		Period: 2 * time.Millisecond, On: 100 * time.Millisecond, Off: 400 * time.Millisecond,
		N: 250, Seed: 5,
	}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	s := buildSystem(t, hw.NUMADevice(), CoServe, board)
	rep, err := s.Serve(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions != 250 {
		t.Errorf("completions = %d, want 250", rep.Completions)
	}
}

// TestServeMixPerTenant serves a two-tenant mix over one board and
// checks the per-tenant breakdown: every tenant's requests are admitted
// and completed, and the slices add up to the stream totals.
func TestServeMixPerTenant(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	fast := poissonFor(t, "tenant-fast", board, 150, 200, 21)
	slow := poissonFor(t, "tenant-slow", board, 40, 80, 22)
	src, err := workload.Mix{Name: "mix-test", Tenants: []workload.Source{fast, slow}}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	s := buildSystem(t, hw.NUMADevice(), CoServe, board)
	rep, err := s.Serve(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions != 280 {
		t.Fatalf("completions = %d, want 280", rep.Completions)
	}
	if len(rep.PerTenant) != 2 {
		t.Fatalf("per-tenant slices = %d, want 2", len(rep.PerTenant))
	}
	var admitted, completed int64
	for _, ts := range rep.PerTenant {
		admitted += ts.Admitted
		completed += ts.Completions
		if ts.Admitted != ts.Completions {
			t.Errorf("tenant %s: admitted %d != completed %d", ts.Name, ts.Admitted, ts.Completions)
		}
	}
	if admitted != 280 || completed != 280 {
		t.Errorf("tenant totals %d/%d, want 280/280", admitted, completed)
	}
}

// TestServeMergedBoards runs the full multi-tenant path: boards A and B
// fused into one CoE model, one System serving both tenants' streams.
func TestServeMergedBoards(t *testing.T) {
	a := boardFor(t, workload.BoardA())
	b, err := workload.BoardB().Build()
	if err != nil {
		t.Fatal(err)
	}
	merged, views, err := workload.MergeBoards("a+b", []float64{1, 1}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	tenantA := poissonFor(t, "tenant-a", views[0], 60, 120, 31)
	tenantB := poissonFor(t, "tenant-b", views[1], 60, 120, 32)
	src, err := workload.Mix{Name: "a+b-mix", Tenants: []workload.Source{tenantA, tenantB}}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	s := buildSystem(t, hw.NUMADevice(), CoServe, merged)
	rep, err := s.Serve(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions != 240 {
		t.Fatalf("completions = %d, want 240", rep.Completions)
	}
	if len(rep.PerTenant) != 2 {
		t.Fatalf("per-tenant slices = %d, want 2", len(rep.PerTenant))
	}
	for _, ts := range rep.PerTenant {
		if ts.Completions != 120 {
			t.Errorf("tenant %s completed %d, want 120", ts.Name, ts.Completions)
		}
	}
}

// TestServeRejectsForeignModelStream: a stream drawing from a different
// CoE model than the System hosts is rejected upfront, not routed to
// the wrong experts.
func TestServeRejectsForeignModelStream(t *testing.T) {
	a := boardFor(t, workload.BoardA())
	b, err := workload.BoardB().Build()
	if err != nil {
		t.Fatal(err)
	}
	s := buildSystem(t, hw.NUMADevice(), CoServe, a)
	if _, err := s.Serve(poissonFor(t, "foreign", b, 50, 50, 3)); err == nil {
		t.Error("stream over board B's model accepted by board A's system")
	}
	// The rejection must not poison the system: board A streams still
	// serve.
	rep, err := s.Serve(poissonFor(t, "native", a, 50, 50, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions != 50 {
		t.Errorf("completions = %d, want 50", rep.Completions)
	}
}

// TestServeSLOAttainmentBounds pins the attainment extremes: a very lax
// objective is fully attained, a sub-millisecond one is not (a chain
// takes at least one execution latency).
func TestServeSLOAttainmentBounds(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	pm := perfFor(t, hw.NUMADevice())
	g, c := DefaultExecutors(hw.NUMADevice())
	base := Config{
		Device: hw.NUMADevice(), Variant: CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: CasualAllocation(hw.NUMADevice(), pm, g, c), Perf: pm,
	}
	for _, tc := range []struct {
		slo  time.Duration
		want func(float64) bool
		desc string
	}{
		{0, func(a float64) bool { return a == 1 }, "disabled SLO reports full attainment"},
		{time.Hour, func(a float64) bool { return a == 1 }, "lax SLO fully attained"},
		{time.Microsecond, func(a float64) bool { return a < 0.01 }, "impossible SLO missed"},
	} {
		cfg := base
		cfg.SLO = tc.slo
		s, err := NewSystem(cfg, board.Model)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Serve(poissonFor(t, "poisson-test", board, 50, 100, 13))
		if err != nil {
			t.Fatal(err)
		}
		if !tc.want(rep.SLOAttainment) {
			t.Errorf("%s: attainment = %v (slo %v)", tc.desc, rep.SLOAttainment, tc.slo)
		}
	}
}
