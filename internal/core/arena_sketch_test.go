package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/coe"
	"repro/internal/control"
	"repro/internal/hw"
	"repro/internal/trace"
	"repro/internal/workload"
)

// arenaPoisson builds a Poisson stream leasing its requests from the
// arena.
func arenaPoisson(t *testing.T, board *workload.Board, a *coe.Arena, rate float64, n int, seed int64) workload.Source {
	t.Helper()
	src, err := workload.Poisson{
		Name: "arena-poisson", Board: board, Rate: rate, N: n, Seed: seed, Arena: a,
	}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestServeArenaMatchesPlain: an arena-backed stream must serve to a
// report identical to the plain-allocation stream — same seeds, same
// chains, same virtual timeline. The arena changes where request
// objects come from, never what they contain.
func TestServeArenaMatchesPlain(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	plainSys := buildSystem(t, hw.NUMADevice(), CoServe, board)
	plain, err := plainSys.Serve(poissonFor(t, "arena-poisson", board, 80, 400, 31))
	if err != nil {
		t.Fatal(err)
	}
	arena := coe.NewArena()
	arenaSys := buildSystem(t, hw.NUMADevice(), CoServe, board)
	leased, err := arenaSys.Serve(arenaPoisson(t, board, arena, 80, 400, 31))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Completions != leased.Completions || plain.Throughput != leased.Throughput ||
		plain.Makespan != leased.Makespan || plain.Switches != leased.Switches {
		t.Errorf("arena stream diverged: %d/%v/%v/%d vs plain %d/%v/%v/%d",
			leased.Completions, leased.Throughput, leased.Makespan, leased.Switches,
			plain.Completions, plain.Throughput, plain.Makespan, plain.Switches)
	}
	if plain.Latency != leased.Latency {
		t.Errorf("arena latency summary %+v != plain %+v", leased.Latency, plain.Latency)
	}
}

// TestServeArenaRecyclingInvariant is the recycling-hazard test: with
// requests recycled at completion while the stream is still running,
// every completion must still be traced exactly once with a distinct
// request ID — if a request were reused while the trace or a window
// sample still referenced it, IDs would collide or counts would drift.
// The free list must stay bounded by the in-flight high-water mark,
// not grow with the stream.
func TestServeArenaRecyclingInvariant(t *testing.T) {
	const n = 600
	board := boardFor(t, workload.BoardA())
	pm := perfFor(t, hw.NUMADevice())
	g, c := DefaultExecutors(hw.NUMADevice())
	log := trace.New()
	cfg := Config{
		Device: hw.NUMADevice(), Variant: CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: CasualAllocation(hw.NUMADevice(), pm, g, c), Perf: pm,
		Trace: log, Window: 250 * time.Millisecond,
	}
	s, err := NewSystem(cfg, board.Model)
	if err != nil {
		t.Fatal(err)
	}
	arena := coe.NewArena()
	// Underloaded (device capacity is ~12 img/s), so in-flight — and
	// with it the free list — stays far below the stream length.
	rep, err := s.Serve(arenaPoisson(t, board, arena, 8, n, 5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions != n {
		t.Fatalf("completions = %d, want %d", rep.Completions, n)
	}
	seen := make(map[int64]int)
	completes := 0
	for _, ev := range log.Events() {
		if ev.Kind == trace.KindComplete {
			completes++
			seen[ev.Request]++
		}
	}
	if completes != n {
		t.Errorf("trace has %d completion events, want %d", completes, n)
	}
	for id, k := range seen {
		if k != 1 {
			t.Errorf("request %d completed %d times — a recycled object was reused while referenced", id, k)
		}
	}
	if arena.Leases() != n {
		t.Errorf("arena leased %d requests, want %d", arena.Leases(), n)
	}
	if arena.Reuses() == 0 {
		t.Error("arena never reused a request — recycling is not wired")
	}
	if arena.Free() > n/2 {
		t.Errorf("free list holds %d requests — recycling should bound it near the in-flight peak, not the stream length", arena.Free())
	}
	// The windowed series must cover all completions even though the
	// request objects were recycled as it was being built.
	var windowed int64
	for _, w := range rep.Windows {
		windowed += w.Completions
	}
	if windowed != n {
		t.Errorf("windowed series counts %d completions, want %d", windowed, n)
	}
}

// TestServeArenaRejectionRecycles: requests dropped by admission
// control are recycled too — the rejection path is a lease's other
// legal exit. Offered = leases, and the stream still completes.
func TestServeArenaRejectionRecycles(t *testing.T) {
	const n = 400
	board := boardFor(t, workload.BoardA())
	pm := perfFor(t, hw.NUMADevice())
	g, c := DefaultExecutors(hw.NUMADevice())
	bq, err := control.NewBoundedQueue(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Device: hw.NUMADevice(), Variant: CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: CasualAllocation(hw.NUMADevice(), pm, g, c), Perf: pm,
		Admission: bq,
	}
	s, err := NewSystem(cfg, board.Model)
	if err != nil {
		t.Fatal(err)
	}
	arena := coe.NewArena()
	// Far over capacity so the bounded queue rejects a good share.
	rep, err := s.Serve(arenaPoisson(t, board, arena, 500, n, 17))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected == 0 {
		t.Fatal("test needs rejections to exercise the rejection recycle path")
	}
	if rep.Offered != int64(n) || arena.Leases() != n {
		t.Fatalf("offered/leases = %d/%d, want %d/%d", rep.Offered, arena.Leases(), n, n)
	}
	if rep.Completions != rep.N {
		t.Fatalf("admitted %d but completed %d", rep.N, rep.Completions)
	}
	// Every request exited through completion or rejection, so the free
	// list must hold far more than the in-flight peak would explain if
	// rejections leaked (they don't — both exits recycle).
	if arena.Reuses() == 0 {
		t.Error("no reuses despite heavy rejection — rejected requests are not recycled")
	}
}

// TestServeArenaAcrossWarmRestart: one arena serves two consecutive
// streams through Env.Reopen warm restarts; the second stream draws
// nearly everything from the free list.
func TestServeArenaAcrossWarmRestart(t *testing.T) {
	const n = 300
	board := boardFor(t, workload.BoardA())
	s := buildSystem(t, hw.NUMADevice(), CoServe, board)
	arena := coe.NewArena()
	if _, err := s.Serve(arenaPoisson(t, board, arena, 80, n, 41)); err != nil {
		t.Fatal(err)
	}
	firstReuses := arena.Reuses()
	rep, err := s.Serve(arenaPoisson(t, board, arena, 80, n, 42))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions != n {
		t.Fatalf("second stream completed %d, want %d", rep.Completions, n)
	}
	secondReuses := arena.Reuses() - firstReuses
	if secondReuses < n/2 {
		t.Errorf("second stream reused only %d of %d leases — the pool did not survive the warm restart", secondReuses, n)
	}
}

// TestServeSketchMatchesExactWithinBound: the same stream served in
// exact and sketch mode must agree on everything exact (counts, mean,
// min, max, makespan) and on percentiles within the sketch's
// documented relative accuracy. This is the documented-equivalence
// contract behind leaving goldens in exact mode.
func TestServeSketchMatchesExactWithinBound(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	serve := func(mode PercentileMode) *Report {
		pm := perfFor(t, hw.NUMADevice())
		g, c := DefaultExecutors(hw.NUMADevice())
		cfg := Config{
			Device: hw.NUMADevice(), Variant: CoServe,
			GPUExecutors: g, CPUExecutors: c,
			Alloc: CasualAllocation(hw.NUMADevice(), pm, g, c), Perf: pm,
			SLO: 500 * time.Millisecond, Percentiles: mode,
		}
		s, err := NewSystem(cfg, board.Model)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Serve(poissonFor(t, "sketch-vs-exact", board, 40, 500, 4242))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	exact := serve(PercentilesExact)
	sketch := serve(PercentilesSketch)
	if exact.LatencySketch != nil {
		t.Error("exact mode must not carry a latency sketch")
	}
	if sketch.LatencySketch == nil {
		t.Fatal("sketch mode must carry the latency sketch")
	}
	if exact.Completions != sketch.Completions || exact.Makespan != sketch.Makespan ||
		exact.Throughput != sketch.Throughput {
		t.Fatalf("modes diverged on exact quantities: %d/%v/%v vs %d/%v/%v",
			exact.Completions, exact.Makespan, exact.Throughput,
			sketch.Completions, sketch.Makespan, sketch.Throughput)
	}
	el, sl := exact.Latency, sketch.Latency
	if el.N != sl.N || el.Min != sl.Min || el.Max != sl.Max {
		t.Fatalf("N/Min/Max must stay exact in sketch mode: %d/%v/%v vs %d/%v/%v",
			sl.N, sl.Min, sl.Max, el.N, el.Min, el.Max)
	}
	if math.Abs(sl.Mean-el.Mean) > 1e-9*el.Mean {
		t.Errorf("mean must stay exact: %v vs %v", sl.Mean, el.Mean)
	}
	alpha := sketch.LatencySketch.RelativeAccuracy()
	// The exact summary interpolates between closest ranks while the
	// sketch answers at the closest rank itself; allow one rank-gap of
	// slack on top of the documented relative bound.
	tol := 2.5 * alpha
	for _, pair := range [][2]float64{{sl.P50, el.P50}, {sl.P95, el.P95}, {sl.P99, el.P99}} {
		if math.Abs(pair[0]-pair[1]) > tol*pair[1] {
			t.Errorf("sketch percentile %v deviates more than %.1f%% from exact %v",
				pair[0], 100*tol, pair[1])
		}
	}
	if math.Abs(sketch.SLOAttainment-exact.SLOAttainment) > 0.02 {
		t.Errorf("attainment %v deviates from exact %v", sketch.SLOAttainment, exact.SLOAttainment)
	}
	// Per-request samples are not retained in sketch mode, and picks
	// recording can be disabled independently — both are what make the
	// fleet path O(1); exact mode keeps them for goldens and replay.
	if len(exact.Picks) == 0 {
		t.Error("exact mode must keep recording picks")
	}
}

// TestDisablePicks: a system with DisablePicks set must serve
// identically but record no assignment sequence.
func TestDisablePicks(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	pm := perfFor(t, hw.NUMADevice())
	g, c := DefaultExecutors(hw.NUMADevice())
	cfg := Config{
		Device: hw.NUMADevice(), Variant: CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: CasualAllocation(hw.NUMADevice(), pm, g, c), Perf: pm,
	}
	base, err := NewSystem(cfg, board.Model)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Serve(poissonFor(t, "picks", board, 60, 250, 13))
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisablePicks = true
	lean, err := NewSystem(cfg, board.Model)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lean.Serve(poissonFor(t, "picks", board, 60, 250, 13))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Picks) != 0 {
		t.Errorf("DisablePicks still recorded %d picks", len(got.Picks))
	}
	if len(want.Picks) == 0 {
		t.Fatal("baseline run recorded no picks")
	}
	if got.Throughput != want.Throughput || got.Makespan != want.Makespan ||
		got.Completions != want.Completions || got.Latency != want.Latency {
		t.Error("DisablePicks changed serving behavior")
	}
}
