package core

import (
	"repro/internal/coe"
	"repro/internal/control"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// controller owns admission and completion for one stream served by a
// System: it feeds timed requests from the arrival process through the
// admission policy into the dispatch path, tracks outstanding work, and
// shuts the executors down once the stream has fully drained — the
// lifecycle logic that used to live inline in RunTask. In cluster mode
// the same controller runs without an arrival loop: the cluster routes
// requests in through offer and closes the stream itself.
type controller struct {
	sys    *System
	src    workload.Source
	stream string   // the stream name reports and traces carry
	start  sim.Time // virtual instant the stream began

	// delegate, when set, observes request completions from outside the
	// node — the cluster layer's fleet accounting hook.
	delegate StreamDelegate
	// tenantAdmit is the admission policy's tenant-aware interface when
	// it implements one (control.TenantQuota); resolved once so the
	// per-arrival path pays no type assertion.
	tenantAdmit control.TenantAdmitter

	admitted   int64
	rejected   int64
	completed  int64
	dropped    int64 // admitted requests voided by node crashes
	peakQueued int   // largest backlog observed at a dispatch instant
	closed     bool  // the source is exhausted
	finished   bool  // every admitted request has completed or dropped

	// tenantOf maps in-flight request IDs to their tenant for
	// multi-tenant sources; entries are deleted as requests complete so
	// long streams do not accumulate dead IDs. Nil until the first
	// tagged request.
	tenantOf map[int64]string
	tenants  map[string]*tenantAgg
	order    []string // tenant names in first-seen order
}

// tenantAgg accumulates one tenant's slice of a multi-tenant run. In
// sketch mode latency samples stream into sketch instead of latencies,
// so per-tenant accounting is also O(1) in completions.
type tenantAgg struct {
	admitted  int64
	rejected  int64
	completed int64
	latencies []float64
	sketch    *stats.Sketch
}

// addLatency records one completion latency (seconds) for the tenant.
func (a *tenantAgg) addLatency(lat float64) {
	if a.sketch != nil {
		a.sketch.Add(lat)
		return
	}
	a.latencies = append(a.latencies, lat)
}

func newController(s *System, src workload.Source) *controller {
	c := &controller{sys: s, src: src, start: s.env.Now()}
	if src != nil {
		c.stream = src.Name()
	}
	if ta, ok := s.cfg.Admission.(control.TenantAdmitter); ok {
		c.tenantAdmit = ta
	}
	return c
}

// admit is the arrival process body: it walks the source, sleeps until
// each request's due time, and offers it to admission and dispatch.
// When the source closes it arms completion-driven shutdown (and shuts
// down immediately if the stream already drained).
func (c *controller) admit(p *sim.Proc) {
	for {
		tr, ok := c.src.Next()
		if !ok {
			break
		}
		due := c.start.Add(tr.At)
		if wait := due.Sub(p.Now()); wait > 0 {
			p.Sleep(wait)
		}
		c.offer(p.Now(), tr)
	}
	c.closed = true
	if c.completed+c.dropped == c.admitted {
		c.finish()
	}
}

// offer runs one arrival through the admission policy and, if accepted,
// the dispatch path, at virtual time now. Rejected requests leave
// exactly one mark — a rejection count (and a KindRejected trace
// event) — and never touch a queue, the recorder's completion path, or
// the per-tenant latency aggregates. It is the shared arrival body of
// the node's own admit loop and the cluster's router loop (Offer).
func (c *controller) offer(now sim.Time, tr workload.TimedRequest) bool {
	s := c.sys
	r := tr.Req
	if s.cfg.Admission != nil && !c.admitOne(now, r, tr.Tenant) {
		c.rejected++
		s.recorder.Rejection(now)
		if tr.Tenant != "" {
			c.tenantFor(tr.Tenant).rejected++
		}
		if s.cfg.Trace != nil {
			s.cfg.Trace.Add(trace.Event{
				At: now.Duration(), Kind: trace.KindRejected, Request: r.ID,
			})
		}
		// The rejection is fully recorded (counters and the trace event
		// copy values, not the pointer), so an arena-leased request can
		// go straight back to its free list — unless the caller owns
		// recycling and still holds the pointer.
		if !s.cfg.ExternalRecycle {
			coe.Recycle(r)
		}
		return false
	}
	r.Arrival = now
	s.recorder.Arrival(r.Arrival)
	c.admitted++
	if tr.Tenant != "" {
		c.tag(r.ID, tr.Tenant)
	}
	if s.cfg.Trace != nil {
		s.cfg.Trace.Add(trace.Event{
			At: r.Arrival.Duration(), Kind: trace.KindArrival, Request: r.ID,
		})
	}
	s.dispatch(r)
	return true
}

// admitOne consults the admission policy, through its tenant-aware
// interface when it has one.
func (c *controller) admitOne(now sim.Time, r *coe.Request, tenant string) bool {
	if c.tenantAdmit != nil {
		return c.tenantAdmit.AdmitTenant(now, c.sys, r, tenant)
	}
	return c.sys.cfg.Admission.Admit(now, c.sys, r)
}

// onBatch advances a completed stage: multi-stage requests are
// re-dispatched for their subsequent expert; finished requests are
// recorded, and the final completion of a closed stream shuts the
// system down.
func (c *controller) onBatch(p *sim.Proc, r *coe.Request) {
	s := c.sys
	s.recorder.StageDone()
	if r.Advance() {
		s.dispatch(r)
		return
	}
	now := p.Now()
	r.Done = now
	s.recorder.Completion(r.Arrival, now)
	if tenant, ok := c.tenantOf[r.ID]; ok {
		agg := c.tenants[tenant]
		agg.completed++
		agg.addLatency(now.Sub(r.Arrival).Seconds())
		delete(c.tenantOf, r.ID)
	}
	if s.cfg.Trace != nil {
		s.cfg.Trace.Add(trace.Event{
			At: now.Duration(), Kind: trace.KindComplete,
			Request: r.ID, Dur: now.Sub(r.Arrival),
		})
	}
	c.completed++
	if c.delegate != nil {
		c.delegate.RequestDone(p, r)
	}
	// Last touch of the request: its completion is recorded, the trace
	// event holds copies, the tenant entry is gone, and the delegate has
	// observed it. An arena-leased request is now safe to reuse — unless
	// the delegate took ownership (ExternalRecycle) and recycles it
	// after its own accounting.
	if !s.cfg.ExternalRecycle {
		coe.Recycle(r)
	}
	if c.closed && c.completed+c.dropped == c.admitted {
		c.finish()
	}
}

// drop strikes a crash-voided request from the stream's accounting: it
// was admitted but will never complete here — its lease holder
// redelivers it to another node. The request is recycled (the voiding
// dispatcher copied what it needs before the crash was applied) and the
// stream can still finish exactly: completed + dropped == admitted.
// Under ExternalRecycle the request instead goes back to the owning
// delegate through its DropDelegate hook.
func (c *controller) drop(now sim.Time, r *coe.Request) {
	s := c.sys
	c.dropped++
	if _, ok := c.tenantOf[r.ID]; ok {
		delete(c.tenantOf, r.ID)
	}
	if s.cfg.Trace != nil {
		s.cfg.Trace.Add(trace.Event{
			At: now.Duration(), Kind: trace.KindDropped, Request: r.ID,
		})
	}
	if s.cfg.ExternalRecycle {
		if dd, ok := c.delegate.(DropDelegate); ok {
			dd.RequestDropped(now, r)
		}
	} else {
		coe.Recycle(r)
	}
	if c.closed && c.completed+c.dropped == c.admitted {
		c.finish()
	}
}

// finish marks the stream complete and wakes every executor so it can
// observe Done and exit, leaving the environment clean for a warm
// restart.
func (c *controller) finish() {
	c.finished = true
	for _, q := range c.sys.queues {
		q.Gate().Notify()
	}
}

// tenantFor returns (creating if needed) a tenant's aggregate,
// registering first-seen order.
func (c *controller) tenantFor(tenant string) *tenantAgg {
	if c.tenantOf == nil {
		c.tenantOf = make(map[int64]string)
		c.tenants = make(map[string]*tenantAgg)
	}
	agg, ok := c.tenants[tenant]
	if !ok {
		agg = &tenantAgg{}
		if c.sys.cfg.Percentiles == PercentilesSketch {
			agg.sketch = stats.NewSketch()
		}
		c.tenants[tenant] = agg
		c.order = append(c.order, tenant)
	}
	return agg
}

// tag records an admitted request's tenant for per-tenant accounting.
// Only admitted requests enter tenantOf: the entry is the request's
// in-flight marker and is deleted on completion (rejected requests
// never complete, so mapping them would leak one entry per rejection).
func (c *controller) tag(id int64, tenant string) {
	c.tenantFor(tenant).admitted++
	c.tenantOf[id] = tenant
}

// tenantStats renders the per-tenant breakdown in first-seen order.
func (c *controller) tenantStats(slo float64) []TenantStats {
	if len(c.order) == 0 {
		return nil
	}
	out := make([]TenantStats, 0, len(c.order))
	for _, name := range c.order {
		agg := c.tenants[name]
		ts := TenantStats{
			Name:        name,
			Admitted:    agg.admitted,
			Rejected:    agg.rejected,
			Completions: agg.completed,
		}
		if agg.sketch != nil {
			ts.Latency = agg.sketch.Summary()
			ts.SLOAttainment = agg.sketch.Attainment(slo)
		} else {
			ts.Latency = stats.Summarize(agg.latencies)
			ts.SLOAttainment = stats.Attainment(agg.latencies, slo)
		}
		out = append(out, ts)
	}
	return out
}
