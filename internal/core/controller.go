package core

import (
	"repro/internal/coe"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// controller owns admission and completion for one stream served by a
// System: it feeds timed requests from the arrival process through the
// admission policy into the dispatch path, tracks outstanding work, and
// shuts the executors down once the stream has fully drained — the
// lifecycle logic that used to live inline in RunTask.
type controller struct {
	sys   *System
	src   workload.Source
	start sim.Time // virtual instant the stream began

	admitted   int64
	rejected   int64
	completed  int64
	peakQueued int  // largest backlog observed at a dispatch instant
	closed     bool // the source is exhausted
	finished   bool // every admitted request has completed

	// tenantOf maps in-flight request IDs to their tenant for
	// multi-tenant sources; entries are deleted as requests complete so
	// long streams do not accumulate dead IDs. Nil until the first
	// tagged request.
	tenantOf map[int64]string
	tenants  map[string]*tenantAgg
	order    []string // tenant names in first-seen order
}

// tenantAgg accumulates one tenant's slice of a multi-tenant run.
type tenantAgg struct {
	admitted  int64
	rejected  int64
	completed int64
	latencies []float64
}

func newController(s *System, src workload.Source) *controller {
	return &controller{sys: s, src: src, start: s.env.Now()}
}

// admit is the arrival process body: it walks the source, sleeps until
// each request's due time, consults the admission policy, and
// dispatches what it accepts. Rejected requests leave exactly one mark
// — a rejection count (and a KindRejected trace event) — and never
// touch a queue, the recorder's completion path, or the per-tenant
// latency aggregates. When the source closes it arms completion-driven
// shutdown (and shuts down immediately if the stream already drained).
func (c *controller) admit(p *sim.Proc) {
	s := c.sys
	for {
		tr, ok := c.src.Next()
		if !ok {
			break
		}
		due := c.start.Add(tr.At)
		if wait := due.Sub(p.Now()); wait > 0 {
			p.Sleep(wait)
		}
		r := tr.Req
		now := p.Now()
		if s.cfg.Admission != nil && !s.cfg.Admission.Admit(now, s, r) {
			c.rejected++
			s.recorder.Rejection(now)
			if tr.Tenant != "" {
				c.tenantFor(tr.Tenant).rejected++
			}
			if s.cfg.Trace != nil {
				s.cfg.Trace.Add(trace.Event{
					At: now.Duration(), Kind: trace.KindRejected, Request: r.ID,
				})
			}
			continue
		}
		r.Arrival = now
		s.recorder.Arrival(r.Arrival)
		c.admitted++
		if tr.Tenant != "" {
			c.tag(r.ID, tr.Tenant)
		}
		if s.cfg.Trace != nil {
			s.cfg.Trace.Add(trace.Event{
				At: r.Arrival.Duration(), Kind: trace.KindArrival, Request: r.ID,
			})
		}
		s.dispatch(r)
	}
	c.closed = true
	if c.completed == c.admitted {
		c.finish()
	}
}

// onBatch advances a completed stage: multi-stage requests are
// re-dispatched for their subsequent expert; finished requests are
// recorded, and the final completion of a closed stream shuts the
// system down.
func (c *controller) onBatch(p *sim.Proc, r *coe.Request) {
	s := c.sys
	s.recorder.StageDone()
	if r.Advance() {
		s.dispatch(r)
		return
	}
	now := p.Now()
	r.Done = now
	s.recorder.Completion(r.Arrival, now)
	if tenant, ok := c.tenantOf[r.ID]; ok {
		agg := c.tenants[tenant]
		agg.completed++
		agg.latencies = append(agg.latencies, now.Sub(r.Arrival).Seconds())
		delete(c.tenantOf, r.ID)
	}
	if s.cfg.Trace != nil {
		s.cfg.Trace.Add(trace.Event{
			At: now.Duration(), Kind: trace.KindComplete,
			Request: r.ID, Dur: now.Sub(r.Arrival),
		})
	}
	c.completed++
	if c.closed && c.completed == c.admitted {
		c.finish()
	}
}

// finish marks the stream complete and wakes every executor so it can
// observe Done and exit, leaving the environment clean for a warm
// restart.
func (c *controller) finish() {
	c.finished = true
	for _, q := range c.sys.queues {
		q.Gate().Notify()
	}
}

// tenantFor returns (creating if needed) a tenant's aggregate,
// registering first-seen order.
func (c *controller) tenantFor(tenant string) *tenantAgg {
	if c.tenantOf == nil {
		c.tenantOf = make(map[int64]string)
		c.tenants = make(map[string]*tenantAgg)
	}
	agg, ok := c.tenants[tenant]
	if !ok {
		agg = &tenantAgg{}
		c.tenants[tenant] = agg
		c.order = append(c.order, tenant)
	}
	return agg
}

// tag records an admitted request's tenant for per-tenant accounting.
// Only admitted requests enter tenantOf: the entry is the request's
// in-flight marker and is deleted on completion (rejected requests
// never complete, so mapping them would leak one entry per rejection).
func (c *controller) tag(id int64, tenant string) {
	c.tenantFor(tenant).admitted++
	c.tenantOf[id] = tenant
}

// tenantStats renders the per-tenant breakdown in first-seen order.
func (c *controller) tenantStats(slo float64) []TenantStats {
	if len(c.order) == 0 {
		return nil
	}
	out := make([]TenantStats, 0, len(c.order))
	for _, name := range c.order {
		agg := c.tenants[name]
		ts := TenantStats{
			Name:        name,
			Admitted:    agg.admitted,
			Rejected:    agg.rejected,
			Completions: agg.completed,
			Latency:     stats.Summarize(agg.latencies),
		}
		ts.SLOAttainment = stats.Attainment(agg.latencies, slo)
		out = append(out, ts)
	}
	return out
}
