package stats

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

var quantileGrid = []float64{0, 0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1}

// adversarialSamples returns named sample sets chosen to stress the
// sketch: bimodal (a large gap between modes), heavy-tail (orders of
// magnitude of spread), constant (zero spread), and uniform.
func adversarialSamples(t *testing.T) map[string][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	sets := map[string][]float64{}

	bimodal := make([]float64, 0, 4000)
	for i := 0; i < 2000; i++ {
		bimodal = append(bimodal, 0.001+0.0001*rng.Float64())
	}
	for i := 0; i < 2000; i++ {
		bimodal = append(bimodal, 5.0+0.5*rng.Float64())
	}
	sets["bimodal"] = bimodal

	heavy := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Pareto-like: x = 0.001 / u^1.2 spans ~5 decades.
		u := rng.Float64()
		if u < 1e-5 {
			u = 1e-5
		}
		heavy = append(heavy, 0.001/math.Pow(u, 1.2))
	}
	sets["heavy-tail"] = heavy

	constant := make([]float64, 3000)
	for i := range constant {
		constant[i] = 0.125
	}
	sets["constant"] = constant

	uniform := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		uniform = append(uniform, 0.01+0.99*rng.Float64())
	}
	sets["uniform"] = uniform

	return sets
}

func sketchOf(xs []float64) *Sketch {
	s := NewSketch()
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// TestSketchAccuracyBound checks the documented bound on every
// adversarial distribution: Quantile(q) is within RelativeAccuracy of
// the true sample at the target closest rank. This is deliberately the
// rank-exact bound, not a comparison against the interpolated
// Percentile — at a bimodal gap the interpolated value falls between
// modes where no sample exists, and no histogram sketch can (or
// should) reproduce it.
func TestSketchAccuracyBound(t *testing.T) {
	for name, xs := range adversarialSamples(t) {
		s := sketchOf(xs)
		sorted := append([]float64(nil), xs...)
		slices.Sort(sorted)
		alpha := s.RelativeAccuracy()
		for _, q := range quantileGrid {
			rank := q * float64(len(sorted)-1)
			target := int(rank + 0.5)
			if target >= len(sorted) {
				target = len(sorted) - 1
			}
			truth := sorted[target]
			got := s.Quantile(q)
			lo := truth * (1 - alpha - 1e-9)
			hi := truth * (1 + alpha + 1e-9)
			if got < lo || got > hi {
				t.Errorf("%s: Quantile(%v) = %v, want within ±%v%% of rank-%d sample %v",
					name, q, got, 100*alpha, target, truth)
			}
		}
		if s.Min() != sorted[0] || s.Max() != sorted[len(sorted)-1] {
			t.Errorf("%s: min/max = %v/%v, want exact %v/%v",
				name, s.Min(), s.Max(), sorted[0], sorted[len(sorted)-1])
		}
	}
}

// TestSketchQuantileMonotonic: quantiles must be non-decreasing in q.
func TestSketchQuantileMonotonic(t *testing.T) {
	for name, xs := range adversarialSamples(t) {
		s := sketchOf(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.005 {
			v := s.Quantile(q)
			if v < prev {
				t.Fatalf("%s: Quantile(%v) = %v < previous %v", name, q, v, prev)
			}
			prev = v
		}
	}
}

// sketchFingerprint captures everything Merge promises to preserve
// exactly: count, min, max, and the quantile and attainment surfaces.
// Mean/Std are float sums and excluded (order-dependent in the ulps).
func sketchFingerprint(s *Sketch) []float64 {
	fp := []float64{float64(s.Count()), s.Min(), s.Max()}
	for _, q := range quantileGrid {
		fp = append(fp, s.Quantile(q))
	}
	for _, lim := range []float64{0.001, 0.01, 0.1, 0.5, 1, 10} {
		fp = append(fp, s.Attainment(lim))
	}
	return fp
}

func fingerprintsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSketchMergeExact: sharding a sample across sketches and merging
// — in any order or grouping — must fingerprint identically to one
// sketch that saw every sample. This is the property the cluster
// report relies on: per-node sketches merge exactly into the fleet
// sketch.
func TestSketchMergeExact(t *testing.T) {
	for name, xs := range adversarialSamples(t) {
		single := sketchOf(xs)
		want := sketchFingerprint(single)

		// Shard round-robin into 7 sketches.
		shards := make([]*Sketch, 7)
		for i := range shards {
			shards[i] = NewSketch()
		}
		for i, x := range xs {
			shards[i%len(shards)].Add(x)
		}

		// Order 1: left fold.
		m1 := NewSketch()
		for _, sh := range shards {
			m1.Merge(sh)
		}
		// Order 2: reverse fold.
		m2 := NewSketch()
		for i := len(shards) - 1; i >= 0; i-- {
			m2.Merge(shards[i])
		}
		// Order 3: pairwise tree ((0+1)+(2+3))+((4+5)+6), exercising
		// associativity over merged intermediates.
		pair := func(a, b *Sketch) *Sketch {
			c := a.Clone()
			c.Merge(b)
			return c
		}
		m3 := pair(pair(pair(shards[0], shards[1]), pair(shards[2], shards[3])),
			pair(pair(shards[4], shards[5]), shards[6]))

		for i, m := range []*Sketch{m1, m2, m3} {
			if got := sketchFingerprint(m); !fingerprintsEqual(got, want) {
				t.Errorf("%s: merge order %d fingerprint diverges from single sketch\n got %v\nwant %v",
					name, i+1, got, want)
			}
		}

		// Commutativity on the raw pair level: a+b == b+a.
		ab := pair(shards[0], shards[1])
		ba := pair(shards[1], shards[0])
		if !fingerprintsEqual(sketchFingerprint(ab), sketchFingerprint(ba)) {
			t.Errorf("%s: pairwise merge is not commutative", name)
		}
	}
}

// TestSketchMergeEmptyAndNil: merging nil or empty sketches must be a
// no-op and must not disturb min/max of an empty receiver.
func TestSketchMergeEmptyAndNil(t *testing.T) {
	s := NewSketch()
	s.Merge(nil)
	s.Merge(NewSketch())
	if s.Count() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("empty merge disturbed sketch: count=%d min=%v max=%v", s.Count(), s.Min(), s.Max())
	}
	s.Add(2)
	empty := NewSketch()
	empty.Merge(s)
	if empty.Count() != 1 || empty.Min() != 2 || empty.Max() != 2 {
		t.Fatalf("merge into empty lost min/max: count=%d min=%v max=%v",
			empty.Count(), empty.Min(), empty.Max())
	}
}

// TestSketchEdgeCases covers the empty sketch, single samples, zero and
// sub-resolution values, and the exactness shortcuts of Attainment.
func TestSketchEdgeCases(t *testing.T) {
	s := NewSketch()
	if s.Quantile(0.5) != 0 || s.Count() != 0 {
		t.Fatal("empty sketch must report zero quantiles")
	}
	if got := s.Attainment(1); got != 0 {
		t.Fatalf("empty sketch under real objective: attainment %v, want 0", got)
	}
	if got := s.Attainment(0); got != 1 {
		t.Fatalf("disabled objective: attainment %v, want 1", got)
	}

	s.Add(3.5)
	for _, q := range quantileGrid {
		if got := s.Quantile(q); got != 3.5 {
			t.Fatalf("single sample: Quantile(%v) = %v, want 3.5", q, got)
		}
	}

	z := NewSketch()
	z.Add(0)
	z.Add(0)
	z.Add(1)
	if z.Min() != 0 || z.Max() != 1 {
		t.Fatalf("zero samples: min/max = %v/%v", z.Min(), z.Max())
	}
	if got := z.Quantile(0.25); got != 0 {
		t.Fatalf("zero-heavy sample: Quantile(0.25) = %v, want 0 (underflow)", got)
	}
	if got := z.Attainment(0.5); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("attainment over zeros: %v, want 2/3", got)
	}
	if got := z.Attainment(1); got != 1 {
		t.Fatalf("limit at max must be exactly attained, got %v", got)
	}
	if got := z.Attainment(1e-12); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("sub-resolution limit counts underflow: %v, want 2/3", got)
	}
}

// TestSketchSummaryMoments: N, Mean, Std, Min, Max in Summary are
// exact (same formulas as Summarize), only percentiles approximate.
func TestSketchSummaryMoments(t *testing.T) {
	for name, xs := range adversarialSamples(t) {
		s := sketchOf(xs)
		want := Summarize(xs)
		got := s.Summary()
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
			t.Errorf("%s: N/Min/Max = %d/%v/%v, want %d/%v/%v",
				name, got.N, got.Min, got.Max, want.N, want.Min, want.Max)
		}
		if math.Abs(got.Mean-want.Mean) > 1e-9*math.Abs(want.Mean)+1e-15 {
			t.Errorf("%s: Mean %v, want %v", name, got.Mean, want.Mean)
		}
		if math.Abs(got.Std-want.Std) > 1e-6*want.Max {
			t.Errorf("%s: Std %v, want %v", name, got.Std, want.Std)
		}
	}
}

// TestSketchResetAndClone: Reset empties in place; Clone is
// independent of its source.
func TestSketchResetAndClone(t *testing.T) {
	s := sketchOf([]float64{1, 2, 3, 4, 5})
	c := s.Clone()
	s.Reset()
	if s.Count() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("Reset left data behind")
	}
	if c.Count() != 5 || c.Min() != 1 || c.Max() != 5 {
		t.Fatal("Clone shares state with its source")
	}
	s.Add(10)
	if c.Max() != 5 {
		t.Fatal("Clone buckets alias the source")
	}
}

// TestSketchAddDoesNotAllocate pins the hot path: recording an
// observation into a constructed sketch performs zero allocations.
func TestSketchAddDoesNotAllocate(t *testing.T) {
	s := NewSketch()
	x := 0.001
	allocs := testing.AllocsPerRun(1000, func() {
		s.Add(x)
		x *= 1.001
	})
	if allocs != 0 {
		t.Fatalf("Sketch.Add allocates %v per op, want 0", allocs)
	}
}
