package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFitLineExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.K, 3, 1e-9) || !almostEqual(fit.B, 7, 1e-9) {
		t.Errorf("fit = K%.3f B%.3f, want K3 B7", fit.K, fit.B)
	}
	if !almostEqual(fit.R2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if !almostEqual(fit.Predict(10), 37, 1e-9) {
		t.Errorf("Predict(10) = %v, want 37", fit.Predict(10))
	}
}

func TestFitLineNoisy(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2.1, 3.9, 6.1, 7.9}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.K, 1.96, 0.1) {
		t.Errorf("K = %v, want ~1.96", fit.K)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{2}); err == nil {
		t.Error("no error for single point")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{2}); err == nil {
		t.Error("no error for mismatched lengths")
	}
	if _, err := FitLine([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("no error for degenerate x")
	}
}

// Property: a fitted line on points generated from y = kx + b recovers k
// and b regardless of the (distinct) x sample.
func TestFitLineRecoversLineProperty(t *testing.T) {
	prop := func(k, b int8, seed uint8) bool {
		xs := make([]float64, 6)
		ys := make([]float64, 6)
		for i := range xs {
			xs[i] = float64(i) + float64(seed%7)
			ys[i] = float64(k)*xs[i] + float64(b)
		}
		fit, err := FitLine(xs, ys)
		if err != nil {
			return false
		}
		return almostEqual(fit.K, float64(k), 1e-6) && almostEqual(fit.B, float64(b), 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEqual(m, 5, 1e-9) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); !almostEqual(s, 2, 1e-9) {
		t.Errorf("StdDev = %v, want 2", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice mean/std should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	if Percentile([]float64{3}, 99) != 3 {
		t.Error("single-element percentile should be that element")
	}
	// Out-of-range p clamps.
	if Percentile(xs, -5) != 15 || Percentile(xs, 200) != 50 {
		t.Error("percentile did not clamp out-of-range p")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := Percentile(raw, pa), Percentile(raw, pb)
		return va <= vb && va >= Min(raw) && vb <= Max(raw)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("unexpected summary: %+v", s)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{100, 200, 300})
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-9) {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Normalize(nil) != nil {
		t.Error("Normalize(nil) should be nil")
	}
	if Normalize([]float64{0, 1}) != nil {
		t.Error("Normalize with non-positive min should be nil")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max should be 0")
	}
}

// TestSummarizeMatchesFieldwise pins the single-sort Summarize against
// the independent field-by-field computations it replaced.
func TestSummarizeMatchesFieldwise(t *testing.T) {
	xs := []float64{4.2, 0.3, 9.9, 1.1, 1.1, 7.5, 3.3, 0.3, 8.8, 5.0, 2.2}
	s := Summarize(xs)
	if s.N != len(xs) {
		t.Errorf("N = %d, want %d", s.N, len(xs))
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"Mean", s.Mean, Mean(xs)},
		{"Std", s.Std, StdDev(xs)},
		{"Min", s.Min, Min(xs)},
		{"Max", s.Max, Max(xs)},
		{"P50", s.P50, Percentile(xs, 50)},
		{"P95", s.P95, Percentile(xs, 95)},
		{"P99", s.P99, Percentile(xs, 99)},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	// The input must come back unsorted — Summarize works on a copy.
	if xs[0] != 4.2 || xs[len(xs)-1] != 2.2 {
		t.Errorf("Summarize mutated its input: %v", xs)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero Summary", s)
	}
}

// TestSummarizeSingleSortAllocation pins Summarize to one allocation:
// the single sorted copy that feeds Min, Max, and all percentiles. The
// fieldwise version paid three sorted copies.
func TestSummarizeSingleSortAllocation(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64((i * 7919) % 1000)
	}
	if allocs := testing.AllocsPerRun(20, func() { Summarize(xs) }); allocs > 1 {
		t.Errorf("Summarize allocated %.1f objects/op, want <= 1 (one sorted copy)", allocs)
	}
}
