package stats

import "math"

// Sketch parameters. The bucket layout is a fixed-base logarithmic
// histogram (DDSketch-style): bucket k covers the value interval
// (sketchMin·γ^(k-1), sketchMin·γ^k] with γ = (1+α)/(1-α), which
// guarantees every stored value is within relative error α of its
// bucket's representative value. With α = 1% the full span
// [1e-9, 1e9] — sub-nanosecond to ~31 years when values are seconds —
// fits in ~2100 fixed buckets (~17 KB), so a Sketch's memory is O(1)
// in the number of observations.
const (
	sketchAlpha = 0.01
	sketchMin   = 1e-9
	sketchMax   = 1e9
)

var (
	sketchGamma       = (1 + sketchAlpha) / (1 - sketchAlpha)
	sketchInvLogGamma = 1 / math.Log(sketchGamma)
	sketchBuckets     = int(math.Ceil(math.Log(sketchMax/sketchMin)*sketchInvLogGamma)) + 1
)

// Sketch is a fixed-size, deterministic, mergeable quantile sketch over
// non-negative samples (latencies in seconds, throughputs, byte counts).
// It records exact count, sum, min, and max, and approximates quantiles
// from a logarithmic bucket histogram with relative accuracy
// RelativeAccuracy (α): the value returned for a quantile is within
// α of some true sample at that rank — rank-exact, value-approximate.
//
// Bucket counts are integers, so Merge is lossless: merging per-shard
// sketches in any order yields bucket-for-bucket the same histogram as
// one sketch fed every sample, and therefore identical quantiles. (Mean
// and Std are float sums and may differ across merge orders in the last
// few ulps, like any float accumulation.)
//
// Values at or below 1e-9 (including zero) are counted in a dedicated
// underflow bucket and reported as the exact minimum; values above 1e9
// clamp to the top bucket but Max stays exact. The zero value is not
// usable; construct with NewSketch.
type Sketch struct {
	count      int64
	sum, sumSq float64
	min, max   float64
	underflow  int64
	buckets    []int64
}

// NewSketch returns an empty sketch. The bucket array is allocated
// eagerly so Add and Merge never allocate.
func NewSketch() *Sketch {
	return &Sketch{buckets: make([]int64, sketchBuckets)}
}

// RelativeAccuracy returns the sketch's quantile accuracy bound α:
// Quantile(q) is within a factor (1±α) of a true sample value at the
// target rank.
func (s *Sketch) RelativeAccuracy() float64 { return sketchAlpha }

// key maps a value x > sketchMin to its bucket index.
func (s *Sketch) key(x float64) int {
	k := int(math.Ceil(math.Log(x/sketchMin) * sketchInvLogGamma))
	if k < 0 {
		k = 0
	}
	if k >= len(s.buckets) {
		k = len(s.buckets) - 1
	}
	return k
}

// Add records one observation.
func (s *Sketch) Add(x float64) {
	s.count++
	s.sum += x
	s.sumSq += x * x
	if s.count == 1 || x < s.min {
		s.min = x
	}
	if s.count == 1 || x > s.max {
		s.max = x
	}
	if !(x > sketchMin) {
		s.underflow++
		return
	}
	s.buckets[s.key(x)]++
}

// Merge folds o into s. Bucket counts, count, min, and max merge
// exactly; the result's quantiles are identical to a sketch that saw
// both sample sets directly, regardless of merge order or grouping.
// o is left unmodified. Merging a nil or empty sketch is a no-op.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	if s.count == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.count == 0 || o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	s.sum += o.sum
	s.sumSq += o.sumSq
	s.underflow += o.underflow
	for k, n := range o.buckets {
		s.buckets[k] += n
	}
}

// Reset empties the sketch in place, keeping its bucket allocation.
func (s *Sketch) Reset() {
	s.count = 0
	s.sum, s.sumSq = 0, 0
	s.min, s.max = 0, 0
	s.underflow = 0
	clear(s.buckets)
}

// Clone returns an independent copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.buckets = append([]int64(nil), s.buckets...)
	return &c
}

// Count reports the number of observations.
func (s *Sketch) Count() int64 { return s.count }

// Sum reports the exact sum of observations.
func (s *Sketch) Sum() float64 { return s.sum }

// Min reports the exact smallest observation (0 when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max reports the exact largest observation (0 when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Quantile returns an approximation of the q-th quantile (q in [0,1]).
// The target rank is exact — q·(count−1), the same closest-rank
// convention as Percentile — and the returned value is the bucket
// representative of the sample at that rank, within RelativeAccuracy of
// the true sample value. Quantile(0) and Quantile(1) return the exact
// min and max. An empty sketch returns 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := q * float64(s.count-1)
	target := int64(rank + 0.5)
	cum := s.underflow
	if target < cum {
		return s.min
	}
	for k, n := range s.buckets {
		if n == 0 {
			continue
		}
		cum += n
		if target < cum {
			v := sketchMin * math.Pow(sketchGamma, float64(k)) * 2 / (1 + sketchGamma)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max
}

// Summary reports the sketch's descriptive statistics in the same shape
// as Summarize: N, Mean, Std (population), Min, and Max are exact;
// P50/P95/P99 come from Quantile and carry its accuracy bound.
func (s *Sketch) Summary() Summary {
	if s.count == 0 {
		return Summary{}
	}
	n := float64(s.count)
	mean := s.sum / n
	variance := s.sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:    int(s.count),
		Mean: mean,
		Std:  math.Sqrt(variance),
		Min:  s.min,
		Max:  s.max,
		P50:  s.Quantile(0.50),
		P95:  s.Quantile(0.95),
		P99:  s.Quantile(0.99),
	}
}

// Attainment reports the approximate fraction of observations at or
// under limit, with the same conventions as the exact Attainment: a
// non-positive limit is trivially attained (1) and an empty sketch
// under a real objective attains nothing (0). Limits at or beyond the
// exact max (or under the exact min) are answered exactly; in between,
// the threshold resolves at bucket granularity, so the reported
// fraction counts every sample whose bucket representative is within
// RelativeAccuracy of the limit as attained.
func (s *Sketch) Attainment(limit float64) float64 {
	if limit <= 0 {
		return 1
	}
	if s.count == 0 {
		return 0
	}
	if limit >= s.max {
		return 1
	}
	if limit < s.min {
		return 0
	}
	met := s.underflow
	if limit > sketchMin {
		top := s.key(limit)
		for k := 0; k <= top; k++ {
			met += s.buckets[k]
		}
	}
	if met > s.count {
		met = s.count
	}
	return float64(met) / float64(s.count)
}
