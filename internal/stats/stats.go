// Package stats provides the small statistical toolkit CoServe needs:
// least-squares linear fits (the paper's Eq. 2 and the K/B execution-
// latency model of §4.2/§4.5), summaries, and percentiles.
package stats

import (
	"errors"
	"math"
	"slices"
)

// ErrInsufficientData is returned when an estimator needs more points.
var ErrInsufficientData = errors.New("stats: insufficient data")

// LinearFit is a least-squares line y = K*x + B.
type LinearFit struct {
	K float64 // slope
	B float64 // intercept
	// R2 is the coefficient of determination of the fit (1 = perfect).
	R2 float64
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.K*x + f.B }

// FitLine computes the least-squares line through the points (xs[i],
// ys[i]). It needs at least two points with distinct x values.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched slice lengths")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	var sumX, sumY, sumXX, sumXY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
		sumXX += xs[i] * xs[i]
		sumXY += xs[i] * ys[i]
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	k := (n*sumXY - sumX*sumY) / den
	b := (sumY - k*sumX) / n

	meanY := sumY / n
	var ssTot, ssRes float64
	for i := range xs {
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
		res := ys[i] - (k*xs[i] + b)
		ssRes += res * res
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{K: k, B: b, R2: r2}, nil
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It copies xs, leaving the
// input unmodified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	slices.Sort(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile over an already ascending-sorted sample,
// so one sorted copy can feed several percentile lookups.
func percentileSorted(sorted []float64, p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P95, P99 float64
}

// Summarize computes a Summary of xs. It sorts one copy of the sample
// and reads Min, Max, and every percentile off it — a single sort and a
// single allocation, where summarizing field by field would copy and
// sort the sample three times over.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	slices.Sort(sorted)
	m := Mean(xs)
	var std float64
	if n >= 2 {
		var ss float64
		for _, x := range xs {
			ss += (x - m) * (x - m)
		}
		std = math.Sqrt(ss / float64(n))
	}
	return Summary{
		N:    n,
		Mean: m,
		Std:  std,
		Min:  sorted[0],
		Max:  sorted[n-1],
		P50:  percentileSorted(sorted, 50),
		P95:  percentileSorted(sorted, 95),
		P99:  percentileSorted(sorted, 99),
	}
}

// Attainment reports the fraction of xs at or under limit — the SLO
// attainment rule shared by aggregate and per-tenant serving reports.
// A non-positive limit means no objective and is trivially attained
// (1); an empty sample under a real objective attains nothing (0).
func Attainment(xs []float64, limit float64) float64 {
	if limit <= 0 {
		return 1
	}
	if len(xs) == 0 {
		return 0
	}
	met := 0
	for _, x := range xs {
		if x <= limit {
			met++
		}
	}
	return float64(met) / float64(len(xs))
}

// Normalize scales xs so the smallest positive unit becomes 1.0-based
// scores: each value divided by the minimum. Used for the paper's memory
// scores (§4.5), where footprints are normalized across experts. Returns
// nil for empty input; values must be positive.
func Normalize(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	m := Min(xs)
	if m <= 0 {
		return nil
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / m
	}
	return out
}
