package cluster

import (
	"fmt"
	"time"

	"repro/internal/coe"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// chaosState is the durable-delivery bookkeeping of one fault-injected
// stream. The cluster front end is the lease holder: every admission
// opens a lease (with a private copy of the request's expert chain —
// the node may recycle the request object into its arena at any time
// after a crash), completions resolve leases exactly once, and a crash
// voids the dead node's leases so their requests can be redelivered to
// surviving nodes. All of it exists only when a fault plan is
// configured; fault-free streams carry a nil *chaosState and pay
// nothing.
type chaosState struct {
	arena *coe.Arena // redelivered requests lease from here when set

	// ledger maps a live lease's request ID to its record; byNode holds
	// each node's lease IDs in admission order, so a crash voids (and
	// redelivers) them deterministically — never by map iteration, whose
	// order would differ run to run. Entries in byNode go stale when a
	// lease resolves; the crash walk skips IDs whose ledger entry is
	// gone or has moved to another node.
	ledger map[int64]*lease
	byNode [][]int64

	// pending holds voided (or never-delivered) leases waiting for a
	// routable node, in void order; flushed on every recovery.
	pending     []*lease
	pendingPeak int

	// freeLease heads the lease free list: resolved leases recycle here
	// (chain capacity retained) so the sharded hot path's per-request
	// allocations stay at the request object and its chain, nothing
	// else. Release is gated on aliasing: see resolveLease.
	freeLease *lease

	srcClosed bool

	// Exactly-once accounting: at every fault boundary,
	// arrivals == completions + terminalRejected + len(ledger) + len(pending)
	//           + offersInFlight.
	// The last term exists only on the sharded kernel: a primary or
	// redelivery offer crossing the interconnect holds its request's
	// accounting token until the fold lands it in one of the other
	// buckets. hedgeOffers tracks in-flight hedge copies separately —
	// duplicates carry no token but still gate stream close. bounced
	// counts offers that found their node not Up and were re-routed.
	arrivals         int64 // requests the source yielded
	completions      int64 // lease-resolved completions (each request once)
	terminalRejected int64 // requests rejected with no lease left open
	offersInFlight   int64 // primary/redelivery offers on the wire
	hedgeOffers      int64 // hedge offers on the wire
	bounced          int64 // offers bounced off a not-Up node
	violations       []string

	crashes, drains, recoveries int
	slows, jitters, stalls      int   // gray fault events fired
	lostLeases                  int64 // leases voided by crashes
	redelivered                 int64 // successful re-admissions of voided leases
	redeliveredRejected         int64 // voided leases a node's admission refused
	dupAcks                     int64 // completions with no live lease (0 by design)

	// Hedge accounting. A fired hedge puts a second copy of a leased
	// request on another node; the first completion resolves the lease
	// and the loser — tracked in orphans by holding node — surfaces as
	// wasted work when it completes (or as a voided hedge when a crash
	// takes it first), never as a second completion.
	hedgesFired   int64 // hedge copies successfully admitted
	hedgeWins     int64 // leases resolved by the hedge copy
	hedgeWasted   int64 // loser copies that completed (work done twice)
	hedgeRejected int64 // hedge copies node admission refused
	hedgeRetries  int64 // deadline re-arms after a failed hedge attempt
	hedgePromoted int64 // primaries lost to a crash, lease taken by the hedge
	hedgesVoided  int64 // hedge copies destroyed by crashes before completing
	orphans       map[int64]int

	failoverSum time.Duration
	failoverMax time.Duration
	failoverN   int64
}

// lease is one request's durable-delivery record: identity, the chain
// copy redelivery rebuilds the request from, where it currently lives,
// and its original arrival for exactly-once latency accounting.
type lease struct {
	id     int64
	class  int
	tenant string
	chain  []coe.ExpertID // private copy; never aliases a live request

	node         int // holding node, -1 while voided/parked
	hasArrival   bool
	arrival      sim.Time // first admission — the latency clock's origin
	voidedAt     sim.Time
	redeliveries int

	// Hedging state: the node holding the speculative second copy (-1
	// while unhedged), the pending deadline timer, and how many times
	// the deadline has re-armed after failed hedge attempts.
	// hedgeInFlight marks a hedge offer on the wire (sharded kernel
	// only) so the deadline cannot launch a second copy meanwhile.
	hedgeNode     int
	hedgeInFlight bool
	timer         sim.Timer
	timerSet      bool
	retries       int

	nextFree *lease // free-list link, meaningful only while released
}

func newChaosState(nodes int, arena *coe.Arena) *chaosState {
	return &chaosState{
		arena:   arena,
		ledger:  make(map[int64]*lease),
		byNode:  make([][]int64, nodes),
		orphans: make(map[int64]int),
	}
}

// newLease draws a lease from the free list (chain capacity retained,
// every other field zero) or allocates one.
func (cs *chaosState) newLease() *lease {
	l := cs.freeLease
	if l == nil {
		return &lease{}
	}
	cs.freeLease = l.nextFree
	l.nextFree = nil
	return l
}

// releaseLease returns a lease to the free list, zeroing everything but
// the chain's backing array. Callers must go through resolveLease or
// releaseIfResolved — releasing a lease something still points at would
// let a recycled lease spuriously satisfy a ledger identity check.
func (cs *chaosState) releaseLease(l *lease) {
	chain := l.chain[:0]
	*l = lease{chain: chain, nextFree: cs.freeLease}
	cs.freeLease = l
}

// resolveLease retires a lease that just went terminal — completed,
// terminally rejected, or redelivery-rejected — and recycles it unless
// a hedge offer on the wire still aliases it. That offer's fold is then
// the release point (releaseIfResolved); a lease whose fold cannot
// release it (voided again meanwhile, node < 0) leaks until the stream's
// chaosState is dropped — rare, bounded, and strictly safer than a
// false-positive ledger match on a recycled lease.
func (cs *chaosState) resolveLease(l *lease) {
	if l.hedgeInFlight {
		return
	}
	cs.releaseLease(l)
}

// releaseIfResolved is the hedge-fold release point: the fold just
// cleared hedgeInFlight and found the lease no longer its ledger entry.
// node >= 0 distinguishes a lease that went terminal while the hedge
// flew (safe to recycle — nothing else references it) from one that was
// voided into a redelivery (still live in pending or on the wire).
func (cs *chaosState) releaseIfResolved(l *lease) {
	if cs.ledger[l.id] != l && l.node >= 0 {
		cs.releaseLease(l)
	}
}

// open records a fresh admission: a new lease on the admitting node,
// with the chain copied out of the live request.
func (cs *chaosState) open(idx int, receipt core.Lease, tr workload.TimedRequest, now sim.Time) *lease {
	l := cs.newLease()
	l.id = tr.Req.ID
	l.class = tr.Req.Class
	l.tenant = tr.Tenant
	l.chain = append(l.chain[:0], tr.Req.Chain...)
	l.node = idx
	l.hasArrival = true
	l.arrival = receipt.Issued
	l.hedgeNode = -1
	cs.ledger[l.id] = l
	cs.byNode[idx] = append(cs.byNode[idx], l.id)
	return l
}

// park records an arrival that found no routable node: a lease with no
// holder, queued for delivery on the next recovery. The caller recycles
// the request object afterwards — the lease owns its own chain copy.
func (cs *chaosState) park(tr workload.TimedRequest, now sim.Time) {
	l := cs.newLease()
	l.id = tr.Req.ID
	l.class = tr.Req.Class
	l.tenant = tr.Tenant
	l.chain = append(l.chain[:0], tr.Req.Chain...)
	l.node = -1
	l.voidedAt = now
	l.hedgeNode = -1
	cs.pending = append(cs.pending, l)
	if len(cs.pending) > cs.pendingPeak {
		cs.pendingPeak = len(cs.pending)
	}
}

// leaseRequest materializes a fresh request object for a lease — from
// the arena when one is configured, allocated otherwise. The chain is
// always copied out of the lease: the object the lease originally rode
// in may have been recycled and re-leased by anyone since, so sharing
// backing arrays in either direction would alias live state.
func (cs *chaosState) leaseRequest(l *lease) *coe.Request {
	if cs.arena != nil {
		r := cs.arena.Lease()
		r.ID = l.id
		r.Class = l.class
		r.Chain = append(r.Chain[:0], l.chain...)
		return r
	}
	return coe.NewRequest(l.id, l.class, append([]coe.ExpertID(nil), l.chain...))
}

// verify asserts the exactly-once invariant at a fault boundary,
// recording (not panicking on) violations so Serve can fail the stream
// with the full list.
func (cs *chaosState) verify(now sim.Time, where string) {
	got := cs.completions + cs.terminalRejected + int64(len(cs.ledger)) + int64(len(cs.pending)) + cs.offersInFlight
	if got != cs.arrivals {
		cs.violations = append(cs.violations, fmt.Sprintf(
			"at %v (%s): completions %d + rejections %d + leased %d + pending %d + in-flight %d = %d, want arrivals %d",
			now.Duration(), where, cs.completions, cs.terminalRejected,
			len(cs.ledger), len(cs.pending), cs.offersInFlight, got, cs.arrivals))
	}
}

// applyFault fires one fault-plan event: the state transition on the
// node, lease voiding and redelivery for crashes, drain timing for
// drains, and pending-queue flushing for recoveries. The exactly-once
// invariant is checked after every event — the fault boundaries.
func (c *Cluster) applyFault(p *sim.Proc, ev sim.FaultEvent) {
	now := p.Now()
	cs := c.chaos
	n := c.nodes[ev.Node]
	switch ev.Kind {
	case sim.FaultCrash:
		st := n.sys.State()
		if st == core.NodeDown {
			break
		}
		cs.crashes++
		if st == core.NodeUp {
			c.unroutable++
		} else { // Draining: already unroutable; the drain is moot now
			c.draining--
			c.drainOn[ev.Node] = false
			c.scalerDrained[ev.Node] = false
		}
		// Void the node's outstanding leases in admission order, then
		// crash the node (purging its queues and voiding its in-flight
		// batches), then redeliver. The order matters for arena safety:
		// by the time a redelivered request leases a possibly-recycled
		// object, the ledger's chain copies are the only truth left from
		// the original admission.
		var voided []*lease
		for _, id := range cs.byNode[ev.Node] {
			l := cs.ledger[id]
			if l == nil {
				// Resolved since — but if this node holds the losing copy of
				// a hedge race, it dies here (the node's own drop accounting
				// records it) and is no longer expected to surface as waste.
				if on, ok := cs.orphans[id]; ok && on == ev.Node {
					delete(cs.orphans, id)
					cs.hedgesVoided++
				}
				continue
			}
			if l.node != ev.Node {
				if l.hedgeNode == ev.Node {
					// The hedge copy dies with this node; the primary keeps
					// the lease and may hedge again after a fresh deadline.
					l.hedgeNode = -1
					cs.hedgesVoided++
					c.armHedge(l, c.hedge.After)
				} else if on, ok := cs.orphans[id]; ok && on == ev.Node {
					// Sharded kernel only: an orphaned duplicate (its lease
					// was resolved or redelivered elsewhere while the copy
					// flew) dies with the node before surfacing as waste.
					delete(cs.orphans, id)
					cs.hedgesVoided++
				}
				continue // moved since; stale byNode entry
			}
			if l.hedgeNode >= 0 {
				// The primary died but its hedge copy holds the work:
				// promote the hedge to primary — no void, no redelivery.
				// byNode on the hedge's node already tracks the ID.
				l.node = l.hedgeNode
				l.hedgeNode = -1
				cs.hedgePromoted++
				c.armHedge(l, c.hedge.After)
				continue
			}
			c.cancelHedge(l)
			delete(cs.ledger, id)
			l.node = -1
			l.voidedAt = now
			voided = append(voided, l)
		}
		cs.byNode[ev.Node] = cs.byNode[ev.Node][:0]
		cs.lostLeases += int64(len(voided))
		if c.health != nil {
			c.health.resetNode(ev.Node)
		}
		n.sys.Crash(p)
		for i, l := range voided {
			if !c.redeliverOne(p, l) {
				// No routable node: this and every remaining lease park.
				cs.pending = append(cs.pending, voided[i:]...)
				break
			}
		}
		if len(cs.pending) > cs.pendingPeak {
			cs.pendingPeak = len(cs.pending)
		}
	case sim.FaultDrain:
		if n.sys.State() != core.NodeUp {
			break
		}
		cs.drains++
		n.sys.Drain()
		c.unroutable++
		c.draining++
		c.drainOn[ev.Node] = true
		c.drainStart[ev.Node] = now
		c.scalerDrained[ev.Node] = false
		c.checkDrains(now) // an idle node drains instantly
	case sim.FaultRecover:
		st := n.sys.State()
		if st == core.NodeUp {
			if n.sys.GrayDegraded() {
				// The gray recover: the node never left Up, the fault just
				// stops degrading it. No routing or pending-queue work.
				cs.recoveries++
				n.sys.ClearGray()
			}
			break
		}
		cs.recoveries++
		if st == core.NodeDown {
			n.sys.Restart()
		} else {
			n.sys.Resume()
			c.draining--
			c.drainOn[ev.Node] = false
			c.scalerDrained[ev.Node] = false
		}
		n.sys.ClearGray()
		c.unroutable--
		c.flushPending(p)
	case sim.FaultSlow:
		if n.sys.State() == core.NodeDown {
			break
		}
		cs.slows++
		n.sys.SetSlow(ev.Factor)
	case sim.FaultJitter:
		if n.sys.State() == core.NodeDown {
			break
		}
		cs.jitters++
		n.sys.SetJitter(ev.Factor, jitterSeed(ev))
	case sim.FaultStall:
		if n.sys.State() == core.NodeDown {
			break
		}
		cs.stalls++
		n.sys.Stall(now, ev.For)
	}
	cs.verify(now, fmt.Sprintf("%s node%d", ev.Kind, ev.Node))
	c.maybeClose()
}

// jitterSeed derives a jitter RNG seed from the event itself, so a
// jittery node's per-batch draw sequence is a pure function of the
// fault plan and runs stay byte-identical.
func jitterSeed(ev sim.FaultEvent) int64 {
	return int64(ev.Node+1)*1_000_000_007 + int64(ev.At)
}

// redeliverOne re-dispatches a voided (or parked) lease: it rebuilds
// the request, routes it over the Up subset, and offers it. Reports
// false when no node is routable — the lease stays with the caller for
// the pending queue. A node-admission rejection is terminal: the
// request is gone, counted once, never double-counted in the fleet
// recorder (a lease that already counted as an arrival does not also
// count as a rejection).
func (c *Cluster) redeliverOne(p *sim.Proc, l *lease) bool {
	now := p.Now()
	if c.kernel != nil {
		return c.shardRedeliver(now, l)
	}
	cs := c.chaos
	r := cs.leaseRequest(l)
	idx := c.pickNode(now, r)
	if idx < 0 {
		coe.Recycle(r)
		return false
	}
	c.routed[idx]++
	receipt, ok := c.nodes[idx].sys.Offer(p, workload.TimedRequest{Req: r, Tenant: l.tenant})
	if ok {
		if l.hasArrival {
			cs.redelivered++
			l.redeliveries++
		} else {
			l.hasArrival = true
			l.arrival = receipt.Issued
			c.recorder.Arrival(now)
		}
		l.node = idx
		cs.ledger[l.id] = l
		cs.byNode[idx] = append(cs.byNode[idx], l.id)
		if h := c.health; h != nil {
			h.onAdmit(idx)
		}
		c.armHedge(l, c.hedge.After)
	} else {
		cs.terminalRejected++
		if l.hasArrival {
			cs.redeliveredRejected++
		} else {
			c.recorder.Rejection(now)
		}
		cs.resolveLease(l)
	}
	return true
}

// flushPending delivers parked leases in order after a recovery,
// stopping (and keeping the rest parked) if the fleet goes unroutable
// again mid-flush.
func (c *Cluster) flushPending(p *sim.Proc) {
	cs := c.chaos
	if len(cs.pending) == 0 {
		return
	}
	rest := cs.pending[:0]
	for i, l := range cs.pending {
		if !c.redeliverOne(p, l) {
			rest = append(rest, cs.pending[i:]...)
			break
		}
	}
	for i := len(rest); i < len(cs.pending); i++ {
		cs.pending[i] = nil
	}
	cs.pending = rest
}
