package cluster

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/coe"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// chaosCluster builds an n-node CoServe fleet with the given fault plan
// under affinity routing and usage-proportional placement.
func chaosCluster(t testing.TB, n int, plan *sim.FaultPlan) *Cluster {
	t.Helper()
	board := boardFor(t, workload.BoardA())
	return buildCluster(t, Config{
		Nodes:     Uniform(n, nodeConfig(t, hw.NUMADevice())),
		Router:    Affinity{},
		Placement: UsageProportional{},
		SLO:       time.Second,
		Faults:    plan,
	}, board.Model)
}

// normalize blanks the wall-clock scheduling-cost averages — the only
// nondeterministic report fields — so reports compare exactly.
func normalize(rep *Report) *Report {
	out := *rep
	out.PerNode = make([]*core.Report, len(rep.PerNode))
	for i, nr := range rep.PerNode {
		cp := *nr
		cp.SchedPerOp = 0
		out.PerNode[i] = &cp
	}
	return &out
}

// TestChaosCrashRedeliversEveryLease is the tentpole's core contract: a
// crash voids the node's outstanding leases, every one is redelivered
// to a surviving node, and completion accounting stays exactly-once —
// all arrivals complete, none twice, despite the node losing its
// entire backlog.
func TestChaosCrashRedeliversEveryLease(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	cl := chaosCluster(t, 3, &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: time.Second, Node: 1, Kind: sim.FaultCrash},
		{At: 2 * time.Second, Node: 1, Kind: sim.FaultRecover},
	}})
	rep, err := cl.Serve(poissonFor(t, board, 30, 120, 9))
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 120 || rep.Completions != 120 {
		t.Errorf("arrivals/completions = %d/%d, want 120/120", rep.N, rep.Completions)
	}
	if rep.LostLeases == 0 {
		t.Fatal("crash at 1s into a 30 req/s stream voided no leases; the test exercises nothing")
	}
	if rep.Redelivered != rep.LostLeases {
		t.Errorf("redelivered %d of %d voided leases", rep.Redelivered, rep.LostLeases)
	}
	if rep.Dropped != rep.LostLeases {
		t.Errorf("node-side drops %d != voided leases %d", rep.Dropped, rep.LostLeases)
	}
	if rep.Crashes != 1 || rep.Recoveries != 1 || rep.Faults != 2 {
		t.Errorf("fault counts = %d crash / %d recover / %d total, want 1/1/2", rep.Crashes, rep.Recoveries, rep.Faults)
	}
	if rep.FailoverMax <= 0 || rep.FailoverMean <= 0 || rep.FailoverMean > rep.FailoverMax {
		t.Errorf("failover latency mean %v / max %v inconsistent", rep.FailoverMean, rep.FailoverMax)
	}
	if len(rep.FinalStates) != 3 {
		t.Fatalf("FinalStates = %v", rep.FinalStates)
	}
	for i, st := range rep.FinalStates {
		if st != core.NodeUp {
			t.Errorf("node%d ended %v, want up", i, st)
		}
	}
	// The crashed node's own stream closed exactly: completed + dropped
	// covers everything it admitted.
	nr := rep.PerNode[1]
	if nr.Dropped == 0 || nr.Completions+nr.Dropped != nr.N {
		t.Errorf("node1: %d completions + %d dropped != %d admitted", nr.Completions, nr.Dropped, nr.N)
	}
}

// TestChaosZeroFaultByteIdentical pins the acceptance bar that fault
// machinery is free when unused: a cluster configured with an empty
// fault plan serves byte-identically to one with no plan at all.
func TestChaosZeroFaultByteIdentical(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	run := func(plan *sim.FaultPlan) *Report {
		cl := buildCluster(t, Config{
			Nodes:     Uniform(3, nodeConfig(t, hw.NUMADevice())),
			Router:    Affinity{},
			Placement: UsageProportional{},
			SLO:       time.Second,
			Faults:    plan,
		}, board.Model)
		rep, err := cl.Serve(poissonFor(t, board, 40, 200, 13))
		if err != nil {
			t.Fatal(err)
		}
		return normalize(rep)
	}
	plain, empty := run(nil), run(&sim.FaultPlan{})
	if !reflect.DeepEqual(plain, empty) {
		t.Errorf("empty fault plan changed the serve:\nnil:   %+v\nempty: %+v", plain, empty)
	}
}

// TestChaosDeterministic: identical chaos configurations serve
// identical streams identically — faults, redeliveries, drains and all.
func TestChaosDeterministic(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	run := func() *Report {
		cl := chaosCluster(t, 3, &sim.FaultPlan{Events: []sim.FaultEvent{
			{At: 800 * time.Millisecond, Node: 2, Kind: sim.FaultDrain},
			{At: 1200 * time.Millisecond, Node: 0, Kind: sim.FaultCrash},
			{At: 2 * time.Second, Node: 0, Kind: sim.FaultRecover},
			{At: 2500 * time.Millisecond, Node: 2, Kind: sim.FaultRecover},
		}})
		rep, err := cl.Serve(poissonFor(t, board, 30, 150, 17))
		if err != nil {
			t.Fatal(err)
		}
		return normalize(rep)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("nondeterministic chaos serve:\n%+v\nvs\n%+v", a, b)
	}
}

// TestChaosBlackoutParksAndFlushes: with every node down, arrivals and
// voided leases park in the redelivery queue instead of being lost, and
// the first recovery flushes them — completions still cover every
// arrival.
func TestChaosBlackoutParksAndFlushes(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	cl := chaosCluster(t, 2, &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: time.Second, Node: 0, Kind: sim.FaultCrash},
		{At: 1100 * time.Millisecond, Node: 1, Kind: sim.FaultCrash},
		{At: 2 * time.Second, Node: 0, Kind: sim.FaultRecover},
		{At: 2500 * time.Millisecond, Node: 1, Kind: sim.FaultRecover},
	}})
	rep, err := cl.Serve(poissonFor(t, board, 24, 96, 21))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PendingPeak == 0 {
		t.Fatal("a 900ms total blackout under 24 req/s parked nothing; the test exercises nothing")
	}
	if rep.N != 96 || rep.Completions != 96 {
		t.Errorf("arrivals/completions = %d/%d, want 96/96", rep.N, rep.Completions)
	}
}

// TestChaosBlackoutAtStreamEndFailsLoudly: when no node ever recovers,
// Serve must refuse to report rather than silently lose the parked
// work.
func TestChaosBlackoutAtStreamEndFailsLoudly(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	cl := chaosCluster(t, 2, &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: time.Second, Node: 0, Kind: sim.FaultCrash},
		{At: time.Second, Node: 1, Kind: sim.FaultCrash},
	}})
	_, err := cl.Serve(poissonFor(t, board, 24, 96, 21))
	if err == nil || !strings.Contains(err.Error(), "undeliverable") {
		t.Fatalf("total permanent blackout reported success (err = %v)", err)
	}
}

// TestChaosDrainFinishesInFlight: a drained node stops receiving work,
// finishes what it holds, and the drain duration is recorded.
func TestChaosDrainFinishesInFlight(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	cl := chaosCluster(t, 2, &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: time.Second, Node: 1, Kind: sim.FaultDrain},
	}})
	rep, err := cl.Serve(poissonFor(t, board, 20, 100, 25))
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 100 || rep.Completions != 100 {
		t.Errorf("arrivals/completions = %d/%d, want 100/100", rep.N, rep.Completions)
	}
	if rep.Drains != 1 || rep.LostLeases != 0 || rep.Dropped != 0 {
		t.Errorf("drain lost work: %d drains, %d voided, %d dropped", rep.Drains, rep.LostLeases, rep.Dropped)
	}
	if len(rep.TimeToDrain) != 1 || rep.TimeToDrain[0].Node != "node1" || rep.TimeToDrain[0].Took < 0 {
		t.Fatalf("TimeToDrain = %v, want one record for node1", rep.TimeToDrain)
	}
	if rep.FinalStates[1] != core.NodeDraining {
		t.Errorf("node1 ended %v, want draining (never resumed)", rep.FinalStates[1])
	}
	// Everything node1 was holding at the drain completed on node1; the
	// drain routed no new work there afterwards.
	if rep.PerNode[1].Completions != rep.PerNode[1].N {
		t.Errorf("node1 completed %d of %d admitted", rep.PerNode[1].Completions, rep.PerNode[1].N)
	}
}

// TestChaosClusterAdmission: the cluster-level policy runs in front of
// the router; its rejections are terminal and the exactly-once
// invariant still holds under faults.
func TestChaosClusterAdmission(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	bq, err := control.NewBoundedQueue(4)
	if err != nil {
		t.Fatal(err)
	}
	cl := buildCluster(t, Config{
		Nodes:     Uniform(2, nodeConfig(t, hw.NUMADevice())),
		SLO:       time.Second,
		Admission: bq,
		Faults: &sim.FaultPlan{Events: []sim.FaultEvent{
			{At: time.Second, Node: 1, Kind: sim.FaultCrash},
			{At: 2 * time.Second, Node: 1, Kind: sim.FaultRecover},
		}},
	}, board.Model)
	rep, err := cl.Serve(poissonFor(t, board, 40, 160, 29))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected == 0 {
		t.Fatal("bounded-4 cluster admission under 40 req/s rejected nothing; the test exercises nothing")
	}
	if rep.Completions != rep.N {
		t.Errorf("completions %d != admitted arrivals %d", rep.Completions, rep.N)
	}
	if rep.Offered != rep.N+rep.Rejected {
		t.Errorf("offered %d != %d admitted + %d rejected", rep.Offered, rep.N, rep.Rejected)
	}
}

// TestFleetAutoscalerDrainsIdleCapacity: a rate-driven fleet scaler
// under a stream one node can carry drains the excess nodes, loses
// nothing, and records the scale-downs.
func TestFleetAutoscalerDrainsIdleCapacity(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	scaler, err := NewRateFleetScaler(12)
	if err != nil {
		t.Fatal(err)
	}
	cl := buildCluster(t, Config{
		Nodes:      Uniform(4, nodeConfig(t, hw.NUMADevice())),
		SLO:        time.Second,
		Window:     500 * time.Millisecond,
		Autoscaler: scaler,
	}, board.Model)
	rep, err := cl.Serve(poissonFor(t, board, 6, 60, 33))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ScaleDowns < 3 {
		t.Errorf("scale-downs = %d, want >= 3 (6 req/s needs one 12 req/s node)", rep.ScaleDowns)
	}
	if rep.Completions != rep.N || rep.N != 60 {
		t.Errorf("arrivals/completions = %d/%d, want 60/60", rep.N, rep.Completions)
	}
	up := 0
	for _, st := range rep.FinalStates {
		if st == core.NodeUp {
			up++
		}
	}
	if up == 0 {
		t.Error("autoscaler drained the whole fleet")
	}
	if len(rep.TimeToDrain) == 0 {
		t.Error("no drain durations recorded for the scaled-down nodes")
	}
}

// TestAutoscalerRequiresWindow: the scaling interval is the windowed
// series interval; a scaler without one is a config error.
func TestAutoscalerRequiresWindow(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	scaler, err := NewRateFleetScaler(12)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		Nodes:      Uniform(2, nodeConfig(t, hw.NUMADevice())),
		Autoscaler: scaler,
	}, board.Model)
	if err == nil || !strings.Contains(err.Error(), "Window") {
		t.Fatalf("autoscaler without Window accepted (err = %v)", err)
	}
}

// TestRateFleetScalerHysteresis: scale-up is immediate, scale-down only
// through the hysteresis band.
func TestRateFleetScalerHysteresis(t *testing.T) {
	s := &RateFleetScaler{PerNode: 10, ShrinkAt: 0.7}
	w := func(arrivals int64) metrics.Window { return metrics.Window{Arrivals: arrivals} }
	sec := time.Second
	if got := s.Scale(0, w(35), sec, 2, 8); got != 4 {
		t.Errorf("35 req/s on 2 nodes: scale = %d, want 4 (immediate scale-up)", got)
	}
	// 25 req/s needs 3 nodes; shrinking from 4 requires rate < 0.7*3*10 = 21.
	if got := s.Scale(0, w(25), sec, 4, 8); got != 4 {
		t.Errorf("25 req/s on 4 nodes: scale = %d, want 4 (hold inside hysteresis band)", got)
	}
	if got := s.Scale(0, w(13), sec, 4, 8); got != 2 {
		t.Errorf("13 req/s on 4 nodes: scale = %d, want 2 (clears the band: 13 < 0.7*2*10)", got)
	}
	if got := s.Scale(0, w(0), sec, 3, 8); got != 1 {
		t.Errorf("idle fleet: scale = %d, want 1 (never zero)", got)
	}
	if _, err := NewRateFleetScaler(0); err == nil {
		t.Error("zero per-node rate accepted")
	}

	// The band edge is strict: shrinking from 4 to 2 requires rate <
	// 0.7*2*10 = 14, so exactly 14 req/s holds and one request less
	// clears it.
	if got := s.Scale(0, w(14), sec, 4, 8); got != 4 {
		t.Errorf("14 req/s on 4 nodes: scale = %d, want 4 (exact band edge holds)", got)
	}
	if got := s.Scale(0, w(13), sec, 4, 8); got != 2 {
		t.Errorf("13 req/s on 4 nodes: scale = %d, want 2 (one below the edge shrinks)", got)
	}
	// need == active is the fixed point: no move in either direction.
	if got := s.Scale(0, w(40), sec, 4, 8); got != 4 {
		t.Errorf("40 req/s on 4 nodes: scale = %d, want 4 (need == active holds)", got)
	}

	// A crash shrinks the Up count out from under the scaler; the same
	// offered rate that held 4 nodes must demand them back immediately —
	// scale-up has no hysteresis.
	if got := s.Scale(0, w(35), sec, 3, 8); got != 4 {
		t.Errorf("35 req/s on 3 nodes after a crash: scale = %d, want 4 (immediate re-grow)", got)
	}

	// No flapping: a constant rate inside the band maps every (rate,
	// active) pair to the same count, so repeated windows are a fixed
	// point rather than an up/down oscillation.
	active := 4
	for i := 0; i < 5; i++ {
		next := s.Scale(0, w(27), sec, active, 8)
		if i > 0 && next != active {
			t.Fatalf("window %d: constant 27 req/s moved the fleet %d -> %d", i, active, next)
		}
		active = next
	}
	if active != 4 {
		t.Errorf("constant 27 req/s settled at %d nodes, want 4 (26 req/s holds: need 3 but 27 >= 0.7*3*10)", active)
	}

	// Out-of-range ShrinkAt falls back to the 0.7 default rather than
	// disabling the band.
	loose := &RateFleetScaler{PerNode: 10, ShrinkAt: 7}
	if got := loose.Scale(0, w(25), sec, 4, 8); got != 4 {
		t.Errorf("ShrinkAt 7: scale = %d, want 4 (defaulted band still holds)", got)
	}
	// A zero interval window carries no rate information; hold.
	if got := s.Scale(0, w(100), 0, 3, 8); got != 3 {
		t.Errorf("zero interval: scale = %d, want 3 (hold)", got)
	}
}

// TestChaosArenaRedeliverySafe: with the workload source and the
// redelivery path sharing one arena, a crash's recycle-then-redeliver
// churn must not corrupt any live request — every arrival still
// completes exactly once and the run stays deterministic. (The CI race
// job runs this under -race.)
func TestChaosArenaRedeliverySafe(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	run := func() *Report {
		arena := coe.NewArena()
		cl := buildCluster(t, Config{
			Nodes:     Uniform(3, nodeConfig(t, hw.NUMADevice())),
			Router:    Affinity{},
			Placement: UsageProportional{},
			SLO:       time.Second,
			Arena:     arena,
			Faults: &sim.FaultPlan{Events: []sim.FaultEvent{
				{At: time.Second, Node: 0, Kind: sim.FaultCrash},
				{At: 1800 * time.Millisecond, Node: 0, Kind: sim.FaultRecover},
				{At: 2200 * time.Millisecond, Node: 2, Kind: sim.FaultCrash},
				{At: 3 * time.Second, Node: 2, Kind: sim.FaultRecover},
			}},
		}, board.Model)
		src, err := workload.Poisson{
			Name: "chaos-arena", Board: board, Rate: 30, N: 150, Seed: 37, Arena: arena,
		}.NewSource()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := cl.Serve(src)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a := run()
	if a.N != 150 || a.Completions != 150 {
		t.Errorf("arrivals/completions = %d/%d, want 150/150", a.N, a.Completions)
	}
	if a.LostLeases == 0 {
		t.Fatal("two crashes voided nothing; the test exercises nothing")
	}
	b := run()
	if !reflect.DeepEqual(normalize(a), normalize(b)) {
		t.Error("arena-backed chaos serve is nondeterministic")
	}
}

// TestGeneratedPlanServes: an MTBF-generated schedule (crashes always
// paired with recovers) drives a full serve to exactly-once completion.
func TestGeneratedPlanServes(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	plan, err := sim.GenerateFaultPlan(3, 2*time.Second, 400*time.Millisecond, 4*time.Second, 99)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Empty() {
		t.Skip("seed generated no faults inside the horizon")
	}
	cl := chaosCluster(t, 3, plan)
	rep, err := cl.Serve(poissonFor(t, board, 30, 120, 41))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions != rep.N || rep.N != 120 {
		t.Errorf("arrivals/completions = %d/%d, want 120/120", rep.N, rep.Completions)
	}
}

// emptyStream is a source that yields nothing — the join-unwind
// regression fixture.
type emptyStream struct{}

func (emptyStream) Name() string                        { return "empty" }
func (emptyStream) Next() (workload.TimedRequest, bool) { return workload.TimedRequest{}, false }

// TestJoinFailureUnwindsJoinedNodes is the regression test for the
// partial-join leak: when node k's JoinStream fails, nodes 0..k-1 had
// already joined and must be closed out — not left serving a stream
// nobody will ever close. A replay node (one-stream-only) makes the
// second Serve fail at node1, after node0 has joined.
func TestJoinFailureUnwindsJoinedNodes(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	cfgA := nodeConfig(t, hw.NUMADevice())
	cfgB := nodeConfig(t, hw.NUMADevice())
	cfgB.PreschedPicks = []int{} // non-nil: a replay system, one stream only
	cl := buildCluster(t, Config{Nodes: []core.Config{cfgA, cfgB}}, board.Model)

	if _, err := cl.Serve(emptyStream{}); err != nil {
		t.Fatalf("first (empty) stream: %v", err)
	}
	_, err := cl.Serve(emptyStream{})
	if err == nil || !strings.Contains(err.Error(), "node1") {
		t.Fatalf("second stream err = %v, want node1 join failure", err)
	}
	if cl.nodes[0].sys.Serving() {
		t.Error("node0 left serving after node1's join failed; the unwind did not close it")
	}
	// The cluster itself stays poisoned — a partial join is not servable.
	if _, err := cl.Serve(emptyStream{}); err == nil {
		t.Error("poisoned cluster accepted a third stream")
	}
}
