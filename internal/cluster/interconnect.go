package cluster

import (
	"fmt"
	"time"
)

// Interconnect is a minimal model of the dispatch fabric between the
// cluster front end and its nodes: every offer, fold-back
// acknowledgment, and rejection crosses one hop whose latency is the
// shared Dispatch cost plus a topology class — IntraBoard for nodes on
// the front end's board, InterNode for everything else. It is the down
// payment on full hierarchical-interconnect modeling: one latency
// class per board tier, applied at the front-end/node seam only
// (intra-node traffic already runs under the per-device cost model).
//
// Enabling the interconnect switches the cluster onto the sharded
// event kernel: each node simulates in its own partition, synchronized
// conservatively under a lookahead equal to the minimum modeled hop
// latency, so partitions can run in parallel (Config.Shards) with
// byte-identical output at every shard count. The zero value disables
// the model entirely — offers stay synchronous on the single shared
// environment, byte-identical to the latency-free cluster.
//
// One sharing caveat follows from the partitioning: per-node state
// referenced from a node's core.Config (Trace sinks, admission
// policies, autoscalers) must not be shared between nodes once the
// interconnect is enabled, because node partitions execute
// concurrently within a round.
type Interconnect struct {
	// Dispatch is the base per-hop dispatch latency every offer and
	// acknowledgment pays regardless of destination.
	Dispatch time.Duration
	// IntraBoard is the additional hop cost to nodes sharing the front
	// end's board (node indices below BoardSize).
	IntraBoard time.Duration
	// InterNode is the additional hop cost to nodes on other boards.
	InterNode time.Duration
	// BoardSize is how many nodes share the front end's board; zero (or
	// negative) places every node on the front end's board, so only
	// Dispatch + IntraBoard applies.
	BoardSize int
}

// Enabled reports whether any latency component is configured — the
// switch that engages the sharded kernel.
func (ic Interconnect) Enabled() bool {
	return ic.Dispatch > 0 || ic.IntraBoard > 0 || ic.InterNode > 0
}

// NodeLatency is the one-way hop latency between the front end and
// node i.
func (ic Interconnect) NodeLatency(i int) time.Duration {
	hop := ic.IntraBoard
	if ic.BoardSize > 0 && i >= ic.BoardSize {
		hop = ic.InterNode
	}
	return ic.Dispatch + hop
}

// Lookahead is the conservative synchronization horizon the sharded
// kernel runs under: the minimum one-way hop latency over the fleet.
// No cross-partition effect can propagate faster than it.
func (ic Interconnect) Lookahead(nodes int) time.Duration {
	min := time.Duration(-1)
	for i := 0; i < nodes; i++ {
		if d := ic.NodeLatency(i); min < 0 || d < min {
			min = d
		}
	}
	if min < 0 {
		min = 0
	}
	return min
}

// validate checks the model for a fleet of the given size.
func (ic Interconnect) validate(nodes int) error {
	if ic.Dispatch < 0 || ic.IntraBoard < 0 || ic.InterNode < 0 {
		return fmt.Errorf("cluster: Interconnect latencies must be >= 0 (Dispatch %v, IntraBoard %v, InterNode %v)",
			ic.Dispatch, ic.IntraBoard, ic.InterNode)
	}
	if !ic.Enabled() {
		return nil
	}
	if la := ic.Lookahead(nodes); la <= 0 {
		return fmt.Errorf("cluster: enabled Interconnect needs a positive hop latency to every node (lookahead %v); give Dispatch or the hop class of the nearest node a positive value", la)
	}
	return nil
}
