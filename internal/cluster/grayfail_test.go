package cluster

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workload"
)

// grayCluster builds a 4-node pinned fleet — affinity routing over a
// disjoint partition, the configuration where a straggler cannot be
// dodged by load-aware routing — with the given gray fault plan and
// mitigation stack.
func grayCluster(t testing.TB, plan *sim.FaultPlan, health HealthConfig, hedge HedgeConfig) *Cluster {
	t.Helper()
	board := boardFor(t, workload.BoardA())
	return buildCluster(t, Config{
		Nodes:     Uniform(4, nodeConfig(t, hw.NUMADevice())),
		Router:    Affinity{},
		Placement: Partition{},
		SLO:       3 * time.Second,
		Faults:    plan,
		Health:    health,
		Hedge:     hedge,
	}, board.Model)
}

var grayHealth = HealthConfig{Window: 500 * time.Millisecond, Breaker: true, Cooldown: 4, Probes: 2}

// TestGraySlowBreakerTripsAndReinstates: a fail-slow node keeps
// accepting work and publishing healthy predictions, so only measured
// completion latency can catch it — the breaker trips it out of
// routing, and once the degradation clears, half-open probing earns the
// node its way back in. Exactly-once completion holds throughout.
func TestGraySlowBreakerTripsAndReinstates(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	cl := grayCluster(t, &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: time.Second, Node: 1, Kind: sim.FaultSlow, Factor: 150},
		{At: 8 * time.Second, Node: 1, Kind: sim.FaultRecover},
	}}, grayHealth, HedgeConfig{})
	rep, err := cl.Serve(poissonFor(t, board, 8, 120, 20260807))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Slows != 1 || rep.Recoveries != 1 {
		t.Errorf("Slows = %d, Recoveries = %d, want 1 and 1", rep.Slows, rep.Recoveries)
	}
	if rep.BreakerTrips < 1 {
		t.Errorf("BreakerTrips = %d, want >= 1 (the straggler must be caught)", rep.BreakerTrips)
	}
	if rep.BreakerReinstates < 1 {
		t.Errorf("BreakerReinstates = %d, want >= 1 (the recovered node must earn its way back)", rep.BreakerReinstates)
	}
	if rep.ProbesSent < int64(grayHealth.Probes) {
		t.Errorf("ProbesSent = %d, want >= %d (reinstatement needs a probe quorum)", rep.ProbesSent, grayHealth.Probes)
	}
	if rep.Completions+rep.RedeliveredRejected != rep.N {
		t.Errorf("exactly-once broken: %d completions + %d rejected != %d admitted",
			rep.Completions, rep.RedeliveredRejected, rep.N)
	}
}

// TestGrayStallTripsWithoutCompletions: a stalled node completes
// nothing, so there are no latency samples to score — the dry-window
// stall detector (two consecutive silent windows while holding work)
// must zero its score and trip the breaker anyway.
func TestGrayStallTripsWithoutCompletions(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	cl := grayCluster(t, &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: time.Second, Node: 1, Kind: sim.FaultStall, For: 6 * time.Second},
	}}, grayHealth, HedgeConfig{})
	rep, err := cl.Serve(poissonFor(t, board, 8, 120, 20260807))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stalls != 1 {
		t.Errorf("Stalls = %d, want 1", rep.Stalls)
	}
	if rep.BreakerTrips < 1 {
		t.Errorf("BreakerTrips = %d, want >= 1 (zero-throughput stall must read as score 0)", rep.BreakerTrips)
	}
	if rep.Completions+rep.RedeliveredRejected != rep.N {
		t.Errorf("exactly-once broken: %d completions + %d rejected != %d admitted",
			rep.Completions, rep.RedeliveredRejected, rep.N)
	}
}

// TestGrayHedgeExactlyOnceAccounting: hedges fire only for leases whose
// holder the breaker has already removed from routing, first completion
// wins, and every fired copy is accounted as exactly one of won-ledger
// resolution, wasted duplicate work, or crash-voided — never a second
// completion.
func TestGrayHedgeExactlyOnceAccounting(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	cl := grayCluster(t, &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: time.Second, Node: 1, Kind: sim.FaultSlow, Factor: 150},
		{At: 20 * time.Second, Node: 1, Kind: sim.FaultRecover},
	}}, grayHealth, HedgeConfig{After: time.Second})
	rep, err := cl.Serve(poissonFor(t, board, 8, 120, 20260807))
	if err != nil {
		t.Fatal(err)
	}
	if rep.HedgesFired < 1 {
		t.Fatalf("HedgesFired = %d, want >= 1 (a tripped holder with overdue leases must hedge)", rep.HedgesFired)
	}
	if rep.HedgeWins < 1 {
		t.Errorf("HedgeWins = %d, want >= 1 (copies on healthy nodes should beat a 150x straggler)", rep.HedgeWins)
	}
	if rep.HedgeWins > rep.HedgesFired {
		t.Errorf("HedgeWins = %d > HedgesFired = %d", rep.HedgeWins, rep.HedgesFired)
	}
	if rep.HedgeWasted+rep.HedgesVoided != rep.HedgesFired {
		t.Errorf("hedge accounting leak: %d wasted + %d voided != %d fired",
			rep.HedgeWasted, rep.HedgesVoided, rep.HedgesFired)
	}
	if rep.HedgePromoted != 0 {
		t.Errorf("HedgePromoted = %d, want 0 (no crashes in this plan)", rep.HedgePromoted)
	}
	if rep.Completions+rep.RedeliveredRejected != rep.N {
		t.Errorf("exactly-once broken: %d completions + %d rejected != %d admitted",
			rep.Completions, rep.RedeliveredRejected, rep.N)
	}
}

// TestGrayDeterministic: the full gray stack — slow, jitter, and stall
// injection with breaker and hedging armed, timer cancellation and all —
// serves identical streams identically.
func TestGrayDeterministic(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	run := func() *Report {
		cl := grayCluster(t, &sim.FaultPlan{Events: []sim.FaultEvent{
			{At: time.Second, Node: 1, Kind: sim.FaultSlow, Factor: 150},
			{At: 1500 * time.Millisecond, Node: 2, Kind: sim.FaultJitter, Factor: 400},
			{At: 2 * time.Second, Node: 3, Kind: sim.FaultStall, For: 4 * time.Second},
			{At: 9 * time.Second, Node: 1, Kind: sim.FaultRecover},
			{At: 9 * time.Second, Node: 2, Kind: sim.FaultRecover},
		}}, grayHealth, HedgeConfig{After: time.Second})
		rep, err := cl.Serve(poissonFor(t, board, 8, 120, 20260807))
		if err != nil {
			t.Fatal(err)
		}
		return normalize(rep)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("nondeterministic gray serve:\n%+v\nvs\n%+v", a, b)
	}
}

// TestGrayMonitorOnlyIsPassive: health scoring without the breaker
// observes but never steers — a fault-free stream serves exactly as it
// would with health disabled, down to every latency and routing count;
// only the health/breaker report fields differ.
func TestGrayMonitorOnlyIsPassive(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	run := func(health HealthConfig) *Report {
		cl := grayCluster(t, nil, health, HedgeConfig{})
		rep, err := cl.Serve(poissonFor(t, board, 8, 120, 20260807))
		if err != nil {
			t.Fatal(err)
		}
		out := normalize(rep)
		out.HealthScores = nil
		return out
	}
	monitored := run(HealthConfig{Window: 500 * time.Millisecond})
	if monitored.BreakerTrips != 0 {
		t.Errorf("BreakerTrips = %d with Breaker off, want 0", monitored.BreakerTrips)
	}
	plain := run(HealthConfig{})
	if !reflect.DeepEqual(monitored, plain) {
		t.Errorf("monitor-only health changed the serve:\nmonitored: %+v\nplain:     %+v", monitored, plain)
	}
}

// TestBreakerCapAndQuorum exercises the breaker FSM's liveness guards
// directly: a fleet-wide score collapse quarantines at most half the
// nodes and never the last routable one, and a half-open node without a
// full probe quorum of completions is not judged — one fast batch must
// not reinstate it.
func TestBreakerCapAndQuorum(t *testing.T) {
	cl := grayCluster(t, nil, HealthConfig{}, HedgeConfig{})
	h := newHealthState(grayHealth.withDefaults(), len(cl.nodes))
	cl.health = h

	for i := range h.score {
		h.score[i] = 0.1
	}
	cl.breakerTick()
	if h.restricted != 2 || h.trips != 2 {
		t.Errorf("fleet-wide collapse: restricted = %d, trips = %d, want 2 and 2 (cap is half the fleet)", h.restricted, h.trips)
	}
	if got := cl.routableHealthy(); got != 2 {
		t.Errorf("routableHealthy = %d, want 2", got)
	}

	// Drive node 0 to half-open and score it healthy: without a full
	// probe quorum of completions this window, it must stay half-open.
	for h.phase[0] != breakerHalfOpen {
		cl.breakerTick()
	}
	h.score[0] = 1
	h.sk[0].Add(0.01) // one completion < Probes (2)
	cl.breakerTick()
	if h.phase[0] != breakerHalfOpen {
		t.Fatalf("phase[0] = %v after a single completion, want half-open held (quorum is %d)", h.phase[0], h.cfg.Probes)
	}
	h.sk[0].Add(0.01)
	cl.breakerTick()
	if h.phase[0] != breakerClosed || h.reinstates != 1 {
		t.Errorf("phase[0] = %v, reinstates = %d after quorum, want closed and 1", h.phase[0], h.reinstates)
	}
}

// TestHealthConfigValidation: the config seam rejects a breaker without
// a scoring window and out-of-range knobs.
func TestHealthConfigValidation(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	bad := []Config{
		{Health: HealthConfig{Breaker: true}},
		{Health: HealthConfig{Window: -time.Second}},
		{Health: HealthConfig{Window: time.Second, TripBelow: 1.5}},
		{Hedge: HedgeConfig{After: -time.Second}},
		{Hedge: HedgeConfig{After: time.Second, MaxRetries: -1}},
	}
	for _, cfg := range bad {
		cfg.Nodes = Uniform(2, nodeConfig(t, hw.NUMADevice()))
		if _, err := New(cfg, board.Model); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}
