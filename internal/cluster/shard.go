package cluster

import (
	"repro/internal/coe"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file is the cluster's side of the sharded event kernel: with
// Config.Interconnect enabled, the front end runs in the coordinator
// partition and every node's core.System in its own worker partition,
// so node partitions simulate in parallel under the kernel's
// conservative lookahead. The synchronous Offer seam cannot exist in
// that world — admitting into a node would advance its state from the
// coordinator's clock — so routing becomes an asynchronous
// offer/fold protocol made of timed cross-partition events:
//
//	coordinator ── offer @ now+latency ──▶ node partition
//	node        ── fold  @ now+latency ──▶ coordinator
//
// The offer carries the request into the node's partition, where it is
// either bounced (node not Up), rejected by node admission, or
// admitted; the outcome folds back to the coordinator one hop later
// and only then touches the lease ledger, the fleet recorder, health
// scoring, and the hedge timers. Every coordinator-side structure —
// ledger, arena, recorder, router scratch — therefore stays owned by
// partition 0, and node partitions touch only their own state plus the
// request object the offer handed them.
//
// Control verbs flow the other way without events at all: a
// coordinator event runs only when every node partition has advanced
// past its timestamp with nothing pending before it, so fault
// injection, drains, restarts, and stream close may call into node
// state directly — the call is race-free and lands at the node's
// current logical instant. Only the request path pays the modeled
// interconnect hops.
//
// Every hop is a pooled shardMsg — one typed union covering the whole
// protocol (offers out; accept/reject/bounce/completion/recycle folds
// back) — drawn from per-partition free lists via sim.PosterPartition
// and released into the delivering partition's list, so the
// steady-state offer→accept→completion cycle allocates nothing: the
// offer's message is freed into the node's list and immediately reused
// for the fold, the fold's into the coordinator's and reused for the
// next offer.
type offerKind int

const (
	// offerPrimary is a fresh arrival's first delivery.
	offerPrimary offerKind = iota
	// offerRedeliver re-delivers a crash-voided (or parked) lease.
	offerRedeliver
	// offerHedge delivers the speculative second copy of a leased
	// request whose deadline expired.
	offerHedge
)

// shardOp selects a shardMsg's handler — the cross-partition protocol's
// full verb set.
type shardOp uint8

const (
	opOffer      shardOp = iota // coordinator → node: deliver a request to admission
	opAccept                    // node → coordinator: admission succeeded, receipt enclosed
	opReject                    // node → coordinator: admission refused
	opBounce                    // node → coordinator: node not Up, request unopened
	opCompletion                // node → coordinator: request finished, ack the lease
	opRecycle                   // node → coordinator: return a dropped request to the arena
)

// shardMsg is the pooled cross-partition event payload: one union for
// every protocol hop, so a free list of them serves the entire
// interconnect path. Fields beyond op are populated per-verb; receipt
// only rides on opAccept.
type shardMsg struct {
	c       *Cluster
	op      shardOp
	kind    offerKind
	idx     int // node index: offer target, or fold origin
	r       *coe.Request
	tenant  string
	l       *lease
	receipt core.Lease
	next    *shardMsg // free-list link
}

// Deliver implements sim.Message: the kernel invokes it in the target
// partition at the scheduled instant.
func (m *shardMsg) Deliver(at sim.Time) { m.c.deliverMsg(m, at) }

// newMsg draws a message from partition part's free list. part must be
// the partition whose goroutine is executing (sim.PosterPartition) —
// the lists are unsynchronized by design.
func (c *Cluster) newMsg(part int) *shardMsg {
	m := c.msgFree[part]
	if m == nil {
		return &shardMsg{c: c}
	}
	c.msgFree[part] = m.next
	m.next = nil
	return m
}

// freeMsg returns a delivered message to partition part's free list,
// clearing payload pointers so the list pins nothing.
func (c *Cluster) freeMsg(part int, m *shardMsg) {
	m.r, m.l = nil, nil
	m.tenant = ""
	m.receipt = core.Lease{}
	m.next = c.msgFree[part]
	c.msgFree[part] = m
}

// deliverMsg unpacks and dispatches one protocol hop, freeing the
// message before the handler runs so a handler that immediately posts
// the next hop (nodeOffer folding the outcome back, a fold routing the
// next offer) reuses the very message that carried this one.
//
// Which list a message frees into is what keeps every list in balance
// over the steady offer → accept fold → completion fold cycle: the
// node's list supplies two folds per request but receives only the
// offer's carcass, and the coordinator's supplies one offer but
// receives two carcasses. So the offer frees into its node's list (the
// only safe choice mid-round anyway), the admission folds
// (accept/reject/bounce) free into the coordinator's — restocking the
// next offer — and the completion fold returns to its origin node's
// list, closing the loop at zero net drift. Folds run as coordinator
// events, which never overlap a worker round, so touching a node's
// list there is race-free under the kernel's control-verb contract.
func (c *Cluster) deliverMsg(m *shardMsg, at sim.Time) {
	op, kind, idx, r, tenant, l, receipt := m.op, m.kind, m.idx, m.r, m.tenant, m.l, m.receipt
	if op == opOffer {
		c.freeMsg(1+idx, m)
		c.nodeOffer(at, idx, kind, r, tenant, l)
		return
	}
	if op == opCompletion {
		c.freeMsg(1+idx, m)
	} else {
		c.freeMsg(0, m)
	}
	switch op {
	case opAccept:
		c.acceptFold(at, idx, kind, r, tenant, l, receipt)
	case opReject:
		c.rejectFold(at, idx, kind, r, l)
	case opBounce:
		c.bounceFold(at, idx, kind, r, tenant, l)
	case opCompletion:
		c.completionFold(at, idx, r)
	case opRecycle:
		coe.Recycle(r)
	}
}

// postOffer dispatches a request toward node idx as a timed
// cross-partition event arriving one hop from now. The in-flight offer
// is tracked so exactly-once verification and stream close account for
// requests that are currently on the wire: a primary or redelivery
// offer carries the request's accounting token (it is in neither the
// ledger nor the pending queue while it flies), a hedge offer carries
// only duplicate work. l is the lease a redelivery or hedge offer
// belongs to, nil for primaries.
//
// Offers always originate in coordinator context — routing, bounce
// re-routes, redelivery, and hedge timers all run on partition 0 — so
// the message comes from the coordinator's free list unconditionally.
func (c *Cluster) postOffer(now sim.Time, idx int, kind offerKind, r *coe.Request, tenant string, l *lease) {
	cs := c.chaos
	c.routed[idx]++
	if kind == offerHedge {
		cs.hedgeOffers++
	} else {
		cs.offersInFlight++
	}
	m := c.newMsg(0)
	m.op, m.kind, m.idx = opOffer, kind, idx
	m.r, m.tenant, m.l = r, tenant, l
	c.kernel.PostMsg(c.env, 1+idx, now.Add(c.latency[idx]), m)
}

// postFold posts a fold verb from node idx's partition to the
// coordinator, one hop after now. Safe from both phases: during a node
// round it buffers in the partition outbox (the hop is >= the kernel
// lookahead by construction) and the message comes from the node's
// free list; from coordinator context — crash purges calling the drop
// delegate — it inserts directly and draws from the coordinator's
// list. PosterPartition distinguishes the two.
func (c *Cluster) postFold(idx int, now sim.Time, op shardOp, kind offerKind, r *coe.Request, tenant string, l *lease, receipt core.Lease) {
	from := c.kernel.Part(1 + idx)
	m := c.newMsg(c.kernel.PosterPartition(from))
	m.op, m.kind, m.idx = op, kind, idx
	m.r, m.tenant, m.l, m.receipt = r, tenant, l, receipt
	c.kernel.PostMsg(from, 0, now.Add(c.latency[idx]), m)
}

// nodeOffer runs inside node idx's partition at the offer's arrival
// instant (now). It reads and advances only node-local state, and
// reports the outcome with a fold posted one hop back — at least the
// kernel's lookahead after the node's now, which is what licenses the
// node partitions to run concurrently.
func (c *Cluster) nodeOffer(now sim.Time, idx int, kind offerKind, r *coe.Request, tenant string, l *lease) {
	sys := c.nodes[idx].sys
	if sys.State() != core.NodeUp {
		// The node went down or started draining while the offer was on
		// the wire: bounce it back unopened for the coordinator to
		// re-route.
		c.postFold(idx, now, opBounce, kind, r, tenant, l, core.Lease{})
		return
	}
	receipt, ok := sys.OfferAt(now, workload.TimedRequest{Req: r, Tenant: tenant})
	if ok {
		c.postFold(idx, now, opAccept, kind, r, tenant, l, receipt)
	} else {
		c.postFold(idx, now, opReject, kind, r, "", l, core.Lease{})
	}
}

// acceptFold lands a successful admission on the coordinator: the
// lease ledger, fleet recorder, health scoring, and hedge arming all
// advance here, one hop after the node issued the receipt.
func (c *Cluster) acceptFold(now sim.Time, idx int, kind offerKind, r *coe.Request, tenant string, l *lease, receipt core.Lease) {
	cs := c.chaos
	switch kind {
	case offerPrimary:
		cs.offersInFlight--
		c.recorder.Arrival(now)
		nl := cs.open(idx, receipt, workload.TimedRequest{Req: r, Tenant: tenant}, now)
		c.armHedge(nl, c.hedge.After)
		if h := c.health; h != nil {
			h.onAdmit(idx)
		}
	case offerRedeliver:
		cs.offersInFlight--
		if l.hasArrival {
			cs.redelivered++
			l.redeliveries++
		} else {
			l.hasArrival = true
			l.arrival = receipt.Issued
			c.recorder.Arrival(now)
		}
		l.node = idx
		cs.ledger[l.id] = l
		cs.byNode[idx] = append(cs.byNode[idx], l.id)
		if h := c.health; h != nil {
			h.onAdmit(idx)
		}
		c.armHedge(l, c.hedge.After)
	case offerHedge:
		cs.hedgeOffers--
		l.hedgeInFlight = false
		if cs.ledger[l.id] == l && l.node >= 0 && l.hedgeNode < 0 {
			cs.hedgesFired++
			l.hedgeNode = idx
			cs.byNode[idx] = append(cs.byNode[idx], l.id)
			if h := c.health; h != nil {
				h.onAdmit(idx)
			}
		} else {
			// The lease resolved — or was voided into a redelivery — while
			// the hedge flew. The node admitted a duplicate nobody tracks a
			// lease for; record it so its completion counts as hedge waste,
			// exactly like a lost hedge race.
			cs.orphans[r.ID] = idx
			cs.releaseIfResolved(l)
		}
	}
	c.maybeClose()
}

// rejectFold lands a node-admission refusal on the coordinator.
// Rejection of a primary or first delivery is terminal and counted
// once; a hedge refusal re-arms the deadline with backoff, exactly as
// in the synchronous path.
func (c *Cluster) rejectFold(now sim.Time, idx int, kind offerKind, r *coe.Request, l *lease) {
	cs := c.chaos
	switch kind {
	case offerPrimary:
		cs.offersInFlight--
		c.recorder.Rejection(now)
		cs.terminalRejected++
	case offerRedeliver:
		cs.offersInFlight--
		cs.terminalRejected++
		if l.hasArrival {
			cs.redeliveredRejected++
		} else {
			c.recorder.Rejection(now)
		}
		cs.resolveLease(l)
	case offerHedge:
		cs.hedgeOffers--
		l.hedgeInFlight = false
		cs.hedgeRejected++
		if cs.ledger[l.id] == l && l.node >= 0 {
			c.rearmHedge(l)
		} else {
			cs.releaseIfResolved(l)
		}
	}
	coe.Recycle(r)
	c.maybeClose()
}

// bounceFold lands an offer that found its node not Up: the request
// never reached admission, so the coordinator re-routes it with
// current knowledge — re-picking for primaries and redeliveries
// (parking when nothing is routable), re-arming the deadline for
// hedges.
func (c *Cluster) bounceFold(now sim.Time, idx int, kind offerKind, r *coe.Request, tenant string, l *lease) {
	cs := c.chaos
	cs.bounced++
	switch kind {
	case offerPrimary:
		cs.offersInFlight--
		if j := c.pickNode(now, r); j >= 0 {
			c.postOffer(now, j, offerPrimary, r, tenant, nil)
			return
		}
		cs.park(workload.TimedRequest{Req: r, Tenant: tenant}, now)
	case offerRedeliver:
		cs.offersInFlight--
		if j := c.pickNode(now, r); j >= 0 {
			c.postOffer(now, j, offerRedeliver, r, tenant, l)
			return
		}
		cs.pending = append(cs.pending, l)
		if len(cs.pending) > cs.pendingPeak {
			cs.pendingPeak = len(cs.pending)
		}
	case offerHedge:
		cs.hedgeOffers--
		l.hedgeInFlight = false
		if cs.ledger[l.id] == l && l.node >= 0 {
			c.rearmHedge(l)
		} else {
			cs.releaseIfResolved(l)
		}
	}
	coe.Recycle(r)
	c.maybeClose()
}

// foldCompletion ships node idx's completion ack back to the
// coordinator as a timed fold — the sharded replacement for the
// synchronous requestDone call. It runs in the node's partition (the
// stream delegate fires inside the node's controller), so it may only
// capture and post.
func (c *Cluster) foldCompletion(idx int, now sim.Time, r *coe.Request) {
	c.postFold(idx, now, opCompletion, 0, r, "", nil, core.Lease{})
}

// completionFold resolves a completion against the lease ledger on the
// coordinator, one hop after the node acked. First fold wins: it
// resolves the lease, records the fleet completion (latency spans
// first node admission to this fold, return hop included), and
// schedules the loser of any hedge race as waste. Folds from holders
// the ledger no longer tracks — a copy that completed on a node after
// its lease was voided and redelivered, a race the synchronous path
// cannot express — count as duplicate acks, never as completions.
func (c *Cluster) completionFold(now sim.Time, idx int, r *coe.Request) {
	cs := c.chaos
	l := cs.ledger[r.ID]
	if l == nil || (idx != l.node && idx != l.hedgeNode) {
		if on, ok := cs.orphans[r.ID]; ok && on == idx {
			delete(cs.orphans, r.ID)
			cs.hedgeWasted++
		} else {
			cs.dupAcks++
		}
		coe.Recycle(r)
		return
	}
	c.cancelHedge(l)
	if l.hedgeNode >= 0 {
		if idx == l.hedgeNode {
			cs.hedgeWins++
			cs.orphans[r.ID] = l.node
		} else {
			cs.orphans[r.ID] = l.hedgeNode
		}
	}
	if h := c.health; h != nil {
		h.onComplete(idx, now.Sub(l.arrival).Seconds())
	}
	delete(cs.ledger, r.ID)
	cs.completions++
	c.recorder.Completion(l.arrival, now)
	if l.redeliveries > 0 {
		d := now.Sub(l.voidedAt)
		cs.failoverSum += d
		cs.failoverN++
		if d > cs.failoverMax {
			cs.failoverMax = d
		}
	}
	cs.resolveLease(l)
	coe.Recycle(r)
	if c.draining > 0 {
		c.checkDrains(now)
	}
	c.maybeClose()
}

// shardRedeliver is redeliverOne's sharded body: route the voided
// lease and post the offer. The offer owns the outcome from here —
// acceptance, terminal rejection, and bounce-driven re-routing all
// land as folds — so the caller only learns whether a routable node
// existed at this instant (false parks the lease, exactly like the
// synchronous path).
func (c *Cluster) shardRedeliver(now sim.Time, l *lease) bool {
	cs := c.chaos
	r := cs.leaseRequest(l)
	idx := c.pickNode(now, r)
	if idx < 0 {
		coe.Recycle(r)
		return false
	}
	c.postOffer(now, idx, offerRedeliver, r, l.tenant, l)
	return true
}

// postRecycle returns a crash-voided request object to the coordinator
// one hop after the node dropped it — the DropDelegate path under
// ExternalRecycle. The node's own drop accounting already ran; the
// fold only recycles, because the arena belongs to partition 0.
func (c *Cluster) postRecycle(idx int, now sim.Time, r *coe.Request) {
	c.postFold(idx, now, opRecycle, 0, r, "", nil, core.Lease{})
}
