package cluster

import (
	"fmt"

	"repro/internal/coe"
	"repro/internal/sim"
)

// Router picks the node an arriving request runs on. Pick is called
// once per arrival at the request's due instant, before the node's
// admission policy sees it; it must return an index into nodes and be
// deterministic in virtual time. The request's whole chain then runs on
// the picked node.
type Router interface {
	// Name identifies the router in reports and tables.
	Name() string
	// Pick returns the index of the node to offer the request to.
	Pick(now sim.Time, nodes []*Node, r *coe.Request) int
}

// LeastLoaded routes to the node with the smallest backlog (queued
// requests across its active executors), ties to the lowest index. It
// balances queue depth while staying blind to expert residency: two
// nodes with equal backlogs are equivalent to it even when only one
// already holds the request's expert.
type LeastLoaded struct{}

// Name implements Router.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Router.
func (LeastLoaded) Pick(_ sim.Time, nodes []*Node, _ *coe.Request) int {
	best, bestQ := 0, nodes[0].Queued()
	for i := 1; i < len(nodes); i++ {
		if q := nodes[i].Queued(); q < bestQ {
			best, bestQ = i, q
		}
	}
	return best
}

// Affinity routes to where the expert already is: among the nodes whose
// pools hold the request's first-stage expert (Loaded, or Loading with
// the switch-in in flight), the least loaded wins; when no node holds
// it, the request falls back to least-loaded — and the node it lands on
// becomes the expert's home for followers. Residency-first routing is
// what turns a fleet of small pools into one large effective pool:
// requests chase experts instead of experts chasing requests.
type Affinity struct{}

// Name implements Router.
func (Affinity) Name() string { return "affinity" }

// Pick implements Router.
func (Affinity) Pick(_ sim.Time, nodes []*Node, r *coe.Request) int {
	expert := r.Expert()
	best, bestQ := -1, 0
	for i, n := range nodes {
		if !n.Resident(expert) {
			continue
		}
		if q := n.Queued(); best < 0 || q < bestQ {
			best, bestQ = i, q
		}
	}
	if best >= 0 {
		return best
	}
	return LeastLoaded{}.Pick(0, nodes, r)
}

// Predict routes to the node whose §4.2 cost model predicts the lowest
// end-to-end latency for the request (sched.Queue.Predict across the
// node's active queues, summed over the chain's stages), ties to the
// lowest index. It subsumes both load (queue finish times) and
// residency (predicted switch latency) in one number, at the cost of
// evaluating the prediction on every node per arrival.
type Predict struct{}

// Name implements Router.
func (Predict) Name() string { return "predict" }

// Pick implements Router.
func (Predict) Pick(_ sim.Time, nodes []*Node, r *coe.Request) int {
	best := 0
	bestD := nodes[0].PredictLatency(r)
	for i := 1; i < len(nodes); i++ {
		if d := nodes[i].PredictLatency(r); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// RouterNames lists the built-in router names in presentation order.
func RouterNames() []string { return []string{"least-loaded", "affinity", "predict"} }

// RouterByName builds a router from its CLI name: "least-loaded" (or
// ""), "affinity", or "predict".
func RouterByName(name string) (Router, error) {
	switch name {
	case "", "least-loaded":
		return LeastLoaded{}, nil
	case "affinity":
		return Affinity{}, nil
	case "predict":
		return Predict{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown router %q (want least-loaded, affinity, predict)", name)
	}
}
