package cluster

import (
	"fmt"
	"time"

	"repro/internal/coe"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// HedgeConfig enables per-request timeouts with hedged redelivery: a
// request still leased After past its admission is speculatively
// re-offered to a healthy node. First completion wins and resolves the
// lease; the loser's completion finds no lease and is counted as wasted
// work, never as a second completion — the exactly-once ledger from the
// chaos layer is what makes hedging safe to account.
type HedgeConfig struct {
	// After is the deadline budget: a lease older than this (and not
	// already hedged) fires a hedge. Zero disables hedging — the
	// byte-identical default.
	After time.Duration
	// MaxRetries bounds the re-arms when a hedge attempt finds no
	// eligible node or is refused by node admission; each retry backs
	// off exponentially (After, 2·After, 4·After, …). Default 3.
	MaxRetries int
}

// Enabled reports whether hedging is on.
func (h HedgeConfig) Enabled() bool { return h.After > 0 }

func (h HedgeConfig) withDefaults() HedgeConfig {
	if h.MaxRetries == 0 {
		h.MaxRetries = 3
	}
	return h
}

func (h HedgeConfig) validate() error {
	if h.After < 0 {
		return fmt.Errorf("cluster: Hedge.After must be >= 0, got %v", h.After)
	}
	if h.MaxRetries < 0 {
		return fmt.Errorf("cluster: Hedge.MaxRetries must be >= 0, got %d", h.MaxRetries)
	}
	return nil
}

// armHedge schedules the lease's deadline timer d from now. Every armed
// timer is cancelled when the lease resolves or its holder crashes, so
// no timer outlives its lease.
func (c *Cluster) armHedge(l *lease, d time.Duration) {
	if !c.hedge.Enabled() || l.timerSet {
		return
	}
	id := l.id
	l.timer = c.env.AfterFunc(d, func() { c.hedgeDue(id) })
	l.timerSet = true
}

// cancelHedge revokes a lease's pending deadline timer, if any.
func (c *Cluster) cancelHedge(l *lease) {
	if l.timerSet {
		c.env.Cancel(l.timer)
		l.timerSet = false
	}
}

// hedgeDue is the timer callback: the lease outlived its deadline
// budget. It runs inline on the event kernel, so the actual re-offer is
// handed to a fresh process.
func (c *Cluster) hedgeDue(id int64) {
	cs := c.chaos
	l := cs.ledger[id]
	if l == nil || l.node < 0 || l.hedgeNode >= 0 || l.hedgeInFlight {
		return // resolved, voided, or already hedged since arming
	}
	l.timerSet = false
	c.env.Go("cluster/hedge", func(p *sim.Proc) { c.fireHedge(p, id) })
}

// fireHedge re-offers an overdue lease's request to a healthy node. On
// success the lease tracks both copies; whichever completes first
// resolves it and the other surfaces as wasted work. When no eligible
// node exists (or node admission refuses the copy) the primary keeps
// the lease untouched and the timer re-arms with exponential backoff,
// up to MaxRetries.
func (c *Cluster) fireHedge(p *sim.Proc, id int64) {
	cs := c.chaos
	l := cs.ledger[id]
	if l == nil || l.node < 0 || l.hedgeNode >= 0 || l.hedgeInFlight {
		return
	}
	// With the breaker armed, hedge only leases whose holder is actually
	// quarantined or probing. A deadline alone cannot tell a gray
	// failure from an honest queue — hedging every overdue request
	// under load duplicates most of the fleet's work and melts the
	// healthy nodes too — and a transient score dip short of a trip is
	// still ambiguous, so only the breaker's verdict releases a hedge.
	// Without health armed there is no such signal and the deadline is
	// trusted as-is.
	if h := c.health; h != nil && h.phase[l.node] == breakerClosed {
		c.rearmHedge(l)
		return
	}
	now := p.Now()
	idx := c.pickHedgeNode(now, l)
	if idx < 0 {
		c.rearmHedge(l)
		return
	}
	r := cs.leaseRequest(l)
	if c.kernel != nil {
		// Sharded kernel: the hedge copy crosses the interconnect like
		// any offer. hedgesFired, the byNode entry, and the race state
		// attach when the accept fold lands; a refusal or bounce re-arms
		// the deadline from its fold.
		l.hedgeInFlight = true
		c.postOffer(now, idx, offerHedge, r, l.tenant, l)
		cs.verify(now, fmt.Sprintf("hedge %d", id))
		return
	}
	c.routed[idx]++
	_, ok := c.nodes[idx].sys.Offer(p, workload.TimedRequest{Req: r, Tenant: l.tenant})
	if !ok {
		cs.hedgeRejected++
		c.rearmHedge(l)
		return
	}
	cs.hedgesFired++
	l.hedgeNode = idx
	cs.byNode[idx] = append(cs.byNode[idx], id)
	if h := c.health; h != nil {
		h.onAdmit(idx)
	}
	// A hedge moves no lease between ledger states — one arrival, one
	// lease, still exactly one completion ahead — so the invariant must
	// hold unchanged at this boundary.
	cs.verify(now, fmt.Sprintf("hedge %d", id))
}

// rearmHedge backs the deadline off exponentially and re-arms it, or
// gives up after MaxRetries — the primary then simply keeps the lease.
func (c *Cluster) rearmHedge(l *lease) {
	if l.retries >= c.hedge.MaxRetries {
		return
	}
	l.retries++
	c.chaos.hedgeRetries++
	c.armHedge(l, c.hedge.After<<uint(l.retries))
}

// pickHedgeNode routes a hedge copy: the router chooses over Up nodes
// that are not the primary holder and — when the breaker is armed — not
// quarantined or probing. Returns -1 when no such node exists.
func (c *Cluster) pickHedgeNode(now sim.Time, l *lease) int {
	c.scratch = c.scratch[:0]
	c.scratchIdx = c.scratchIdx[:0]
	for i, n := range c.nodes {
		if i == l.node || n.sys.State() != core.NodeUp {
			continue
		}
		if c.health != nil && c.health.phase[i] != breakerClosed {
			continue
		}
		c.scratch = append(c.scratch, n)
		c.scratchIdx = append(c.scratchIdx, i)
	}
	if len(c.scratch) == 0 {
		return -1
	}
	// The router only reads the request (ID, class, chain), so the pick
	// runs against a reusable probe built from the lease's own chain
	// copy — no allocation, and the probe never reaches a queue.
	c.probe = coe.Request{ID: l.id, Class: l.class, Chain: l.chain}
	j := c.router.Pick(now, c.scratch, &c.probe)
	if j < 0 || j >= len(c.scratch) {
		panic(fmt.Sprintf("cluster: router %s picked node %d of %d hedge-eligible", c.router.Name(), j, len(c.scratch)))
	}
	return c.scratchIdx[j]
}
