// Package cluster is the multi-node serving layer: one front end
// serving a single request stream across N nodes, where each node is a
// full single-device data plane (core.System — executors, pools,
// queues, admission, autoscaling) and all nodes share one simulation
// environment so the whole fleet stays deterministic.
//
// The front end owns three decisions the single-node system never had
// to make: where each expert's instances live (Placement — a
// generalization of the paper's §4.4 capacity planning across
// heterogeneous devices), which node an arriving request runs on
// (Router — least-loaded, expert-affinity over pool residency, or
// predicted-latency via the §4.2 cost model), and how the per-node
// reports aggregate into a fleet view (Report — fleet percentiles,
// attainment, and cross-node imbalance).
//
// A request is routed once, at admission: its whole expert chain runs
// on the chosen node, exactly as it would on a single-node system, so a
// node's slice of a cluster run is the same data plane the paper
// evaluates. Routing per stage (migrating a request between nodes
// mid-chain) would ship activations across nodes; with the paper's
// short chains the residency-aware first-stage decision captures
// nearly all of the benefit without modeling an interconnect.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/coe"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config describes a cluster: one core.Config per node (heterogeneous
// fleets — different devices, topologies, admission policies per node —
// are explicitly supported), the routing and placement policies, and
// the fleet-level reporting knobs.
type Config struct {
	// Nodes holds one data-plane configuration per node. Node IDs
	// default to "node0", "node1", … when empty. Per-node stateful
	// control-plane components (Admission, Autoscaler) must not be
	// shared between node configs.
	Nodes []core.Config
	// Router picks the node an admitted request runs on; nil defaults
	// to LeastLoaded.
	Router Router
	// Placement plans expert preloading across the fleet; nil defaults
	// to Mirror (every node preloads its own §4.1 usage order).
	Placement Placement
	// SLO is the fleet-level latency objective the cluster report
	// scores attainment against (0 disables, like core.Config.SLO).
	SLO time.Duration
	// Window enables the fleet-level windowed series with the given
	// interval (0 disables).
	Window time.Duration
	// Percentiles selects exact or sketch latency accounting for the
	// whole fleet. It is a cluster-level knob: New propagates it into
	// every node config (overriding whatever the node configs carry) so
	// per-node sketches exist exactly when the fleet sketch does and
	// merge losslessly into the cluster report. The zero value is
	// exact — byte-identical to the pre-sketch reports.
	Percentiles core.PercentileMode
}

// Uniform returns n copies of the node configuration — the homogeneous
// fleet constructor. IDs are left empty for New to assign.
func Uniform(n int, node core.Config) []core.Config {
	nodes := make([]core.Config, n)
	for i := range nodes {
		nodes[i] = node
	}
	return nodes
}

// Node is one member of the cluster: a single-device data plane plus
// the read-only view routers consult.
type Node struct {
	id  string
	sys *core.System
}

// ID reports the node's identifier.
func (n *Node) ID() string { return n.id }

// System exposes the node's data plane (read-only use).
func (n *Node) System() *core.System { return n.sys }

// Queued reports the node's backlog across active queues.
func (n *Node) Queued() int { return n.sys.Queued() }

// Resident reports whether the expert is Loaded or Loading in any of
// the node's pools — the router's affinity signal.
func (n *Node) Resident(id coe.ExpertID) bool { return n.sys.ExpertResident(id) }

// PredictLatency predicts the end-to-end latency the request would
// observe if admitted to this node now (sched.Queue.Predict under the
// node's §4.2 cost model).
func (n *Node) PredictLatency(r *coe.Request) time.Duration { return n.sys.PredictLatency(r) }

// Cluster is a multi-node serving system. Like core.System it is
// long-lived: Serve runs one stream across the fleet, and consecutive
// calls warm-restart every node on its already-loaded pools.
type Cluster struct {
	cfg       Config
	m         *coe.Model
	env       *sim.Env
	router    Router
	placement Placement
	nodes     []*Node
	recorder  *metrics.Recorder

	runs    int
	serving bool
	broken  error

	// routed counts arrivals handed to each node (admitted or not) this
	// stream — the imbalance numerator.
	routed []int64
}

// New builds a cluster for the CoE model: the placement plan is
// computed first, then each node's data plane is constructed in the
// shared environment with its slice of the plan preloaded.
func New(cfg Config, m *coe.Model) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: config needs at least one node")
	}
	c := &Cluster{
		cfg:       cfg,
		m:         m,
		env:       sim.NewEnv(),
		router:    cfg.Router,
		placement: cfg.Placement,
		recorder:  metrics.NewRecorder(),
		routed:    make([]int64, len(cfg.Nodes)),
	}
	if c.router == nil {
		c.router = LeastLoaded{}
	}
	if c.placement == nil {
		c.placement = Mirror{}
	}
	c.recorder.SetWindow(cfg.Window)
	if cfg.Percentiles == core.PercentilesSketch {
		c.recorder.UseSketch()
	}

	caps := make([]NodeCapacity, len(cfg.Nodes))
	for i, nc := range cfg.Nodes {
		id := nc.ID
		if id == "" {
			id = fmt.Sprintf("node%d", i)
		}
		caps[i] = NodeCapacity{ID: id, ExpertBytes: nc.Alloc.GPUExpertBytes + nc.Alloc.CPUExpertBytes}
	}
	plan, err := c.placement.Plan(m, caps)
	if err != nil {
		return nil, err
	}
	if plan != nil && len(plan) != len(cfg.Nodes) {
		return nil, fmt.Errorf("cluster: placement %q planned %d nodes for a %d-node fleet",
			c.placement.Name(), len(plan), len(cfg.Nodes))
	}

	for i, nc := range cfg.Nodes {
		nc.ID = caps[i].ID
		if plan != nil {
			nc.Preload = plan[i]
		}
		nc.Percentiles = cfg.Percentiles
		sys, err := core.NewSystemInEnv(nc, m, c.env)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %s: %w", nc.ID, err)
		}
		c.nodes = append(c.nodes, &Node{id: nc.ID, sys: sys})
	}
	return c, nil
}

// Nodes exposes the fleet (read-only use).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Runs reports how many streams the cluster has served.
func (c *Cluster) Runs() int { return c.runs }

// Serve runs one request stream across the fleet to completion and
// returns the aggregated report. The first Serve runs against the
// placement plan's freshly preloaded pools; consecutive calls
// warm-restart every node — the shared virtual clock continues and each
// node's pools keep whatever the previous stream left resident. A
// stream that ends with requests in flight poisons the cluster.
func (c *Cluster) Serve(src workload.Source) (*Report, error) {
	if c.broken != nil {
		return nil, c.broken
	}
	if c.serving {
		return nil, fmt.Errorf("cluster: Serve called re-entrantly")
	}
	if workload.IsUnbounded(src) {
		return nil, fmt.Errorf("cluster: stream %q is unbounded; wrap it in workload.Horizon to give it a terminating horizon",
			src.Name())
	}
	if sm, ok := src.(interface{ Model() *coe.Model }); ok && sm.Model() != nil && sm.Model() != c.m {
		return nil, fmt.Errorf("cluster: stream %q draws from model %q, cluster serves %q",
			src.Name(), sm.Model().Name(), c.m.Name())
	}
	c.serving = true
	defer func() { c.serving = false }()

	if c.runs > 0 {
		c.env.Reopen()
		c.recorder.Reset()
		clear(c.routed)
	}
	c.runs++
	for _, n := range c.nodes {
		if err := n.sys.JoinStream(src.Name(), c); err != nil {
			c.broken = fmt.Errorf("cluster: node %s: %w", n.id, err)
			return nil, c.broken
		}
	}
	c.env.Go("cluster/arrivals", func(p *sim.Proc) { c.admit(p, src) })
	c.env.Run()

	reports := make([]*core.Report, len(c.nodes))
	for i, n := range c.nodes {
		rep, err := n.sys.StreamReport()
		if err != nil {
			c.broken = err
			return nil, err
		}
		reports[i] = rep
	}
	return c.report(src.Name(), reports), nil
}

// admit is the cluster's arrival process: it walks the source, sleeps
// until each request's due time, asks the router for a node, and offers
// the request to that node's admission and dispatch path. When the
// source closes it closes every node's stream so the fleet drains and
// shuts down.
func (c *Cluster) admit(p *sim.Proc, src workload.Source) {
	start := p.Now()
	for {
		tr, ok := src.Next()
		if !ok {
			break
		}
		due := start.Add(tr.At)
		if wait := due.Sub(p.Now()); wait > 0 {
			p.Sleep(wait)
		}
		idx := c.router.Pick(p.Now(), c.nodes, tr.Req)
		if idx < 0 || idx >= len(c.nodes) {
			panic(fmt.Sprintf("cluster: router %s picked node %d of %d", c.router.Name(), idx, len(c.nodes)))
		}
		c.routed[idx]++
		if c.nodes[idx].sys.Offer(p, tr) {
			c.recorder.Arrival(p.Now())
		} else {
			c.recorder.Rejection(p.Now())
		}
	}
	for _, n := range c.nodes {
		n.sys.CloseStream()
	}
}

// RequestDone implements core.StreamDelegate: every node reports its
// completions into the fleet recorder, which therefore holds the exact
// per-request latency population — fleet percentiles are computed over
// it, not approximated from per-node summaries.
func (c *Cluster) RequestDone(p *sim.Proc, r *coe.Request) {
	c.recorder.Completion(r.Arrival, p.Now())
}
