// Package cluster is the multi-node serving layer: one front end
// serving a single request stream across N nodes, where each node is a
// full single-device data plane (core.System — executors, pools,
// queues, admission, autoscaling) and all nodes share one simulation
// environment so the whole fleet stays deterministic.
//
// The front end owns three decisions the single-node system never had
// to make: where each expert's instances live (Placement — a
// generalization of the paper's §4.4 capacity planning across
// heterogeneous devices), which node an arriving request runs on
// (Router — least-loaded, expert-affinity over pool residency, or
// predicted-latency via the §4.2 cost model), and how the per-node
// reports aggregate into a fleet view (Report — fleet percentiles,
// attainment, and cross-node imbalance).
//
// A request is routed once, at admission: its whole expert chain runs
// on the chosen node, exactly as it would on a single-node system, so a
// node's slice of a cluster run is the same data plane the paper
// evaluates. Routing per stage (migrating a request between nodes
// mid-chain) would ship activations across nodes; with the paper's
// short chains the residency-aware first-stage decision captures
// nearly all of the benefit without modeling an interconnect.
package cluster

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/coe"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config describes a cluster: one core.Config per node (heterogeneous
// fleets — different devices, topologies, admission policies per node —
// are explicitly supported), the routing and placement policies, and
// the fleet-level reporting knobs.
type Config struct {
	// Nodes holds one data-plane configuration per node. Node IDs
	// default to "node0", "node1", … when empty. Per-node stateful
	// control-plane components (Admission, Autoscaler) must not be
	// shared between node configs.
	Nodes []core.Config
	// Router picks the node an admitted request runs on; nil defaults
	// to LeastLoaded.
	Router Router
	// Placement plans expert preloading across the fleet; nil defaults
	// to Mirror (every node preloads its own §4.1 usage order).
	Placement Placement
	// SLO is the fleet-level latency objective the cluster report
	// scores attainment against (0 disables, like core.Config.SLO).
	SLO time.Duration
	// Window enables the fleet-level windowed series with the given
	// interval (0 disables).
	Window time.Duration
	// Percentiles selects exact or sketch latency accounting for the
	// whole fleet. It is a cluster-level knob: New propagates it into
	// every node config (overriding whatever the node configs carry) so
	// per-node sketches exist exactly when the fleet sketch does and
	// merge losslessly into the cluster report. The zero value is
	// exact — byte-identical to the pre-sketch reports.
	Percentiles core.PercentileMode

	// Admission, when set, is the cluster-level admission policy checked
	// in front of the router: a request it rejects never reaches a node.
	// The policy sees the Cluster as its control.View (fleet backlog,
	// best-node latency prediction). Nil — the default — admits
	// everything, byte-identical to the pre-admission cluster.
	Admission control.AdmissionPolicy
	// Faults is the stream's fault schedule: scripted crash/drain/
	// recover events the cluster fires deterministically, with lease-
	// tracked at-least-once redelivery of a crashed node's in-flight
	// requests and exactly-once completion accounting. Nil or empty — the
	// default — injects nothing and leaves every serve path byte-
	// identical to the fault-free cluster.
	Faults *sim.FaultPlan
	// Arena, when set alongside Faults, leases redelivered requests from
	// this arena (normally the same one the workload source draws from)
	// instead of allocating them. Optional; redelivery is correct either
	// way.
	Arena *coe.Arena
	// Autoscaler, when set, drives the routable node count from the
	// fleet's windowed metrics series: once per Window it is asked for a
	// desired Up count, and the cluster drains (highest-index first) or
	// resumes nodes to match. Requires Window > 0. Nil disables fleet
	// scaling.
	Autoscaler FleetAutoscaler

	// Health enables per-node health scoring and the circuit breaker —
	// the gray-failure detector. The zero value disables it and leaves
	// every serve path byte-identical to the health-free cluster.
	Health HealthConfig
	// Hedge enables per-request deadline timeouts with hedged
	// redelivery over the chaos layer's lease ledger. The zero value
	// disables it.
	Hedge HedgeConfig

	// Interconnect models the dispatch latency between the front end
	// and its nodes. Enabling it moves the cluster onto the sharded
	// event kernel — every node in its own partition, offers and acks
	// as timed cross-partition events — whose output is byte-identical
	// at every Shards setting. The zero value disables the model and
	// keeps the single shared environment, byte-identical to the
	// latency-free cluster.
	Interconnect Interconnect
	// Shards bounds how many node partitions simulate concurrently
	// when the Interconnect is enabled: 0 defaults to GOMAXPROCS, 1
	// runs the partitioned kernel sequentially (same output, no
	// parallelism). Ignored without an Interconnect — with zero modeled
	// latency there is no lookahead to parallelize under.
	Shards int
}

// Uniform returns n copies of the node configuration — the homogeneous
// fleet constructor. IDs are left empty for New to assign.
func Uniform(n int, node core.Config) []core.Config {
	nodes := make([]core.Config, n)
	for i := range nodes {
		nodes[i] = node
	}
	return nodes
}

// Node is one member of the cluster: a single-device data plane plus
// the read-only view routers consult.
type Node struct {
	id  string
	sys *core.System
}

// ID reports the node's identifier.
func (n *Node) ID() string { return n.id }

// System exposes the node's data plane (read-only use).
func (n *Node) System() *core.System { return n.sys }

// Queued reports the node's backlog across active queues.
func (n *Node) Queued() int { return n.sys.Queued() }

// Resident reports whether the expert is Loaded or Loading in any of
// the node's pools — the router's affinity signal.
func (n *Node) Resident(id coe.ExpertID) bool { return n.sys.ExpertResident(id) }

// PredictLatency predicts the end-to-end latency the request would
// observe if admitted to this node now (sched.Queue.Predict under the
// node's §4.2 cost model).
func (n *Node) PredictLatency(r *coe.Request) time.Duration { return n.sys.PredictLatency(r) }

// Cluster is a multi-node serving system. Like core.System it is
// long-lived: Serve runs one stream across the fleet, and consecutive
// calls warm-restart every node on its already-loaded pools.
type Cluster struct {
	cfg       Config
	m         *coe.Model
	env       *sim.Env
	router    Router
	placement Placement
	nodes     []*Node
	recorder  *metrics.Recorder

	// kernel is the sharded event kernel when Config.Interconnect is
	// enabled (env then aliases its coordinator partition); nil keeps
	// the classic single shared environment. latency caches each
	// node's one-way hop cost.
	kernel  *sim.Sharded
	latency []time.Duration
	// msgFree holds per-partition free lists of pooled cross-partition
	// messages (index 0 the coordinator, 1+i node i) — unsynchronized,
	// each touched only by its partition's executing context.
	msgFree []*shardMsg

	runs    int
	serving bool
	broken  error

	// routed counts arrivals handed to each node (admitted or not) this
	// stream — the imbalance numerator.
	routed []int64

	// chaos is the per-stream durable-delivery state (lease ledger,
	// redelivery queue, exactly-once counters); nil on fault-free
	// streams, which therefore pay nothing for the machinery.
	chaos *chaosState
	// closedAll records that every node's stream has been closed; with
	// faults the close is deferred until the ledger and redelivery queue
	// drain, so a recovered node can still receive redeliveries.
	closedAll bool

	// unroutable counts nodes currently not Up. While it is zero (and
	// no breaker restricts a node) the router sees c.nodes directly —
	// the fault-free fast path; otherwise pickNode routes over the
	// eligible subset in scratch/scratchIdx.
	unroutable int
	scratch    []*Node
	scratchIdx []int

	// health is the per-stream scoring and breaker state; nil unless
	// Config.Health is enabled. hedge is Config.Hedge with defaults
	// resolved. delegates gives each node an identity-carrying
	// StreamDelegate so completions attribute to the reporting node.
	health    *healthState
	hedge     HedgeConfig
	delegates []nodeDelegate
	probe     coe.Request

	// draining counts nodes currently Draining; drain timing below is
	// allocated only when faults or a fleet autoscaler are configured.
	draining      int
	drainOn       []bool     // drain in progress, completion not yet recorded
	drainStart    []sim.Time // when the drain began
	scalerDrained []bool     // drain owned by the fleet autoscaler
	drainRecords  []DrainRecord
	scaleUps      int
	scaleDowns    int
}

// New builds a cluster for the CoE model: the placement plan is
// computed first, then each node's data plane is constructed in the
// shared environment with its slice of the plan preloaded.
func New(cfg Config, m *coe.Model) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: config needs at least one node")
	}
	c := &Cluster{
		cfg:       cfg,
		m:         m,
		router:    cfg.Router,
		placement: cfg.Placement,
		recorder:  metrics.NewRecorder(),
		routed:    make([]int64, len(cfg.Nodes)),
	}
	if err := cfg.Interconnect.validate(len(cfg.Nodes)); err != nil {
		return nil, err
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("cluster: Shards must be >= 0, got %d", cfg.Shards)
	}
	if cfg.Interconnect.Enabled() {
		c.kernel = sim.NewSharded(1+len(cfg.Nodes), cfg.Shards, cfg.Interconnect.Lookahead(len(cfg.Nodes)))
		c.env = c.kernel.Part(0)
		c.msgFree = make([]*shardMsg, 1+len(cfg.Nodes))
		c.latency = make([]time.Duration, len(cfg.Nodes))
		for i := range c.latency {
			c.latency[i] = cfg.Interconnect.NodeLatency(i)
		}
	} else {
		c.env = sim.NewEnv()
	}
	if c.router == nil {
		c.router = LeastLoaded{}
	}
	if c.placement == nil {
		c.placement = Mirror{}
	}
	if err := cfg.Faults.Validate(len(cfg.Nodes)); err != nil {
		return nil, err
	}
	if cfg.Autoscaler != nil && cfg.Window <= 0 {
		return nil, fmt.Errorf("cluster: a fleet autoscaler needs Window > 0 (the scaling interval)")
	}
	if err := cfg.Health.validate(); err != nil {
		return nil, err
	}
	if err := cfg.Hedge.validate(); err != nil {
		return nil, err
	}
	c.hedge = cfg.Hedge.withDefaults()
	c.recorder.SetWindow(cfg.Window)
	if cfg.Percentiles == core.PercentilesSketch {
		c.recorder.UseSketch()
	}

	caps := make([]NodeCapacity, len(cfg.Nodes))
	for i, nc := range cfg.Nodes {
		id := nc.ID
		if id == "" {
			id = fmt.Sprintf("node%d", i)
		}
		caps[i] = NodeCapacity{ID: id, ExpertBytes: nc.Alloc.GPUExpertBytes + nc.Alloc.CPUExpertBytes}
	}
	plan, err := c.placement.Plan(m, caps)
	if err != nil {
		return nil, err
	}
	if plan != nil && len(plan) != len(cfg.Nodes) {
		return nil, fmt.Errorf("cluster: placement %q planned %d nodes for a %d-node fleet",
			c.placement.Name(), len(plan), len(cfg.Nodes))
	}

	for i, nc := range cfg.Nodes {
		nc.ID = caps[i].ID
		if plan != nil {
			nc.Preload = plan[i]
		}
		nc.Percentiles = cfg.Percentiles
		env := c.env
		if c.kernel != nil {
			// Each node simulates in its own partition, and request
			// objects stay coordinator-owned: the node hands them back
			// through the delegate's completion and drop folds instead of
			// recycling into the shared arena from a worker partition.
			env = c.kernel.Part(1 + i)
			nc.ExternalRecycle = true
		}
		sys, err := core.NewSystemInEnv(nc, m, env)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %s: %w", nc.ID, err)
		}
		c.nodes = append(c.nodes, &Node{id: nc.ID, sys: sys})
	}
	c.delegates = make([]nodeDelegate, len(c.nodes))
	for i := range c.delegates {
		c.delegates[i] = nodeDelegate{c: c, idx: i}
	}
	return c, nil
}

// nodeDelegate is the StreamDelegate one node reports completions
// through: it carries the node's index so the cluster can attribute the
// completion — health scoring per node, hedge-race resolution by
// whichever copy's node acked first.
type nodeDelegate struct {
	c   *Cluster
	idx int
}

// RequestDone implements core.StreamDelegate. On the sharded kernel it
// runs inside the node's partition, so the completion travels to the
// coordinator as a fold event instead of a direct call.
func (d *nodeDelegate) RequestDone(p *sim.Proc, r *coe.Request) {
	if d.c.kernel != nil {
		d.c.foldCompletion(d.idx, p.Now(), r)
		return
	}
	d.c.requestDone(p, d.idx, r)
}

// RequestDropped implements core.DropDelegate: under ExternalRecycle —
// set exactly when the kernel is sharded — a crash-voided request
// folds back to the coordinator for recycling.
func (d *nodeDelegate) RequestDropped(now sim.Time, r *coe.Request) {
	d.c.postRecycle(d.idx, now, r)
}

// Nodes exposes the fleet (read-only use).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Sharded reports whether the cluster runs on the sharded event
// kernel, and under how many workers. (0, false) means the classic
// single shared environment.
func (c *Cluster) Sharded() (workers int, ok bool) {
	if c.kernel == nil {
		return 0, false
	}
	return c.kernel.Workers(), true
}

// runKernel drives the stream to completion on whichever kernel the
// cluster was built over.
func (c *Cluster) runKernel() {
	if c.kernel != nil {
		c.kernel.Run()
		return
	}
	c.env.Run()
}

// Runs reports how many streams the cluster has served.
func (c *Cluster) Runs() int { return c.runs }

// Serve runs one request stream across the fleet to completion and
// returns the aggregated report. The first Serve runs against the
// placement plan's freshly preloaded pools; consecutive calls
// warm-restart every node — the shared virtual clock continues and each
// node's pools keep whatever the previous stream left resident. A
// stream that ends with requests in flight poisons the cluster.
func (c *Cluster) Serve(src workload.Source) (*Report, error) {
	if c.broken != nil {
		return nil, c.broken
	}
	if c.serving {
		return nil, fmt.Errorf("cluster: Serve called re-entrantly")
	}
	if workload.IsUnbounded(src) {
		return nil, fmt.Errorf("cluster: stream %q is unbounded; wrap it in workload.Horizon to give it a terminating horizon",
			src.Name())
	}
	if sm, ok := src.(interface{ Model() *coe.Model }); ok && sm.Model() != nil && sm.Model() != c.m {
		return nil, fmt.Errorf("cluster: stream %q draws from model %q, cluster serves %q",
			src.Name(), sm.Model().Name(), c.m.Name())
	}
	c.serving = true
	defer func() { c.serving = false }()

	if c.runs > 0 {
		if c.kernel != nil {
			c.kernel.Reopen()
		} else {
			c.env.Reopen()
		}
		c.recorder.Reset()
		clear(c.routed)
	}
	c.runs++
	c.beginLifecycle()
	for i, n := range c.nodes {
		if err := n.sys.JoinStream(src.Name(), &c.delegates[i]); err != nil {
			// Unwind the nodes already joined: close their (empty) streams
			// and collect the reports, so they end this stream cleanly
			// instead of being left serving a stream nobody will ever
			// close. The cluster itself stays poisoned — a partial join is
			// not a servable state — but the nodes are not.
			if i > 0 {
				for _, m := range c.nodes[:i] {
					m.sys.CloseStream()
				}
				c.runKernel()
				for _, m := range c.nodes[:i] {
					m.sys.StreamReport()
				}
			}
			c.broken = fmt.Errorf("cluster: node %s: %w", n.id, err)
			return nil, c.broken
		}
	}
	if c.cfg.Admission != nil {
		c.cfg.Admission.Reset(c.env.Now())
	}
	if c.chaos != nil {
		plan := c.cfg.Faults
		c.env.Go("cluster/chaos", func(p *sim.Proc) {
			plan.Run(p, func(ev sim.FaultEvent) { c.applyFault(p, ev) })
		})
	}
	if c.cfg.Autoscaler != nil {
		c.env.Go("cluster/autoscale", c.fleetAutoscale)
	}
	if c.health != nil {
		c.env.Go("cluster/health", c.healthLoop)
	}
	c.env.Go("cluster/arrivals", func(p *sim.Proc) { c.admit(p, src) })
	c.runKernel()

	if cs := c.chaos; cs != nil {
		cs.verify(c.env.Now(), "stream end")
		if len(cs.violations) > 0 {
			c.broken = fmt.Errorf("cluster: exactly-once accounting violated:\n  %s",
				strings.Join(cs.violations, "\n  "))
			return nil, c.broken
		}
		if !c.closedAll {
			c.broken = fmt.Errorf("cluster: stream %q ended with %d leases outstanding and %d requests undeliverable (no routable node remained to redeliver to)",
				src.Name(), len(cs.ledger), len(cs.pending))
			return nil, c.broken
		}
	}

	reports := make([]*core.Report, len(c.nodes))
	for i, n := range c.nodes {
		rep, err := n.sys.StreamReport()
		if err != nil {
			c.broken = err
			return nil, err
		}
		reports[i] = rep
	}
	return c.report(src.Name(), reports), nil
}

// beginLifecycle arms the per-stream lifecycle state: a fresh chaos
// ledger when a fault plan is configured (or hedging needs one), fresh
// health scoring when configured, and the drain-timing buffers when
// faults or a fleet autoscaler can drain nodes. Fault-free, scaler-free,
// health-free streams allocate nothing here.
func (c *Cluster) beginLifecycle() {
	c.closedAll = false
	c.unroutable, c.draining = 0, 0
	c.scaleUps, c.scaleDowns = 0, 0
	c.drainRecords = nil
	c.chaos = nil
	c.health = nil
	if !c.cfg.Faults.Empty() || c.hedge.Enabled() || c.kernel != nil {
		// Hedging rides on the lease ledger even on a fault-free stream:
		// a deadline can only re-lease what a lease tracks. The sharded
		// kernel always runs over the ledger too — an offer on the wire
		// needs a lease to land in, and close must wait for it.
		c.chaos = newChaosState(len(c.nodes), c.cfg.Arena)
	}
	if c.cfg.Health.Enabled() {
		c.health = newHealthState(c.cfg.Health.withDefaults(), len(c.nodes))
	}
	if c.chaos != nil || c.cfg.Autoscaler != nil {
		if c.drainOn == nil {
			c.drainOn = make([]bool, len(c.nodes))
			c.drainStart = make([]sim.Time, len(c.nodes))
			c.scalerDrained = make([]bool, len(c.nodes))
		}
		clear(c.drainOn)
		clear(c.drainStart)
		clear(c.scalerDrained)
	}
}

// admit is the cluster's arrival process: it walks the source, sleeps
// until each request's due time, asks the router for a node, and offers
// the request to that node's admission and dispatch path. When the
// source closes it closes every node's stream so the fleet drains and
// shuts down.
func (c *Cluster) admit(p *sim.Proc, src workload.Source) {
	start := p.Now()
	for {
		tr, ok := src.Next()
		if !ok {
			break
		}
		due := start.Add(tr.At)
		if wait := due.Sub(p.Now()); wait > 0 {
			p.Sleep(wait)
		}
		if c.chaos != nil {
			c.chaos.arrivals++
		}
		c.deliver(p, tr)
	}
	if c.chaos == nil {
		c.closedAll = true
		for _, n := range c.nodes {
			n.sys.CloseStream()
		}
		return
	}
	// With faults in play the close is deferred: a voided lease may
	// still need redelivery to a node that has not recovered yet, so the
	// nodes' streams stay open until every lease has resolved.
	c.chaos.srcClosed = true
	c.chaos.verify(p.Now(), "source exhausted")
	c.maybeClose()
}

// deliver runs one arrival through cluster admission, routing, and the
// chosen node's offer path. With faults configured it additionally
// opens a lease in the chaos ledger on admission, and parks the request
// for later redelivery when no routable node exists at this instant.
func (c *Cluster) deliver(p *sim.Proc, tr workload.TimedRequest) {
	now := p.Now()
	if c.cfg.Admission != nil && !c.cfg.Admission.Admit(now, c, tr.Req) {
		c.recorder.Rejection(now)
		if c.chaos != nil {
			c.chaos.terminalRejected++
		}
		coe.Recycle(tr.Req)
		return
	}
	idx := c.pickNode(now, tr.Req)
	if idx < 0 {
		// Chaos only: the whole fleet is down or draining. Park the
		// request (by value — the ledger owns its own chain copy) for
		// redelivery when a node recovers, and recycle the object.
		c.chaos.park(tr, now)
		coe.Recycle(tr.Req)
		return
	}
	if c.kernel != nil {
		// Sharded kernel: the offer crosses the interconnect as a timed
		// event; admission outcome, lease, and recorder updates land on
		// the folds.
		c.postOffer(now, idx, offerPrimary, tr.Req, tr.Tenant, nil)
		return
	}
	c.routed[idx]++
	lease, ok := c.nodes[idx].sys.Offer(p, tr)
	if ok {
		c.recorder.Arrival(now)
		if c.chaos != nil {
			l := c.chaos.open(idx, lease, tr, now)
			c.armHedge(l, c.hedge.After)
		}
		if h := c.health; h != nil {
			h.onAdmit(idx)
		}
	} else {
		c.recorder.Rejection(now)
		if c.chaos != nil {
			c.chaos.terminalRejected++
		}
	}
}

// pickNode asks the router for a node. While every node is Up and no
// breaker restricts one, it routes over the full fleet — the fault-free
// fast path, unchanged from the pre-chaos cluster; otherwise it
// presents the router with the eligible subset (Up, and breaker-closed
// or within a half-open node's probe budget), so a draining, crashed,
// or quarantined node stops receiving work. When every Up node is
// quarantined the breaker yields rather than blackhole the fleet: the
// router picks over the full Up set. Returns -1 when no node is Up at
// all (only possible mid-fault).
func (c *Cluster) pickNode(now sim.Time, r *coe.Request) int {
	h := c.health
	if c.unroutable == 0 && (h == nil || h.restricted == 0) {
		idx := c.router.Pick(now, c.nodes, r)
		if idx < 0 || idx >= len(c.nodes) {
			panic(fmt.Sprintf("cluster: router %s picked node %d of %d", c.router.Name(), idx, len(c.nodes)))
		}
		return idx
	}
	c.scratch = c.scratch[:0]
	c.scratchIdx = c.scratchIdx[:0]
	for i, n := range c.nodes {
		if n.sys.State() != core.NodeUp {
			continue
		}
		if h != nil && !h.eligible(i) {
			continue
		}
		c.scratch = append(c.scratch, n)
		c.scratchIdx = append(c.scratchIdx, i)
	}
	if len(c.scratch) == 0 && h != nil && h.restricted > 0 {
		// Every Up node is quarantined or out of probe budget. Liveness
		// beats the breaker: route over whatever is Up.
		for i, n := range c.nodes {
			if n.sys.State() == core.NodeUp {
				c.scratch = append(c.scratch, n)
				c.scratchIdx = append(c.scratchIdx, i)
			}
		}
		if len(c.scratch) > 0 {
			h.bypasses++
		}
	}
	if len(c.scratch) == 0 {
		return -1
	}
	j := c.router.Pick(now, c.scratch, r)
	if j < 0 || j >= len(c.scratch) {
		panic(fmt.Sprintf("cluster: router %s picked node %d of %d routable", c.router.Name(), j, len(c.scratch)))
	}
	return c.scratchIdx[j]
}

// Queued implements control.View for cluster-level admission: the fleet
// backlog across routable nodes.
func (c *Cluster) Queued() int {
	n := 0
	for _, node := range c.nodes {
		if node.sys.State() == core.NodeUp {
			n += node.sys.Queued()
		}
	}
	return n
}

// PredictLatency implements control.View: the best (minimum) predicted
// end-to-end latency over routable nodes — the latency an ideal router
// would obtain, the right optimistic bias for shedding decisions.
func (c *Cluster) PredictLatency(r *coe.Request) time.Duration {
	best := time.Duration(-1)
	for _, node := range c.nodes {
		if node.sys.State() != core.NodeUp {
			continue
		}
		if d := node.sys.PredictLatency(r); best < 0 || d < best {
			best = d
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// requestDone is the fleet completion hook behind every nodeDelegate:
// node idx reports a completion into the fleet recorder, which
// therefore holds the exact per-request latency population — fleet
// percentiles are computed over it, not approximated from per-node
// summaries. With the ledger armed the completion first resolves its
// lease, which both dedups (a completion without a live lease counts
// nothing — exactly-once) and restores the request's original arrival
// time for redelivered work, so fleet latency spans first admission to
// final completion. A hedged lease resolves to whichever copy acked
// first; the loser becomes an orphan whose own completion lands in the
// nil-lease branch as wasted work.
func (c *Cluster) requestDone(p *sim.Proc, idx int, r *coe.Request) {
	now := p.Now()
	if cs := c.chaos; cs != nil {
		l := cs.ledger[r.ID]
		if l == nil {
			if on, ok := cs.orphans[r.ID]; ok && on == idx {
				delete(cs.orphans, r.ID)
				cs.hedgeWasted++
				return
			}
			cs.dupAcks++
			return
		}
		c.cancelHedge(l)
		if l.hedgeNode >= 0 {
			// A race was on: record the loser's holder so its late
			// completion counts as hedge waste, not as a duplicate ack.
			if idx == l.hedgeNode {
				cs.hedgeWins++
				cs.orphans[r.ID] = l.node
			} else {
				cs.orphans[r.ID] = l.hedgeNode
			}
		}
		if h := c.health; h != nil {
			h.onComplete(idx, now.Sub(l.arrival).Seconds())
		}
		delete(cs.ledger, r.ID)
		cs.completions++
		c.recorder.Completion(l.arrival, now)
		if l.redeliveries > 0 {
			d := now.Sub(l.voidedAt)
			cs.failoverSum += d
			cs.failoverN++
			if d > cs.failoverMax {
				cs.failoverMax = d
			}
		}
		cs.resolveLease(l)
		if c.draining > 0 {
			c.checkDrains(now)
		}
		c.maybeClose()
		return
	}
	if h := c.health; h != nil {
		h.onComplete(idx, now.Sub(r.Arrival).Seconds())
	}
	c.recorder.Completion(r.Arrival, now)
	if c.draining > 0 {
		c.checkDrains(now)
	}
}

// maybeClose closes every node's stream once the source is exhausted
// and no lease or parked request remains — the chaos-mode close, which
// must wait for redelivery to finish. No-op until then.
func (c *Cluster) maybeClose() {
	cs := c.chaos
	if cs == nil || !cs.srcClosed || c.closedAll {
		return
	}
	if len(cs.ledger) > 0 || len(cs.pending) > 0 {
		return
	}
	if cs.offersInFlight > 0 || cs.hedgeOffers > 0 {
		// An offer is still on the wire: a primary or redelivery will
		// open a lease when its fold lands, and even a hedge duplicate
		// must find its node's stream open to be admitted and drained.
		return
	}
	c.closedAll = true
	for _, n := range c.nodes {
		n.sys.CloseStream()
	}
}

// checkDrains records the completion time of any drain that has just
// finished: a Draining node with nothing outstanding has drained, and
// the record is the time from the drain order to this instant.
func (c *Cluster) checkDrains(now sim.Time) {
	for i, n := range c.nodes {
		if c.drainOn != nil && c.drainOn[i] && n.sys.State() == core.NodeDraining && n.sys.Outstanding() == 0 {
			c.drainOn[i] = false
			c.drainRecords = append(c.drainRecords, DrainRecord{
				Node: n.id, Took: now.Sub(c.drainStart[i]),
			})
		}
	}
}
