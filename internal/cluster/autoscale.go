package cluster

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// FleetAutoscaler decides how many nodes should be routable. Once per
// Config.Window the cluster hands it the last window of the fleet's
// metrics series and the current topology; the returned desired count
// is clamped to [1, total] and applied by draining the highest-index Up
// nodes (scale-down — they finish in-flight work, stop receiving new)
// or resuming previously autoscaler-drained nodes (scale-up). Nodes a
// fault plan crashed or drained are never touched: the autoscaler only
// reclaims drains it ordered itself.
type FleetAutoscaler interface {
	Name() string
	// Scale returns the desired routable node count given the last
	// completed window w of length interval, the current Up count, and
	// the fleet size.
	Scale(now sim.Time, w metrics.Window, interval time.Duration, active, total int) int
}

// RateFleetScaler sizes the fleet from the offered rate: enough nodes
// that each carries at most PerNode arrivals per second, with a
// hysteresis band so the count does not flap — it scales up as soon as
// the rate exceeds the active capacity, but scales down only when the
// rate falls below ShrinkAt of the post-shrink capacity.
type RateFleetScaler struct {
	// PerNode is one node's target arrival rate (requests/second).
	PerNode float64
	// ShrinkAt is the scale-down hysteresis factor in (0, 1]: shrinking
	// to k nodes requires rate < ShrinkAt * k * PerNode. NewRateFleetScaler
	// defaults it to 0.7.
	ShrinkAt float64
}

// NewRateFleetScaler returns a rate-driven fleet scaler targeting
// perNode arrivals per second per node.
func NewRateFleetScaler(perNode float64) (*RateFleetScaler, error) {
	if perNode <= 0 {
		return nil, fmt.Errorf("cluster: RateFleetScaler needs a positive per-node rate, got %v", perNode)
	}
	return &RateFleetScaler{PerNode: perNode, ShrinkAt: 0.7}, nil
}

// Name implements FleetAutoscaler.
func (s *RateFleetScaler) Name() string { return "rate" }

// Scale implements FleetAutoscaler.
func (s *RateFleetScaler) Scale(now sim.Time, w metrics.Window, interval time.Duration, active, total int) int {
	if interval <= 0 {
		return active
	}
	rate := float64(w.Arrivals) / interval.Seconds()
	need := int(math.Ceil(rate / s.PerNode))
	if need < 1 {
		need = 1
	}
	if need > active {
		return need // scale up immediately: attainment is on the line
	}
	if need < active {
		shrinkAt := s.ShrinkAt
		if shrinkAt <= 0 || shrinkAt > 1 {
			shrinkAt = 0.7
		}
		// Only shrink when the rate clears the hysteresis band below the
		// post-shrink capacity; otherwise hold.
		if rate < shrinkAt*float64(need)*s.PerNode {
			return need
		}
	}
	return active
}

// fleetAutoscale is the cluster's scaling process: once per Window it
// synthesizes the last window of the fleet series from the recorder's
// counters (arrivals, completions, rejections since the previous tick),
// asks the autoscaler for a desired Up count, and applies it. It exits
// once the stream's nodes have been closed — the fleet only drains from
// there.
func (c *Cluster) fleetAutoscale(p *sim.Proc) {
	window := c.cfg.Window
	var lastArr, lastComp, lastRej int64
	start := p.Now()
	for {
		p.Sleep(window)
		if c.closedAll {
			return
		}
		arr := c.recorder.Arrivals()
		comp := c.recorder.Completions()
		rej := c.recorder.Rejections()
		w := metrics.Window{
			Start:       p.Now().Sub(start) - window,
			Arrivals:    arr - lastArr,
			Completions: comp - lastComp,
			Rejections:  rej - lastRej,
		}
		lastArr, lastComp, lastRej = arr, comp, rej
		up := 0
		for _, n := range c.nodes {
			if n.sys.State() == core.NodeUp {
				up++
			}
		}
		if up == 0 {
			continue // mid-blackout; nothing to scale
		}
		desired := c.cfg.Autoscaler.Scale(p.Now(), w, window, up, len(c.nodes))
		desired = min(max(desired, 1), len(c.nodes))
		c.applyScale(p, desired, up)
	}
}

// applyScale drains or resumes nodes to move the Up count toward
// desired. Scale-down drains from the highest index; scale-up resumes
// autoscaler-drained nodes from the lowest. Crashed nodes and fault-
// plan drains are out of bounds in both directions.
func (c *Cluster) applyScale(p *sim.Proc, desired, up int) {
	now := p.Now()
	for i := len(c.nodes) - 1; i >= 0 && up > desired; i-- {
		n := c.nodes[i]
		if n.sys.State() != core.NodeUp {
			continue
		}
		n.sys.Drain()
		c.unroutable++
		c.draining++
		c.drainOn[i] = true
		c.drainStart[i] = now
		c.scalerDrained[i] = true
		c.scaleDowns++
		up--
	}
	c.checkDrains(now) // an idle node drains instantly
	resumed := false
	for i := 0; i < len(c.nodes) && up < desired; i++ {
		n := c.nodes[i]
		if !c.scalerDrained[i] || n.sys.State() != core.NodeDraining {
			continue
		}
		n.sys.Resume()
		c.unroutable--
		c.draining--
		c.drainOn[i] = false
		c.scalerDrained[i] = false
		c.scaleUps++
		up++
		resumed = true
	}
	if resumed && c.chaos != nil {
		c.flushPending(p)
	}
}
