package cluster

import (
	"testing"

	"repro/internal/coe"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestShardedSteadyStateAllocsPin pins the sharded hot path's
// allocation discipline: once the message pool, lease pool, arena, and
// sketches are warm, a full stream of offer → accept fold → completion
// fold round trips across the interconnect must stay within a small
// per-request allocation budget. A leak in any pool — messages drifting
// between partition free lists, leases never released, requests not
// recycled — shows up here as a per-request slope, not a constant.
func TestShardedSteadyStateAllocsPin(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	arena := coe.NewArena()
	cfg := shardConfig(t, 1, nil, HealthConfig{}, HedgeConfig{})
	cfg.Arena = arena
	cfg.Percentiles = core.PercentilesSketch
	for i := range cfg.Nodes {
		cfg.Nodes[i].DisablePicks = true
	}
	c := buildCluster(t, cfg, board.Model)

	const n = 2000
	seed := int64(1)
	stream := func() workload.Source {
		src, err := workload.Poisson{
			Name: "allocs-pin", Board: board, Rate: 120, N: n, Seed: seed, Arena: arena,
		}.NewSource()
		if err != nil {
			t.Fatal(err)
		}
		seed++
		return src
	}

	// Warm everything: the first stream grows the arena to the in-flight
	// peak, stocks the per-partition message lists and the lease free
	// list, and sizes the recorder sketches.
	if _, err := c.Serve(stream()); err != nil {
		t.Fatal(err)
	}

	avg := testing.AllocsPerRun(2, func() {
		if _, err := c.Serve(stream()); err != nil {
			t.Error(err)
		}
	})
	// The interconnect path itself — pooled messages, pooled leases —
	// contributes ~0 here; the budget covers what remains: per-stream
	// fixed overhead (fresh chaosState maps, recorder reset, source
	// construction, lease pool re-warming to the in-flight peak) and
	// node-internal expert-cache eviction churn at under one allocation
	// per request. The closure-era kernel's ~10 allocs/request blows
	// through the bound seven-fold, so any message- or lease-pool leak
	// fails loudly.
	perReq := avg / n
	t.Logf("allocs: %.0f total, %.3f per request", avg, perReq)
	if perReq > 1.5 {
		t.Errorf("steady-state sharded serve allocates %.3f per request (%.0f total for %d), want <= 1.5",
			perReq, avg, n)
	}
}
