package cluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/coe"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestClusterSketchMergeExact is the tentpole's merge contract: in
// sketch mode the fleet percentiles are assembled by merging per-node
// sketches, and that merge must be lossless — identical, quantile for
// quantile, to the fleet recorder's own sketch that saw every
// completion directly.
func TestClusterSketchMergeExact(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	cfg := Config{
		Nodes:       Uniform(4, nodeConfig(t, hw.NUMADevice())),
		Router:      LeastLoaded{},
		SLO:         500 * time.Millisecond,
		Percentiles: core.PercentilesSketch,
	}
	c := buildCluster(t, cfg, board.Model)
	rep, err := c.Serve(poissonFor(t, board, 30, 600, 2026))
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatencySketch == nil {
		t.Fatal("sketch-mode cluster report carries no merged sketch")
	}
	var nodeCompletions int64
	for _, nr := range rep.PerNode {
		if nr.LatencySketch == nil {
			t.Fatalf("node %s report carries no sketch — cluster mode was not propagated", nr.System)
		}
		nodeCompletions += nr.Completions
	}
	if nodeCompletions != rep.Completions {
		t.Fatalf("node completions sum to %d, fleet reports %d", nodeCompletions, rep.Completions)
	}
	fleet := c.recorder.Sketch()
	if fleet == nil {
		t.Fatal("fleet recorder has no sketch in sketch mode")
	}
	merged := rep.LatencySketch
	if merged.Count() != fleet.Count() || merged.Min() != fleet.Min() || merged.Max() != fleet.Max() {
		t.Fatalf("merged count/min/max = %d/%v/%v, fleet recorder %d/%v/%v",
			merged.Count(), merged.Min(), merged.Max(), fleet.Count(), fleet.Min(), fleet.Max())
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		if m, f := merged.Quantile(q), fleet.Quantile(q); m != f {
			t.Fatalf("merge not lossless: Quantile(%v) merged %v != fleet %v", q, m, f)
		}
	}
	for _, lim := range []float64{0.05, 0.1, 0.25, 0.5, 1, 2} {
		if m, f := merged.Attainment(lim), fleet.Attainment(lim); m != f {
			t.Fatalf("merge not lossless: Attainment(%v) merged %v != fleet %v", lim, m, f)
		}
	}
	if rep.Latency.P50 > rep.Latency.P95 || rep.Latency.P95 > rep.Latency.P99 {
		t.Errorf("fleet percentiles not monotone: %+v", rep.Latency)
	}
}

// TestClusterSketchMatchesExactWithinBound: the same cluster stream in
// sketch mode agrees with exact mode on all exact quantities and on
// percentiles within the sketch's accuracy bound (plus one rank-gap of
// interpolation slack).
func TestClusterSketchMatchesExactWithinBound(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	serve := func(mode core.PercentileMode) *Report {
		cfg := Config{
			Nodes:       Uniform(2, nodeConfig(t, hw.NUMADevice())),
			SLO:         500 * time.Millisecond,
			Percentiles: mode,
		}
		c := buildCluster(t, cfg, board.Model)
		rep, err := c.Serve(poissonFor(t, board, 24, 400, 777))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	exact := serve(core.PercentilesExact)
	sketch := serve(core.PercentilesSketch)
	if exact.LatencySketch != nil {
		t.Error("exact mode must not carry a merged sketch")
	}
	if exact.Completions != sketch.Completions || exact.Makespan != sketch.Makespan ||
		exact.Imbalance != sketch.Imbalance {
		t.Fatal("sketch mode changed serving behavior")
	}
	el, sl := exact.Latency, sketch.Latency
	if el.N != sl.N || el.Min != sl.Min || el.Max != sl.Max {
		t.Fatalf("N/Min/Max must stay exact: %d/%v/%v vs %d/%v/%v",
			sl.N, sl.Min, sl.Max, el.N, el.Min, el.Max)
	}
	tol := 2.5 * sketch.LatencySketch.RelativeAccuracy()
	for _, pair := range [][2]float64{{sl.P50, el.P50}, {sl.P95, el.P95}, {sl.P99, el.P99}} {
		if math.Abs(pair[0]-pair[1]) > tol*pair[1] {
			t.Errorf("sketch percentile %v deviates more than %.1f%% from exact %v",
				pair[0], 100*tol, pair[1])
		}
	}
	if math.Abs(sketch.SLOAttainment-exact.SLOAttainment) > 0.02 {
		t.Errorf("attainment %v deviates from exact %v", sketch.SLOAttainment, exact.SLOAttainment)
	}
}

// TestClusterArenaServe: an arena-backed stream served across a fleet
// recycles through the cluster delegate path — every node completion
// returns its request, so the pool stays bounded and a rerun on the
// same arena reuses it.
func TestClusterArenaServe(t *testing.T) {
	const n = 400
	board := boardFor(t, workload.BoardA())
	cfg := Config{
		Nodes:       Uniform(3, nodeConfig(t, hw.NUMADevice())),
		Percentiles: core.PercentilesSketch,
	}
	c := buildCluster(t, cfg, board.Model)
	arena := coe.NewArena()
	stream := func(seed int64) workload.Source {
		src, err := workload.Poisson{
			Name: "arena-fleet", Board: board, Rate: 24, N: n, Seed: seed, Arena: arena,
		}.NewSource()
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	rep, err := c.Serve(stream(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions != n {
		t.Fatalf("completions = %d, want %d", rep.Completions, n)
	}
	if arena.Leases() != n {
		t.Fatalf("arena leased %d, want %d", arena.Leases(), n)
	}
	if arena.Reuses() == 0 {
		t.Error("no reuses — cluster completions are not recycling")
	}
	if arena.Free() > n/2 {
		t.Errorf("free list %d not bounded by in-flight peak", arena.Free())
	}
	firstReuses := arena.Reuses()
	rep2, err := c.Serve(stream(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Completions != n {
		t.Fatalf("warm-restart completions = %d, want %d", rep2.Completions, n)
	}
	if arena.Reuses()-firstReuses < n/2 {
		t.Error("warm-restarted fleet stream did not reuse the pool")
	}
	// Sanity on the merged sketch after a warm restart: counts reflect
	// only the second stream.
	if rep2.LatencySketch.Count() != n {
		t.Errorf("second stream's sketch counts %d, want %d", rep2.LatencySketch.Count(), n)
	}
}

// TestSketchExactFieldsNilInDefaultMode guards the golden contract: a
// default-mode (exact) cluster report must have nil sketch fields so
// the existing byte-identity and DeepEqual report tests keep passing.
func TestSketchExactFieldsNilInDefaultMode(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	cfg := Config{Nodes: Uniform(1, nodeConfig(t, hw.NUMADevice()))}
	c := buildCluster(t, cfg, board.Model)
	rep, err := c.Serve(poissonFor(t, board, 24, 120, 9))
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatencySketch != nil || rep.PerNode[0].LatencySketch != nil {
		t.Error("exact-mode reports must carry nil sketches")
	}
	var zero stats.Summary
	if rep.Latency == zero {
		t.Error("exact-mode latency summary is empty")
	}
}
