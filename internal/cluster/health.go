package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// HealthConfig enables per-node health scoring and, optionally, the
// circuit breaker that routes around unhealthy nodes. Health is the
// mitigation side of the gray-failure story: a fail-slow node never
// leaves the Up lifecycle state, so the router only stops feeding it if
// something measures it.
type HealthConfig struct {
	// Window is the scoring interval: once per Window every node's
	// completion latencies (folded through a per-node stats.Sketch) are
	// scored against the fleet median into a health score in [0, 1].
	// Zero disables health entirely — the byte-identical default.
	Window time.Duration
	// Breaker arms the circuit breaker: a node whose score falls below
	// TripBelow is quarantined out of routing, held open for Cooldown
	// windows, then probed half-open (at most Probes outstanding
	// requests) and reinstated once its score recovers past
	// RestoreAbove. Requires Window > 0.
	Breaker bool
	// TripBelow is the quarantine threshold (default 0.5).
	TripBelow float64
	// RestoreAbove is the reinstatement threshold a half-open node must
	// reach (default 0.8).
	RestoreAbove float64
	// Cooldown is how many windows a tripped node stays fully open
	// before half-open probing begins (default 2).
	Cooldown int
	// Probes caps the requests routed to a half-open node per window
	// (default 1).
	Probes int
}

// Enabled reports whether health scoring is on.
func (h HealthConfig) Enabled() bool { return h.Window > 0 }

// withDefaults fills the zero knobs.
func (h HealthConfig) withDefaults() HealthConfig {
	if h.TripBelow == 0 {
		h.TripBelow = 0.5
	}
	if h.RestoreAbove == 0 {
		h.RestoreAbove = 0.8
	}
	if h.Cooldown == 0 {
		h.Cooldown = 2
	}
	if h.Probes == 0 {
		h.Probes = 1
	}
	return h
}

func (h HealthConfig) validate() error {
	if h.Breaker && h.Window <= 0 {
		return fmt.Errorf("cluster: Health.Breaker needs Health.Window > 0 (the scoring interval)")
	}
	if h.Window < 0 {
		return fmt.Errorf("cluster: Health.Window must be >= 0, got %v", h.Window)
	}
	if h.TripBelow < 0 || h.TripBelow > 1 || h.RestoreAbove < 0 || h.RestoreAbove > 1 {
		return fmt.Errorf("cluster: Health thresholds must be in [0, 1]")
	}
	return nil
}

// breakerPhase is one node's circuit-breaker state.
type breakerPhase int

const (
	breakerClosed   breakerPhase = iota // routable
	breakerOpen                         // quarantined, cooling down
	breakerHalfOpen                     // probing: Probes requests per window
)

func (b breakerPhase) String() string {
	switch b {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breakerPhase(%d)", int(b))
}

// healthState is the per-stream health bookkeeping: windowed per-node
// completion latency (a stats.Sketch each, reset every window), the
// scores derived from it, and the breaker FSM. Nil on streams without
// HealthConfig — those pay nothing.
type healthState struct {
	cfg   HealthConfig
	score []float64
	phase []breakerPhase
	cool  []int // windows left before open → half-open
	// probes counts a half-open node's in-flight probe admissions; it
	// caps routing, decrements on completion, and resets each window.
	probes []int
	// dry counts consecutive windows a node completed nothing while
	// holding work. One silent window is routine — a cold start or a
	// batch spanning the window boundary looks exactly like this — so
	// only a run of them reads as a stall.
	dry   []int
	sk    []*stats.Sketch // this window's completion latencies per node
	means []float64       // scratch for the median reference

	// restricted counts nodes whose phase is not closed; while zero the
	// router fast path stays untouched.
	restricted int

	trips      int   // closed/half-open → open transitions
	reinstates int   // half-open → closed transitions
	probesSent int64 // requests admitted to half-open nodes
	bypasses   int64 // arrivals routed over a fully-quarantined Up set
}

func newHealthState(cfg HealthConfig, nodes int) *healthState {
	h := &healthState{
		cfg:    cfg,
		score:  make([]float64, nodes),
		phase:  make([]breakerPhase, nodes),
		cool:   make([]int, nodes),
		probes: make([]int, nodes),
		dry:    make([]int, nodes),
		sk:     make([]*stats.Sketch, nodes),
		means:  make([]float64, 0, nodes),
	}
	for i := range h.score {
		h.score[i] = 1
		h.sk[i] = stats.NewSketch()
	}
	return h
}

// eligible reports whether routing may send ordinary traffic to node i:
// breaker closed, or half-open with a probe slot free.
func (h *healthState) eligible(i int) bool {
	switch h.phase[i] {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		return h.probes[i] < h.cfg.Probes
	}
	return false
}

// onAdmit records a successful admission to node i.
func (h *healthState) onAdmit(i int) {
	if h.phase[i] == breakerHalfOpen {
		h.probes[i]++
		h.probesSent++
	}
}

// onComplete records a lease-resolved completion on node i with the
// given end-to-end latency.
func (h *healthState) onComplete(i int, latSeconds float64) {
	h.sk[i].Add(latSeconds)
	if h.probes[i] > 0 {
		h.probes[i]--
	}
}

// resetNode wipes node i's health bookkeeping — a crash already resets
// the node itself, so the restarted instance is presumed healthy until
// measured again.
func (h *healthState) resetNode(i int) {
	if h.phase[i] != breakerClosed {
		h.restricted--
	}
	h.phase[i] = breakerClosed
	h.score[i] = 1
	h.cool[i] = 0
	h.probes[i] = 0
	h.dry[i] = 0
	h.sk[i].Reset()
}

// healthLoop is the scoring process: once per Window it recomputes every
// node's score and advances the breaker FSM. It exits after the stream
// has fully closed, like the fleet autoscaler.
func (c *Cluster) healthLoop(p *sim.Proc) {
	for {
		p.Sleep(c.health.cfg.Window)
		if c.closedAll {
			return
		}
		c.healthTick()
	}
}

// healthTick folds one window: per-node scores from this window's
// completion latencies and admissions, then the breaker transitions.
func (c *Cluster) healthTick() {
	h := c.health
	// Reference latency: the median of the per-node mean completion
	// latencies this window, over Up nodes that completed anything. A
	// healthy homogeneous fleet scores ~1 everywhere; one straggler sits
	// far above the median and scores ~median/self.
	h.means = h.means[:0]
	for i, n := range c.nodes {
		if n.sys.State() != core.NodeUp || h.sk[i].Count() == 0 {
			continue
		}
		h.means = append(h.means, h.sk[i].Sum()/float64(h.sk[i].Count()))
	}
	ref := 0.0
	if len(h.means) > 0 {
		sort.Float64s(h.means)
		ref = h.means[len(h.means)/2]
	}
	for i, n := range c.nodes {
		if n.sys.State() != core.NodeUp {
			// Down/Draining nodes are the lifecycle layer's problem; their
			// health resets so they come back presumed healthy.
			continue
		}
		cnt := h.sk[i].Count()
		switch {
		case cnt == 0 && n.sys.Outstanding() > 0:
			// Completed nothing while holding work. One window of silence
			// is no verdict — the held batch may simply span the boundary —
			// so the score is left where it was until the silence repeats;
			// from the second consecutive dry window on, the node reads as
			// stalled.
			h.dry[i]++
			if h.dry[i] >= 2 {
				h.score[i] = 0
			}
		case cnt == 0:
			// Idle: nothing to hold against it.
			h.dry[i] = 0
			h.score[i] = 1
		default:
			h.dry[i] = 0
			// Relative latency only. A raw completions/admissions ratio
			// would also read queue growth — which any node shows under a
			// Poisson burst — as sickness and trip healthy nodes; queueing
			// surfaces in the sojourn latencies soon enough, and the
			// cnt == 0 case above catches the true zero-throughput stall.
			h.score[i] = 1
			if mean := h.sk[i].Sum() / float64(cnt); ref > 0 && mean > ref {
				h.score[i] = ref / mean
			}
		}
	}
	if h.cfg.Breaker {
		c.breakerTick()
	}
	for i := range h.sk {
		h.sk[i].Reset()
		h.probes[i] = 0
	}
}

// breakerTick advances every Up node's breaker FSM on the scores the
// window just produced. Two liveness guards bound fresh trips: at most
// half the fleet may be quarantined at once (relative scoring always
// ranks somebody last, and a breaker with no cap will happily eat a
// healthy fleet one "worst" node at a time), and a trip never
// quarantines the last routable node — better a measured straggler
// than a blackholed fleet. A node already open or half-open may re-trip
// freely; it holds its quarantine slot until reinstated.
func (c *Cluster) breakerTick() {
	h := c.health
	maxOpen := len(c.nodes) / 2
	if maxOpen < 1 {
		maxOpen = 1
	}
	for i, n := range c.nodes {
		if n.sys.State() != core.NodeUp {
			continue
		}
		switch h.phase[i] {
		case breakerClosed:
			if h.score[i] < h.cfg.TripBelow && h.restricted < maxOpen && c.routableHealthy() > 1 {
				h.phase[i] = breakerOpen
				h.cool[i] = h.cfg.Cooldown
				h.restricted++
				h.trips++
			}
		case breakerOpen:
			h.cool[i]--
			if h.cool[i] <= 0 {
				h.phase[i] = breakerHalfOpen
			}
		case breakerHalfOpen:
			// Judge only on windows with a full quorum of completions; an
			// unprobed window (probe still queued behind the straggler's
			// backlog) keeps the node half-open, and a single lucky
			// completion from a jittering node is not evidence of health —
			// one fast batch must not reinstate a sick node.
			if h.sk[i].Count() < int64(h.cfg.Probes) {
				break
			}
			if h.score[i] >= h.cfg.RestoreAbove {
				h.phase[i] = breakerClosed
				h.restricted--
				h.reinstates++
			} else if h.score[i] < h.cfg.TripBelow {
				h.phase[i] = breakerOpen
				h.cool[i] = h.cfg.Cooldown
				h.trips++
			}
		}
	}
}

// routableHealthy counts Up nodes whose breaker is closed.
func (c *Cluster) routableHealthy() int {
	n := 0
	for i, node := range c.nodes {
		if node.sys.State() == core.NodeUp && c.health.phase[i] == breakerClosed {
			n++
		}
	}
	return n
}
