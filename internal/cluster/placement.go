package cluster

import (
	"fmt"

	"repro/internal/coe"
)

// NodeCapacity is the slice of a node's configuration placement plans
// consume: its identity and total expert-storage budget (GPU plus CPU
// pool bytes). Heterogeneous fleets present heterogeneous capacities
// here, and the plans weight instance placement by them.
type NodeCapacity struct {
	ID string
	// ExpertBytes is the node's total expert-pool budget.
	ExpertBytes int64
}

// Placement plans expert preloading across the fleet before the first
// stream: Plan returns one ordered expert list per node, preloaded
// round-robin into that node's pools until they fill
// (core.Config.Preload), or a nil plan to leave every node on its own
// §4.1 descending-usage default. Plans must be deterministic.
type Placement interface {
	// Name identifies the placement in reports and tables.
	Name() string
	// Plan returns one preload list per node, or nil for the default.
	Plan(m *coe.Model, nodes []NodeCapacity) ([][]coe.ExpertID, error)
}

// Mirror is the identity placement: every node independently preloads
// the §4.1 descending-usage order, so the fleet holds N copies of the
// hottest experts. It maximizes hot-expert service capacity and
// warm-restart locality at the cost of total coverage — the fleet's
// effective pool is no larger than one node's.
type Mirror struct{}

// Name implements Placement.
func (Mirror) Name() string { return "mirror" }

// Plan implements Placement: nil means "every node defaults".
func (Mirror) Plan(*coe.Model, []NodeCapacity) ([][]coe.ExpertID, error) { return nil, nil }

// Partition gives every expert exactly one home: walking experts in
// descending usage probability, each is placed on the node with the
// most remaining capacity that fits it (ties to the lowest index). The
// fleet's effective pool is the sum of the nodes' pools — maximal
// coverage, no replication — so a partitioned fleet wants an
// affinity-style router to send requests where their expert lives.
type Partition struct{}

// Name implements Placement.
func (Partition) Name() string { return "partition" }

// Plan implements Placement.
func (Partition) Plan(m *coe.Model, nodes []NodeCapacity) ([][]coe.ExpertID, error) {
	plan := make([][]coe.ExpertID, len(nodes))
	for i := range plan {
		plan[i] = []coe.ExpertID{}
	}
	remaining := capacities(nodes)
	for _, e := range m.ExpertsByUsage() {
		if i := widestNode(remaining, e.WeightBytes(), nil); i >= 0 {
			plan[i] = append(plan[i], e.ID)
			remaining[i] -= e.WeightBytes()
		}
	}
	return plan, nil
}

// UsageProportional generalizes the paper's §4.4 capacity planning to a
// fleet: instead of asking "how many experts should one device hold",
// it asks "how many instances of each expert should the fleet hold, and
// where". Instances are dealt by marginal gain — the next copy goes to
// the expert maximizing UsageProb/(instances+1), the water-filling rule
// that equalizes expected load per instance — until every node's
// capacity is spent, with each instance placed on the
// largest-remaining-capacity node not yet holding the expert. Hot
// experts end up replicated on several (heterogeneously sized) nodes,
// cold experts keep at most one home, and the split between replication
// and coverage follows the usage distribution instead of a fixed rule.
type UsageProportional struct{}

// Name implements Placement.
func (UsageProportional) Name() string { return "usage" }

// Plan implements Placement.
func (UsageProportional) Plan(m *coe.Model, nodes []NodeCapacity) ([][]coe.ExpertID, error) {
	plan := make([][]coe.ExpertID, len(nodes))
	for i := range plan {
		plan[i] = []coe.ExpertID{}
	}
	remaining := capacities(nodes)
	experts := m.ExpertsByUsage()
	instances := make([]int, len(experts))
	// homes[e] marks the nodes already holding expert rank e.
	homes := make([][]bool, len(experts))
	for i := range homes {
		homes[i] = make([]bool, len(nodes))
	}
	for {
		// The candidate with the highest marginal gain that still has a
		// node to land on. Ties break to the higher usage rank (lower
		// index in the descending-usage order), so the outcome is
		// deterministic.
		best, bestNode := -1, -1
		var bestGain float64
		for rank, e := range experts {
			if instances[rank] >= len(nodes) {
				continue
			}
			gain := e.UsageProb / float64(instances[rank]+1)
			if best >= 0 && gain <= bestGain {
				continue
			}
			if node := widestNode(remaining, e.WeightBytes(), homes[rank]); node >= 0 {
				best, bestNode, bestGain = rank, node, gain
			}
		}
		if best < 0 {
			break
		}
		e := experts[best]
		plan[bestNode] = append(plan[bestNode], e.ID)
		remaining[bestNode] -= e.WeightBytes()
		instances[best]++
		homes[best][bestNode] = true
	}
	return plan, nil
}

// capacities copies the nodes' expert budgets into a working slice.
func capacities(nodes []NodeCapacity) []int64 {
	out := make([]int64, len(nodes))
	for i, n := range nodes {
		out[i] = n.ExpertBytes
	}
	return out
}

// widestNode returns the index of the node with the most remaining
// capacity that fits need and is not excluded, ties to the lowest
// index; -1 when none fits.
func widestNode(remaining []int64, need int64, excluded []bool) int {
	best := -1
	for i, rem := range remaining {
		if rem < need || (excluded != nil && excluded[i]) {
			continue
		}
		if best < 0 || rem > remaining[best] {
			best = i
		}
	}
	return best
}

// PlacementNames lists the built-in placement names in presentation
// order.
func PlacementNames() []string { return []string{"mirror", "partition", "usage"} }

// PlacementByName builds a placement from its CLI name: "mirror" (or
// ""), "partition", or "usage".
func PlacementByName(name string) (Placement, error) {
	switch name {
	case "", "mirror":
		return Mirror{}, nil
	case "partition":
		return Partition{}, nil
	case "usage":
		return UsageProportional{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown placement %q (want mirror, partition, usage)", name)
	}
}
