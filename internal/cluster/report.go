package cluster

import (
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// Report aggregates one cluster-served stream: the fleet view plus each
// node's full single-system report.
type Report struct {
	// Stream names the served source; Nodes is the fleet size.
	Stream string
	Nodes  int
	// Router and Placement name the policies the stream ran under.
	Router    string
	Placement string

	// N counts admitted requests fleet-wide; Offered additionally
	// counts requests rejected by the nodes' admission policies.
	N             int64
	Offered       int64
	Rejected      int64
	RejectionRate float64
	Completions   int64
	// Makespan spans first fleet arrival to last fleet completion;
	// Throughput is fleet completions per second of it.
	Makespan   time.Duration
	Throughput float64

	// Latency summarizes the fleet-wide per-request latency population
	// (seconds) — not an approximation over node summaries. In exact
	// mode it is computed from the fleet recorder's full sample set; in
	// sketch mode from the lossless merge of the per-node sketches,
	// which is bucket-for-bucket identical to a single fleet sketch.
	Latency stats.Summary
	// LatencySketch is the merged fleet latency sketch (per-node
	// sketches folded together). Nil in exact mode.
	LatencySketch *stats.Sketch
	// SLO echoes the fleet objective; SLOAttainment is the fraction of
	// fleet completions meeting it (1 when no SLO is configured).
	SLO           time.Duration
	SLOAttainment float64

	// Switches, SSDLoads, HostHits, and Evictions sum the nodes' expert
	// movement — the fleet's total switching bill.
	Switches  int64
	SSDLoads  int64
	HostHits  int64
	Evictions int64

	// Imbalance is the max-over-mean ratio of per-node routed arrivals:
	// 1.0 is a perfectly balanced fleet, N is everything on one node of
	// N. Routed counts include rejected requests — it measures the
	// router, not the admission policies.
	Imbalance float64
	// Routed counts arrivals handed to each node, in node order.
	Routed []int64

	// Windows is the fleet-level sliding-interval series (nil unless
	// Config.Window enabled it).
	Windows []metrics.Window

	// PerNode holds each node's full report, in node order. Node-local
	// slices (per-tenant stats, per-executor rows, windows) live here.
	PerNode []*core.Report

	// Chaos and lifecycle accounting — all zero on fault-free,
	// scaler-free streams.

	// Faults counts fault-plan events applied; Crashes, Drains,
	// Recoveries, and the gray kinds (Slows, Jitters, Stalls) break
	// them down. A gray recover counts under Recoveries.
	Faults     int
	Crashes    int
	Drains     int
	Recoveries int
	Slows      int
	Jitters    int
	Stalls     int
	// LostLeases counts leases voided by crashes; Redelivered counts
	// their successful re-admissions (≤ LostLeases: a lease can be
	// voided and redelivered more than once, or terminally rejected).
	// RedeliveredRejected counts voided leases a node's admission
	// refused — terminal losses the recorder's arrival count already
	// includes, so on streams with them N = Completions +
	// RedeliveredRejected. Dropped sums the nodes' crash-voided request
	// counts (queued work purged plus in-flight batches discarded).
	LostLeases          int64
	Redelivered         int64
	RedeliveredRejected int64
	Dropped             int64
	// PendingPeak is the largest redelivery backlog observed while no
	// node was routable.
	PendingPeak int
	// Bounced counts offers that crossed the interconnect only to find
	// their node no longer Up, and were re-routed by the front end.
	// Always zero without Config.Interconnect: the synchronous offer
	// path routes and admits at the same instant.
	Bounced int64
	// DupAcks counts completion acknowledgments that arrived after
	// their lease had been voided and redelivered — work finished on a
	// node the ledger no longer tracked. Only the sharded kernel can
	// produce them (an ack and a crash can cross on the wire); they
	// never count as completions.
	DupAcks int64
	// FailoverMean and FailoverMax summarize the time from a lease's
	// void (the crash) to its redelivered completion.
	FailoverMean time.Duration
	FailoverMax  time.Duration
	// TimeToDrain records every completed drain: the time from the
	// drain order until the node had nothing outstanding.
	TimeToDrain []DrainRecord
	// ScaleUps and ScaleDowns count the fleet autoscaler's actions;
	// FinalStates is each node's lifecycle state at stream end.
	ScaleUps    int
	ScaleDowns  int
	FinalStates []core.NodeState

	// Health and breaker accounting — all zero unless Config.Health is
	// enabled. HealthScores is each node's last computed score.
	BreakerTrips      int
	BreakerReinstates int
	ProbesSent        int64
	BreakerBypasses   int64
	HealthScores      []float64

	// Hedge accounting — all zero unless Config.Hedge is enabled.
	// HedgesFired counts speculative copies admitted; HedgeWins the
	// leases the copy resolved first; HedgeWasted the loser copies that
	// completed anyway (the wasted-work bill); HedgeRejected copies
	// node admission refused; HedgeRetries deadline re-arms after a
	// failed attempt; HedgePromoted primaries lost to a crash whose
	// hedge copy took over the lease; HedgesVoided copies destroyed by
	// crashes before completing.
	HedgesFired   int64
	HedgeWins     int64
	HedgeWasted   int64
	HedgeRejected int64
	HedgeRetries  int64
	HedgePromoted int64
	HedgesVoided  int64
}

// DrainRecord is one completed drain: the node and how long it took to
// finish its in-flight work after routing stopped.
type DrainRecord struct {
	Node string
	Took time.Duration
}

// report assembles the fleet aggregate after a completed stream.
func (c *Cluster) report(stream string, perNode []*core.Report) *Report {
	r := &Report{
		Stream:        stream,
		Nodes:         len(c.nodes),
		Router:        c.router.Name(),
		Placement:     c.placement.Name(),
		N:             c.recorder.Arrivals(),
		Offered:       c.recorder.Arrivals() + c.recorder.Rejections(),
		Rejected:      c.recorder.Rejections(),
		Completions:   c.recorder.Completions(),
		Makespan:      c.recorder.Makespan(),
		Throughput:    c.recorder.Throughput(),
		Latency:       c.recorder.LatencySummary(),
		SLO:           c.cfg.SLO,
		SLOAttainment: c.recorder.SLOAttainment(c.cfg.SLO),
		Routed:        append([]int64(nil), c.routed...),
		PerNode:       perNode,
	}
	if r.Offered > 0 {
		r.RejectionRate = float64(r.Rejected) / float64(r.Offered)
	}
	if c.cfg.Percentiles == core.PercentilesSketch {
		// Demonstrate the sketch's merge property where it matters: the
		// fleet percentiles come from folding the per-node sketches
		// together — no per-node sample slices exist, nothing re-sorts —
		// and the merge is lossless, so this equals the fleet recorder's
		// own sketch bucket for bucket.
		merged := stats.NewSketch()
		for _, rep := range perNode {
			merged.Merge(rep.LatencySketch)
		}
		r.Latency = merged.Summary()
		r.SLOAttainment = merged.Attainment(c.cfg.SLO.Seconds())
		r.LatencySketch = merged
	}
	if ws := c.recorder.Windows(); len(ws) > 0 {
		r.Windows = append([]metrics.Window(nil), ws...)
	}
	for _, rep := range perNode {
		r.Switches += rep.Switches
		r.SSDLoads += rep.SSDLoads
		r.HostHits += rep.HostHits
		r.Evictions += rep.Evictions
		r.Dropped += rep.Dropped
	}
	r.ScaleUps, r.ScaleDowns = c.scaleUps, c.scaleDowns
	if len(c.drainRecords) > 0 {
		r.TimeToDrain = append([]DrainRecord(nil), c.drainRecords...)
	}
	if cs := c.chaos; cs != nil {
		r.Faults = cs.crashes + cs.drains + cs.recoveries + cs.slows + cs.jitters + cs.stalls
		r.Crashes, r.Drains, r.Recoveries = cs.crashes, cs.drains, cs.recoveries
		r.Slows, r.Jitters, r.Stalls = cs.slows, cs.jitters, cs.stalls
		r.LostLeases = cs.lostLeases
		r.Redelivered = cs.redelivered
		r.RedeliveredRejected = cs.redeliveredRejected
		r.PendingPeak = cs.pendingPeak
		r.Bounced = cs.bounced
		r.DupAcks = cs.dupAcks
		if cs.failoverN > 0 {
			r.FailoverMean = cs.failoverSum / time.Duration(cs.failoverN)
			r.FailoverMax = cs.failoverMax
		}
		r.HedgesFired = cs.hedgesFired
		r.HedgeWins = cs.hedgeWins
		r.HedgeWasted = cs.hedgeWasted
		r.HedgeRejected = cs.hedgeRejected
		r.HedgeRetries = cs.hedgeRetries
		r.HedgePromoted = cs.hedgePromoted
		r.HedgesVoided = cs.hedgesVoided
	}
	if h := c.health; h != nil {
		r.BreakerTrips = h.trips
		r.BreakerReinstates = h.reinstates
		r.ProbesSent = h.probesSent
		r.BreakerBypasses = h.bypasses
		r.HealthScores = append([]float64(nil), h.score...)
	}
	if c.chaos != nil || c.cfg.Autoscaler != nil {
		r.FinalStates = make([]core.NodeState, len(c.nodes))
		for i, n := range c.nodes {
			r.FinalStates[i] = n.sys.State()
		}
	}
	var total, max int64
	for _, n := range r.Routed {
		total += n
		if n > max {
			max = n
		}
	}
	if total > 0 {
		r.Imbalance = float64(max) * float64(len(c.nodes)) / float64(total)
	}
	return r
}
