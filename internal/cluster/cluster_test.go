package cluster

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/coe"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/workload"
)

var testArchs = []model.Architecture{model.ResNet101, model.YOLOv5m, model.YOLOv5l}

var perfCache = map[string]model.PerfMatrix{}

func perfFor(t testing.TB, dev *hw.Device) model.PerfMatrix {
	t.Helper()
	if pm, ok := perfCache[dev.Name]; ok {
		return pm
	}
	pm, err := profiler.Matrix(dev, testArchs)
	if err != nil {
		t.Fatal(err)
	}
	perfCache[dev.Name] = pm
	return pm
}

var boardCache = map[string]*workload.Board{}

func boardFor(t testing.TB, spec workload.BoardSpec) *workload.Board {
	t.Helper()
	if b, ok := boardCache[spec.Name]; ok {
		return b
	}
	b, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	boardCache[spec.Name] = b
	return b
}

// nodeConfig assembles one CoServe-casual node config on the device.
func nodeConfig(t testing.TB, dev *hw.Device) core.Config {
	t.Helper()
	pm := perfFor(t, dev)
	g, c := core.DefaultExecutors(dev)
	return core.Config{
		Device: dev, Variant: core.CoServe,
		GPUExecutors: g, CPUExecutors: c,
		Alloc: core.CasualAllocation(dev, pm, g, c), Perf: pm,
	}
}

func poissonFor(t testing.TB, board *workload.Board, rate float64, n int, seed int64) workload.Source {
	t.Helper()
	src, err := workload.Poisson{Name: "poisson", Board: board, Rate: rate, N: n, Seed: seed}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func buildCluster(t testing.TB, cfg Config, m *coe.Model) *Cluster {
	t.Helper()
	c, err := New(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSingleNodeMatchesSystem is the env-ownership refactor's contract:
// a one-node cluster under the default router and placement serves a
// stream through exactly the same data-plane path as a standalone
// System, so the node's report equals the System's report field for
// field (only the wall-clock scheduling-cost average, a real-time
// measurement, is exempt).
func TestSingleNodeMatchesSystem(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	cfg := nodeConfig(t, hw.NUMADevice())
	cfg.SLO = 500 * time.Millisecond

	sys, err := core.NewSystem(cfg, board.Model)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Serve(poissonFor(t, board, 50, 300, 7))
	if err != nil {
		t.Fatal(err)
	}

	cl := buildCluster(t, Config{Nodes: Uniform(1, cfg), SLO: cfg.SLO}, board.Model)
	rep, err := cl.Serve(poissonFor(t, board, 50, 300, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerNode) != 1 {
		t.Fatalf("PerNode = %d reports, want 1", len(rep.PerNode))
	}
	got := rep.PerNode[0]

	// Executor/pool names carry the node prefix; strip it for the
	// comparison — everything else must match exactly.
	gotCopy := *got
	gotCopy.PerExecutor = append([]core.ExecutorStats(nil), got.PerExecutor...)
	for i := range gotCopy.PerExecutor {
		gotCopy.PerExecutor[i].Name = want.PerExecutor[i].Name
	}
	gotCopy.PerPool = append([]core.PoolStats(nil), got.PerPool...)
	for i := range gotCopy.PerPool {
		gotCopy.PerPool[i].Name = want.PerPool[i].Name
	}
	wantCopy := *want
	gotCopy.SchedPerOp, wantCopy.SchedPerOp = 0, 0
	if !reflect.DeepEqual(&gotCopy, &wantCopy) {
		t.Errorf("one-node cluster report differs from standalone System report:\ncluster: %+v\nsystem:  %+v", gotCopy, wantCopy)
	}

	// Fleet aggregates agree with the node's view.
	if rep.N != want.N || rep.Completions != want.Completions ||
		rep.Switches != want.Switches || rep.Latency != want.Latency {
		t.Errorf("fleet aggregate differs from single node: %+v vs %+v", rep, want)
	}
	if rep.Imbalance != 1 {
		t.Errorf("one-node imbalance = %v, want 1", rep.Imbalance)
	}
}

// TestClusterDeterministic pins the shared-env guarantee: two identical
// multi-node clusters serve identical streams identically, node by
// node.
func TestClusterDeterministic(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	run := func() *Report {
		cfg := Config{
			Nodes:     Uniform(3, nodeConfig(t, hw.NUMADevice())),
			Router:    Affinity{},
			Placement: UsageProportional{},
			SLO:       time.Second,
		}
		rep, err := buildCluster(t, cfg, board.Model).Serve(poissonFor(t, board, 80, 400, 11))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Throughput != b.Throughput || a.Switches != b.Switches ||
		a.Makespan != b.Makespan || !reflect.DeepEqual(a.Routed, b.Routed) {
		t.Errorf("nondeterministic cluster serve:\n%+v\nvs\n%+v", a, b)
	}
	for i := range a.PerNode {
		if a.PerNode[i].N != b.PerNode[i].N || a.PerNode[i].Switches != b.PerNode[i].Switches {
			t.Errorf("node %d diverged across identical runs", i)
		}
	}
}

// TestClusterScalesThroughput: four nodes under an overloading stream
// must complete it materially faster than one node.
func TestClusterScalesThroughput(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	serve := func(nodes int) *Report {
		cfg := Config{Nodes: Uniform(nodes, nodeConfig(t, hw.NUMADevice()))}
		rep, err := buildCluster(t, cfg, board.Model).Serve(poissonFor(t, board, 100, 400, 3))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	one, four := serve(1), serve(4)
	if four.Throughput < 2*one.Throughput {
		t.Errorf("4-node throughput %.1f not at least 2x 1-node %.1f", four.Throughput, one.Throughput)
	}
	if four.Completions != one.Completions {
		t.Errorf("completions differ: %d vs %d", four.Completions, one.Completions)
	}
}

// TestClusterWarmRestart: consecutive streams on one cluster reuse the
// nodes' pools, paying fewer switches the second time.
func TestClusterWarmRestart(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	cl := buildCluster(t, Config{
		Nodes:  Uniform(2, nodeConfig(t, hw.NUMADevice())),
		Router: Affinity{},
	}, board.Model)
	r1, err := cl.Serve(poissonFor(t, board, 60, 300, 5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cl.Serve(poissonFor(t, board, 60, 300, 5))
	if err != nil {
		t.Fatal(err)
	}
	if cl.Runs() != 2 {
		t.Errorf("Runs = %d, want 2", cl.Runs())
	}
	if r2.Switches >= r1.Switches {
		t.Errorf("warm second run switched %d experts, not fewer than the first run's %d", r2.Switches, r1.Switches)
	}
}

// TestAffinityPrefersResidency: the affinity router must route a
// request to the node already holding its expert even when that node
// has the longer queue, and fall back to least-loaded for absent
// experts.
func TestAffinityPrefersResidency(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	cfg := Config{
		Nodes:     Uniform(2, nodeConfig(t, hw.NUMADevice())),
		Placement: Partition{},
	}
	cl := buildCluster(t, cfg, board.Model)
	nodes := cl.Nodes()

	// Find an expert resident on exactly one node (Partition guarantees
	// single homes for everything it placed).
	var expert coe.ExpertID = -1
	home := -1
	for _, e := range board.Model.Experts() {
		on0, on1 := nodes[0].Resident(e.ID), nodes[1].Resident(e.ID)
		if on0 != on1 {
			expert = e.ID
			home = 0
			if on1 {
				home = 1
			}
			break
		}
	}
	if expert < 0 {
		t.Fatal("partition left no single-homed expert")
	}
	r := coe.NewRequest(0, 0, []coe.ExpertID{expert})
	if got := (Affinity{}).Pick(0, nodes, r); got != home {
		t.Errorf("affinity picked node %d, want resident home %d", got, home)
	}

	// An expert resident nowhere falls back to least-loaded (node 0 on
	// an idle fleet).
	var absent coe.ExpertID = -1
	for _, e := range board.Model.Experts() {
		if !nodes[0].Resident(e.ID) && !nodes[1].Resident(e.ID) {
			absent = e.ID
			break
		}
	}
	if absent >= 0 {
		r := coe.NewRequest(1, 0, []coe.ExpertID{absent})
		if got := (Affinity{}).Pick(0, nodes, r); got != 0 {
			t.Errorf("affinity fallback picked node %d, want 0", got)
		}
	}
}

// TestLeastLoadedPicksSmallestQueue exercises the router against
// synthetic queue depths by dispatching onto a real node.
func TestLeastLoadedPicksSmallestQueue(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	cl := buildCluster(t, Config{Nodes: Uniform(3, nodeConfig(t, hw.NUMADevice()))}, board.Model)
	nodes := cl.Nodes()
	r := coe.NewRequest(0, 0, []coe.ExpertID{0})
	if got := (LeastLoaded{}).Pick(0, nodes, r); got != 0 {
		t.Errorf("idle fleet: least-loaded picked %d, want 0 (lowest index)", got)
	}
}

// TestPartitionDisjointCoverage: the partition plan gives every expert
// at most one home and covers more distinct experts than one node's
// pools alone.
func TestPartitionDisjointCoverage(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	nc := nodeConfig(t, hw.NUMADevice())
	caps := []NodeCapacity{
		{ID: "node0", ExpertBytes: nc.Alloc.GPUExpertBytes + nc.Alloc.CPUExpertBytes},
		{ID: "node1", ExpertBytes: nc.Alloc.GPUExpertBytes + nc.Alloc.CPUExpertBytes},
	}
	plan, err := (Partition{}).Plan(board.Model, caps)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[coe.ExpertID]int{}
	for ni, list := range plan {
		for _, id := range list {
			if prev, dup := seen[id]; dup {
				t.Fatalf("expert %d partitioned onto nodes %d and %d", id, prev, ni)
			}
			seen[id] = ni
		}
	}
	if len(plan[0]) == 0 || len(plan[1]) == 0 {
		t.Fatalf("partition left a node empty: %d/%d", len(plan[0]), len(plan[1]))
	}
	if len(seen) <= len(plan[0]) {
		t.Errorf("partition coverage %d not beyond one node's %d", len(seen), len(plan[0]))
	}
}

// TestUsagePlacementReplicatesHotExperts: the §4.4-generalized plan
// gives the hottest expert strictly more instances than a tail expert,
// and never two instances on one node.
func TestUsagePlacementReplicatesHotExperts(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	nc := nodeConfig(t, hw.NUMADevice())
	caps := make([]NodeCapacity, 4)
	for i := range caps {
		caps[i] = NodeCapacity{ID: "n", ExpertBytes: nc.Alloc.GPUExpertBytes + nc.Alloc.CPUExpertBytes}
	}
	plan, err := (UsageProportional{}).Plan(board.Model, caps)
	if err != nil {
		t.Fatal(err)
	}
	instances := map[coe.ExpertID]int{}
	for ni, list := range plan {
		perNode := map[coe.ExpertID]bool{}
		for _, id := range list {
			if perNode[id] {
				t.Fatalf("expert %d twice on node %d", id, ni)
			}
			perNode[id] = true
			instances[id]++
		}
	}
	byUsage := board.Model.ExpertsByUsage()
	hottest := byUsage[0]
	coldest := byUsage[len(byUsage)-1]
	if instances[hottest.ID] <= 1 {
		t.Errorf("hottest expert (p=%.4f) got %d instances, want replication", hottest.UsageProb, instances[hottest.ID])
	}
	if instances[hottest.ID] <= instances[coldest.ID] {
		t.Errorf("hottest expert %d instances not above coldest's %d", instances[hottest.ID], instances[coldest.ID])
	}
}

// TestHeterogeneousFleet: a NUMA node and a UMA node serve one stream
// together — per-node device profiles are genuinely per node.
func TestHeterogeneousFleet(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	cfg := Config{
		Nodes:  []core.Config{nodeConfig(t, hw.NUMADevice()), nodeConfig(t, hw.UMADevice())},
		Router: Predict{},
	}
	rep, err := buildCluster(t, cfg, board.Model).Serve(poissonFor(t, board, 40, 300, 13))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions != 300 {
		t.Fatalf("completions = %d, want 300", rep.Completions)
	}
	if rep.PerNode[0].Device == rep.PerNode[1].Device {
		t.Errorf("both nodes report device %q", rep.PerNode[0].Device)
	}
	if rep.Routed[0]+rep.Routed[1] != 300 {
		t.Errorf("routed %v does not cover the stream", rep.Routed)
	}
}

// TestClusterRefusesUnboundedAndForeignStreams mirrors the single-node
// Serve guards.
func TestClusterRefusesUnboundedAndForeignStreams(t *testing.T) {
	a := boardFor(t, workload.BoardA())
	b := boardFor(t, workload.BoardB())
	cl := buildCluster(t, Config{Nodes: Uniform(1, nodeConfig(t, hw.NUMADevice()))}, a.Model)
	steady, err := workload.Steady{Name: "s", Board: a, Rate: 10, Seed: 1}.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Serve(steady); err == nil {
		t.Error("cluster served an unbounded source")
	}
	if _, err := cl.Serve(poissonFor(t, b, 10, 10, 1)); err == nil {
		t.Error("cluster served a stream from a foreign model")
	}
}

// TestJoinedSystemRefusesServe: a system built into an external env
// must not run its own event loop.
func TestJoinedSystemRefusesServe(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	env := sim.NewEnv()
	sys, err := core.NewSystemInEnv(nodeConfig(t, hw.NUMADevice()), board.Model, env)
	if err != nil {
		t.Fatal(err)
	}
	if sys.OwnsEnv() {
		t.Error("joined system claims to own its env")
	}
	if _, err := sys.Serve(poissonFor(t, board, 10, 10, 1)); err == nil {
		t.Error("joined system accepted Serve")
	}
	// And an owning system refuses JoinStream.
	own, err := core.NewSystem(nodeConfig(t, hw.NUMADevice()), board.Model)
	if err != nil {
		t.Fatal(err)
	}
	if err := own.JoinStream("x", nil); err == nil {
		t.Error("owning system accepted JoinStream")
	}
}
