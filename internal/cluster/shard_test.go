package cluster

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testInterconnect is the hop model the sharded tests run under: a
// split fleet with the first two nodes on the front end's board and a
// slower class beyond it, so per-node latencies genuinely differ.
var testInterconnect = Interconnect{
	Dispatch:   200 * time.Microsecond,
	IntraBoard: 100 * time.Microsecond,
	InterNode:  600 * time.Microsecond,
	BoardSize:  2,
}

// shardConfig builds a 4-node sharded fleet over the hop model with
// the given lifecycle knobs.
func shardConfig(t testing.TB, shards int, plan *sim.FaultPlan, health HealthConfig, hedge HedgeConfig) Config {
	t.Helper()
	return Config{
		Nodes:        Uniform(4, nodeConfig(t, hw.NUMADevice())),
		Router:       Affinity{},
		Placement:    Partition{},
		SLO:          3 * time.Second,
		Faults:       plan,
		Health:       health,
		Hedge:        hedge,
		Interconnect: testInterconnect,
		Shards:       shards,
	}
}

// serveSharded runs one stream over a sharded fleet and returns the
// normalized report.
func serveSharded(t *testing.T, cfg Config, rate float64, n int, seed int64) *Report {
	t.Helper()
	board := boardFor(t, workload.BoardA())
	cl := buildCluster(t, cfg, board.Model)
	rep, err := cl.Serve(poissonFor(t, board, rate, n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return normalize(rep)
}

// shardCounts are the worker counts every determinism test sweeps:
// sequential, two, three, and whatever the host offers.
func shardCounts() []int {
	return []int{1, 2, 3, runtime.GOMAXPROCS(0)}
}

// TestShardedFleetDeterministicAcrossShardCounts pins the kernel's
// core guarantee on a fault-free fleet: the full report — fleet
// percentiles, per-node reports, imbalance — is identical at every
// shard count, sequential included.
func TestShardedFleetDeterministicAcrossShardCounts(t *testing.T) {
	want := serveSharded(t, shardConfig(t, 1, nil, HealthConfig{}, HedgeConfig{}), 40, 200, 13)
	if want.Completions == 0 || want.N == 0 {
		t.Fatalf("reference run served nothing: %d arrivals, %d completions", want.N, want.Completions)
	}
	for _, shards := range shardCounts()[1:] {
		got := serveSharded(t, shardConfig(t, shards, nil, HealthConfig{}, HedgeConfig{}), 40, 200, 13)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shards=%d diverged from shards=1:\n%+v\nvs\n%+v", shards, want, got)
		}
	}
}

// TestShardedChaosDeterministicAcrossShardCounts sweeps the crash/
// drain/recover machinery — lease voiding, redelivery racing
// completion folds on the wire, pending-queue flushes — across shard
// counts.
func TestShardedChaosDeterministicAcrossShardCounts(t *testing.T) {
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: time.Second, Node: 1, Kind: sim.FaultCrash},
		{At: 2500 * time.Millisecond, Node: 1, Kind: sim.FaultRecover},
		{At: 3 * time.Second, Node: 2, Kind: sim.FaultDrain},
		{At: 4500 * time.Millisecond, Node: 2, Kind: sim.FaultRecover},
	}}
	want := serveSharded(t, shardConfig(t, 1, plan, HealthConfig{}, HedgeConfig{}), 30, 150, 9)
	if want.LostLeases == 0 {
		t.Fatal("crash voided no leases; the test exercises nothing")
	}
	for _, shards := range shardCounts()[1:] {
		got := serveSharded(t, shardConfig(t, shards, plan, HealthConfig{}, HedgeConfig{}), 30, 150, 9)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shards=%d diverged from shards=1:\n%+v\nvs\n%+v", shards, want, got)
		}
	}
}

// TestShardedGrayfailDeterministicAcrossShardCounts sweeps the full
// gray stack — slow/jitter/stall injection, breaker, hedged offers in
// flight — across shard counts.
func TestShardedGrayfailDeterministicAcrossShardCounts(t *testing.T) {
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: time.Second, Node: 1, Kind: sim.FaultSlow, Factor: 150},
		{At: 1500 * time.Millisecond, Node: 2, Kind: sim.FaultJitter, Factor: 400},
		{At: 2 * time.Second, Node: 3, Kind: sim.FaultStall, For: 4 * time.Second},
		{At: 9 * time.Second, Node: 1, Kind: sim.FaultRecover},
		{At: 9 * time.Second, Node: 2, Kind: sim.FaultRecover},
	}}
	want := serveSharded(t, shardConfig(t, 1, plan, grayHealth, HedgeConfig{After: time.Second}), 8, 120, 20260807)
	for _, shards := range shardCounts()[1:] {
		got := serveSharded(t, shardConfig(t, shards, plan, grayHealth, HedgeConfig{After: time.Second}), 8, 120, 20260807)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shards=%d diverged from shards=1:\n%+v\nvs\n%+v", shards, want, got)
		}
	}
}

// TestShardedExactlyOnceUnderChaos asserts the accounting contract on
// the sharded kernel directly: every arrival resolves exactly once
// even with crashes racing completion acks across the interconnect,
// and redelivery covers every voided lease.
func TestShardedExactlyOnceUnderChaos(t *testing.T) {
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: time.Second, Node: 1, Kind: sim.FaultCrash},
		{At: 2 * time.Second, Node: 1, Kind: sim.FaultRecover},
		{At: 3 * time.Second, Node: 0, Kind: sim.FaultCrash},
		{At: 4 * time.Second, Node: 0, Kind: sim.FaultRecover},
	}}
	rep := serveSharded(t, shardConfig(t, runtime.GOMAXPROCS(0), plan, HealthConfig{}, HedgeConfig{}), 30, 150, 11)
	if rep.N != 150 {
		t.Fatalf("admitted %d of 150", rep.N)
	}
	if rep.Completions+rep.RedeliveredRejected != rep.N {
		t.Errorf("exactly-once broken: %d completions + %d rejected != %d admitted",
			rep.Completions, rep.RedeliveredRejected, rep.N)
	}
	if rep.LostLeases == 0 {
		t.Fatal("two crashes voided no leases; the test exercises nothing")
	}
	if rep.Redelivered < rep.LostLeases-rep.RedeliveredRejected {
		t.Errorf("redelivered %d of %d voided leases (%d terminally rejected)",
			rep.Redelivered, rep.LostLeases, rep.RedeliveredRejected)
	}
}

// TestShardedReopenDeterministic pins warm restarts on the sharded
// kernel: consecutive Serve calls reopen every partition (worker
// clocks lag the coordinator between streams), hedge timers and leases
// from the first stream never leak into the second, and both streams
// stay shard-count-invariant.
func TestShardedReopenDeterministic(t *testing.T) {
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: time.Second, Node: 1, Kind: sim.FaultCrash},
		{At: 2 * time.Second, Node: 1, Kind: sim.FaultRecover},
	}}
	board := boardFor(t, workload.BoardA())
	run := func(shards int) []*Report {
		cl := buildCluster(t, shardConfig(t, shards, plan, grayHealth, HedgeConfig{After: time.Second}), board.Model)
		var reps []*Report
		for round := 0; round < 2; round++ {
			rep, err := cl.Serve(poissonFor(t, board, 25, 100, int64(17+round)))
			if err != nil {
				t.Fatalf("shards=%d round %d: %v", shards, round, err)
			}
			if rep.Completions+rep.RedeliveredRejected != rep.N {
				t.Fatalf("shards=%d round %d: %d completions + %d rejected != %d admitted",
					shards, round, rep.Completions, rep.RedeliveredRejected, rep.N)
			}
			reps = append(reps, normalize(rep))
		}
		return reps
	}
	want := run(1)
	for _, shards := range []int{3, runtime.GOMAXPROCS(0)} {
		got := run(shards)
		for round := range want {
			if !reflect.DeepEqual(want[round], got[round]) {
				t.Errorf("shards=%d round %d diverged:\n%+v\nvs\n%+v", shards, round, want[round], got[round])
			}
		}
	}
}

// TestShardedZeroInterconnectUnsharded pins the engagement seam: a
// zero-valued Interconnect keeps the classic single-environment
// cluster regardless of Shards, byte-identical to a config that never
// mentions either knob.
func TestShardedZeroInterconnectUnsharded(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	base := Config{
		Nodes:     Uniform(3, nodeConfig(t, hw.NUMADevice())),
		Router:    Affinity{},
		Placement: UsageProportional{},
		SLO:       time.Second,
	}
	plain := buildCluster(t, base, board.Model)
	if _, ok := plain.Sharded(); ok {
		t.Fatal("latency-free cluster reports a sharded kernel")
	}
	shardy := base
	shardy.Shards = 4
	cl := buildCluster(t, shardy, board.Model)
	if _, ok := cl.Sharded(); ok {
		t.Fatal("Shards without an Interconnect must not engage the sharded kernel")
	}
	a, err := plain.Serve(poissonFor(t, board, 40, 200, 13))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.Serve(poissonFor(t, board, 40, 200, 13))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(a), normalize(b)) {
		t.Error("Shards knob changed a latency-free serve")
	}
}

// TestShardedConfigValidation pins the constructor's contract checks.
func TestShardedConfigValidation(t *testing.T) {
	board := boardFor(t, workload.BoardA())
	bad := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative shards", func(c *Config) { c.Shards = -1 }},
		{"negative latency", func(c *Config) { c.Interconnect = Interconnect{Dispatch: -time.Millisecond} }},
		{"zero lookahead", func(c *Config) {
			// Enabled, but the front end's board reaches its nodes for free.
			c.Interconnect = Interconnect{InterNode: time.Millisecond, BoardSize: 2}
		}},
	}
	for _, tc := range bad {
		cfg := shardConfig(t, 1, nil, HealthConfig{}, HedgeConfig{})
		tc.mut(&cfg)
		if _, err := New(cfg, board.Model); err == nil {
			t.Errorf("%s: New accepted the config", tc.name)
		}
	}
	cl := buildCluster(t, shardConfig(t, 0, nil, HealthConfig{}, HedgeConfig{}), board.Model)
	if w, ok := cl.Sharded(); !ok || w != runtime.GOMAXPROCS(0) {
		t.Errorf("Shards=0 => workers %d, sharded %v; want GOMAXPROCS(%d), true", w, ok, runtime.GOMAXPROCS(0))
	}
}

// TestShardedLatencyShowsUp sanity-checks that the hop model actually
// costs something: the same stream served with a 10x slower
// interconnect completes with a strictly higher mean latency.
func TestShardedLatencyShowsUp(t *testing.T) {
	fast := serveSharded(t, shardConfig(t, 2, nil, HealthConfig{}, HedgeConfig{}), 40, 200, 13)
	slowIC := shardConfig(t, 2, nil, HealthConfig{}, HedgeConfig{})
	slowIC.Interconnect = Interconnect{
		Dispatch:   2 * time.Millisecond,
		IntraBoard: time.Millisecond,
		InterNode:  6 * time.Millisecond,
		BoardSize:  2,
	}
	slow := serveSharded(t, slowIC, 40, 200, 13)
	if slow.Latency.Mean <= fast.Latency.Mean {
		t.Errorf("10x interconnect did not raise mean latency: fast %v, slow %v",
			time.Duration(fast.Latency.Mean*float64(time.Second)),
			time.Duration(slow.Latency.Mean*float64(time.Second)))
	}
}
