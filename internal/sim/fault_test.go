package sim

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestFaultPlanValidateSortsAndChecksTransitions(t *testing.T) {
	// Out-of-declaration-order events sort by offset; the sorted plan is
	// a legal lifecycle for both nodes.
	p := &FaultPlan{Events: []FaultEvent{
		{At: 3 * time.Second, Node: 0, Kind: FaultRecover},
		{At: 1 * time.Second, Node: 0, Kind: FaultCrash},
		{At: 2 * time.Second, Node: 1, Kind: FaultDrain},
		{At: 4 * time.Second, Node: 1, Kind: FaultRecover},
	}}
	if err := p.Validate(2); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	for i := 1; i < len(p.Events); i++ {
		if p.Events[i].At < p.Events[i-1].At {
			t.Fatalf("plan not sorted after Validate: %v", p.Events)
		}
	}

	bad := []struct {
		name string
		plan FaultPlan
		want string
	}{
		{"node out of range", FaultPlan{Events: []FaultEvent{{At: 1, Node: 2, Kind: FaultCrash}}}, "outside fleet"},
		{"negative offset", FaultPlan{Events: []FaultEvent{{At: -1, Node: 0, Kind: FaultCrash}}}, "negative offset"},
		{"double crash", FaultPlan{Events: []FaultEvent{
			{At: 1, Node: 0, Kind: FaultCrash}, {At: 2, Node: 0, Kind: FaultCrash}}}, "already down"},
		{"drain while down", FaultPlan{Events: []FaultEvent{
			{At: 1, Node: 0, Kind: FaultCrash}, {At: 2, Node: 0, Kind: FaultDrain}}}, "not up"},
		{"recover while up", FaultPlan{Events: []FaultEvent{{At: 1, Node: 0, Kind: FaultRecover}}}, "already up"},
		{"unknown kind", FaultPlan{Events: []FaultEvent{{At: 1, Node: 0, Kind: FaultKind(9)}}}, "unknown kind"},
	}
	for _, tc := range bad {
		err := tc.plan.Validate(2)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	var nilPlan *FaultPlan
	if !nilPlan.Empty() || nilPlan.Validate(4) != nil {
		t.Error("nil plan must be empty and valid")
	}
}

// TestFaultPlanEqualTimestampStableOrder pins the tie-break contract:
// events at the same offset fire in the order they appear in Events
// before the sort. The schedule below interleaves three nodes at one
// instant with unequal events around them; after Validate (which
// sorts), the equal-instant block must hold its declaration order
// exactly — a regression to an unstable sort would shuffle it.
func TestFaultPlanEqualTimestampStableOrder(t *testing.T) {
	const tie = 2 * time.Second
	p := &FaultPlan{Events: []FaultEvent{
		{At: 5 * time.Second, Node: 0, Kind: FaultRecover},
		{At: tie, Node: 2, Kind: FaultCrash},
		{At: tie, Node: 0, Kind: FaultCrash},
		{At: tie, Node: 1, Kind: FaultDrain},
		{At: 1 * time.Second, Node: 3, Kind: FaultSlow, Factor: 4},
		{At: tie, Node: 3, Kind: FaultRecover},
	}}
	if err := p.Validate(4); err != nil {
		t.Fatal(err)
	}
	wantNodes := []int{3, 2, 0, 1, 3, 0} // slow@1s, then the tie block in declaration order, then recover@5s
	for i, ev := range p.Events {
		if ev.Node != wantNodes[i] {
			t.Fatalf("event %d is node %d, want %d (order after sort: %v)", i, ev.Node, wantNodes[i], p.Events)
		}
	}
	// Validate re-sorts; a second pass must be a fixed point, not a
	// reshuffle.
	before := append([]FaultEvent(nil), p.Events...)
	if err := p.Validate(4); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, p.Events) {
		t.Fatalf("second Validate reordered the plan: %v -> %v", before, p.Events)
	}
}

// TestFaultPlanMixedScriptedGeneratedStableOrder covers the third plan
// shape the sortEvents contract names: a generated schedule appended
// onto a scripted one. A scripted event placed at exactly a generated
// event's offset must still fire before it (the scripted block precedes
// the generated block in Events), and the merged plan must validate.
func TestFaultPlanMixedScriptedGeneratedStableOrder(t *testing.T) {
	gen, err := GenerateFaultPlan(4, 2*time.Second, 500*time.Millisecond, 10*time.Second, 42)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Empty() {
		t.Fatal("generator produced no events")
	}
	tie := gen.Events[len(gen.Events)/2].At
	// Scripted events on nodes outside the generated fleet, one of them
	// colliding exactly with a generated offset.
	scripted := []FaultEvent{
		{At: tie, Node: 4, Kind: FaultDrain},
		{At: tie, Node: 5, Kind: FaultSlow, Factor: 8},
	}
	mixed := &FaultPlan{Events: append(append([]FaultEvent(nil), scripted...), gen.Events...)}
	if err := mixed.Validate(6); err != nil {
		t.Fatalf("mixed plan invalid: %v", err)
	}
	var atTie []FaultEvent
	for _, ev := range mixed.Events {
		if ev.At == tie {
			atTie = append(atTie, ev)
		}
	}
	if len(atTie) < 3 {
		t.Fatalf("expected scripted pair plus >= 1 generated event at %v, got %v", tie, atTie)
	}
	if atTie[0].Node != 4 || atTie[1].Node != 5 {
		t.Fatalf("scripted events did not keep their slot ahead of the generated ones: %v", atTie)
	}
	for _, ev := range atTie[2:] {
		if ev.Node >= 4 {
			t.Fatalf("scripted event sorted after generated at %v: %v", tie, atTie)
		}
	}
}

// TestFaultPlanValidateGrayKinds checks the gray-fault arcs of the
// lifecycle machine: parameter validation, recover legality on a
// degraded-but-Up node, and rejection of gray events on Down nodes.
func TestFaultPlanValidateGrayKinds(t *testing.T) {
	good := []struct {
		name string
		plan FaultPlan
	}{
		{"slow then recover on up node", FaultPlan{Events: []FaultEvent{
			{At: 1, Node: 0, Kind: FaultSlow, Factor: 4},
			{At: 2, Node: 0, Kind: FaultRecover}}}},
		{"jitter replaced by slow then recovered", FaultPlan{Events: []FaultEvent{
			{At: 1, Node: 0, Kind: FaultJitter, Factor: 8},
			{At: 2, Node: 0, Kind: FaultSlow, Factor: 2},
			{At: 3, Node: 0, Kind: FaultRecover}}}},
		{"stall is self-clearing, no recover needed", FaultPlan{Events: []FaultEvent{
			{At: 1, Node: 0, Kind: FaultStall, For: time.Second},
			{At: 5, Node: 0, Kind: FaultStall, For: time.Second}}}},
		{"gray on draining node", FaultPlan{Events: []FaultEvent{
			{At: 1, Node: 0, Kind: FaultDrain},
			{At: 2, Node: 0, Kind: FaultSlow, Factor: 3},
			{At: 3, Node: 0, Kind: FaultRecover}}}},
	}
	for _, tc := range good {
		if err := tc.plan.Validate(1); err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
	}

	bad := []struct {
		name string
		plan FaultPlan
		want string
	}{
		{"slow factor 1", FaultPlan{Events: []FaultEvent{
			{At: 1, Node: 0, Kind: FaultSlow, Factor: 1}}}, "Factor > 1"},
		{"jitter factor 0", FaultPlan{Events: []FaultEvent{
			{At: 1, Node: 0, Kind: FaultJitter}}}, "Factor > 1"},
		{"stall without window", FaultPlan{Events: []FaultEvent{
			{At: 1, Node: 0, Kind: FaultStall}}}, "For > 0"},
		{"slow on crashed node", FaultPlan{Events: []FaultEvent{
			{At: 1, Node: 0, Kind: FaultCrash},
			{At: 2, Node: 0, Kind: FaultSlow, Factor: 4}}}, "down"},
		{"stall on crashed node", FaultPlan{Events: []FaultEvent{
			{At: 1, Node: 0, Kind: FaultCrash},
			{At: 2, Node: 0, Kind: FaultStall, For: time.Second}}}, "down"},
		// A crash wipes degradation with the rest of the node's state, so
		// a post-restart recover has nothing to clear.
		{"recover after crash cleared degradation", FaultPlan{Events: []FaultEvent{
			{At: 1, Node: 0, Kind: FaultSlow, Factor: 4},
			{At: 2, Node: 0, Kind: FaultCrash},
			{At: 3, Node: 0, Kind: FaultRecover},
			{At: 4, Node: 0, Kind: FaultRecover}}}, "already up"},
	}
	for _, tc := range bad {
		err := tc.plan.Validate(1)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestGenerateFaultPlanDeterministicAndRecoversEveryCrash(t *testing.T) {
	gen := func() *FaultPlan {
		p, err := GenerateFaultPlan(4, 2*time.Second, 500*time.Millisecond, 10*time.Second, 42)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := gen(), gen()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same arguments generated different plans")
	}
	if a.Empty() {
		t.Fatal("10s horizon at 2s MTBF over 4 nodes generated no faults")
	}
	if err := a.Validate(4); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	// Every crash has its matching recover — no node is left down
	// forever, so no generated schedule strands voided work.
	crashes := make(map[int]int)
	for _, ev := range a.Events {
		switch ev.Kind {
		case FaultCrash:
			crashes[ev.Node]++
		case FaultRecover:
			crashes[ev.Node]--
		default:
			t.Fatalf("generated plan contains %v", ev.Kind)
		}
	}
	for node, n := range crashes {
		if n != 0 {
			t.Errorf("node %d: %d crash(es) without a recover", node, n)
		}
	}

	if _, err := GenerateFaultPlan(0, time.Second, time.Second, time.Second, 1); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := GenerateFaultPlan(1, 0, time.Second, time.Second, 1); err == nil {
		t.Error("zero mtbf accepted")
	}
}

func TestFaultPlanRunFiresAtOffsetsInPlanOrder(t *testing.T) {
	p := &FaultPlan{Events: []FaultEvent{
		{At: 10 * time.Millisecond, Node: 0, Kind: FaultCrash},
		{At: 30 * time.Millisecond, Node: 1, Kind: FaultDrain},
		{At: 30 * time.Millisecond, Node: 0, Kind: FaultRecover}, // same instant, declaration order
	}}
	if err := p.Validate(2); err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	type firing struct {
		at time.Duration
		ev FaultEvent
	}
	var got []firing
	env.Go("chaos", func(proc *Proc) {
		p.Run(proc, func(ev FaultEvent) {
			got = append(got, firing{proc.Now().Duration(), ev})
		})
	})
	env.Run()
	want := []firing{
		{10 * time.Millisecond, p.Events[0]},
		{30 * time.Millisecond, p.Events[1]},
		{30 * time.Millisecond, p.Events[2]},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("firings = %v, want %v", got, want)
	}

	// An empty plan's Run returns immediately without touching the clock.
	env2 := NewEnv()
	env2.Go("noop", func(proc *Proc) { (&FaultPlan{}).Run(proc, func(FaultEvent) { t.Error("empty plan fired") }) })
	if end := env2.Run(); end != 0 {
		t.Errorf("empty plan advanced the clock to %v", end)
	}
}
