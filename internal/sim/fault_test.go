package sim

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestFaultPlanValidateSortsAndChecksTransitions(t *testing.T) {
	// Out-of-declaration-order events sort by offset; the sorted plan is
	// a legal lifecycle for both nodes.
	p := &FaultPlan{Events: []FaultEvent{
		{At: 3 * time.Second, Node: 0, Kind: FaultRecover},
		{At: 1 * time.Second, Node: 0, Kind: FaultCrash},
		{At: 2 * time.Second, Node: 1, Kind: FaultDrain},
		{At: 4 * time.Second, Node: 1, Kind: FaultRecover},
	}}
	if err := p.Validate(2); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	for i := 1; i < len(p.Events); i++ {
		if p.Events[i].At < p.Events[i-1].At {
			t.Fatalf("plan not sorted after Validate: %v", p.Events)
		}
	}

	bad := []struct {
		name string
		plan FaultPlan
		want string
	}{
		{"node out of range", FaultPlan{Events: []FaultEvent{{At: 1, Node: 2, Kind: FaultCrash}}}, "outside fleet"},
		{"negative offset", FaultPlan{Events: []FaultEvent{{At: -1, Node: 0, Kind: FaultCrash}}}, "negative offset"},
		{"double crash", FaultPlan{Events: []FaultEvent{
			{At: 1, Node: 0, Kind: FaultCrash}, {At: 2, Node: 0, Kind: FaultCrash}}}, "already down"},
		{"drain while down", FaultPlan{Events: []FaultEvent{
			{At: 1, Node: 0, Kind: FaultCrash}, {At: 2, Node: 0, Kind: FaultDrain}}}, "not up"},
		{"recover while up", FaultPlan{Events: []FaultEvent{{At: 1, Node: 0, Kind: FaultRecover}}}, "already up"},
		{"unknown kind", FaultPlan{Events: []FaultEvent{{At: 1, Node: 0, Kind: FaultKind(9)}}}, "unknown kind"},
	}
	for _, tc := range bad {
		err := tc.plan.Validate(2)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	var nilPlan *FaultPlan
	if !nilPlan.Empty() || nilPlan.Validate(4) != nil {
		t.Error("nil plan must be empty and valid")
	}
}

func TestGenerateFaultPlanDeterministicAndRecoversEveryCrash(t *testing.T) {
	gen := func() *FaultPlan {
		p, err := GenerateFaultPlan(4, 2*time.Second, 500*time.Millisecond, 10*time.Second, 42)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := gen(), gen()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same arguments generated different plans")
	}
	if a.Empty() {
		t.Fatal("10s horizon at 2s MTBF over 4 nodes generated no faults")
	}
	if err := a.Validate(4); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	// Every crash has its matching recover — no node is left down
	// forever, so no generated schedule strands voided work.
	crashes := make(map[int]int)
	for _, ev := range a.Events {
		switch ev.Kind {
		case FaultCrash:
			crashes[ev.Node]++
		case FaultRecover:
			crashes[ev.Node]--
		default:
			t.Fatalf("generated plan contains %v", ev.Kind)
		}
	}
	for node, n := range crashes {
		if n != 0 {
			t.Errorf("node %d: %d crash(es) without a recover", node, n)
		}
	}

	if _, err := GenerateFaultPlan(0, time.Second, time.Second, time.Second, 1); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := GenerateFaultPlan(1, 0, time.Second, time.Second, 1); err == nil {
		t.Error("zero mtbf accepted")
	}
}

func TestFaultPlanRunFiresAtOffsetsInPlanOrder(t *testing.T) {
	p := &FaultPlan{Events: []FaultEvent{
		{At: 10 * time.Millisecond, Node: 0, Kind: FaultCrash},
		{At: 30 * time.Millisecond, Node: 1, Kind: FaultDrain},
		{At: 30 * time.Millisecond, Node: 0, Kind: FaultRecover}, // same instant, declaration order
	}}
	if err := p.Validate(2); err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	type firing struct {
		at time.Duration
		ev FaultEvent
	}
	var got []firing
	env.Go("chaos", func(proc *Proc) {
		p.Run(proc, func(ev FaultEvent) {
			got = append(got, firing{proc.Now().Duration(), ev})
		})
	})
	env.Run()
	want := []firing{
		{10 * time.Millisecond, p.Events[0]},
		{30 * time.Millisecond, p.Events[1]},
		{30 * time.Millisecond, p.Events[2]},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("firings = %v, want %v", got, want)
	}

	// An empty plan's Run returns immediately without touching the clock.
	env2 := NewEnv()
	env2.Go("noop", func(proc *Proc) { (&FaultPlan{}).Run(proc, func(FaultEvent) { t.Error("empty plan fired") }) })
	if end := env2.Run(); end != 0 {
		t.Errorf("empty plan advanced the clock to %v", end)
	}
}
