package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// shardTrace runs a fixed cross-partition workload — coordinator
// dispatch, per-partition service with local timers and procs, folds
// back to the coordinator — and returns its event log. The log must be
// identical at every worker count.
func shardTrace(workers, rounds int) []string {
	const (
		parts = 4
		jobs  = 48
	)
	la := 10 * time.Millisecond
	s := NewSharded(1+parts, workers, la)
	coord := s.Part(0)
	var log []string
	for round := 0; round < rounds; round++ {
		if round > 0 {
			s.Reopen()
		}
		done := 0
		for j := 0; j < jobs; j++ {
			j := j
			target := 1 + j%parts
			env := s.Part(target)
			sendAt := time.Duration(j%17) * 3 * time.Millisecond
			coord.After(sendAt, func() {
				now := coord.Now()
				s.Post(coord, target, now.Add(la), func() {
					// Inside the worker partition: model service time with a
					// local proc, then fold the completion back.
					env.Go("service", func(p *Proc) {
						p.Sleep(time.Duration(1+j%7) * time.Millisecond)
						fin := p.Now()
						s.Post(env, 0, fin.Add(la), func() {
							done++
							log = append(log, fmt.Sprintf("%v job=%d part=%d done=%d", coord.Now(), j, target, done))
						})
					})
				})
			})
		}
		end := s.Run()
		log = append(log, fmt.Sprintf("round=%d end=%v done=%d", round, end, done))
	}
	return log
}

// TestShardedDeterministicAcrossWorkers pins the kernel's core
// guarantee: the same workload produces an identical event log at every
// worker count, sequential included.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	want := shardTrace(1, 1)
	if len(want) != 49 {
		t.Fatalf("reference log has %d entries, want 49", len(want))
	}
	for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0) + 2} {
		got := shardTrace(workers, 1)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d log entries, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: log[%d] = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestShardedReopen pins the warm-restart path: after Run drains all
// partitions, Reopen re-arms them, the clocks continue, and a second
// identical workload stays deterministic across worker counts.
func TestShardedReopen(t *testing.T) {
	want := shardTrace(1, 2)
	got := shardTrace(3, 2)
	if len(got) != len(want) {
		t.Fatalf("%d log entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("log[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestShardedTimerAcrossPartitions exercises AfterFunc and Cancel in the
// sharded kernel: a coordinator timer fires and posts across a partition
// boundary, a worker partition's timer folds back across the boundary,
// and a cancelled timer never crosses at all.
func TestShardedTimerAcrossPartitions(t *testing.T) {
	la := 10 * time.Millisecond
	s := NewSharded(3, 2, la)
	coord, w := s.Part(0), s.Part(1)
	var fired []string
	// Coordinator timer -> cross-partition post -> worker-side echo back.
	coord.AfterFunc(5*time.Millisecond, func() {
		s.Post(coord, 1, coord.Now().Add(la), func() {
			fired = append(fired, fmt.Sprintf("w@%v", w.Now()))
			s.Post(w, 0, w.Now().Add(la), func() {
				fired = append(fired, fmt.Sprintf("c@%v", coord.Now()))
			})
		})
	})
	// Worker-partition timer armed before Run, folding back on fire.
	w.AfterFunc(7*time.Millisecond, func() {
		s.Post(w, 0, w.Now().Add(la), func() {
			fired = append(fired, fmt.Sprintf("wt@%v", coord.Now()))
		})
	})
	// A timer cancelled before its deadline must never fire.
	cancelled := coord.AfterFunc(20*time.Millisecond, func() {
		fired = append(fired, "cancelled-fired")
	})
	coord.After(6*time.Millisecond, func() {
		if !coord.Cancel(cancelled) {
			t.Error("Cancel reported the pending timer as already gone")
		}
	})
	s.Run()
	want := []string{"w@15ms", "wt@17ms", "c@25ms"}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

// TestShardedLookaheadViolationPanics pins the conservative contract: a
// worker-partition post closer than lookahead is a bug and must panic
// rather than silently break determinism.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead violation did not panic")
		}
	}()
	s := NewSharded(2, 1, 10*time.Millisecond)
	coord, w := s.Part(0), s.Part(1)
	coord.After(0, func() {
		s.Post(coord, 1, 0, func() {
			s.Post(w, 0, w.Now(), func() {})
		})
	})
	s.Run()
}

// TestShardedValidation pins the constructor's contract checks.
func TestShardedValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("one partition", func() { NewSharded(1, 1, time.Millisecond) })
	mustPanic("zero lookahead", func() { NewSharded(2, 1, 0) })
	mustPanic("foreign env post", func() {
		s := NewSharded(2, 1, time.Millisecond)
		s.Post(NewEnv(), 0, 0, func() {})
	})
}
