package sim

import (
	"cmp"
	"fmt"
	"math"
	"runtime"
	"slices"
	"time"

	"repro/internal/runner"
)

// Sharded is a conservatively synchronized parallel composition of
// simulation environments: one coordinator partition (index 0) plus N
// worker partitions (indices 1..N), each a full *Env with its own
// clock, heap, and processes. The partitions exchange events only
// through Post/PostMsg, and the kernel interleaves them under the
// classic conservative (CMB-style) contract:
//
//   - The coordinator runs one event at a time, and only when its next
//     event is no later than every worker partition's next event. While
//     it runs, every worker partition is strictly behind it, so the
//     coordinator may read worker-partition state directly and may Post
//     events into worker partitions at any delay >= 0.
//   - Worker partitions run in parallel rounds up to a shared exclusive
//     window bound W = min(coordinator next, workers' next + lookahead).
//     Inside a round a partition sees only its own state; anything it
//     sends to another partition must arrive at least lookahead after
//     its local now, which keeps the round's partitions causally
//     independent and makes the merge order below well defined.
//
// Cross-partition events posted during a round buffer in per-partition
// outboxes and merge at the round barrier in (time, source partition,
// post order) order, each assigned the target's next sequence numbers
// in that order. The phase structure — which events run in which round —
// is a pure function of event timestamps and lookahead, never of the
// worker count, so a Sharded simulation produces byte-identical results
// at every Workers setting, including Workers(1).
//
// The hot path is engineered around that contract rather than on top of
// it. Worker frontiers (each partition's earliest pending timestamp)
// live in an indexed min-heap that Env.newEvent/Env.Cancel keep
// incrementally dirty-marked, so neither the coordinator/round decision
// nor the round's active-set collection rescans all partitions. The
// coordinator batch-steps every event up to the (unchanged) worker
// frontier in one loop pass. Rounds run on a persistent runner.Crew —
// helper goroutines and barrier reused across rounds — instead of a
// per-round Map dispatch. And cross-partition payloads can be typed,
// pooled Messages (PostMsg) instead of heap-allocated closures. None of
// it changes which event runs when: outputs stay byte-identical by
// construction.
type Sharded struct {
	parts     []*Env
	lookahead Time
	crew      *runner.Crew
	workers   int

	nodePhase bool  // set for the duration of a worker-partition round
	active    []int // scratch: partition indices running this round
	merged    []outPost
	roundW    Time // current round's window bound, read by the crew body

	// The frontier index: fkey[p] is worker partition p's earliest
	// pending timestamp (maxTime when empty), fheap an indexed binary
	// min-heap over partitions 1..N with fpos the position of each
	// partition inside it. Keys go stale only for partitions flagged in
	// dirty — marked by the newEvent/Cancel hooks outside rounds and by
	// the round barrier for the partitions that just ran — and Run
	// refreshes exactly those at the top of each pass.
	fkey    []Time
	fheap   []int
	fpos    []int
	fstack  []int // scratch: heap-DFS stack for active-set collection
	dirty   []int
	isDirty []bool
}

// maxTime is the frontier key of an empty partition.
const maxTime = Time(math.MaxInt64)

// Message is a typed cross-partition event payload: Deliver runs in the
// target partition at the scheduled instant, exactly like a posted
// closure, with at the event's timestamp (== the target's Now). The
// indirection exists for pooling — a protocol can recycle its message
// structs on per-partition free lists, making steady-state
// cross-partition traffic allocation-free where closures cannot be.
type Message interface {
	Deliver(at Time)
}

// outPost is one cross-partition event buffered in a partition outbox.
// Exactly one of fn and msg is set.
type outPost struct {
	target int
	at     Time
	fn     func()
	msg    Message
}

// NewSharded builds a sharded kernel with nparts partitions (partition
// 0 is the coordinator) synchronized under the given lookahead, running
// worker-partition rounds on up to workers goroutines (workers <= 0
// means GOMAXPROCS, workers == 1 runs rounds sequentially).
func NewSharded(nparts, workers int, lookahead time.Duration) *Sharded {
	if nparts < 2 {
		panic("sim: NewSharded needs a coordinator plus at least one worker partition")
	}
	if lookahead <= 0 {
		panic("sim: NewSharded needs a positive lookahead")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Sharded{lookahead: Time(lookahead), workers: workers}
	s.parts = make([]*Env, nparts)
	for i := range s.parts {
		e := NewEnv()
		e.shard, e.shardIdx = s, i
		s.parts[i] = e
	}
	s.fkey = make([]Time, nparts)
	s.fheap = make([]int, nparts-1)
	s.fpos = make([]int, nparts)
	s.isDirty = make([]bool, nparts)
	for p := 1; p < nparts; p++ {
		s.fkey[p] = maxTime
		s.fheap[p-1] = p
		s.fpos[p] = p - 1
	}
	if workers > 1 {
		s.crew = runner.NewCrew(workers, func(j int) {
			s.parts[s.active[j]].runBefore(s.roundW)
		})
	}
	return s
}

// Part returns partition i's environment. Partition 0 is the
// coordinator.
func (s *Sharded) Part(i int) *Env { return s.parts[i] }

// Parts reports the partition count, coordinator included.
func (s *Sharded) Parts() int { return len(s.parts) }

// Lookahead reports the conservative synchronization horizon.
func (s *Sharded) Lookahead() time.Duration { return time.Duration(s.lookahead) }

// Workers reports the configured worker bound for partition rounds.
func (s *Sharded) Workers() int { return s.workers }

// Post schedules fn at time at in partition target, from code running
// in partition from. From the coordinator (or between rounds) the event
// is inserted directly — the target partition is provably at an earlier
// clock, so any at >= the poster's now is legal. From a worker
// partition inside a round the event buffers in the partition's outbox
// and must respect the lookahead contract: at >= from.Now() + lookahead.
func (s *Sharded) Post(from *Env, target int, at Time, fn func()) {
	if s.buffered(from, at) {
		from.outbox = append(from.outbox, outPost{target: target, at: at, fn: fn})
		return
	}
	s.parts[target].schedule(at, fn)
}

// PostMsg is Post for a typed Message payload: m.Deliver(at) runs in
// the target partition at at, under exactly the ordering and lookahead
// contract of Post. Unlike a closure the message allocates nothing
// here, and the poster may draw it from a free list owned by the
// partition PosterPartition reports.
func (s *Sharded) PostMsg(from *Env, target int, at Time, m Message) {
	if s.buffered(from, at) {
		from.outbox = append(from.outbox, outPost{target: target, at: at, msg: m})
		return
	}
	s.parts[target].scheduleMsg(at, m)
}

// buffered decides the path of one post from the given environment:
// true means the caller must buffer in the outbox (worker partition,
// mid-round — the lookahead contract was just checked), false means
// direct insertion into the target is legal.
func (s *Sharded) buffered(from *Env, at Time) bool {
	if from.shard != s {
		panic("sim: Post from an environment outside this Sharded kernel")
	}
	if !s.nodePhase || from.shardIdx == 0 {
		return false
	}
	if at < from.now+s.lookahead {
		panic(fmt.Sprintf("sim: cross-partition post at %v violates lookahead (now %v + %v)",
			at, from.now, time.Duration(s.lookahead)))
	}
	return true
}

// PosterPartition reports which partition's pooled resources the code
// currently posting from env may safely touch: env's own partition
// while a worker round is running it, the coordinator's (0) otherwise —
// control verbs and crash purges call into node environments from the
// coordinator's goroutine, and posts they trigger execute there.
func (s *Sharded) PosterPartition(from *Env) int {
	if s.nodePhase && from.shardIdx > 0 {
		return from.shardIdx
	}
	return 0
}

// Run executes all partitions to completion and returns the
// coordinator's final clock value. Like Env.Run it drains every
// partition afterwards, so no process goroutines are left behind. The
// crew's helper goroutines exist only for the duration of the call.
func (s *Sharded) Run() Time {
	for _, e := range s.parts {
		if e.running {
			panic("sim: Run called re-entrantly")
		}
		e.running = true
	}
	if s.crew != nil {
		s.crew.Start()
		defer s.crew.Stop()
	}
	coord := s.parts[0]
	for {
		s.flushDirty()
		tn := s.fkey[s.fheap[0]] // min worker frontier; maxTime when all empty
		tc, cok := coord.peekNext()
		switch {
		case !cok && tn == maxTime:
			for _, e := range s.parts {
				e.running = false
			}
			for _, e := range s.parts {
				e.drain()
			}
			return coord.now
		case cok && tc <= tn:
			// Coordinator phase: every worker partition's clock is behind
			// tc and holds no event earlier than tc, so these events may
			// read worker state and post into workers freely. Batch-step:
			// the guard "next <= min worker frontier" is re-evaluated
			// after every event against an incrementally refreshed bound
			// (a post or cancel that moved a frontier lands in the dirty
			// set; flushing it re-sifts exactly those keys), so the batch
			// makes the same decisions per-event rescanning would.
			for {
				coord.step()
				if len(s.dirty) > 0 {
					s.flushDirty()
					tn = s.fkey[s.fheap[0]]
				}
				if len(coord.events) == 0 || coord.events[0].at > tn {
					break
				}
			}
		default:
			w := tn + s.lookahead
			if cok && tc < w {
				w = tc
			}
			s.runRound(w)
		}
	}
}

// runRound executes every worker partition with an event before w up to
// (exclusive) w, in parallel, then merges the round's cross-partition
// posts at the barrier.
func (s *Sharded) runRound(w Time) {
	s.collectActive(w)
	s.nodePhase = true
	if s.crew == nil || len(s.active) == 1 {
		for _, p := range s.active {
			s.parts[p].runBefore(w)
		}
	} else {
		// The blessed shard-barrier seam: partitions share no state
		// during a round, and the crew's barrier orders every partition's
		// writes before the merge below.
		s.roundW = w
		s.crew.Run(len(s.active))
	}
	s.nodePhase = false
	for _, p := range s.active {
		// Round-local churn bypassed the frontier hooks (they are off
		// during nodePhase — worker heaps are touched concurrently);
		// refresh exactly the partitions that ran.
		s.markDirty(p)
	}
	s.merge()
}

// collectActive gathers the worker partitions with an event before w
// into s.active, ascending. The frontier heap bounds the walk: a heap
// node with key >= w has no descendant below w, so the DFS visits only
// active partitions plus their immediate fringe instead of all N. The
// ascending sort is load-bearing — merge's stable sort relies on
// outboxes being appended in ascending source-partition order.
func (s *Sharded) collectActive(w Time) {
	s.active = s.active[:0]
	s.fstack = append(s.fstack[:0], 0)
	for len(s.fstack) > 0 {
		i := s.fstack[len(s.fstack)-1]
		s.fstack = s.fstack[:len(s.fstack)-1]
		p := s.fheap[i]
		if s.fkey[p] >= w {
			continue
		}
		s.active = append(s.active, p)
		if l := 2*i + 1; l < len(s.fheap) {
			s.fstack = append(s.fstack, l)
			if r := l + 1; r < len(s.fheap) {
				s.fstack = append(s.fstack, r)
			}
		}
	}
	slices.Sort(s.active)
}

// merge drains the round's outboxes into their target partitions in
// (time, source partition, post order) order — the deterministic global
// order the sequential kernel would have produced.
func (s *Sharded) merge() {
	s.merged = s.merged[:0]
	for _, i := range s.active {
		e := s.parts[i]
		s.merged = append(s.merged, e.outbox...)
		for j := range e.outbox {
			e.outbox[j].fn, e.outbox[j].msg = nil, nil
		}
		e.outbox = e.outbox[:0]
	}
	if len(s.merged) == 0 {
		return
	}
	// Outboxes were appended in ascending source-partition order with
	// per-source post order preserved, so a stable sort by time alone
	// yields (time, source partition, post order).
	slices.SortStableFunc(s.merged, func(a, b outPost) int { return cmp.Compare(a.at, b.at) })
	for i := range s.merged {
		p := &s.merged[i]
		if p.msg != nil {
			s.parts[p.target].scheduleMsg(p.at, p.msg)
		} else {
			s.parts[p.target].schedule(p.at, p.fn)
		}
		p.fn, p.msg = nil, nil
	}
}

// frontierChanged is the Env hook: partition e's earliest pending event
// changed (a push that became the new head, or the head cancelled).
// During a round the worker heaps churn concurrently and the hook is a
// no-op — the barrier marks the partitions that ran instead; outside
// rounds only the coordinator's goroutine schedules or cancels, so the
// dirty set is single-writer.
func (s *Sharded) frontierChanged(e *Env) {
	if s.nodePhase || e.shardIdx == 0 {
		return
	}
	s.markDirty(e.shardIdx)
}

// markDirty flags worker partition p's frontier key as stale.
func (s *Sharded) markDirty(p int) {
	if s.isDirty[p] {
		return
	}
	s.isDirty[p] = true
	s.dirty = append(s.dirty, p)
}

// flushDirty refreshes every stale frontier key from its partition's
// heap and restores the min-heap invariant around it.
func (s *Sharded) flushDirty() {
	for _, p := range s.dirty {
		s.isDirty[p] = false
		t := maxTime
		if ev := s.parts[p].events; len(ev) > 0 {
			t = ev[0].at
		}
		s.setKey(p, t)
	}
	s.dirty = s.dirty[:0]
}

// setKey updates partition p's frontier key and sifts it to its place.
func (s *Sharded) setKey(p int, t Time) {
	old := s.fkey[p]
	if old == t {
		return
	}
	s.fkey[p] = t
	if t < old {
		s.siftUp(s.fpos[p])
	} else {
		s.siftDown(s.fpos[p])
	}
}

// fless orders heap slots by (key, partition) — the partition tiebreak
// is not semantically needed (ties are resolved by the round window),
// but keeps the heap layout itself deterministic.
func (s *Sharded) fless(a, b int) bool {
	if s.fkey[a] != s.fkey[b] {
		return s.fkey[a] < s.fkey[b]
	}
	return a < b
}

func (s *Sharded) fswap(i, j int) {
	h := s.fheap
	h[i], h[j] = h[j], h[i]
	s.fpos[h[i]] = i
	s.fpos[h[j]] = j
}

func (s *Sharded) siftUp(i int) {
	h := s.fheap
	for i > 0 {
		parent := (i - 1) / 2
		if !s.fless(h[i], h[parent]) {
			return
		}
		s.fswap(i, parent)
		i = parent
	}
}

func (s *Sharded) siftDown(i int) {
	h := s.fheap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && s.fless(h[r], h[l]) {
			m = r
		}
		if !s.fless(h[m], h[i]) {
			return
		}
		s.fswap(i, m)
		i = m
	}
}

// Reopen re-arms every drained partition for another round of
// processes — the warm-restart hook, mirroring Env.Reopen.
func (s *Sharded) Reopen() {
	for _, e := range s.parts {
		e.Reopen()
	}
}

// peekNext reports the timestamp of e's earliest pending event.
func (e *Env) peekNext() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// step fires e's earliest pending event. The caller guarantees the heap
// is non-empty.
func (e *Env) step() {
	e.dispatch(e.popEvent())
}

// runBefore fires every pending event with a timestamp strictly before
// w, leaving later events queued and the clock at the last fired event.
func (e *Env) runBefore(w Time) {
	for len(e.events) > 0 && e.events[0].at < w {
		e.dispatch(e.popEvent())
	}
}
