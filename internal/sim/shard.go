package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"repro/internal/runner"
)

// Sharded is a conservatively synchronized parallel composition of
// simulation environments: one coordinator partition (index 0) plus N
// worker partitions (indices 1..N), each a full *Env with its own
// clock, heap, and processes. The partitions exchange events only
// through Post, and the kernel interleaves them under the classic
// conservative (CMB-style) contract:
//
//   - The coordinator runs one event at a time, and only when its next
//     event is no later than every worker partition's next event. While
//     it runs, every worker partition is strictly behind it, so the
//     coordinator may read worker-partition state directly and may Post
//     events into worker partitions at any delay >= 0.
//   - Worker partitions run in parallel rounds up to a shared exclusive
//     window bound W = min(coordinator next, workers' next + lookahead).
//     Inside a round a partition sees only its own state; anything it
//     sends to another partition must arrive at least lookahead after
//     its local now, which keeps the round's partitions causally
//     independent and makes the merge order below well defined.
//
// Cross-partition events posted during a round buffer in per-partition
// outboxes and merge at the round barrier in (time, source partition,
// post order) order, each assigned the target's next sequence numbers
// in that order. The phase structure — which events run in which round —
// is a pure function of event timestamps and lookahead, never of the
// worker count, so a Sharded simulation produces byte-identical results
// at every Workers setting, including Workers(1).
type Sharded struct {
	parts     []*Env
	lookahead Time
	pool      *runner.Pool
	workers   int

	nodePhase bool  // set for the duration of a worker-partition round
	active    []int // scratch: partition indices running this round
	merged    []outPost
}

// outPost is one cross-partition event buffered in a partition outbox.
type outPost struct {
	target int
	at     Time
	fn     func()
}

// NewSharded builds a sharded kernel with nparts partitions (partition
// 0 is the coordinator) synchronized under the given lookahead, running
// worker-partition rounds on up to workers goroutines (workers <= 0
// means GOMAXPROCS, workers == 1 runs rounds sequentially).
func NewSharded(nparts, workers int, lookahead time.Duration) *Sharded {
	if nparts < 2 {
		panic("sim: NewSharded needs a coordinator plus at least one worker partition")
	}
	if lookahead <= 0 {
		panic("sim: NewSharded needs a positive lookahead")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Sharded{lookahead: Time(lookahead)}
	s.parts = make([]*Env, nparts)
	for i := range s.parts {
		e := NewEnv()
		e.shard, e.shardIdx = s, i
		s.parts[i] = e
	}
	if workers > 1 {
		s.pool = runner.New(workers)
	}
	s.workers = workers
	return s
}

// Part returns partition i's environment. Partition 0 is the
// coordinator.
func (s *Sharded) Part(i int) *Env { return s.parts[i] }

// Parts reports the partition count, coordinator included.
func (s *Sharded) Parts() int { return len(s.parts) }

// Lookahead reports the conservative synchronization horizon.
func (s *Sharded) Lookahead() time.Duration { return time.Duration(s.lookahead) }

// Workers reports the configured worker bound for partition rounds.
func (s *Sharded) Workers() int {
	if s.pool != nil {
		return s.pool.Workers()
	}
	return 1
}

// Post schedules fn at time at in partition target, from code running
// in partition from. From the coordinator (or between rounds) the event
// is inserted directly — the target partition is provably at an earlier
// clock, so any at >= the poster's now is legal. From a worker
// partition inside a round the event buffers in the partition's outbox
// and must respect the lookahead contract: at >= from.Now() + lookahead.
func (s *Sharded) Post(from *Env, target int, at Time, fn func()) {
	if from.shard != s {
		panic("sim: Post from an environment outside this Sharded kernel")
	}
	if s.nodePhase && from.shardIdx > 0 {
		if at < from.now+s.lookahead {
			panic(fmt.Sprintf("sim: cross-partition post at %v violates lookahead (now %v + %v)",
				at, from.now, time.Duration(s.lookahead)))
		}
		from.outbox = append(from.outbox, outPost{target: target, at: at, fn: fn})
		return
	}
	s.parts[target].schedule(at, fn)
}

// Run executes all partitions to completion and returns the
// coordinator's final clock value. Like Env.Run it drains every
// partition afterwards, so no process goroutines are left behind.
func (s *Sharded) Run() Time {
	for _, e := range s.parts {
		if e.running {
			panic("sim: Run called re-entrantly")
		}
		e.running = true
	}
	for {
		tc, cok := s.parts[0].peekNext()
		tn := Time(math.MaxInt64)
		nok := false
		for _, e := range s.parts[1:] {
			if t, ok := e.peekNext(); ok && t < tn {
				tn, nok = t, true
			}
		}
		switch {
		case !cok && !nok:
			for _, e := range s.parts {
				e.running = false
			}
			for _, e := range s.parts {
				e.drain()
			}
			return s.parts[0].now
		case cok && (!nok || tc <= tn):
			// Coordinator phase: every worker partition's clock is behind
			// tc and holds no event earlier than tc, so this one event may
			// read their state and post into them freely.
			s.parts[0].step()
		default:
			w := tn + s.lookahead
			if cok && tc < w {
				w = tc
			}
			s.runRound(w)
		}
	}
}

// runRound executes every worker partition with an event before w up to
// (exclusive) w, in parallel, then merges the round's cross-partition
// posts at the barrier.
func (s *Sharded) runRound(w Time) {
	s.active = s.active[:0]
	for i, e := range s.parts[1:] {
		if t, ok := e.peekNext(); ok && t < w {
			s.active = append(s.active, 1+i)
		}
	}
	s.nodePhase = true
	if s.pool == nil || len(s.active) == 1 {
		for _, i := range s.active {
			s.parts[i].runBefore(w)
		}
	} else {
		// The blessed shard-barrier seam: partitions share no state
		// during a round, and runner.Map's WaitGroup join orders every
		// partition's writes before the merge below.
		if _, err := runner.Map(s.pool, len(s.active), func(j int) (struct{}, error) {
			s.parts[s.active[j]].runBefore(w)
			return struct{}{}, nil
		}); err != nil {
			panic(err)
		}
	}
	s.nodePhase = false
	s.merge()
}

// merge drains the round's outboxes into their target partitions in
// (time, source partition, post order) order — the deterministic global
// order the sequential kernel would have produced.
func (s *Sharded) merge() {
	s.merged = s.merged[:0]
	for _, i := range s.active {
		e := s.parts[i]
		s.merged = append(s.merged, e.outbox...)
		for j := range e.outbox {
			e.outbox[j].fn = nil
		}
		e.outbox = e.outbox[:0]
	}
	if len(s.merged) == 0 {
		return
	}
	// Outboxes were appended in ascending source-partition order with
	// per-source post order preserved, so a stable sort by time alone
	// yields (time, source partition, post order).
	sort.SliceStable(s.merged, func(a, b int) bool { return s.merged[a].at < s.merged[b].at })
	for i := range s.merged {
		p := &s.merged[i]
		s.parts[p.target].schedule(p.at, p.fn)
		p.fn = nil
	}
}

// Reopen re-arms every drained partition for another round of
// processes — the warm-restart hook, mirroring Env.Reopen.
func (s *Sharded) Reopen() {
	for _, e := range s.parts {
		e.Reopen()
	}
}

// peekNext reports the timestamp of e's earliest pending event.
func (e *Env) peekNext() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// step fires e's earliest pending event. The caller guarantees the heap
// is non-empty.
func (e *Env) step() {
	e.dispatch(e.popEvent())
}

// runBefore fires every pending event with a timestamp strictly before
// w, leaving later events queued and the clock at the last fired event.
func (e *Env) runBefore(w Time) {
	for len(e.events) > 0 && e.events[0].at < w {
		e.dispatch(e.popEvent())
	}
}
