package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	env := NewEnv()
	if env.Now() != 0 {
		t.Fatalf("new env clock = %v, want 0", env.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv()
	var woke Time
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(3 * time.Second)
		woke = p.Now()
	})
	end := env.Run()
	if woke != Time(3*time.Second) {
		t.Errorf("woke at %v, want 3s", woke)
	}
	if end != Time(3*time.Second) {
		t.Errorf("Run returned %v, want 3s", end)
	}
}

func TestSequentialSleeps(t *testing.T) {
	env := NewEnv()
	var marks []Time
	env.Go("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Second)
			marks = append(marks, p.Now())
		}
	})
	env.Run()
	want := []Time{Time(time.Second), Time(2 * time.Second), Time(3 * time.Second)}
	if len(marks) != len(want) {
		t.Fatalf("got %d marks, want %d", len(marks), len(want))
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Errorf("mark %d = %v, want %v", i, marks[i], want[i])
		}
	}
}

func TestParallelProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		env := NewEnv()
		var order []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			env.Go(name, func(p *Proc) {
				p.Sleep(time.Second)
				order = append(order, name+"1")
				p.Sleep(time.Second)
				order = append(order, name+"2")
			})
		}
		env.Run()
		return order
	}
	first := run()
	want := []string{"a1", "b1", "c1", "a2", "b2", "c2"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
	for trial := 0; trial < 5; trial++ {
		again := run()
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("nondeterministic order: %v vs %v", again, first)
			}
		}
	}
}

func TestAfterCallback(t *testing.T) {
	env := NewEnv()
	var at Time
	env.After(5*time.Millisecond, func() { at = env.Now() })
	env.Run()
	if at != Time(5*time.Millisecond) {
		t.Errorf("callback at %v, want 5ms", at)
	}
}

func TestAfterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative delay")
		}
	}()
	NewEnv().After(-time.Second, func() {})
}

func TestEventBroadcast(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	var woke []string
	for _, name := range []string{"w1", "w2"} {
		name := name
		env.Go(name, func(p *Proc) {
			ev.Wait(p)
			woke = append(woke, name)
		})
	}
	env.Go("firer", func(p *Proc) {
		p.Sleep(time.Second)
		ev.Fire()
	})
	env.Run()
	if len(woke) != 2 || woke[0] != "w1" || woke[1] != "w2" {
		t.Errorf("woke = %v, want [w1 w2]", woke)
	}
	if !ev.Fired() {
		t.Error("event not marked fired")
	}
}

func TestEventWaitAfterFireReturnsImmediately(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	ev.Fire()
	var at Time
	env.Go("late", func(p *Proc) {
		p.Sleep(time.Second)
		ev.Wait(p)
		at = p.Now()
	})
	env.Run()
	if at != Time(time.Second) {
		t.Errorf("late waiter resumed at %v, want 1s", at)
	}
}

func TestEventDoubleFireIsNoop(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	ev.Fire()
	ev.Fire() // must not panic
}

func TestGateReusable(t *testing.T) {
	env := NewEnv()
	g := NewGate(env)
	var wakes int
	env.Go("waiter", func(p *Proc) {
		for i := 0; i < 3; i++ {
			g.Wait(p)
			wakes++
		}
	})
	env.Go("notifier", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Second)
			g.Notify()
		}
	})
	env.Run()
	if wakes != 3 {
		t.Errorf("wakes = %d, want 3", wakes)
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "gpu", 1)
	var spans [][2]Time
	for i := 0; i < 3; i++ {
		env.Go("user", func(p *Proc) {
			res.Acquire(p)
			start := p.Now()
			p.Sleep(time.Second)
			res.Release(p)
			spans = append(spans, [2]Time{start, p.Now()})
		})
	}
	env.Run()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i][0] < spans[i-1][1] {
			t.Errorf("span %d starts at %v before previous ends at %v", i, spans[i][0], spans[i-1][1])
		}
	}
	if res.BusyTime() != 3*time.Second {
		t.Errorf("busy time = %v, want 3s", res.BusyTime())
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "bus", 2)
	var finished []Time
	for i := 0; i < 4; i++ {
		env.Go("user", func(p *Proc) {
			res.Use(p, time.Second)
			finished = append(finished, p.Now())
		})
	}
	end := env.Run()
	if end != Time(2*time.Second) {
		t.Errorf("4 unit jobs on cap-2 resource finished at %v, want 2s", end)
	}
	if len(finished) != 4 {
		t.Fatalf("finished = %d, want 4", len(finished))
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Go("u", func(p *Proc) {
			// Stagger arrivals so the queue order is unambiguous.
			p.Sleep(time.Duration(i) * time.Millisecond)
			res.Acquire(p)
			order = append(order, i)
			p.Sleep(time.Second)
			res.Release(p)
		})
	}
	env.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("service order = %v, want ascending", order)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 1)
	var first, second bool
	env.Go("p", func(p *Proc) {
		first = res.TryAcquire(p)
		second = res.TryAcquire(p)
		if first {
			res.Release(p)
		}
	})
	env.Run()
	if !first || second {
		t.Errorf("TryAcquire = %v, %v; want true, false", first, second)
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 1)
	var recovered bool
	env.Go("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		res.Release(p)
	})
	env.Run()
	if !recovered {
		t.Error("no panic on unpaired Release")
	}
}

func TestRunDrainsBlockedProcesses(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	env.Go("stuck", func(p *Proc) {
		ev.Wait(p) // never fired
		t.Error("stuck process resumed normally")
	})
	env.Run()
	if env.Procs() != 0 {
		t.Errorf("procs remaining = %d, want 0", env.Procs())
	}
	if !env.Terminated() {
		t.Error("env not terminated after Run")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	env := NewEnv()
	var ticks int
	env.Go("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Second)
			ticks++
		}
	})
	got := env.RunUntil(Time(3500 * time.Millisecond))
	if ticks != 3 {
		t.Errorf("ticks = %d, want 3", ticks)
	}
	if got != Time(3500*time.Millisecond) {
		t.Errorf("RunUntil returned %v, want 3.5s", got)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	env := NewEnv()
	env.Go("p", func(p *Proc) { p.Sleep(time.Second) })
	env.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling in the past")
		}
	}()
	env.schedule(0, func() {})
}

func TestYieldLetsPeersRun(t *testing.T) {
	env := NewEnv()
	var order []string
	env.Go("a", func(p *Proc) {
		order = append(order, "a-start")
		p.Yield()
		order = append(order, "a-end")
	})
	env.Go("b", func(p *Proc) {
		order = append(order, "b")
	})
	env.Run()
	want := []string{"a-start", "b", "a-end"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestEventHeapOrderProperty checks the (time, seq) dequeue invariant
// with random event sets.
func TestEventHeapOrderProperty(t *testing.T) {
	prop := func(times []int16) bool {
		var h eventHeap
		for i, raw := range times {
			at := Time(int64(raw)&0x7fff) * Time(time.Millisecond)
			heap.Push(&h, &event{at: at, seq: int64(i)})
		}
		lastAt := Time(-1)
		lastSeq := int64(-1)
		for h.Len() > 0 {
			ev := heap.Pop(&h).(*event)
			if ev.at < lastAt {
				return false
			}
			if ev.at == lastAt && ev.seq < lastSeq {
				return false
			}
			lastAt, lastSeq = ev.at, ev.seq
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRandomResourceWorkloadConserves checks that an arbitrary mix of
// sleeps and resource uses completes every process exactly once and
// never exceeds capacity.
func TestRandomResourceWorkloadConserves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		env := NewEnv()
		capN := 1 + rng.Intn(3)
		res := NewResource(env, "r", capN)
		n := 5 + rng.Intn(20)
		durs := make([]time.Duration, n)
		for i := range durs {
			durs[i] = time.Duration(1+rng.Intn(1000)) * time.Millisecond
		}
		completed := 0
		maxInUse := 0
		for i := 0; i < n; i++ {
			d := durs[i]
			env.Go("w", func(p *Proc) {
				p.Sleep(d / 2)
				res.Acquire(p)
				if res.InUse() > maxInUse {
					maxInUse = res.InUse()
				}
				p.Sleep(d)
				res.Release(p)
				completed++
			})
		}
		env.Run()
		if completed != n {
			t.Fatalf("trial %d: completed %d of %d", trial, completed, n)
		}
		if maxInUse > capN {
			t.Fatalf("trial %d: in-use %d exceeded capacity %d", trial, maxInUse, capN)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0).Add(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", tm.Seconds())
	}
	if tm.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Errorf("Sub = %v, want 500ms", tm.Sub(Time(time.Second)))
	}
	if tm.Duration() != 1500*time.Millisecond {
		t.Errorf("Duration = %v", tm.Duration())
	}
	if tm.String() != "1.5s" {
		t.Errorf("String = %q", tm.String())
	}
}

func TestReopenRunsSecondRound(t *testing.T) {
	env := NewEnv()
	var order []string
	env.Go("first", func(p *Proc) {
		p.Sleep(time.Second)
		order = append(order, "first")
	})
	env.Run()
	if !env.Terminated() {
		t.Fatal("env not terminated after Run")
	}
	env.Reopen()
	if env.Terminated() {
		t.Fatal("env still terminated after Reopen")
	}
	// The clock continues: the second round starts where the first ended.
	env.Go("second", func(p *Proc) {
		p.Sleep(time.Second)
		order = append(order, "second")
	})
	end := env.Run()
	if end != Time(2*time.Second) {
		t.Errorf("clock = %v after second round, want 2s", end)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("order = %v", order)
	}
}

func TestReopenBeforeDrainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Reopen on a fresh env did not panic")
		}
	}()
	NewEnv().Reopen()
}

func TestCancelRevokesPendingTimer(t *testing.T) {
	env := NewEnv()
	fired := false
	tm := env.AfterFunc(time.Second, func() { fired = true })
	if !env.Cancel(tm) {
		t.Fatal("Cancel of a pending timer returned false")
	}
	env.Run()
	if fired {
		t.Error("cancelled callback still ran")
	}
	// A second cancel of the same handle is a no-op.
	if env.Cancel(tm) {
		t.Error("double Cancel returned true")
	}
}

func TestCancelAfterFireReturnsFalse(t *testing.T) {
	env := NewEnv()
	fired := 0
	tm := env.AfterFunc(time.Second, func() { fired++ })
	env.Run()
	if fired != 1 {
		t.Fatalf("callback ran %d times, want 1", fired)
	}
	if env.Cancel(tm) {
		t.Error("Cancel after fire returned true")
	}
}

// TestCancelStaleHandleDoesNotKillReusedEvent pins the pooled-event
// generation guard: a handle whose event fired and was recycled into a
// new timer must not cancel the new timer.
func TestCancelStaleHandleDoesNotKillReusedEvent(t *testing.T) {
	env := NewEnv()
	stale := env.AfterFunc(time.Second, func() {})
	env.Run()

	env.Reopen()
	fired := false
	env.AfterFunc(time.Second, func() { fired = true })
	if env.Cancel(stale) {
		t.Error("stale handle cancelled something")
	}
	env.Run()
	if !fired {
		t.Error("stale Cancel revoked a reused event's callback")
	}
}

func TestCancelZeroTimer(t *testing.T) {
	if NewEnv().Cancel(Timer{}) {
		t.Error("Cancel of zero Timer returned true")
	}
}

// TestCancelInterleavedKeepsOrdering cancels one of three timers and
// checks the survivors fire in timestamp order.
func TestCancelInterleavedKeepsOrdering(t *testing.T) {
	env := NewEnv()
	var order []string
	env.AfterFunc(1*time.Second, func() { order = append(order, "a") })
	b := env.AfterFunc(2*time.Second, func() { order = append(order, "b") })
	env.AfterFunc(3*time.Second, func() { order = append(order, "c") })
	if !env.Cancel(b) {
		t.Fatal("Cancel failed")
	}
	env.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "c" {
		t.Errorf("order = %v, want [a c]", order)
	}
}

// TestHeapPopClearsIndex pins the invariant Cancel relies on: an event
// leaving the heap must not keep a stale index.
func TestHeapPopClearsIndex(t *testing.T) {
	var h eventHeap
	evs := []*event{{at: 1, seq: 1}, {at: 2, seq: 2}, {at: 3, seq: 3}}
	for _, ev := range evs {
		heap.Push(&h, ev)
	}
	for h.Len() > 0 {
		ev := heap.Pop(&h).(*event)
		if ev.index != -1 {
			t.Fatalf("popped event seq %d kept heap index %d", ev.seq, ev.index)
		}
	}
}

// TestSleepSteadyStateAllocations pins the pooled, closure-free kernel
// hot path: a full ping-pong workload (1000 sleeps across 4 processes)
// must stay well under the ~2 allocations per sleep the closure-based
// kernel paid. The budget covers environment construction, goroutine
// stacks, and heap growth — not per-sleep garbage.
func TestSleepSteadyStateAllocations(t *testing.T) {
	allocs := testing.AllocsPerRun(3, func() {
		env := NewEnv()
		for i := 0; i < 4; i++ {
			env.Go("p", func(p *Proc) {
				for s := 0; s < 250; s++ {
					p.Sleep(time.Millisecond)
				}
			})
		}
		env.Run()
	})
	if allocs > 200 {
		t.Errorf("kernel workload allocated %.0f objects, want <= 200 (was ~2000 before event pooling)", allocs)
	}
}

// TestEventPoolReuseAcrossReopen checks warm restarts reuse the free
// list: a second identical round on a reopened environment should not
// allocate per-event.
func TestEventPoolReuseAcrossReopen(t *testing.T) {
	env := NewEnv()
	round := func() {
		for i := 0; i < 100; i++ {
			env.After(time.Duration(i)*time.Millisecond, func() {})
		}
		env.Run()
	}
	round()
	env.Reopen()
	allocs := testing.AllocsPerRun(1, func() {
		round()
		env.Reopen()
	})
	if allocs > 10 {
		t.Errorf("reopened round allocated %.0f objects, want <= 10", allocs)
	}
}

func TestCancelAcrossEnvironmentsPanics(t *testing.T) {
	a, b := NewEnv(), NewEnv()
	tm := a.AfterFunc(time.Second, func() {})
	defer func() {
		if recover() == nil {
			t.Error("no panic cancelling another environment's timer")
		}
	}()
	b.Cancel(tm)
}
