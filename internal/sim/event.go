package sim

// Event is a one-shot broadcast signal. Processes block on Wait until
// some other process (or callback) calls Fire; waiters are released in
// the order they arrived. Waiting on an already-fired event returns
// immediately, so Event is safe for completion notifications.
type Event struct {
	env     *Env
	fired   bool
	waiters []*Proc
}

// NewEvent returns an unfired event bound to env.
func NewEvent(env *Env) *Event {
	return &Event{env: env}
}

// Fired reports whether Fire has been called.
func (ev *Event) Fired() bool { return ev.fired }

// Fire marks the event fired and wakes all current waiters in FIFO
// order. Firing twice is a no-op.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, p := range ev.waiters {
		p.unpark()
	}
	ev.waiters = nil
}

// Wait blocks p until the event fires. Returns immediately if it already
// has.
func (ev *Event) Wait(p *Proc) {
	if ev.env != p.env {
		panic("sim: Wait across environments")
	}
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p)
	p.park()
}

// Gate is a reusable wake-up signal: Notify releases everyone currently
// waiting, and later waiters block until the next Notify. It is the
// building block for producer/consumer queues (an executor waits on its
// queue's gate; the controller notifies after enqueueing work).
type Gate struct {
	env     *Env
	waiters []*Proc
	// spare is the previous waiter buffer, swapped back in on Notify so
	// the notify-wait cycle reuses capacity instead of reallocating.
	spare []*Proc
}

// NewGate returns a gate bound to env.
func NewGate(env *Env) *Gate {
	return &Gate{env: env}
}

// Notify wakes all processes currently blocked in Wait, in FIFO order.
// Processes that call Wait after Notify block until the next Notify.
func (g *Gate) Notify() {
	waiters := g.waiters
	g.waiters = g.spare[:0]
	for i, p := range waiters {
		p.unpark()
		waiters[i] = nil
	}
	g.spare = waiters[:0]
}

// Wait blocks p until the next Notify.
func (g *Gate) Wait(p *Proc) {
	if g.env != p.env {
		panic("sim: Wait across environments")
	}
	g.waiters = append(g.waiters, p)
	p.park()
}

// Waiting reports how many processes are blocked on the gate.
func (g *Gate) Waiting() int { return len(g.waiters) }
