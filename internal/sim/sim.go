// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives a set of processes — ordinary Go functions running in
// goroutines — against a virtual clock. Exactly one process runs at a
// time; control is handed back to the kernel whenever a process blocks in
// Sleep, Wait, or Acquire. Events with equal timestamps fire in the order
// they were scheduled, so a simulation is fully deterministic given
// deterministic process code.
//
// The design follows the classic process-interaction style (as in SimPy):
// CoServe's executors, transfer buses, and controllers are written as
// straight-line Go code that sleeps for modeled durations and contends on
// Resources that model physical units (a GPU, a PCIe bus, an SSD).
//
// The event loop is the hottest path of every experiment, so it is kept
// allocation-lean: fired events are recycled on a per-environment free
// list, and the dominant event kinds — Sleep timeouts and unpark wake-ups
// — carry the *Proc to resume directly on the event instead of allocating
// a capturing closure. Pure-callback events (After, AfterFunc) take the
// other dispatch path and run inline on the kernel goroutine with no
// process handoff at all.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration converts t to a time.Duration since simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled kernel action. Exactly one of fn, proc, and msg
// is set: fn is the callback fast path, run inline on the kernel
// goroutine; proc is the wake path, resuming a parked process; msg is
// the typed-message path for cross-partition traffic in a Sharded
// kernel — like proc it allocates no closure, and the payload itself is
// poolable by the sender. Events are pooled on the environment's free
// list, so no field may be read after release.
type event struct {
	at    Time
	seq   int64
	fn    func()  // callback path (After, AfterFunc, process start)
	proc  *Proc   // wake path (Sleep, Unpark) — no closure allocated
	msg   Message // typed cross-partition payload — no closure allocated
	index int     // heap index; -1 once removed from the heap
	next  *event  // free-list link
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// Swap keeps the cached heap indices in sync so Env.Cancel can remove an
// event by index at any time.
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

// Pop clears the removed event's index: a stale index would let a later
// Cancel corrupt the heap by removing whatever event now sits there.
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Env is a simulation environment: a virtual clock plus an event queue.
// The zero value is not usable; create environments with NewEnv.
type Env struct {
	now        Time
	events     eventHeap
	seq        int64
	yield      chan struct{} // process -> kernel handoff
	running    bool
	terminated bool
	nprocs     int

	// parkedHead/parkedTail form an intrusive doubly-linked list of
	// parked processes threaded through Proc.parkedPrev/parkedNext:
	// O(1) insert and remove with zero allocation per park.
	parkedHead, parkedTail *Proc

	// free is the event free list; fired and cancelled events are
	// recycled here so steady-state scheduling allocates nothing.
	free *event

	// shard/shardIdx bind the environment to a Sharded kernel partition;
	// outbox buffers its cross-partition posts during a partition round.
	shard    *Sharded
	shardIdx int
	outbox   []outPost
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// Now reports the current virtual time.
func (e *Env) Now() Time { return e.now }

// newEvent takes an event from the free list (or allocates one), stamps
// it with the next sequence number, and pushes it on the heap.
func (e *Env) newEvent(at Time) *event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (%v < %v)", at, e.now))
	}
	e.seq++
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
	} else {
		ev = &event{}
	}
	ev.at, ev.seq = at, e.seq
	heap.Push(&e.events, ev)
	if ev.index == 0 && e.shard != nil {
		// The partition's frontier moved earlier: keep the Sharded
		// kernel's frontier index in sync (a no-op outside its Run loop's
		// coordinator phases — worker rounds refresh at the barrier).
		e.shard.frontierChanged(e)
	}
	return ev
}

// releaseEvent returns a fired or cancelled event to the free list. The
// sequence number is cleared so stale Timer handles cannot match it.
func (e *Env) releaseEvent(ev *event) {
	ev.fn, ev.proc, ev.msg = nil, nil, nil
	ev.seq = 0
	ev.index = -1
	ev.next = e.free
	e.free = ev
}

// schedule enqueues fn to run at time at.
func (e *Env) schedule(at Time, fn func()) *event {
	ev := e.newEvent(at)
	ev.fn = fn
	return ev
}

// scheduleMsg enqueues a typed message for delivery at time at — the
// closure-free path cross-partition protocols ride on.
func (e *Env) scheduleMsg(at Time, m Message) *event {
	ev := e.newEvent(at)
	ev.msg = m
	return ev
}

// scheduleWake enqueues a closure-free wake-up of p at time at — the
// timer path behind Sleep and Unpark.
func (e *Env) scheduleWake(at Time, p *Proc) *event {
	ev := e.newEvent(at)
	ev.proc = p
	return ev
}

// After schedules fn to run after duration d. It is the callback-style
// counterpart to Proc.Sleep and may be called from process context or
// before Run. The callback runs inline on the kernel goroutine.
func (e *Env) After(d time.Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.schedule(e.now.Add(d), fn)
}

// Timer is a handle to a callback scheduled with AfterFunc. Its zero
// value is an expired handle.
type Timer struct {
	env *Env
	ev  *event
	seq int64 // generation guard: events are pooled and reused
}

// AfterFunc schedules fn to run after duration d, like After, and
// returns a Timer that can revoke the callback via Env.Cancel.
func (e *Env) AfterFunc(d time.Duration, fn func()) Timer {
	if d < 0 {
		panic("sim: negative delay")
	}
	ev := e.schedule(e.now.Add(d), fn)
	return Timer{env: e, ev: ev, seq: ev.seq}
}

// Cancel revokes a pending timer and reports whether it did: false means
// the callback already ran, was already cancelled, or the handle is zero.
// Cancelling a timer on an environment it does not belong to panics,
// like every other cross-environment operation. Cancelling is O(log n) —
// the event is removed from the heap by its cached index and recycled
// immediately.
func (e *Env) Cancel(t Timer) bool {
	ev := t.ev
	if ev == nil {
		return false
	}
	if t.env != e {
		panic("sim: Cancel across environments")
	}
	if ev.seq != t.seq || ev.index < 0 || ev.index >= len(e.events) || e.events[ev.index] != ev {
		return false
	}
	wasHead := ev.index == 0
	heap.Remove(&e.events, ev.index)
	e.releaseEvent(ev)
	if wasHead && e.shard != nil {
		// Cancelling the head raises the partition's frontier — e.g. a
		// crash purge revoking a node-internal timer from the coordinator.
		e.shard.frontierChanged(e)
	}
	return true
}

// popEvent removes and returns the earliest pending event.
func (e *Env) popEvent() *event {
	return heap.Pop(&e.events).(*event)
}

// dispatch fires one popped event: wake events resume their process,
// message events deliver their typed payload, and callback events run
// inline with no goroutine handoff. The event is recycled before firing
// so the handler can immediately reuse it.
func (e *Env) dispatch(ev *event) {
	e.now = ev.at
	if p := ev.proc; p != nil {
		e.releaseEvent(ev)
		e.wake(p)
		return
	}
	if m := ev.msg; m != nil {
		at := ev.at
		e.releaseEvent(ev)
		m.Deliver(at)
		return
	}
	fn := ev.fn
	e.releaseEvent(ev)
	fn()
}

// Run executes events until the queue is empty, then returns the final
// clock value. Processes still blocked when the queue drains are woken
// with a termination panic that the process wrapper absorbs, so Run
// leaves no goroutines behind.
func (e *Env) Run() Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	for len(e.events) > 0 {
		e.dispatch(e.popEvent())
	}
	e.running = false
	e.drain()
	return e.now
}

// RunUntil executes events with timestamps <= deadline and then stops,
// leaving later events queued. It returns the clock value, which is
// deadline if any events remained.
func (e *Env) RunUntil(deadline Time) Time {
	if e.running {
		panic("sim: RunUntil called re-entrantly")
	}
	e.running = true
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.dispatch(e.popEvent())
	}
	e.running = false
	if len(e.events) > 0 && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// terminationSentinel unwinds a parked process when the simulation ends.
type terminationSentinel struct{}

// drain wakes every parked process with a termination panic so their
// goroutines exit. Called once the event queue is empty.
func (e *Env) drain() {
	e.terminated = true
	for e.parkedHead != nil {
		e.wake(e.parkedHead)
	}
}

// Terminated reports whether the environment has finished draining.
func (e *Env) Terminated() bool { return e.terminated }

// Reopen re-arms a drained environment for another round of processes:
// the virtual clock keeps its value, and Go and the blocking operations
// work again. It is the warm-restart hook for serving layers that run
// consecutive streams on one simulated system. Callers are responsible
// for having left no process parked on a Gate, Event, or Resource when
// the previous Run drained — a stale waiter from a killed process would
// corrupt the next round.
func (e *Env) Reopen() {
	if e.running {
		panic("sim: Reopen while running")
	}
	if !e.terminated {
		panic("sim: Reopen before Run drained")
	}
	e.terminated = false
}

// Procs reports the number of processes that have been started and have
// not yet finished.
func (e *Env) Procs() int { return e.nprocs }

// Proc is a simulation process: a goroutine that runs under the kernel's
// control. All blocking methods must be called from the process's own
// goroutine.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   bool

	// Intrusive parked-list links; owned by the environment.
	parkedPrev, parkedNext *Proc
	parked                 bool
}

// Name reports the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go starts fn as a new process at the current virtual time. The process
// begins executing when the kernel reaches its start event.
func (e *Env) Go(name string, fn func(*Proc)) *Proc {
	if e.terminated {
		panic("sim: Go after environment drained")
	}
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.nprocs++
	e.schedule(e.now, func() { e.start(p, fn) })
	return p
}

// start launches the process goroutine and waits for it to park or end.
func (e *Env) start(p *Proc, fn func(*Proc)) {
	//detlint:allow the one process-launch point of the kernel: the goroutine immediately synchronizes on the yield channel, so exactly one process runs at a time
	go func() {
		defer func() {
			p.done = true
			e.nprocs--
			if r := recover(); r != nil {
				if _, ok := r.(terminationSentinel); !ok {
					// Re-panic on the kernel goroutine would be nicer, but
					// a real bug in process code should crash loudly here.
					panic(r)
				}
			}
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	<-e.yield
}

// pushParked appends p to the parked list.
func (e *Env) pushParked(p *Proc) {
	p.parked = true
	p.parkedPrev = e.parkedTail
	p.parkedNext = nil
	if e.parkedTail != nil {
		e.parkedTail.parkedNext = p
	} else {
		e.parkedHead = p
	}
	e.parkedTail = p
}

// removeParked unlinks p from the parked list; a no-op if p is not on it.
func (e *Env) removeParked(p *Proc) {
	if !p.parked {
		return
	}
	if p.parkedPrev != nil {
		p.parkedPrev.parkedNext = p.parkedNext
	} else {
		e.parkedHead = p.parkedNext
	}
	if p.parkedNext != nil {
		p.parkedNext.parkedPrev = p.parkedPrev
	} else {
		e.parkedTail = p.parkedPrev
	}
	p.parkedPrev, p.parkedNext = nil, nil
	p.parked = false
}

// wake resumes a parked process on the kernel goroutine and blocks until
// it parks again or finishes.
func (e *Env) wake(p *Proc) {
	e.removeParked(p)
	p.resume <- struct{}{}
	<-e.yield
}

// park hands control to the kernel and blocks until resumed. It panics
// with a termination sentinel if the environment drained while parked.
func (p *Proc) park() {
	p.env.pushParked(p)
	p.env.yield <- struct{}{}
	<-p.resume
	if p.env.terminated {
		panic(terminationSentinel{})
	}
}

// unpark schedules p to resume at the current virtual time.
func (p *Proc) unpark() {
	p.env.removeParked(p)
	p.env.scheduleWake(p.env.now, p)
}

// Sleep blocks the process for virtual duration d. The wake-up is a
// pooled, closure-free timer event: steady-state sleeping allocates
// nothing.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.env.scheduleWake(p.env.now.Add(d), p)
	p.park()
}

// Yield lets every other runnable process scheduled at the current time
// run before p continues. Equivalent to Sleep(0) but states intent.
func (p *Proc) Yield() { p.Sleep(0) }

// Park blocks the process until some other component calls Unpark. It is
// a building block for synchronization primitives defined outside this
// package (for example, memory arenas with blocking reservations).
func (p *Proc) Park() { p.park() }

// Unpark schedules a parked process to resume at the current virtual
// time. Calling Unpark for a process that is not parked corrupts the
// kernel state; callers must pair it with Park.
func (p *Proc) Unpark() { p.unpark() }
