// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives a set of processes — ordinary Go functions running in
// goroutines — against a virtual clock. Exactly one process runs at a
// time; control is handed back to the kernel whenever a process blocks in
// Sleep, Wait, or Acquire. Events with equal timestamps fire in the order
// they were scheduled, so a simulation is fully deterministic given
// deterministic process code.
//
// The design follows the classic process-interaction style (as in SimPy):
// CoServe's executors, transfer buses, and controllers are written as
// straight-line Go code that sleeps for modeled durations and contends on
// Resources that model physical units (a GPU, a PCIe bus, an SSD).
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration converts t to a time.Duration since simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled kernel action.
type event struct {
	at        Time
	seq       int64
	fn        func()
	cancelled bool
	index     int // heap index
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Env is a simulation environment: a virtual clock plus an event queue.
// The zero value is not usable; create environments with NewEnv.
type Env struct {
	now        Time
	events     eventHeap
	seq        int64
	yield      chan struct{} // process -> kernel handoff
	running    bool
	terminated bool
	parked     map[*Proc]struct{}
	nprocs     int
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{
		yield:  make(chan struct{}),
		parked: make(map[*Proc]struct{}),
	}
}

// Now reports the current virtual time.
func (e *Env) Now() Time { return e.now }

// schedule enqueues fn to run at time at. It returns the event so callers
// may cancel it.
func (e *Env) schedule(at Time, fn func()) *event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (%v < %v)", at, e.now))
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run after duration d. It is the callback-style
// counterpart to Proc.Sleep and may be called from process context or
// before Run.
func (e *Env) After(d time.Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.schedule(e.now.Add(d), fn)
}

// Run executes events until the queue is empty, then returns the final
// clock value. Processes still blocked when the queue drains are woken
// with a termination panic that the process wrapper absorbs, so Run
// leaves no goroutines behind.
func (e *Env) Run() Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
	}
	e.running = false
	e.drain()
	return e.now
}

// RunUntil executes events with timestamps <= deadline and then stops,
// leaving later events queued. It returns the clock value, which is
// deadline if any events remained.
func (e *Env) RunUntil(deadline Time) Time {
	if e.running {
		panic("sim: RunUntil called re-entrantly")
	}
	e.running = true
	for len(e.events) > 0 && e.events[0].at <= deadline {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
	}
	e.running = false
	if len(e.events) > 0 && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// terminationSentinel unwinds a parked process when the simulation ends.
type terminationSentinel struct{}

// drain wakes every parked process with a termination panic so their
// goroutines exit. Called once the event queue is empty.
func (e *Env) drain() {
	e.terminated = true
	for p := range e.parked {
		delete(e.parked, p)
		p.resume <- struct{}{}
		<-e.yield
	}
}

// Terminated reports whether the environment has finished draining.
func (e *Env) Terminated() bool { return e.terminated }

// Reopen re-arms a drained environment for another round of processes:
// the virtual clock keeps its value, and Go and the blocking operations
// work again. It is the warm-restart hook for serving layers that run
// consecutive streams on one simulated system. Callers are responsible
// for having left no process parked on a Gate, Event, or Resource when
// the previous Run drained — a stale waiter from a killed process would
// corrupt the next round.
func (e *Env) Reopen() {
	if e.running {
		panic("sim: Reopen while running")
	}
	if !e.terminated {
		panic("sim: Reopen before Run drained")
	}
	e.terminated = false
}

// Procs reports the number of processes that have been started and have
// not yet finished.
func (e *Env) Procs() int { return e.nprocs }

// Proc is a simulation process: a goroutine that runs under the kernel's
// control. All blocking methods must be called from the process's own
// goroutine.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   bool
}

// Name reports the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go starts fn as a new process at the current virtual time. The process
// begins executing when the kernel reaches its start event.
func (e *Env) Go(name string, fn func(*Proc)) *Proc {
	if e.terminated {
		panic("sim: Go after environment drained")
	}
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.nprocs++
	e.schedule(e.now, func() { e.start(p, fn) })
	return p
}

// start launches the process goroutine and waits for it to park or end.
func (e *Env) start(p *Proc, fn func(*Proc)) {
	go func() {
		defer func() {
			p.done = true
			e.nprocs--
			if r := recover(); r != nil {
				if _, ok := r.(terminationSentinel); !ok {
					// Re-panic on the kernel goroutine would be nicer, but
					// a real bug in process code should crash loudly here.
					panic(r)
				}
			}
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	<-e.yield
}

// park hands control to the kernel and blocks until resumed. It panics
// with a termination sentinel if the environment drained while parked.
func (p *Proc) park() {
	p.env.parked[p] = struct{}{}
	p.env.yield <- struct{}{}
	<-p.resume
	if p.env.terminated {
		panic(terminationSentinel{})
	}
}

// unpark schedules p to resume at the current virtual time.
func (p *Proc) unpark() {
	delete(p.env.parked, p)
	p.env.schedule(p.env.now, func() {
		p.resume <- struct{}{}
		<-p.env.yield
	})
}

// Sleep blocks the process for virtual duration d.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	env := p.env
	env.schedule(env.now.Add(d), func() {
		delete(env.parked, p)
		p.resume <- struct{}{}
		<-env.yield
	})
	env.parked[p] = struct{}{}
	env.yield <- struct{}{}
	<-p.resume
	if env.terminated {
		panic(terminationSentinel{})
	}
}

// Yield lets every other runnable process scheduled at the current time
// run before p continues. Equivalent to Sleep(0) but states intent.
func (p *Proc) Yield() { p.Sleep(0) }

// Park blocks the process until some other component calls Unpark. It is
// a building block for synchronization primitives defined outside this
// package (for example, memory arenas with blocking reservations).
func (p *Proc) Park() { p.park() }

// Unpark schedules a parked process to resume at the current virtual
// time. Calling Unpark for a process that is not parked corrupts the
// kernel state; callers must pair it with Park.
func (p *Proc) Unpark() { p.unpark() }
