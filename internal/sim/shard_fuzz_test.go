package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// This file pins the pooled-message path's determinism contract the way
// shard_test.go pins the closure path's: a randomized schedule of
// cross-partition message chains — hops between worker partitions, hops
// through the coordinator, self-posts, local timer churn with immediate
// head cancels — must produce byte-identical logs and an identical
// final clock at every worker count. All randomness is drawn up front
// into a plain schedule value; the simulation itself reads only that
// schedule, so any divergence is the kernel's fault, not the test's.

// fuzzHop is one pre-drawn step of a message chain.
type fuzzHop struct {
	target int           // partition the hop is delivered to
	delay  time.Duration // extra delay past the mandatory lookahead
	local  time.Duration // >0: arm a local AfterFunc on delivery
	cancel bool          // cancel that local timer immediately
}

// fuzzSchedule is everything a run needs, fixed before Run starts.
type fuzzSchedule struct {
	nparts int
	la     time.Duration
	starts []time.Duration // chain launch times (coordinator clock)
	chains [][]fuzzHop
}

// genFuzzSchedule pre-draws a schedule from a seed. The draw order is
// fixed, so one seed means one schedule — worker counts share it.
func genFuzzSchedule(seed int64) fuzzSchedule {
	rng := rand.New(rand.NewSource(seed))
	sc := fuzzSchedule{
		nparts: 3 + rng.Intn(6), // 1 coordinator + 2..7 workers
		la:     time.Duration(1+rng.Intn(10)) * time.Millisecond,
	}
	nchains := 4 + rng.Intn(12)
	for c := 0; c < nchains; c++ {
		sc.starts = append(sc.starts, time.Duration(rng.Intn(40))*time.Millisecond)
		hops := make([]fuzzHop, 1+rng.Intn(12))
		for i := range hops {
			h := &hops[i]
			// Mostly worker partitions, sometimes the coordinator — hops
			// through partition 0 exercise direct insertion and the
			// frontier hooks outside rounds.
			if rng.Intn(5) == 0 {
				h.target = 0
			} else {
				h.target = 1 + rng.Intn(sc.nparts-1)
			}
			h.delay = time.Duration(rng.Intn(2000)) * time.Microsecond
			if rng.Intn(3) == 0 {
				h.local = time.Duration(1+rng.Intn(3000)) * time.Microsecond
				h.cancel = rng.Intn(2) == 0
			}
		}
		sc.chains = append(sc.chains, hops)
	}
	return sc
}

// fuzzNet runs one schedule on one kernel, logging every delivery and
// timer firing per partition. Messages recycle through per-partition
// free lists exactly like a real protocol would, so the run exercises
// allocation-free steady-state delivery.
type fuzzNet struct {
	s    *Sharded
	sc   fuzzSchedule
	logs [][]string
	free []*fuzzMsg
}

type fuzzMsg struct {
	n     *fuzzNet
	chain int
	hop   int
	part  int // delivery partition
	next  *fuzzMsg
}

func (n *fuzzNet) newMsg(part int) *fuzzMsg {
	m := n.free[part]
	if m == nil {
		return &fuzzMsg{n: n}
	}
	n.free[part] = m.next
	m.next = nil
	return m
}

func (m *fuzzMsg) Deliver(at Time) {
	n := m.n
	chain, hop, part := m.chain, m.hop, m.part
	env := n.s.Part(part)
	src := n.s.PosterPartition(env)
	m.next = n.free[src]
	n.free[src] = m
	n.logs[part] = append(n.logs[part], fmt.Sprintf("c%d h%d @%v", chain, hop, at.Duration()))
	h := n.sc.chains[chain][hop]
	if h.local > 0 {
		tm := env.AfterFunc(h.local, func() {
			n.logs[part] = append(n.logs[part], fmt.Sprintf("c%d h%d timer @%v", chain, hop, env.Now().Duration()))
		})
		if h.cancel {
			// Immediate cancel: arms and revokes in one instant — from the
			// coordinator this exercises the head-cancel frontier hook.
			env.Cancel(tm)
		}
	}
	if hop+1 < len(n.sc.chains[chain]) {
		nx := n.sc.chains[chain][hop+1]
		nm := n.newMsg(src)
		nm.chain, nm.hop, nm.part = chain, hop+1, nx.target
		n.s.PostMsg(env, nx.target, at.Add(n.sc.la+nx.delay), nm)
	}
}

// runFuzzNet executes the schedule at the given worker count and
// returns the flattened per-partition logs plus the final clock.
func runFuzzNet(sc fuzzSchedule, workers int) ([]string, Time) {
	n := &fuzzNet{
		s:    NewSharded(sc.nparts, workers, sc.la),
		sc:   sc,
		logs: make([][]string, sc.nparts),
		free: make([]*fuzzMsg, sc.nparts),
	}
	coord := n.s.Part(0)
	for c := range sc.chains {
		m := n.newMsg(0)
		m.chain, m.hop, m.part = c, 0, sc.chains[c][0].target
		n.s.PostMsg(coord, m.part, Time(sc.starts[c]), m)
	}
	end := n.s.Run()
	var flat []string
	for p := range n.logs {
		for _, line := range n.logs[p] {
			flat = append(flat, fmt.Sprintf("p%d %s", p, line))
		}
	}
	return flat, end
}

// checkFuzzSeed asserts one schedule is byte-identical across worker
// counts {1, 2, 3, GOMAXPROCS}, with workers=1 as the reference.
func checkFuzzSeed(t *testing.T, seed int64) {
	t.Helper()
	sc := genFuzzSchedule(seed)
	ref, refEnd := runFuzzNet(sc, 1)
	if len(ref) == 0 {
		t.Fatalf("seed %d: schedule produced no deliveries", seed)
	}
	for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0)} {
		got, gotEnd := runFuzzNet(sc, workers)
		if gotEnd != refEnd {
			t.Fatalf("seed %d: final clock %v at workers=%d, want %v (workers=1)",
				seed, gotEnd.Duration(), workers, refEnd.Duration())
		}
		if len(got) != len(ref) {
			t.Fatalf("seed %d: %d log lines at workers=%d, want %d", seed, len(got), workers, len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("seed %d: log line %d at workers=%d:\n got %q\nwant %q",
					seed, i, workers, got[i], ref[i])
			}
		}
	}
}

// TestShardedPooledMessageDeterminism is the property test: a spread of
// fixed seeds, each a full randomized schedule.
func TestShardedPooledMessageDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		checkFuzzSeed(t, seed)
	}
}

// FuzzShardedPooledMessageDeterminism lets the fuzzer hunt for a
// schedule that breaks worker-count independence; the seed corpus runs
// under plain go test.
func FuzzShardedPooledMessageDeterminism(f *testing.F) {
	f.Add(int64(42))
	f.Add(int64(20260807))
	f.Add(int64(-1))
	f.Fuzz(func(t *testing.T, seed int64) {
		checkFuzzSeed(t, seed)
	})
}
