package sim

import "time"

// Resource models a unit of physical capacity — a GPU compute engine, a
// PCIe bus, an SSD controller — that at most cap processes may hold
// simultaneously. Contending processes queue in FIFO order, which keeps
// simulations deterministic.
type Resource struct {
	env     *Env
	name    string
	cap     int
	inUse   int
	waiters []*Proc

	// accounting
	busy      time.Duration // cumulative held time x units
	lastTouch Time
	acquired  map[*Proc]Time
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{
		env:      env,
		name:     name,
		cap:      capacity,
		acquired: make(map[*Proc]Time),
	}
}

// Name reports the resource name.
func (r *Resource) Name() string { return r.name }

// Cap reports the resource capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire blocks p until a unit is free, then takes it. A process must
// not acquire the same resource twice without releasing.
func (r *Resource) Acquire(p *Proc) {
	if p.env != r.env {
		panic("sim: Acquire across environments")
	}
	if _, held := r.acquired[p]; held {
		panic("sim: " + p.name + " re-acquired resource " + r.name)
	}
	for r.inUse >= r.cap {
		r.waiters = append(r.waiters, p)
		p.park()
	}
	r.inUse++
	r.acquired[p] = r.env.now
}

// TryAcquire takes a unit if one is free and reports whether it did.
func (r *Resource) TryAcquire(p *Proc) bool {
	if r.inUse >= r.cap {
		return false
	}
	r.inUse++
	r.acquired[p] = r.env.now
	return true
}

// Release returns p's unit and wakes the first waiter, if any.
func (r *Resource) Release(p *Proc) {
	since, held := r.acquired[p]
	if !held {
		panic("sim: " + p.name + " released resource " + r.name + " it does not hold")
	}
	delete(r.acquired, p)
	r.busy += r.env.now.Sub(since)
	r.inUse--
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		next.unpark()
	}
}

// Use acquires the resource, holds it for duration d of virtual time, and
// releases it. It is the common pattern for modeling an operation that
// occupies a physical unit.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release(p)
}

// BusyTime reports the cumulative virtual time units of the resource
// have been held (unit-seconds; divide by Cap for utilization).
func (r *Resource) BusyTime() time.Duration { return r.busy }
