package sim

import "time"

// holder records one process's claim on a resource unit and when it took
// it. Holders live in a small slice instead of a map: capacities are tiny
// (usually 1), so a linear scan beats hashing on the acquire/release hot
// path and allocates nothing in steady state.
type holder struct {
	p     *Proc
	since Time
}

// Resource models a unit of physical capacity — a GPU compute engine, a
// PCIe bus, an SSD controller — that at most cap processes may hold
// simultaneously. Contending processes queue in FIFO order, which keeps
// simulations deterministic.
type Resource struct {
	env     *Env
	name    string
	cap     int
	holders []holder
	waiters []*Proc

	// accounting
	busy time.Duration // cumulative held time x units
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{
		env:     env,
		name:    name,
		cap:     capacity,
		holders: make([]holder, 0, capacity),
	}
}

// Name reports the resource name.
func (r *Resource) Name() string { return r.name }

// Cap reports the resource capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return len(r.holders) }

// QueueLen reports the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// holderIndex returns the index of p's claim, or -1.
func (r *Resource) holderIndex(p *Proc) int {
	for i := range r.holders {
		if r.holders[i].p == p {
			return i
		}
	}
	return -1
}

// Acquire blocks p until a unit is free, then takes it. A process must
// not acquire the same resource twice without releasing.
func (r *Resource) Acquire(p *Proc) {
	if p.env != r.env {
		panic("sim: Acquire across environments")
	}
	if r.holderIndex(p) >= 0 {
		panic("sim: " + p.name + " re-acquired resource " + r.name)
	}
	for len(r.holders) >= r.cap {
		r.waiters = append(r.waiters, p)
		p.park()
	}
	r.holders = append(r.holders, holder{p: p, since: r.env.now})
}

// TryAcquire takes a unit if one is free and reports whether it did.
func (r *Resource) TryAcquire(p *Proc) bool {
	if len(r.holders) >= r.cap {
		return false
	}
	r.holders = append(r.holders, holder{p: p, since: r.env.now})
	return true
}

// Release returns p's unit and wakes the first waiter, if any.
func (r *Resource) Release(p *Proc) {
	i := r.holderIndex(p)
	if i < 0 {
		panic("sim: " + p.name + " released resource " + r.name + " it does not hold")
	}
	r.busy += r.env.now.Sub(r.holders[i].since)
	last := len(r.holders) - 1
	r.holders[i] = r.holders[last]
	r.holders[last] = holder{}
	r.holders = r.holders[:last]
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		// Shift down instead of re-slicing forward: the buffer keeps its
		// front capacity, so the waiter queue stops allocating once it has
		// grown to the steady-state contention level.
		copy(r.waiters, r.waiters[1:])
		r.waiters[len(r.waiters)-1] = nil
		r.waiters = r.waiters[:len(r.waiters)-1]
		next.unpark()
	}
}

// Use acquires the resource, holds it for duration d of virtual time, and
// releases it. It is the common pattern for modeling an operation that
// occupies a physical unit.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release(p)
}

// BusyTime reports the cumulative virtual time units of the resource
// have been held (unit-seconds; divide by Cap for utilization).
func (r *Resource) BusyTime() time.Duration { return r.busy }
