package sim

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"
	"time"
)

// FaultKind is one node-lifecycle transition a fault plan can inject.
type FaultKind int

const (
	// FaultCrash kills a node abruptly: queued and in-flight work on it
	// is voided and must be redelivered by whoever dispatched it.
	FaultCrash FaultKind = iota
	// FaultDrain takes a node out of routing gracefully: it accepts no
	// new work but finishes what it already holds.
	FaultDrain
	// FaultRecover returns a crashed node to service, cancels a drain, or
	// clears a gray degradation (slow/jitter) from an otherwise-up node.
	FaultRecover

	// The kinds below are gray (performance) faults: the node stays Up
	// and keeps its state, but its executors run against scaled timings.
	// A gray fault is cleared by FaultRecover, replaced by a later gray
	// event on the same node, or wiped by a crash (restart resets it).

	// FaultSlow multiplies the node's per-batch service time by Factor
	// (> 1) until recovered — the classic fail-slow straggler.
	FaultSlow
	// FaultJitter inflates each batch's service time by a seeded random
	// factor uniform in [1, Factor] — noisy degradation rather than a
	// constant slowdown. The per-node RNG is seeded from the event, so
	// runs stay byte-identical.
	FaultJitter
	// FaultStall freezes the node for the window For: batches starting
	// inside the window do not finish before it ends. The node loses no
	// state and resumes by itself — no recover event is needed.
	FaultStall
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultDrain:
		return "drain"
	case FaultRecover:
		return "recover"
	case FaultSlow:
		return "slow"
	case FaultJitter:
		return "jitter"
	case FaultStall:
		return "stall"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultEvent is one scheduled lifecycle transition: at offset At from the
// stream start, node Node undergoes Kind. Factor parameterizes the gray
// kinds FaultSlow and FaultJitter (service-time multiplier, > 1); For is
// FaultStall's freeze window. Both are zero for the fail-stop kinds.
type FaultEvent struct {
	At     time.Duration
	Node   int
	Kind   FaultKind
	Factor float64
	For    time.Duration
}

// FaultPlan is a deterministic schedule of node lifecycle transitions.
// The env owner (the cluster layer) fires the events from a process of
// the shared env, so a given plan produces byte-identical runs. A nil or
// empty plan means no faults — the zero-fault configuration.
type FaultPlan struct {
	Events []FaultEvent
}

// Empty reports whether the plan injects nothing.
func (p *FaultPlan) Empty() bool { return p == nil || len(p.Events) == 0 }

// sortEvents orders the plan by time, breaking ties by declaration order
// (stable), so equal-instant events fire deterministically.
//
// The tie-break is load-bearing and part of the plan contract: two events
// at the same offset fire in the order they appear in Events *before the
// sort* — declaration order for scripted plans, per-node generation order
// for GenerateFaultPlan, and scripted-then-generated when a caller
// appends a generated schedule onto a scripted one. The stable sort
// (slices.SortStableFunc, never slices.SortFunc) is what preserves it;
// fault_test.go pins the guarantee for all three plan shapes.
func (p *FaultPlan) sortEvents() {
	slices.SortStableFunc(p.Events, func(a, b FaultEvent) int {
		return cmp.Compare(a.At, b.At)
	})
}

// Validate sorts the plan by event time (stable, so equal-instant events
// keep declaration order) and checks it against a fleet of nodes: every
// event must name a node in [0, nodes), carry a non-negative offset, and
// follow the per-node lifecycle state machine — starting Up, a node may
// crash (Up or Draining → Down), drain (Up → Draining), or recover
// (Down or Draining → Up, or clearing a gray degradation from an Up
// node). Gray kinds apply to any node that is not Down: slow and jitter
// need Factor > 1 and mark the node degraded until a recover, a
// replacement gray event, or a crash; stall needs For > 0 and is
// self-clearing.
func (p *FaultPlan) Validate(nodes int) error {
	if p.Empty() {
		return nil
	}
	p.sortEvents()
	const (
		up = iota
		draining
		down
	)
	state := make([]int, nodes)
	degraded := make([]bool, nodes)
	for i, ev := range p.Events {
		if ev.Node < 0 || ev.Node >= nodes {
			return fmt.Errorf("sim: fault plan event %d names node %d outside fleet of %d", i, ev.Node, nodes)
		}
		if ev.At < 0 {
			return fmt.Errorf("sim: fault plan event %d (%s node %d) at negative offset %v", i, ev.Kind, ev.Node, ev.At)
		}
		s := state[ev.Node]
		switch ev.Kind {
		case FaultCrash:
			if s == down {
				return fmt.Errorf("sim: fault plan event %d crashes node %d which is already down", i, ev.Node)
			}
			state[ev.Node] = down
			degraded[ev.Node] = false
		case FaultDrain:
			if s != up {
				return fmt.Errorf("sim: fault plan event %d drains node %d which is not up", i, ev.Node)
			}
			state[ev.Node] = draining
		case FaultRecover:
			if s == up && !degraded[ev.Node] {
				return fmt.Errorf("sim: fault plan event %d recovers node %d which is already up", i, ev.Node)
			}
			state[ev.Node] = up
			degraded[ev.Node] = false
		case FaultSlow, FaultJitter:
			if s == down {
				return fmt.Errorf("sim: fault plan event %d applies %s to node %d which is down", i, ev.Kind, ev.Node)
			}
			if ev.Factor <= 1 {
				return fmt.Errorf("sim: fault plan event %d (%s node %d) needs Factor > 1, got %g", i, ev.Kind, ev.Node, ev.Factor)
			}
			degraded[ev.Node] = true
		case FaultStall:
			if s == down {
				return fmt.Errorf("sim: fault plan event %d stalls node %d which is down", i, ev.Node)
			}
			if ev.For <= 0 {
				return fmt.Errorf("sim: fault plan event %d (stall node %d) needs For > 0, got %v", i, ev.Node, ev.For)
			}
		default:
			return fmt.Errorf("sim: fault plan event %d has unknown kind %d", i, int(ev.Kind))
		}
	}
	return nil
}

// GenerateFaultPlan builds an MTBF-style schedule: each node alternates
// exponentially distributed up intervals (mean mtbf) and down intervals
// (mean mttr), crashing and recovering, until its next crash would fall
// past the horizon. A crash inside the horizon always gets its matching
// recover event — possibly past the horizon — so generated plans never
// strand voided work with the whole fleet down forever. The schedule is
// a pure function of its arguments (seeded math/rand), so a given
// configuration yields a byte-identical run.
func GenerateFaultPlan(nodes int, mtbf, mttr, horizon time.Duration, seed int64) (*FaultPlan, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("sim: GenerateFaultPlan needs at least one node, got %d", nodes)
	}
	if mtbf <= 0 || mttr <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("sim: GenerateFaultPlan needs positive mtbf, mttr, and horizon (got %v, %v, %v)", mtbf, mttr, horizon)
	}
	rng := rand.New(rand.NewSource(seed))
	p := &FaultPlan{}
	for node := 0; node < nodes; node++ {
		t := time.Duration(0)
		for {
			t += time.Duration(rng.ExpFloat64() * float64(mtbf))
			if t >= horizon {
				break
			}
			p.Events = append(p.Events, FaultEvent{At: t, Node: node, Kind: FaultCrash})
			t += time.Duration(rng.ExpFloat64() * float64(mttr))
			p.Events = append(p.Events, FaultEvent{At: t, Node: node, Kind: FaultRecover})
			if t >= horizon {
				break
			}
		}
	}
	p.sortEvents()
	return p, nil
}

// Run walks the plan from the current virtual time, sleeping to each
// event's offset (relative to the process's time at entry) and handing
// it to fire. It is the body of the env owner's fault-injection process;
// equal-offset events fire back to back at the same instant, in plan
// order.
func (p *FaultPlan) Run(proc *Proc, fire func(FaultEvent)) {
	if p.Empty() {
		return
	}
	start := proc.Now()
	for _, ev := range p.Events {
		due := start.Add(ev.At)
		if wait := due.Sub(proc.Now()); wait > 0 {
			proc.Sleep(wait)
		}
		fire(ev)
	}
}
