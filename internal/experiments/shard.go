package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// shardSLO is the per-request objective the sharded-kernel experiment
// scores against — the grayfail objective, since the hardest scenario
// reuses that fault class.
const shardSLO = 3 * time.Second

// shardInterconnect is the hop model the experiment serves over: the
// front end shares a board with the first two nodes and reaches the
// rest over a slower link. Enabling it is what moves the fleet onto
// the sharded kernel — every offer and completion becomes a timed
// event crossing a partition boundary.
var shardInterconnect = cluster.Interconnect{
	Dispatch:   200 * time.Microsecond,
	IntraBoard: 100 * time.Microsecond,
	InterNode:  600 * time.Microsecond,
	BoardSize:  2,
}

// shardScenario is one row of the experiment: a fault script (possibly
// empty) with the mitigation stack sized to it.
type shardScenario struct {
	name   string
	plan   *sim.FaultPlan
	health cluster.HealthConfig
	hedge  cluster.HedgeConfig
}

func shardScenarios() []shardScenario {
	breaker := cluster.HealthConfig{
		Window:   500 * time.Millisecond,
		Breaker:  true,
		Cooldown: 8,
		Probes:   3,
	}
	return []shardScenario{
		{name: "steady"},
		{name: "chaos", plan: &sim.FaultPlan{Events: []sim.FaultEvent{
			{At: 2 * time.Second, Node: 1, Kind: sim.FaultCrash},
			{At: 6 * time.Second, Node: 1, Kind: sim.FaultRecover},
			{At: 8 * time.Second, Node: 2, Kind: sim.FaultDrain},
			{At: 14 * time.Second, Node: 2, Kind: sim.FaultRecover},
		}}},
		{name: "grayfail", plan: &sim.FaultPlan{Events: []sim.FaultEvent{
			{At: time.Second, Node: 1, Kind: sim.FaultSlow, Factor: 150},
			{At: time.Second, Node: 2, Kind: sim.FaultSlow, Factor: 150},
			{At: 25 * time.Second, Node: 1, Kind: sim.FaultRecover},
			{At: 25 * time.Second, Node: 2, Kind: sim.FaultRecover},
		}}, health: breaker, hedge: cluster.HedgeConfig{After: time.Second}},
	}
}

// ServeShard serves a 4-node fleet over a non-zero interconnect — the
// configuration that engages the sharded deterministic kernel: the
// front end and every node simulate in their own partitions, advanced
// in parallel under the interconnect's conservative lookahead. Three
// scenarios run: a steady stream, a crash/drain/recover script, and a
// fail-slow script under breaker + hedge. Every row hard-fails unless
// completion accounting is exactly-once, and the rendered table is
// byte-identical at every Context.SetShards setting — `make
// shard-determinism` diffs it at shards 1, 2, and GOMAXPROCS.
func ServeShard(ctx *Context) (*Table, error) {
	t := &Table{
		ID: "serve-shard",
		// The title deliberately omits the shard setting: `make
		// shard-determinism` byte-diffs this table across worker counts,
		// so nothing host- or setting-dependent may reach the rendered
		// bytes.
		Title: fmt.Sprintf("Sharded kernel: 4-node fleet over a %v/%v intra/inter-board interconnect, affinity router, NUMA board A, Poisson 8 req/s (SLO %v)",
			shardInterconnect.IntraBoard, shardInterconnect.InterNode, shardSLO),
		Columns: []string{"scenario", "completions", "slo attainment", "p95",
			"bounced", "dup acks", "redelivered", "hedges"},
		Notes: []string{
			"interconnect: dispatch 200µs + 100µs intra-board (nodes 0-1) or 600µs inter-board (nodes 2-3), each way; offers and completion acks are timed events between the front end's partition and the nodes'",
			"the kernel advances partitions in parallel under conservative lookahead (the cheapest hop); the report is byte-identical at every shard count — the table carries no worker-count artifacts",
			"bounced: offers that crossed the wire into a node no longer Up and were re-routed; dup acks: completions that crossed a crash on the wire after redelivery — counted, never double-completed",
			"every row asserts exactly-once completion accounting and leak-free hedge accounting",
		},
	}
	board, err := ctx.Board(workload.BoardA())
	if err != nil {
		return nil, err
	}
	rows, err := runner.Sweep(ctx.par, shardScenarios(), func(_ int, sc shardScenario) ([]string, error) {
		nodeCfg, err := ctx.serveConfig(hw.NUMADevice(), core.CoServe)
		if err != nil {
			return nil, err
		}
		nodeCfg.SLO = shardSLO
		router, err := cluster.RouterByName("affinity")
		if err != nil {
			return nil, err
		}
		placement, err := cluster.PlacementByName("partition")
		if err != nil {
			return nil, err
		}
		cl, err := cluster.New(cluster.Config{
			Nodes:        cluster.Uniform(4, nodeCfg),
			Router:       router,
			Placement:    placement,
			SLO:          shardSLO,
			Faults:       sc.plan,
			Health:       sc.health,
			Hedge:        sc.hedge,
			Interconnect: shardInterconnect,
			Shards:       ctx.Shards(),
		}, board.Model)
		if err != nil {
			return nil, err
		}
		src, err := workload.Poisson{
			Name: "cluster-poisson", Board: board,
			Rate: 8, N: 240, Seed: 20260730,
		}.NewSource()
		if err != nil {
			return nil, err
		}
		rep, err := cl.Serve(src)
		if err != nil {
			return nil, fmt.Errorf("serve-shard %s: %w", sc.name, err)
		}
		// Exactly-once acceptance: every admitted request resolves exactly
		// once even with offers, acks, and crashes racing on the wire. A
		// crash can terminally reject a redelivery, so completions +
		// terminal rejections must cover every arrival.
		if rep.N != 240 || rep.Completions+rep.RedeliveredRejected != rep.N {
			return nil, fmt.Errorf("serve-shard %s: %d arrivals, %d completions + %d terminally rejected, want all 240 resolved",
				sc.name, rep.N, rep.Completions, rep.RedeliveredRejected)
		}
		if rep.HedgeWasted+rep.HedgesVoided != rep.HedgesFired || rep.HedgeWins > rep.HedgesFired {
			return nil, fmt.Errorf("serve-shard %s: hedge accounting leaks: %d fired, %d wins, %d wasted + %d voided",
				sc.name, rep.HedgesFired, rep.HedgeWins, rep.HedgeWasted, rep.HedgesVoided)
		}
		return []string{
			sc.name,
			fmt.Sprintf("%d/%d", rep.Completions, rep.N),
			fmt.Sprintf("%.1f%%", 100*rep.SLOAttainment),
			fmt.Sprintf("%.3fs", rep.Latency.P95),
			fmt.Sprintf("%d", rep.Bounced),
			fmt.Sprintf("%d", rep.DupAcks),
			fmt.Sprintf("%d", rep.Redelivered),
			fmt.Sprintf("%d", rep.HedgesFired),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
