package experiments

import (
	"fmt"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/runner"
	"repro/internal/workload"
)

// overloadHorizon is the steady-state window each serve-overload point
// offers load for; the system then drains whatever it admitted.
const overloadHorizon = 10 * time.Second

// overloadPolicies names the admission policies the overload sweep
// compares; the table's policy column comes from each built policy's
// own Name(), so the knobs below have a single source of truth.
func overloadPolicies() []string {
	return []string{"accept", "bounded", "token", "shed"}
}

// newOverloadPolicy builds a fresh policy instance for one sweep point
// (policies carry per-stream state, so points must not share them).
// Knobs are sized to CoServe casual's capacity on the NUMA device (it
// saturates near 12 img/s on board A, see serve-load): the queue bound
// caps the backlog at a few seconds of service, the token bucket admits
// at just under capacity, and shedding drops requests predicted to miss
// the serve SLO.
func newOverloadPolicy(name string) (control.AdmissionPolicy, error) {
	return control.PolicyByName(name, control.PolicyOptions{
		QueueBound: 32,
		Rate:       10, Burst: 5,
		Objective: serveSLO,
	})
}

// ServeOverload sweeps offered steady-state load through the saturation
// knee and compares admission policies: past the knee, accept-all's
// queues and latencies grow with the backlog while the rejecting
// policies hold the backlog bounded and keep the admitted requests'
// attainment up — trading a nonzero rejection rate for goodput
// (SLO-meeting completions per second). Each (rate, policy) point is an
// independent System fed an infinite Steady source bounded by a
// horizon, so every point is one job and the table is byte-identical at
// every worker count.
func ServeOverload(ctx *Context) (*Table, error) {
	t := &Table{
		ID:    "serve-overload",
		Title: fmt.Sprintf("Overload: admission policies vs offered steady load, NUMA board A, CoServe casual (SLO %v, %v horizon)", serveSLO, overloadHorizon),
		Columns: []string{"offered req/s", "policy", "offered", "admitted", "rejected", "reject%",
			"goodput", "attainment", "p99", "peak queue"},
		Notes: []string{
			"offered load runs for the horizon; goodput = SLO-meeting completions per second of makespan",
			"past the saturation knee accept-all admits everything and attainment collapses; the rejecting policies bound the backlog (peak queue) and shed the excess",
		},
	}
	board, err := ctx.Board(workload.BoardA())
	if err != nil {
		return nil, err
	}
	type pointJob struct {
		rate   float64
		policy string
	}
	var jobs []pointJob
	for _, rate := range []float64{2, 10, 40} {
		for _, p := range overloadPolicies() {
			jobs = append(jobs, pointJob{rate, p})
		}
	}
	rows, err := runner.Sweep(ctx.par, jobs, func(_ int, j pointJob) ([]string, error) {
		cfg, err := ctx.serveConfig(hw.NUMADevice(), core.CoServe)
		if err != nil {
			return nil, err
		}
		cfg.Admission, err = newOverloadPolicy(j.policy)
		if err != nil {
			return nil, err
		}
		label := cfg.Admission.Name()
		cfg.Window = 500 * time.Millisecond
		sys, err := core.NewSystem(cfg, board.Model)
		if err != nil {
			return nil, err
		}
		src, err := workload.Steady{
			Name: fmt.Sprintf("steady-%g", j.rate), Board: board,
			Rate: j.rate, Seed: 20260729,
		}.NewSource()
		if err != nil {
			return nil, err
		}
		rep, err := sys.Serve(workload.Horizon(src, overloadHorizon))
		if err != nil {
			return nil, fmt.Errorf("serve-overload %s @%g: %w", label, j.rate, err)
		}
		goodput := rep.SLOAttainment * rep.Throughput
		return []string{
			fmt.Sprintf("%g", j.rate), label,
			fmt.Sprintf("%d", rep.Offered),
			fmt.Sprintf("%d", rep.N),
			fmt.Sprintf("%d", rep.Rejected),
			fmt.Sprintf("%.1f%%", 100*rep.RejectionRate),
			fmt.Sprintf("%.1f", goodput),
			fmt.Sprintf("%.1f%%", 100*rep.SLOAttainment),
			fmt.Sprintf("%.3fs", rep.Latency.P99),
			fmt.Sprintf("%d", rep.PeakQueued),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
