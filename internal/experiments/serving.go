package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/runner"
	"repro/internal/workload"
)

// The serve experiment family exercises the serving layer beyond the
// paper's single-shot evaluation: offered-load sweeps with latency SLOs,
// warm restarts across consecutive tasks, and multi-tenant mixes over
// merged boards. They register alongside the paper artifacts and the
// extension experiments.

// serveSLO is the per-request latency objective the serve experiments
// score attainment against.
const serveSLO = 500 * time.Millisecond

// serveRegistry returns the serving-layer experiments.
func serveRegistry() []Experiment {
	return []Experiment{
		{"serve-load", "serving", "throughput and p99 latency vs offered Poisson load, per variant", ServeLoad},
		{"serve-warm", "serving", "warm restart: consecutive tasks on one system vs cold rebuilds", ServeWarm},
		{"serve-mix", "serving", "multi-tenant mix of board A and B streams on one merged model", ServeMix},
		{"serve-overload", "serving", "admission policies (accept-all, bounded queue, token bucket, SLO shed) vs offered load past the knee", ServeOverload},
		{"serve-cluster", "cluster", "multi-node serving: node count × router × placement, fleet aggregates", ServeCluster},
		{"serve-fleet", "cluster", "100-node fleet under steady load: exact vs sketch percentile accounting", ServeFleet},
		{"serve-chaos", "cluster", "rolling crash/drain/recover over a 4-node fleet: lease redelivery, time-to-drain, attainment dip and recovery", ServeChaos},
		{"serve-grayfail", "cluster", "gray failures: fail-slow/jitter/stall straggler vs {none, breaker, breaker+hedge} mitigation stacks", ServeGrayfail},
		{"serve-shard", "cluster", "sharded kernel: fleet over a non-zero interconnect, partitions advanced in parallel under conservative lookahead", ServeShard},
	}
}

// serveSystems are the variants the load sweep compares: the strongest
// baseline arrangement, its parallel refinement, and CoServe casual
// (the offline-searched Best is omitted to keep the sweep cheap).
func serveSystems() []evalSystem {
	return []evalSystem{
		{"Samba-CoE", core.Samba, false},
		{"Samba-CoE Parallel", core.SambaParallel, false},
		{"CoServe Casual", core.CoServe, false},
	}
}

// serveConfig assembles a serving config for the variant with the SLO
// attached.
func (c *Context) serveConfig(dev *hw.Device, v core.Variant) (core.Config, error) {
	pm, err := c.Perf(dev)
	if err != nil {
		return core.Config{}, err
	}
	g, cp := core.DefaultExecutors(dev)
	cfg := core.Config{
		Device: dev, Variant: v,
		GPUExecutors: g, CPUExecutors: cp,
		Perf: pm, SLO: serveSLO,
		Alloc: core.DefaultAllocation(v, dev, pm, g, cp),
	}
	return cfg, nil
}

// ServeLoad sweeps offered open-loop Poisson load on the NUMA device
// and reports throughput, tail latency, and SLO attainment per variant —
// the saturation picture a single closed-loop run cannot show. Each
// (rate, system) point builds its own System and stream, so every point
// is one job.
func ServeLoad(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "serve-load",
		Title:   fmt.Sprintf("Throughput, p99 latency and SLO attainment vs offered Poisson load, NUMA board A (SLO %v)", serveSLO),
		Columns: []string{"offered req/s", "system", "throughput", "p50", "p99", "slo attainment"},
		Notes: []string{
			"open-loop arrivals: offered load is independent of service capacity",
			"throughput saturates at each system's capacity; beyond it, p99 and attainment collapse",
		},
	}
	board, err := ctx.Board(workload.BoardA())
	if err != nil {
		return nil, err
	}
	type pointJob struct {
		rate float64
		sys  evalSystem
	}
	var jobs []pointJob
	for _, rate := range []float64{2, 10, 40, 120} {
		for _, s := range serveSystems() {
			jobs = append(jobs, pointJob{rate, s})
		}
	}
	rows, err := runner.Sweep(ctx.par, jobs, func(_ int, j pointJob) ([]string, error) {
		cfg, err := ctx.serveConfig(hw.NUMADevice(), j.sys.variant)
		if err != nil {
			return nil, err
		}
		sys, err := core.NewSystem(cfg, board.Model)
		if err != nil {
			return nil, err
		}
		src, err := workload.Poisson{
			Name: fmt.Sprintf("poisson-%g", j.rate), Board: board,
			Rate: j.rate, N: 400, Seed: 4242,
		}.NewSource()
		if err != nil {
			return nil, err
		}
		rep, err := sys.Serve(src)
		if err != nil {
			return nil, fmt.Errorf("serve-load %s @%g: %w", j.sys.label, j.rate, err)
		}
		return []string{
			fmt.Sprintf("%g", j.rate), j.sys.label,
			fmt.Sprintf("%.1f", rep.Throughput),
			fmt.Sprintf("%.3fs", rep.Latency.P50),
			fmt.Sprintf("%.3fs", rep.Latency.P99),
			fmt.Sprintf("%.1f%%", 100*rep.SLOAttainment),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// ServeWarm serves two consecutive tasks on one System per variant and
// compares the second (warm) run against a cold rebuild of the same
// task: the warm pools cut expert switches for CoServe and remove the
// cold ramp for the Samba baselines. Each variant's three runs share
// one System's history, so the variant — not the run — is the unit of
// parallelism.
func ServeWarm(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "serve-warm",
		Title:   "Warm restart: consecutive tasks on one System, NUMA board A",
		Columns: []string{"system", "run", "pools", "switches", "throughput"},
		Notes: []string{
			"warm = same System serving its second consecutive stream; cold = freshly built System",
			"CoServe's warm pools carry the learned working set: fewer switches than both its first run and a cold rebuild's run",
		},
	}
	board, err := ctx.Board(workload.BoardA())
	if err != nil {
		return nil, err
	}
	task := workload.Task{
		Name: "A-serve", Board: board, N: 800,
		ArrivalPeriod: workload.DefaultArrivalPeriod, Seed: 909,
	}
	variants := []evalSystem{
		{"Samba-CoE", core.Samba, false},
		{"CoServe Casual", core.CoServe, false},
	}
	groups, err := runner.Sweep(ctx.par, variants, func(_ int, s evalSystem) ([][]string, error) {
		cfg, err := ctx.serveConfig(hw.NUMADevice(), s.variant)
		if err != nil {
			return nil, err
		}
		sys, err := core.NewSystem(cfg, board.Model)
		if err != nil {
			return nil, err
		}
		r1, err := sys.RunTask(task)
		if err != nil {
			return nil, err
		}
		loaded1 := sys.LoadedExperts()
		r2, err := sys.RunTask(task)
		if err != nil {
			return nil, err
		}
		loaded2 := sys.LoadedExperts()
		cold, err := core.NewSystem(cfg, board.Model)
		if err != nil {
			return nil, err
		}
		rc, err := cold.RunTask(task)
		if err != nil {
			return nil, err
		}
		var rows [][]string
		for _, row := range []struct {
			run    string
			loaded int
			rep    *core.Report
		}{
			{"1 (cold pools)", loaded1, r1},
			{"2 (warm pools)", loaded2, r2},
			{"cold rebuild", cold.LoadedExperts(), rc},
		} {
			rows = append(rows, []string{
				s.label, row.run,
				fmt.Sprintf("%d experts", row.loaded),
				fmt.Sprintf("%d", row.rep.Switches),
				fmt.Sprintf("%.1f", row.rep.Throughput),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range groups {
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}

// ServeMix fuses boards A and B into one CoE model and serves a
// two-tenant Poisson mix on a single System, reporting the per-tenant
// latency slices alongside the aggregate. One stream, one simulation —
// nothing to fan out.
func ServeMix(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "serve-mix",
		Title:   fmt.Sprintf("Multi-tenant mix: boards A+B merged, one System, two Poisson tenants (SLO %v)", serveSLO),
		Columns: []string{"tenant", "offered req/s", "completed", "p50", "p95", "slo attainment"},
		Notes: []string{
			"both tenants' experts share the same pools; per-tenant counts are preserved through the mix",
		},
	}
	a, err := ctx.Board(workload.BoardA())
	if err != nil {
		return nil, err
	}
	b, err := ctx.Board(workload.BoardB())
	if err != nil {
		return nil, err
	}
	merged, views, err := workload.MergeBoards("board-a+b", []float64{1, 1}, a, b)
	if err != nil {
		return nil, err
	}
	rates := []float64{3, 1.5}
	names := []string{"board-a", "board-b"}
	rateOf := map[string]float64{}
	tenants := make([]workload.Source, 2)
	for i := range tenants {
		src, err := workload.Poisson{
			Name: names[i], Board: views[i],
			Rate: rates[i], N: 300, Seed: int64(7000 + i),
		}.NewSource()
		if err != nil {
			return nil, err
		}
		tenants[i] = src
		rateOf[names[i]] = rates[i]
	}
	mix, err := workload.Mix{Name: "a+b", Tenants: tenants}.NewSource()
	if err != nil {
		return nil, err
	}
	cfg, err := ctx.serveConfig(hw.NUMADevice(), core.CoServe)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(cfg, merged.Model)
	if err != nil {
		return nil, err
	}
	rep, err := sys.Serve(mix)
	if err != nil {
		return nil, err
	}
	for _, ts := range rep.PerTenant {
		t.Rows = append(t.Rows, []string{
			ts.Name, fmt.Sprintf("%g", rateOf[ts.Name]),
			fmt.Sprintf("%d", ts.Completions),
			fmt.Sprintf("%.3fs", ts.Latency.P50),
			fmt.Sprintf("%.3fs", ts.Latency.P95),
			fmt.Sprintf("%.1f%%", 100*ts.SLOAttainment),
		})
	}
	t.Rows = append(t.Rows, []string{
		"(all)", fmt.Sprintf("%g", rates[0]+rates[1]),
		fmt.Sprintf("%d", rep.Completions),
		fmt.Sprintf("%.3fs", rep.Latency.P50),
		fmt.Sprintf("%.3fs", rep.Latency.P95),
		fmt.Sprintf("%.1f%%", 100*rep.SLOAttainment),
	})
	return t, nil
}
