package experiments

import (
	"strconv"
	"testing"
)

func TestExtensionRegistryIncluded(t *testing.T) {
	if len(All()) != len(Registry())+12 {
		t.Errorf("All() = %d entries, want %d", len(All()), len(Registry())+12)
	}
	for _, id := range []string{"ext-evict", "ext-ssd", "ext-arrival", "serve-load", "serve-warm", "serve-mix", "serve-overload", "serve-cluster", "serve-fleet", "serve-chaos", "serve-grayfail", "serve-shard"} {
		if _, err := ByID(id); err != nil {
			t.Errorf("extension %s not registered: %v", id, err)
		}
	}
}

func TestExtEvictionProbabilityBeatsLRU(t *testing.T) {
	tb := runExp(t, "ext-evict")
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
	// Per device: both probability-based policies must beat LRU on
	// throughput (the §3.2 argument for pre-assessed probabilities).
	for d := 0; d < 2; d++ {
		lru := cellFloat(t, tb, d*3, "throughput")
		prob := cellFloat(t, tb, d*3+1, "throughput")
		dep := cellFloat(t, tb, d*3+2, "throughput")
		if prob <= lru || dep <= lru {
			t.Errorf("device %d: probability policies (%.1f, %.1f) not above LRU (%.1f)", d, prob, dep, lru)
		}
	}
}

func TestExtSSDSweepNarrowsButKeepsWin(t *testing.T) {
	tb := runExp(t, "ext-ssd")
	prevRatio := 1e18
	for i := range tb.Rows {
		r := tb.Rows[i][3]
		ratio, err := strconv.ParseFloat(r[:len(r)-1], 64)
		if err != nil {
			t.Fatalf("bad ratio %q", r)
		}
		if ratio <= 1.5 {
			t.Errorf("row %d: CoServe advantage %.1fx collapsed", i, ratio)
		}
		if ratio > prevRatio {
			t.Errorf("row %d: advantage grew with faster storage (%.1fx after %.1fx)", i, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestExtArrivalSweepSwitchesGrowWithSparsity(t *testing.T) {
	tb := runExp(t, "ext-arrival")
	prev := -1.0
	for i := range tb.Rows {
		sw := cellFloat(t, tb, i, "switches")
		if sw < prev {
			t.Errorf("row %d: switches fell (%.0f after %.0f) despite sparser arrivals", i, sw, prev)
		}
		prev = sw
	}
}
