package experiments

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/profiler"
	"repro/internal/runner"
	"repro/internal/xfer"
)

// Table1 prints the hardware profiles (paper Table 1).
func Table1(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "tab1",
		Title:   "Hardware for evaluation (Table 1)",
		Columns: []string{"property", "NUMA", "UMA"},
	}
	numa, uma := hw.NUMADevice(), hw.UMADevice()
	gb := func(b int64) string { return fmt.Sprintf("%d GB", b/hw.GiB) }
	t.Rows = [][]string{
		{"GPU", numa.GPU.Name, uma.GPU.Name},
		{"CPU", numa.CPU.Name, uma.CPU.Name},
		{"GPU memory", gb(numa.GPUMemBytes), gb(uma.UnifiedMemBytes) + " (unified)"},
		{"CPU memory", gb(numa.CPUMemBytes), "(unified)"},
		{"SSD", numa.SSDName, uma.SSDName},
		{"SSD read bandwidth", fmt.Sprintf("%.0f MB/s", numa.SSDReadBW/1e6), fmt.Sprintf("%.0f MB/s", uma.SSDReadBW/1e6)},
	}
	return t, nil
}

// Figure1 reproduces the switching-latency proportions: the share of
// expert switching latency in (switching + execution) for each expert
// architecture, per memory path, on both devices.
func Figure1(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig1",
		Title:   "Expert switching latency share of inference latency (Figure 1)",
		Columns: []string{"device", "path", "architecture", "switch", "exec", "switch share"},
		Notes: []string{
			"paper: >90% for SSD→GPU on both devices; 60–86% for CPU→GPU",
			"execution latency taken at the processor's saturation batch size",
		},
	}
	for _, dev := range devices() {
		for _, path := range []struct {
			name string
			src  xfer.Source
		}{{"CPU to GPU", xfer.FromHost}, {"SSD to GPU", xfer.FromSSD}} {
			for _, arch := range evalArchs {
				sw := xfer.LoadLatency(dev, path.src, memory.TierGPU, arch.WeightBytes())
				exec := model.ExecLatency(arch, dev.GPU, dev.GPU.SatBatch)
				share := float64(sw) / float64(sw+exec)
				t.Rows = append(t.Rows, []string{
					dev.Mem.String(), path.name, arch.Name,
					fmt.Sprintf("%v", sw.Round(msRound)),
					fmt.Sprintf("%v", exec.Round(msRound)),
					fmt.Sprintf("%.1f%%", share*100),
				})
			}
		}
	}
	return t, nil
}

const msRound = 100 * 1000 // 0.1ms in ns

// batchSizes is the sweep reported for Figures 5, 6 and 12.
var batchSizes = []int{1, 2, 4, 6, 8, 12, 16, 20, 24, 28, 32}

// batchSweeps runs (and memoizes) the Figure 5/6/12 microbenchmark for
// an architecture in column order NUMA GPU, UMA GPU, NUMA CPU, UMA CPU.
// Each of the four sweeps simulates in its own environment, so they run
// through the worker pool.
func (c *Context) batchSweeps(arch model.Architecture) ([][]profiler.BatchPoint, error) {
	type procPoint struct {
		dev  *hw.Device
		kind hw.ProcKind
	}
	return c.sweeps.Do(arch.Name, func() ([][]profiler.BatchPoint, error) {
		numa, uma := hw.NUMADevice(), hw.UMADevice()
		points := []procPoint{
			{numa, hw.GPU}, {uma, hw.GPU}, {numa, hw.CPU}, {uma, hw.CPU},
		}
		return runner.Sweep(c.par, points, func(_ int, p procPoint) ([]profiler.BatchPoint, error) {
			return profiler.BatchSweep(p.dev, arch, p.kind, 32), nil
		})
	})
}

// Figure5 reproduces average inference latency vs batch size on GPU and
// CPU for both devices (ResNet101 workload).
func Figure5(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig5",
		Title:   "Average inference latency vs batch size (Figure 5)",
		Columns: []string{"batch", "NUMA GPU", "UMA GPU", "NUMA CPU", "UMA CPU"},
		Notes: []string{
			"values in ms/image; paper: larger batches reduce average latency, then benefits diminish",
			"interior optimum on CPU (§3.3): NUMA/UMA CPU worsen beyond small batches",
		},
	}
	sweeps, err := ctx.batchSweeps(model.ResNet101)
	if err != nil {
		return nil, err
	}
	for _, n := range batchSizes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, s := range sweeps {
			row = append(row, fmt.Sprintf("%.2f", float64(s[n-1].Avg.Microseconds())/1000))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure6 reproduces memory footprint vs batch size.
func Figure6(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig6",
		Title:   "Memory footprint vs batch size (Figure 6)",
		Columns: []string{"batch", "NUMA GPU", "UMA GPU", "NUMA CPU", "UMA CPU"},
		Notes: []string{
			"activation GB for a ResNet101 batch; §3.3: one extra NUMA-GPU image ≈ 1.5 experts",
		},
	}
	sweeps, err := ctx.batchSweeps(model.ResNet101)
	if err != nil {
		return nil, err
	}
	for _, n := range batchSizes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, s := range sweeps {
			row = append(row, fmt.Sprintf("%.2f", float64(s[n-1].Footprint)/1e9))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure12 reproduces whole-batch execution latency growth for
// ResNet101 and YOLOv5m. Its eight columns reuse the memoized per-
// architecture sweeps (shared with Figures 5/6), reordered from the
// sweep's device-major layout to the header's.
func Figure12(ctx *Context) (*Table, error) {
	t := &Table{
		ID:    "fig12",
		Title: "Execution latency vs batch size (Figure 12)",
		Columns: []string{
			"batch",
			"NUMA GPU rn101", "NUMA GPU y5m",
			"NUMA CPU rn101", "NUMA CPU y5m",
			"UMA GPU rn101", "UMA GPU y5m",
			"UMA CPU rn101", "UMA CPU y5m",
		},
		Notes: []string{"values in ms; paper: linear K·n + B growth, CPU well above GPU"},
	}
	rn, err := ctx.batchSweeps(model.ResNet101)
	if err != nil {
		return nil, err
	}
	ym, err := ctx.batchSweeps(model.YOLOv5m)
	if err != nil {
		return nil, err
	}
	// batchSweeps order is NUMA GPU, UMA GPU, NUMA CPU, UMA CPU; the
	// header wants device-major, then processor, then architecture.
	cols := [][]profiler.BatchPoint{
		rn[0], ym[0], rn[2], ym[2],
		rn[1], ym[1], rn[3], ym[3],
	}
	for _, n := range batchSizes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, col := range cols {
			row = append(row, fmt.Sprintf("%.1f", float64(col[n-1].Exec.Microseconds())/1000))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure11 reproduces the cumulative distribution of expert usage for
// Circuit Board A, with the linear and step references.
func Figure11(ctx *Context) (*Table, error) {
	board, err := ctx.Board(workloadBoardA())
	if err != nil {
		return nil, err
	}
	cdf := board.Model.UsageCDF()
	n := len(cdf)
	t := &Table{
		ID:      "fig11",
		Title:   "CDF of expert usage, Board A (Figure 11)",
		Columns: []string{"experts", "actual CDF", "linear", "step"},
		Notes: []string{
			"paper: the actual curve lies between the linear and step extremes",
		},
	}
	for _, k := range []int{1, 5, 10, 20, 35, 50, 75, 100, 150, 200, 300, n} {
		if k > n {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.3f", cdf[k-1]),
			fmt.Sprintf("%.3f", float64(k)/float64(n)),
			"1.000",
		})
	}
	return t, nil
}
