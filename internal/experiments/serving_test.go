package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestServeLoadSaturates: throughput tracks offered load while the
// system has headroom and saturates beyond capacity; SLO attainment
// degrades monotonically (within a tolerance) as load grows.
func TestServeLoadSaturates(t *testing.T) {
	tb := runExp(t, "serve-load")
	perSystem := map[string][]float64{}
	attain := map[string][]float64{}
	for i := range tb.Rows {
		sys := tb.Rows[i][1]
		perSystem[sys] = append(perSystem[sys], cellFloat(t, tb, i, "throughput"))
		attain[sys] = append(attain[sys], cellFloat(t, tb, i, "slo attainment"))
	}
	if len(perSystem) != 3 {
		t.Fatalf("systems = %d, want 3", len(perSystem))
	}
	for sys, tps := range perSystem {
		if len(tps) != 4 {
			t.Fatalf("%s: rates = %d, want 4", sys, len(tps))
		}
		// Throughput must never decrease with offered load by more than
		// noise: open-loop servers keep completing at capacity.
		for i := 1; i < len(tps); i++ {
			if tps[i] < tps[i-1]*0.7 {
				t.Errorf("%s: throughput collapsed from %.1f to %.1f as load grew", sys, tps[i-1], tps[i])
			}
		}
	}
	// CoServe sustains the highest offered load.
	last := len(perSystem["CoServe Casual"]) - 1
	if perSystem["CoServe Casual"][last] <= perSystem["Samba-CoE"][last] {
		t.Errorf("CoServe %.1f img/s not above Samba %.1f at the highest load",
			perSystem["CoServe Casual"][last], perSystem["Samba-CoE"][last])
	}
	// At the highest offered load every system is past (or at) its knee;
	// attainment there must not exceed the lightest load's.
	for sys, as := range attain {
		if as[len(as)-1] > as[0]+1e-9 {
			t.Errorf("%s: attainment grew with load (%.1f%% -> %.1f%%)", sys, as[0], as[len(as)-1])
		}
	}
}

// TestServeOverloadShedsPastKnee is the overload experiment's
// acceptance contract: past the saturation knee the rejecting policies
// show a nonzero rejection rate and a bounded backlog, while
// accept-all's backlog dwarfs them; deadline shedding keeps the
// admitted requests' attainment high.
func TestServeOverloadShedsPastKnee(t *testing.T) {
	tb := runExp(t, "serve-overload")
	if len(tb.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (3 rates x 4 policies)", len(tb.Rows))
	}
	// Collect the highest-rate block (past the knee).
	rows := map[string]int{}
	for i, row := range tb.Rows {
		if row[0] == "40" {
			rows[row[1]] = i
		}
	}
	if len(rows) != 4 {
		t.Fatalf("policies at rate 40 = %d, want 4", len(rows))
	}
	acceptPeak := cellFloat(t, tb, rows["accept-all"], "peak queue")
	if got := cellFloat(t, tb, rows["accept-all"], "reject%"); got != 0 {
		t.Errorf("accept-all rejected %.1f%%, want 0", got)
	}
	rejecting := 0
	for _, policy := range []string{"bounded-32", "token-10", "shed-500ms"} {
		i := rows[policy]
		rej := cellFloat(t, tb, i, "reject%")
		peak := cellFloat(t, tb, i, "peak queue")
		if rej <= 0 {
			t.Errorf("%s: rejection rate %.1f%% past the knee, want > 0", policy, rej)
			continue
		}
		rejecting++
		if peak >= acceptPeak/2 {
			t.Errorf("%s: peak queue %.0f not clearly bounded vs accept-all's %.0f", policy, peak, acceptPeak)
		}
	}
	if rejecting < 2 {
		t.Errorf("only %d policies reject past the knee, want at least 2", rejecting)
	}
	// Offered = admitted + rejected on every row.
	for i, row := range tb.Rows {
		offered := cellFloat(t, tb, i, "offered")
		admitted := cellFloat(t, tb, i, "admitted")
		rejected := cellFloat(t, tb, i, "rejected")
		if offered != admitted+rejected {
			t.Errorf("row %v: offered %v != admitted %v + rejected %v", row[:2], offered, admitted, rejected)
		}
	}
	// Shedding protects the admitted requests' SLO attainment.
	if shed := cellFloat(t, tb, rows["shed-500ms"], "attainment"); shed < 50 {
		t.Errorf("shed attainment %.1f%% past the knee, want > 50%%", shed)
	}
	if accept := cellFloat(t, tb, rows["accept-all"], "attainment"); accept > 20 {
		t.Errorf("accept-all attainment %.1f%% past the knee; overload regime not reached", accept)
	}
}

// TestServeWarmCutsSwitches: the warm second run must switch fewer
// experts than both its own first run and a cold rebuild (CoServe rows).
func TestServeWarmCutsSwitches(t *testing.T) {
	tb := runExp(t, "serve-warm")
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
	var run1, run2, cold float64
	for i, row := range tb.Rows {
		if row[0] != "CoServe Casual" {
			continue
		}
		sw := cellFloat(t, tb, i, "switches")
		switch {
		case strings.HasPrefix(row[1], "1"):
			run1 = sw
		case strings.HasPrefix(row[1], "2"):
			run2 = sw
		default:
			cold = sw
		}
	}
	if run2 >= run1 {
		t.Errorf("warm run switches %v not below first run %v", run2, run1)
	}
	if run2 >= cold {
		t.Errorf("warm run switches %v not below cold rebuild %v", run2, cold)
	}
}

// TestServeMixPreservesTenants: the mix table carries both tenants plus
// the aggregate, and per-tenant completions sum to the total.
func TestServeMixPreservesTenants(t *testing.T) {
	tb := runExp(t, "serve-mix")
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (two tenants + aggregate)", len(tb.Rows))
	}
	var sum, total int
	for i, row := range tb.Rows {
		n, err := strconv.Atoi(tb.Rows[i][2])
		if err != nil {
			t.Fatalf("bad completed cell %q", tb.Rows[i][2])
		}
		if row[0] == "(all)" {
			total = n
		} else {
			sum += n
		}
	}
	if sum != total || total == 0 {
		t.Errorf("tenant completions %d do not sum to total %d", sum, total)
	}
}

// TestServeClusterScalesAndRewardsAffinity is the cluster experiment's
// acceptance contract: adding nodes lifts fleet throughput past a
// single node's knee, and at the widest fleet, residency-aware routing
// over a residency-aware placement beats residency-blind least-loaded
// over mirrored pools on both attainment and switches.
func TestServeClusterScalesAndRewardsAffinity(t *testing.T) {
	tb := runExp(t, "serve-cluster")
	if len(tb.Rows) != 27 {
		t.Fatalf("rows = %d, want 27 (3 nodes x 3 routers x 3 placements)", len(tb.Rows))
	}
	cell := func(nodes, router, placement, col string) float64 {
		for i, row := range tb.Rows {
			if row[0] == nodes && row[1] == router && row[2] == placement {
				return cellFloat(t, tb, i, col)
			}
		}
		t.Fatalf("row %s/%s/%s not found", nodes, router, placement)
		return 0
	}
	// All 1-node rows are the same system: router and placement have one
	// node to choose from and usage placement degenerates to the usage
	// order.
	oneNode := cell("1", "least-loaded", "mirror", "throughput")
	for _, router := range []string{"least-loaded", "affinity", "predict"} {
		if tp := cell("1", router, "mirror", "throughput"); tp != oneNode {
			t.Errorf("1-node throughput differs across routers: %.2f vs %.2f", tp, oneNode)
		}
	}
	// Four nodes lift the fleet well past one node's saturated rate.
	four := cell("4", "affinity", "usage", "throughput")
	if four < 1.5*oneNode {
		t.Errorf("4-node fleet %.1f img/s not at least 1.5x one node's %.1f", four, oneNode)
	}
	// Residency-aware routing+placement beats blind balancing at 4 nodes.
	blindAttain := cell("4", "least-loaded", "mirror", "slo attainment")
	awareAttain := cell("4", "affinity", "usage", "slo attainment")
	if awareAttain <= blindAttain {
		t.Errorf("affinity/usage attainment %.1f%% not above least-loaded/mirror %.1f%%",
			awareAttain, blindAttain)
	}
	blindSwitches := cell("4", "least-loaded", "mirror", "switches")
	awareSwitches := cell("4", "affinity", "usage", "switches")
	if awareSwitches >= blindSwitches {
		t.Errorf("affinity/usage switches %.0f not below least-loaded/mirror %.0f",
			awareSwitches, blindSwitches)
	}
	// Imbalance stays sane: never below 1, never a single-node pile-up.
	for i, row := range tb.Rows {
		if im := cellFloat(t, tb, i, "imbalance"); im < 1 || im > 4 {
			t.Errorf("row %v: imbalance %.2f outside [1,4]", row[:3], im)
		}
	}
}
