package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/coe"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/runner"
	"repro/internal/workload"
)

// Fleet-scale parameters: a 100-node CoServe fleet under an open-loop
// steady stream at ~83% of aggregate capacity (one NUMA node saturates
// near 12 img/s). The experiment keeps the horizon short so the
// registry stays cheap to run end to end; BenchmarkFleetServe drives
// the same fleet through ≥1M requests (at a sustainable offered rate)
// and records the memory story in BENCH_fleet.json.
const (
	fleetNodes   = 100
	fleetRate    = 1000.0
	fleetHorizon = 10 * time.Second
)

// fleetCluster assembles the 100-node fleet in the given percentile
// mode: every node is a CoServe-casual NUMA data plane with picks
// recording off (the fleet hot path), residency-affinity routing, and
// usage-proportional placement — the combination that sends requests
// where their experts already live, which is what keeps a 100-node
// fleet at ~84% of the offered 1000 req/s instead of thrashing
// switches.
func fleetCluster(ctx *Context, mode core.PercentileMode) (*cluster.Cluster, *workload.Board, error) {
	board, err := ctx.Board(workload.BoardA())
	if err != nil {
		return nil, nil, err
	}
	nodeCfg, err := ctx.serveConfig(hw.NUMADevice(), core.CoServe)
	if err != nil {
		return nil, nil, err
	}
	nodeCfg.DisablePicks = true
	cl, err := cluster.New(cluster.Config{
		Nodes:       cluster.Uniform(fleetNodes, nodeCfg),
		Router:      cluster.Affinity{},
		Placement:   cluster.UsageProportional{},
		SLO:         serveSLO,
		Percentiles: mode,
	}, board.Model)
	if err != nil {
		return nil, nil, err
	}
	return cl, board, nil
}

// fleetSource builds the unbounded steady arrival process bounded at
// the fleet horizon, leasing requests from the arena.
func fleetSource(board *workload.Board, arena *coe.Arena) (workload.Source, error) {
	src, err := workload.Steady{
		Name: "fleet-steady", Board: board,
		Rate: fleetRate, Seed: 20260807, Arena: arena,
	}.NewSource()
	if err != nil {
		return nil, err
	}
	return workload.Horizon(src, fleetHorizon), nil
}

// ServeFleet runs the 100-node fleet once per percentile mode — exact
// (store-every-sample, the golden mode) and sketch (O(1) streaming) —
// over the identical request stream, and reports both rows side by
// side with the sketch's percentile deviation from exact. The two
// timelines are the same simulation; only the accounting differs, so
// every column but the percentiles matches exactly and the deviation
// column is the sketch's whole observable cost.
func ServeFleet(ctx *Context) (*Table, error) {
	t := &Table{
		ID: "serve-fleet",
		Title: fmt.Sprintf("Fleet serving: %d nodes, steady %.0f req/s over %v, exact vs sketch percentiles (SLO %v)",
			fleetNodes, fleetRate, fleetHorizon, serveSLO),
		Columns: []string{"percentiles", "nodes", "completions", "throughput", "p50", "p95", "p99",
			"slo attainment", "imbalance", "p99 vs exact"},
		Notes: []string{
			"both rows serve the identical stream: sketch mode changes latency accounting, never the timeline",
			"sketch percentiles are rank-exact and value-accurate to ±1% (see README performance notes); counts, min/max, mean, throughput and imbalance stay exact",
			"requests are arena-recycled: steady-state allocation is bounded by in-flight requests, not stream length (BENCH_fleet.json pins it at 1M requests)",
		},
	}
	modes := []core.PercentileMode{core.PercentilesExact, core.PercentilesSketch}
	reports, err := runner.Sweep(ctx.par, modes, func(_ int, mode core.PercentileMode) (*cluster.Report, error) {
		cl, board, err := fleetCluster(ctx, mode)
		if err != nil {
			return nil, err
		}
		src, err := fleetSource(board, coe.NewArena())
		if err != nil {
			return nil, err
		}
		rep, err := cl.Serve(src)
		if err != nil {
			return nil, fmt.Errorf("serve-fleet %s: %w", mode, err)
		}
		return rep, nil
	})
	if err != nil {
		return nil, err
	}
	exact := reports[0]
	for i, mode := range modes {
		rep := reports[i]
		dev := "—"
		if i > 0 && exact.Latency.P99 > 0 {
			dev = fmt.Sprintf("%+.2f%%", 100*(rep.Latency.P99-exact.Latency.P99)/exact.Latency.P99)
		}
		t.Rows = append(t.Rows, []string{
			mode.String(),
			fmt.Sprintf("%d", rep.Nodes),
			fmt.Sprintf("%d", rep.Completions),
			fmt.Sprintf("%.1f", rep.Throughput),
			fmt.Sprintf("%.3fs", rep.Latency.P50),
			fmt.Sprintf("%.3fs", rep.Latency.P95),
			fmt.Sprintf("%.3fs", rep.Latency.P99),
			fmt.Sprintf("%.1f%%", 100*rep.SLOAttainment),
			fmt.Sprintf("%.2f", rep.Imbalance),
			dev,
		})
	}
	// The equivalence contract the table documents: if the sketch row
	// ever drifts past its bound, fail the experiment rather than print
	// a silently wrong table.
	sk := reports[1]
	if sk.LatencySketch == nil {
		return nil, fmt.Errorf("serve-fleet: sketch row carries no sketch")
	}
	alpha := sk.LatencySketch.RelativeAccuracy()
	for _, pair := range [][2]float64{
		{sk.Latency.P50, exact.Latency.P50},
		{sk.Latency.P95, exact.Latency.P95},
		{sk.Latency.P99, exact.Latency.P99},
	} {
		if pair[1] > 0 && math.Abs(pair[0]-pair[1]) > 2.5*alpha*pair[1] {
			return nil, fmt.Errorf("serve-fleet: sketch percentile %v outside the documented bound of exact %v", pair[0], pair[1])
		}
	}
	if sk.Completions != exact.Completions || sk.Imbalance != exact.Imbalance {
		return nil, fmt.Errorf("serve-fleet: sketch mode changed the serving timeline")
	}
	return t, nil
}
