package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// workloadBoardA is an indirection kept tiny so micro.go need not import
// workload directly in its signature helpers.
func workloadBoardA() workload.BoardSpec { return workload.BoardA() }

// figure13Systems are the five bars of Figures 13 and 14, in paper
// order.
type evalSystem struct {
	label   string
	variant core.Variant
	best    bool
}

func figure13Systems() []evalSystem {
	return []evalSystem{
		{"Samba-CoE", core.Samba, false},
		{"Samba-CoE FIFO", core.SambaFIFO, false},
		{"Samba-CoE Parallel", core.SambaParallel, false},
		{"CoServe Best", core.CoServe, true},
		{"CoServe Casual", core.CoServe, false},
	}
}

// Figure13 reproduces throughput of CoServe and the baselines across
// the four tasks on both devices.
func Figure13(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Throughput of CoServe and baselines, img/s (Figure 13)",
		Columns: []string{"device", "task", "Samba", "Samba FIFO", "Samba Par.", "CoServe Best", "CoServe Casual", "best/samba", "best/fifo", "best/par"},
		Notes: []string{
			"paper: CoServe achieves 4.5×–12× the baselines' throughput",
			"paper: Casual trails Best by 5.7%–18.8%",
		},
	}
	tasks, err := ctx.tasks()
	if err != nil {
		return nil, err
	}
	for _, dev := range devices() {
		for _, task := range tasks {
			row := []string{dev.Mem.String(), task.Name}
			var tps []float64
			for _, s := range figure13Systems() {
				rep, err := ctx.run(dev, s.variant, task, s.best)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", dev.Name, task.Name, s.label, err)
				}
				tps = append(tps, rep.Throughput)
				row = append(row, fmt.Sprintf("%.1f", rep.Throughput))
			}
			best := tps[3]
			row = append(row,
				fmt.Sprintf("%.1f×", best/tps[0]),
				fmt.Sprintf("%.1f×", best/tps[1]),
				fmt.Sprintf("%.1f×", best/tps[2]))
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Figure14 reproduces the expert switch counts of the same runs.
func Figure14(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig14",
		Title:   "Number of expert switches (Figure 14)",
		Columns: []string{"device", "task", "Samba", "Samba FIFO", "Samba Par.", "CoServe Best", "CoServe Casual", "reduction"},
		Notes: []string{
			"paper: CoServe cuts switches by 78.5%–93.9% vs the best baseline",
		},
	}
	tasks, err := ctx.tasks()
	if err != nil {
		return nil, err
	}
	for _, dev := range devices() {
		for _, task := range tasks {
			row := []string{dev.Mem.String(), task.Name}
			var switches []int64
			for _, s := range figure13Systems() {
				rep, err := ctx.run(dev, s.variant, task, s.best)
				if err != nil {
					return nil, err
				}
				switches = append(switches, rep.Switches)
				row = append(row, fmt.Sprintf("%d", rep.Switches))
			}
			minBase := switches[0]
			for _, s := range switches[1:3] {
				if s < minBase {
					minBase = s
				}
			}
			row = append(row, fmt.Sprintf("%.1f%%", 100*(1-float64(switches[3])/float64(minBase))))
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// ablationSystems are the four bars of Figures 15 and 16.
func ablationSystems() []evalSystem {
	return []evalSystem{
		{"CoServe None", core.CoServeNone, false},
		{"CoServe EM", core.CoServeEM, false},
		{"CoServe EM+RA", core.CoServeEMRA, false},
		{"CoServe", core.CoServe, false},
	}
}

// Figure15 reproduces the ablation throughput breakdown.
func Figure15(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig15",
		Title:   "Ablation: throughput per optimization, img/s (Figure 15)",
		Columns: []string{"device", "task", "None", "EM", "EM+RA", "CoServe"},
		Notes: []string{
			"paper: each optimization (expert management, request arranging, request assigning) adds throughput",
		},
	}
	tasks, err := ctx.tasks()
	if err != nil {
		return nil, err
	}
	for _, dev := range devices() {
		for _, task := range tasks {
			row := []string{dev.Mem.String(), task.Name}
			for _, s := range ablationSystems() {
				rep, err := ctx.run(dev, s.variant, task, s.best)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.1f", rep.Throughput))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Figure16 reproduces the ablation switch-count breakdown.
func Figure16(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig16",
		Title:   "Ablation: expert switches per optimization (Figure 16)",
		Columns: []string{"device", "task", "None", "EM", "EM+RA", "CoServe"},
		Notes: []string{
			"paper: switch reductions track the throughput gains of Figure 15",
		},
	}
	tasks, err := ctx.tasks()
	if err != nil {
		return nil, err
	}
	for _, dev := range devices() {
		for _, task := range tasks {
			row := []string{dev.Mem.String(), task.Name}
			for _, s := range ablationSystems() {
				rep, err := ctx.run(dev, s.variant, task, s.best)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%d", rep.Switches))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}
