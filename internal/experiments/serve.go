package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/workload"
)

// workloadBoardA is an indirection kept tiny so micro.go need not import
// workload directly in its signature helpers.
func workloadBoardA() workload.BoardSpec { return workload.BoardA() }

// figure13Systems are the five bars of Figures 13 and 14, in paper
// order.
type evalSystem struct {
	label   string
	variant core.Variant
	best    bool
}

func figure13Systems() []evalSystem {
	return []evalSystem{
		{"Samba-CoE", core.Samba, false},
		{"Samba-CoE FIFO", core.SambaFIFO, false},
		{"Samba-CoE Parallel", core.SambaParallel, false},
		{"CoServe Best", core.CoServe, true},
		{"CoServe Casual", core.CoServe, false},
	}
}

// Figure13 reproduces throughput of CoServe and the baselines across
// the four tasks on both devices. Each (device, task) row is an
// independent job; the five systems of a row share the context's
// memoized evaluation grid with Figures 14–16.
func Figure13(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Throughput of CoServe and baselines, img/s (Figure 13)",
		Columns: []string{"device", "task", "Samba", "Samba FIFO", "Samba Par.", "CoServe Best", "CoServe Casual", "best/samba", "best/fifo", "best/par"},
		Notes: []string{
			"paper: CoServe achieves 4.5×–12× the baselines' throughput",
			"paper: Casual trails Best by 5.7%–18.8%",
		},
	}
	rows, err := gridRows(ctx, figure13Systems(), func(dev *hw.Device, task workload.Task, reps []*core.Report) []string {
		row := []string{dev.Mem.String(), task.Name}
		for _, rep := range reps {
			row = append(row, fmt.Sprintf("%.1f", rep.Throughput))
		}
		best := reps[3].Throughput
		return append(row,
			fmt.Sprintf("%.1f×", best/reps[0].Throughput),
			fmt.Sprintf("%.1f×", best/reps[1].Throughput),
			fmt.Sprintf("%.1f×", best/reps[2].Throughput))
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// Figure14 reproduces the expert switch counts of the same runs.
func Figure14(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig14",
		Title:   "Number of expert switches (Figure 14)",
		Columns: []string{"device", "task", "Samba", "Samba FIFO", "Samba Par.", "CoServe Best", "CoServe Casual", "reduction"},
		Notes: []string{
			"paper: CoServe cuts switches by 78.5%–93.9% vs the best baseline",
		},
	}
	rows, err := gridRows(ctx, figure13Systems(), func(dev *hw.Device, task workload.Task, reps []*core.Report) []string {
		row := []string{dev.Mem.String(), task.Name}
		for _, rep := range reps {
			row = append(row, fmt.Sprintf("%d", rep.Switches))
		}
		minBase := reps[0].Switches
		for _, rep := range reps[1:3] {
			if rep.Switches < minBase {
				minBase = rep.Switches
			}
		}
		return append(row, fmt.Sprintf("%.1f%%", 100*(1-float64(reps[3].Switches)/float64(minBase))))
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// ablationSystems are the four bars of Figures 15 and 16.
func ablationSystems() []evalSystem {
	return []evalSystem{
		{"CoServe None", core.CoServeNone, false},
		{"CoServe EM", core.CoServeEM, false},
		{"CoServe EM+RA", core.CoServeEMRA, false},
		{"CoServe", core.CoServe, false},
	}
}

// Figure15 reproduces the ablation throughput breakdown.
func Figure15(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig15",
		Title:   "Ablation: throughput per optimization, img/s (Figure 15)",
		Columns: []string{"device", "task", "None", "EM", "EM+RA", "CoServe"},
		Notes: []string{
			"paper: each optimization (expert management, request arranging, request assigning) adds throughput",
		},
	}
	rows, err := gridRows(ctx, ablationSystems(), func(dev *hw.Device, task workload.Task, reps []*core.Report) []string {
		row := []string{dev.Mem.String(), task.Name}
		for _, rep := range reps {
			row = append(row, fmt.Sprintf("%.1f", rep.Throughput))
		}
		return row
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// Figure16 reproduces the ablation switch-count breakdown.
func Figure16(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig16",
		Title:   "Ablation: expert switches per optimization (Figure 16)",
		Columns: []string{"device", "task", "None", "EM", "EM+RA", "CoServe"},
		Notes: []string{
			"paper: switch reductions track the throughput gains of Figure 15",
		},
	}
	rows, err := gridRows(ctx, ablationSystems(), func(dev *hw.Device, task workload.Task, reps []*core.Report) []string {
		row := []string{dev.Mem.String(), task.Name}
		for _, rep := range reps {
			row = append(row, fmt.Sprintf("%d", rep.Switches))
		}
		return row
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
