package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/workload"
)

// sharedCtx lets the whole test file reuse one evaluation grid.
var sharedCtx = NewContext()

func runExp(t *testing.T, id string) *Table {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := e.Run(sharedCtx)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tb.ID != id || len(tb.Rows) == 0 || len(tb.Columns) == 0 {
		t.Fatalf("%s: malformed table", id)
	}
	for i, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Fatalf("%s: row %d has %d cells, want %d", id, i, len(row), len(tb.Columns))
		}
	}
	if !strings.Contains(tb.Render(), tb.Title) {
		t.Fatalf("%s: render missing title", id)
	}
	return tb
}

func cellFloat(t *testing.T, tb *Table, row int, col string) float64 {
	t.Helper()
	for i, c := range tb.Columns {
		if c == col {
			v := strings.TrimSuffix(strings.TrimSuffix(tb.Rows[row][i], "×"), "%")
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("cell %q not numeric: %v", tb.Rows[row][i], err)
			}
			return f
		}
	}
	t.Fatalf("no column %q", col)
	return 0
}

func TestRegistryAndByID(t *testing.T) {
	if len(Registry()) != 13 {
		t.Errorf("registry has %d entries, want 13", len(Registry()))
	}
	if len(IDs()) != len(All()) {
		t.Error("IDs/All mismatch")
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown experiment resolved")
	}
}

func TestTable1(t *testing.T) {
	tb := runExp(t, "tab1")
	text := tb.Render()
	for _, want := range []string{"RTX3080Ti", "Apple M2", "12 GB", "24 GB", "16 GB"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestFigure1Shares(t *testing.T) {
	tb := runExp(t, "fig1")
	for i, row := range tb.Rows {
		share := cellFloat(t, tb, i, "switch share")
		if strings.Contains(row[1], "SSD") {
			if share < 90 {
				t.Errorf("%v: SSD share %.1f%% < 90%%", row, share)
			}
		} else if share < 60 || share > 93 {
			t.Errorf("%v: CPU→GPU share %.1f%% outside 60–93%%", row, share)
		}
	}
}

func TestFigure5InteriorOptimumOnCPU(t *testing.T) {
	tb := runExp(t, "fig5")
	// UMA CPU column: the last row (batch 32) must exceed the minimum.
	minV, last := 1e18, 0.0
	for i := range tb.Rows {
		v := cellFloat(t, tb, i, "UMA CPU")
		if v < minV {
			minV = v
		}
		last = v
	}
	if last <= minV {
		t.Errorf("UMA CPU avg latency should worsen at batch 32: min %.2f, last %.2f", minV, last)
	}
	// GPU batching must help initially.
	if cellFloat(t, tb, 1, "NUMA GPU") >= cellFloat(t, tb, 0, "NUMA GPU") {
		t.Error("NUMA GPU batch 2 should beat batch 1")
	}
}

func TestFigure6FootprintGrows(t *testing.T) {
	tb := runExp(t, "fig6")
	prev := -1.0
	for i := range tb.Rows {
		v := cellFloat(t, tb, i, "NUMA GPU")
		if v <= prev {
			t.Errorf("footprint not increasing at row %d", i)
		}
		prev = v
	}
	// §3.3 scale: ~30-image batch near 8 GB on the NUMA GPU.
	if last := cellFloat(t, tb, len(tb.Rows)-1, "NUMA GPU"); last < 5 || last > 12 {
		t.Errorf("batch-32 footprint = %.1f GB, want 5–12 GB", last)
	}
}

func TestFigure11BetweenLinearAndStep(t *testing.T) {
	tb := runExp(t, "fig11")
	for i := range tb.Rows[:len(tb.Rows)-1] {
		actual := cellFloat(t, tb, i, "actual CDF")
		linear := cellFloat(t, tb, i, "linear")
		if actual < linear {
			t.Errorf("row %d: actual %.3f below linear %.3f", i, actual, linear)
		}
		if actual > 1 {
			t.Errorf("row %d: CDF above 1", i)
		}
	}
}

func TestFigure12LinearGrowth(t *testing.T) {
	tb := runExp(t, "fig12")
	for i := range tb.Rows {
		gpu := cellFloat(t, tb, i, "NUMA GPU rn101")
		cpu := cellFloat(t, tb, i, "NUMA CPU rn101")
		if cpu <= gpu {
			t.Errorf("batch row %d: CPU %.1f not above GPU %.1f", i, cpu, gpu)
		}
	}
}

func TestFigure13HeadlineClaim(t *testing.T) {
	tb := runExp(t, "fig13")
	if len(tb.Rows) != 8 {
		t.Fatalf("fig13 rows = %d, want 8 (2 devices x 4 tasks)", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		for _, col := range []string{"best/samba", "best/fifo", "best/par"} {
			ratio := cellFloat(t, tb, i, col)
			// Paper: 4.5×–12×. Accept a generous band around it; the
			// essential claim is a multi-x win.
			if ratio < 3.5 || ratio > 16 {
				t.Errorf("%v %s: ratio %.1f× outside 3.5–16×", row[:2], col, ratio)
			}
		}
		best := cellFloat(t, tb, i, "CoServe Best")
		casual := cellFloat(t, tb, i, "CoServe Casual")
		// Casual close to Best (§5.2 reports 5.7%–18.8% gaps; our UMA
		// search finds somewhat stronger Best configs) — and never
		// wildly above.
		if casual < best*0.65 || casual > best*1.15 {
			t.Errorf("%v: casual %.1f not within expected band of best %.1f", row[:2], casual, best)
		}
	}
}

func TestFigure14SwitchReduction(t *testing.T) {
	tb := runExp(t, "fig14")
	for i, row := range tb.Rows {
		red := cellFloat(t, tb, i, "reduction")
		if red < 35 {
			t.Errorf("%v: switch reduction %.1f%% below 35%%", row[:2], red)
		}
	}
}

func TestFigure15AblationMonotone(t *testing.T) {
	tb := runExp(t, "fig15")
	for i, row := range tb.Rows {
		none := cellFloat(t, tb, i, "None")
		em := cellFloat(t, tb, i, "EM")
		emra := cellFloat(t, tb, i, "EM+RA")
		full := cellFloat(t, tb, i, "CoServe")
		if !(none < em && em < emra && emra < full) {
			t.Errorf("%v: ablation not monotone: %.1f %.1f %.1f %.1f", row[:2], none, em, emra, full)
		}
	}
}

func TestFigure16SwitchesShrinkWithOptimizations(t *testing.T) {
	tb := runExp(t, "fig16")
	for i, row := range tb.Rows {
		none := cellFloat(t, tb, i, "None")
		full := cellFloat(t, tb, i, "CoServe")
		if full >= none/2 {
			t.Errorf("%v: full CoServe switches %.0f not well below None %.0f", row[:2], full, none)
		}
	}
}

func TestFigure17Shape(t *testing.T) {
	tb := runExp(t, "fig17")
	for _, row := range tb.Rows {
		// Parse the leading number of each topology cell.
		tp := func(cell string) float64 {
			f, err := strconv.ParseFloat(strings.Fields(cell)[0], 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			return f
		}
		one, five := tp(row[2]), tp(row[6])
		peak := 0.0
		for _, cell := range row[2:] {
			if v := tp(cell); v > peak {
				peak = v
			}
		}
		if one >= peak {
			t.Errorf("%v: 1G+1C should under-utilize (%.1f vs peak %.1f)", row[:2], one, peak)
		}
		// Some configuration beyond the peak must lose throughput
		// (either 5G+1C or the +2C config).
		two := tp(row[7])
		if five >= peak && two >= peak {
			t.Errorf("%v: no decline after the peak", row[:2])
		}
	}
}

func TestFigure18SearchValid(t *testing.T) {
	tb := runExp(t, "fig18")
	var selected int
	for _, row := range tb.Rows {
		if row[4] != "" {
			n, err := strconv.Atoi(row[4])
			if err != nil || n < 1 {
				t.Fatalf("bad selected count %q", row[4])
			}
			selected = n
		}
	}
	if selected == 0 {
		t.Fatal("no selected expert count reported")
	}
}

func TestFigure19OverheadSmall(t *testing.T) {
	tb := runExp(t, "fig19")
	for i, row := range tb.Rows {
		gap := cellFloat(t, tb, i, "gap")
		if gap > 3 || gap < -3 {
			t.Errorf("%v: pre-sched gap %.2f%% exceeds the paper's 3%%", row[:2], gap)
		}
	}
}

// TestBestConfigSearchDeterministic pins the offline search output so
// accidental nondeterminism in the profiler or grid is caught.
func TestBestConfigSearchDeterministic(t *testing.T) {
	board, err := sharedCtx.Board(workload.BoardA())
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewContext()
	b1, err := sharedCtx.Best(hw.NUMADevice(), board)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c2.Best(hw.NUMADevice(), board)
	if err != nil {
		t.Fatal(err)
	}
	if b1.gpus != b2.gpus || b1.cpus != b2.cpus || b1.search.Selected != b2.search.Selected {
		t.Errorf("offline search not deterministic: %+v vs %+v", b1.search, b2.search)
	}
}

// TestGridMemoization confirms the context caches task runs.
func TestGridMemoization(t *testing.T) {
	tasks, err := sharedCtx.tasks()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sharedCtx.run(hw.NUMADevice(), core.Samba, tasks[0], false)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sharedCtx.run(hw.NUMADevice(), core.Samba, tasks[0], false)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("grid did not memoize")
	}
}
