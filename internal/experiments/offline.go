package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/runner"
	"repro/internal/workload"
)

// Figure17 reproduces the executor-count sweep ("Measurement A/B" run a
// portion of the board data offline, §5.3). The four (device,
// measurement) searches are independent, so each row is one job.
func Figure17(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig17",
		Title:   "Throughput under different executor counts, img/s (Figure 17)",
		Columns: []string{"device", "measurement", "1G+1C", "2G+1C", "3G+1C", "4G+1C", "5G+1C", "bestG+2C"},
		Notes: []string{
			"paper: 3–4 GPU executors with one CPU executor perform best; fewer under-utilize, more add overhead",
		},
	}
	specs := []workload.BoardSpec{workload.BoardA(), workload.BoardB()}
	labels := []string{"Measurement A", "Measurement B"}
	type rowJob struct {
		dev   *hw.Device
		spec  workload.BoardSpec
		label string
	}
	var jobs []rowJob
	for _, dev := range devices() {
		for i, spec := range specs {
			jobs = append(jobs, rowJob{dev, spec, labels[i]})
		}
	}
	rows, err := runner.Sweep(ctx.par, jobs, func(_ int, j rowJob) ([]string, error) {
		board, err := ctx.Board(j.spec)
		if err != nil {
			return nil, err
		}
		best, err := ctx.Best(j.dev, board)
		if err != nil {
			return nil, err
		}
		row := []string{j.dev.Mem.String(), j.label}
		for _, p := range best.topo {
			row = append(row, fmt.Sprintf("%.1f (%dG+%dC)", p.Throughput, p.GPUs, p.CPUs))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// Figure18 reproduces the decay-window memory-allocation search on the
// NUMA GPU: throughput at each window boundary, the selected window, and
// the chosen expert count. The two measurements' searches run in
// parallel; each search itself slides sequentially (every window
// boundary depends on the previous measurements).
func Figure18(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig18",
		Title:   "Decay-window search on the NUMA device (Figure 18)",
		Columns: []string{"measurement", "experts@window", "throughput", "window", "selected", "deviation"},
		Notes: []string{
			"paper: throughput rises then falls as loaded experts squeeze batch memory; the peak lies inside the selected window",
			"initial window 15, error margin 5% (§5.3)",
		},
	}
	dev := devices()[0] // NUMA, as in the paper
	specs := []workload.BoardSpec{workload.BoardA(), workload.BoardB()}
	labels := []string{"Measurement A", "Measurement B"}
	groups, err := runner.Sweep(ctx.par, specs, func(i int, spec workload.BoardSpec) ([][]string, error) {
		board, err := ctx.Board(spec)
		if err != nil {
			return nil, err
		}
		best, err := ctx.Best(dev, board)
		if err != nil {
			return nil, err
		}
		var rows [][]string
		for j, p := range best.search.Points {
			row := []string{labels[i], fmt.Sprintf("%d", p.Experts), fmt.Sprintf("%.1f", p.Throughput), "", "", ""}
			if j == len(best.search.Points)-1 {
				row[3] = fmt.Sprintf("[%d,%d]", best.search.WindowLo, best.search.WindowHi)
				row[4] = fmt.Sprintf("%d", best.search.Selected)
				row[5] = fmt.Sprintf("%.1f%%", best.search.Deviation*100)
			}
			rows = append(rows, row)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range groups {
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}

// Figure19 reproduces the overhead analysis: the wall-clock cost of one
// scheduling decision vs the virtual per-stage inference latency, and
// the pre-scheduled control run that executes the same order with zero
// online scheduling. Each (device, task) pair is one job; within a job
// the replay run necessarily follows the online run it replays.
func Figure19(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig19",
		Title:   "Scheduling overhead vs inference latency (Figure 19)",
		Columns: []string{"device", "task", "sched/op (wall)", "infer/stage (sim)", "online tp", "pre-sched tp", "gap"},
		Notes: []string{
			"paper: scheduling is faster than inference and costs <3% end to end",
			"scheduling cost is measured on the real CPU; inference latency is simulated — the comparison mirrors the paper's argument, not its absolute scale",
		},
	}
	tasks, err := ctx.tasks()
	if err != nil {
		return nil, err
	}
	type rowJob struct {
		dev  *hw.Device
		task workload.Task
	}
	var jobs []rowJob
	for _, dev := range devices() {
		for _, task := range tasks {
			if task.Name != "A2" && task.Name != "B2" {
				continue
			}
			jobs = append(jobs, rowJob{dev, task})
		}
	}
	rows, err := runner.Sweep(ctx.par, jobs, func(_ int, j rowJob) ([]string, error) {
		online, err := ctx.run(j.dev, core.CoServe, j.task, false)
		if err != nil {
			return nil, err
		}
		pm, err := ctx.Perf(j.dev)
		if err != nil {
			return nil, err
		}
		g, cp := core.DefaultExecutors(j.dev)
		cfg := core.Config{
			Device: j.dev, Variant: core.CoServe,
			GPUExecutors: g, CPUExecutors: cp,
			Alloc: core.CasualAllocation(j.dev, pm, g, cp),
			Perf:  pm, PreschedPicks: online.Picks,
		}
		sys, err := core.NewSystem(cfg, j.task.Board.Model)
		if err != nil {
			return nil, err
		}
		presched, err := sys.RunTask(j.task)
		if err != nil {
			return nil, err
		}
		gap := 0.0
		if presched.Throughput > 0 {
			gap = (presched.Throughput - online.Throughput) / presched.Throughput
		}
		return []string{
			j.dev.Mem.String(), j.task.Name,
			online.SchedPerOp.Round(10 * time.Nanosecond).String(),
			online.InferPerStage.Round(100 * time.Microsecond).String(),
			fmt.Sprintf("%.1f", online.Throughput),
			fmt.Sprintf("%.1f", presched.Throughput),
			fmt.Sprintf("%.2f%%", gap*100),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
