package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Figure17 reproduces the executor-count sweep ("Measurement A/B" run a
// portion of the board data offline, §5.3).
func Figure17(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig17",
		Title:   "Throughput under different executor counts, img/s (Figure 17)",
		Columns: []string{"device", "measurement", "1G+1C", "2G+1C", "3G+1C", "4G+1C", "5G+1C", "bestG+2C"},
		Notes: []string{
			"paper: 3–4 GPU executors with one CPU executor perform best; fewer under-utilize, more add overhead",
		},
	}
	specs := []workload.BoardSpec{workload.BoardA(), workload.BoardB()}
	labels := []string{"Measurement A", "Measurement B"}
	for _, dev := range devices() {
		for i, spec := range specs {
			board, err := ctx.Board(spec)
			if err != nil {
				return nil, err
			}
			best, err := ctx.Best(dev, board)
			if err != nil {
				return nil, err
			}
			row := []string{dev.Mem.String(), labels[i]}
			for _, p := range best.topo {
				row = append(row, fmt.Sprintf("%.1f (%dG+%dC)", p.Throughput, p.GPUs, p.CPUs))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Figure18 reproduces the decay-window memory-allocation search on the
// NUMA GPU: throughput at each window boundary, the selected window, and
// the chosen expert count.
func Figure18(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig18",
		Title:   "Decay-window search on the NUMA device (Figure 18)",
		Columns: []string{"measurement", "experts@window", "throughput", "window", "selected", "deviation"},
		Notes: []string{
			"paper: throughput rises then falls as loaded experts squeeze batch memory; the peak lies inside the selected window",
			"initial window 15, error margin 5% (§5.3)",
		},
	}
	dev := devices()[0] // NUMA, as in the paper
	specs := []workload.BoardSpec{workload.BoardA(), workload.BoardB()}
	labels := []string{"Measurement A", "Measurement B"}
	for i, spec := range specs {
		board, err := ctx.Board(spec)
		if err != nil {
			return nil, err
		}
		best, err := ctx.Best(dev, board)
		if err != nil {
			return nil, err
		}
		for j, p := range best.search.Points {
			row := []string{labels[i], fmt.Sprintf("%d", p.Experts), fmt.Sprintf("%.1f", p.Throughput), "", "", ""}
			if j == len(best.search.Points)-1 {
				row[3] = fmt.Sprintf("[%d,%d]", best.search.WindowLo, best.search.WindowHi)
				row[4] = fmt.Sprintf("%d", best.search.Selected)
				row[5] = fmt.Sprintf("%.1f%%", best.search.Deviation*100)
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Figure19 reproduces the overhead analysis: the wall-clock cost of one
// scheduling decision vs the virtual per-stage inference latency, and
// the pre-scheduled control run that executes the same order with zero
// online scheduling.
func Figure19(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig19",
		Title:   "Scheduling overhead vs inference latency (Figure 19)",
		Columns: []string{"device", "task", "sched/op (wall)", "infer/stage (sim)", "online tp", "pre-sched tp", "gap"},
		Notes: []string{
			"paper: scheduling is faster than inference and costs <3% end to end",
			"scheduling cost is measured on the real CPU; inference latency is simulated — the comparison mirrors the paper's argument, not its absolute scale",
		},
	}
	tasks, err := ctx.tasks()
	if err != nil {
		return nil, err
	}
	for _, dev := range devices() {
		for _, task := range tasks {
			if task.Name != "A2" && task.Name != "B2" {
				continue
			}
			online, err := ctx.run(dev, core.CoServe, task, false)
			if err != nil {
				return nil, err
			}
			pm, err := ctx.Perf(dev)
			if err != nil {
				return nil, err
			}
			g, cp := core.DefaultExecutors(dev)
			cfg := core.Config{
				Device: dev, Variant: core.CoServe,
				GPUExecutors: g, CPUExecutors: cp,
				Alloc: core.CasualAllocation(dev, pm, g, cp),
				Perf:  pm, PreschedPicks: online.Picks,
			}
			sys, err := core.NewSystem(cfg, task.Board.Model)
			if err != nil {
				return nil, err
			}
			presched, err := sys.RunTask(task)
			if err != nil {
				return nil, err
			}
			gap := 0.0
			if presched.Throughput > 0 {
				gap = (presched.Throughput - online.Throughput) / presched.Throughput
			}
			t.Rows = append(t.Rows, []string{
				dev.Mem.String(), task.Name,
				online.SchedPerOp.Round(10 * time.Nanosecond).String(),
				online.InferPerStage.Round(100 * time.Microsecond).String(),
				fmt.Sprintf("%.1f", online.Throughput),
				fmt.Sprintf("%.1f", presched.Throughput),
				fmt.Sprintf("%.2f%%", gap*100),
			})
		}
	}
	return t, nil
}
