// Package experiments regenerates every table and figure of the paper's
// evaluation (§1 Figure 1, §3 Figures 5/6, §4 Figures 11/12, §5 Figures
// 13–19 and Table 1). Each experiment is a named, deterministic function
// returning a printable table; the CLI (cmd/coserve) and the benchmark
// harness (bench_test.go) both run through this registry.
//
// Sweep points — the (device, batch size, policy, executor count, …)
// grid cells behind each table — are independent simulations, and the
// package fans them out across a bounded worker pool (internal/runner).
// Results are collected in submission order and every simulation owns
// its environment and seed-derived RNG, so the rendered tables are
// byte-identical at every worker count; Context.SetParallel(1) restores
// a fully sequential run.
package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"unicode/utf8"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/profiler"
	"repro/internal/runner"
	"repro/internal/workload"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Columns, "\t"))
	dashes := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		dashes[i] = strings.Repeat("-", utf8.RuneCountInString(c))
	}
	fmt.Fprintln(w, strings.Join(dashes, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is one registered reproduction target.
type Experiment struct {
	ID    string
	Paper string // the paper artifact this regenerates
	Desc  string
	Run   func(ctx *Context) (*Table, error)
}

// Registry returns all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"tab1", "Table 1", "hardware profiles of the evaluation devices", Table1},
		{"fig1", "Figure 1", "expert switching latency share by memory path", Figure1},
		{"fig5", "Figure 5", "average inference latency vs batch size", Figure5},
		{"fig6", "Figure 6", "memory footprint vs batch size", Figure6},
		{"fig11", "Figure 11", "cumulative distribution of expert usage", Figure11},
		{"fig12", "Figure 12", "execution latency vs batch size", Figure12},
		{"fig13", "Figure 13", "throughput of CoServe and baselines", Figure13},
		{"fig14", "Figure 14", "number of expert switches", Figure14},
		{"fig15", "Figure 15", "ablation: throughput per optimization", Figure15},
		{"fig16", "Figure 16", "ablation: expert switches per optimization", Figure16},
		{"fig17", "Figure 17", "throughput under different executor counts", Figure17},
		{"fig18", "Figure 18", "decay-window memory allocation search", Figure18},
		{"fig19", "Figure 19", "scheduling overhead vs inference latency", Figure19},
	}
}

// All returns the paper artifacts followed by the extension and
// serving-layer experiments.
func All() []Experiment {
	all := append(Registry(), extRegistry()...)
	return append(all, serveRegistry()...)
}

// ByID finds an experiment (paper artifact or extension).
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (try: %s)", id, strings.Join(IDs(), " "))
}

// IDs lists all experiment IDs in order.
func IDs() []string {
	reg := All()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	return ids
}

// RunAll regenerates the experiments with the given IDs (every
// registered experiment when ids is nil), fanning independent
// experiments out across the context's worker pool. Rendered tables
// return in ID order regardless of execution order, so the concatenated
// output is byte-identical at every worker count.
func RunAll(ctx *Context, ids []string) ([]string, error) {
	if ids == nil {
		ids = IDs()
	}
	return runner.Sweep(ctx.par, ids, func(_ int, id string) (string, error) {
		e, err := ByID(id)
		if err != nil {
			return "", err
		}
		tb, err := e.Run(ctx)
		if err != nil {
			return "", fmt.Errorf("%s: %w", id, err)
		}
		return tb.Render(), nil
	})
}

// Context caches the expensive shared state — boards, profiled
// performance matrices, the evaluation grid of task runs, batch-size
// microbenchmark sweeps, and the offline-search results — so the figure
// set can be regenerated in one process without repeating work. A
// Context is safe for concurrent use: each cache key is built exactly
// once (concurrent requesters block on the single builder and share its
// result), which is what lets parallel sweep points share one offline
// phase instead of recomputing or racing on it.
type Context struct {
	par    *runner.Pool
	shards int
	boards runner.Memo[string, *workload.Board]
	perf   runner.Memo[string, model.PerfMatrix]
	grid   runner.Memo[gridKey, *core.Report]
	best   runner.Memo[string, bestChoice]
	sweeps runner.Memo[string, [][]profiler.BatchPoint]
}

type gridKey struct {
	dev     string
	variant core.Variant
	task    string
	best    bool
}

// NewContext returns an empty cache whose sweeps fan out across
// runtime.GOMAXPROCS(0) workers; SetParallel adjusts the bound.
func NewContext() *Context {
	return &Context{par: runner.New(0)}
}

// SetParallel bounds the worker count used for sweep fan-out (n <= 0
// means runtime.GOMAXPROCS(0); 1 runs fully sequentially). The rendered
// tables are byte-identical at every setting.
func (c *Context) SetParallel(n int) { c.par = runner.New(n) }

// Parallel reports the context's worker bound.
func (c *Context) Parallel() int { return c.par.Workers() }

// SetShards sets the worker count the sharded cluster kernel uses for
// experiments that serve over an interconnect (n <= 0 means
// runtime.GOMAXPROCS(0); 1 runs the partitioned kernel sequentially).
// Orthogonal to SetParallel: Parallel fans out independent sweep
// points, Shards parallelizes the node partitions inside one
// simulation. Reports are byte-identical at every setting.
func (c *Context) SetShards(n int) {
	if n < 0 {
		n = 0
	}
	c.shards = n
}

// Shards reports the kernel worker count interconnect-enabled
// experiments run with (0 means runtime.GOMAXPROCS(0)).
func (c *Context) Shards() int { return c.shards }

// evalArchs are the architectures the evaluation uses (§5.1).
var evalArchs = []model.Architecture{model.ResNet101, model.YOLOv5m, model.YOLOv5l}

// devices returns the two evaluation platforms in paper order.
func devices() []*hw.Device {
	return []*hw.Device{hw.NUMADevice(), hw.UMADevice()}
}

// Board returns the memoized board for a spec.
func (c *Context) Board(spec workload.BoardSpec) (*workload.Board, error) {
	return c.boards.Do(spec.Name, spec.Build)
}

// Perf returns the memoized offline performance matrix for a device.
func (c *Context) Perf(dev *hw.Device) (model.PerfMatrix, error) {
	return c.perf.Do(dev.Name, func() (model.PerfMatrix, error) {
		return profiler.Matrix(dev, evalArchs)
	})
}

// tasks returns the four evaluation tasks over the two boards.
func (c *Context) tasks() ([]workload.Task, error) {
	a, err := c.Board(workload.BoardA())
	if err != nil {
		return nil, err
	}
	b, err := c.Board(workload.BoardB())
	if err != nil {
		return nil, err
	}
	return []workload.Task{
		workload.TaskA1(a), workload.TaskA2(a),
		workload.TaskB1(b), workload.TaskB2(b),
	}, nil
}

// sampleTask is the offline phase's "smaller, representative dataset
// sampled from the application scenario" (§4.4).
func sampleTask(b *workload.Board) workload.Task {
	return workload.Task{
		Name:          "sample-" + b.Spec.Name,
		Board:         b,
		N:             600,
		ArrivalPeriod: workload.DefaultArrivalPeriod,
		Seed:          777,
	}
}

// run executes (and memoizes) one task under one system configuration.
// Each execution builds its own System and simulation environment, so
// distinct keys may run concurrently.
func (c *Context) run(dev *hw.Device, v core.Variant, task workload.Task, useBest bool) (*core.Report, error) {
	key := gridKey{dev: dev.Name, variant: v, task: task.Name + "/" + task.Board.Spec.Name, best: useBest}
	return c.grid.Do(key, func() (*core.Report, error) {
		cfg, err := c.configFor(dev, v, task.Board, useBest)
		if err != nil {
			return nil, err
		}
		sys, err := core.NewSystem(cfg, task.Board.Model)
		if err != nil {
			return nil, err
		}
		return sys.RunTask(task)
	})
}

// configFor assembles the configuration a variant runs under: Samba
// variants get the Samba memory layout, CoServe variants the casual
// layout, and "best" the offline-searched layout (§5.2).
func (c *Context) configFor(dev *hw.Device, v core.Variant, board *workload.Board, useBest bool) (core.Config, error) {
	pm, err := c.Perf(dev)
	if err != nil {
		return core.Config{}, err
	}
	g, cp := core.DefaultExecutors(dev)
	cfg := core.Config{Device: dev, Variant: v, GPUExecutors: g, CPUExecutors: cp, Perf: pm}
	switch {
	case v == core.Samba || v == core.SambaFIFO:
		cfg.Alloc = core.SambaAllocation(dev, pm)
	case useBest:
		best, err := c.Best(dev, board)
		if err != nil {
			return core.Config{}, err
		}
		cfg.GPUExecutors, cfg.CPUExecutors = best.gpus, best.cpus
		cfg.Alloc = best.alloc
	default:
		cfg.Alloc = core.CasualAllocation(dev, pm, g, cp)
	}
	return cfg, nil
}

// bestChoice is the offline phase's output for one device+board.
type bestChoice struct {
	gpus, cpus int
	alloc      core.Allocation
	search     profiler.SearchResult
	topo       []profiler.TopologyPoint
}

// Best runs (and memoizes) the offline configuration search: the
// executor-count sweep of Figure 17 followed by the decay-window memory
// search of §4.4/Figure 18, both on the sample dataset. The
// executor-count phase measures independent topologies, so its points
// run through the worker pool; the decay-window slide is adaptive (each
// boundary depends on the previous measurements) and stays sequential.
func (c *Context) Best(dev *hw.Device, board *workload.Board) (bestChoice, error) {
	key := dev.Name + "/" + board.Spec.Name
	return c.best.Do(key, func() (bestChoice, error) {
		pm, err := c.Perf(dev)
		if err != nil {
			return bestChoice{}, err
		}
		task := sampleTask(board)

		topoRunner := func(g, cp int) (float64, error) {
			cfg := core.Config{
				Device: dev, Variant: core.CoServe,
				GPUExecutors: g, CPUExecutors: cp,
				Alloc: core.CasualAllocation(dev, pm, g, cp), Perf: pm,
			}
			sys, err := core.NewSystem(cfg, board.Model)
			if err != nil {
				return 0, err
			}
			rep, err := sys.RunTask(task)
			if err != nil {
				return 0, err
			}
			return rep.Throughput, nil
		}
		// Paper sweep: 1..5 GPU executors with one CPU executor, then the
		// best GPU count with two. The phase-1 points are independent
		// simulations: measure them in parallel, then feed the memoized
		// throughputs back through TopologySweep (which consumes configs
		// in order), so point building and tie-breaking stay in one
		// place.
		phase1 := [][2]int{{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}}
		tps, err := runner.Sweep(c.par, phase1, func(_ int, cfg [2]int) (float64, error) {
			return topoRunner(cfg[0], cfg[1])
		})
		if err != nil {
			return bestChoice{}, fmt.Errorf("profiler: topology sweep: %w", err)
		}
		next := 0
		points, bestIdx, err := profiler.TopologySweep(phase1, func(g, cp int) (float64, error) {
			if next >= len(phase1) || g != phase1[next][0] || cp != phase1[next][1] {
				return 0, fmt.Errorf("experiments: topology replay out of sync at %dG+%dC", g, cp)
			}
			tp := tps[next]
			next++
			return tp, nil
		})
		if err != nil {
			return bestChoice{}, err
		}
		bestG := points[bestIdx].GPUs
		more, _, err := profiler.TopologySweep([][2]int{{bestG, 2}}, topoRunner)
		if err != nil {
			return bestChoice{}, err
		}
		points = append(points, more...)
		gBest, cBest, tpBest := points[0].GPUs, points[0].CPUs, points[0].Throughput
		for _, p := range points {
			if p.Throughput > tpBest {
				gBest, cBest, tpBest = p.GPUs, p.CPUs, p.Throughput
			}
		}

		maxExperts := core.MaxGPUExperts(dev, pm, gBest, cBest, evalArchs)
		params := profiler.DefaultSearchParams(maxExperts)
		// The per-pool floor: each GPU pool must hold two largest experts.
		minExperts := 3 * gBest
		search, err := profiler.DecayWindow(params, func(n int) (float64, error) {
			if n < minExperts {
				n = minExperts
			}
			cfg := core.Config{
				Device: dev, Variant: core.CoServe,
				GPUExecutors: gBest, CPUExecutors: cBest,
				Alloc: core.AllocationForExperts(dev, pm, n, gBest, cBest), Perf: pm,
			}
			sys, err := core.NewSystem(cfg, board.Model)
			if err != nil {
				return 0, err
			}
			rep, err := sys.RunTask(task)
			if err != nil {
				return 0, err
			}
			return rep.Throughput, nil
		})
		if err != nil {
			return bestChoice{}, err
		}
		selected := search.Selected
		if selected < minExperts {
			selected = minExperts
		}
		return bestChoice{
			gpus: gBest, cpus: cBest,
			alloc:  core.AllocationForExperts(dev, pm, selected, gBest, cBest),
			search: search,
			topo:   points,
		}, nil
	})
}

// gridRows fans one job per (device, task) row through the context's
// worker pool: each job runs the given systems in order against its
// row's task and formats the row. Rows come back in device-major,
// task-minor order — exactly the sequential iteration order.
func gridRows(ctx *Context, systems []evalSystem, format func(dev *hw.Device, task workload.Task, reps []*core.Report) []string) ([][]string, error) {
	tasks, err := ctx.tasks()
	if err != nil {
		return nil, err
	}
	type rowJob struct {
		dev  *hw.Device
		task workload.Task
	}
	var jobs []rowJob
	for _, dev := range devices() {
		for _, task := range tasks {
			jobs = append(jobs, rowJob{dev, task})
		}
	}
	return runner.Sweep(ctx.par, jobs, func(_ int, j rowJob) ([]string, error) {
		reps := make([]*core.Report, len(systems))
		for i, s := range systems {
			rep, err := ctx.run(j.dev, s.variant, j.task, s.best)
			if err != nil {
				return nil, fmt.Errorf("%s/%s/%s: %w", j.dev.Name, j.task.Name, s.label, err)
			}
			reps[i] = rep
		}
		return format(j.dev, j.task, reps), nil
	})
}
