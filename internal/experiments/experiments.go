// Package experiments regenerates every table and figure of the paper's
// evaluation (§1 Figure 1, §3 Figures 5/6, §4 Figures 11/12, §5 Figures
// 13–19 and Table 1). Each experiment is a named, deterministic function
// returning a printable table; the CLI (cmd/coserve) and the benchmark
// harness (bench_test.go) both run through this registry.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/profiler"
	"repro/internal/workload"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Columns, "\t"))
	dashes := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		dashes[i] = strings.Repeat("-", len(c))
	}
	fmt.Fprintln(w, strings.Join(dashes, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is one registered reproduction target.
type Experiment struct {
	ID    string
	Paper string // the paper artifact this regenerates
	Desc  string
	Run   func(ctx *Context) (*Table, error)
}

// Registry returns all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"tab1", "Table 1", "hardware profiles of the evaluation devices", Table1},
		{"fig1", "Figure 1", "expert switching latency share by memory path", Figure1},
		{"fig5", "Figure 5", "average inference latency vs batch size", Figure5},
		{"fig6", "Figure 6", "memory footprint vs batch size", Figure6},
		{"fig11", "Figure 11", "cumulative distribution of expert usage", Figure11},
		{"fig12", "Figure 12", "execution latency vs batch size", Figure12},
		{"fig13", "Figure 13", "throughput of CoServe and baselines", Figure13},
		{"fig14", "Figure 14", "number of expert switches", Figure14},
		{"fig15", "Figure 15", "ablation: throughput per optimization", Figure15},
		{"fig16", "Figure 16", "ablation: expert switches per optimization", Figure16},
		{"fig17", "Figure 17", "throughput under different executor counts", Figure17},
		{"fig18", "Figure 18", "decay-window memory allocation search", Figure18},
		{"fig19", "Figure 19", "scheduling overhead vs inference latency", Figure19},
	}
}

// All returns the paper artifacts followed by the extension and
// serving-layer experiments.
func All() []Experiment {
	all := append(Registry(), extRegistry()...)
	return append(all, serveRegistry()...)
}

// ByID finds an experiment (paper artifact or extension).
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (try: %s)", id, strings.Join(IDs(), " "))
}

// IDs lists all experiment IDs in order.
func IDs() []string {
	reg := All()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	return ids
}

// Context caches the expensive shared state — boards, profiled
// performance matrices, the evaluation grid of task runs, and the
// offline-search results — so the figure set can be regenerated in one
// process without repeating work. A Context is not safe for concurrent
// use.
type Context struct {
	boards map[string]*workload.Board
	perf   map[string]model.PerfMatrix
	grid   map[gridKey]*core.Report
	best   map[string]bestChoice
}

type gridKey struct {
	dev     string
	variant core.Variant
	task    string
	best    bool
}

// NewContext returns an empty cache.
func NewContext() *Context {
	return &Context{
		boards: make(map[string]*workload.Board),
		perf:   make(map[string]model.PerfMatrix),
		grid:   make(map[gridKey]*core.Report),
		best:   make(map[string]bestChoice),
	}
}

// evalArchs are the architectures the evaluation uses (§5.1).
var evalArchs = []model.Architecture{model.ResNet101, model.YOLOv5m, model.YOLOv5l}

// devices returns the two evaluation platforms in paper order.
func devices() []*hw.Device {
	return []*hw.Device{hw.NUMADevice(), hw.UMADevice()}
}

// Board returns the memoized board for a spec.
func (c *Context) Board(spec workload.BoardSpec) (*workload.Board, error) {
	if b, ok := c.boards[spec.Name]; ok {
		return b, nil
	}
	b, err := spec.Build()
	if err != nil {
		return nil, err
	}
	c.boards[spec.Name] = b
	return b, nil
}

// Perf returns the memoized offline performance matrix for a device.
func (c *Context) Perf(dev *hw.Device) (model.PerfMatrix, error) {
	if pm, ok := c.perf[dev.Name]; ok {
		return pm, nil
	}
	pm, err := profiler.Matrix(dev, evalArchs)
	if err != nil {
		return nil, err
	}
	c.perf[dev.Name] = pm
	return pm, nil
}

// tasks returns the four evaluation tasks over the two boards.
func (c *Context) tasks() ([]workload.Task, error) {
	a, err := c.Board(workload.BoardA())
	if err != nil {
		return nil, err
	}
	b, err := c.Board(workload.BoardB())
	if err != nil {
		return nil, err
	}
	return []workload.Task{
		workload.TaskA1(a), workload.TaskA2(a),
		workload.TaskB1(b), workload.TaskB2(b),
	}, nil
}

// sampleTask is the offline phase's "smaller, representative dataset
// sampled from the application scenario" (§4.4).
func sampleTask(b *workload.Board) workload.Task {
	return workload.Task{
		Name:          "sample-" + b.Spec.Name,
		Board:         b,
		N:             600,
		ArrivalPeriod: workload.DefaultArrivalPeriod,
		Seed:          777,
	}
}

// run executes (and memoizes) one task under one system configuration.
func (c *Context) run(dev *hw.Device, v core.Variant, task workload.Task, useBest bool) (*core.Report, error) {
	key := gridKey{dev: dev.Name, variant: v, task: task.Name + "/" + task.Board.Spec.Name, best: useBest}
	if rep, ok := c.grid[key]; ok {
		return rep, nil
	}
	cfg, err := c.configFor(dev, v, task.Board, useBest)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(cfg, task.Board.Model)
	if err != nil {
		return nil, err
	}
	rep, err := sys.RunTask(task)
	if err != nil {
		return nil, err
	}
	c.grid[key] = rep
	return rep, nil
}

// configFor assembles the configuration a variant runs under: Samba
// variants get the Samba memory layout, CoServe variants the casual
// layout, and "best" the offline-searched layout (§5.2).
func (c *Context) configFor(dev *hw.Device, v core.Variant, board *workload.Board, useBest bool) (core.Config, error) {
	pm, err := c.Perf(dev)
	if err != nil {
		return core.Config{}, err
	}
	g, cp := core.DefaultExecutors(dev)
	cfg := core.Config{Device: dev, Variant: v, GPUExecutors: g, CPUExecutors: cp, Perf: pm}
	switch {
	case v == core.Samba || v == core.SambaFIFO:
		cfg.Alloc = core.SambaAllocation(dev, pm)
	case useBest:
		best, err := c.Best(dev, board)
		if err != nil {
			return core.Config{}, err
		}
		cfg.GPUExecutors, cfg.CPUExecutors = best.gpus, best.cpus
		cfg.Alloc = best.alloc
	default:
		cfg.Alloc = core.CasualAllocation(dev, pm, g, cp)
	}
	return cfg, nil
}

// bestChoice is the offline phase's output for one device+board.
type bestChoice struct {
	gpus, cpus int
	alloc      core.Allocation
	search     profiler.SearchResult
	topo       []profiler.TopologyPoint
}

// Best runs (and memoizes) the offline configuration search: the
// executor-count sweep of Figure 17 followed by the decay-window memory
// search of §4.4/Figure 18, both on the sample dataset.
func (c *Context) Best(dev *hw.Device, board *workload.Board) (bestChoice, error) {
	key := dev.Name + "/" + board.Spec.Name
	if b, ok := c.best[key]; ok {
		return b, nil
	}
	pm, err := c.Perf(dev)
	if err != nil {
		return bestChoice{}, err
	}
	task := sampleTask(board)

	topoRunner := func(g, cp int) (float64, error) {
		cfg := core.Config{
			Device: dev, Variant: core.CoServe,
			GPUExecutors: g, CPUExecutors: cp,
			Alloc: core.CasualAllocation(dev, pm, g, cp), Perf: pm,
		}
		sys, err := core.NewSystem(cfg, board.Model)
		if err != nil {
			return 0, err
		}
		rep, err := sys.RunTask(task)
		if err != nil {
			return 0, err
		}
		return rep.Throughput, nil
	}
	// Paper sweep: 1..5 GPU executors with one CPU executor, then the
	// best GPU count with two.
	phase1 := [][2]int{{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}}
	points, bestIdx, err := profiler.TopologySweep(phase1, topoRunner)
	if err != nil {
		return bestChoice{}, err
	}
	bestG := points[bestIdx].GPUs
	more, _, err := profiler.TopologySweep([][2]int{{bestG, 2}}, topoRunner)
	if err != nil {
		return bestChoice{}, err
	}
	points = append(points, more...)
	gBest, cBest, tpBest := points[0].GPUs, points[0].CPUs, points[0].Throughput
	for _, p := range points {
		if p.Throughput > tpBest {
			gBest, cBest, tpBest = p.GPUs, p.CPUs, p.Throughput
		}
	}

	maxExperts := core.MaxGPUExperts(dev, pm, gBest, cBest, evalArchs)
	params := profiler.DefaultSearchParams(maxExperts)
	// The per-pool floor: each GPU pool must hold two largest experts.
	minExperts := 3 * gBest
	search, err := profiler.DecayWindow(params, func(n int) (float64, error) {
		if n < minExperts {
			n = minExperts
		}
		cfg := core.Config{
			Device: dev, Variant: core.CoServe,
			GPUExecutors: gBest, CPUExecutors: cBest,
			Alloc: core.AllocationForExperts(dev, pm, n, gBest, cBest), Perf: pm,
		}
		sys, err := core.NewSystem(cfg, board.Model)
		if err != nil {
			return 0, err
		}
		rep, err := sys.RunTask(task)
		if err != nil {
			return 0, err
		}
		return rep.Throughput, nil
	})
	if err != nil {
		return bestChoice{}, err
	}
	selected := search.Selected
	if selected < minExperts {
		selected = minExperts
	}
	choice := bestChoice{
		gpus: gBest, cpus: cBest,
		alloc:  core.AllocationForExperts(dev, pm, selected, gBest, cBest),
		search: search,
		topo:   points,
	}
	c.best[key] = choice
	return choice, nil
}

// sortedKeys is a small helper for deterministic map iteration in
// rendering code.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
