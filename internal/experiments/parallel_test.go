package experiments

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/core"
)

// schedWallCell matches fig19's "sched/op (wall)" cells (for example
// "1.23µs" inside a row). That column is a real wall-clock measurement
// of scheduling cost — the only nondeterministic cells in the whole
// registry, varying between ANY two runs, sequential ones included. The
// golden comparison masks it and compares every other byte exactly.
var schedWallCell = regexp.MustCompile(`[0-9.]+[µnm]?s`)

// maskWallClock blanks fig19's wall-clock scheduling column; every
// other table passes through untouched.
func maskWallClock(id, rendered string) string {
	if id != "fig19" {
		return rendered
	}
	// Rather than parse the aligned layout for the one wall-clock
	// column, mask every duration token: the virtual-time durations are
	// identical across runs anyway, so masking them too keeps the
	// comparison sound. The masked token's width differs run to run
	// ("1.2µs" vs "890ns"), which shifts the tabwriter's padding, so
	// column whitespace is collapsed as well.
	masked := schedWallCell.ReplaceAllString(rendered, "<dur>")
	return regexp.MustCompile(` {2,}`).ReplaceAllString(masked, " ")
}

// TestParallelOutputByteIdentical is the engine's core guarantee: every
// registered experiment (paper artifacts, extensions, and the serve-*
// family) renders byte-identically whether sweeps run on one worker or
// fan out across eight.
func TestParallelOutputByteIdentical(t *testing.T) {
	seq := NewContext()
	seq.SetParallel(1)
	par := NewContext()
	par.SetParallel(8)
	if seq.Parallel() != 1 || par.Parallel() != 8 {
		t.Fatalf("SetParallel not applied: %d, %d", seq.Parallel(), par.Parallel())
	}
	for _, e := range All() {
		sTab, err := e.Run(seq)
		if err != nil {
			t.Fatalf("%s sequential: %v", e.ID, err)
		}
		pTab, err := e.Run(par)
		if err != nil {
			t.Fatalf("%s parallel: %v", e.ID, err)
		}
		s, p := maskWallClock(e.ID, sTab.Render()), maskWallClock(e.ID, pTab.Render())
		if s != p {
			t.Errorf("%s: parallel output differs from sequential\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", e.ID, s, p)
		}
	}
}

// TestRunAllOrderAndEquivalence checks the top-level fan-out: RunAll on
// a parallel context returns exactly the per-ID renders, in ID order.
func TestRunAllOrderAndEquivalence(t *testing.T) {
	ids := []string{"tab1", "fig1", "fig11", "ext-arrival"}
	ctx := NewContext()
	ctx.SetParallel(4)
	outs, err := RunAll(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(ids) {
		t.Fatalf("RunAll returned %d outputs for %d ids", len(outs), len(ids))
	}
	for i, id := range ids {
		want, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := want.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if outs[i] != tb.Render() {
			t.Errorf("RunAll[%d] is not the render of %s", i, id)
		}
		if !strings.HasPrefix(outs[i], id+" ") {
			t.Errorf("RunAll[%d] = %q..., want experiment %s", i, outs[i][:min(len(outs[i]), 20)], id)
		}
	}
	if _, err := RunAll(ctx, []string{"fig99"}); err == nil {
		t.Error("RunAll accepted an unknown id")
	}
	all, err := RunAll(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(IDs()) {
		t.Errorf("RunAll(nil) returned %d outputs, want %d", len(all), len(IDs()))
	}
}

// TestContextSharedAcrossWorkers checks the memoization contract: two
// experiments touching the same grid key on a parallel context share
// one report, even when requested concurrently.
func TestContextSharedAcrossWorkers(t *testing.T) {
	ctx := NewContext()
	ctx.SetParallel(8)
	if _, err := RunAll(ctx, []string{"fig13", "fig14"}); err != nil {
		t.Fatal(err)
	}
	tasks, err := ctx.tasks()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ctx.run(devices()[0], core.Samba, tasks[0], false)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ctx.run(devices()[0], core.Samba, tasks[0], false)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("grid did not memoize across parallel experiments")
	}
}

// TestRenderDashesUseRuneCount pins the header-underline width fix:
// non-ASCII column names must be underlined by their rune count, not
// their byte length.
func TestRenderDashesUseRuneCount(t *testing.T) {
	tb := &Table{
		ID:      "x",
		Title:   "t",
		Columns: []string{"débit (img/s)", "±σ"},
		Rows:    [][]string{{"1", "2"}},
	}
	lines := strings.Split(tb.Render(), "\n")
	if len(lines) < 3 {
		t.Fatal("short render")
	}
	dashLine := lines[2]
	// "débit (img/s)" is 13 runes but 14 bytes; "±σ" is 2 runes but 4
	// bytes. Byte-length underlining over-dashes both.
	if strings.Contains(dashLine, strings.Repeat("-", 14)) {
		t.Errorf("first column underlined by byte length: %q", dashLine)
	}
	if !strings.Contains(dashLine, strings.Repeat("-", 13)) {
		t.Errorf("first column not underlined by rune count: %q", dashLine)
	}
	fields := strings.Fields(dashLine)
	if got := fields[len(fields)-1]; got != "--" {
		t.Errorf("2-rune column underlined as %q, want \"--\"", got)
	}
}
