package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// grayfailSLO is the per-request objective the gray-failure experiment
// scores against. It is deliberately looser than serveSLO: the
// partition fleet's clean attainment sits near 97% at 3 s, while a
// straggler's trapped victims wait tens of seconds — the objective
// separates served from trapped, not fast from slow.
const grayfailSLO = 3 * time.Second

// grayfailPlan returns the named gray-failure script. Each script
// degrades nodes 1 and 2 — the two busiest partition owners, together
// home to ~60% of the stream's classes — inside the ~30 s arrival
// horizon of the 8 req/s × 240-request Poisson stream. The nodes never
// leave the Up lifecycle state, which is the whole point: only a health
// measurement can tell they are sick.
func grayfailPlan(script string) *sim.FaultPlan {
	switch script {
	case "slow":
		// Stragglers: 150× service time from 1 s until the operator fixes
		// them at 25 s (past most of the stream).
		return &sim.FaultPlan{Events: []sim.FaultEvent{
			{At: time.Second, Node: 1, Kind: sim.FaultSlow, Factor: 150},
			{At: time.Second, Node: 2, Kind: sim.FaultSlow, Factor: 150},
			{At: 25 * time.Second, Node: 1, Kind: sim.FaultRecover},
			{At: 25 * time.Second, Node: 2, Kind: sim.FaultRecover},
		}}
	case "jitter":
		// Noisy degradation: each batch inflated by a seeded uniform
		// factor in [1, 400] — some batches race through, most crawl.
		return &sim.FaultPlan{Events: []sim.FaultEvent{
			{At: time.Second, Node: 1, Kind: sim.FaultJitter, Factor: 400},
			{At: time.Second, Node: 2, Kind: sim.FaultJitter, Factor: 400},
			{At: 25 * time.Second, Node: 1, Kind: sim.FaultRecover},
			{At: 25 * time.Second, Node: 2, Kind: sim.FaultRecover},
		}}
	case "stall":
		// Back-to-back freezes: nothing either node starts between 1 s and
		// 25 s can finish before the stall clears. Stalls clear themselves —
		// no recover event.
		return &sim.FaultPlan{Events: []sim.FaultEvent{
			{At: 1 * time.Second, Node: 1, Kind: sim.FaultStall, For: 12 * time.Second},
			{At: 1 * time.Second, Node: 2, Kind: sim.FaultStall, For: 12 * time.Second},
			{At: 13 * time.Second, Node: 1, Kind: sim.FaultStall, For: 12 * time.Second},
			{At: 13 * time.Second, Node: 2, Kind: sim.FaultStall, For: 12 * time.Second},
		}}
	}
	panic("experiments: unknown grayfail script " + script)
}

// grayfailMitigations are the three mitigation stacks each script runs
// under: nothing, the health-scored circuit breaker alone, and the
// breaker plus hedged requests.
func grayfailMitigations() []struct {
	name   string
	health cluster.HealthConfig
	hedge  cluster.HedgeConfig
} {
	health := cluster.HealthConfig{
		Window:  500 * time.Millisecond,
		Breaker: true,
		// A long cooldown and a three-probe reinstatement quorum keep a
		// jittering node from flapping back into rotation on one lucky
		// fast batch.
		Cooldown: 8,
		Probes:   3,
	}
	return []struct {
		name   string
		health cluster.HealthConfig
		hedge  cluster.HedgeConfig
	}{
		{"none", cluster.HealthConfig{}, cluster.HedgeConfig{}},
		{"breaker", health, cluster.HedgeConfig{}},
		{"breaker+hedge", health, cluster.HedgeConfig{After: time.Second}},
	}
}

// ServeGrayfail drives a 4-node fleet through gray-failure scripts —
// fail-slow, jitter, and stall on the two busiest nodes — under the
// affinity router and partition placement, the arrangement a gray
// failure hurts most: every expert lives on exactly one node, so
// residency-first routing keeps sending each class to its home no
// matter how sick that home is. The fleet's lifecycle layer sees four
// Up nodes throughout; nothing fail-stop ever fires. Each script then
// reruns with the health-scored circuit breaker (which un-pins new
// arrivals by removing the sick nodes from the candidate set), and
// with breaker plus hedged requests (which rescue the leases already
// trapped on the sick nodes); the table shows attainment collapsing
// unmitigated and recovering through the stack. Every row hard-fails
// unless completion accounting is exactly-once (240/240, with hedge
// losers counted as wasted work, never as completions; the cluster
// verifies the lease ledger invariant at every fault and hedge
// boundary).
func ServeGrayfail(ctx *Context) (*Table, error) {
	t := &Table{
		ID: "serve-grayfail",
		Title: fmt.Sprintf("Gray failures: fail-slow/jitter/stall on the two busiest partition owners, affinity router, NUMA board A, Poisson 8 req/s (SLO %v)",
			grayfailSLO),
		Columns: []string{"fault", "mitigation", "completions", "slo attainment", "p95",
			"trips", "hedges", "wins", "wasted"},
		Notes: []string{
			"scripts degrade node1+node2 (home to ~60% of traffic): slow = 150× service time @1s (recover @25s); jitter = ×[1,400] seeded per batch; stall = two back-to-back 12s freezes",
			"partition placement pins every class to one node, so the affinity router keeps feeding the sick homes — unmitigated attainment collapses with all four nodes Up the whole time",
			"breaker: health window 500ms, trip < 0.5, reinstate >= 0.8 after a 3-probe half-open quorum; hedge: leases on quarantined nodes re-offered after 1s, first completion wins",
			"completions are exactly-once on every row: hedge losers surface as wasted work, never as a second completion",
		},
	}
	board, err := ctx.Board(workload.BoardA())
	if err != nil {
		return nil, err
	}
	type pointJob struct {
		script     string
		mitigation int
	}
	var jobs []pointJob
	for _, s := range []string{"slow", "jitter", "stall"} {
		for m := range grayfailMitigations() {
			jobs = append(jobs, pointJob{s, m})
		}
	}
	rows, err := runner.Sweep(ctx.par, jobs, func(_ int, j pointJob) ([]string, error) {
		mit := grayfailMitigations()[j.mitigation]
		nodeCfg, err := ctx.serveConfig(hw.NUMADevice(), core.CoServe)
		if err != nil {
			return nil, err
		}
		nodeCfg.SLO = grayfailSLO
		router, err := cluster.RouterByName("affinity")
		if err != nil {
			return nil, err
		}
		placement, err := cluster.PlacementByName("partition")
		if err != nil {
			return nil, err
		}
		cl, err := cluster.New(cluster.Config{
			Nodes:     cluster.Uniform(4, nodeCfg),
			Router:    router,
			Placement: placement,
			SLO:       grayfailSLO,
			Window:    time.Second,
			Faults:    grayfailPlan(j.script),
			Health:    mit.health,
			Hedge:     mit.hedge,
		}, board.Model)
		if err != nil {
			return nil, err
		}
		src, err := workload.Poisson{
			Name: "cluster-poisson", Board: board,
			Rate: 8, N: 240, Seed: 20260730,
		}.NewSource()
		if err != nil {
			return nil, err
		}
		rep, err := cl.Serve(src)
		if err != nil {
			return nil, fmt.Errorf("serve-grayfail %s×%s: %w", j.script, mit.name, err)
		}
		// Exactly-once acceptance on every row: all 240 arrivals complete
		// exactly once — hedged rows additionally account every loser
		// copy as waste or a crash-voided hedge, never as a completion.
		if rep.N != 240 || rep.Completions != 240 {
			return nil, fmt.Errorf("serve-grayfail %s×%s: %d arrivals, %d completions, want 240/240",
				j.script, mit.name, rep.N, rep.Completions)
		}
		// Every fired hedge makes a race with exactly one losing copy,
		// which must surface as wasted work (or die with a crashed node)
		// — never vanish, never complete a second time.
		if rep.HedgeWasted+rep.HedgesVoided != rep.HedgesFired || rep.HedgeWins > rep.HedgesFired {
			return nil, fmt.Errorf("serve-grayfail %s×%s: hedge accounting leaks: %d fired, %d wins, %d wasted + %d voided",
				j.script, mit.name, rep.HedgesFired, rep.HedgeWins, rep.HedgeWasted, rep.HedgesVoided)
		}
		// The story the experiment exists to tell, pinned: the stragglers
		// drag unmitigated attainment below 50%; breaker+hedge restores
		// it above 90%.
		switch mit.name {
		case "none":
			if rep.SLOAttainment >= 0.5 {
				return nil, fmt.Errorf("serve-grayfail %s×none: attainment %.1f%%, want < 50%% (stragglers not hurting enough)",
					j.script, 100*rep.SLOAttainment)
			}
		case "breaker":
			if rep.BreakerTrips < 1 {
				return nil, fmt.Errorf("serve-grayfail %s×breaker: breaker never tripped", j.script)
			}
		case "breaker+hedge":
			if rep.SLOAttainment <= 0.9 {
				return nil, fmt.Errorf("serve-grayfail %s×breaker+hedge: attainment %.1f%%, want > 90%%",
					j.script, 100*rep.SLOAttainment)
			}
			if rep.HedgesFired < 1 {
				return nil, fmt.Errorf("serve-grayfail %s×breaker+hedge: no hedge ever fired", j.script)
			}
		}
		return []string{
			j.script, mit.name,
			fmt.Sprintf("%d/%d", rep.Completions, rep.N),
			fmt.Sprintf("%.1f%%", 100*rep.SLOAttainment),
			fmt.Sprintf("%.3fs", rep.Latency.P95),
			fmt.Sprintf("%d", rep.BreakerTrips),
			fmt.Sprintf("%d", rep.HedgesFired),
			fmt.Sprintf("%d", rep.HedgeWins),
			fmt.Sprintf("%d", rep.HedgeWasted),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
