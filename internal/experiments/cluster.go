package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/runner"
	"repro/internal/workload"
)

// ServeCluster sweeps the multi-node serving layer: node count × router
// × placement against one open-loop Poisson stream past a single node's
// saturation knee. One CoServe-casual NUMA node saturates near 12
// img/s, so the 24 req/s offered load overloads a single node, roughly
// matches two, and leaves four comfortable — the regime where routing
// and placement choices actually separate. Every (nodes, router,
// placement) point is an independent cluster in its own simulation
// environment, so each point is one job and the table is byte-identical
// at every worker count.
func ServeCluster(ctx *Context) (*Table, error) {
	t := &Table{
		ID:    "serve-cluster",
		Title: fmt.Sprintf("Cluster serving: node count × router × placement, NUMA board A, CoServe casual, Poisson 24 req/s (SLO %v)", serveSLO),
		Columns: []string{"nodes", "router", "placement", "throughput", "p50", "p99",
			"slo attainment", "switches", "imbalance"},
		Notes: []string{
			"one node saturates near 12 img/s: adding nodes converts the overload into headroom",
			"affinity/predict routing with partition/usage placement sends requests where their expert is resident — fewer switches than residency-blind least-loaded on mirrored pools",
			"imbalance is max/mean routed arrivals per node: 1.0 is perfectly balanced, N is all on one node",
		},
	}
	board, err := ctx.Board(workload.BoardA())
	if err != nil {
		return nil, err
	}
	type pointJob struct {
		nodes     int
		router    string
		placement string
	}
	var jobs []pointJob
	for _, nodes := range []int{1, 2, 4} {
		for _, r := range cluster.RouterNames() {
			for _, p := range cluster.PlacementNames() {
				jobs = append(jobs, pointJob{nodes, r, p})
			}
		}
	}
	rows, err := runner.Sweep(ctx.par, jobs, func(_ int, j pointJob) ([]string, error) {
		nodeCfg, err := ctx.serveConfig(hw.NUMADevice(), core.CoServe)
		if err != nil {
			return nil, err
		}
		router, err := cluster.RouterByName(j.router)
		if err != nil {
			return nil, err
		}
		placement, err := cluster.PlacementByName(j.placement)
		if err != nil {
			return nil, err
		}
		cl, err := cluster.New(cluster.Config{
			Nodes:     cluster.Uniform(j.nodes, nodeCfg),
			Router:    router,
			Placement: placement,
			SLO:       serveSLO,
		}, board.Model)
		if err != nil {
			return nil, err
		}
		src, err := workload.Poisson{
			Name: "cluster-poisson", Board: board,
			Rate: 24, N: 240, Seed: 20260730,
		}.NewSource()
		if err != nil {
			return nil, err
		}
		rep, err := cl.Serve(src)
		if err != nil {
			return nil, fmt.Errorf("serve-cluster %d×%s×%s: %w", j.nodes, j.router, j.placement, err)
		}
		return []string{
			fmt.Sprintf("%d", j.nodes), j.router, j.placement,
			fmt.Sprintf("%.1f", rep.Throughput),
			fmt.Sprintf("%.3fs", rep.Latency.P50),
			fmt.Sprintf("%.3fs", rep.Latency.P99),
			fmt.Sprintf("%.1f%%", 100*rep.SLOAttainment),
			fmt.Sprintf("%d", rep.Switches),
			fmt.Sprintf("%.2f", rep.Imbalance),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
