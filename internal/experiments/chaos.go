package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// chaosPlan is the rolling-failure script every serve-chaos point runs:
// two staggered crash/recover cycles and one drain/resume across a
// 4-node fleet, all inside the ~10 s arrival horizon of the 24 req/s ×
// 240-request Poisson stream. Node 0 never faults, so the fleet is
// always eventually routable and every voided lease can be redelivered.
func chaosPlan() *sim.FaultPlan {
	return &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: 2 * time.Second, Node: 1, Kind: sim.FaultCrash},
		{At: 3500 * time.Millisecond, Node: 1, Kind: sim.FaultRecover},
		{At: 4 * time.Second, Node: 2, Kind: sim.FaultCrash},
		{At: 5500 * time.Millisecond, Node: 2, Kind: sim.FaultRecover},
		{At: 6 * time.Second, Node: 3, Kind: sim.FaultDrain},
		{At: 8 * time.Second, Node: 3, Kind: sim.FaultRecover},
	}}
}

// ServeChaos drives the serve-cluster 4-node configuration — same node
// config, same Poisson stream, every router × placement pair — through
// the rolling fault script and reports the durable-delivery story:
// leases voided by crashes, their redeliveries to surviving nodes,
// time-to-drain, failover latency, and the per-second completion series
// showing the attainment dip and recovery. Each point hard-fails unless
// completion accounting is exactly-once: every one of the 240 arrivals
// completes exactly once (the cluster additionally verifies the lease
// ledger invariant at every fault boundary). With the fault plan
// removed this configuration is byte-identical to serve-cluster's
// 4-node rows — internal/cluster's TestChaosZeroFaultByteIdentical
// pins the underlying guarantee.
func ServeChaos(ctx *Context) (*Table, error) {
	t := &Table{
		ID: "serve-chaos",
		Title: fmt.Sprintf("Chaos serving: rolling crash/drain/recover on a 4-node fleet, NUMA board A, CoServe casual, Poisson 24 req/s (SLO %v)",
			serveSLO),
		Columns: []string{"router", "placement", "completions", "lost leases", "redelivered",
			"drain", "failover max", "slo attainment", "completions/s"},
		Notes: []string{
			"fault script: crash node1 @2s (recover @3.5s), crash node2 @4s (recover @5.5s), drain node3 @6s (resume @8s)",
			"every crash voids the node's outstanding leases; all are redelivered to surviving nodes and complete exactly once — 240/240 on every row",
			"drain is the time from the drain order until node3 had nothing outstanding; failover max is the longest void-to-completion gap",
			"completions/s is the fleet per-second series: the dip marks the blackout windows, the hump after each recovery is the redelivered backlog draining",
		},
	}
	board, err := ctx.Board(workload.BoardA())
	if err != nil {
		return nil, err
	}
	type pointJob struct {
		router    string
		placement string
	}
	var jobs []pointJob
	for _, r := range cluster.RouterNames() {
		for _, p := range cluster.PlacementNames() {
			jobs = append(jobs, pointJob{r, p})
		}
	}
	rows, err := runner.Sweep(ctx.par, jobs, func(_ int, j pointJob) ([]string, error) {
		nodeCfg, err := ctx.serveConfig(hw.NUMADevice(), core.CoServe)
		if err != nil {
			return nil, err
		}
		router, err := cluster.RouterByName(j.router)
		if err != nil {
			return nil, err
		}
		placement, err := cluster.PlacementByName(j.placement)
		if err != nil {
			return nil, err
		}
		cl, err := cluster.New(cluster.Config{
			Nodes:     cluster.Uniform(4, nodeCfg),
			Router:    router,
			Placement: placement,
			SLO:       serveSLO,
			Window:    time.Second,
			Faults:    chaosPlan(),
		}, board.Model)
		if err != nil {
			return nil, err
		}
		src, err := workload.Poisson{
			Name: "cluster-poisson", Board: board,
			Rate: 24, N: 240, Seed: 20260730,
		}.NewSource()
		if err != nil {
			return nil, err
		}
		rep, err := cl.Serve(src)
		if err != nil {
			return nil, fmt.Errorf("serve-chaos %s×%s: %w", j.router, j.placement, err)
		}
		// Exactly-once, zero-loss acceptance: all 240 arrivals complete,
		// none twice, none rejected, none lost.
		if rep.N != 240 || rep.Completions != 240 || rep.RedeliveredRejected != 0 {
			return nil, fmt.Errorf("serve-chaos %s×%s: lost completions: %d arrivals, %d completions, %d redelivery rejections",
				j.router, j.placement, rep.N, rep.Completions, rep.RedeliveredRejected)
		}
		if rep.Crashes != 2 || rep.Drains != 1 || rep.Recoveries != 3 {
			return nil, fmt.Errorf("serve-chaos %s×%s: fault script misfired: %d crashes, %d drains, %d recoveries",
				j.router, j.placement, rep.Crashes, rep.Drains, rep.Recoveries)
		}
		if rep.Dropped != rep.LostLeases {
			return nil, fmt.Errorf("serve-chaos %s×%s: node drops %d != voided leases %d",
				j.router, j.placement, rep.Dropped, rep.LostLeases)
		}
		for i, st := range rep.FinalStates {
			if st != core.NodeUp {
				return nil, fmt.Errorf("serve-chaos %s×%s: node%d ended %v, want up", j.router, j.placement, i, st)
			}
		}
		drain := "—"
		if len(rep.TimeToDrain) > 0 {
			drain = fmt.Sprintf("%.3fs", rep.TimeToDrain[0].Took.Seconds())
		}
		series := make([]string, len(rep.Windows))
		for i, w := range rep.Windows {
			series[i] = fmt.Sprintf("%d", w.Completions)
		}
		return []string{
			j.router, j.placement,
			fmt.Sprintf("%d/%d", rep.Completions, rep.N),
			fmt.Sprintf("%d", rep.LostLeases),
			fmt.Sprintf("%d", rep.Redelivered),
			drain,
			fmt.Sprintf("%.3fs", rep.FailoverMax.Seconds()),
			fmt.Sprintf("%.1f%%", 100*rep.SLOAttainment),
			strings.Join(series, " "),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
