package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/pool"
	"repro/internal/runner"
	"repro/internal/workload"
)

// Extension experiments go beyond the paper's figures: design-choice
// ablations DESIGN.md calls out and sensitivity sweeps over the
// simulated hardware. They register alongside the paper artifacts.

// extRegistry returns the extension experiments.
func extRegistry() []Experiment {
	return []Experiment{
		{"ext-evict", "extension", "eviction-policy ablation: LRU vs prob-only vs two-stage", ExtEviction},
		{"ext-ssd", "extension", "sensitivity: throughput vs SSD/deserialization speed", ExtSSDSweep},
		{"ext-arrival", "extension", "sensitivity: throughput vs request arrival period", ExtArrivalSweep},
	}
}

// runCoServeWith runs Task A1 on the NUMA device under full CoServe with
// the given tweaks applied to the config/device.
func (c *Context) runCoServeWith(dev *hw.Device, task workload.Task, mutate func(*core.Config)) (*core.Report, error) {
	pm, err := c.Perf(dev)
	if err != nil {
		return nil, err
	}
	g, cp := core.DefaultExecutors(dev)
	cfg := core.Config{
		Device: dev, Variant: core.CoServe,
		GPUExecutors: g, CPUExecutors: cp,
		Alloc: core.CasualAllocation(dev, pm, g, cp), Perf: pm,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := core.NewSystem(cfg, task.Board.Model)
	if err != nil {
		return nil, err
	}
	return sys.RunTask(task)
}

// ExtEviction isolates the two-stage eviction design (§4.3): full
// CoServe with LRU, probability-only, and two-stage dependency-aware
// eviction on the same task. Each (device, policy) cell is one job.
func ExtEviction(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "ext-evict",
		Title:   "Eviction-policy ablation under full CoServe (extension)",
		Columns: []string{"device", "policy", "throughput", "switches", "evictions"},
		Notes: []string{
			"two-stage = prob-only + stage 1 (evict orphaned subsequent experts first, §4.3)",
			"both probability-based policies beat LRU decisively; in this workload stage 1 is roughly neutral (orphaned detectors are sometimes re-needed once their classifiers load), so prob-only can edge out two-stage",
		},
	}
	board, err := ctx.Board(workload.BoardA())
	if err != nil {
		return nil, err
	}
	task := workload.TaskA1(board)
	policies := []pool.Policy{pool.LRU{}, pool.ProbOnly{}, pool.DepAware{}}
	type cellJob struct {
		dev    *hw.Device
		policy pool.Policy
	}
	var jobs []cellJob
	for _, dev := range devices() {
		for _, p := range policies {
			jobs = append(jobs, cellJob{dev, p})
		}
	}
	rows, err := runner.Sweep(ctx.par, jobs, func(_ int, j cellJob) ([]string, error) {
		rep, err := ctx.runCoServeWith(j.dev, task, func(cfg *core.Config) { cfg.EvictPolicy = j.policy })
		if err != nil {
			return nil, err
		}
		return []string{
			j.dev.Mem.String(), j.policy.Name(),
			fmt.Sprintf("%.1f", rep.Throughput),
			fmt.Sprintf("%d", rep.Switches),
			fmt.Sprintf("%d", rep.Evictions),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// ExtSSDSweep sweeps the storage/deserialization speed: the paper's
// NUMA SSD (530 MB/s read, 250 MB/s deserialize) scaled by factors,
// showing how much of CoServe's advantage survives faster storage. Each
// speed factor is one job owning its own scaled device profile.
func ExtSSDSweep(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "ext-ssd",
		Title:   "Sensitivity to storage speed, NUMA Task A1 (extension)",
		Columns: []string{"speed factor", "samba tp", "coserve tp", "ratio"},
		Notes: []string{
			"scales SSD read, deserialization, and host-link rates together",
			"faster storage narrows the gap but CoServe keeps winning: fewer switches also mean less bus traffic",
		},
	}
	board, err := ctx.Board(workload.BoardA())
	if err != nil {
		return nil, err
	}
	task := workload.TaskA1(board)
	factors := []float64{0.5, 1, 2, 4, 8}
	rows, err := runner.Sweep(ctx.par, factors, func(_ int, factor float64) ([]string, error) {
		dev := hw.NUMADevice()
		dev.Name = fmt.Sprintf("numa-x%g", factor)
		dev.SSDReadBW *= factor
		dev.DeserBW *= factor
		dev.PCIeBW *= factor
		pm, err := ctx.Perf(dev)
		if err != nil {
			return nil, err
		}
		sambaCfg := core.Config{
			Device: dev, Variant: core.Samba, GPUExecutors: 1,
			Alloc: core.SambaAllocation(dev, pm), Perf: pm,
		}
		sambaSys, err := core.NewSystem(sambaCfg, board.Model)
		if err != nil {
			return nil, err
		}
		sambaRep, err := sambaSys.RunTask(task)
		if err != nil {
			return nil, err
		}
		cosRep, err := ctx.runCoServeWith(dev, task, nil)
		if err != nil {
			return nil, err
		}
		return []string{
			fmt.Sprintf("%gx", factor),
			fmt.Sprintf("%.1f", sambaRep.Throughput),
			fmt.Sprintf("%.1f", cosRep.Throughput),
			fmt.Sprintf("%.1fx", cosRep.Throughput/sambaRep.Throughput),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// ExtArrivalSweep sweeps the request arrival period around the paper's
// 4 ms: CoServe's grouping opportunities depend on queue depth, so
// slower arrivals (shallower queues) shrink its advantage. Each period
// is one job.
func ExtArrivalSweep(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "ext-arrival",
		Title:   "Sensitivity to arrival period, NUMA Task A1 (extension)",
		Columns: []string{"arrival period", "coserve tp", "switches", "p95 latency"},
		Notes: []string{
			"paper workload: one image every 4 ms",
		},
	}
	board, err := ctx.Board(workload.BoardA())
	if err != nil {
		return nil, err
	}
	periods := []time.Duration{
		time.Millisecond, 4 * time.Millisecond, 16 * time.Millisecond, 64 * time.Millisecond,
	}
	rows, err := runner.Sweep(ctx.par, periods, func(_ int, period time.Duration) ([]string, error) {
		task := workload.TaskA1(board)
		task.ArrivalPeriod = period
		rep, err := ctx.runCoServeWith(hw.NUMADevice(), task, nil)
		if err != nil {
			return nil, err
		}
		return []string{
			period.String(),
			fmt.Sprintf("%.1f", rep.Throughput),
			fmt.Sprintf("%d", rep.Switches),
			fmt.Sprintf("%.1fs", rep.Latency.P95),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
