// Package hw describes the evaluation devices of the paper's Table 1 as
// parameterized cost profiles: memory capacities, transfer bandwidths,
// and per-processor compute characteristics.
//
// The profiles are calibrated so the analytic cost models in
// internal/model land where the paper's measurements do: expert loading
// dominated by read + framework deserialization (~1 s per ResNet101-class
// expert, >90 % of inference time from SSD, Figure 1), batched execution
// latency K·n + B with an interior average-latency optimum on weaker
// processors (Figures 5 and 12), and activation footprints of a few
// hundred MB per batch element (Figure 6).
package hw

import (
	"fmt"
	"time"
)

// MemArch is a device memory architecture.
type MemArch int

const (
	// NUMA devices have discrete GPU memory and CPU DRAM joined by PCIe.
	NUMA MemArch = iota
	// UMA devices share one physical memory between CPU and GPU.
	UMA
)

func (m MemArch) String() string {
	switch m {
	case NUMA:
		return "NUMA"
	case UMA:
		return "UMA"
	default:
		return fmt.Sprintf("MemArch(%d)", int(m))
	}
}

// ProcKind distinguishes processor types on a device.
type ProcKind int

const (
	GPU ProcKind = iota
	CPU
)

func (k ProcKind) String() string {
	switch k {
	case GPU:
		return "GPU"
	case CPU:
		return "CPU"
	default:
		return fmt.Sprintf("ProcKind(%d)", int(k))
	}
}

// Byte-size helpers.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// Processor models the execution characteristics of a GPU or CPU.
//
// Execution latency of a batch of n images of an architecture with f
// GFLOPs per image is
//
//	lat(n) = K·n + B + SatPenalty·max(0, n-SatBatch)²
//
// where K = f / EffFLOPS and B = LaunchOverhead. The quadratic term
// models the saturation that produces the interior average-latency
// optimum of the paper's Figure 5 (§3.3).
type Processor struct {
	Name string
	Kind ProcKind
	// EffFLOPS is the sustained FLOP/s this processor delivers on
	// convolutional inference (well below peak; calibrated to Figure 12).
	EffFLOPS float64
	// LaunchOverhead is the fixed per-batch cost B (kernel launches,
	// framework dispatch).
	LaunchOverhead time.Duration
	// SatBatch is the batch size beyond which the processor saturates.
	SatBatch int
	// SatPenalty is the quadratic latency penalty coefficient applied
	// per squared image beyond SatBatch.
	SatPenalty time.Duration
	// ActFactor scales an architecture's baseline per-image activation
	// bytes; frameworks organize intermediate data differently per
	// processor (§3.3).
	ActFactor float64
	// WorkspaceBytes is the framework/allocator reservation each
	// executor on this processor holds (a separate CUDA context or
	// runtime instance per executor) — the per-executor overhead that
	// makes very large executor counts counterproductive (Figure 17).
	WorkspaceBytes int64
}

// Device is a complete evaluation platform (one row set of Table 1).
type Device struct {
	Name string
	Mem  MemArch
	GPU  Processor
	CPU  Processor

	// GPUMemBytes and CPUMemBytes describe discrete memories on NUMA
	// devices. UnifiedMemBytes describes the single shared memory of a
	// UMA device (GPUMemBytes/CPUMemBytes are zero there).
	GPUMemBytes     int64
	CPUMemBytes     int64
	UnifiedMemBytes int64

	// SSDName and SSDReadBW (bytes/s) describe the storage tier.
	SSDName   string
	SSDReadBW float64
	// DeserBW (bytes/s) is the framework deserialization rate when
	// loading a serialized expert from storage; in practice it, not raw
	// SSD bandwidth, dominates expert switching (§1, Figure 1 analysis).
	DeserBW float64
	// PCIeBW (bytes/s) is the host-to-GPU copy rate on NUMA devices.
	PCIeBW float64
	// ReorgBW (bytes/s) is the CPU-to-GPU data-reorganization rate on
	// UMA devices ("possibly due to data reorganization by AI
	// frameworks", §1).
	ReorgBW float64
	// LoadFixed is the fixed per-load overhead (file open, allocator).
	LoadFixed time.Duration
	// LoadStreams is the number of expert loads (read + deserialize)
	// the device sustains concurrently; deserialization is single-
	// threaded per load but multicore hosts overlap a couple of loads.
	LoadStreams int
	// OSReserveBytes is memory the OS keeps away from executors
	// entirely (wired memory and the GPU working-set cap on UMA
	// devices; zero for discrete GPUs).
	OSReserveBytes int64
}

// loadStreams returns the configured concurrency, defaulting to 1.
func (d *Device) loadStreamsOrDefault() int {
	if d.LoadStreams < 1 {
		return 1
	}
	return d.LoadStreams
}

// LoadConcurrency reports the number of concurrent load streams.
func (d *Device) LoadConcurrency() int { return d.loadStreamsOrDefault() }

// Proc returns the processor of the given kind.
func (d *Device) Proc(kind ProcKind) Processor {
	if kind == GPU {
		return d.GPU
	}
	return d.CPU
}

// GPUCapacity reports the memory visible to GPU executors: discrete GPU
// memory on NUMA, the unified pool on UMA.
func (d *Device) GPUCapacity() int64 {
	if d.Mem == UMA {
		return d.UnifiedMemBytes
	}
	return d.GPUMemBytes
}

// CPUCapacity reports the memory visible to CPU executors: discrete DRAM
// on NUMA, the unified pool on UMA.
func (d *Device) CPUCapacity() int64 {
	if d.Mem == UMA {
		return d.UnifiedMemBytes
	}
	return d.CPUMemBytes
}

// Validate checks internal consistency of the profile.
func (d *Device) Validate() error {
	switch d.Mem {
	case NUMA:
		if d.GPUMemBytes <= 0 || d.CPUMemBytes <= 0 {
			return fmt.Errorf("hw: NUMA device %q needs discrete GPU and CPU memory", d.Name)
		}
		if d.PCIeBW <= 0 {
			return fmt.Errorf("hw: NUMA device %q needs PCIe bandwidth", d.Name)
		}
	case UMA:
		if d.UnifiedMemBytes <= 0 {
			return fmt.Errorf("hw: UMA device %q needs unified memory", d.Name)
		}
		if d.ReorgBW <= 0 {
			return fmt.Errorf("hw: UMA device %q needs reorganization bandwidth", d.Name)
		}
	default:
		return fmt.Errorf("hw: device %q has unknown memory architecture", d.Name)
	}
	if d.SSDReadBW <= 0 || d.DeserBW <= 0 {
		return fmt.Errorf("hw: device %q needs SSD and deserialization bandwidth", d.Name)
	}
	for _, p := range []Processor{d.GPU, d.CPU} {
		if p.EffFLOPS <= 0 {
			return fmt.Errorf("hw: processor %q needs positive EffFLOPS", p.Name)
		}
		if p.SatBatch < 1 {
			return fmt.Errorf("hw: processor %q needs SatBatch >= 1", p.Name)
		}
		if p.ActFactor <= 0 {
			return fmt.Errorf("hw: processor %q needs positive ActFactor", p.Name)
		}
	}
	return nil
}

// NUMADevice returns the paper's NUMA platform: NVIDIA RTX 3080 Ti
// (12 GB) + Intel Xeon Silver 4214R (16 GB DRAM) + MICRON 530 MB/s SSD.
func NUMADevice() *Device {
	return &Device{
		Name: "numa-rtx3080ti",
		Mem:  NUMA,
		GPU: Processor{
			Name:           "NVIDIA RTX3080Ti",
			Kind:           GPU,
			EffFLOPS:       4.3e12,
			LaunchOverhead: 5 * time.Millisecond,
			SatBatch:       24,
			SatPenalty:     150 * time.Microsecond,
			ActFactor:      3.0,
			WorkspaceBytes: 1152 * MiB,
		},
		CPU: Processor{
			Name:           "Intel Xeon Silver 4214R",
			Kind:           CPU,
			EffFLOPS:       0.22e12,
			LaunchOverhead: 110 * time.Millisecond,
			SatBatch:       5,
			SatPenalty:     6 * time.Millisecond,
			ActFactor:      2.0,
			WorkspaceBytes: 1536 * MiB,
		},
		GPUMemBytes: 12 * GiB,
		CPUMemBytes: 16 * GiB,
		SSDName:     "MICRON MTFD-DAK480TDS",
		SSDReadBW:   530e6,
		DeserBW:     250e6,
		// Effective host-to-GPU expert transfer rate. This is far below
		// raw PCIe bandwidth because a framework "switch" rebuilds the
		// module on device (allocation, layout reorganization, Python
		// overhead), which Figure 1 shows dominating even the CPU→GPU
		// path.
		PCIeBW:      0.45e9,
		LoadFixed:   5 * time.Millisecond,
		LoadStreams: 4,
	}
}

// UMADevice returns the paper's UMA platform: Apple M2 with 24 GB
// unified memory and a ~3000 MB/s SSD.
func UMADevice() *Device {
	return &Device{
		Name: "uma-apple-m2",
		Mem:  UMA,
		GPU: Processor{
			Name:           "Apple M2 GPU",
			Kind:           GPU,
			EffFLOPS:       1.5e12,
			LaunchOverhead: 4 * time.Millisecond,
			SatBatch:       6,
			SatPenalty:     600 * time.Microsecond,
			ActFactor:      1.5,
			WorkspaceBytes: 1280 * MiB,
		},
		CPU: Processor{
			Name:           "Apple M2 CPU",
			Kind:           CPU,
			EffFLOPS:       0.35e12,
			LaunchOverhead: 60 * time.Millisecond,
			SatBatch:       5,
			SatPenalty:     6 * time.Millisecond,
			ActFactor:      1.2,
			WorkspaceBytes: 1280 * MiB,
		},
		UnifiedMemBytes: 24 * GiB,
		SSDName:         "APPLE SSD AP0512Z",
		SSDReadBW:       3000e6,
		DeserBW:         190e6,
		// Effective CPU→GPU reorganization rate on unified memory;
		// §1 attributes this cost to framework data reorganization.
		ReorgBW:     0.9e9,
		LoadFixed:   5 * time.Millisecond,
		LoadStreams: 4,
		// macOS wires a large share of unified memory and caps the GPU
		// working set well below the physical 24 GB.
		OSReserveBytes: 7 * GiB,
	}
}

// Devices returns the built-in device profiles keyed by name.
func Devices() map[string]*Device {
	numa, uma := NUMADevice(), UMADevice()
	return map[string]*Device{
		numa.Name: numa,
		uma.Name:  uma,
	}
}

// ByName looks up a built-in device profile; the short aliases "numa"
// and "uma" are accepted.
func ByName(name string) (*Device, error) {
	switch name {
	case "numa":
		return NUMADevice(), nil
	case "uma":
		return UMADevice(), nil
	}
	if d, ok := Devices()[name]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("hw: unknown device %q", name)
}
