package hw

import "testing"

func TestBuiltinProfilesValidate(t *testing.T) {
	for name, dev := range Devices() {
		if err := dev.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTable1Capacities(t *testing.T) {
	numa := NUMADevice()
	if numa.GPUMemBytes != 12*GiB {
		t.Errorf("NUMA GPU memory = %d, want 12 GiB", numa.GPUMemBytes)
	}
	if numa.CPUMemBytes != 16*GiB {
		t.Errorf("NUMA CPU memory = %d, want 16 GiB", numa.CPUMemBytes)
	}
	uma := UMADevice()
	if uma.UnifiedMemBytes != 24*GiB {
		t.Errorf("UMA unified memory = %d, want 24 GiB", uma.UnifiedMemBytes)
	}
}

func TestCapacityHelpers(t *testing.T) {
	numa := NUMADevice()
	if numa.GPUCapacity() != numa.GPUMemBytes || numa.CPUCapacity() != numa.CPUMemBytes {
		t.Error("NUMA capacities should be the discrete memories")
	}
	uma := UMADevice()
	if uma.GPUCapacity() != uma.UnifiedMemBytes || uma.CPUCapacity() != uma.UnifiedMemBytes {
		t.Error("UMA capacities should both be the unified pool")
	}
}

func TestProcSelector(t *testing.T) {
	d := NUMADevice()
	if d.Proc(GPU).Kind != GPU || d.Proc(CPU).Kind != CPU {
		t.Error("Proc returned wrong processor kind")
	}
}

func TestByName(t *testing.T) {
	for _, alias := range []string{"numa", "uma", "numa-rtx3080ti", "uma-apple-m2"} {
		if _, err := ByName(alias); err != nil {
			t.Errorf("ByName(%q): %v", alias, err)
		}
	}
	if _, err := ByName("tpu"); err == nil {
		t.Error("ByName(tpu) should fail")
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	bad := NUMADevice()
	bad.PCIeBW = 0
	if err := bad.Validate(); err == nil {
		t.Error("missing PCIe bandwidth not caught")
	}
	bad2 := UMADevice()
	bad2.UnifiedMemBytes = 0
	if err := bad2.Validate(); err == nil {
		t.Error("missing unified memory not caught")
	}
	bad3 := NUMADevice()
	bad3.GPU.EffFLOPS = 0
	if err := bad3.Validate(); err == nil {
		t.Error("zero EffFLOPS not caught")
	}
	bad4 := NUMADevice()
	bad4.SSDReadBW = 0
	if err := bad4.Validate(); err == nil {
		t.Error("zero SSD bandwidth not caught")
	}
}

func TestStringers(t *testing.T) {
	if NUMA.String() != "NUMA" || UMA.String() != "UMA" {
		t.Error("MemArch strings wrong")
	}
	if GPU.String() != "GPU" || CPU.String() != "CPU" {
		t.Error("ProcKind strings wrong")
	}
	if MemArch(9).String() == "" || ProcKind(9).String() == "" {
		t.Error("unknown enum strings should not be empty")
	}
}
