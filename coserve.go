// Package coserve is a reproduction of "CoServe: Efficient
// Collaboration-of-Experts (CoE) Model Inference with Limited Memory"
// (ASPLOS 2025): a serving system for CoE models on memory-constrained
// heterogeneous CPU+GPU devices, evaluated on a simulated device with
// cost models calibrated to the paper's measurements.
//
// The package is a facade over the internal implementation. A typical
// session mirrors the paper's three phases:
//
//	dev := coserve.NUMADevice()                       // pick a platform
//	board, _ := coserve.BoardA().Build()              // a CoE model + workload
//	perf, _ := coserve.Profile(dev, coserve.EvalArchitectures()) // offline phase
//	g, c := coserve.DefaultExecutors(dev)
//	cfg := coserve.Config{
//		Device: dev, Variant: coserve.CoServe,
//		GPUExecutors: g, CPUExecutors: c,
//		Alloc: coserve.CasualAllocation(dev, perf, g, c), Perf: perf,
//	}
//	srv, _ := coserve.NewServer(cfg, board.Model)     // system initialization
//	report, _ := srv.RunTask(coserve.TaskA1(board))   // online phase
//	fmt.Printf("%.1f img/s, %d expert switches\n", report.Throughput, report.Switches)
//
// A Server is long-lived: beyond the paper's closed-loop tasks it serves
// arbitrary arrival processes (Source), and consecutive Serve/RunTask
// calls warm-restart it on already-loaded expert pools:
//
//	cfg.SLO = 500 * time.Millisecond                  // latency objective
//	srv, _ := coserve.NewServer(cfg, board.Model)
//	src, _ := coserve.Poisson{Name: "open", Board: board, Rate: 40, N: 5000, Seed: 1}.NewSource()
//	report, _ := srv.Serve(src)                       // open-loop stream
//	fmt.Printf("p99 %.3fs, %.1f%% in SLO\n", report.Latency.P99, 100*report.SLOAttainment)
//	report2, _ := srv.RunTask(coserve.TaskA1(board))  // consecutive, warm pools
//
// Bursty traffic (Bursty), multi-tenant mixes (Mix), and fused
// multi-board models (MergeBoards) compose the same way. Under
// overload, the control plane plugs in through Config: an
// AdmissionPolicy (bounded queue, token bucket, SLO-aware shedding)
// decides per arrival what the server accepts, and an Autoscaler
// resizes the active executor set on windowed utilization — both off by
// default:
//
//	cfg.Admission, _ = coserve.NewDeadlineShed(cfg.SLO)  // shed predicted misses
//	cfg.Autoscaler, _ = coserve.NewHysteresisScaler(0.3, 0.85)
//	steady, _ := coserve.Steady{Name: "line", Board: board, Rate: 40, Seed: 1}.NewSource()
//	report3, _ := srv.Serve(coserve.Horizon(steady, time.Minute))
//	fmt.Printf("rejected %.1f%%\n", 100*report3.RejectionRate)
//
// Custom CoE models are assembled with NewModelBuilder; custom
// workloads with the Task type. The experiments subcommand of
// cmd/coserve regenerates every table and figure of the paper through
// the same API.
package coserve

import (
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/coe"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Device is a hardware platform profile (the paper's Table 1 systems or
// a custom one).
type Device = hw.Device

// NUMADevice returns the paper's NUMA platform (RTX 3080 Ti + Xeon).
func NUMADevice() *Device { return hw.NUMADevice() }

// UMADevice returns the paper's UMA platform (Apple M2).
func UMADevice() *Device { return hw.UMADevice() }

// DeviceByName resolves "numa", "uma", or a full profile name.
func DeviceByName(name string) (*Device, error) { return hw.ByName(name) }

// Architecture describes an expert model architecture.
type Architecture = model.Architecture

// Built-in expert architectures (§5.1).
var (
	ResNet101 = model.ResNet101
	YOLOv5m   = model.YOLOv5m
	YOLOv5l   = model.YOLOv5l
)

// EvalArchitectures returns the architectures of the paper's workload.
func EvalArchitectures() []Architecture {
	return []Architecture{model.ResNet101, model.YOLOv5m, model.YOLOv5l}
}

// Model is an immutable CoE model: experts, dependencies, and routing.
type Model = coe.Model

// ModelBuilder assembles a CoE model.
type ModelBuilder = coe.Builder

// NewModelBuilder returns an empty CoE model builder.
func NewModelBuilder(name string) *ModelBuilder { return coe.NewBuilder(name) }

// Expert roles for ModelBuilder.AddExpert.
const (
	Preliminary = coe.Preliminary
	Subsequent  = coe.Subsequent
)

// Rule is a routing rule: classifier, optional detector, pass
// probability.
type Rule = coe.Rule

// NoExpert marks the absence of a detection stage in a Rule.
const NoExpert = coe.NoExpert

// Request is one inference request traveling a CoE pipeline.
type Request = coe.Request

// RequestArena is an optional free-list of Request objects. Attach one
// to a workload spec (Poisson/Bursty/Steady .Arena) and the source
// leases each request from it instead of allocating; the serving layer
// returns requests on completion or rejection, so steady-state
// allocation is bounded by the in-flight peak rather than stream
// length. One arena feeds one serving stream at a time, but persists
// across consecutive streams and warm restarts.
type RequestArena = coe.Arena

// NewRequestArena returns an empty request arena.
func NewRequestArena() *RequestArena { return coe.NewArena() }

// ComputeUsage fills in expert usage probabilities from a class
// distribution (§4.5); EstimateUsage does the same from sampled chains.
func ComputeUsage(m *Model, classProbs map[int]float64) error {
	return coe.ComputeUsage(m, classProbs)
}

// EstimateUsage estimates usage probabilities from sampled chains.
func EstimateUsage(m *Model, chains [][]coe.ExpertID) { coe.EstimateUsage(m, chains) }

// PerfMatrix is the offline profiler's performance matrix (§4.5).
type PerfMatrix = model.PerfMatrix

// Profile runs the offline microbenchmarks for the architectures on the
// device (§4.4–4.5).
func Profile(dev *Device, archs []Architecture) (PerfMatrix, error) {
	return profiler.Matrix(dev, archs)
}

// Variant selects a serving system design.
type Variant = core.Variant

// System variants (§5.1 baselines and §5.3 ablations).
const (
	Samba         = core.Samba
	SambaFIFO     = core.SambaFIFO
	SambaParallel = core.SambaParallel
	CoServeNone   = core.CoServeNone
	CoServeEM     = core.CoServeEM
	CoServeEMRA   = core.CoServeEMRA
	CoServe       = core.CoServe
)

// Config describes a serving system instance; Allocation divides device
// memory between experts, the host cache, and batch intermediates.
type (
	Config     = core.Config
	Allocation = core.Allocation
)

// PercentileMode selects how latency percentiles are accounted
// (Config.Percentiles, ClusterConfig.Percentiles): PercentilesExact
// stores every sample (the default, used by the golden artifacts);
// PercentilesSketch streams samples into a fixed-size mergeable
// quantile sketch — O(1) memory per stream, rank-exact percentiles
// accurate to ±1% in value.
type PercentileMode = core.PercentileMode

// Percentile accounting modes.
const (
	PercentilesExact  = core.PercentilesExact
	PercentilesSketch = core.PercentilesSketch
)

// Sketch is the fixed-size mergeable latency sketch behind
// PercentilesSketch; Report.LatencySketch and
// ClusterReport.LatencySketch expose the stream's sketch in that mode.
type Sketch = stats.Sketch

// Report summarizes one served stream (throughput, switches, latency
// percentiles, SLO attainment, scheduling overhead).
type Report = core.Report

// TenantStats is one tenant's slice of a multi-tenant stream report.
type TenantStats = core.TenantStats

// Control plane (internal/control): admission policies decide per
// arriving request whether the server accepts it — Config.Admission —
// and an Autoscaler resizes the active executor set per utilization
// window — Config.Autoscaler — with deactivated executors keeping their
// expert pools warm for reactivation. Config.Window sets the windowed
// metrics interval (and the autoscaler's cadence); Report.Windows
// carries the resulting sliding-interval series.
type (
	AdmissionPolicy = control.AdmissionPolicy
	AdmissionView   = control.View
	AcceptAll       = control.AcceptAll
	PolicyOptions   = control.PolicyOptions
	Autoscaler      = control.Autoscaler
	Utilization     = control.Utilization
)

// DefaultControlWindow is the control interval used when an Autoscaler
// is configured without an explicit Config.Window.
const DefaultControlWindow = core.DefaultControlWindow

// NewBoundedQueue returns an admission policy rejecting arrivals once
// max requests are queued.
func NewBoundedQueue(max int) (AdmissionPolicy, error) { return control.NewBoundedQueue(max) }

// NewTokenBucket returns an admission policy rate-limiting admissions
// to rate requests per second with bursts up to burst.
func NewTokenBucket(rate, burst float64) (AdmissionPolicy, error) {
	return control.NewTokenBucket(rate, burst)
}

// NewDeadlineShed returns an admission policy shedding requests whose
// predicted end-to-end latency already exceeds the objective.
func NewDeadlineShed(objective time.Duration) (AdmissionPolicy, error) {
	return control.NewDeadlineShed(objective)
}

// AdmissionPolicyByName builds a policy from its CLI name: "accept",
// "bounded", "token", or "shed".
func AdmissionPolicyByName(name string, opts PolicyOptions) (AdmissionPolicy, error) {
	return control.PolicyByName(name, opts)
}

// NewHysteresisScaler returns an autoscaler growing the active executor
// set above the high busy-fraction threshold (or under backlog) and
// shrinking it below the low one.
func NewHysteresisScaler(low, high float64) (Autoscaler, error) {
	return control.NewHysteresisScaler(low, high)
}

// NewReachableHysteresisScaler is NewHysteresisScaler with the
// reachability guard on: scale-down steps that would leave the
// surviving executors' pools unable to hold the stream's current
// working set are refused, because shedding capacity below the working
// set converts the savings into expert-switch thrashing.
func NewReachableHysteresisScaler(low, high float64) (Autoscaler, error) {
	return control.NewReachableHysteresisScaler(low, high)
}

// NewTenantQuota wraps an admission policy (AcceptAll when nil) with
// independent per-tenant token buckets, so one tenant's overload in a
// multi-tenant Mix cannot starve the others' admission.
func NewTenantQuota(inner AdmissionPolicy, rate, burst float64) (AdmissionPolicy, error) {
	return control.NewTenantQuota(inner, rate, burst)
}

// Server is an assembled serving system bound to a simulated device. A
// Server is long-lived: Serve runs one request stream to completion,
// and consecutive calls warm-restart it on the already-loaded expert
// pools.
type Server = core.System

// NewServer builds a serving system for the CoE model.
func NewServer(cfg Config, m *Model) (*Server, error) { return core.NewSystem(cfg, m) }

// Cluster layer (internal/cluster): one front end serving a stream
// across N nodes, each node a full single-device data plane, all
// sharing one deterministic simulation. ClusterConfig carries one
// node Config per node (heterogeneous fleets are fine) plus the
// routing and placement policies; ClusterReport aggregates the fleet
// view over the per-node reports.
type (
	Cluster          = cluster.Cluster
	ClusterConfig    = cluster.Config
	ClusterReport    = cluster.Report
	ClusterNode      = cluster.Node
	ClusterRouter    = cluster.Router
	ClusterPlacement = cluster.Placement
	NodeCapacity     = cluster.NodeCapacity
)

// NewCluster builds a multi-node serving system for the CoE model: the
// placement plan is computed, then every node joins one shared
// simulation environment. Like a Server, a Cluster is long-lived —
// consecutive ServeStream calls warm-restart the fleet.
func NewCluster(cfg ClusterConfig, m *Model) (*Cluster, error) { return cluster.New(cfg, m) }

// ServeCluster serves one stream across a fresh cluster and returns the
// fleet report — the one-shot form of NewCluster + Cluster.Serve.
func ServeCluster(cfg ClusterConfig, m *Model, src Source) (*ClusterReport, error) {
	cl, err := cluster.New(cfg, m)
	if err != nil {
		return nil, err
	}
	return cl.Serve(src)
}

// UniformNodes returns n copies of the node configuration — the
// homogeneous fleet constructor for ClusterConfig.Nodes.
func UniformNodes(n int, node Config) []Config { return cluster.Uniform(n, node) }

// ClusterRouterByName builds a cluster router from its CLI name:
// "least-loaded" (or ""), "affinity" (prefer nodes whose pools already
// hold the request's expert), or "predict" (lowest predicted latency
// under the §4.2 cost model).
func ClusterRouterByName(name string) (ClusterRouter, error) { return cluster.RouterByName(name) }

// ClusterPlacementByName builds a placement plan from its CLI name:
// "mirror" (or ""), "partition" (every expert one home), or "usage"
// (§4.4-style usage-proportional instance counts across the fleet).
func ClusterPlacementByName(name string) (ClusterPlacement, error) {
	return cluster.PlacementByName(name)
}

// Chaos layer: scripted node fault schedules (ClusterConfig.Faults)
// fired deterministically into a serving cluster. Fail-stop kinds
// (crash/drain/recover) drive the node lifecycle, with lease-tracked
// at-least-once redelivery of a crashed node's outstanding requests and
// exactly-once completion accounting. Gray kinds (slow/jitter/stall)
// degrade a node's service time while it stays Up — invisible to the
// lifecycle layer, countered by HealthConfig (windowed health scores
// plus a circuit breaker) and HedgeConfig (deadline-fired hedged
// redelivery, first completion wins, losers accounted as wasted work).
// A nil or empty FaultPlan injects nothing and leaves every serve path
// byte-identical to the fault-free cluster.
type (
	FaultPlan  = sim.FaultPlan
	FaultEvent = sim.FaultEvent
	FaultKind  = sim.FaultKind
	// HealthConfig enables per-node health scoring and the circuit
	// breaker that quarantines gray-failing nodes (ClusterConfig.Health).
	HealthConfig = cluster.HealthConfig
	// HedgeConfig enables per-request deadlines with hedged redelivery
	// (ClusterConfig.Hedge).
	HedgeConfig = cluster.HedgeConfig
	// Interconnect models per-hop front-end→node dispatch latency
	// (ClusterConfig.Interconnect). Enabling it moves the cluster onto
	// the sharded deterministic kernel: the front end and every node
	// simulate in their own partitions, advanced in parallel under the
	// model's conservative lookahead, with reports byte-identical at
	// every ClusterConfig.Shards setting.
	Interconnect = cluster.Interconnect
	// NodeState is a node's lifecycle state (up, draining, down).
	NodeState = core.NodeState
	// NodeLease is the receipt a node returns when it accepts an offered
	// request: the node now holds the request and will ack its
	// completion, unless a crash voids the lease first.
	NodeLease = core.Lease
	// DrainRecord is one completed drain: the node and how long it took
	// to finish in-flight work after routing stopped.
	DrainRecord = cluster.DrainRecord
	// FleetAutoscaler drives a cluster's routable node count from the
	// fleet's windowed metrics series (ClusterConfig.Autoscaler).
	FleetAutoscaler = cluster.FleetAutoscaler
)

// Fault kinds and node lifecycle states.
const (
	FaultCrash   = sim.FaultCrash
	FaultDrain   = sim.FaultDrain
	FaultRecover = sim.FaultRecover
	FaultSlow    = sim.FaultSlow
	FaultJitter  = sim.FaultJitter
	FaultStall   = sim.FaultStall

	NodeUp       = core.NodeUp
	NodeDraining = core.NodeDraining
	NodeDown     = core.NodeDown
)

// GenerateFaultPlan builds an MTBF-style fault schedule: each node
// alternates exponentially distributed up intervals (mean mtbf) and
// down intervals (mean mttr) until the horizon. Every crash inside the
// horizon gets its matching recover — possibly past the horizon — so a
// generated plan never strands voided work with the fleet down forever.
// The schedule is a pure function of its arguments.
func GenerateFaultPlan(nodes int, mtbf, mttr, horizon time.Duration, seed int64) (*FaultPlan, error) {
	return sim.GenerateFaultPlan(nodes, mtbf, mttr, horizon, seed)
}

// NewRateFleetScaler returns a rate-driven fleet autoscaler targeting
// perNode arrivals per second per node, with scale-down hysteresis.
func NewRateFleetScaler(perNode float64) (FleetAutoscaler, error) {
	return cluster.NewRateFleetScaler(perNode)
}

// CasualAllocation returns the paper's intuitive memory split (§5.2).
func CasualAllocation(dev *Device, perf PerfMatrix, gpuExecutors, cpuExecutors int) Allocation {
	return core.CasualAllocation(dev, perf, gpuExecutors, cpuExecutors)
}

// SambaAllocation returns the Samba-CoE baseline memory layout (§5.1).
func SambaAllocation(dev *Device, perf PerfMatrix) Allocation {
	return core.SambaAllocation(dev, perf)
}

// DefaultAllocation resolves the variant's default memory layout (Samba
// layout for the Samba arrangements, casual split otherwise).
func DefaultAllocation(v Variant, dev *Device, perf PerfMatrix, gpuExecutors, cpuExecutors int) Allocation {
	return core.DefaultAllocation(v, dev, perf, gpuExecutors, cpuExecutors)
}

// AllocationForExperts sizes GPU expert memory to n reference experts
// (the §4.4 search's sweep variable).
func AllocationForExperts(dev *Device, perf PerfMatrix, n, gpuExecutors, cpuExecutors int) Allocation {
	return core.AllocationForExperts(dev, perf, n, gpuExecutors, cpuExecutors)
}

// DefaultExecutors returns the paper's casual executor topology for the
// device.
func DefaultExecutors(dev *Device) (gpus, cpus int) { return core.DefaultExecutors(dev) }

// Workload types: boards generate the CoE model and request
// distribution; tasks are fixed-length closed-loop request streams.
type (
	BoardSpec = workload.BoardSpec
	Board     = workload.Board
	Task      = workload.Task
)

// Stream types: a Source is an arrival process yielding TimedRequests —
// the paper's fixed-period closed loop (Task.Stream), open-loop Poisson,
// bursty on/off traffic, or a multi-tenant Mix.
type (
	Source       = workload.Source
	TimedRequest = workload.TimedRequest
	Poisson      = workload.Poisson
	Bursty       = workload.Bursty
	Mix          = workload.Mix
	Steady       = workload.Steady
)

// Horizon bounds a source at a virtual-time horizon — required before
// serving an infinite steady-state source (Steady).
func Horizon(src Source, d time.Duration) Source { return workload.Horizon(src, d) }

// Trace recording and replay: Record wraps a source so the served
// stream's arrival log (time, class, tenant, routed chain) is captured;
// the resulting ArrivalTrace replays bit-for-bit as a Source and
// persists to a compact binary file via ArrivalTrace.Write /
// ReadArrivalTrace.
type (
	ArrivalTrace    = workload.ArrivalTrace
	RecordingSource = workload.RecordingSource
)

// Record wraps a source, transparently copying every arrival it yields
// into an ArrivalTrace for later replay.
func Record(src Source) *RecordingSource { return workload.Record(src) }

// ReadArrivalTrace reads a trace previously persisted with
// ArrivalTrace.Write.
func ReadArrivalTrace(r io.Reader) (*ArrivalTrace, error) { return workload.ReadTrace(r) }

// IsUnbounded reports whether a source yields an infinite stream and
// therefore needs a Horizon before serving.
func IsUnbounded(src Source) bool { return workload.IsUnbounded(src) }

// MergeBoards fuses several boards into one CoE model for multi-tenant
// serving; it returns the merged board plus per-tenant sampling views.
func MergeBoards(name string, shares []float64, boards ...*Board) (*Board, []*Board, error) {
	return workload.MergeBoards(name, shares, boards...)
}

// NewBoard wraps a custom CoE model and class distribution as a Board
// for custom workloads.
func NewBoard(m *Model, typeProbs []float64) (*Board, error) {
	return workload.NewBoard(m, typeProbs)
}

// BoardA and BoardB are the paper's circuit boards (§5.1).
func BoardA() BoardSpec { return workload.BoardA() }
func BoardB() BoardSpec { return workload.BoardB() }

// TaskA1, TaskA2, TaskB1 and TaskB2 are the paper's evaluation tasks.
func TaskA1(b *Board) Task { return workload.TaskA1(b) }
func TaskA2(b *Board) Task { return workload.TaskA2(b) }
func TaskB1(b *Board) Task { return workload.TaskB1(b) }
func TaskB2(b *Board) Task { return workload.TaskB2(b) }

// Experiment regenerates one of the paper's tables or figures.
type Experiment = experiments.Experiment

// ExperimentTable is a rendered experiment result.
type ExperimentTable = experiments.Table

// Experiments lists all reproduction targets in paper order, followed
// by the extension experiments (design-choice ablations, sensitivity
// sweeps).
func Experiments() []Experiment { return experiments.All() }

// RunExperiment regenerates one figure/table by ID ("fig13", "tab1", ...)
// and returns its rendered text. The ctx caches shared state across
// calls; pass nil for a fresh one.
func RunExperiment(ctx *ExperimentContext, id string) (string, error) {
	if ctx == nil {
		ctx = experiments.NewContext()
	}
	e, err := experiments.ByID(id)
	if err != nil {
		return "", err
	}
	tb, err := e.Run(ctx)
	if err != nil {
		return "", err
	}
	return tb.Render(), nil
}

// RunExperiments regenerates several experiments (every registered one
// when ids is nil), fanning independent experiments out across the
// context's worker pool; rendered tables return in ID order regardless
// of execution order, so the output is byte-identical at every worker
// count. Pass nil for a fresh context.
func RunExperiments(ctx *ExperimentContext, ids []string) ([]string, error) {
	if ctx == nil {
		ctx = experiments.NewContext()
	}
	return experiments.RunAll(ctx, ids)
}

// ExperimentContext caches boards, performance matrices, and task runs
// across experiments. It is safe for concurrent use; SetParallel bounds
// the worker pool its sweeps (and RunExperiments) fan out on.
type ExperimentContext = experiments.Context

// NewExperimentContext returns an empty experiment cache running sweeps
// on up to runtime.GOMAXPROCS(0) workers.
func NewExperimentContext() *ExperimentContext { return experiments.NewContext() }
