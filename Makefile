GO ?= go

.PHONY: all build test vet fmt-check detlint ci bench race chaos-determinism grayfail-determinism shard-determinism bench-experiments bench-cluster bench-fleet bench-chaos bench-shard cover

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# detlint is the determinism lint: it fails on wall-clock reads
# (time.Now/time.Since), global math/rand use, and map-iteration
# ordering hazards in internal/ — the constructs that silently break
# byte-reproducible output. Exemptions are //detlint:allow annotations
# with a written reason.
detlint:
	$(GO) run ./cmd/detlint

# ci is the tier-1 gate: formatting, vet, determinism lint, build, tests.
ci: fmt-check vet detlint build test

# cover runs the whole suite with coverage and prints the per-function
# summary plus the total; cover.out is left behind for `go tool cover
# -html=cover.out`.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -20
	@$(GO) tool cover -func=cover.out | grep total:

# race runs the whole test suite under the race detector: the parallel
# run engine (internal/runner, the experiments fan-out) and the sharded
# event kernel (sim.Sharded's persistent crew) must stay clean here. The
# chaos, grayfail, and shard determinism checks ride along, with their
# -race legs exercising the crash/redeliver, breaker/hedge, and
# parallel-partition paths under the detector.
race: chaos-determinism grayfail-determinism shard-determinism
	$(GO) test -race ./...

# chaos-determinism pins the fault-injection guarantee: the serve-chaos
# experiment (rolling crash/drain/recover with lease redelivery) renders
# byte-identically across plain runs AND under the race detector. The
# trailing "(N experiment(s) regenerated in ...)" timing line is the one
# wall-clock-dependent line in the output and is stripped before the
# diff.
chaos-determinism:
	@tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/coserve experiment serve-chaos | sed '/experiment(s) regenerated in/d' > "$$tmp/a" || exit 1; \
	$(GO) run ./cmd/coserve experiment serve-chaos | sed '/experiment(s) regenerated in/d' > "$$tmp/b" || exit 1; \
	$(GO) run -race ./cmd/coserve experiment serve-chaos | sed '/experiment(s) regenerated in/d' > "$$tmp/c" || exit 1; \
	cmp "$$tmp/a" "$$tmp/b" || { echo "chaos-determinism: two plain serve-chaos runs differ"; exit 1; }; \
	cmp "$$tmp/a" "$$tmp/c" || { echo "chaos-determinism: serve-chaos differs under -race"; exit 1; }; \
	echo "chaos-determinism: OK — serve-chaos byte-identical across runs and under -race"

# grayfail-determinism pins the same guarantee for the gray-failure
# stack: serve-grayfail (fail-slow/jitter/stall injection, health-scored
# breaker, hedged redelivery — timer cancellation and all) renders
# byte-identically across plain runs AND under the race detector.
grayfail-determinism:
	@tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/coserve experiment serve-grayfail | sed '/experiment(s) regenerated in/d' > "$$tmp/a" || exit 1; \
	$(GO) run ./cmd/coserve experiment serve-grayfail | sed '/experiment(s) regenerated in/d' > "$$tmp/b" || exit 1; \
	$(GO) run -race ./cmd/coserve experiment serve-grayfail | sed '/experiment(s) regenerated in/d' > "$$tmp/c" || exit 1; \
	cmp "$$tmp/a" "$$tmp/b" || { echo "grayfail-determinism: two plain serve-grayfail runs differ"; exit 1; }; \
	cmp "$$tmp/a" "$$tmp/c" || { echo "grayfail-determinism: serve-grayfail differs under -race"; exit 1; }; \
	echo "grayfail-determinism: OK — serve-grayfail byte-identical across runs and under -race"

# shard-determinism pins the parallel kernel's guarantee: experiment
# output is byte-identical at every -shards setting. serve-shard (the
# fleet over a non-zero interconnect — the config that engages the
# sharded kernel and its pooled cross-partition messages) renders at
# -shards 1, 2, 3, and GOMAXPROCS (-shards 0) plus once more under
# -race; serve-fleet and serve-chaos render at -shards 1 and GOMAXPROCS
# to pin that the flag leaves zero-latency configs untouched. All
# outputs are diffed byte-for-byte against the sequential run. The odd
# worker count (-shards 3) splits the 101 partitions unevenly, so the
# crew's round barrier and the outbox merge see ragged rounds.
shard-determinism:
	@tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/coserve experiment -shards 1 serve-shard | sed '/experiment(s) regenerated in/d' > "$$tmp/shard1" || exit 1; \
	$(GO) run ./cmd/coserve experiment -shards 2 serve-shard | sed '/experiment(s) regenerated in/d' > "$$tmp/shard2" || exit 1; \
	$(GO) run ./cmd/coserve experiment -shards 3 serve-shard | sed '/experiment(s) regenerated in/d' > "$$tmp/shard3" || exit 1; \
	$(GO) run ./cmd/coserve experiment -shards 0 serve-shard | sed '/experiment(s) regenerated in/d' > "$$tmp/shardN" || exit 1; \
	$(GO) run -race ./cmd/coserve experiment -shards 0 serve-shard | sed '/experiment(s) regenerated in/d' > "$$tmp/shardR" || exit 1; \
	cmp "$$tmp/shard1" "$$tmp/shard2" || { echo "shard-determinism: serve-shard differs between -shards 1 and 2"; exit 1; }; \
	cmp "$$tmp/shard1" "$$tmp/shard3" || { echo "shard-determinism: serve-shard differs between -shards 1 and 3"; exit 1; }; \
	cmp "$$tmp/shard1" "$$tmp/shardN" || { echo "shard-determinism: serve-shard differs between -shards 1 and GOMAXPROCS"; exit 1; }; \
	cmp "$$tmp/shard1" "$$tmp/shardR" || { echo "shard-determinism: serve-shard differs under -race"; exit 1; }; \
	$(GO) run ./cmd/coserve experiment -shards 1 serve-fleet | sed '/experiment(s) regenerated in/d' > "$$tmp/fleet1" || exit 1; \
	$(GO) run ./cmd/coserve experiment -shards 0 serve-fleet | sed '/experiment(s) regenerated in/d' > "$$tmp/fleetN" || exit 1; \
	cmp "$$tmp/fleet1" "$$tmp/fleetN" || { echo "shard-determinism: serve-fleet (zero-latency) differs across -shards"; exit 1; }; \
	$(GO) run ./cmd/coserve experiment -shards 1 serve-chaos | sed '/experiment(s) regenerated in/d' > "$$tmp/chaos1" || exit 1; \
	$(GO) run ./cmd/coserve experiment -shards 0 serve-chaos | sed '/experiment(s) regenerated in/d' > "$$tmp/chaosN" || exit 1; \
	cmp "$$tmp/chaos1" "$$tmp/chaosN" || { echo "shard-determinism: serve-chaos (zero-latency) differs across -shards"; exit 1; }; \
	echo "shard-determinism: OK — serve-shard byte-identical at shards 1/2/3/GOMAXPROCS and under -race; zero-latency experiments untouched by -shards"

# bench compiles and executes every benchmark exactly once (no test
# functions), so the benchmark harness cannot rot, and pipes the output
# through benchguard, which fails loudly if any benchmark baselined in
# BENCH_fleet.json, BENCH_chaos.json, or BENCH_kernel.json regresses
# past its recorded allocs/op or bytes/op. Wall time is advisory: an
# ns_factor breach prints a WARN line but never fails the run.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./... | $(GO) run ./cmd/benchguard -baseline BENCH_fleet.json -baseline BENCH_chaos.json -baseline BENCH_kernel.json

# bench-experiments reproduces the BENCH_experiments.json measurement:
# the full experiment registry, sequential vs all cores.
bench-experiments:
	$(GO) test -bench BenchmarkAllExperiments -benchtime 3x -run '^$$' .

# bench-cluster reproduces the BENCH_cluster.json measurement: the
# multi-node serving path at 1 and 4 nodes (plus the bare-System
# reference it is priced against). `make bench` (and the CI bench job)
# already executes these once; this target is the recorded baseline's
# regeneration recipe.
bench-cluster:
	$(GO) test -bench 'BenchmarkClusterServe|BenchmarkPoissonServe$$' -benchtime 20x -run '^$$' .

# bench-fleet reproduces (and gates) the BENCH_fleet.json measurement:
# the 100-node / 1M-request fleet hot path in sketch + arena mode. The
# guard fails if allocs/op or bytes/op regress past the recorded
# baseline; after an intentional change, paste the new numbers into
# BENCH_fleet.json.
bench-fleet:
	$(GO) test -bench BenchmarkFleetServe -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchguard -baseline BENCH_fleet.json

# bench-chaos reproduces (and gates) the BENCH_chaos.json measurement:
# the fault-injected serving path — fail-stop crash/redeliver and the
# gray-failure mitigation stack (health, breaker, hedging). `make
# bench` (and the CI bench job) already executes these once; this
# target is the recorded baseline's regeneration recipe.
bench-chaos:
	$(GO) test -bench BenchmarkChaosServe -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchguard -baseline BENCH_chaos.json

# bench-shard reproduces (and gates) the BENCH_kernel.json measurement:
# the classic event loop, the single-node serve loop, the scheduler
# inner loop, and the sharded kernel's pooled-message hot path in
# isolation (BenchmarkShardedKernel). `make bench` (and the CI bench
# job) already executes these once; this target is the recorded
# baseline's regeneration recipe.
bench-shard:
	$(GO) test -bench 'BenchmarkSimKernel|BenchmarkPoissonServe$$|BenchmarkMinMaxAssign|BenchmarkShardedKernel' -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchguard -baseline BENCH_kernel.json
