GO ?= go

.PHONY: all build test vet fmt-check ci bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# ci is the tier-1 gate: formatting, vet, build, tests.
ci: fmt-check vet build test

# bench compiles and executes every benchmark exactly once (no test
# functions), so the benchmark harness cannot rot. Compare against the
# recorded baseline in BENCH_kernel.json before merging kernel or
# scheduler changes.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
