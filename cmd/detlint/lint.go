package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// lintRoot walks every package directory under root and lints its
// non-test Go files, returning one finding per violation, sorted by
// position.
func lintRoot(root string) ([]string, error) {
	byDir := map[string][]string{}
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		byDir[filepath.Dir(p)] = append(byDir[filepath.Dir(p)], p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	var findings []string
	for _, dir := range dirs {
		sort.Strings(byDir[dir])
		fs, err := lintPackage(byDir[dir])
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	return findings, nil
}

// lintPackage parses and type-checks one directory's files together (so
// map-typed range expressions resolve) and applies the checks. Type
// errors are tolerated — build breakage is the compiler's job; the lint
// still reports what it can resolve.
func lintPackage(files []string) ([]string, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
	}
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {},
	}
	// The package path is only a label here; resolution happens through
	// the source importer.
	conf.Check(filepath.Dir(files[0]), fset, parsed, info)

	var findings []string
	for _, af := range parsed {
		findings = append(findings, lintFile(fset, af, info)...)
	}
	return findings, nil
}

// randConstructors are the package-level math/rand functions that build
// owned generators rather than touching the shared global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// kernelDir reports whether the file lives in a package that IS the
// deterministic kernel (internal/sim) or runs entirely inside it
// (internal/cluster). There, concurrency is not merely a hazard to an
// output path — any goroutine or lock off the blessed shard-barrier
// seam (the persistent runner.Crew inside sim.Sharded, whose round
// barrier reimposes deterministic order) destroys the
// byte-identical-at-any-worker-count contract directly.
func kernelDir(path string) bool {
	dir := filepath.ToSlash(filepath.Dir(path))
	return strings.HasSuffix(dir, "internal/sim") || strings.HasSuffix(dir, "internal/cluster")
}

// lintFile applies the determinism checks to one parsed file and
// returns its findings.
func lintFile(fset *token.FileSet, f *ast.File, info *types.Info) []string {
	allowed := allowedLines(fset, f)
	kernel := kernelDir(fset.Position(f.Package).Filename)
	// Map the file's import names so selector checks are grounded in the
	// imported path, not a coincidental identifier.
	imports := map[string]string{} // local name -> import path
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		imports[name] = path
	}
	pkgCall := func(call *ast.CallExpr) (path, fn string, ok bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return "", "", false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Obj != nil { // shadowed: a local variable, not the package
			return "", "", false
		}
		path, ok = imports[id.Name]
		return path, sel.Sel.Name, ok
	}

	var findings []string
	report := func(pos token.Pos, msg string) {
		position := fset.Position(pos)
		if allowed[position.Line] {
			return
		}
		findings = append(findings, fmt.Sprintf("%s: %s", position, msg))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if kernel {
				report(n.Pos(), "goroutine launched inside the deterministic kernel (internal/sim, internal/cluster); parallelism must flow through the shard-barrier seam (sim.Sharded's persistent runner.Crew), where the round barrier re-imposes deterministic event order")
			}
		case *ast.SelectorExpr:
			if !kernel {
				break
			}
			if id, ok := n.X.(*ast.Ident); ok && id.Obj == nil {
				if path := imports[id.Name]; path == "sync" || path == "sync/atomic" {
					report(n.Pos(), fmt.Sprintf("%s.%s inside the deterministic kernel (internal/sim, internal/cluster); synchronization belongs to the shard-barrier seam only — kernel state must be touched by exactly one partition per phase, never guarded by locks", id.Name, n.Sel.Name))
				}
			}
		case *ast.CallExpr:
			path, fn, ok := pkgCall(n)
			if !ok {
				break
			}
			switch {
			case path == "time" && (fn == "Now" || fn == "Since"):
				report(n.Pos(), fmt.Sprintf("time.%s reads the wall clock; simulation code must use the virtual clock (sim.Proc.Now)", fn))
			case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[fn]:
				report(n.Pos(), fmt.Sprintf("rand.%s uses the shared global generator; build an owned, seeded one with rand.New(rand.NewSource(seed))", fn))
			}
		case *ast.RangeStmt:
			tv, ok := info.Types[n.X]
			if !ok || tv.Type == nil {
				break
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				report(n.Pos(), "range over a map iterates in randomized order; sort the keys first, fold commutatively, or use a slice")
			}
		}
		return true
	})
	sort.Strings(findings)
	return findings
}

// allowedLines collects the lines exempted by //detlint:allow comments:
// the comment's own line and the line below it (so the annotation can
// sit above the offending statement).
func allowedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	allowed := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, "//detlint:allow") {
				continue
			}
			line := fset.Position(c.Pos()).Line
			allowed[line] = true
			allowed[line+1] = true
		}
	}
	return allowed
}
