// Command detlint is the determinism lint: it scans non-test Go files
// under the given packages root (default ./internal) for constructs
// that break byte-reproducible simulation output and fails loudly on
// any finding. The simulator's contract — identical tables, reports,
// and experiment output for identical inputs, at any worker count and
// under -race — dies quietly when wall-clock time, the global
// math/rand generator, or Go's randomized map iteration order leaks
// into an output path, so the lint runs in CI next to go vet.
//
// Flagged:
//
//   - time.Now / time.Since: wall-clock reads. Simulation code must use
//     the virtual clock (sim.Env / sim.Proc). Deliberate wall-clock
//     measurement (the Figure 19 scheduling-overhead probe) is
//     annotated.
//   - package-level math/rand calls (rand.Intn, rand.Float64, ...):
//     the global generator is shared, unseeded, and race-prone.
//     Constructing owned generators (rand.New, rand.NewSource,
//     rand.NewZipf) is fine — every stream in this codebase carries its
//     own seeded source.
//   - range over a map: iteration order is randomized per run. Sites
//     that fold map contents commutatively or sort before use are
//     annotated; anything new must either neutralize the order the
//     same way or use a slice.
//   - goroutine launches and sync/sync.atomic use inside the kernel
//     packages (internal/sim, internal/cluster): the sharded kernel's
//     byte-identical-at-any-worker-count contract requires every event
//     to be ordered by the kernel itself — all parallelism flows
//     through the shard-barrier seam (sim.Sharded's runner pool), and
//     kernel state is owned by exactly one partition per phase, never
//     guarded by locks. The seam's own launch points are annotated.
//
// A finding is silenced by a `//detlint:allow <reason>` comment on the
// offending line or the line above it — the reason is the point: every
// exemption documents why the order or clock cannot leak into output.
//
// Usage:
//
//	go run ./cmd/detlint            # lint ./internal
//	go run ./cmd/detlint ./pkg ...  # lint other roots
package main

import (
	"fmt"
	"os"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"./internal"}
	}
	var findings []string
	for _, root := range roots {
		fs, err := lintRoot(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "detlint: %s\n", f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s) — annotate with //detlint:allow <reason> only if the order or clock cannot reach output\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("detlint: OK — no wall-clock, global-rand, or map-order hazards")
}
