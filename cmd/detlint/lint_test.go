package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintFixture writes the source as a single-file package in a temp dir
// and lints it.
func lintFixture(t *testing.T, src string) []string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lintRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestLintFlagsWallClock(t *testing.T) {
	findings := lintFixture(t, `package fixture

import "time"

func now() time.Time { return time.Now() }

func since(t0 time.Time) time.Duration { return time.Since(t0) }
`)
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want time.Now and time.Since flagged", findings)
	}
	for _, f := range findings {
		if !strings.Contains(f, "wall clock") {
			t.Errorf("finding %q does not name the wall clock", f)
		}
	}
}

func TestLintFlagsGlobalRandButNotConstructors(t *testing.T) {
	findings := lintFixture(t, `package fixture

import "math/rand"

func bad() int { return rand.Intn(10) }

func good() *rand.Rand { return rand.New(rand.NewSource(1)) }

func alsoGood() *rand.Zipf {
	r := rand.New(rand.NewSource(2))
	return rand.NewZipf(r, 1.1, 1, 100)
}
`)
	if len(findings) != 1 || !strings.Contains(findings[0], "rand.Intn") {
		t.Fatalf("findings = %v, want exactly the rand.Intn call flagged", findings)
	}
}

func TestLintFlagsMapRangeButNotSliceRange(t *testing.T) {
	findings := lintFixture(t, `package fixture

func mapRange(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func sliceRange(s []int) int {
	n := 0
	for _, v := range s {
		n += v
	}
	return n
}
`)
	if len(findings) != 1 || !strings.Contains(findings[0], "range over a map") {
		t.Fatalf("findings = %v, want exactly the map range flagged", findings)
	}
}

func TestLintAllowAnnotationSilencesFinding(t *testing.T) {
	findings := lintFixture(t, `package fixture

func folded(m map[string]int) int {
	n := 0
	//detlint:allow commutative fold
	for _, v := range m {
		n += v
	}
	return n
}
`)
	if len(findings) != 0 {
		t.Fatalf("findings = %v, want the annotated range exempted", findings)
	}
}

func TestLintIgnoresShadowedPackageNames(t *testing.T) {
	findings := lintFixture(t, `package fixture

type clock struct{}

func (clock) Now() int { return 0 }

func local() int {
	var time clock
	return time.Now()
}
`)
	if len(findings) != 0 {
		t.Fatalf("findings = %v, want shadowed identifier ignored", findings)
	}
}

func TestLintSkipsTestFiles(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

import "time"

var t0 = time.Now()
`
	if err := os.WriteFile(filepath.Join(dir, "fixture_test.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lintRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("findings = %v, want _test.go files skipped", findings)
	}
}

// kernelFixture writes the source as a single-file package under an
// internal/sim directory — the concurrency-restricted kernel tree —
// and lints it.
func kernelFixture(t *testing.T, src string) []string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "internal", "sim")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lintRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestLintFlagsKernelConcurrency(t *testing.T) {
	findings := kernelFixture(t, `package fixture

import "sync"

var mu sync.Mutex

func launch(fn func()) {
	go fn()
}
`)
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want the goroutine launch and the sync.Mutex flagged", findings)
	}
	var goStmt, syncUse bool
	for _, f := range findings {
		goStmt = goStmt || strings.Contains(f, "goroutine launched")
		syncUse = syncUse || strings.Contains(f, "sync.Mutex")
	}
	if !goStmt || !syncUse {
		t.Fatalf("findings = %v, want one goroutine and one sync finding", findings)
	}
}

func TestLintKernelConcurrencyScopedToKernelDirs(t *testing.T) {
	// The identical source outside internal/sim and internal/cluster is
	// legal: ordinary packages may use goroutines and locks freely.
	findings := lintFixture(t, `package fixture

import "sync"

var mu sync.Mutex

func launch(fn func()) {
	go fn()
}
`)
	if len(findings) != 0 {
		t.Fatalf("findings = %v, want concurrency outside the kernel dirs unflagged", findings)
	}
}

func TestLintKernelConcurrencyExemptable(t *testing.T) {
	findings := kernelFixture(t, `package fixture

func launch(fn func()) {
	//detlint:allow the blessed seam: the launch synchronizes behind a barrier
	go fn()
}
`)
	if len(findings) != 0 {
		t.Fatalf("findings = %v, want the annotated launch exempted", findings)
	}
}

// TestLintInternalClean pins the repo's own invariant: the lint passes
// over internal/ as committed, exemptions and all.
func TestLintInternalClean(t *testing.T) {
	findings, err := lintRoot("../../internal")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("internal/ has determinism hazards:\n%s", strings.Join(findings, "\n"))
	}
}
